#include <gtest/gtest.h>

#include <cmath>

#include "kernels/cloud_stor.hpp"
#include "kernels/dd_io.hpp"
#include "kernels/float_op.hpp"
#include "kernels/linpack.hpp"
#include "kernels/matmul.hpp"
#include "kernels/native_meters.hpp"
#include "kernels/thread_pool.hpp"

namespace amoeba::kernels {
namespace {

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_chunks(1000, 4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadFallback) {
  int calls = 0;
  parallel_chunks(10, 1, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 10u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  parallel_chunks(0, 4, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, ExceptionPropagates) {
  EXPECT_THROW(parallel_chunks(100, 4,
                               [](std::size_t b, std::size_t) {
                                 if (b == 0) throw std::runtime_error("boom");
                               }),
               std::runtime_error);
}

TEST(PersistentPool, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(500);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.wait_idle();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PersistentPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

TEST(PersistentPool, WaitIdleRethrowsFirstTaskError) {
  ThreadPool pool(4);
  std::atomic<int> survivors{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&survivors, i] {
      if (i == 7) throw std::runtime_error("task failed");
      ++survivors;
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The failure is captured, not fatal: the other tasks still ran and the
  // pool stays usable.
  EXPECT_EQ(survivors.load(), 31);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(PersistentPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&count] { ++count; });
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(count.load(), 100);
}

TEST(FloatOp, DeterministicChecksumSingleThread) {
  const auto a = run_float_op(10000, 1);
  const auto b = run_float_op(10000, 1);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
  EXPECT_GT(a.seconds, 0.0);
}

TEST(FloatOp, ThreadedChecksumMatchesSerial) {
  const auto serial = run_float_op(50000, 1);
  const auto threaded = run_float_op(50000, 4);
  EXPECT_NEAR(threaded.checksum, serial.checksum,
              1e-9 * std::abs(serial.checksum));
}

TEST(FloatOp, ChecksumHasExpectedMagnitude) {
  // Each iteration adds sqrt(1 + x) with x in [0.5, 1.5): between 1.22
  // and 1.59 per iteration.
  const auto r = run_float_op(1000, 1);
  EXPECT_GT(r.checksum, 1000 * 1.2);
  EXPECT_LT(r.checksum, 1000 * 1.6);
}

TEST(Matmul, MatchesNaiveOnSmallInput) {
  const std::size_t n = 17;  // not a multiple of the block size
  std::vector<double> a(n * n), b(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = static_cast<double>(i % 7) - 3.0;
    b[i] = static_cast<double>(i % 5) - 2.0;
  }
  const auto c = matmul(a, b, n, 2, 8);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double expect = 0.0;
      for (std::size_t k = 0; k < n; ++k) expect += a[i * n + k] * b[k * n + j];
      ASSERT_NEAR(c[i * n + j], expect, 1e-9) << i << "," << j;
    }
  }
}

TEST(Matmul, IdentityIsNeutral) {
  const std::size_t n = 8;
  std::vector<double> a(n * n), id(n * n, 0.0);
  for (std::size_t i = 0; i < n * n; ++i) a[i] = static_cast<double>(i);
  for (std::size_t i = 0; i < n; ++i) id[i * n + i] = 1.0;
  const auto c = matmul(a, id, n);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_DOUBLE_EQ(c[i], a[i]);
}

TEST(Matmul, RunReportsConsistentChecksum) {
  const auto r1 = run_matmul(64, 1);
  const auto r2 = run_matmul(64, 2);
  EXPECT_NEAR(r1.checksum, r2.checksum, 1e-6 * std::abs(r1.checksum) + 1e-9);
  EXPECT_GT(r1.gflops, 0.0);
}

TEST(Linpack, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  std::vector<double> a = {2.0, 1.0, 1.0, 3.0};
  std::vector<double> b = {5.0, 10.0};
  ASSERT_TRUE(lu_solve(a, b, 2));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(Linpack, DetectsSingularMatrix) {
  std::vector<double> a = {1.0, 2.0, 2.0, 4.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(lu_solve(a, b, 2));
}

TEST(Linpack, PivotingHandlesZeroDiagonal) {
  std::vector<double> a = {0.0, 1.0, 1.0, 0.0};
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(lu_solve(a, b, 2));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(Linpack, ResidualSmallForGeneratedSystem) {
  const auto r = run_linpack(100, 2);
  EXPECT_LT(r.normalized_residual, 50.0);  // LINPACK pass threshold ~ O(10)
  EXPECT_GT(r.gflops, 0.0);
}

TEST(Linpack, ThreadedMatchesSerialSolution) {
  std::vector<double> a1(64 * 64), b1(64);
  std::uint64_t s = 1;
  for (auto& x : a1) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    x = static_cast<double>(s >> 40) * 0x1.0p-24;
  }
  for (std::size_t i = 0; i < 64; ++i) {
    a1[i * 64 + i] += 64.0;
    b1[i] = static_cast<double>(i);
  }
  auto a2 = a1;
  auto b2 = b1;
  ASSERT_TRUE(lu_solve(a1, b1, 64, 1));
  ASSERT_TRUE(lu_solve(a2, b2, 64, 4));
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(b1[i], b2[i], 1e-10);
}

TEST(DdIo, WriteReadVerifyRoundTrip) {
  const auto r = run_dd(1 << 20, 64 << 10);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes, std::size_t{1} << 20);
  EXPECT_GT(r.write_mbps, 0.0);
  EXPECT_GT(r.read_mbps, 0.0);
}

TEST(DdIo, OddSizesHandleTailBlocks) {
  const auto r = run_dd((1 << 20) + 12345, 64 << 10);
  EXPECT_TRUE(r.verified);
}

TEST(DdIo, RejectsZeroBytes) {
  EXPECT_THROW((void)run_dd(0), ContractError);
}

TEST(CloudStor, TransferVerifies) {
  const auto r = run_cloud_stor(2 << 20, 64 << 10);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.bytes, std::size_t{2} << 20);
  EXPECT_GT(r.mbps, 0.0);
}

TEST(CloudStor, SmallOddTransfer) {
  const auto r = run_cloud_stor(12345, 1024);
  EXPECT_TRUE(r.verified);
}

TEST(NativeMeters, EachProbeCompletesQuickly) {
  for (auto kind : {NativeMeterKind::kCpu, NativeMeterKind::kDiskIo,
                    NativeMeterKind::kNetwork}) {
    const double lat = run_native_meter_once(kind);
    EXPECT_GT(lat, 0.0);
    EXPECT_LT(lat, 10.0);
  }
}

TEST(NativeMeters, LoadSweepProducesOnePointPerLevel) {
  const auto points =
      run_meter_under_load(NativeMeterKind::kCpu, {0, 2}, 2);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].background_threads, 0u);
  EXPECT_EQ(points[1].background_threads, 2u);
  for (const auto& p : points) {
    EXPECT_GT(p.mean_latency_s, 0.0);
    EXPECT_GE(p.max_latency_s, p.mean_latency_s);
  }
}

}  // namespace
}  // namespace amoeba::kernels
