#include "iaas/platform.hpp"

#include <gtest/gtest.h>

namespace amoeba::iaas {
namespace {

workload::FunctionProfile profile(const std::string& name) {
  workload::FunctionProfile p;
  p.name = name;
  p.exec = {.cpu_seconds = 0.05, .io_bytes = 0.0, .net_bytes = 0.0};
  p.rpc_overhead_s = 0.002;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.0;
  p.qos_target_s = 0.5;
  p.peak_load_qps = 10.0;
  return p;
}

IaasConfig config() {
  IaasConfig c;
  c.vm_boot_s = 5.0;
  return c;
}

TEST(IaasPlatform, RegisterAndBootService) {
  sim::Engine e;
  IaasPlatform ip(e, config(), sim::Rng(1));
  VmSpec spec;
  spec.boot_s = -1.0;  // inherit platform default
  ip.register_service(profile("a"), spec);
  EXPECT_TRUE(ip.has_service("a"));
  EXPECT_FALSE(ip.has_service("b"));
  EXPECT_EQ(ip.state("a"), VmState::kStopped);
  double ready = -1.0;
  ip.boot("a", [&] { ready = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(ready, 5.0);  // platform default boot time
  EXPECT_TRUE(ip.is_running("a"));
}

TEST(IaasPlatform, IndependentServices) {
  sim::Engine e;
  IaasPlatform ip(e, config(), sim::Rng(2));
  ip.register_service(profile("a"), VmSpec{});
  ip.register_service(profile("b"), VmSpec{});
  ip.boot("a", [] {});
  e.run();
  EXPECT_TRUE(ip.is_running("a"));
  EXPECT_FALSE(ip.is_running("b"));
  int done = 0;
  ip.submit("a", [&](const workload::QueryRecord&) { ++done; });
  e.run();
  EXPECT_EQ(done, 1);
}

TEST(IaasPlatform, AccountingPerService) {
  sim::Engine e;
  IaasPlatform ip(e, config(), sim::Rng(3));
  VmSpec big;
  big.cores = 8.0;
  big.memory_mb = 8192.0;
  big.boot_s = 0.0;  // rent runs from t=0
  ip.register_service(profile("a"), big);
  ip.boot("a", [] {});
  e.run();
  e.schedule(10.0, [] {});
  e.run();
  EXPECT_NEAR(ip.rented_core_seconds("a", 10.0), 80.0, 1e-9);
  EXPECT_NEAR(ip.rented_memory_mb_seconds("a", 10.0), 81920.0, 1e-9);
}

TEST(IaasPlatform, UnknownServiceThrows) {
  sim::Engine e;
  IaasPlatform ip(e, config(), sim::Rng(4));
  EXPECT_THROW(ip.boot("ghost", [] {}), ContractError);
  EXPECT_THROW(ip.submit("ghost", [](const workload::QueryRecord&) {}),
               ContractError);
  EXPECT_THROW((void)ip.state("ghost"), ContractError);
}

TEST(IaasPlatform, DuplicateRegistrationThrows) {
  sim::Engine e;
  IaasPlatform ip(e, config(), sim::Rng(5));
  ip.register_service(profile("a"), VmSpec{});
  EXPECT_THROW(ip.register_service(profile("a"), VmSpec{}), ContractError);
}

TEST(IaasPlatform, DrainAndStopDelegates) {
  sim::Engine e;
  IaasPlatform ip(e, config(), sim::Rng(6));
  ip.register_service(profile("a"), VmSpec{});
  ip.boot("a", [] {});
  e.run();
  ip.drain_and_stop("a");
  EXPECT_EQ(ip.state("a"), VmState::kStopped);
}

}  // namespace
}  // namespace amoeba::iaas
