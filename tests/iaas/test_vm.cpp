#include "iaas/vm.hpp"

#include <gtest/gtest.h>

#include "sim/fault_injector.hpp"

namespace amoeba::iaas {
namespace {

workload::FunctionProfile service_profile() {
  workload::FunctionProfile p;
  p.name = "svc";
  p.exec = {.cpu_seconds = 0.1, .io_bytes = 0.0, .net_bytes = 0.0};
  p.rpc_overhead_s = 0.002;
  p.platform_overhead_s = 0.01;  // serverless-only; VM must not pay it
  p.code_bytes = 1e6;            // serverless-only
  p.memory_mb = 256.0;
  p.cpu_cv = 0.0;
  p.qos_target_s = 0.5;
  p.peak_load_qps = 10.0;
  return p;
}

VmSpec spec2() {
  VmSpec s;
  s.cores = 2.0;
  s.memory_mb = 2048.0;
  s.boot_s = 10.0;
  return s;
}

TEST(Vm, BootTransitionsToRunningAfterDelay) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(1), 1e9, 1e9);
  EXPECT_EQ(vm.state(), VmState::kStopped);
  double ready_at = -1.0;
  vm.boot([&] { ready_at = e.now(); });
  EXPECT_EQ(vm.state(), VmState::kBooting);
  e.run();
  EXPECT_EQ(vm.state(), VmState::kRunning);
  EXPECT_DOUBLE_EQ(ready_at, 10.0);
}

TEST(Vm, SubmitRequiresRunning) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(2), 1e9, 1e9);
  EXPECT_THROW(vm.submit([](const workload::QueryRecord&) {}), ContractError);
}

TEST(Vm, QueryPaysOnlyRpcOverhead) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(3), 1e9, 1e9);
  vm.boot([] {});
  e.run();
  workload::QueryRecord rec;
  vm.submit([&](const workload::QueryRecord& r) { rec = r; });
  e.run();
  EXPECT_NEAR(rec.latency(), 0.002 + 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(rec.breakdown.code_load_s, 0.0);
  EXPECT_DOUBLE_EQ(rec.breakdown.cold_start_s, 0.0);
  EXPECT_FALSE(rec.cold);
}

TEST(Vm, ProcessorSharingAcrossCores) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(4), 1e9, 1e9);
  vm.boot([] {});
  e.run();
  // 4 concurrent queries on 2 cores: each runs at rate 0.5 -> exec 0.2 s.
  std::vector<double> latencies;
  for (int i = 0; i < 4; ++i) {
    vm.submit([&](const workload::QueryRecord& r) {
      latencies.push_back(r.latency());
    });
  }
  e.run();
  ASSERT_EQ(latencies.size(), 4u);
  for (double l : latencies) EXPECT_NEAR(l, 0.002 + 0.2, 1e-9);
}

TEST(Vm, RentedResourcesAccrueWhileUpIncludingIdle) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(5), 1e9, 1e9);
  vm.boot([] {});
  e.run();
  e.schedule(100.0, [] {});
  e.run();
  // Booting (10 s) + idle running (90 s): full rent the whole time.
  EXPECT_NEAR(vm.rented_core_seconds(100.0), 2.0 * 100.0, 1e-9);
  EXPECT_NEAR(vm.rented_memory_mb_seconds(100.0), 2048.0 * 100.0, 1e-9);
  // But almost no actual compute happened.
  EXPECT_NEAR(vm.busy_core_seconds(100.0), 0.0, 1e-9);
}

TEST(Vm, DrainAndStopWaitsForInFlight) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(6), 1e9, 1e9);
  vm.boot([] {});
  e.run();
  bool completed = false;
  vm.submit([&](const workload::QueryRecord&) { completed = true; });
  vm.drain_and_stop();
  EXPECT_EQ(vm.state(), VmState::kDraining);
  e.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(vm.state(), VmState::kStopped);
}

TEST(Vm, DrainWithNoInFlightStopsImmediately) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(7), 1e9, 1e9);
  vm.boot([] {});
  e.run();
  vm.drain_and_stop();
  EXPECT_EQ(vm.state(), VmState::kStopped);
}

TEST(Vm, RentStopsAfterShutdown) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(8), 1e9, 1e9);
  vm.boot([] {});
  e.run();  // running at t=10
  e.schedule(20.0, [&] { vm.drain_and_stop(); });
  e.schedule(100.0, [] {});
  e.run();
  EXPECT_NEAR(vm.rented_core_seconds(100.0), 2.0 * 20.0, 1e-9);
}

TEST(Vm, BootDuringDrainCancelsShutdown) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(9), 1e9, 1e9);
  vm.boot([] {});
  e.run();
  bool query_done = false;
  vm.submit([&](const workload::QueryRecord&) { query_done = true; });
  vm.drain_and_stop();
  ASSERT_EQ(vm.state(), VmState::kDraining);
  bool reready = false;
  vm.boot([&] { reready = true; });
  EXPECT_EQ(vm.state(), VmState::kRunning);  // instant: never went down
  e.run();
  EXPECT_TRUE(reready);
  EXPECT_TRUE(query_done);
  EXPECT_EQ(vm.state(), VmState::kRunning);
}

TEST(Vm, DrainDuringBootAborts) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(10), 1e9, 1e9);
  bool ready = false;
  vm.boot([&] { ready = true; });
  vm.drain_and_stop();
  EXPECT_EQ(vm.state(), VmState::kStopped);
  e.run();
  EXPECT_FALSE(ready);  // stale boot event must not fire the callback
}

TEST(Vm, RebootAfterStopWorks) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(11), 1e9, 1e9);
  vm.boot([] {});
  e.run();
  vm.drain_and_stop();
  EXPECT_EQ(vm.state(), VmState::kStopped);
  vm.boot([] {});
  e.run();
  EXPECT_EQ(vm.state(), VmState::kRunning);
}

TEST(Vm, DoubleBootThrows) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(12), 1e9, 1e9);
  vm.boot([] {});
  EXPECT_THROW(vm.boot([] {}), ContractError);
}

TEST(Vm, UptimeExcludesStoppedPeriods) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(13), 1e9, 1e9);
  vm.boot([] {});
  e.run();
  e.schedule(50.0, [&] { vm.drain_and_stop(); });
  e.schedule(80.0, [&] { vm.boot([] {}); });
  e.schedule(100.0, [] {});
  e.run();
  EXPECT_NEAR(vm.uptime_seconds(100.0), 50.0 + 20.0, 1e-9);
}

TEST(Vm, InjectedBootFailureReturnsToStoppedAndPaysRent) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(11), 1e9, 1e9);
  sim::FaultConfig fc;
  fc.vm_boot_fail_first_n = 1;
  sim::FaultInjector faults(fc, sim::Rng(4));
  vm.set_fault_injector(&faults);

  bool ready = false;
  bool failed = false;
  vm.boot([&] { ready = true; }, [&] { failed = true; });
  e.run();
  EXPECT_FALSE(ready);
  EXPECT_TRUE(failed);
  EXPECT_EQ(vm.state(), VmState::kStopped);
  EXPECT_EQ(vm.boot_failures(), 1u);
  // The failed boot window is still billed (2 cores for 10 s).
  EXPECT_NEAR(vm.rented_core_seconds(e.now()), 20.0, 1e-9);
  // A retry (fail-first budget exhausted) succeeds.
  vm.boot([&] { ready = true; });
  e.run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(vm.state(), VmState::kRunning);
}

TEST(Vm, InjectedStragglerInflatesBootTime) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(12), 1e9, 1e9);
  sim::FaultConfig fc;
  fc.vm_straggler_p = 1.0;
  fc.vm_straggler_factor = 3.0;
  sim::FaultInjector faults(fc, sim::Rng(5));
  vm.set_fault_injector(&faults);

  double ready_at = -1.0;
  vm.boot([&] { ready_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(ready_at, 30.0);  // 10 s boot stretched 3x
  EXPECT_EQ(faults.counters().vm_stragglers, 1u);
  EXPECT_EQ(vm.boot_failures(), 0u);
}

TEST(Vm, DrainDuringFaultyBootSupersedesFailureCallback) {
  sim::Engine e;
  VirtualMachine vm(e, service_profile(), spec2(), sim::Rng(13), 1e9, 1e9);
  sim::FaultConfig fc;
  fc.vm_boot_fail_first_n = 10;
  sim::FaultInjector faults(fc, sim::Rng(6));
  vm.set_fault_injector(&faults);

  bool failed = false;
  vm.boot([] {}, [&] { failed = true; });
  e.run_until(5.0);
  vm.drain_and_stop();  // abort the doomed boot before it reports failure
  EXPECT_EQ(vm.state(), VmState::kStopped);
  e.run();
  EXPECT_FALSE(failed);  // superseded boot event stayed inert
  EXPECT_EQ(vm.boot_failures(), 0u);
}

}  // namespace
}  // namespace amoeba::iaas
