#include "core/queueing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "stats/percentile.hpp"

namespace amoeba::core::queueing {
namespace {

/// Direct event-driven M/M/n queue: Poisson(lambda) arrivals, n servers
/// with exp(mu) service, one FIFO queue. Returns waiting-time samples.
stats::SampleSet simulate_mmn(double lambda, int n, double mu,
                              double duration, std::uint64_t seed) {
  sim::Engine engine;
  sim::Rng rng(seed);
  int busy = 0;
  std::deque<double> queue;  // arrival times of waiting customers
  stats::SampleSet waits;

  std::function<void()> depart = [&] {
    if (!queue.empty()) {
      const double arrived = queue.front();
      queue.pop_front();
      waits.add(engine.now() - arrived);
      engine.schedule_in(rng.exponential(mu), depart);
    } else {
      --busy;
    }
  };
  std::function<void()> arrive = [&] {
    if (busy < n) {
      ++busy;
      waits.add(0.0);
      engine.schedule_in(rng.exponential(mu), depart);
    } else {
      queue.push_back(engine.now());
    }
    if (engine.now() < duration) {
      engine.schedule_in(rng.exponential(lambda), arrive);
    }
  };
  engine.schedule_in(rng.exponential(lambda), arrive);
  engine.run();
  return waits;
}

class MmnCrossValidation
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(MmnCrossValidation, WaitQuantileMatchesSimulation) {
  // The paper's Eq. 4 closed form against a direct simulation of the same
  // queue — the discriminant's math must describe the physics it models.
  const auto [rho_target, n] = GetParam();
  const double mu = 1.0;
  const double lambda = rho_target * n * mu;
  const auto waits = simulate_mmn(lambda, n, mu, 60000.0, 1234);
  ASSERT_GT(waits.size(), 20000u);
  for (double q : {0.90, 0.95}) {
    const double theory = wait_quantile(lambda, n, mu, q);
    const double simulated = waits.quantile(q);
    if (theory <= 1e-12) {
      EXPECT_LT(simulated, 0.5 / mu) << "q=" << q;
    } else {
      EXPECT_NEAR(simulated / theory, 1.0, 0.15)
          << "q=" << q << " theory=" << theory << " sim=" << simulated;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Operating, MmnCrossValidation,
    ::testing::Values(std::make_tuple(0.7, 1), std::make_tuple(0.9, 1),
                      std::make_tuple(0.8, 4), std::make_tuple(0.9, 8),
                      std::make_tuple(0.95, 16)));

TEST(Queueing, RhoDefinition) {
  EXPECT_DOUBLE_EQ(rho(5.0, 10, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(rho(3.0, 2, 3.0), 0.5);
}

TEST(Queueing, Mm1ClosedForms) {
  // For n = 1: π0 = 1-ρ, ErlangC = ρ, E[W] = ρ/(μ-λ).
  const double lambda = 0.6, mu = 1.0;
  EXPECT_NEAR(pi0(lambda, 1, mu), 0.4, 1e-12);
  EXPECT_NEAR(erlang_c(lambda, 1, mu), 0.6, 1e-12);
  EXPECT_NEAR(mean_wait(lambda, 1, mu), 0.6 / 0.4, 1e-12);
}

TEST(Queueing, Mm2KnownErlangC) {
  // M/M/2 with a = λ/μ = 1 (ρ = 0.5): C = a²/(a² + 2(1-ρ)·(1+a)) ... use
  // the standard closed form: C(2,1) = 1/3.
  EXPECT_NEAR(erlang_c(1.0, 2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(Queueing, PiSumsToOne) {
  // Σ_k π_k = 1: check via π0 normalization for a moderate system.
  const double lambda = 7.0, mu = 1.0;
  const int n = 10;
  const double p0 = pi0(lambda, n, mu);
  double sum = 0.0;
  const double a = lambda / mu;
  double term = 1.0;  // (nρ)^0/0!
  for (int k = 0; k < n; ++k) {
    sum += term * p0;
    term *= a / (k + 1);
  }
  // Tail: geometric from k = n.
  const double r = rho(lambda, n, mu);
  sum += term * p0 / (1.0 - r);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(Queueing, WaitQuantileInvertsDistribution) {
  // Eq. 4: verify F_W(wait_quantile(q)) == q when the quantile is interior.
  const double lambda = 9.0, mu = 1.0;
  const int n = 10;
  for (double q : {0.90, 0.95, 0.99}) {
    const double t = wait_quantile(lambda, n, mu, q);
    ASSERT_GT(t, 0.0);
    const double r = rho(lambda, n, mu);
    const double fw =
        1.0 - pi_n(lambda, n, mu) / (1.0 - r) * std::exp(-n * mu * (1.0 - r) * t);
    EXPECT_NEAR(fw, q, 1e-10);
  }
}

TEST(Queueing, WaitQuantileZeroWhenLoadTiny) {
  // At negligible load, 95% of queries do not wait.
  EXPECT_DOUBLE_EQ(wait_quantile(0.001, 10, 1.0, 0.95), 0.0);
}

TEST(Queueing, WaitQuantileMonotoneInLoad) {
  double prev = -1.0;
  for (double lambda : {2.0, 5.0, 8.0, 9.5}) {
    const double t = wait_quantile(lambda, 10, 1.0, 0.95);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Queueing, QosSatisfiedBoundaryBehaviour) {
  const int n = 10;
  const double mu = 1.0, r = 0.95;
  EXPECT_TRUE(qos_satisfied(1.0, n, mu, 2.0, r));
  EXPECT_FALSE(qos_satisfied(9.99, n, mu, 1.05, r));
  EXPECT_FALSE(qos_satisfied(20.0, n, mu, 100.0, r));  // unstable
}

TEST(Queueing, MaxArrivalRateIsTheQosBoundary) {
  const int n = 16;
  const double mu = 2.0, t_d = 1.2, r = 0.95;
  const auto lmax = max_arrival_rate(n, mu, t_d, r);
  ASSERT_TRUE(lmax.has_value());
  EXPECT_TRUE(qos_satisfied(*lmax * 0.999, n, mu, t_d, r));
  EXPECT_FALSE(qos_satisfied(*lmax + 1e-3, n, mu, t_d, r));
}

TEST(Queueing, MaxArrivalRateNulloptWhenTargetUnreachable) {
  // Service time alone (1/μ = 1) exceeds the 0.5 s target.
  EXPECT_FALSE(max_arrival_rate(10, 1.0, 0.5, 0.95).has_value());
}

TEST(Queueing, MaxArrivalRateGrowsWithServers) {
  const double mu = 1.0, t_d = 2.0, r = 0.95;
  double prev = 0.0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const auto lmax = max_arrival_rate(n, mu, t_d, r);
    ASSERT_TRUE(lmax.has_value());
    EXPECT_GT(*lmax, prev);
    prev = *lmax;
  }
}

TEST(Queueing, MaxArrivalRateStableForLargeN) {
  // Log-space state probabilities must survive n in the thousands.
  const auto lmax = max_arrival_rate(2000, 1.0, 1.5, 0.95);
  ASSERT_TRUE(lmax.has_value());
  EXPECT_GT(*lmax, 1800.0);
  EXPECT_LT(*lmax, 2000.0);
}

TEST(Queueing, Eq5AgreesWithBisectionSolver) {
  // The paper's closed form (solved by fixed point) and the robust
  // bisection must identify the same switch boundary.
  for (int n : {4, 8, 16, 32}) {
    const double mu = 2.0, t_d = 1.0, r = 0.95;
    const auto fixed_point = eq5_lambda(n, mu, t_d, r);
    const auto bisect = max_arrival_rate(n, mu, t_d, r);
    ASSERT_TRUE(fixed_point.has_value()) << n;
    ASSERT_TRUE(bisect.has_value()) << n;
    EXPECT_NEAR(*fixed_point, *bisect, 0.02 * *bisect) << "n=" << n;
  }
}

TEST(Queueing, Eq5NulloptWhenServiceMissesTarget) {
  EXPECT_FALSE(eq5_lambda(10, 1.0, 0.9, 0.95).has_value());
}

TEST(Queueing, MinServersSufficientAndTight) {
  const double lambda = 20.0, mu = 2.0, t_d = 1.0, r = 0.95;
  const auto n = min_servers(lambda, mu, t_d, r);
  ASSERT_TRUE(n.has_value());
  EXPECT_TRUE(qos_satisfied(lambda, *n, mu, t_d, r));
  if (*n > 1) {
    EXPECT_FALSE(qos_satisfied(lambda, *n - 1, mu, t_d, r));
  }
}

TEST(MinServers, NulloptWhenImpossible) {
  EXPECT_FALSE(min_servers(1.0, 1.0, 0.5, 0.95).has_value());
}

TEST(MinServers, AtLeastStabilityFloor) {
  const auto n = min_servers(10.0, 1.0, 5.0, 0.95);
  ASSERT_TRUE(n.has_value());
  EXPECT_GE(*n, 11);  // ρ < 1 requires n > λ/μ
}

class QueueingSweep
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(QueueingSweep, RoundTripMinServersMaxRate) {
  // min_servers(λ) = n ⇒ max_arrival_rate(n) >= λ.
  const auto [n_base, mu, t_d] = GetParam();
  const double r = 0.95;
  const auto lmax = max_arrival_rate(n_base, mu, t_d, r);
  if (!lmax.has_value()) GTEST_SKIP() << "target unreachable";
  const auto n_back = min_servers(*lmax * 0.99, mu, t_d, r);
  ASSERT_TRUE(n_back.has_value());
  EXPECT_LE(*n_back, n_base);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QueueingSweep,
    ::testing::Combine(::testing::Values(2, 5, 10, 40),
                       ::testing::Values(0.5, 2.0, 10.0),
                       ::testing::Values(1.0, 3.0)));

TEST(Queueing, ParameterValidation) {
  EXPECT_THROW((void)rho(-1.0, 10, 1.0), ContractError);
  EXPECT_THROW((void)rho(1.0, 0, 1.0), ContractError);
  EXPECT_THROW((void)pi0(20.0, 10, 1.0), ContractError);  // unstable
  EXPECT_THROW((void)wait_quantile(5.0, 10, 1.0, 1.0), ContractError);
}

}  // namespace
}  // namespace amoeba::core::queueing
