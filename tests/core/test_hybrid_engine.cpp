#include "core/hybrid_engine.hpp"

#include <gtest/gtest.h>

#include "sim/fault_injector.hpp"

namespace amoeba::core {
namespace {

serverless::PlatformConfig sp_config(double pool_mb = 4096.0) {
  serverless::PlatformConfig cfg;
  cfg.cores = 8.0;
  cfg.pool_memory_mb = pool_mb;
  cfg.disk_bps = 1.0e9;
  cfg.net_bps = 1.0e9;
  cfg.cold_start_mean_s = 0.5;
  cfg.cold_start_cv = 0.0;
  cfg.keep_alive_s = 60.0;
  return cfg;
}

iaas::IaasConfig ip_config() {
  iaas::IaasConfig cfg;
  cfg.vm_boot_s = 5.0;
  return cfg;
}

workload::FunctionProfile service() {
  workload::FunctionProfile p;
  p.name = "svc";
  p.exec = {.cpu_seconds = 0.05, .io_bytes = 0.0, .net_bytes = 0.0};
  p.code_bytes = 1e6;
  p.result_bytes = 1e4;
  p.platform_overhead_s = 0.01;
  p.rpc_overhead_s = 0.002;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.0;
  p.qos_target_s = 0.5;
  p.peak_load_qps = 20.0;
  return p;
}

iaas::VmSpec vm_spec() {
  iaas::VmSpec s;
  s.cores = 2.0;
  s.memory_mb = 2048.0;
  s.boot_s = 5.0;
  return s;
}

struct Fixture {
  sim::Engine engine;
  serverless::ServerlessPlatform sp;
  iaas::IaasPlatform ip;
  HybridExecutionEngine hx;

  explicit Fixture(HybridEngineConfig cfg = {}, double pool_mb = 4096.0)
      : sp(engine, sp_config(pool_mb), sim::Rng(1)),
        ip(engine, ip_config(), sim::Rng(2)),
        hx(engine, sp, ip, cfg, sim::Rng(3)) {}
};

TEST(HybridEngine, StartsOnIaasAndBuffersUntilBoot) {
  Fixture f;
  f.hx.add_service(service(), vm_spec());
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kIaas);
  int done = 0;
  // Submit before the VM is ready (boot takes 5 s).
  f.engine.schedule(1.0, [&] {
    f.hx.submit("svc", [&](const workload::QueryRecord&) { ++done; });
  });
  f.engine.run_until(3.0);
  EXPECT_EQ(done, 0);  // buffered
  f.engine.run();
  EXPECT_EQ(done, 1);  // flushed after boot
}

TEST(HybridEngine, MirrorsConfiguredFractionToServerless) {
  HybridEngineConfig cfg;
  cfg.mirror_fraction = 0.5;
  Fixture f(cfg);
  f.hx.add_service(service(), vm_spec());
  int mirrored = 0;
  f.hx.set_mirror_observer(
      [&](const std::string& name, const workload::QueryRecord&) {
        EXPECT_EQ(name, "svc");
        ++mirrored;
      });
  f.engine.run();  // boot
  for (int i = 0; i < 400; ++i) {
    f.engine.schedule_in(0.01 * i, [&] {
      f.hx.submit("svc", [](const workload::QueryRecord&) {});
    });
  }
  f.engine.run();
  EXPECT_NEAR(mirrored, 200, 50);
  EXPECT_EQ(f.hx.mirrored_queries(), static_cast<std::uint64_t>(mirrored));
}

TEST(HybridEngine, ZeroMirrorFractionMirrorsNothing) {
  HybridEngineConfig cfg;
  cfg.mirror_fraction = 0.0;
  Fixture f(cfg);
  f.hx.add_service(service(), vm_spec());
  f.engine.run();
  for (int i = 0; i < 50; ++i) {
    f.hx.submit("svc", [](const workload::QueryRecord&) {});
  }
  f.engine.run();
  EXPECT_EQ(f.hx.mirrored_queries(), 0u);
}

TEST(HybridEngine, SwitchToServerlessPrewarmsBeforeFlip) {
  Fixture f;
  f.hx.add_service(service(), vm_spec());
  f.engine.run();  // boot VM

  bool completed = false;
  f.hx.switch_to_serverless("svc", 10.0, [&](bool ok) {
    EXPECT_TRUE(ok);
    completed = true;
  });
  EXPECT_TRUE(f.hx.transitioning("svc"));
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kIaas);  // not yet flipped
  // Eq. 7: n = ceil(10 * 0.5) = 5 containers requested.
  EXPECT_EQ(f.sp.counts("svc").starting, 5);
  f.engine.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kServerless);
  EXPECT_FALSE(f.hx.transitioning("svc"));
  // The VM was drained and stopped after the flip.
  EXPECT_EQ(f.ip.state("svc"), iaas::VmState::kStopped);
  // Switch event logged with the load.
  ASSERT_EQ(f.hx.switch_events().size(), 1u);
  EXPECT_EQ(f.hx.switch_events()[0].to, DeployMode::kServerless);
  EXPECT_DOUBLE_EQ(f.hx.switch_events()[0].load_qps, 10.0);
}

TEST(HybridEngine, NoPrewarmFlipsImmediately) {
  HybridEngineConfig cfg;
  cfg.enable_prewarm = false;
  Fixture f(cfg);
  f.hx.add_service(service(), vm_spec());
  f.engine.run();
  bool ok = false;
  f.hx.switch_to_serverless("svc", 10.0, [&](bool v) { ok = v; });
  EXPECT_TRUE(ok);  // synchronous flip
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kServerless);
  EXPECT_EQ(f.sp.counts("svc").total(), 0);  // nothing warmed
}

TEST(HybridEngine, SwitchAbortsOnTimeoutWhenPoolFull) {
  HybridEngineConfig cfg;
  cfg.switch_timeout_s = 3.0;
  // Pool with a single container slot, already hogged by another function.
  Fixture f(cfg, 256.0);
  f.hx.add_service(service(), vm_spec());
  workload::FunctionProfile hog = service();
  hog.name = "hog";
  hog.exec.cpu_seconds = 1000.0;  // never finishes within the test
  f.sp.register_function(hog);
  f.sp.submit("hog", [](const workload::QueryRecord&) {});
  f.engine.run_until(6.0);  // VM booted, hog busy in the only slot

  bool result = true;
  f.hx.switch_to_serverless("svc", 10.0, [&](bool ok) { result = ok; });
  f.engine.run_until(12.0);
  EXPECT_FALSE(result);
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kIaas);  // stayed put
  EXPECT_FALSE(f.hx.transitioning("svc"));
}

TEST(HybridEngine, SwitchBackToIaasBootsThenRetires) {
  Fixture f;
  f.hx.add_service(service(), vm_spec());
  f.engine.run_until(6.0);  // VM booted
  f.hx.switch_to_serverless("svc", 4.0, [](bool) {});
  f.engine.run_until(10.0);  // prewarm done, still inside keep-alive
  ASSERT_EQ(f.hx.route("svc"), DeployMode::kServerless);
  const int warm = f.sp.counts("svc").total();
  EXPECT_GT(warm, 0);

  bool ok = false;
  f.hx.switch_to_iaas("svc", 4.0, [&](bool v) { ok = v; });
  EXPECT_TRUE(f.hx.transitioning("svc"));
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kServerless);  // until VM ready
  f.engine.run_until(20.0);
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kIaas);
  EXPECT_TRUE(f.ip.is_running("svc"));
  // Containers were retired (idle destroyed immediately).
  EXPECT_EQ(f.sp.counts("svc").total(), 0);
  EXPECT_EQ(f.hx.switch_events().size(), 2u);
}

TEST(HybridEngine, ServerlessRouteDeliversQueries) {
  Fixture f;
  f.hx.add_service(service(), vm_spec());
  f.engine.run_until(6.0);
  f.hx.switch_to_serverless("svc", 4.0, [](bool) {});
  f.engine.run_until(10.0);
  int done = 0;
  f.hx.submit("svc", [&](const workload::QueryRecord&) { ++done; });
  f.engine.run_until(12.0);
  EXPECT_EQ(done, 1);
  EXPECT_EQ(f.sp.stats("svc").completed, 1u);
}

TEST(HybridEngine, MaintainWarmTopsUpTheWarmSet) {
  Fixture f;
  f.hx.add_service(service(), vm_spec());
  f.engine.run_until(6.0);
  f.hx.switch_to_serverless("svc", 2.0, [](bool) {});
  f.engine.run_until(10.0);
  ASSERT_EQ(f.hx.route("svc"), DeployMode::kServerless);
  const int before = f.sp.counts("svc").total();
  // Load grew: Eq. 7 for 16 qps at 0.5 s QoS wants 8 containers.
  f.hx.maintain_warm("svc", 16.0);
  EXPECT_EQ(f.sp.counts("svc").total(), 8);
  EXPECT_GE(8, before);
}

TEST(HybridEngine, MaintainWarmRespectsCapAndMode) {
  Fixture f;
  f.hx.add_service(service(), vm_spec(), /*serverless_max_containers=*/3);
  f.engine.run_until(6.0);
  // On IaaS: no-op.
  f.hx.maintain_warm("svc", 16.0);
  EXPECT_EQ(f.sp.counts("svc").total(), 0);
  f.hx.switch_to_serverless("svc", 2.0, [](bool) {});
  f.engine.run_until(10.0);
  f.hx.maintain_warm("svc", 16.0);
  EXPECT_EQ(f.sp.counts("svc").total(), 3);  // capped at n_max
}

TEST(HybridEngine, MaintainWarmNoopWhenPrewarmDisabled) {
  HybridEngineConfig cfg;
  cfg.enable_prewarm = false;
  Fixture f(cfg);
  f.hx.add_service(service(), vm_spec());
  f.engine.run_until(6.0);
  f.hx.switch_to_serverless("svc", 2.0, [](bool) {});
  f.engine.run_until(7.0);
  f.hx.maintain_warm("svc", 16.0);
  EXPECT_EQ(f.sp.counts("svc").total(), 0);
}

TEST(HybridEngine, MirroringFlagGatesShadowTraffic) {
  HybridEngineConfig cfg;
  cfg.mirror_fraction = 1.0;
  Fixture f(cfg);
  f.hx.add_service(service(), vm_spec());
  f.engine.run_until(6.0);
  EXPECT_TRUE(f.hx.mirroring("svc"));
  f.hx.submit("svc", [](const workload::QueryRecord&) {});
  EXPECT_EQ(f.hx.mirrored_queries(), 1u);
  f.hx.set_mirroring("svc", false);
  f.hx.submit("svc", [](const workload::QueryRecord&) {});
  EXPECT_EQ(f.hx.mirrored_queries(), 1u);  // unchanged
}

TEST(HybridEngine, AvailableContainersUsesHeadroomAndCap) {
  Fixture f;  // pool 4096 MB = 16 containers
  f.hx.add_service(service(), vm_spec(), /*serverless_max_containers=*/10);
  EXPECT_EQ(f.hx.available_containers("svc"), 10);

  workload::FunctionProfile other = service();
  other.name = "other";
  Fixture g;  // fresh fixture without cap
  g.hx.add_service(other, vm_spec());
  EXPECT_EQ(g.hx.available_containers("other"), 16);
}

TEST(HybridEngine, DoubleSwitchThrows) {
  Fixture f;
  f.hx.add_service(service(), vm_spec());
  f.engine.run();
  f.hx.switch_to_serverless("svc", 10.0, [](bool) {});
  EXPECT_THROW(f.hx.switch_to_serverless("svc", 10.0, [](bool) {}),
               ContractError);
  EXPECT_THROW(f.hx.switch_to_iaas("svc", 1.0, [](bool) {}), ContractError);
}

TEST(HybridEngine, SwitchToCurrentModeThrows) {
  Fixture f;
  f.hx.add_service(service(), vm_spec());
  f.engine.run();
  EXPECT_THROW(f.hx.switch_to_iaas("svc", 1.0, [](bool) {}), ContractError);
}

TEST(HybridEngine, ConfigValidateRejectsBadValues) {
  auto bad = [](auto mutate) {
    HybridEngineConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), ContractError);
  };
  bad([](HybridEngineConfig& c) { c.mirror_fraction = -0.1; });
  bad([](HybridEngineConfig& c) { c.mirror_fraction = 1.5; });
  bad([](HybridEngineConfig& c) { c.prewarm_poll_s = 0.0; });
  bad([](HybridEngineConfig& c) { c.switch_timeout_s = 0.0; });
  bad([](HybridEngineConfig& c) { c.switch_max_retries = 0; });
  bad([](HybridEngineConfig& c) { c.switch_retry_backoff = 0.9; });
  bad([](HybridEngineConfig& c) { c.abort_cooldown_s = -1.0; });
}

TEST(HybridEngine, TimeoutAbortReleasesWarmSetAndBalancesAccounting) {
  HybridEngineConfig cfg;
  cfg.switch_timeout_s = 3.0;
  // Pool of three slots; "hog" occupies one, svc needs five (Eq. 7) so the
  // prewarm can only ever partially succeed.
  Fixture f(cfg, 768.0);
  f.hx.add_service(service(), vm_spec());
  workload::FunctionProfile hog = service();
  hog.name = "hog";
  hog.exec.cpu_seconds = 1000.0;  // never finishes within the test
  f.sp.register_function(hog);
  f.sp.submit("hog", [](const workload::QueryRecord&) {});
  f.engine.run_until(6.0);  // VM booted, hog busy

  bool result = true;
  f.hx.switch_to_serverless("svc", 10.0, [&](bool ok) { result = ok; });
  EXPECT_EQ(f.sp.counts("svc").total(), 2);  // partial prewarm only
  f.engine.run_until(9.5);                   // timeout fires at 9.0
  EXPECT_FALSE(result);
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kIaas);  // graceful degradation
  EXPECT_FALSE(f.hx.transitioning("svc"));
  EXPECT_EQ(f.hx.switch_aborts(), 1u);
  EXPECT_GT(f.hx.switch_retries(), 0u);  // shortfall polls backed off
  // The abort released everything the switch acquired: zero residual warm
  // containers, and the memory integral is flat from here on.
  EXPECT_EQ(f.sp.counts("svc").total(), 0);
  const double at_abort = f.sp.memory_mb_seconds("svc", f.engine.now());
  f.engine.run_until(20.0);
  EXPECT_DOUBLE_EQ(f.sp.memory_mb_seconds("svc", f.engine.now()), at_abort);
  // The VM never went down, so IaaS rent matches a run that never switched.
  EXPECT_TRUE(f.ip.is_running("svc"));
  Fixture g(cfg, 768.0);
  g.hx.add_service(service(), vm_spec());
  g.engine.run_until(20.0);
  EXPECT_DOUBLE_EQ(f.ip.rented_core_seconds("svc", 20.0),
                   g.ip.rented_core_seconds("svc", 20.0));
}

TEST(HybridEngine, StalePollsAfterAbortAreSupersededByGeneration) {
  HybridEngineConfig cfg;
  cfg.switch_timeout_s = 3.0;
  Fixture f(cfg, 768.0);
  f.hx.add_service(service(), vm_spec());
  workload::FunctionProfile hog = service();
  hog.name = "hog";
  hog.exec.cpu_seconds = 1000.0;
  f.sp.register_function(hog);
  f.sp.submit("hog", [](const workload::QueryRecord&) {});
  f.engine.run_until(6.0);

  f.hx.switch_to_serverless("svc", 10.0, [](bool) {});
  // Backed-off polls may be scheduled past the 9.0 abort; their generation
  // check must drop them rather than re-prewarming or flipping the route.
  f.engine.run_until(30.0);
  EXPECT_EQ(f.sp.counts("svc").total(), 0);
  EXPECT_TRUE(f.hx.switch_events().empty());
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kIaas);
  EXPECT_FALSE(f.hx.transitioning("svc"));
}

TEST(HybridEngine, TimeoutAbortRestoresPreSwitchRetireState) {
  HybridEngineConfig cfg;
  cfg.switch_timeout_s = 6.0;  // long enough for the 5 s VM boot leg
  Fixture f(cfg, 768.0);
  f.hx.add_service(service(), vm_spec());
  f.engine.run_until(6.0);
  // Round-trip: serverless and back, which retires svc on the shared pool.
  f.hx.switch_to_serverless("svc", 4.0, [](bool) {});
  f.engine.run_until(8.0);
  ASSERT_EQ(f.hx.route("svc"), DeployMode::kServerless);
  f.hx.switch_to_iaas("svc", 4.0, [](bool) {});
  f.engine.run_until(15.0);
  ASSERT_EQ(f.hx.route("svc"), DeployMode::kIaas);
  ASSERT_TRUE(f.sp.retired("svc"));

  // Fill the pool so the next to-serverless switch cannot complete.
  workload::FunctionProfile hog = service();
  hog.name = "hog";
  hog.exec.cpu_seconds = 1000.0;
  f.sp.register_function(hog);
  for (int i = 0; i < 3; ++i) {
    f.sp.submit("hog", [](const workload::QueryRecord&) {});
  }
  f.engine.run_until(16.0);

  bool result = true;
  f.hx.switch_to_serverless("svc", 10.0, [&](bool ok) { result = ok; });
  EXPECT_FALSE(f.sp.retired("svc"));  // unretired for the attempt
  f.engine.run_until(23.0);           // timeout at 22.0
  EXPECT_FALSE(result);
  // The abort re-retired the service: a leaked unretire would let mirrored
  // samples rebuild warm containers the accounting no longer tracks.
  EXPECT_TRUE(f.sp.retired("svc"));
  EXPECT_EQ(f.sp.counts("svc").total(), 0);
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kIaas);
  // The abort also starts the anti-flap cooldown.
  EXPECT_TRUE(f.hx.in_cooldown("svc"));
  f.engine.run_until(32.5);  // cooldown ends at 22.0 + 10.0
  EXPECT_FALSE(f.hx.in_cooldown("svc"));
}

TEST(HybridEngine, ToIaasSwitchAbortsAfterBoundedBootRetries) {
  Fixture f;
  f.hx.add_service(service(), vm_spec());
  f.engine.run_until(6.0);
  f.hx.switch_to_serverless("svc", 4.0, [](bool) {});
  f.engine.run_until(10.0);
  ASSERT_EQ(f.hx.route("svc"), DeployMode::kServerless);

  sim::FaultConfig fc;
  fc.vm_boot_fail_first_n = 100;  // every boot attempt fails
  sim::FaultInjector faults(fc, sim::Rng(99));
  f.ip.set_fault_injector(&faults);

  bool result = true;
  f.hx.switch_to_iaas("svc", 4.0, [&](bool ok) { result = ok; });
  // Attempts: boot at 10 fails at 15, retries (backed off) fail at 20.25
  // and 25.75; switch_max_retries = 3 then aborts, inside the 30 s timeout.
  f.engine.run_until(26.0);
  EXPECT_FALSE(result);
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kServerless);  // stayed put
  EXPECT_FALSE(f.hx.transitioning("svc"));
  EXPECT_EQ(f.ip.state("svc"), iaas::VmState::kStopped);
  EXPECT_EQ(faults.counters().vm_boot_failures, 3u);  // bounded
  EXPECT_EQ(f.hx.switch_retries(), 2u);
  EXPECT_EQ(f.hx.switch_aborts(), 1u);
  EXPECT_TRUE(f.hx.in_cooldown("svc"));
  // Graceful degradation, not an outage: the warm set keeps serving.
  EXPECT_GT(f.sp.counts("svc").total(), 0);
  int done = 0;
  f.hx.submit("svc", [&](const workload::QueryRecord&) { ++done; });
  f.engine.run_until(27.0);
  EXPECT_EQ(done, 1);
}

TEST(HybridEngine, ToIaasTimeoutAbortsStragglingBoot) {
  HybridEngineConfig cfg;
  cfg.switch_timeout_s = 3.0;
  Fixture f(cfg);
  f.hx.add_service(service(), vm_spec());
  f.engine.run_until(6.0);
  f.hx.switch_to_serverless("svc", 4.0, [](bool) {});
  f.engine.run_until(10.0);
  ASSERT_EQ(f.hx.route("svc"), DeployMode::kServerless);

  sim::FaultConfig fc;
  fc.vm_straggler_p = 1.0;
  fc.vm_straggler_factor = 10.0;  // 5 s boot becomes 50 s
  sim::FaultInjector faults(fc, sim::Rng(7));
  f.ip.set_fault_injector(&faults);

  bool result = true;
  f.hx.switch_to_iaas("svc", 4.0, [&](bool ok) { result = ok; });
  f.engine.run_until(14.0);  // timeout fires at 13.0, mid-boot
  EXPECT_FALSE(result);
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kServerless);
  EXPECT_EQ(f.ip.state("svc"), iaas::VmState::kStopped);  // boot aborted
  EXPECT_EQ(faults.counters().vm_stragglers, 1u);
  // The straggler's original boot event (due at 60.0) must be inert.
  f.engine.run();
  EXPECT_EQ(f.ip.state("svc"), iaas::VmState::kStopped);
  EXPECT_EQ(f.hx.route("svc"), DeployMode::kServerless);
}

TEST(HybridEngine, UnknownServiceThrows) {
  Fixture f;
  EXPECT_THROW(f.hx.submit("ghost", [](const workload::QueryRecord&) {}),
               ContractError);
  EXPECT_THROW((void)f.hx.route("ghost"), ContractError);
}

}  // namespace
}  // namespace amoeba::core
