#include "core/meter_curve.hpp"

#include <gtest/gtest.h>

namespace amoeba::core {
namespace {

MeterCurve simple_curve() {
  return MeterCurve({{0.1, 0.05}, {0.5, 0.10}, {0.9, 0.30}});
}

TEST(MeterCurve, LatencyInterpolatesLinearly) {
  const auto c = simple_curve();
  EXPECT_DOUBLE_EQ(c.latency_at(0.1), 0.05);
  EXPECT_DOUBLE_EQ(c.latency_at(0.3), 0.075);
  EXPECT_DOUBLE_EQ(c.latency_at(0.7), 0.20);
}

TEST(MeterCurve, LatencyClampsOutsideRange) {
  const auto c = simple_curve();
  EXPECT_DOUBLE_EQ(c.latency_at(0.0), 0.05);
  EXPECT_DOUBLE_EQ(c.latency_at(2.0), 0.30);
}

TEST(MeterCurve, PressureInvertsLatency) {
  const auto c = simple_curve();
  EXPECT_DOUBLE_EQ(c.pressure_for(0.05), 0.1);
  EXPECT_DOUBLE_EQ(c.pressure_for(0.075), 0.3);
  EXPECT_DOUBLE_EQ(c.pressure_for(0.30), 0.9);
}

TEST(MeterCurve, RoundTripThroughInterior) {
  const auto c = simple_curve();
  for (double p : {0.15, 0.33, 0.5, 0.77}) {
    EXPECT_NEAR(c.pressure_for(c.latency_at(p)), p, 1e-12);
  }
}

TEST(MeterCurve, PressureClampsOutsideRange) {
  const auto c = simple_curve();
  EXPECT_DOUBLE_EQ(c.pressure_for(0.01), 0.1);
  EXPECT_DOUBLE_EQ(c.pressure_for(5.0), 0.9);
}

TEST(MeterCurve, IsotonicRepairOfNoisyLatency) {
  // A dip from simulation noise must not break invertibility.
  const MeterCurve c({{0.1, 0.10}, {0.3, 0.09}, {0.5, 0.20}});
  EXPECT_DOUBLE_EQ(c.latency_at(0.3), 0.10);  // clamped up
  // Flat segment inverts to its lowest (conservative) pressure.
  EXPECT_DOUBLE_EQ(c.pressure_for(0.10), 0.1);
}

TEST(MeterCurve, RejectsDegenerateInput) {
  EXPECT_THROW(MeterCurve({{0.1, 0.05}}), ContractError);
  EXPECT_THROW(MeterCurve({{0.5, 0.05}, {0.5, 0.10}}), ContractError);
  EXPECT_THROW(MeterCurve({{0.5, 0.05}, {0.4, 0.10}}), ContractError);
}

TEST(MeterCurve, Accessors) {
  const auto c = simple_curve();
  EXPECT_DOUBLE_EQ(c.base_latency(), 0.05);
  EXPECT_DOUBLE_EQ(c.max_pressure(), 0.9);
  EXPECT_EQ(c.points().size(), 3u);
}

}  // namespace
}  // namespace amoeba::core
