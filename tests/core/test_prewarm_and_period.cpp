#include <gtest/gtest.h>

#include "core/prewarm_policy.hpp"
#include "core/sample_period.hpp"

namespace amoeba::core {
namespace {

TEST(PrewarmPolicy, Eq7Bracketing) {
  PrewarmPolicy p;
  // Eq. 7: (n-1)/QoS_t < V_u <= n/QoS_t.
  for (double load : {0.3, 1.0, 7.7, 42.0}) {
    for (double qos : {0.1, 0.5, 2.0}) {
      const int n = p.containers_for(load, qos);
      EXPECT_LE(load, static_cast<double>(n) / qos + 1e-12)
          << load << " " << qos;
      if (n > p.min_containers) {
        EXPECT_GT(load, (static_cast<double>(n) - 1.0) / qos - 1e-9);
      }
    }
  }
}

TEST(PrewarmPolicy, ExactMultipleUsesTightCount) {
  PrewarmPolicy p;
  // V_u = 10, QoS = 0.5 -> n = 5 exactly satisfies V_u <= n/QoS.
  EXPECT_EQ(p.containers_for(10.0, 0.5), 5);
}

TEST(PrewarmPolicy, ZeroLoadGivesMinimum) {
  PrewarmPolicy p;
  EXPECT_EQ(p.containers_for(0.0, 1.0), p.min_containers);
}

TEST(PrewarmPolicy, HeadroomScales) {
  PrewarmPolicy p;
  p.headroom = 1.5;
  EXPECT_EQ(p.containers_for(10.0, 1.0), 15);
}

TEST(PrewarmPolicy, ClampsToBounds) {
  PrewarmPolicy p;
  p.min_containers = 2;
  p.max_containers = 8;
  EXPECT_EQ(p.containers_for(0.1, 1.0), 2);
  EXPECT_EQ(p.containers_for(1000.0, 1.0), 8);
}

TEST(PrewarmPolicy, Validation) {
  PrewarmPolicy p;
  EXPECT_THROW((void)p.containers_for(-1.0, 1.0), ContractError);
  EXPECT_THROW((void)p.containers_for(1.0, 0.0), ContractError);
  p.headroom = 0.5;
  EXPECT_THROW((void)p.containers_for(1.0, 1.0), ContractError);
}

TEST(SamplePeriod, Eq8Bound) {
  SamplePeriodParams p;
  p.cold_start_s = 2.0;
  p.qos_target_s = 0.5;
  p.exec_time_s = 0.3;
  p.allowed_error = 0.1;
  // Eq. 8: (2.0 - 0.5 + 0.3) / (0.1 * 0.5) = 36.0 — the allowed error e
  // multiplies the QoS target in the denominator. (The previous (1-e)
  // form gave 4.0 here and, absurdly, a finite period at e -> 0.)
  EXPECT_NEAR(min_sample_period(p, 0.1), 36.0, 1e-12);
}

TEST(SamplePeriod, SmallerErrorRequiresLongerPeriod) {
  // One accidental cold start contributes a fixed excess latency to the
  // period's aggregate; only a longer period dilutes it below a smaller
  // allowed scope. Eq. 8's bound therefore grows as e shrinks, diverging
  // at e -> 0.
  SamplePeriodParams p;
  p.cold_start_s = 2.0;
  p.qos_target_s = 0.5;
  p.exec_time_s = 0.3;
  p.allowed_error = 0.1;
  const double loose = min_sample_period(p, 0.1);
  p.allowed_error = 0.01;
  const double strict = min_sample_period(p, 0.1);
  EXPECT_GT(strict, loose);
  EXPECT_NEAR(strict, 10.0 * loose, 1e-9);  // bound scales as 1/e
}

TEST(SamplePeriod, FloorAppliesWhenBoundIsSmallOrNegative) {
  SamplePeriodParams p;
  p.cold_start_s = 0.1;
  p.qos_target_s = 5.0;  // cold start within target: bound negative
  p.exec_time_s = 0.1;
  p.allowed_error = 0.1;
  // Ample slack: a cold start cannot push the aggregate past the scope at
  // any period, so the practical floor is the binding constraint.
  EXPECT_DOUBLE_EQ(min_sample_period(p, 2.0), 2.0);
  // Stays true however small the allowed error gets.
  p.allowed_error = 1e-6;
  EXPECT_DOUBLE_EQ(min_sample_period(p, 2.0), 2.0);
}

TEST(SamplePeriod, Validation) {
  SamplePeriodParams p;
  p.allowed_error = 1.0;
  EXPECT_THROW((void)min_sample_period(p), ContractError);
  p.allowed_error = 0.5;
  p.qos_target_s = 0.0;
  EXPECT_THROW((void)min_sample_period(p), ContractError);
}

}  // namespace
}  // namespace amoeba::core
