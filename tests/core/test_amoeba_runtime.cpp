// Closed-loop tests of the full Amoeba runtime: monitor ticks drive the
// controller, which drives the hybrid engine's switch protocol.
#include "core/amoeba.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "obs/exporters.hpp"
#include "obs/json.hpp"
#include "workload/load_generator.hpp"
#include "workload/meters.hpp"

namespace amoeba::core {
namespace {

serverless::PlatformConfig sp_config() {
  serverless::PlatformConfig cfg;
  cfg.cores = 8.0;
  cfg.pool_memory_mb = 8192.0;  // 32 containers
  cfg.disk_bps = 1.0e9;
  cfg.net_bps = 1.0e9;
  cfg.cold_start_mean_s = 0.5;
  cfg.cold_start_cv = 0.0;
  cfg.keep_alive_s = 60.0;
  return cfg;
}

iaas::IaasConfig ip_config() {
  iaas::IaasConfig cfg;
  cfg.vm_boot_s = 3.0;
  return cfg;
}

workload::FunctionProfile service() {
  workload::FunctionProfile p;
  p.name = "svc";
  p.exec = {.cpu_seconds = 0.08, .io_bytes = 0.0, .net_bytes = 0.0};
  p.code_bytes = 1e6;
  p.result_bytes = 1e4;
  p.platform_overhead_s = 0.01;
  p.rpc_overhead_s = 0.002;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.05;
  p.qos_target_s = 0.5;
  p.peak_load_qps = 40.0;
  return p;
}

iaas::VmSpec vm_spec() {
  // Provisioned for the service's peak (the paper's premise): 6 cores at
  // ~12 queries/s/core comfortably hold the scenarios' highest loads.
  iaas::VmSpec s;
  s.cores = 6.0;
  s.memory_mb = 2560.0;
  s.boot_s = 3.0;
  return s;
}

MeterCalibration synthetic_calibration() {
  const auto cfg = sp_config();
  MeterCalibration cal;
  for (std::size_t d = 0; d < kNumResources; ++d) {
    const auto p = workload::meter_profile(workload::kAllMeters[d]);
    const double base = p.ideal_serverless_latency(cfg.disk_bps, cfg.net_bps);
    cal.curves[d] = MeterCurve(
        {{0.02, base}, {0.5, base * 1.5}, {0.95, base * 4.0}});
  }
  return cal;
}

ServiceArtifacts artifacts() {
  // Solo serverless latency of `service()`: 0.01 + 0.001 + 0.08 + ~0.00001.
  const double l0 = 0.0915;
  ServiceArtifacts a;
  a.solo_latency_s = l0;
  a.alpha_s = 0.0;
  std::vector<double> ps = {0.0, 1.0};
  std::vector<double> vs = {0.0, 100.0};
  for (std::size_t d = 0; d < kNumResources; ++d) {
    const double slope = d == kCpuDim ? 0.15 : 0.02;
    a.surfaces[d] = LatencySurface(
        ps, vs, {l0, l0, l0 + slope, l0 + slope});
  }
  a.pressure_per_qps = {0.08 / 8.0, 0.0, 0.0};  // cpu-s per query / cores
  return a;
}

AmoebaConfig runtime_config() {
  AmoebaConfig cfg;
  cfg.monitor.sample_period_s = 2.0;
  cfg.controller.hysteresis_ticks = 2;
  cfg.engine.mirror_fraction = 0.10;
  cfg.load_window_s = 10.0;
  return cfg;
}

struct Fixture {
  sim::Engine engine;
  serverless::ServerlessPlatform sp;
  iaas::IaasPlatform ip;
  AmoebaRuntime runtime;

  explicit Fixture(AmoebaConfig cfg = runtime_config(),
                   int max_containers = 0)
      : sp(engine, sp_config(), sim::Rng(1)),
        ip(engine, ip_config(), sim::Rng(2)),
        runtime(engine, sp, ip, synthetic_calibration(), cfg, sim::Rng(3)) {
    runtime.add_service(service(), vm_spec(), artifacts(), max_containers);
  }
};

TEST(AmoebaRuntime, LowLoadSwitchesToServerless) {
  Fixture f;
  f.runtime.start();
  workload::ConstantLoadGenerator gen(f.engine, sim::Rng(4), 4.0, [&] {
    f.runtime.submit("svc", [](const workload::QueryRecord&) {});
  });
  gen.start();
  f.engine.run_until(60.0);
  gen.stop();
  f.runtime.stop();

  EXPECT_EQ(f.runtime.controller().mode("svc"), DeployMode::kServerless);
  ASSERT_GE(f.runtime.switch_events().size(), 1u);
  EXPECT_EQ(f.runtime.switch_events()[0].to, DeployMode::kServerless);
  // IaaS resources were released after the switch.
  EXPECT_EQ(f.ip.state("svc"), iaas::VmState::kStopped);
}

TEST(AmoebaRuntime, HighLoadStaysOnIaas) {
  // Cap the service at 4 containers: λmax ≈ 4 × 10.9 ≈ 43 > raw capacity
  // check; at 80 QPS the discriminant must keep it on IaaS.
  Fixture f(runtime_config(), /*max_containers=*/4);
  f.runtime.start();
  workload::ConstantLoadGenerator gen(f.engine, sim::Rng(5), 80.0, [&] {
    f.runtime.submit("svc", [](const workload::QueryRecord&) {});
  });
  gen.start();
  f.engine.run_until(60.0);
  gen.stop();
  f.runtime.stop();

  EXPECT_EQ(f.runtime.controller().mode("svc"), DeployMode::kIaas);
  EXPECT_TRUE(f.runtime.switch_events().empty());
}

TEST(AmoebaRuntime, LoadSwingSwitchesThereAndBack) {
  Fixture f(runtime_config(), /*max_containers=*/4);
  f.runtime.start();
  auto gen = std::make_unique<workload::ConstantLoadGenerator>(
      f.engine, sim::Rng(6), 4.0, [&] {
        f.runtime.submit("svc", [](const workload::QueryRecord&) {});
      });
  gen->start();
  // Low load until t=60, then a surge far beyond 4 containers' capacity.
  f.engine.schedule(60.0, [&] { gen->set_rate(80.0); });
  f.engine.run_until(140.0);
  gen->stop();
  f.runtime.stop();

  const auto& events = f.runtime.switch_events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].to, DeployMode::kServerless);
  EXPECT_EQ(events[1].to, DeployMode::kIaas);
  EXPECT_EQ(f.runtime.controller().mode("svc"), DeployMode::kIaas);
  EXPECT_TRUE(f.ip.is_running("svc"));
}

TEST(AmoebaRuntime, QosHeldAcrossTheSwing) {
  // Diurnal-style gradual ramp: low (5 qps) -> 45 qps over a minute and
  // back. The controller's margin must move the service to IaaS before the
  // serverless pool (capped at 4 containers, λmax ≈ 32 qps) saturates, and
  // the tail stays within the QoS target throughout.
  Fixture f(runtime_config(), /*max_containers=*/4);
  f.runtime.start();
  stats::SampleSet latencies;
  auto rate_fn = [](double t) {
    if (t < 60.0) return 5.0;
    if (t < 120.0) return 5.0 + (t - 60.0) / 60.0 * 40.0;  // ramp up
    if (t < 180.0) return 45.0;
    if (t < 240.0) return 45.0 - (t - 180.0) / 60.0 * 40.0;  // ramp down
    return 5.0;
  };
  workload::PoissonLoadGenerator gen(
      f.engine, sim::Rng(7), rate_fn, 45.0, [&] {
        f.runtime.submit("svc", [&](const workload::QueryRecord& r) {
          if (r.arrival > 10.0) latencies.add(r.latency());
        });
      });
  gen.start();
  f.engine.run_until(280.0);
  gen.stop();
  f.runtime.stop();

  ASSERT_GT(latencies.size(), 3000u);
  EXPECT_LT(latencies.quantile(0.95), service().qos_target_s);
}

TEST(AmoebaRuntime, MirroredHeartbeatsCalibrateEstimator) {
  Fixture f;
  f.runtime.start();
  workload::ConstantLoadGenerator gen(f.engine, sim::Rng(8), 20.0, [&] {
    f.runtime.submit("svc", [](const workload::QueryRecord&) {});
  });
  gen.start();
  f.engine.run_until(30.0);
  gen.stop();
  f.runtime.stop();
  // 10% of ~600 queries mirrored -> plenty of heartbeat samples.
  EXPECT_GE(f.runtime.controller().estimator("svc").samples(), 24u);
}

TEST(AmoebaRuntime, TimelineSamplingRecordsModeAndUsage) {
  auto cfg = runtime_config();
  cfg.timeline_period_s = 1.0;
  Fixture f(cfg);
  f.runtime.start();
  workload::ConstantLoadGenerator gen(f.engine, sim::Rng(9), 4.0, [&] {
    f.runtime.submit("svc", [](const workload::QueryRecord&) {});
  });
  gen.start();
  f.engine.run_until(40.0);
  gen.stop();
  f.runtime.stop();

  const auto& tl = f.runtime.timeline("svc");
  EXPECT_GE(tl.mode.size(), 35u);
  EXPECT_DOUBLE_EQ(tl.mode.points().front().value, 0.0);  // started IaaS
  EXPECT_DOUBLE_EQ(tl.mode.points().back().value, 1.0);   // ended serverless
  // Cumulative usage is non-decreasing.
  const auto& cpu = tl.cpu_core_seconds.points();
  for (std::size_t i = 1; i < cpu.size(); ++i) {
    EXPECT_GE(cpu[i].value, cpu[i - 1].value - 1e-9);
  }
}

TEST(AmoebaRuntime, TimelinePeriodDefaultsToMonitorSamplePeriod) {
  {
    Fixture f;  // runtime_config() leaves timeline_period_s at 0
    EXPECT_DOUBLE_EQ(f.runtime.timeline_period(), 2.0);
    f.runtime.start();
    f.engine.run_until(21.0);
    f.runtime.stop();
    // One sample per monitor period (the t=0 sample precedes start()).
    EXPECT_GE(f.runtime.timeline("svc").mode.size(), 10u);
  }
  {
    auto cfg = runtime_config();
    cfg.timeline_period_s = -1.0;  // negative disables
    Fixture f(cfg);
    EXPECT_LT(f.runtime.timeline_period(), 0.0);
    f.runtime.start();
    f.engine.run_until(21.0);
    f.runtime.stop();
    EXPECT_EQ(f.runtime.timeline("svc").mode.size(), 0u);
  }
  {
    auto cfg = runtime_config();
    cfg.timeline_period_s = 0.5;  // positive used as given
    Fixture f(cfg);
    EXPECT_DOUBLE_EQ(f.runtime.timeline_period(), 0.5);
  }
}

TEST(AmoebaRuntime, ObservabilityRecordsDecisionsAndSpans) {
  obs::Observer observer{obs::ObsConfig{}};
  auto cfg = runtime_config();
  cfg.observer = &observer;
  Fixture f(cfg, /*max_containers=*/4);
  f.runtime.start();
  auto gen = std::make_unique<workload::ConstantLoadGenerator>(
      f.engine, sim::Rng(6), 4.0, [&] {
        f.runtime.submit("svc", [](const workload::QueryRecord&) {});
      });
  gen->start();
  f.engine.schedule(60.0, [&] { gen->set_rate(80.0); });  // force a swing
  f.engine.run_until(140.0);
  gen->stop();
  f.runtime.stop();

  // One DecisionRecord per monitor tick for the managed service.
  EXPECT_EQ(observer.audit().size(), f.runtime.monitor().samples_taken());
  bool saw_full_record = false;
  for (const auto& r : observer.audit().records()) {
    EXPECT_EQ(r.service, "svc");
    EXPECT_FALSE(r.decision.empty());
    if (r.lambda_max.has_value()) {
      saw_full_record = true;
      EXPECT_FALSE(r.lambda_iterates.empty());
      EXPECT_GT(r.mu, 0.0);
    }
  }
  EXPECT_TRUE(saw_full_record);

  // The swing produced at least one switch-protocol span and the pool
  // produced container-boot async spans.
  std::size_t switch_spans = 0, query_spans = 0, boot_spans = 0;
  for (const auto& ev : observer.tracer().events()) {
    if (ev.phase == obs::TracePhase::kBegin && ev.category == "switch") {
      ++switch_spans;
    }
    if (ev.phase == obs::TracePhase::kAsyncBegin) {
      if (ev.name == "query") ++query_spans;
      if (ev.name == "container_boot") ++boot_spans;
    }
  }
  EXPECT_GE(switch_spans, 2u);
  EXPECT_GT(query_spans, 100u);
  EXPECT_GE(boot_spans, 1u);
  EXPECT_EQ(observer.tracer().open_spans(), 0u);

  // Metrics were snapshotted each tick (plus stop()'s final snapshot) and
  // the exporters accept the run.
  EXPECT_EQ(observer.metrics().snapshots().size(),
            f.runtime.monitor().samples_taken() + 1);
  std::ostringstream trace_os, summary_os;
  obs::write_chrome_trace(observer.tracer(), trace_os);
  EXPECT_TRUE(obs::parse_json(trace_os.str()).has_value());
  obs::write_summary(observer, summary_os);
  EXPECT_NE(summary_os.str().find("decisions"), std::string::npos);
}

TEST(AmoebaRuntime, DisabledObserverRecordsNothing) {
  obs::Observer observer;  // default-constructed null sink
  auto cfg = runtime_config();
  cfg.observer = &observer;
  Fixture f(cfg);
  f.runtime.start();
  f.engine.run_until(20.0);
  f.runtime.stop();
  EXPECT_TRUE(observer.audit().empty());
  EXPECT_TRUE(observer.tracer().events().empty());
  EXPECT_TRUE(observer.metrics().snapshots().empty());
}

TEST(AmoebaRuntime, MeasuredLoadTracksGenerator) {
  Fixture f;
  f.runtime.start();
  workload::ConstantLoadGenerator gen(f.engine, sim::Rng(10), 12.0, [&] {
    f.runtime.submit("svc", [](const workload::QueryRecord&) {});
  });
  gen.start();
  f.engine.run_until(30.0);
  EXPECT_NEAR(f.runtime.measured_load("svc"), 12.0, 3.0);
  gen.stop();
  f.runtime.stop();
}

TEST(AmoebaRuntime, AddServiceAfterStartThrows) {
  Fixture f;
  f.runtime.start();
  auto p = service();
  p.name = "late";
  EXPECT_THROW(f.runtime.add_service(p, vm_spec(), artifacts()),
               ContractError);
  f.runtime.stop();
}

}  // namespace
}  // namespace amoeba::core
