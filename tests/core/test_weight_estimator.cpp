#include "core/weight_estimator.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace amoeba::core {
namespace {

constexpr double kL0 = 0.1;

WeightEstimatorConfig pca_config() {
  WeightEstimatorConfig cfg;
  cfg.enable_pca = true;
  cfg.min_samples = 24;
  return cfg;
}

TEST(WeightEstimator, AccumulateModeBeforeCalibration) {
  WeightEstimator est(pca_config(), kL0, 0.0);
  // One resource degraded to 0.3, others at L0: NoM-style accumulation
  // predicts L0 + (0.3 - L0) = 0.3.
  const Features f = {0.3, kL0, kL0};
  EXPECT_FALSE(est.calibrated());
  EXPECT_NEAR(est.predict_service_time(f), 0.3, 1e-12);
  EXPECT_NEAR(est.mu(f), 1.0 / 0.3, 1e-9);
}

TEST(WeightEstimator, AccumulationIsPessimisticUnderJointDegradation) {
  WeightEstimator est(pca_config(), kL0, 0.0);
  // All three surfaces report 0.2: the real latency is ~0.2 (contention on
  // multiple resources overlaps), but accumulation predicts 0.4.
  const Features f = {0.2, 0.2, 0.2};
  EXPECT_NEAR(est.predict_service_time(f), 0.4, 1e-12);
}

TEST(WeightEstimator, NomModeNeverCalibrates) {
  auto cfg = pca_config();
  cfg.enable_pca = false;
  WeightEstimator est(cfg, kL0, 0.0);
  sim::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Features f = {kL0 + rng.uniform() * 0.2, kL0, kL0};
    est.observe(f, f[0]);
  }
  EXPECT_FALSE(est.calibrated());
  EXPECT_FALSE(est.weights().has_value());
  EXPECT_EQ(est.refits(), 0u);
}

TEST(WeightEstimator, PcaCalibrationLearnsDominantResource) {
  WeightEstimator est(pca_config(), kL0, 0.0);
  sim::Rng rng(2);
  // Ground truth: observed latency follows only resource 0; the other two
  // features fluctuate but carry no signal.
  for (int i = 0; i < 100; ++i) {
    Features f = {kL0 + rng.uniform() * 0.3, kL0 + rng.uniform() * 0.02,
                  kL0 + rng.uniform() * 0.02};
    est.observe(f, f[0] + rng.normal(0.0, 0.002));
  }
  ASSERT_TRUE(est.calibrated());
  const Features probe = {0.35, kL0, kL0};
  EXPECT_NEAR(est.predict_service_time(probe), 0.35, 0.02);
}

TEST(WeightEstimator, PcaBeatsAccumulationOnOverlappingContention) {
  // The paper's Fig. 14/15 mechanism: when degradations overlap, the
  // calibrated model stops double counting.
  WeightEstimator pca(pca_config(), kL0, 0.0);
  auto nom_cfg = pca_config();
  nom_cfg.enable_pca = false;
  WeightEstimator nom(nom_cfg, kL0, 0.0);

  sim::Rng rng(3);
  for (int i = 0; i < 150; ++i) {
    const double bump = rng.uniform() * 0.3;
    // Correlated features: all three report the same degradation, but the
    // true latency only degrades once.
    Features f = {kL0 + bump, kL0 + 0.8 * bump, kL0 + 0.6 * bump};
    const double truth = kL0 + bump + rng.normal(0.0, 0.002);
    pca.observe(f, truth);
    nom.observe(f, truth);
  }
  const Features probe = {kL0 + 0.2, kL0 + 0.16, kL0 + 0.12};
  const double truth = kL0 + 0.2;
  const double pca_err = std::abs(pca.predict_service_time(probe) - truth);
  const double nom_err = std::abs(nom.predict_service_time(probe) - truth);
  EXPECT_LT(pca_err, 0.03);
  EXPECT_GT(nom_err, 0.15);  // accumulation roughly triple counts
  EXPECT_LT(pca_err, nom_err / 3.0);
}

TEST(WeightEstimator, PredictionNeverBelowPhysicalFloor) {
  WeightEstimator est(pca_config(), kL0, 0.01);
  sim::Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    Features f = {kL0 + rng.uniform() * 0.01, kL0, kL0};
    est.observe(f, kL0 + 0.01);
  }
  // Extrapolate far below the training range.
  const Features probe = {0.0, 0.0, 0.0};
  EXPECT_GE(est.predict_service_time(probe), kL0 + 0.01);
}

TEST(WeightEstimator, SlidingWindowBoundsMemory) {
  auto cfg = pca_config();
  cfg.max_samples = 64;
  WeightEstimator est(cfg, kL0, 0.0);
  sim::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Features f = {kL0 + rng.uniform() * 0.1, kL0, kL0};
    est.observe(f, f[0]);
  }
  EXPECT_LE(est.samples(), 64u);
}

TEST(WeightEstimator, RefitIntervalAmortizesFitting) {
  auto cfg = pca_config();
  cfg.refit_interval = 16;
  WeightEstimator est(cfg, kL0, 0.0);
  sim::Rng rng(6);
  for (int i = 0; i < 120; ++i) {
    Features f = {kL0 + rng.uniform() * 0.1, kL0 + rng.uniform() * 0.01,
                  kL0};
    est.observe(f, f[0]);
  }
  // 1 initial fit at 24 samples + refits every 16 thereafter: (120-24)/16=6.
  EXPECT_LE(est.refits(), 8u);
  EXPECT_GE(est.refits(), 5u);
}

TEST(WeightEstimator, FeatureCapClampsSentinels) {
  auto cfg = pca_config();
  cfg.feature_cap_s = 1.0;
  WeightEstimator est(cfg, kL0, 0.0);
  // Uncalibrated accumulation with a 60 s saturated-cell sentinel: clamped
  // to the cap, so prediction is bounded instead of absurd.
  const Features f = {60.0, kL0, kL0};
  EXPECT_NEAR(est.predict_service_time(f), kL0 + (1.0 - kL0), 1e-12);
}

TEST(WeightEstimator, CappedFeaturesNeverExplainedAway) {
  // Train the regression in a benign regime, then probe with a saturated
  // feature: the prediction must be at least the pessimistic accumulation,
  // not the regression's benign extrapolation.
  auto cfg = pca_config();
  cfg.feature_cap_s = 0.5;
  WeightEstimator est(cfg, kL0, 0.0);
  sim::Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    Features f = {kL0 + rng.uniform() * 0.05, kL0, kL0};
    est.observe(f, kL0 + 0.01);  // latency barely moves with features
  }
  ASSERT_TRUE(est.calibrated());
  const Features saturated = {5.0, kL0, kL0};
  EXPECT_GE(est.predict_service_time(saturated), 0.5);
}

TEST(WeightEstimator, ObservationValidation) {
  WeightEstimator est(pca_config(), kL0, 0.0);
  EXPECT_THROW(est.observe({0.1, 0.1, 0.1}, 0.0), ContractError);
  EXPECT_THROW(est.observe({-0.1, 0.1, 0.1}, 0.1), ContractError);
}

TEST(WeightEstimator, ConfigValidation) {
  auto cfg = pca_config();
  cfg.min_samples = 2;  // below kNumResources + 1
  EXPECT_THROW(WeightEstimator(cfg, kL0, 0.0), ContractError);
  cfg = pca_config();
  cfg.max_samples = 8;
  EXPECT_THROW(WeightEstimator(cfg, kL0, 0.0), ContractError);
  EXPECT_THROW(WeightEstimator(pca_config(), 0.0, 0.0), ContractError);
}

}  // namespace
}  // namespace amoeba::core
