#include "core/latency_surface.hpp"

#include <gtest/gtest.h>

namespace amoeba::core {
namespace {

LatencySurface plane_surface() {
  // L(P, V) = 0.1 + 0.2 P + 0.01 V on a 3x3 grid: bilinear interpolation
  // of a plane is exact.
  std::vector<double> ps = {0.0, 0.5, 1.0};
  std::vector<double> vs = {0.0, 10.0, 20.0};
  std::vector<double> lat;
  for (double p : ps) {
    for (double v : vs) lat.push_back(0.1 + 0.2 * p + 0.01 * v);
  }
  return LatencySurface(ps, vs, lat);
}

TEST(LatencySurface, ExactAtGridPoints) {
  const auto s = plane_surface();
  EXPECT_DOUBLE_EQ(s.at(0.0, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(s.at(1.0, 20.0), 0.5);
  EXPECT_DOUBLE_EQ(s.at(0.5, 10.0), 0.3);
}

TEST(LatencySurface, BilinearIsExactForPlanes) {
  const auto s = plane_surface();
  for (double p : {0.1, 0.25, 0.6, 0.9}) {
    for (double v : {2.0, 7.5, 13.0, 19.0}) {
      EXPECT_NEAR(s.at(p, v), 0.1 + 0.2 * p + 0.01 * v, 1e-12);
    }
  }
}

TEST(LatencySurface, ClampsOutsideGrid) {
  const auto s = plane_surface();
  EXPECT_DOUBLE_EQ(s.at(-1.0, -5.0), s.at(0.0, 0.0));
  EXPECT_DOUBLE_EQ(s.at(2.0, 100.0), s.at(1.0, 20.0));
  EXPECT_DOUBLE_EQ(s.at(0.5, 100.0), s.at(0.5, 20.0));
}

TEST(LatencySurface, BaseLatencyIsLowLowCorner) {
  EXPECT_DOUBLE_EQ(plane_surface().base_latency(), 0.1);
}

TEST(LatencySurface, ValueAccessorRowMajor) {
  const auto s = plane_surface();
  EXPECT_DOUBLE_EQ(s.value(1, 2), 0.1 + 0.2 * 0.5 + 0.01 * 20.0);
  EXPECT_THROW((void)s.value(3, 0), ContractError);
}

TEST(LatencySurface, RejectsMalformedGrids) {
  std::vector<double> good_p = {0.0, 1.0};
  std::vector<double> good_v = {0.0, 1.0};
  EXPECT_THROW(LatencySurface({0.0}, good_v, {1.0, 1.0}), ContractError);
  EXPECT_THROW(LatencySurface(good_p, good_v, {1.0, 1.0, 1.0}),
               ContractError);
  EXPECT_THROW(LatencySurface({1.0, 0.0}, good_v, {1, 1, 1, 1}),
               ContractError);
  EXPECT_THROW(LatencySurface(good_p, good_v, {1.0, 1.0, -1.0, 1.0}),
               ContractError);
}

}  // namespace
}  // namespace amoeba::core
