// Edge cases of the M/M/N discriminant (Eq. 1–5) and the Eq. 7 prewarm
// count: near-saturation, single server, zero/negative-rate rejection, and
// exact-integer Eq. 7 boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "core/prewarm_policy.hpp"
#include "core/queueing.hpp"

namespace amoeba::core::queueing {
namespace {

constexpr double kMu = 2.0;

TEST(QueueingEdge, NearSaturationStaysFiniteAndInRange) {
  // rho -> 1-: the math runs in log space, so probabilities must stay
  // finite and inside [0, 1] arbitrarily close to the stability boundary.
  for (const int n : {1, 4, 40}) {
    for (const double eps : {1e-3, 1e-6, 1e-9, 1e-12}) {
      const double lambda = n * kMu * (1.0 - eps);
      const double p0 = pi0(lambda, n, kMu);
      const double pn = pi_n(lambda, n, kMu);
      const double c = erlang_c(lambda, n, kMu);
      EXPECT_TRUE(std::isfinite(p0));
      EXPECT_GE(p0, 0.0);
      EXPECT_LE(p0, 1.0);
      EXPECT_GE(pn, 0.0);
      EXPECT_LE(pn, 1.0);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
      // Waiting time blows up but must remain finite and non-negative.
      const double w = wait_quantile(lambda, n, kMu, 0.95);
      EXPECT_TRUE(std::isfinite(w));
      EXPECT_GE(w, 0.0);
    }
  }
}

TEST(QueueingEdge, NearSaturationViolatesAnyReasonableQos) {
  const int n = 8;
  const double lambda = n * kMu * (1.0 - 1e-9);
  EXPECT_FALSE(qos_satisfied(lambda, n, kMu, /*t_d=*/10.0, /*r=*/0.95));
}

TEST(QueueingEdge, SingleServerMatchesMm1ClosedForms) {
  // For N = 1 the system is M/M/1: P(wait) = rho, E[W] = rho/(mu - lambda).
  const double lambda = 1.2;
  const double r = lambda / kMu;
  EXPECT_NEAR(erlang_c(lambda, 1, kMu), r, 1e-12);
  EXPECT_NEAR(mean_wait(lambda, 1, kMu), r / (kMu - lambda), 1e-12);
  EXPECT_NEAR(pi0(lambda, 1, kMu), 1.0 - r, 1e-12);
}

TEST(QueueingEdge, ZeroArrivalRateIsRejected) {
  // V_u = 0: the discriminant requires lambda > 0 (an idle service has no
  // operating point; callers special-case it before the math).
  EXPECT_THROW((void)rho(0.0, 4, kMu), amoeba::ContractError);
  EXPECT_THROW((void)pi0(0.0, 4, kMu), amoeba::ContractError);
  EXPECT_THROW((void)mean_wait(0.0, 4, kMu), amoeba::ContractError);
}

TEST(QueueingEdge, NonPositiveServiceRateIsRejected) {
  for (const double mu : {0.0, -1.0, -1e-300}) {
    EXPECT_THROW((void)rho(1.0, 4, mu), amoeba::ContractError);
    EXPECT_THROW((void)qos_satisfied(1.0, 4, mu, 1.0, 0.95),
                 amoeba::ContractError);
    EXPECT_THROW((void)min_servers(1.0, mu, 1.0, 0.95),
                 amoeba::ContractError);
  }
}

TEST(QueueingEdge, NonPositiveServerCountIsRejected) {
  EXPECT_THROW((void)rho(1.0, 0, kMu), amoeba::ContractError);
  EXPECT_THROW((void)rho(1.0, -3, kMu), amoeba::ContractError);
}

TEST(QueueingEdge, MaxArrivalRateStaysInsideStabilityRegion) {
  const int n = 4;
  const auto lam = max_arrival_rate(n, kMu, /*t_d=*/1.2, /*r=*/0.95);
  ASSERT_TRUE(lam.has_value());
  EXPECT_LT(*lam, n * kMu);
  EXPECT_TRUE(qos_satisfied(*lam * (1.0 - 1e-6), n, kMu, 1.2, 0.95));
}

TEST(QueueingEdge, TightTargetBelowServiceTimeHasNoSolution) {
  // T_D <= 1/mu: even an empty system misses the target.
  EXPECT_EQ(eq5_lambda(4, kMu, /*t_d=*/0.4, /*r=*/0.95), std::nullopt);
  EXPECT_EQ(min_servers(1.0, kMu, /*t_d=*/0.4, /*r=*/0.95), std::nullopt);
  EXPECT_EQ(max_arrival_rate(4, kMu, /*t_d=*/0.4, /*r=*/0.95), std::nullopt);
}

// --- Eq. 7 prewarm-count boundaries ---------------------------------------

TEST(PrewarmEdge, ExactIntegerProductsSitOnTheBoundary) {
  PrewarmPolicy policy;
  policy.headroom = 1.0;
  policy.min_containers = 0;
  // Eq. 7: n = ceil(V_u * QoS_t). V_u * QoS_t = 4 exactly -> n = 4 (the
  // inequality (n-1)/QoS_t < V_u <= n/QoS_t is tight on the right).
  EXPECT_EQ(policy.containers_for(8.0, 0.5), 4);
  EXPECT_EQ(policy.containers_for(4.0, 1.0), 4);
  // Nudging the load infinitesimally above the boundary adds a container.
  EXPECT_EQ(policy.containers_for(8.0 + 1e-9, 0.5), 5);
  // Just below stays at n.
  EXPECT_EQ(policy.containers_for(8.0 - 1e-9, 0.5), 4);
}

TEST(PrewarmEdge, ZeroLoadWarmsOnlyTheFloor) {
  PrewarmPolicy policy;
  policy.headroom = 1.0;
  policy.min_containers = 0;
  EXPECT_EQ(policy.containers_for(0.0, 0.5), 0);
  policy.min_containers = 2;
  EXPECT_EQ(policy.containers_for(0.0, 0.5), 2);
}

TEST(PrewarmEdge, HeadroomScalesBeforeCeiling) {
  PrewarmPolicy policy;
  policy.headroom = 1.25;
  policy.min_containers = 0;
  // ceil(8 * 0.5 * 1.25) = ceil(5) = 5 — exact product with headroom.
  EXPECT_EQ(policy.containers_for(8.0, 0.5), 5);
}

TEST(PrewarmEdge, ClampsToConfiguredRange) {
  PrewarmPolicy policy;
  policy.headroom = 1.0;
  policy.min_containers = 1;
  policy.max_containers = 3;
  EXPECT_EQ(policy.containers_for(100.0, 1.0), 3);
  EXPECT_EQ(policy.containers_for(1e-9, 1.0), 1);
}

TEST(PrewarmEdge, RejectsInvalidParameters) {
  PrewarmPolicy policy;
  EXPECT_THROW((void)policy.containers_for(-1.0, 0.5), amoeba::ContractError);
  EXPECT_THROW((void)policy.containers_for(1.0, 0.0), amoeba::ContractError);
  policy.headroom = 0.5;
  EXPECT_THROW((void)policy.containers_for(1.0, 0.5), amoeba::ContractError);
}

}  // namespace
}  // namespace amoeba::core::queueing
