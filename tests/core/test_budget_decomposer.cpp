// Property suite for the end-to-end budget decomposer (DESIGN.md §14).
//
// The decomposition invariants must hold for ANY DAG and ANY positive
// weights, so they are checked the way a fuzzer would: ~20 random
// (seed, shape) combinations of layered DAGs with randomized per-stage
// content and weights, each asserting
//   * per-path budget sums never exceed the end-to-end target,
//   * the critical path consumes the target exactly,
//   * budgets stay strictly positive,
//   * renormalization is monotone (a slower stage only ever grows its own
//     budget and only ever shrinks the others').
#include "core/budget_decomposer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/random.hpp"

namespace amoeba::core {
namespace {

workload::FunctionProfile stage_profile(const std::string& name,
                                        double cpu_seconds) {
  workload::FunctionProfile p;
  p.name = name;
  p.exec = {.cpu_seconds = cpu_seconds, .io_bytes = 5.0e5,
            .net_bytes = 1.0e5};
  p.code_bytes = 1.0e6;
  p.result_bytes = 1.0e4;
  p.platform_overhead_s = 0.01;
  p.rpc_overhead_s = 0.005;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.1;
  p.qos_target_s = 1.0;
  p.peak_load_qps = 10.0;
  return p;
}

/// Random layered DAG: 2-4 layers of 1-3 stages; every non-root stage has
/// at least one parent in the previous layer, every non-leaf stage at
/// least one child in the next, plus random extra edges. Deterministic in
/// the seed.
workload::CallGraph random_dag(std::uint64_t seed) {
  sim::Rng gen(seed);
  const int n_layers = 2 + static_cast<int>(gen.uniform_index(3));
  std::vector<std::vector<int>> layers;
  workload::CallGraph::Builder b;
  int next = 0;
  for (int l = 0; l < n_layers; ++l) {
    const int width = 1 + static_cast<int>(gen.uniform_index(3));
    std::vector<int> layer;
    for (int i = 0; i < width; ++i) {
      const std::string label = "s" + std::to_string(next++);
      const double cpu = 0.01 + 0.001 * static_cast<double>(gen.uniform_index(100));
      layer.push_back(b.add_stage(label, stage_profile(label, cpu)));
    }
    layers.push_back(std::move(layer));
  }
  // Connectivity + random extras, deduped before declaration (the builder
  // rejects duplicate edges by contract).
  std::set<std::pair<int, int>> edges;
  for (std::size_t l = 1; l < layers.size(); ++l) {
    const auto& prev = layers[l - 1];
    const auto& cur = layers[l];
    for (const int v : cur) edges.emplace(prev[gen.uniform_index(prev.size())], v);
    for (const int u : prev) edges.emplace(u, cur[gen.uniform_index(cur.size())]);
    for (int extra = static_cast<int>(gen.uniform_index(3)); extra > 0; --extra) {
      edges.emplace(prev[gen.uniform_index(prev.size())], cur[gen.uniform_index(cur.size())]);
    }
  }
  for (const auto& [from, to] : edges) b.add_edge(from, to);
  return b.build();
}

std::vector<double> random_weights(const workload::CallGraph& g,
                                   std::uint64_t seed) {
  sim::Rng gen(seed ^ 0xabcdefULL);
  std::vector<double> w(static_cast<std::size_t>(g.size()));
  for (auto& wi : w) {
    wi = 0.01 + 0.001 * static_cast<double>(gen.uniform_index(500));
  }
  return w;
}

constexpr double kTargetS = 2.0;

void check_decomposition_invariants(const workload::CallGraph& g,
                                    const std::vector<double>& budgets,
                                    double target_s) {
  ASSERT_EQ(budgets.size(), static_cast<std::size_t>(g.size()));
  for (const double b : budgets) {
    EXPECT_GT(b, 0.0);
    EXPECT_LE(b, target_s * (1.0 + 1e-12));
  }
  // Per-path sums <= T; the heaviest path consumes T exactly.
  double heaviest = 0.0;
  for (const auto& path : g.paths()) {
    double s = 0.0;
    for (const int v : path) s += budgets[static_cast<std::size_t>(v)];
    EXPECT_LE(s, target_s * (1.0 + 1e-9));
    heaviest = std::max(heaviest, s);
  }
  EXPECT_NEAR(heaviest, target_s, target_s * 1e-9);
}

TEST(BudgetDecomposerProperties, HoldAcrossRandomSeedsAndShapes) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const workload::CallGraph g = random_dag(seed);
    const std::vector<double> w = random_weights(g, seed);
    BudgetDecomposer d(g, kTargetS, w);
    check_decomposition_invariants(g, d.budgets(), kTargetS);
  }
}

TEST(BudgetDecomposerProperties, RenormalizationIsMonotone) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const workload::CallGraph g = random_dag(seed);
    const std::vector<double> w = random_weights(g, seed);
    BudgetDecomposer d(g, kTargetS, w);
    const std::vector<double> before = d.budgets();

    // Stage `slow` reports a much larger p95: its own budget must not
    // shrink, every other stage's must not grow, and the invariants must
    // survive the renormalization.
    const int slow = static_cast<int>(seed) % g.size();
    const auto si = static_cast<std::size_t>(slow);
    d.observe(slow, 10.0 * w[si]);
    const std::vector<double> after = d.budgets();
    EXPECT_GE(after[si], before[si] * (1.0 - 1e-12));
    for (int k = 0; k < g.size(); ++k) {
      if (k == slow) continue;
      EXPECT_LE(after[static_cast<std::size_t>(k)],
                before[static_cast<std::size_t>(k)] * (1.0 + 1e-12))
          << "stage " << k;
    }
    check_decomposition_invariants(g, after, kTargetS);
  }
}

TEST(BudgetDecomposer, ObserveAppliesTheEwma) {
  workload::CallGraph::Builder b;
  const int a = b.add_stage("a", stage_profile("a", 0.02));
  const int c = b.add_stage("c", stage_profile("c", 0.03));
  b.add_edge(a, c);
  const workload::CallGraph g = b.build();

  BudgetDecomposerConfig cfg;
  cfg.ewma_alpha = 0.25;
  BudgetDecomposer d(g, 1.0, {0.2, 0.2}, cfg);
  d.observe(0, 0.6);
  EXPECT_NEAR(d.weights()[0], 0.75 * 0.2 + 0.25 * 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(d.weights()[1], 0.2);

  // Observations are floored so a (near-)zero p95 cannot zero the weight.
  d.observe(1, 0.0);
  EXPECT_GE(d.weights()[1], cfg.min_weight_s * cfg.ewma_alpha);
  check_decomposition_invariants(g, d.budgets(), 1.0);
}

TEST(BudgetDecomposer, ChainSplitsProportionallyToWeights) {
  workload::CallGraph::Builder b;
  const int a = b.add_stage("a", stage_profile("a", 0.02));
  const int c = b.add_stage("c", stage_profile("c", 0.03));
  b.add_edge(a, c);
  const workload::CallGraph g = b.build();

  // On a chain S_k is the same total for every stage, so budgets are the
  // exact proportional split of T.
  BudgetDecomposer d(g, 1.0, {0.3, 0.1});
  const auto budgets = d.budgets();
  EXPECT_NEAR(budgets[0], 0.75, 1e-12);
  EXPECT_NEAR(budgets[1], 0.25, 1e-12);
}

TEST(BudgetDecomposer, EqualSplitIsTheNaiveBaseline) {
  const workload::CallGraph g = random_dag(7);
  const auto budgets = BudgetDecomposer::equal_split(g, 1.5);
  ASSERT_EQ(budgets.size(), static_cast<std::size_t>(g.size()));
  for (const double b : budgets) {
    EXPECT_DOUBLE_EQ(b, 1.5 / g.max_path_stages());
  }
}

TEST(BudgetDecomposer, RejectsInvalidInputs) {
  const workload::CallGraph g = random_dag(3);
  const std::vector<double> w(static_cast<std::size_t>(g.size()), 0.1);
  EXPECT_THROW(BudgetDecomposer(g, 0.0, w), ContractError);
  EXPECT_THROW(BudgetDecomposer(g, -1.0, w), ContractError);
  EXPECT_THROW(BudgetDecomposer(g, 1.0, {0.1}), ContractError);
  {
    std::vector<double> bad = w;
    bad[0] = 0.0;
    EXPECT_THROW(BudgetDecomposer(g, 1.0, bad), ContractError);
  }

  BudgetDecomposer d(g, 1.0, w);
  EXPECT_THROW(d.observe(-1, 0.1), ContractError);
  EXPECT_THROW(d.observe(g.size(), 0.1), ContractError);
  EXPECT_THROW(d.observe(0, -0.1), ContractError);

  BudgetDecomposerConfig cfg;
  cfg.ewma_alpha = 0.0;
  EXPECT_THROW(BudgetDecomposer(g, 1.0, w, cfg), ContractError);
  cfg.ewma_alpha = 1.1;
  EXPECT_THROW(BudgetDecomposer(g, 1.0, w, cfg), ContractError);
  cfg.ewma_alpha = 1.0;
  cfg.min_weight_s = 0.0;
  EXPECT_THROW(BudgetDecomposer(g, 1.0, w, cfg), ContractError);
}

}  // namespace
}  // namespace amoeba::core
