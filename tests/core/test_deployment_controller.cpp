#include "core/deployment_controller.hpp"

#include <gtest/gtest.h>

namespace amoeba::core {
namespace {

constexpr double kL0 = 0.1;

/// Plane surface L(P, V) = L0 + slope_p * P (load-independent service
/// time; queueing is the M/M/N layer's job).
LatencySurface flat_surface(double slope_p) {
  std::vector<double> ps = {0.0, 1.0};
  std::vector<double> vs = {0.0, 1000.0};
  std::vector<double> lat = {kL0, kL0, kL0 + slope_p, kL0 + slope_p};
  return LatencySurface(ps, vs, lat);
}

ServiceArtifacts artifacts(double cpu_slope = 0.2,
                           std::array<double, 3> footprint = {0.0, 0.0,
                                                              0.0}) {
  ServiceArtifacts a;
  a.solo_latency_s = kL0;
  a.alpha_s = 0.0;
  a.surfaces[kCpuDim] = flat_surface(cpu_slope);
  a.surfaces[kIoDim] = flat_surface(0.0);
  a.surfaces[kNetDim] = flat_surface(0.0);
  a.pressure_per_qps = footprint;
  return a;
}

ControllerConfig config() {
  ControllerConfig cfg;
  cfg.hysteresis_ticks = 2;
  cfg.to_serverless_margin = 0.8;
  cfg.to_iaas_margin = 0.95;
  return cfg;
}

ServiceTickInput input(double load, double cpu_pressure = 0.0, int n = 32) {
  ServiceTickInput in;
  in.load_qps = load;
  in.total_pressures = {cpu_pressure, 0.0, 0.0};
  in.available_containers = n;
  return in;
}

TEST(Controller, EvaluateComputesMuFromSurfaces) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  const auto ev = c.evaluate("svc", 10.0, {0.0, 0.0, 0.0}, 16, false);
  // No contention: service time = L0 + (L0-L0)+... = L0 -> mu = 10.
  EXPECT_NEAR(ev.mu, 10.0, 1e-9);
  ASSERT_TRUE(ev.lambda_max.has_value());
  EXPECT_GT(*ev.lambda_max, 100.0);  // 16 servers at mu=10
  EXPECT_LT(*ev.lambda_max, 160.0);
}

TEST(Controller, PressureReducesLambdaMax) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts(0.3));
  const auto calm = c.evaluate("svc", 10.0, {0.0, 0.0, 0.0}, 16, false);
  const auto loud = c.evaluate("svc", 10.0, {0.9, 0.0, 0.0}, 16, false);
  ASSERT_TRUE(calm.lambda_max.has_value());
  ASSERT_TRUE(loud.lambda_max.has_value());
  EXPECT_LT(*loud.lambda_max, *calm.lambda_max);
  EXPECT_LT(loud.mu, calm.mu);
}

TEST(Controller, ImpossibleTargetGivesNullLambda) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts(2.0));  // at P=1: service 2.1 s > QoS
  const auto ev = c.evaluate("svc", 10.0, {1.0, 0.0, 0.0}, 16, false);
  EXPECT_FALSE(ev.lambda_max.has_value());
}

TEST(Controller, SelfPressureSubtractedWhenResident) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts(0.3, {0.01, 0.0, 0.0}));
  // Resident at 20 qps: 0.2 of the measured 0.5 pressure is its own.
  const auto ev = c.evaluate("svc", 20.0, {0.5, 0.0, 0.0}, 16, true);
  EXPECT_NEAR(ev.external_pressures[kCpuDim], 0.3, 1e-12);
  const auto non_resident =
      c.evaluate("svc", 20.0, {0.5, 0.0, 0.0}, 16, false);
  EXPECT_NEAR(non_resident.external_pressures[kCpuDim], 0.5, 1e-12);
}

TEST(Controller, HysteresisDelaysSwitchToServerless) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  EXPECT_EQ(c.mode("svc"), DeployMode::kIaas);
  EXPECT_EQ(c.tick("svc", input(5.0)), SwitchDecision::kStay);  // vote 1
  EXPECT_EQ(c.tick("svc", input(5.0)), SwitchDecision::kSwitchToServerless);
}

TEST(Controller, VoteResetOnContradictingTick) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  EXPECT_EQ(c.tick("svc", input(5.0)), SwitchDecision::kStay);
  // Load spike interrupts the streak (λmax with n=32, μ=10 is ~300).
  EXPECT_EQ(c.tick("svc", input(500.0)), SwitchDecision::kStay);
  EXPECT_EQ(c.tick("svc", input(5.0)), SwitchDecision::kStay);  // vote 1 again
  EXPECT_EQ(c.tick("svc", input(5.0)), SwitchDecision::kSwitchToServerless);
}

TEST(Controller, SwitchBackWhenOverloaded) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  c.set_mode("svc", DeployMode::kServerless);
  // n = 4 containers, mu = 10: λmax < 40; load 60 overloads.
  EXPECT_EQ(c.tick("svc", input(60.0, 0.0, 4)), SwitchDecision::kStay);
  EXPECT_EQ(c.tick("svc", input(60.0, 0.0, 4)), SwitchDecision::kSwitchToIaas);
}

TEST(Controller, ForecastLoadTriggersEarlySwitchBack) {
  // The measured load is still safe, but the forecast (load extrapolated
  // over hysteresis + VM boot) crosses the exit margin: the controller
  // must start the switch back before the pool saturates.
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  c.set_mode("svc", DeployMode::kServerless);
  auto in = input(20.0, 0.0, 4);  // λmax ≈ 36 with n=4, μ=10
  in.forecast_load_qps = 60.0;
  EXPECT_EQ(c.tick("svc", in), SwitchDecision::kStay);
  EXPECT_EQ(c.tick("svc", in), SwitchDecision::kSwitchToIaas);
}

TEST(Controller, ForecastBelowLoadIsIgnored) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  c.set_mode("svc", DeployMode::kServerless);
  auto in = input(20.0, 0.0, 4);
  in.forecast_load_qps = 1.0;  // stale/zero forecast must not mask the load
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.tick("svc", in), SwitchDecision::kStay);
  }
}

TEST(Controller, ObservedViolationBackstopTriggersSwitch) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  c.set_mode("svc", DeployMode::kServerless);
  auto in = input(5.0);  // model says fine
  in.observed_p95 = 0.6; // reality disagrees
  EXPECT_EQ(c.tick("svc", in), SwitchDecision::kStay);
  EXPECT_EQ(c.tick("svc", in), SwitchDecision::kSwitchToIaas);
}

TEST(Controller, StableLoadOnServerlessStays) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  c.set_mode("svc", DeployMode::kServerless);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c.tick("svc", input(5.0)), SwitchDecision::kStay);
  }
}

TEST(Controller, CoTenantCheckBlocksHarmfulSwitchIn) {
  DeploymentController c(config());
  // Resident service: runs on serverless near its capacity limit and is
  // highly pressure-sensitive.
  c.add_service("resident", 0.22, artifacts(1.0));
  c.set_mode("resident", DeployMode::kServerless);
  // Candidate with a big CPU footprint.
  c.add_service("candidate", 0.5, artifacts(0.2, {0.02, 0.0, 0.0}));

  // Prime the resident's cached input: at pressure 0.3, its service time
  // is 0.1 + 0.3 = 0.4... choose numbers where resident is just safe now.
  auto resident_in = input(20.0, 0.3, 8);
  (void)c.tick("resident", resident_in);

  // Candidate at 30 qps would add 0.6 pressure: resident's service time
  // would exceed its own 0.22 s QoS -> switch must be blocked.
  auto cand_in = input(30.0, 0.3, 32);
  EXPECT_EQ(c.tick("candidate", cand_in), SwitchDecision::kStay);
  EXPECT_EQ(c.tick("candidate", cand_in), SwitchDecision::kStay);
  EXPECT_EQ(c.tick("candidate", cand_in), SwitchDecision::kStay);
  EXPECT_EQ(c.mode("candidate"), DeployMode::kIaas);
}

TEST(Controller, CoTenantCheckAllowsHarmlessSwitchIn) {
  DeploymentController c(config());
  c.add_service("resident", 5.0, artifacts(0.1));
  c.set_mode("resident", DeployMode::kServerless);
  (void)c.tick("resident", input(2.0, 0.1, 8));

  c.add_service("candidate", 0.5, artifacts(0.2, {0.001, 0.0, 0.0}));
  auto in = input(5.0, 0.1, 32);
  (void)c.tick("candidate", in);
  EXPECT_EQ(c.tick("candidate", in), SwitchDecision::kSwitchToServerless);
}

TEST(Controller, CoTenantCheckCanBeDisabled) {
  auto cfg = config();
  cfg.co_tenant_check = false;
  DeploymentController c(cfg);
  c.add_service("resident", 0.22, artifacts(1.0));
  c.set_mode("resident", DeployMode::kServerless);
  (void)c.tick("resident", input(20.0, 0.3, 8));
  c.add_service("candidate", 0.5, artifacts(0.2, {0.02, 0.0, 0.0}));
  auto in = input(30.0, 0.3, 32);
  (void)c.tick("candidate", in);
  EXPECT_EQ(c.tick("candidate", in), SwitchDecision::kSwitchToServerless);
}

TEST(Controller, ObserveLatencyFeedsEstimator) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  for (int i = 0; i < 50; ++i) {
    c.observe_latency("svc", 5.0, {0.2 + 0.01 * (i % 5), 0.0, 0.0},
                      0.1 + 0.002 * (i % 7));
  }
  EXPECT_GE(c.estimator("svc").samples(), 50u);
  EXPECT_TRUE(c.estimator("svc").calibrated());
}

TEST(Controller, SetModeResetsVotes) {
  DeploymentController c(config());
  c.add_service("svc", 0.5, artifacts());
  (void)c.tick("svc", input(5.0));  // vote 1 toward serverless
  c.set_mode("svc", DeployMode::kServerless);
  c.set_mode("svc", DeployMode::kIaas);
  // Streak must restart.
  EXPECT_EQ(c.tick("svc", input(5.0)), SwitchDecision::kStay);
  EXPECT_EQ(c.tick("svc", input(5.0)), SwitchDecision::kSwitchToServerless);
}

TEST(Controller, UnknownAndDuplicateServices) {
  DeploymentController c(config());
  EXPECT_THROW((void)c.mode("ghost"), ContractError);
  EXPECT_THROW((void)c.tick("ghost", input(1.0)), ContractError);
  c.add_service("svc", 0.5, artifacts());
  EXPECT_THROW(c.add_service("svc", 0.5, artifacts()), ContractError);
}

TEST(Controller, IncompleteArtifactsRejected) {
  DeploymentController c(config());
  ServiceArtifacts bad;
  bad.solo_latency_s = 0.1;
  EXPECT_THROW(c.add_service("svc", 0.5, bad), ContractError);
}

TEST(Controller, ServicesListsRegistrations) {
  DeploymentController c(config());
  c.add_service("a", 0.5, artifacts());
  c.add_service("b", 0.5, artifacts());
  EXPECT_EQ(c.services(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace amoeba::core
