#include "core/resource_accounting.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace amoeba::core {
namespace {

serverless::PlatformConfig sp_config() {
  serverless::PlatformConfig cfg;
  cfg.cores = 8.0;
  cfg.pool_memory_mb = 4096.0;
  cfg.disk_bps = 1.0e9;
  cfg.net_bps = 1.0e9;
  cfg.cold_start_mean_s = 0.0;  // instant boots: exact integrals
  cfg.keep_alive_s = 5.0;
  return cfg;
}

workload::FunctionProfile service() {
  workload::FunctionProfile p;
  p.name = "svc";
  p.exec = {.cpu_seconds = 0.1, .io_bytes = 0.0, .net_bytes = 0.0};
  p.rpc_overhead_s = 0.0;
  p.platform_overhead_s = 0.0;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.0;
  p.qos_target_s = 1.0;
  p.peak_load_qps = 10.0;
  return p;
}

TEST(ResourceAccounting, IaasUsageIsRentedAllocation) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, sp_config(), sim::Rng(1));
  iaas::IaasPlatform ip(e, iaas::IaasConfig{}, sim::Rng(2));
  iaas::VmSpec spec;
  spec.cores = 4.0;
  spec.memory_mb = 2048.0;
  spec.boot_s = 0.0;
  ip.register_service(service(), spec);
  ip.boot("svc", [] {});
  e.run();
  e.schedule(10.0, [] {});
  e.run();

  ResourceAccountant acc(sp, ip);
  const auto u = acc.iaas_usage("svc", 10.0);
  EXPECT_NEAR(u.cpu_core_seconds, 40.0, 1e-9);
  EXPECT_NEAR(u.memory_mb_seconds, 20480.0, 1e-9);
}

TEST(ResourceAccounting, ServerlessUsageIsConsumptionPlusContainerMemory) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, sp_config(), sim::Rng(3));
  iaas::IaasPlatform ip(e, iaas::IaasConfig{}, sim::Rng(4));
  sp.register_function(service());
  for (int i = 0; i < 5; ++i) {
    sp.submit("svc", [](const workload::QueryRecord&) {});
  }
  e.run();  // queries done; container expires after keep-alive

  ResourceAccountant acc(sp, ip);
  const double now = e.now();
  const auto u = acc.serverless_usage("svc", now);
  EXPECT_NEAR(u.cpu_core_seconds, 0.5, 1e-9);  // 5 × 0.1 actual compute
  EXPECT_GT(u.memory_mb_seconds, 0.0);
  // 5 simultaneous queries spawn 5 containers (one per queued query); each
  // lives its ~0.1 s of work plus the 5 s keep-alive at 256 MB.
  EXPECT_NEAR(u.memory_mb_seconds, 5.0 * 256.0 * 5.1, 5.0 * 256.0 * 0.5);
}

TEST(ResourceAccounting, CombinedUsageSumsPlatforms) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, sp_config(), sim::Rng(5));
  iaas::IaasPlatform ip(e, iaas::IaasConfig{}, sim::Rng(6));
  iaas::VmSpec spec;
  spec.cores = 1.0;
  spec.memory_mb = 512.0;
  spec.boot_s = 0.0;
  ip.register_service(service(), spec);
  sp.register_function(service());
  ip.boot("svc", [] {});
  e.run();
  e.schedule(4.0, [] {});
  e.run();

  ResourceAccountant acc(sp, ip);
  const auto combined = acc.usage("svc", 4.0);
  auto expected = acc.iaas_usage("svc", 4.0);
  expected += acc.serverless_usage("svc", 4.0);
  EXPECT_DOUBLE_EQ(combined.cpu_core_seconds, expected.cpu_core_seconds);
  EXPECT_DOUBLE_EQ(combined.memory_mb_seconds, expected.memory_mb_seconds);
}

TEST(SplitContainerBudget, ReturnsAsksWhenTheyFit) {
  EXPECT_EQ(split_container_budget({3, 5, 2}, 10), (std::vector<int>{3, 5, 2}));
  EXPECT_EQ(split_container_budget({3, 5, 2}, 100),
            (std::vector<int>{3, 5, 2}));
  EXPECT_TRUE(split_container_budget({}, 10).empty());
}

TEST(SplitContainerBudget, OversubscribedSplitIsProportionalAndExact) {
  // Asks 10+30+60 = 100 into 50: grants must sum to exactly 50, keep the
  // min-1 guarantee, never exceed an ask, and track proportions.
  const auto g = split_container_budget({10, 30, 60}, 50);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0] + g[1] + g[2], 50);
  EXPECT_GE(g[0], 1);
  EXPECT_LE(g[0], 10);
  EXPECT_LT(g[0], g[1]);
  EXPECT_LT(g[1], g[2]);
}

TEST(SplitContainerBudget, MinOneGuaranteeUnderStarvationBudget) {
  // Budget == number of services: everyone gets exactly their floor.
  EXPECT_EQ(split_container_budget({40, 40, 40, 40}, 4),
            (std::vector<int>{1, 1, 1, 1}));
}

TEST(SplitContainerBudget, SingleServiceGetsMinOfAskAndBudget) {
  EXPECT_EQ(split_container_budget({10}, 4), (std::vector<int>{4}));
  EXPECT_EQ(split_container_budget({3}, 10), (std::vector<int>{3}));
  // Budget 1 still honors the min-1 floor for the lone service.
  EXPECT_EQ(split_container_budget({10}, 1), (std::vector<int>{1}));
}

TEST(SplitContainerBudget, AskOfOneTenantKeepsExactlyItsFloor) {
  // A tenant asking the bare minimum has zero excess: arbitration must
  // neither inflate it nor starve it, and the whole spare goes elsewhere.
  const auto g = split_container_budget({1, 99}, 10);
  EXPECT_EQ(g, (std::vector<int>{1, 9}));
  const auto h = split_container_budget({1, 1, 50, 50}, 12);
  EXPECT_EQ(h[0], 1);
  EXPECT_EQ(h[1], 1);
  EXPECT_EQ(h[2] + h[3], 10);
}

TEST(SplitContainerBudget, RejectsInfeasibleInputs) {
  // Budget below the per-service floor cannot satisfy the no-starvation
  // guarantee; zero asks are malformed (n_max is always >= 1).
  EXPECT_THROW((void)split_container_budget({2, 2, 2}, 2), ContractError);
  EXPECT_THROW((void)split_container_budget({5, 0, 5}, 20), ContractError);
}

TEST(SplitContainerBudget, OversubscribedGrantsAlwaysSumToTheBudget) {
  const std::vector<std::vector<int>> cases = {
      {7, 13, 2, 41, 9}, {128, 1, 128}, {6, 6, 6, 6, 6, 6, 6}};
  for (const auto& asks : cases) {
    const int n = static_cast<int>(asks.size());
    const int total = std::accumulate(asks.begin(), asks.end(), 0);
    for (int budget = n; budget < total; budget += 3) {
      const auto g = split_container_budget(asks, budget);
      EXPECT_EQ(std::accumulate(g.begin(), g.end(), 0), budget);
      for (std::size_t i = 0; i < g.size(); ++i) {
        EXPECT_GE(g[i], 1);
        EXPECT_LE(g[i], asks[i]);
      }
    }
  }
}

TEST(SplitContainerBudget, LargestRemainderTiesBreakByLowerIndex) {
  // Equal asks, budget not divisible: the spare container goes to the
  // earlier service, deterministically.
  const auto g = split_container_budget({5, 5, 5}, 7);
  EXPECT_EQ(g, (std::vector<int>{3, 2, 2}));
}

TEST(ResourceAccounting, UnregisteredServiceIsZero) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, sp_config(), sim::Rng(7));
  iaas::IaasPlatform ip(e, iaas::IaasConfig{}, sim::Rng(8));
  ResourceAccountant acc(sp, ip);
  const auto u = acc.usage("nobody", 1.0);
  EXPECT_DOUBLE_EQ(u.cpu_core_seconds, 0.0);
  EXPECT_DOUBLE_EQ(u.memory_mb_seconds, 0.0);
}

}  // namespace
}  // namespace amoeba::core
