#include "core/contention_monitor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/fault_injector.hpp"
#include "workload/functionbench.hpp"
#include "workload/load_generator.hpp"

namespace amoeba::core {
namespace {

serverless::PlatformConfig node_config() {
  serverless::PlatformConfig cfg;
  cfg.cores = 8.0;
  cfg.pool_memory_mb = 16384.0;
  cfg.disk_bps = 1.0e9;
  cfg.net_bps = 1.0e9;
  cfg.cold_start_mean_s = 0.5;
  cfg.cold_start_cv = 0.0;
  cfg.keep_alive_s = 120.0;
  return cfg;
}

/// Synthetic calibration: linear latency growth from the meter's ideal
/// solo latency to 4x at full pressure. Close enough in shape to let the
/// monitor discriminate "low" from "high" pressure.
MeterCalibration synthetic_calibration(const serverless::PlatformConfig& cfg) {
  MeterCalibration cal;
  for (std::size_t d = 0; d < kNumResources; ++d) {
    const auto p = workload::meter_profile(workload::kAllMeters[d]);
    const double base = p.ideal_serverless_latency(cfg.disk_bps, cfg.net_bps);
    cal.curves[d] = MeterCurve({{0.02, base},
                                {0.30, base * 1.15},
                                {0.60, base * 1.8},
                                {0.95, base * 4.0}});
  }
  return cal;
}

ContentionMonitorConfig monitor_config() {
  ContentionMonitorConfig cfg;
  cfg.sample_period_s = 5.0;
  return cfg;
}

TEST(ContentionMonitor, RequiresCompleteCalibration) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(1));
  MeterCalibration incomplete;
  EXPECT_THROW(ContentionMonitor(e, sp, incomplete, monitor_config(),
                                 sim::Rng(2)),
               ContractError);
}

TEST(ContentionMonitor, RegistersMeterFunctionsOnStart) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(3));
  ContentionMonitor monitor(e, sp, synthetic_calibration(node_config()),
                            monitor_config(), sim::Rng(4));
  monitor.start();
  EXPECT_TRUE(sp.has_function("meter_cpu_memory"));
  EXPECT_TRUE(sp.has_function("meter_disk_io"));
  EXPECT_TRUE(sp.has_function("meter_network"));
}

TEST(ContentionMonitor, IdlePlatformReportsLowPressure) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(5));
  ContentionMonitor monitor(e, sp, synthetic_calibration(node_config()),
                            monitor_config(), sim::Rng(6));
  monitor.start();
  e.run_until(30.0);
  const auto p = monitor.pressures();
  for (std::size_t d = 0; d < kNumResources; ++d) {
    EXPECT_LT(p[d], 0.25) << "dim " << d;
  }
  EXPECT_GE(monitor.samples_taken(), 5u);
  monitor.stop();
}

TEST(ContentionMonitor, DetectsCpuPressureOnTheRightDimension) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(7));
  ContentionMonitor monitor(e, sp, synthetic_calibration(node_config()),
                            monitor_config(), sim::Rng(8));
  monitor.start();

  // CPU stressor at ~85% of the 8 cores.
  const auto stressor = workload::make_stressor(workload::StressKind::kCpu);
  sp.register_function(stressor);
  workload::ConstantLoadGenerator gen(e, sim::Rng(9), 68.0, [&] {
    sp.submit("stress_cpu", [](const workload::QueryRecord&) {});
  });
  gen.start();
  e.run_until(60.0);
  gen.stop();

  const auto p = monitor.pressures();
  EXPECT_GT(p[kCpuDim], 0.45);
  // The IO/net meters carry small CPU bodies of their own (that is what
  // makes their §VII-E overheads nonzero), so CPU saturation bleeds into
  // their readings — the correlated interference the paper's PCA stage
  // exists to untangle (§VI-A). The CPU dimension must still dominate.
  EXPECT_LT(p[kIoDim], p[kCpuDim]);
  EXPECT_LT(p[kNetDim], p[kCpuDim]);
  monitor.stop();
}

TEST(ContentionMonitor, SampleCallbackFiresEveryPeriod) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(10));
  ContentionMonitor monitor(e, sp, synthetic_calibration(node_config()),
                            monitor_config(), sim::Rng(11));
  int samples = 0;
  monitor.set_on_sample([&samples] { ++samples; });
  monitor.start();
  e.run_until(26.0);
  monitor.stop();
  EXPECT_EQ(samples, 5);  // periods at t = 5, 10, 15, 20, 25
}

TEST(ContentionMonitor, StopHaltsProbing) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(12));
  ContentionMonitor monitor(e, sp, synthetic_calibration(node_config()),
                            monitor_config(), sim::Rng(13));
  monitor.start();
  e.run_until(12.0);
  monitor.stop();
  const auto before = monitor.samples_taken();
  e.run();
  EXPECT_EQ(monitor.samples_taken(), before);
}

TEST(ContentionMonitor, ProbeOverheadMatchesSectionVIIE) {
  sim::Engine e;
  auto cfg = node_config();
  cfg.cores = 40.0;  // the paper's node size
  serverless::ServerlessPlatform sp(e, cfg, sim::Rng(14));
  ContentionMonitor monitor(e, sp, synthetic_calibration(cfg),
                            monitor_config(), sim::Rng(15));
  const auto overhead = monitor.probe_cpu_overhead();
  EXPECT_NEAR(overhead[kCpuDim], 0.011, 1e-9);
  EXPECT_NEAR(overhead[kIoDim], 0.005, 1e-9);
  EXPECT_NEAR(overhead[kNetDim], 0.006, 1e-9);
}

TEST(ContentionMonitor, MeterLatenciesExposedAfterSampling) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(16));
  ContentionMonitor monitor(e, sp, synthetic_calibration(node_config()),
                            monitor_config(), sim::Rng(17));
  for (const auto& l : monitor.meter_latencies()) {
    EXPECT_FALSE(l.has_value());
  }
  monitor.start();
  e.run_until(15.0);
  monitor.stop();
  for (const auto& l : monitor.meter_latencies()) {
    ASSERT_TRUE(l.has_value());
    EXPECT_GT(*l, 0.0);
  }
}

TEST(ContentionMonitor, DroppedMeterSamplesHoldLastPressure) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(18));
  ContentionMonitor monitor(e, sp, synthetic_calibration(node_config()),
                            monitor_config(), sim::Rng(19));
  monitor.start();

  const auto stressor = workload::make_stressor(workload::StressKind::kCpu);
  sp.register_function(stressor);
  workload::ConstantLoadGenerator gen(e, sim::Rng(20), 68.0, [&] {
    sp.submit("stress_cpu", [](const workload::QueryRecord&) {});
  });
  gen.start();
  e.run_until(60.0);
  gen.stop();
  const auto before = monitor.pressures();
  ASSERT_GT(before[kCpuDim], 0.3);

  // From here every meter completion is lost before aggregation. Without an
  // age cap the monitor holds the last-known estimate indefinitely.
  sim::FaultConfig fc;
  fc.meter_drop_p = 1.0;
  sim::FaultInjector faults(fc, sim::Rng(21));
  monitor.set_fault_injector(&faults);
  e.run_until(90.0);
  const auto after = monitor.pressures();
  for (std::size_t d = 0; d < kNumResources; ++d) {
    EXPECT_DOUBLE_EQ(after[d], before[d]) << "dim " << d;
  }
  EXPECT_EQ(monitor.stale_resets(), 0u);
  // The staleness is surfaced: ages grew to roughly the faulty window.
  EXPECT_GT(monitor.pressure_ages()[kCpuDim], 20.0);
  EXPECT_GT(faults.counters().meter_drops, 0u);
  monitor.stop();
}

TEST(ContentionMonitor, AgeCapResetsStalePressureToCalibrationFloor) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(22));
  auto mcfg = monitor_config();
  mcfg.pressure_max_age_s = 12.0;
  ContentionMonitor monitor(e, sp, synthetic_calibration(node_config()),
                            mcfg, sim::Rng(23));
  monitor.start();

  const auto stressor = workload::make_stressor(workload::StressKind::kCpu);
  sp.register_function(stressor);
  workload::ConstantLoadGenerator gen(e, sim::Rng(24), 68.0, [&] {
    sp.submit("stress_cpu", [](const workload::QueryRecord&) {});
  });
  gen.start();
  e.run_until(60.0);
  gen.stop();
  ASSERT_GT(monitor.pressures()[kCpuDim], 0.3);

  sim::FaultConfig fc;
  fc.meter_drop_p = 1.0;
  sim::FaultInjector faults(fc, sim::Rng(25));
  monitor.set_fault_injector(&faults);
  e.run_until(90.0);  // readings age past the 12 s cap
  // Phantom pressure is not trusted forever: the estimate decayed to the
  // calibration floor and the reset was counted.
  const double floor = 0.02;  // synthetic_calibration's first curve point
  EXPECT_DOUBLE_EQ(monitor.pressures()[kCpuDim], floor);
  EXPECT_GE(monitor.stale_resets(), 1u);
  monitor.stop();
}

TEST(ContentionMonitor, OutlierContaminationInflatesPressure) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(26));
  ContentionMonitor monitor(e, sp, synthetic_calibration(node_config()),
                            monitor_config(), sim::Rng(27));
  sim::FaultConfig fc;
  fc.meter_outlier_p = 1.0;
  fc.meter_outlier_factor = 8.0;  // every meter latency reads 8x too high
  sim::FaultInjector faults(fc, sim::Rng(28));
  monitor.set_fault_injector(&faults);
  monitor.start();
  e.run_until(30.0);
  // The platform is idle, yet contaminated telemetry reports saturation.
  EXPECT_GT(monitor.pressures()[kCpuDim], 0.4);
  EXPECT_GT(faults.counters().meter_outliers, 0u);
  monitor.stop();
}

TEST(ContentionMonitor, ConfigRejectsNegativeAgeCap) {
  sim::Engine e;
  serverless::ServerlessPlatform sp(e, node_config(), sim::Rng(29));
  auto mcfg = monitor_config();
  mcfg.pressure_max_age_s = -1.0;
  EXPECT_THROW(ContentionMonitor(e, sp, synthetic_calibration(node_config()),
                                 mcfg, sim::Rng(30)),
               ContractError);
}

}  // namespace
}  // namespace amoeba::core
