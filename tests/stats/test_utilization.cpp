#include "stats/utilization.hpp"

#include <gtest/gtest.h>

namespace amoeba::stats {
namespace {

TEST(Utilization, ConstantSignal) {
  UtilizationTracker u(10.0, 1.0);
  u.set(0.0, 5.0);
  u.finish(10.0);
  EXPECT_DOUBLE_EQ(u.average(), 0.5);
  EXPECT_DOUBLE_EQ(u.window_min(), 0.5);
  EXPECT_DOUBLE_EQ(u.window_max(), 0.5);
  EXPECT_EQ(u.windows().size(), 10u);
}

TEST(Utilization, StepSignalWindowExtremes) {
  UtilizationTracker u(10.0, 1.0);
  u.set(0.0, 0.0);
  u.set(5.0, 10.0);
  u.finish(10.0);
  EXPECT_DOUBLE_EQ(u.average(), 0.5);
  EXPECT_DOUBLE_EQ(u.window_min(), 0.0);
  EXPECT_DOUBLE_EQ(u.window_max(), 1.0);
}

TEST(Utilization, ChangeInsideWindowWeighted) {
  UtilizationTracker u(4.0, 2.0);
  u.set(0.0, 0.0);
  u.set(1.0, 4.0);  // half the first window at 0, half at full
  u.finish(2.0);
  ASSERT_EQ(u.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(u.windows()[0], 0.5);
}

TEST(Utilization, PartialTrailingWindowIncludedWhenLong) {
  UtilizationTracker u(1.0, 10.0);
  u.set(0.0, 1.0);
  u.finish(16.0);  // one full window + 6 s partial (> half)
  EXPECT_EQ(u.windows().size(), 2u);
}

TEST(Utilization, PartialTrailingWindowDroppedWhenShort) {
  UtilizationTracker u(1.0, 10.0);
  u.set(0.0, 1.0);
  u.finish(13.0);  // partial 3 s (< half) dropped
  EXPECT_EQ(u.windows().size(), 1u);
}

TEST(Utilization, NonMonotoneTimestampsThrow) {
  UtilizationTracker u(1.0, 1.0);
  u.set(5.0, 1.0);
  EXPECT_THROW(u.set(4.0, 1.0), ContractError);
}

TEST(Utilization, SetAfterFinishThrows) {
  UtilizationTracker u(1.0, 1.0);
  u.set(0.0, 1.0);
  u.finish(2.0);
  EXPECT_THROW(u.set(3.0, 1.0), ContractError);
}

TEST(Utilization, AverageRequiresFinish) {
  UtilizationTracker u(1.0, 1.0);
  u.set(0.0, 1.0);
  EXPECT_THROW((void)u.average(), ContractError);
}

}  // namespace
}  // namespace amoeba::stats
