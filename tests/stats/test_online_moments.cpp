#include "stats/online_moments.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace amoeba::stats {
namespace {

TEST(OnlineMoments, MeanAndVarianceExactSmall) {
  OnlineMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_NEAR(m.variance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineMoments, RequiresSamples) {
  OnlineMoments m;
  EXPECT_THROW((void)m.mean(), ContractError);
  m.add(1.0);
  EXPECT_THROW((void)m.variance(), ContractError);
}

TEST(OnlineMoments, MatchesDistributionMoments) {
  OnlineMoments m;
  sim::Rng rng(4);
  for (int i = 0; i < 100000; ++i) m.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(m.mean(), 3.0, 0.05);
  EXPECT_NEAR(m.stddev(), 2.0, 0.05);
}

TEST(OnlineMoments, ResetClears) {
  OnlineMoments m;
  m.add(5.0);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
}

TEST(OnlineCovariance, DiagonalIsVariance) {
  OnlineCovariance c(2);
  OnlineMoments m;
  sim::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    c.add({x, 2.0 * x});
    m.add(x);
  }
  EXPECT_NEAR(c.covariance(0, 0), m.variance(), 1e-9);
  EXPECT_NEAR(c.covariance(1, 1), 4.0 * m.variance(), 1e-9);
}

TEST(OnlineCovariance, PerfectLinearCorrelation) {
  OnlineCovariance c(2);
  sim::Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    c.add({x, 3.0 * x + 1.0});
  }
  EXPECT_NEAR(c.covariance(0, 1), 3.0 * c.covariance(0, 0), 1e-9);
  EXPECT_NEAR(c.covariance(0, 1), c.covariance(1, 0), 1e-12);
}

TEST(OnlineCovariance, IndependentDimensionsNearZero) {
  OnlineCovariance c(2);
  sim::Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    c.add({rng.uniform(), rng.uniform()});
  }
  EXPECT_NEAR(c.covariance(0, 1), 0.0, 0.002);
}

TEST(OnlineCovariance, DimensionMismatchThrows) {
  OnlineCovariance c(3);
  EXPECT_THROW(c.add({1.0, 2.0}), ContractError);
}

}  // namespace
}  // namespace amoeba::stats
