#include "stats/gauge.hpp"

#include <gtest/gtest.h>

namespace amoeba::stats {
namespace {

TEST(IntegratedGauge, IntegratesSteps) {
  IntegratedGauge g(0.0);
  g.set(0.0, 2.0);
  g.set(5.0, 4.0);
  EXPECT_DOUBLE_EQ(g.integral(10.0), 2.0 * 5.0 + 4.0 * 5.0);
}

TEST(IntegratedGauge, AddIsRelative) {
  IntegratedGauge g(0.0);
  g.add(0.0, 3.0);
  g.add(2.0, -1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.integral(4.0), 3.0 * 2.0 + 2.0 * 2.0);
}

TEST(IntegratedGauge, NegativeValueThrows) {
  IntegratedGauge g(0.0);
  EXPECT_THROW(g.set(1.0, -0.5), ContractError);
}

TEST(IntegratedGauge, TimeMustNotDecrease) {
  IntegratedGauge g(5.0);
  EXPECT_THROW(g.set(4.0, 1.0), ContractError);
}

TEST(IntegratedGauge, InitialValueCounts) {
  IntegratedGauge g(0.0, 10.0);
  EXPECT_DOUBLE_EQ(g.integral(3.0), 30.0);
}

}  // namespace
}  // namespace amoeba::stats
