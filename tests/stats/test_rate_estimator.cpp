#include "stats/rate_estimator.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace amoeba::stats {
namespace {

TEST(RateEstimator, CountsArrivalsInWindow) {
  RateEstimator r(10.0);
  for (int i = 0; i < 20; ++i) r.record(static_cast<double>(i));
  // At t=19.5 the window (9.5, 19.5] holds arrivals 10..19.
  EXPECT_EQ(r.count_in_window(19.5), 10u);
  EXPECT_DOUBLE_EQ(r.rate(19.5), 1.0);
}

TEST(RateEstimator, EmptyWindowIsZero) {
  RateEstimator r(5.0);
  EXPECT_DOUBLE_EQ(r.rate(100.0), 0.0);
  r.record(1.0);
  EXPECT_DOUBLE_EQ(r.rate(100.0), 0.0);  // long expired
}

TEST(RateEstimator, PoissonRateRecovered) {
  RateEstimator r(50.0);
  sim::Rng rng(3);
  double t = 0.0;
  const double lambda = 8.0;
  while (t < 200.0) {
    t += rng.exponential(lambda);
    r.record(t);
  }
  EXPECT_NEAR(r.rate(200.0), lambda, 1.0);
}

TEST(RateEstimator, FirstWindowUsesElapsedTimeNotWindowLength) {
  // Regression: a steady 2 qps stream starting at t=0 used to read as
  // 2 * elapsed / window during the whole first window (e.g. 0.2 qps at
  // t=1 with a 10 s window), starving the deployment controller's Eq. 1-5
  // discriminant of load at scenario start.
  RateEstimator r(10.0);
  for (int i = 0; i < 5; ++i) r.record(0.5 * i);  // 2 qps from t=0
  // t=2: window not yet elapsed; 5 arrivals over 2 s of elapsed time.
  EXPECT_NEAR(r.rate(2.0), 5.0 / 2.0, 1e-12);
  for (int i = 5; i < 20; ++i) r.record(0.5 * i);  // continue to t=9.5
  // t=9.5: still warming up; all 20 arrivals over 9.5 s elapsed.
  EXPECT_NEAR(r.rate(9.5), 20.0 / 9.5, 1e-12);
  // From one full window onward the divisor is the window length again
  // (the t=0 arrival ages out exactly at t=10: window is (0, 10]).
  EXPECT_NEAR(r.rate(10.0), 19.0 / 10.0, 1e-12);
  EXPECT_NEAR(r.rate(12.0), 15.0 / 10.0, 1e-12);
}

TEST(RateEstimator, SingleArrivalAtNowFallsBackToWindowDivisor) {
  // Zero elapsed time since the first observation: dividing by elapsed
  // would blow up, so the full window is the (conservative) divisor.
  RateEstimator r(10.0);
  r.record(3.0);
  EXPECT_DOUBLE_EQ(r.rate(3.0), 1.0 / 10.0);
}

TEST(RateEstimator, WarmupDoesNotResurrectAfterIdle) {
  // The warm-up divisor applies only within one window of the FIRST
  // observation; after a long idle gap the estimator reports over the
  // window, not over the gap.
  RateEstimator r(10.0);
  r.record(0.0);
  r.record(100.0);
  r.record(101.0);
  EXPECT_DOUBLE_EQ(r.rate(105.0), 2.0 / 10.0);
}

TEST(RateEstimator, NonMonotoneThrows) {
  RateEstimator r(5.0);
  r.record(2.0);
  EXPECT_THROW(r.record(1.0), ContractError);
}

TEST(RateEstimator, BoundaryArrivalExcludedExactlyAtWindowEdge) {
  RateEstimator r(10.0);
  r.record(0.0);
  EXPECT_EQ(r.count_in_window(10.0), 0u);  // (0, 10] excludes t=0
  RateEstimator r2(10.0);
  r2.record(0.001);
  EXPECT_EQ(r2.count_in_window(10.0), 1u);
}

TEST(EwmaRate, FirstObservationPrimes) {
  EwmaRate e(10.0);
  EXPECT_FALSE(e.primed());
  e.observe(0.0, 5.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(EwmaRate, HalfLifeSemantics) {
  EwmaRate e(10.0);
  e.observe(0.0, 0.0);
  e.observe(10.0, 1.0);  // one half-life: move half-way
  EXPECT_NEAR(e.value(), 0.5, 1e-12);
}

TEST(EwmaRate, ConvergesToConstant) {
  EwmaRate e(1.0);
  e.observe(0.0, 0.0);
  for (int i = 1; i <= 100; ++i) e.observe(static_cast<double>(i), 7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

}  // namespace
}  // namespace amoeba::stats
