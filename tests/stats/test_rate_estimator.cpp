#include "stats/rate_estimator.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace amoeba::stats {
namespace {

TEST(RateEstimator, CountsArrivalsInWindow) {
  RateEstimator r(10.0);
  for (int i = 0; i < 20; ++i) r.record(static_cast<double>(i));
  // At t=19.5 the window (9.5, 19.5] holds arrivals 10..19.
  EXPECT_EQ(r.count_in_window(19.5), 10u);
  EXPECT_DOUBLE_EQ(r.rate(19.5), 1.0);
}

TEST(RateEstimator, EmptyWindowIsZero) {
  RateEstimator r(5.0);
  EXPECT_DOUBLE_EQ(r.rate(100.0), 0.0);
  r.record(1.0);
  EXPECT_DOUBLE_EQ(r.rate(100.0), 0.0);  // long expired
}

TEST(RateEstimator, PoissonRateRecovered) {
  RateEstimator r(50.0);
  sim::Rng rng(3);
  double t = 0.0;
  const double lambda = 8.0;
  while (t < 200.0) {
    t += rng.exponential(lambda);
    r.record(t);
  }
  EXPECT_NEAR(r.rate(200.0), lambda, 1.0);
}

TEST(RateEstimator, NonMonotoneThrows) {
  RateEstimator r(5.0);
  r.record(2.0);
  EXPECT_THROW(r.record(1.0), ContractError);
}

TEST(RateEstimator, BoundaryArrivalExcludedExactlyAtWindowEdge) {
  RateEstimator r(10.0);
  r.record(0.0);
  EXPECT_EQ(r.count_in_window(10.0), 0u);  // (0, 10] excludes t=0
  RateEstimator r2(10.0);
  r2.record(0.001);
  EXPECT_EQ(r2.count_in_window(10.0), 1u);
}

TEST(EwmaRate, FirstObservationPrimes) {
  EwmaRate e(10.0);
  EXPECT_FALSE(e.primed());
  e.observe(0.0, 5.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

TEST(EwmaRate, HalfLifeSemantics) {
  EwmaRate e(10.0);
  e.observe(0.0, 0.0);
  e.observe(10.0, 1.0);  // one half-life: move half-way
  EXPECT_NEAR(e.value(), 0.5, 1e-12);
}

TEST(EwmaRate, ConvergesToConstant) {
  EwmaRate e(1.0);
  e.observe(0.0, 0.0);
  for (int i = 1; i <= 100; ++i) e.observe(static_cast<double>(i), 7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

}  // namespace
}  // namespace amoeba::stats
