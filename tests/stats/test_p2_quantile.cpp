#include "stats/p2_quantile.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "stats/percentile.hpp"

namespace amoeba::stats {
namespace {

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);  // interpolated median of {1,3}
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2Quantile, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile(0.0), ContractError);
  EXPECT_THROW(P2Quantile(1.0), ContractError);
}

TEST(P2Quantile, ValueRequiresSamples) {
  P2Quantile q(0.9);
  EXPECT_THROW((void)q.value(), ContractError);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksUniformDistribution) {
  const double target = GetParam();
  P2Quantile p2(target);
  sim::Rng rng(42);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform();
    p2.add(x);
    all.push_back(x);
  }
  const double exact = percentile(all, target);
  EXPECT_NEAR(p2.value(), exact, 0.01) << "quantile " << target;
}

TEST_P(P2Accuracy, TracksExponentialDistribution) {
  const double target = GetParam();
  P2Quantile p2(target);
  sim::Rng rng(43);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential(2.0);
    p2.add(x);
    all.push_back(x);
  }
  const double exact = percentile(all, target);
  // Relative tolerance: exponential tails are wider.
  EXPECT_NEAR(p2.value(), exact, 0.05 * exact + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95,
                                           0.99));

TEST_P(P2Accuracy, SmallSamplePrefixMatchesExactQuantile) {
  // The n < 5 path claims the exact linear-interpolation (R-7) quantile —
  // the same definition percentile() implements — so the two must agree to
  // rounding error at every prefix length, for every target quantile.
  const double target = GetParam();
  sim::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    P2Quantile p2(target);
    std::vector<double> prefix;
    for (int n = 1; n < 5; ++n) {
      const double x = rng.exponential(1.0);
      p2.add(x);
      prefix.push_back(x);
      EXPECT_NEAR(p2.value(), percentile(prefix, target), 1e-12)
          << "n=" << n << " q=" << target;
    }
  }
}

TEST(P2Quantile, RandomStreamPropertyAgainstExactPercentile) {
  // Property sweep across stream lengths spanning the n<5 exact path, the
  // n==5 sort boundary, and the asymptotic marker regime.
  sim::Rng rng(11);
  for (const int n : {1, 2, 3, 4, 5, 6, 17, 200, 5000}) {
    for (const double q : {0.25, 0.5, 0.9}) {
      P2Quantile p2(q);
      std::vector<double> all;
      for (int i = 0; i < n; ++i) {
        const double x = rng.uniform();
        p2.add(x);
        all.push_back(x);
      }
      const double exact = percentile(all, q);
      // Exact below the marker threshold. Right after marker initialization
      // (n just past 5) P² is only as good as one order statistic, so grant
      // a wide band there; tighten once the estimator has converged.
      const double tol = n < 5 ? 1e-12 : (n < 100 ? 0.5 : 0.08);
      EXPECT_NEAR(p2.value(), exact, tol) << "n=" << n << " q=" << q;
    }
  }
}

TEST(P2Quantile, ResetClearsState) {
  P2Quantile q(0.5);
  for (int i = 0; i < 100; ++i) q.add(static_cast<double>(i));
  q.reset();
  EXPECT_EQ(q.count(), 0u);
  q.add(7.0);
  EXPECT_DOUBLE_EQ(q.value(), 7.0);
}

TEST(P2Quantile, MonotoneShiftDetected) {
  P2Quantile q(0.5);
  for (int i = 0; i < 1000; ++i) q.add(1.0 + (i % 3) * 0.001);
  for (int i = 0; i < 5000; ++i) q.add(10.0 + (i % 3) * 0.001);
  EXPECT_GT(q.value(), 5.0);  // estimator follows the new regime
}

}  // namespace
}  // namespace amoeba::stats
