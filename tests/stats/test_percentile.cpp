#include "stats/percentile.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace amoeba::stats {
namespace {

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  // R-7 on {1,2,3,4}: q=0.5 -> 2.5.
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  std::vector<double> v = {5.0, -2.0, 9.0, 1.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.95), 42.0);
}

TEST(Percentile, RejectsEmptyAndBadQ) {
  EXPECT_THROW((void)percentile({}, 0.5), ContractError);
  EXPECT_THROW((void)percentile({1.0}, -0.1), ContractError);
  EXPECT_THROW((void)percentile({1.0}, 1.1), ContractError);
}

TEST(SampleSet, BasicStatistics) {
  SampleSet s;
  for (double x : {4.0, 1.0, 3.0, 2.0}) s.add(x);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 2.5);
}

TEST(SampleSet, QuantileMatchesFreeFunction) {
  sim::Rng rng(5);
  SampleSet s;
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    s.add(x);
    v.push_back(x);
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), percentile(v, q)) << "q=" << q;
  }
}

TEST(SampleSet, CdfAtCountsInclusive) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSet, FractionAboveThreshold) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.fraction_above(95.0), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(s.fraction_above(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_above(100.0), 0.0);
}

TEST(SampleSet, CdfCurveIsMonotone) {
  sim::Rng rng(6);
  SampleSet s;
  for (int i = 0; i < 500; ++i) s.add(rng.exponential(1.0));
  const auto curve = s.cdf_curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GT(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(SampleSet, AddAfterQueryInvalidatesCache) {
  SampleSet s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.max(), 1.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, ClearResets) {
  SampleSet s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.fraction_above(0.0), 0.0);
}

}  // namespace
}  // namespace amoeba::stats
