#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

namespace amoeba::stats {
namespace {

TEST(TimeSeries, RejectsDecreasingTimestamps) {
  TimeSeries ts;
  ts.add(1.0, 10.0);
  EXPECT_THROW(ts.add(0.5, 20.0), ContractError);
}

TEST(TimeSeries, ValueAtStepFunction) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(10.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(9.99), 1.0);
  EXPECT_DOUBLE_EQ(ts.value_at(10.0), 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100.0), 2.0);
}

TEST(TimeSeries, ValueBeforeFirstThrows) {
  TimeSeries ts;
  ts.add(5.0, 1.0);
  EXPECT_THROW((void)ts.value_at(4.0), ContractError);
}

TEST(TimeSeries, TimeWeightedMean) {
  TimeSeries ts;
  ts.add(0.0, 0.0);
  ts.add(5.0, 10.0);
  // [0,5): 0, [5,10): 10 -> mean 5 over [0,10).
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(0.0, 10.0), 5.0);
}

TEST(TimeSeries, TimeWeightedMeanPartialWindow) {
  TimeSeries ts;
  ts.add(0.0, 2.0);
  ts.add(4.0, 6.0);
  // Window [2, 6): 2 for 2s, 6 for 2s -> 4.
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(2.0, 6.0), 4.0);
}

TEST(TimeSeries, ResampleAveragesBuckets) {
  TimeSeries ts;
  ts.add(0.0, 0.0);
  ts.add(1.0, 2.0);
  ts.add(2.0, 4.0);
  ts.add(3.0, 6.0);
  const auto r = ts.resample(0.0, 4.0, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0].value, 1.0);  // avg of {0, 2}
  EXPECT_DOUBLE_EQ(r[1].value, 5.0);  // avg of {4, 6}
}

TEST(TimeSeries, ResampleEmptyBucketCarriesStepValue) {
  TimeSeries ts;
  ts.add(0.0, 7.0);
  const auto r = ts.resample(0.0, 10.0, 5);
  ASSERT_EQ(r.size(), 5u);
  for (const auto& p : r) EXPECT_DOUBLE_EQ(p.value, 7.0);
}

TEST(TimeSeries, MinMaxValues) {
  TimeSeries ts;
  ts.add(0.0, 3.0);
  ts.add(1.0, -1.0);
  ts.add(2.0, 8.0);
  EXPECT_DOUBLE_EQ(ts.min_value(), -1.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 8.0);
}

TEST(TimeSeries, EqualTimestampsAllowed) {
  TimeSeries ts;
  ts.add(1.0, 1.0);
  ts.add(1.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 2.0);  // latest wins
}

}  // namespace
}  // namespace amoeba::stats
