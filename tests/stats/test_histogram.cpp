#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace amoeba::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.0, 5);
  EXPECT_EQ(h.count(3), 5u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, QuantileApproximatesExact) {
  Histogram h(0.0, 1.0, 1000);
  sim::Rng rng(11);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.01);
  EXPECT_NEAR(h.quantile(0.95), 0.95, 0.01);
}

TEST(Histogram, QuantileRequiresSamples) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.quantile(0.5), ContractError);
}

TEST(Histogram, ClearResets) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(2), 0u);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractError);
}

TEST(LogHistogram, SpansDecades) {
  LogHistogram h(1e-3, 1e3, 10);
  h.add(0.01);
  h.add(1.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LogHistogram, QuantileApproximatesLognormal) {
  LogHistogram h(1e-4, 1e2, 50);
  sim::Rng rng(13);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal_mean_cv(0.1, 0.8);
    h.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact95 =
      all[static_cast<std::size_t>(0.95 * static_cast<double>(all.size()))];
  EXPECT_NEAR(h.quantile(0.95) / exact95, 1.0, 0.1);
}

TEST(LogHistogram, NonPositiveValuesUnderflow) {
  LogHistogram h(1e-3, 1e3, 10);
  h.add(0.0);
  h.add(-5.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);  // min seen
}

TEST(LogHistogram, InvalidConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 1.0, 10), ContractError);
  EXPECT_THROW(LogHistogram(1.0, 0.5, 10), ContractError);
}

}  // namespace
}  // namespace amoeba::stats
