#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include "core/queueing.hpp"

namespace amoeba::exp {
namespace {

TEST(Cluster, DefaultsMatchTableII) {
  const auto c = default_cluster();
  EXPECT_DOUBLE_EQ(c.serverless.cores, 40.0);
  EXPECT_DOUBLE_EQ(c.serverless.net_bps, 3.125e9);  // 25 Gb/s
  EXPECT_DOUBLE_EQ(c.serverless.pool_memory_mb, 32768.0);
  EXPECT_DOUBLE_EQ(c.iaas.vm_boot_s, 30.0);
  EXPECT_NO_THROW(c.serverless.validate());
  EXPECT_NO_THROW(c.iaas.validate());
}

TEST(JustEnoughVm, MeetsQosByConstruction) {
  const auto cluster = default_cluster();
  for (const auto& p : workload::functionbench_suite()) {
    const auto spec = just_enough_vm(p, cluster);
    const double mu =
        1.0 / p.ideal_iaas_latency(cluster.iaas.disk_bps, cluster.iaas.net_bps);
    EXPECT_TRUE(core::queueing::qos_satisfied(
        p.peak_load_qps, static_cast<int>(spec.cores), mu, p.qos_target_s,
        0.95))
        << p.name;
    EXPECT_GT(spec.memory_mb, p.memory_mb);
  }
}

TEST(JustEnoughVm, IsActuallyJustEnough) {
  // Without the headroom factor the sizing is tight: one server fewer
  // misses the QoS target.
  const auto cluster = default_cluster();
  for (const auto& p : workload::functionbench_suite()) {
    const auto spec = just_enough_vm(p, cluster, 0.95, /*headroom=*/1.0);
    const double mu =
        1.0 / p.ideal_iaas_latency(cluster.iaas.disk_bps, cluster.iaas.net_bps);
    const int cores = static_cast<int>(spec.cores);
    if (cores > 1) {
      EXPECT_FALSE(core::queueing::qos_satisfied(
          p.peak_load_qps, cores - 1, mu, p.qos_target_s, 0.95))
          << p.name;
    }
  }
}

TEST(DiurnalFor, UsesProfilePeak) {
  const auto p = workload::make_float();
  const auto cfg = diurnal_for(p, 600.0);
  EXPECT_DOUBLE_EQ(cfg.peak_qps, p.peak_load_qps);
  EXPECT_DOUBLE_EQ(cfg.period_s, 600.0);
  EXPECT_LE(cfg.trough_fraction, 0.30);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(BackgroundSuite, ThreePaperTenantsScaled) {
  const auto bg = background_suite(0.3);
  ASSERT_EQ(bg.size(), 3u);
  EXPECT_EQ(bg[0].name, "float_bg");
  EXPECT_EQ(bg[1].name, "dd_bg");
  EXPECT_EQ(bg[2].name, "cloud_stor_bg");
  EXPECT_NEAR(bg[0].peak_load_qps, workload::make_float().peak_load_qps * 0.3,
              1e-9);
}

TEST(RunRecorder, FiltersWarmupAndAggregates) {
  RunRecorder rec(10.0);
  auto obs = rec.observer("svc");
  workload::QueryRecord r;
  r.function = "svc";
  r.arrival = 5.0;
  r.completion = 5.5;
  obs(r);  // in warmup: dropped
  r.arrival = 15.0;
  r.completion = 15.2;
  obs(r);
  EXPECT_EQ(rec.count("svc"), 1u);
  EXPECT_NEAR(rec.latencies("svc").mean(), 0.2, 1e-12);
  EXPECT_EQ(rec.records("svc").size(), 1u);
  EXPECT_EQ(rec.count("other"), 0u);
}

TEST(DeploySystem, Names) {
  EXPECT_STREQ(to_string(DeploySystem::kAmoeba), "Amoeba");
  EXPECT_STREQ(to_string(DeploySystem::kAmoebaNoM), "Amoeba-NoM");
  EXPECT_STREQ(to_string(DeploySystem::kAmoebaNoP), "Amoeba-NoP");
  EXPECT_STREQ(to_string(DeploySystem::kNameko), "Nameko");
  EXPECT_STREQ(to_string(DeploySystem::kOpenWhisk), "OpenWhisk");
}

}  // namespace
}  // namespace amoeba::exp
