// Direct tests for exp/table round-tripping the cluster summary rows.
//
// test_sweep_table.cpp covers the Table primitive (alignment, width
// contract, CSV escaping, format helpers); this file pins the shape and
// content of the table the cluster runner emits — per-service rows plus a
// trailing TOTAL row — by parsing back its CSV form cell by cell.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/callgraph.hpp"
#include "exp/cluster.hpp"
#include "exp/table.hpp"
#include "obs/json.hpp"

namespace amoeba::exp {
namespace {

ClusterRunResult two_service_result() {
  ClusterRunResult r;
  r.duration_s = 3600.0;
  r.services_usage.cpu_core_seconds = 9000.0;
  r.services_usage.memory_mb_seconds = 2048.0 * 3600.0;
  r.meter_usage.cpu_core_seconds = 900.0;
  r.meter_usage.memory_mb_seconds = 1024.0 * 3600.0;

  ClusterServiceResult a;
  a.name = "float#0";
  a.qos_target_s = 0.15;
  a.latencies.add(0.1);
  a.latencies.add(0.2);  // one of two samples violates -> 50.0%
  a.queries = 2;
  a.switches.resize(3);
  a.n_max_asked = 10;
  a.n_max_granted = 7;
  a.usage.cpu_core_seconds = 7200.0;
  a.usage.memory_mb_seconds = 1024.0 * 3600.0;

  ClusterServiceResult b;
  b.name = "dd#1";
  b.qos_target_s = 0.5;
  b.latencies.add(0.25);
  b.queries = 1;
  b.n_max_asked = 3;
  b.n_max_granted = 3;
  b.usage.cpu_core_seconds = 1800.0;
  b.usage.memory_mb_seconds = 1024.0 * 3600.0;

  r.services = {a, b};
  return r;
}

std::vector<std::string> split_csv_line(const std::string& line) {
  // The cluster table emits no quoted cells (names are [a-z#0-9]), so a
  // plain comma split is exact here.
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

TEST(ClusterTable, HasOneRowPerServicePlusTotal) {
  const Table t = cluster_table(two_service_result());
  EXPECT_EQ(t.rows(), 3u);  // 2 services + TOTAL
  EXPECT_EQ(t.cols(), 9u);
}

TEST(ClusterTable, CsvRoundTripsServiceRows) {
  const ClusterRunResult r = two_service_result();
  std::ostringstream os;
  cluster_table(r).write_csv(os);

  std::istringstream is(os.str());
  std::vector<std::vector<std::string>> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(split_csv_line(line));
  ASSERT_EQ(lines.size(), 4u);  // header + 2 services + TOTAL

  const std::vector<std::string> header = {
      "service", "qos_s",    "queries", "p95_s",  "viol",
      "switches", "n_max",   "core_h",  "mem_GBh"};
  EXPECT_EQ(lines[0], header);

  // float#0: p95 of {0.1, 0.2} is 0.2 (with 0.2 > the 0.15 target, one of
  // two samples violates), 7200 core-seconds are 2 core-hours.
  const auto& a = lines[1];
  ASSERT_EQ(a.size(), header.size());
  EXPECT_EQ(a[0], "float#0");
  EXPECT_EQ(a[1], "0.150");
  EXPECT_EQ(a[2], "2");
  EXPECT_EQ(a[3], fmt_fixed(r.services[0].p95(), 3));
  EXPECT_EQ(a[4], "50.0%");
  EXPECT_EQ(a[5], "3");
  EXPECT_EQ(a[6], "7/10");
  EXPECT_EQ(a[7], "2.00");
  EXPECT_EQ(a[8], "1.00");

  const auto& b = lines[2];
  EXPECT_EQ(b[0], "dd#1");
  EXPECT_EQ(b[4], "0.0%");
  EXPECT_EQ(b[6], "3/3");

  // TOTAL row folds the meters in: (9000+900)/3600 core-hours and
  // (2048+1024) MB x 3600 s = 3 GB-hours.
  const auto& total = lines[3];
  EXPECT_EQ(total[0], "TOTAL(+meters)");
  EXPECT_EQ(total[1], "-");
  EXPECT_EQ(total[7], "2.75");
  EXPECT_EQ(total[8], "3.00");
}

TEST(ClusterTable, EmptyTenantListStillPrintsTheTotalRow) {
  // A degenerate run with zero services must keep the header + TOTAL shape
  // (meters still rent cores) rather than emit an empty table.
  ClusterRunResult r;
  r.duration_s = 3600.0;
  r.meter_usage.cpu_core_seconds = 1800.0;
  r.meter_usage.memory_mb_seconds = 512.0 * 3600.0;
  const Table t = cluster_table(r);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 9u);

  std::ostringstream os;
  t.write_csv(os);
  std::istringstream is(os.str());
  std::vector<std::vector<std::string>> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(split_csv_line(line));
  ASSERT_EQ(lines.size(), 2u);  // header + TOTAL
  EXPECT_EQ(lines[1][0], "TOTAL(+meters)");
  EXPECT_EQ(lines[1][7], "0.50");
  EXPECT_EQ(lines[1][8], "0.50");
}

TEST(ClusterTable, SingleTenantRowMatchesTheTotal) {
  ClusterRunResult r = two_service_result();
  r.services.resize(1);
  r.services_usage = r.services[0].usage;
  r.meter_usage = {};
  const Table t = cluster_table(r);
  EXPECT_EQ(t.rows(), 2u);  // the tenant + TOTAL

  std::ostringstream os;
  t.write_csv(os);
  std::istringstream is(os.str());
  std::vector<std::vector<std::string>> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(split_csv_line(line));
  ASSERT_EQ(lines.size(), 3u);
  // With no meters and one tenant, TOTAL equals the tenant's own columns.
  EXPECT_EQ(lines[2][7], lines[1][7]);
  EXPECT_EQ(lines[2][8], lines[1][8]);
}

CallGraphRunResult callgraph_result() {
  CallGraphRunResult r;
  r.budget_mode = BudgetMode::kEndToEndAware;
  r.e2e_qos_target_s = 0.8;
  r.duration_s = 1200.0;
  r.trace_hash = 0xabcdef;
  r.root_injected = 40;
  r.queries_completed = 39;
  r.queries_unfinished = 1;
  r.e2e_latencies.add(0.5);
  r.e2e_latencies.add(0.9);
  r.stages_usage.cpu_core_seconds = 7200.0;

  CallGraphStageResult s;
  s.stage = 0;
  s.name = "float#0@s0";
  s.label = "front";
  s.pin = workload::StagePin::kManaged;
  s.initial_budget_s = 0.4;
  s.final_budget_s = 0.45;
  s.latencies.add(0.2);
  s.submitted = 40;
  s.finished = 39;
  s.switches = 2;
  s.usage.cpu_core_seconds = 7200.0;
  r.stages.push_back(s);
  return r;
}

TEST(CallGraphTable, CsvRowsAgreeWithTheParsedSummaryJson) {
  // The human table and the machine summary are two views of one result;
  // pin them cell-by-cell against each other through obs::parse_json.
  const CallGraphRunResult r = callgraph_result();
  const auto doc = obs::parse_json(callgraph_summary_json(r));
  ASSERT_TRUE(doc.has_value());
  const auto& stages = doc->at("stages");
  ASSERT_TRUE(stages.is_array());

  std::ostringstream os;
  callgraph_table(r).write_csv(os);
  std::istringstream is(os.str());
  std::vector<std::vector<std::string>> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(split_csv_line(line));
  ASSERT_EQ(lines.size(), stages.array.size() + 2u);  // header + stages + E2E

  for (std::size_t i = 0; i < stages.array.size(); ++i) {
    const obs::JsonValue& s = stages.array[i];
    const auto& row = lines[i + 1];
    ASSERT_EQ(row.size(), 9u);
    EXPECT_EQ(row[0], std::to_string(static_cast<int>(s.at("stage").number)) +
                          ":" + s.at("name").string);
    EXPECT_EQ(row[1], s.at("label").string);
    EXPECT_EQ(row[2], s.at("pin").string);
    EXPECT_EQ(row[3], fmt_fixed(s.at("initial_budget_s").number, 3));
    EXPECT_EQ(row[4], fmt_fixed(s.at("final_budget_s").number, 3));
    EXPECT_EQ(row[5],
              std::to_string(static_cast<long long>(s.at("finished").number)));
    EXPECT_EQ(row[6], fmt_fixed(s.at("p95_s").number, 3));
    EXPECT_EQ(row[7],
              std::to_string(static_cast<long long>(s.at("switches").number)));
  }

  // The trailing E2E row carries the run-level numbers from the same JSON.
  const auto& e2e = lines.back();
  EXPECT_EQ(e2e[0], "E2E");
  EXPECT_EQ(e2e[1], doc->at("budget_mode").string);
  EXPECT_EQ(e2e[3], fmt_fixed(doc->at("e2e_qos_target_s").number, 3));
  EXPECT_EQ(e2e[6], fmt_fixed(doc->at("e2e_p95_s").number, 3));
  EXPECT_EQ(e2e[8], fmt_fixed(doc->at("total_core_hours").number, 2));
}

TEST(ClusterTable, PrintedLinesShareOneWidth) {
  std::ostringstream os;
  cluster_table(two_service_result()).print(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
  EXPECT_GT(width, 0u);
}

}  // namespace
}  // namespace amoeba::exp
