// Property and scenario tests for exp::run_callgraph.
//
// Call-graph runs are exercised like the cluster runs: several random
// (seed, shape) combinations checked against invariants that must hold for
// ANY run — the query-conservation ledger balances exactly, AND-join
// admission never lets a stage see a query before its parents finished it,
// budgets stay inside (0, T], and the shared pool respects the node
// budget. Metamorphic tests pin the canonicalization contract end to end:
// relabeling stages or permuting sibling declarations must reproduce the
// simulation bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/callgraph.hpp"
#include "exp/cluster.hpp"
#include "exp/profiling.hpp"
#include "exp/sweep.hpp"
#include "obs/json.hpp"
#include "workload/functionbench.hpp"

namespace amoeba::exp {
namespace {

struct Fixture {
  ClusterConfig cluster;
  core::MeterCalibration calibration;
  workload::FunctionProfile float_base;
  workload::FunctionProfile dd_base;
  core::ServiceArtifacts float_artifacts;
  core::ServiceArtifacts dd_artifacts;

  Fixture() : cluster(default_cluster()) {
    ProfilingConfig cfg;
    cfg.pressure_grid = {0.05, 0.45, 0.85};
    cfg.load_fractions = {0.1, 0.5, 1.0};
    cfg.cell_duration_s = 10.0;
    cfg.warmup_s = 3.0;
    cfg.threads = 1;
    calibration = profile_meters(cluster, cfg);
    float_base = workload::make_float();
    dd_base = workload::make_dd();
    float_artifacts = profile_service(float_base, cluster, calibration, cfg);
    dd_artifacts = profile_service(dd_base, cluster, calibration, cfg);
  }

  [[nodiscard]] workload::FunctionProfile tenant_of(bool heavy,
                                                    int i) const {
    return workload::as_tenant(heavy ? dd_base : float_base, i, 0.5);
  }

  /// Artifacts for each canonical stage, matched by base profile name.
  [[nodiscard]] std::vector<core::ServiceArtifacts> artifacts_for(
      const workload::CallGraph& g) const {
    std::vector<core::ServiceArtifacts> out;
    out.reserve(static_cast<std::size_t>(g.size()));
    for (int k = 0; k < g.size(); ++k) {
      const bool heavy =
          g.stage(k).profile.name.rfind(dd_base.name, 0) == 0;
      out.push_back(heavy ? dd_artifacts : float_artifacts);
    }
    return out;
  }

  /// End-to-end target: a modest multiple of the summed per-stage QoS
  /// targets — comfortably feasible for any of the test shapes.
  [[nodiscard]] static double e2e_target(const workload::CallGraph& g) {
    double sum = 0.0;
    for (int k = 0; k < g.size(); ++k) {
      sum += g.stage(k).profile.qos_target_s;
    }
    return 1.2 * sum;
  }
};

const Fixture& fix() {
  static Fixture f;
  return f;
}

enum class Shape { kChain2, kDiamond4, kFanOut3 };

workload::CallGraph make_graph(Shape shape) {
  const Fixture& f = fix();
  workload::CallGraph::Builder b;
  switch (shape) {
    case Shape::kChain2: {
      const int front = b.add_stage("front", f.tenant_of(false, 0));
      const int back = b.add_stage("back", f.tenant_of(true, 1));
      b.add_edge(front, back);
      break;
    }
    case Shape::kDiamond4: {
      const int front = b.add_stage("front", f.tenant_of(false, 0));
      const int left = b.add_stage("left", f.tenant_of(true, 1));
      const int right = b.add_stage("right", f.tenant_of(false, 2));
      const int back = b.add_stage("back", f.tenant_of(false, 3));
      b.add_edge(front, left);
      b.add_edge(front, right);
      b.add_edge(left, back);
      b.add_edge(right, back);
      break;
    }
    case Shape::kFanOut3: {
      const int front = b.add_stage("front", f.tenant_of(false, 0));
      const int out_a = b.add_stage("out_a", f.tenant_of(false, 1));
      const int out_b = b.add_stage("out_b", f.tenant_of(true, 2));
      b.add_edge(front, out_a);
      b.add_edge(front, out_b);
      break;
    }
  }
  return b.build();
}

CallGraphRunOptions small_options(const workload::CallGraph& g,
                                  std::uint64_t seed) {
  CallGraphRunOptions opt;
  opt.period_s = 240.0;
  opt.duration_days = 1.0;
  opt.warmup_s = 40.0;
  opt.e2e_qos_target_s = Fixture::e2e_target(g);
  opt.seed = seed;
  opt.node_container_budget = 48;
  opt.meter_reserve_containers = 6;
  return opt;
}

/// Invariants that must hold for ANY fault-free call-graph run.
void check_invariants(const workload::CallGraph& g,
                      const CallGraphRunResult& r,
                      const CallGraphRunOptions& opt) {
  ASSERT_EQ(r.stages.size(), static_cast<std::size_t>(g.size()));

  // Query conservation ledger, exact.
  EXPECT_EQ(r.root_injected, r.queries_completed + r.queries_unfinished);
  EXPECT_GT(r.queries_completed, 50u);

  for (const int root : g.roots()) {
    EXPECT_EQ(r.stages[static_cast<std::size_t>(root)].submitted,
              r.root_injected);
  }
  int granted = 0;
  for (int k = 0; k < g.size(); ++k) {
    const auto& s = r.stages[static_cast<std::size_t>(k)];
    SCOPED_TRACE(s.name);
    EXPECT_EQ(s.stage, k);
    EXPECT_EQ(s.name, g.service_name(k));
    EXPECT_EQ(s.label, g.stage(k).label);
    EXPECT_GE(s.finished, 1u);
    EXPECT_LE(s.finished, s.submitted);
    EXPECT_LE(s.submitted, r.root_injected);
    // AND-join admission: a stage cannot have seen a query any parent has
    // not finished.
    for (const int p : g.parents(k)) {
      EXPECT_LE(s.submitted, r.stages[static_cast<std::size_t>(p)].finished);
    }
    EXPECT_GT(s.initial_budget_s, 0.0);
    EXPECT_LE(s.initial_budget_s, opt.e2e_qos_target_s);
    EXPECT_GT(s.final_budget_s, 0.0);
    EXPECT_LE(s.final_budget_s, opt.e2e_qos_target_s);
    EXPECT_GE(s.n_max_granted, 1);
    EXPECT_LE(s.n_max_granted, s.n_max_asked);
    granted += s.n_max_granted;
    EXPECT_GE(s.p95(), 0.0);
  }
  EXPECT_LE(granted,
            opt.node_container_budget - opt.meter_reserve_containers);

  // Pool conservation, same bounds as cluster runs.
  const double pool_mb = fix().cluster.serverless.pool_memory_mb;
  EXPECT_GT(r.pool_memory_mb_seconds, 0.0);
  EXPECT_LE(r.pool_memory_mb_seconds, pool_mb * r.duration_s * (1.0 + 1e-9));
  EXPECT_LE(r.peak_pool_memory_mb, pool_mb);
  EXPECT_LE(r.peak_pool_containers, opt.node_container_budget);
  EXPECT_GT(r.total_core_hours(), 0.0);
  EXPECT_GT(r.total_memory_gb_hours(), 0.0);
  EXPECT_EQ(r.fault_counters.total(), 0u);
  EXPECT_GT(r.events_executed, 0u);
}

TEST(CallGraphInvariants, HoldAcrossRandomSeedsAndShapes) {
  struct Combo {
    Shape shape;
    std::uint64_t seed;
  };
  std::vector<Combo> combos;
  std::uint64_t k = 1;
  for (int rep = 0; rep < 3; ++rep) {
    for (Shape s : {Shape::kChain2, Shape::kDiamond4, Shape::kFanOut3}) {
      combos.push_back(Combo{s, 0x51ed2701u * k++});
    }
  }
  ASSERT_EQ(combos.size(), 9u);

  SweepExecutor exec(4);
  const auto results =
      exec.map<CallGraphRunResult>(combos, [&](const Combo& c) {
        const workload::CallGraph g = make_graph(c.shape);
        return run_callgraph(g, fix().artifacts_for(g), fix().cluster,
                             fix().calibration, small_options(g, c.seed));
      });
  for (std::size_t i = 0; i < combos.size(); ++i) {
    SCOPED_TRACE("combo=" + std::to_string(i) +
                 " seed=" + std::to_string(combos[i].seed));
    const workload::CallGraph g = make_graph(combos[i].shape);
    check_invariants(g, results[i], small_options(g, combos[i].seed));
  }
}

TEST(CallGraphInvariants, NaiveEqualModeSatisfiesTheSameLedger) {
  const workload::CallGraph g = make_graph(Shape::kDiamond4);
  CallGraphRunOptions opt = small_options(g, 77);
  opt.budget_mode = BudgetMode::kNaiveEqual;
  const auto r = run_callgraph(g, fix().artifacts_for(g), fix().cluster,
                               fix().calibration, opt);
  check_invariants(g, r, opt);
  // Naive budgets never renormalize: final == initial for every stage.
  for (const auto& s : r.stages) {
    EXPECT_DOUBLE_EQ(s.final_budget_s, s.initial_budget_s) << s.name;
  }
}

TEST(CallGraphMetamorphic, RelabelingAndPermutationPreserveTheTrace) {
  // The same diamond declared three ways: reference, relabeled, and with
  // sibling declarations permuted. The canonical CallGraph is identical,
  // so the simulation must be bit-identical too.
  const Fixture& f = fix();
  auto declare = [&f](const std::vector<std::string>& labels,
                      const std::vector<int>& order) {
    const std::vector<workload::FunctionProfile> profiles = {
        f.tenant_of(false, 0), f.tenant_of(true, 1), f.tenant_of(false, 2),
        f.tenant_of(false, 3)};
    workload::CallGraph::Builder b;
    std::vector<int> handle(4, -1);
    for (const int conceptual : order) {
      handle[static_cast<std::size_t>(conceptual)] =
          b.add_stage(labels[static_cast<std::size_t>(conceptual)],
                      profiles[static_cast<std::size_t>(conceptual)]);
    }
    b.add_edge(handle[0], handle[1]);
    b.add_edge(handle[0], handle[2]);
    b.add_edge(handle[1], handle[3]);
    b.add_edge(handle[2], handle[3]);
    return b.build();
  };

  const workload::CallGraph ref =
      declare({"front", "left", "right", "back"}, {0, 1, 2, 3});
  const workload::CallGraph relabeled =
      declare({"entry", "l", "r", "sink"}, {0, 1, 2, 3});
  const workload::CallGraph permuted =
      declare({"front", "left", "right", "back"}, {3, 2, 1, 0});
  ASSERT_EQ(relabeled.structure_hash(), ref.structure_hash());
  ASSERT_EQ(permuted.structure_hash(), ref.structure_hash());

  const auto run = [&](const workload::CallGraph& g) {
    return run_callgraph(g, fix().artifacts_for(g), fix().cluster,
                         fix().calibration, small_options(g, 42));
  };
  const auto r_ref = run(ref);
  const auto r_rel = run(relabeled);
  const auto r_perm = run(permuted);

  EXPECT_EQ(r_rel.trace_hash, r_ref.trace_hash);
  EXPECT_EQ(r_perm.trace_hash, r_ref.trace_hash);
  // Bitwise-equal end-to-end results, not merely close.
  EXPECT_EQ(r_rel.e2e_p95(), r_ref.e2e_p95());
  EXPECT_EQ(r_perm.e2e_p95(), r_ref.e2e_p95());
  EXPECT_EQ(r_rel.events_executed, r_ref.events_executed);
  for (std::size_t k = 0; k < r_ref.stages.size(); ++k) {
    EXPECT_EQ(r_rel.stages[k].name, r_ref.stages[k].name);
    EXPECT_EQ(r_rel.stages[k].final_budget_s, r_ref.stages[k].final_budget_s);
    EXPECT_EQ(r_perm.stages[k].finished, r_ref.stages[k].finished);
  }
  // Labels are reporting-only and follow the declaration.
  EXPECT_EQ(r_rel.stages[0].label, "entry");
  EXPECT_EQ(r_ref.stages[0].label, "front");
}

TEST(CallGraphBudgets, AwareModeDivergesFromNaiveOnAsymmetricChains) {
  // float -> dd: the heavy stage owns most of the latency, so the aware
  // split must hand it a larger share of T than the naive equal split,
  // and the two simulations diverge.
  const workload::CallGraph g = make_graph(Shape::kChain2);
  CallGraphRunOptions aware_opt = small_options(g, 5);
  CallGraphRunOptions naive_opt = aware_opt;
  naive_opt.budget_mode = BudgetMode::kNaiveEqual;

  const auto aware = run_callgraph(g, fix().artifacts_for(g), fix().cluster,
                                   fix().calibration, aware_opt);
  const auto naive = run_callgraph(g, fix().artifacts_for(g), fix().cluster,
                                   fix().calibration, naive_opt);

  const int heavy = g.stage_by_label("back");
  ASSERT_GE(heavy, 0);
  const auto hi = static_cast<std::size_t>(heavy);
  EXPECT_GT(aware.stages[hi].initial_budget_s,
            naive.stages[hi].initial_budget_s);
  EXPECT_NE(aware.trace_hash, naive.trace_hash);
}

// --- summary serialization (no simulation needed) ---

CallGraphRunResult sample_result() {
  CallGraphRunResult r;
  r.budget_mode = BudgetMode::kEndToEndAware;
  r.e2e_qos_target_s = 0.9;
  r.duration_s = 280.0;
  r.trace_hash = 0x0123456789abcdefULL;
  r.root_injected = 120;
  r.queries_completed = 118;
  r.queries_unfinished = 2;
  for (int i = 1; i <= 100; ++i) {
    r.e2e_latencies.add(0.005 * static_cast<double>(i));
  }
  r.stages_usage.cpu_core_seconds = 720.0;
  r.stages_usage.memory_mb_seconds = 1024.0 * 360.0;
  r.meter_usage.cpu_core_seconds = 36.0;
  r.peak_pool_containers = 31;
  r.prewarm_denied_total = 5;

  CallGraphStageResult a;
  a.stage = 0;
  a.name = "float#0@s0";
  a.label = "front";
  a.pin = workload::StagePin::kManaged;
  a.initial_budget_s = 0.3;
  a.final_budget_s = 0.35;
  a.submitted = 120;
  a.finished = 120;
  a.latencies.add(0.12);
  a.switches = 2;
  a.switch_aborts = 1;
  a.prewarm_denied = 5;
  a.n_max_asked = 8;
  a.n_max_granted = 6;
  a.usage.cpu_core_seconds = 600.0;
  a.usage.memory_mb_seconds = 1024.0 * 300.0;

  CallGraphStageResult b;
  b.stage = 1;
  b.name = "dd#1@s1";
  b.label = "back";
  b.pin = workload::StagePin::kIaasOnly;
  b.initial_budget_s = 0.6;
  b.final_budget_s = 0.55;
  b.submitted = 120;
  b.finished = 118;
  b.latencies.add(0.4);
  b.n_max_asked = 4;
  b.n_max_granted = 4;

  r.stages = {a, b};
  return r;
}

TEST(CallGraphSummaryJson, RoundTripsThroughParser) {
  const CallGraphRunResult r = sample_result();
  const auto doc = obs::parse_json(callgraph_summary_json(r));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());

  EXPECT_EQ(doc->at("n_stages").number, 2.0);
  EXPECT_EQ(doc->at("budget_mode").string, "e2e_aware");
  EXPECT_EQ(doc->at("e2e_qos_target_s").number, 0.9);
  EXPECT_EQ(doc->at("e2e_p95_s").number, r.e2e_p95());
  EXPECT_EQ(doc->at("e2e_violation_fraction").number,
            r.e2e_violation_fraction());
  EXPECT_EQ(doc->at("trace_hash").string, "0x123456789abcdef");
  EXPECT_EQ(doc->at("root_injected").number, 120.0);
  EXPECT_EQ(doc->at("queries_completed").number, 118.0);
  EXPECT_EQ(doc->at("queries_unfinished").number, 2.0);
  EXPECT_EQ(doc->at("total_core_hours").number, r.total_core_hours());
  EXPECT_EQ(doc->at("peak_pool_containers").number, 31.0);
  EXPECT_EQ(doc->at("prewarm_denied").number, 5.0);

  const obs::JsonValue& stages = doc->at("stages");
  ASSERT_TRUE(stages.is_array());
  ASSERT_EQ(stages.array.size(), 2u);
  const obs::JsonValue& a = stages.array[0];
  EXPECT_EQ(a.at("stage").number, 0.0);
  EXPECT_EQ(a.at("name").string, "float#0@s0");
  EXPECT_EQ(a.at("label").string, "front");
  EXPECT_EQ(a.at("pin").string, "managed");
  EXPECT_EQ(a.at("initial_budget_s").number, 0.3);
  EXPECT_EQ(a.at("final_budget_s").number, 0.35);
  EXPECT_EQ(a.at("submitted").number, 120.0);
  EXPECT_EQ(a.at("finished").number, 120.0);
  EXPECT_EQ(a.at("p95_s").number, r.stages[0].p95());
  EXPECT_EQ(a.at("switches").number, 2.0);
  EXPECT_EQ(a.at("switch_aborts").number, 1.0);
  EXPECT_EQ(a.at("prewarm_denied").number, 5.0);
  EXPECT_EQ(a.at("n_max_asked").number, 8.0);
  EXPECT_EQ(a.at("n_max_granted").number, 6.0);
  EXPECT_EQ(a.at("core_seconds").number, 600.0);
  const obs::JsonValue& bb = stages.array[1];
  EXPECT_EQ(bb.at("name").string, "dd#1@s1");
  EXPECT_EQ(bb.at("pin").string, "iaas_only");
}

TEST(CallGraphRunResultLookup, FindByName) {
  const CallGraphRunResult r = sample_result();
  ASSERT_NE(r.find("dd#1@s1"), nullptr);
  EXPECT_EQ(r.find("dd#1@s1")->n_max_granted, 4);
  EXPECT_EQ(r.find("absent"), nullptr);
}

TEST(CallGraphTable, OneRowPerStagePlusTheE2ERow) {
  const Table t = callgraph_table(sample_result());
  EXPECT_EQ(t.rows(), 3u);  // 2 stages + E2E
  EXPECT_EQ(t.cols(), 9u);
}

}  // namespace
}  // namespace amoeba::exp
