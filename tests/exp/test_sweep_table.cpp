#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "exp/sweep.hpp"
#include "exp/table.hpp"

namespace amoeba::exp {
namespace {

TEST(Sweep, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Sweep, ZeroItemsNoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL(); });
}

TEST(Sweep, SerialWhenOneThread) {
  std::vector<std::size_t> order;
  parallel_for(10, 1, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Sweep, ExceptionPropagates) {
  EXPECT_THROW(parallel_for(100, 4,
                            [](std::size_t i) {
                              if (i == 42) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(Sweep, ParallelMapPreservesOrder) {
  const auto out = parallel_map<std::size_t>(
      64, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Sweep, EffectiveThreadsNeverZero) {
  EXPECT_GE(effective_threads(0), 1u);
  EXPECT_EQ(effective_threads(7), 7u);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 22    |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "note"});
  t.add_row({"x,y", "says \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\",\"says \"\"hi\"\"\""), std::string::npos);
}

TEST(Format, FixedPercentSi) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.729, 1), "72.9%");
  EXPECT_EQ(fmt_si(2.5e9, 1), "2.5G");
  EXPECT_EQ(fmt_si(3.125e6, 2), "3.12M");  // round-half-to-even
  EXPECT_EQ(fmt_si(12.0, 0), "12");
}

}  // namespace
}  // namespace amoeba::exp
