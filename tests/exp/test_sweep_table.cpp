#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep.hpp"
#include "exp/table.hpp"

namespace amoeba::exp {
namespace {

TEST(Sweep, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Sweep, ZeroItemsNoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL(); });
}

TEST(Sweep, SerialWhenOneThread) {
  std::vector<std::size_t> order;
  parallel_for(10, 1, [&](std::size_t i) { order.push_back(i); });
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Sweep, ExceptionPropagates) {
  EXPECT_THROW(parallel_for(100, 4,
                            [](std::size_t i) {
                              if (i == 42) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

TEST(Sweep, ParallelMapPreservesOrder) {
  const auto out = parallel_map<std::size_t>(
      64, 4, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Sweep, EffectiveThreadsNeverZero) {
  EXPECT_GE(effective_threads(0), 1u);
  EXPECT_EQ(effective_threads(7), 7u);
}

// Each cell hashes its own seeded stream — a stand-in for "own Engine, own
// RNG". The table must be a pure function of the configuration list.
std::vector<std::uint64_t> executor_table(unsigned jobs) {
  SweepExecutor exec(jobs);
  const std::vector<std::uint64_t> configs = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3,
                                              5, 8, 9, 7, 9, 3, 2, 3, 8, 4};
  return exec.map<std::uint64_t>(configs, [](std::uint64_t seed) {
    std::uint64_t h = seed * 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 1000; ++i) h = h * 6364136223846793005ULL + seed;
    return h;
  });
}

TEST(SweepExecutor, IdenticalResultTablesAtJobs1AndJobs8) {
  const auto serial = executor_table(1);
  const auto parallel8 = executor_table(8);
  EXPECT_EQ(serial, parallel8);
}

TEST(SweepExecutor, MapIndexedCollectsInIndexOrder) {
  SweepExecutor exec(4);
  const auto out = exec.map_indexed<std::size_t>(
      100, [](std::size_t i) { return i * 3 + 1; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * 3 + 1);
}

TEST(SweepExecutor, Jobs1RunsOnCallingThreadWithoutPool) {
  SweepExecutor exec(1);
  EXPECT_EQ(exec.jobs(), 1u);
  const auto caller = std::this_thread::get_id();
  const auto out = exec.map_indexed<bool>(
      8, [caller](std::size_t) { return std::this_thread::get_id() == caller; });
  for (const bool on_caller : out) EXPECT_TRUE(on_caller);
}

TEST(SweepExecutor, ExceptionRethrownAfterDrain) {
  SweepExecutor exec(4);
  EXPECT_THROW(exec.map_indexed<int>(32,
                                     [](std::size_t i) -> int {
                                       if (i == 13) throw std::runtime_error("x");
                                       return static_cast<int>(i);
                                     }),
               std::runtime_error);
}

char** make_argv(std::vector<std::string>& args, std::vector<char*>& ptrs) {
  ptrs.clear();
  for (auto& a : args) ptrs.push_back(a.data());
  ptrs.push_back(nullptr);
  return ptrs.data();
}

TEST(ParseJobsFlag, DefaultsToOneAndLeavesArgvAlone) {
  std::vector<std::string> args = {"bench", "--events", "100"};
  std::vector<char*> ptrs;
  char** argv = make_argv(args, ptrs);
  int argc = 3;
  EXPECT_EQ(parse_jobs_flag(argc, argv), 1u);
  EXPECT_EQ(argc, 3);
  EXPECT_STREQ(argv[1], "--events");
}

TEST(ParseJobsFlag, ConsumesBothSpellingsAndRemovesThemFromArgv) {
  std::vector<std::string> args = {"bench", "--jobs", "4", "--foo"};
  std::vector<char*> ptrs;
  char** argv = make_argv(args, ptrs);
  int argc = 4;
  EXPECT_EQ(parse_jobs_flag(argc, argv), 4u);
  EXPECT_EQ(argc, 2);  // --jobs and its value consumed
  EXPECT_STREQ(argv[1], "--foo");
  EXPECT_EQ(argv[2], nullptr);

  std::vector<std::string> args2 = {"bench", "--jobs=8"};
  char** argv2 = make_argv(args2, ptrs);
  int argc2 = 2;
  EXPECT_EQ(parse_jobs_flag(argc2, argv2), 8u);
  EXPECT_EQ(argc2, 1);
}

TEST(ParseJobsFlag, RejectsNonNumericAndOutOfRange) {
  std::vector<char*> ptrs;
  for (const std::string bad : {"--jobs=zero", "--jobs=0", "--jobs=4096"}) {
    std::vector<std::string> args = {"bench", bad};
    char** argv = make_argv(args, ptrs);
    int argc = 2;
    EXPECT_THROW((void)parse_jobs_flag(argc, argv), ContractError) << bad;
  }
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 22    |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "note"});
  t.add_row({"x,y", "says \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\",\"says \"\"hi\"\"\""), std::string::npos);
}

TEST(Format, FixedPercentSi) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.729, 1), "72.9%");
  EXPECT_EQ(fmt_si(2.5e9, 1), "2.5G");
  EXPECT_EQ(fmt_si(3.125e6, 2), "3.12M");  // round-half-to-even
  EXPECT_EQ(fmt_si(12.0, 0), "12");
}

}  // namespace
}  // namespace amoeba::exp
