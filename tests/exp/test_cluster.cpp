// Property and scenario tests for exp::run_cluster.
//
// The cluster runtime is exercised the way a fuzzer would: many random
// (seed, N) combinations, each checked against invariants that must hold
// for ANY cluster run — resource-accounting conservation (the container
// pool cannot reserve more memory-seconds than capacity x duration), no
// tenant starves, pool occupancy stays within the node-wide budget, and
// the admission arbiter's grants add up. Scenario tests pin the two
// regimes the design doc calls out: a budget tight enough that the
// arbiter must shrink asks, and aligned diurnal phases — the worst case
// for the coupled control loops — which must not oscillate.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/profiling.hpp"
#include "exp/sweep.hpp"
#include "obs/json.hpp"
#include "workload/functionbench.hpp"

namespace amoeba::exp {
namespace {

// Coarse profiling grid (same spirit as the determinism checker): enough
// structure for the control loop to act on, cheap enough for a unit test.
struct Fixture {
  ClusterConfig cluster;
  core::MeterCalibration calibration;
  std::vector<workload::FunctionProfile> bases;
  std::vector<core::ServiceArtifacts> artifacts;

  Fixture() : cluster(default_cluster()) {
    ProfilingConfig cfg;
    cfg.pressure_grid = {0.05, 0.45, 0.85};
    cfg.load_fractions = {0.1, 0.5, 1.0};
    cfg.cell_duration_s = 10.0;
    cfg.warmup_s = 3.0;
    cfg.threads = 1;
    calibration = profile_meters(cluster, cfg);
    bases = {workload::make_float(), workload::make_dd()};
    for (const auto& b : bases) {
      artifacts.push_back(profile_service(b, cluster, calibration, cfg));
    }
  }
};

const Fixture& fix() {
  static Fixture f;
  return f;
}

std::vector<ClusterServiceSpec> make_specs(int n, double peak_fraction) {
  const Fixture& f = fix();
  std::vector<ClusterServiceSpec> specs;
  specs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t b = static_cast<std::size_t>(i) % f.bases.size();
    specs.push_back(ClusterServiceSpec{
        workload::as_tenant(f.bases[b], i, peak_fraction), f.artifacts[b],
        static_cast<double>(i) / static_cast<double>(n)});
  }
  return specs;
}

ClusterRunOptions small_options(std::uint64_t seed) {
  ClusterRunOptions opt;
  opt.period_s = 240.0;
  opt.duration_days = 1.0;
  opt.warmup_s = 40.0;
  opt.seed = seed;
  opt.node_container_budget = 48;
  opt.meter_reserve_containers = 6;
  return opt;
}

/// Invariants that must hold for ANY fault-free cluster run.
void check_invariants(const ClusterRunResult& r, int n,
                      const ClusterRunOptions& opt) {
  ASSERT_EQ(r.services.size(), static_cast<std::size_t>(n));

  // Conservation: the pool cannot reserve more container-memory-seconds
  // than its capacity sustained for the whole run.
  const double pool_mb = fix().cluster.serverless.pool_memory_mb;
  EXPECT_GT(r.pool_memory_mb_seconds, 0.0);
  EXPECT_LE(r.pool_memory_mb_seconds,
            pool_mb * r.duration_s * (1.0 + 1e-9));
  EXPECT_LE(r.peak_pool_memory_mb, pool_mb);

  // Occupancy: every function is capped, so the pool high-water mark can
  // never exceed the node-wide container budget.
  EXPECT_LE(r.peak_pool_containers, opt.node_container_budget);

  int granted = 0;
  std::uint64_t denied = 0;
  for (const auto& s : r.services) {
    EXPECT_GT(s.queries, 50u) << s.name << " starved";
    EXPECT_GE(s.n_max_granted, 1) << s.name;
    EXPECT_LE(s.n_max_granted, s.n_max_asked) << s.name;
    granted += s.n_max_granted;
    denied += s.prewarm_denied;
    EXPECT_GE(s.p95(), 0.0) << s.name;
    EXPECT_GE(s.violation_fraction(), 0.0) << s.name;
    EXPECT_LE(s.violation_fraction(), 1.0) << s.name;
  }
  // Grants fit in what is left after the meter reserve.
  EXPECT_LE(granted,
            opt.node_container_budget - opt.meter_reserve_containers);
  EXPECT_EQ(denied, r.prewarm_denied_total);
  EXPECT_GT(r.total_core_hours(), 0.0);
  EXPECT_GT(r.total_memory_gb_hours(), 0.0);
  EXPECT_EQ(r.fault_counters.total(), 0u);
}

TEST(ClusterInvariants, HoldAcrossRandomSeedsAndSizes) {
  struct Combo {
    int n;
    std::uint64_t seed;
  };
  std::vector<Combo> combos;
  std::uint64_t k = 1;
  for (int rep = 0; rep < 7; ++rep) {
    for (int n : {2, 3, 4}) {
      combos.push_back(Combo{n, 0x9e3779b9u * k++});
    }
  }
  ASSERT_EQ(combos.size(), 21u);

  SweepExecutor exec(4);
  const auto results =
      exec.map<ClusterRunResult>(combos, [&](const Combo& c) {
        return run_cluster(make_specs(c.n, 0.5), fix().cluster,
                           fix().calibration, small_options(c.seed));
      });
  for (std::size_t i = 0; i < combos.size(); ++i) {
    SCOPED_TRACE("n=" + std::to_string(combos[i].n) +
                 " seed=" + std::to_string(combos[i].seed));
    check_invariants(results[i], combos[i].n, small_options(combos[i].seed));
  }
}

TEST(ClusterInvariants, ArbitrationBindsUnderTightBudget) {
  // A budget far below the sum of solo asks: the arbiter must shrink
  // grants to exactly the service budget while every tenant keeps at
  // least one container.
  ClusterRunOptions opt = small_options(99);
  opt.node_container_budget = 12;
  opt.meter_reserve_containers = 3;
  const int n = 4;
  const auto r =
      run_cluster(make_specs(n, 0.5), fix().cluster, fix().calibration, opt);

  int asked = 0;
  int granted = 0;
  for (const auto& s : r.services) {
    EXPECT_GE(s.n_max_granted, 1) << s.name;
    asked += s.n_max_asked;
    granted += s.n_max_granted;
  }
  const int service_budget =
      opt.node_container_budget - opt.meter_reserve_containers;
  EXPECT_GT(asked, service_budget);      // the budget genuinely binds
  EXPECT_EQ(granted, service_budget);    // and is fully distributed
  EXPECT_LE(r.peak_pool_containers, opt.node_container_budget);
}

TEST(ClusterOscillation, AlignedPeaksDoNotPingPong) {
  // Two identical tenants with ALIGNED diurnal phases: each one's switch
  // changes the pressure the other measures, the classic setup for
  // coupled controllers to chase each other. A healthy day has a handful
  // of switches (out at the trough, back for the rush, plus reaction to
  // the co-tenant); ping-ponging would show dozens.
  const Fixture& f = fix();
  std::vector<ClusterServiceSpec> specs;
  for (int i = 0; i < 2; ++i) {
    specs.push_back(ClusterServiceSpec{
        workload::as_tenant(f.bases[0], i, 0.5), f.artifacts[0], 0.0});
  }
  ClusterRunOptions opt = small_options(42);
  opt.period_s = 480.0;
  const auto r = run_cluster(specs, f.cluster, f.calibration, opt);

  for (const auto& s : r.services) {
    EXPECT_LE(s.switches.size(), 8u) << s.name << " oscillates";
    EXPECT_EQ(s.switch_aborts, 0u) << s.name;    // fault-free run
    EXPECT_EQ(s.switch_retries, 0u) << s.name;
  }
  EXPECT_EQ(r.fault_counters.total(), 0u);
}

// --- summary serialization (no simulation needed) ---

ClusterRunResult sample_result() {
  ClusterRunResult r;
  r.duration_s = 1260.0;
  r.trace_hash = 0x0123456789abcdefULL;
  r.services_usage.cpu_core_seconds = 7200.0;
  r.services_usage.memory_mb_seconds = 1024.0 * 3600.0;
  r.meter_usage.cpu_core_seconds = 360.0;
  r.meter_usage.memory_mb_seconds = 512.0 * 3600.0;
  r.pool_memory_mb_seconds = 5.0e6;
  r.peak_pool_containers = 57;
  r.peak_pool_memory_mb = 14592.0;
  r.pool_evictions = 3;
  r.prewarm_denied_total = 11;

  ClusterServiceResult a;
  a.name = "float#0";
  a.qos_target_s = 0.15;
  for (int i = 1; i <= 100; ++i) {
    a.latencies.add(0.002 * static_cast<double>(i));
  }
  a.queries = 100;
  a.switches.resize(2);
  a.switch_aborts = 1;
  a.switch_retries = 2;
  a.prewarm_denied = 4;
  a.n_max_asked = 10;
  a.n_max_granted = 7;
  a.usage.cpu_core_seconds = 3600.0;
  a.usage.memory_mb_seconds = 36864.0;

  ClusterServiceResult b;
  b.name = "dd#1";
  b.qos_target_s = 0.5;
  b.latencies.add(0.4);
  b.queries = 1;
  b.n_max_asked = 3;
  b.n_max_granted = 3;

  r.services = {a, b};
  return r;
}

TEST(ClusterSummaryJson, RoundTripsThroughParser) {
  const ClusterRunResult r = sample_result();
  const auto doc = obs::parse_json(cluster_summary_json(r));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());

  EXPECT_EQ(doc->at("n_services").number, 2.0);
  EXPECT_EQ(doc->at("duration_s").number, 1260.0);
  EXPECT_EQ(doc->at("trace_hash").string, "0x123456789abcdef");
  EXPECT_EQ(doc->at("total_core_hours").number, r.total_core_hours());
  EXPECT_EQ(doc->at("total_memory_gb_hours").number,
            r.total_memory_gb_hours());
  EXPECT_EQ(doc->at("peak_pool_containers").number, 57.0);
  EXPECT_EQ(doc->at("peak_pool_memory_mb").number, 14592.0);
  EXPECT_EQ(doc->at("pool_evictions").number, 3.0);
  EXPECT_EQ(doc->at("prewarm_denied").number, 11.0);

  const obs::JsonValue& services = doc->at("services");
  ASSERT_TRUE(services.is_array());
  ASSERT_EQ(services.array.size(), 2u);
  const obs::JsonValue& a = services.array[0];
  EXPECT_EQ(a.at("name").string, "float#0");
  EXPECT_EQ(a.at("qos_target_s").number, 0.15);
  EXPECT_EQ(a.at("queries").number, 100.0);
  EXPECT_EQ(a.at("p95_s").number, r.services[0].p95());
  EXPECT_EQ(a.at("violation_fraction").number,
            r.services[0].violation_fraction());
  EXPECT_EQ(a.at("switches").number, 2.0);
  EXPECT_EQ(a.at("switch_aborts").number, 1.0);
  EXPECT_EQ(a.at("switch_retries").number, 2.0);
  EXPECT_EQ(a.at("prewarm_denied").number, 4.0);
  EXPECT_EQ(a.at("n_max_asked").number, 10.0);
  EXPECT_EQ(a.at("n_max_granted").number, 7.0);
  EXPECT_EQ(a.at("core_seconds").number, 3600.0);
  EXPECT_EQ(a.at("memory_mb_seconds").number, 36864.0);
  EXPECT_EQ(services.array[1].at("name").string, "dd#1");
}

TEST(ClusterRunResultLookup, FindByName) {
  const ClusterRunResult r = sample_result();
  ASSERT_NE(r.find("dd#1"), nullptr);
  EXPECT_EQ(r.find("dd#1")->n_max_granted, 3);
  EXPECT_EQ(r.find("absent"), nullptr);
}

TEST(ClusterTenants, CyclesSuiteWithScaledPeaks) {
  const auto suite = workload::functionbench_suite();
  const auto tenants = cluster_tenants(7, 0.5);
  ASSERT_EQ(tenants.size(), 7u);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const auto& base = suite[i % suite.size()];
    EXPECT_EQ(tenants[i].name, base.name + "#" + std::to_string(i));
    EXPECT_DOUBLE_EQ(tenants[i].peak_load_qps, base.peak_load_qps * 0.5);
    EXPECT_DOUBLE_EQ(tenants[i].qos_target_s, base.qos_target_s);
    EXPECT_DOUBLE_EQ(tenants[i].memory_mb, base.memory_mb);
  }
}

}  // namespace
}  // namespace amoeba::exp
