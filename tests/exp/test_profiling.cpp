#include "exp/profiling.hpp"

#include <gtest/gtest.h>

namespace amoeba::exp {
namespace {

ClusterConfig small_cluster() {
  auto c = default_cluster();
  // Shrink the node so profiling cells reach high pressure with less load
  // (keeps the test fast on one core).
  c.serverless.cores = 8.0;
  c.serverless.disk_bps = 1.0e9;
  c.serverless.net_bps = 1.0e9;
  c.serverless.pool_memory_mb = 16384.0;
  return c;
}

ProfilingConfig quick_config() {
  ProfilingConfig cfg;
  cfg.pressure_grid = {0.05, 0.45, 0.85};
  cfg.load_fractions = {0.1, 0.5, 1.0};
  cfg.cell_duration_s = 12.0;
  cfg.warmup_s = 3.0;
  cfg.threads = 1;
  return cfg;
}

TEST(Profiling, StressorLoadInvertsPressure) {
  const auto cluster = small_cluster();
  // CPU stressor: 0.1 core-s per query; pressure 0.5 on 8 cores = 40 qps.
  EXPECT_NEAR(stressor_load_for_pressure(workload::StressKind::kCpu, 0.5,
                                         cluster),
              40.0, 1e-9);
  // IO stressor: 50 MB raw per query, inflated by the container IO tax
  // (0.85): 0.5 GB/s of 1 GB/s effective = 8.5 qps.
  const double eff = cluster.serverless.io_efficiency;
  EXPECT_NEAR(stressor_load_for_pressure(workload::StressKind::kDiskIo, 0.5,
                                         cluster),
              10.0 * eff, 1e-9);
}

TEST(Profiling, CellProducesSamples) {
  const auto cluster = small_cluster();
  const auto cfg = quick_config();
  const auto subject = workload::make_stressor(workload::StressKind::kCpu);
  const auto cell =
      run_profile_cell(subject, 5.0, nullptr, 0.0, cluster, cfg, 1);
  EXPECT_GT(cell.samples, 30u);
  EXPECT_GT(cell.mean_latency_s, 0.0);
  EXPECT_GE(cell.tail_latency_s, cell.mean_latency_s);
}

TEST(Profiling, MeterCurvesAreCalibrated) {
  const auto cluster = small_cluster();
  const auto cal = profile_meters(cluster, quick_config());
  ASSERT_TRUE(cal.complete());
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto& curve = *cal.curves[d];
    EXPECT_EQ(curve.points().size(), 3u);
    // Latency grows (weakly) with pressure; the high-pressure end is
    // strictly slower than solo.
    EXPECT_GT(curve.points().back().latency,
              curve.base_latency() * 1.02)
        << "meter dim " << d;
  }
}

TEST(Profiling, ServiceArtifactsComplete) {
  const auto cluster = small_cluster();
  const auto cfg = quick_config();
  const auto cal = profile_meters(cluster, cfg);

  // A CPU-heavy subject scaled to the small node.
  workload::FunctionProfile subject = workload::make_float();
  subject.peak_load_qps = 24.0;  // 24 × 0.08 = 1.9 of 8 cores at peak

  const auto art = profile_service(subject, cluster, cal, cfg);
  ASSERT_TRUE(art.complete());
  EXPECT_GT(art.solo_latency_s, 0.08);  // at least the cpu work
  EXPECT_LT(art.solo_latency_s, 0.2);

  // The CPU surface must grow along the pressure axis...
  const auto& cpu_surface = *art.surfaces[core::kCpuDim];
  const double cpu_rise = cpu_surface.at(0.85, 2.4) / cpu_surface.at(0.05, 2.4);
  EXPECT_GT(cpu_rise, 1.3);
  // ...and dominate the IO surface's rise. (float is not perfectly flat on
  // IO: its per-query code load crosses the contended disk — genuine
  // physics the surfaces are supposed to capture.)
  const auto& io_surface = *art.surfaces[core::kIoDim];
  const double io_rise = io_surface.at(0.85, 2.4) / io_surface.at(0.05, 2.4);
  EXPECT_LT(io_rise, cpu_rise);
  EXPECT_LT(io_rise, 1.6);

  // Footprint: the service presses mainly on CPU.
  EXPECT_GT(art.pressure_per_qps[core::kCpuDim], 0.0);
  EXPECT_GE(art.pressure_per_qps[core::kIoDim], 0.0);
  // Sanity: cpu footprint per qps ~ cpu_seconds / cores = 0.01.
  EXPECT_NEAR(art.pressure_per_qps[core::kCpuDim], 0.08 / 8.0, 0.006);
}

TEST(Profiling, ConfigValidation) {
  ProfilingConfig cfg = quick_config();
  cfg.pressure_grid = {0.5};
  EXPECT_THROW(cfg.validate(), ContractError);
  cfg = quick_config();
  cfg.warmup_s = 20.0;  // >= duration
  EXPECT_THROW(cfg.validate(), ContractError);
  cfg = quick_config();
  cfg.load_fractions = {0.5, 0.4};
  EXPECT_THROW(cfg.validate(), ContractError);
}

}  // namespace
}  // namespace amoeba::exp
