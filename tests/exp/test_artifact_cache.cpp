#include "exp/artifact_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace amoeba::exp {
namespace {

class ArtifactCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("amoeba_cache_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

core::MeterCalibration sample_calibration() {
  core::MeterCalibration cal;
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    cal.curves[d] = core::MeterCurve(
        {{0.02, 0.1 + 0.01 * static_cast<double>(d)},
         {0.5, 0.2 + 0.01 * static_cast<double>(d)},
         {0.9, 0.5 + 0.01 * static_cast<double>(d)}});
  }
  return cal;
}

core::ServiceArtifacts sample_artifacts() {
  core::ServiceArtifacts art;
  art.solo_latency_s = 0.123456789012345;
  art.alpha_s = 0.01;
  art.pressure_per_qps = {0.001, 0.002, 0.003};
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    art.surfaces[d] = core::LatencySurface(
        {0.1, 0.5, 0.9}, {1.0, 5.0},
        {0.1, 0.11, 0.2, 0.22, 0.4, 0.44});
  }
  return art;
}

TEST_F(ArtifactCacheTest, CalibrationRoundTrip) {
  const auto cal = sample_calibration();
  save_calibration(path("m.txt"), "tag-1", cal);
  const auto loaded = load_calibration(path("m.txt"), "tag-1");
  ASSERT_TRUE(loaded.has_value());
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto& a = cal.curves[d]->points();
    const auto& b = loaded->curves[d]->points();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].pressure, b[i].pressure);
      EXPECT_DOUBLE_EQ(a[i].latency, b[i].latency);
    }
  }
}

TEST_F(ArtifactCacheTest, ArtifactsRoundTripBitExact) {
  const auto art = sample_artifacts();
  save_artifacts(path("a.txt"), "tag-2", art);
  const auto loaded = load_artifacts(path("a.txt"), "tag-2");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->solo_latency_s, art.solo_latency_s);
  EXPECT_DOUBLE_EQ(loaded->alpha_s, art.alpha_s);
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    EXPECT_DOUBLE_EQ(loaded->pressure_per_qps[d], art.pressure_per_qps[d]);
    const auto& a = *art.surfaces[d];
    const auto& b = *loaded->surfaces[d];
    ASSERT_EQ(a.pressures().size(), b.pressures().size());
    ASSERT_EQ(a.loads().size(), b.loads().size());
    for (std::size_t pi = 0; pi < a.pressures().size(); ++pi) {
      for (std::size_t li = 0; li < a.loads().size(); ++li) {
        EXPECT_DOUBLE_EQ(a.value(pi, li), b.value(pi, li));
      }
    }
  }
}

TEST_F(ArtifactCacheTest, TagMismatchIsMiss) {
  save_calibration(path("m.txt"), "tag-1", sample_calibration());
  EXPECT_FALSE(load_calibration(path("m.txt"), "tag-other").has_value());
  save_artifacts(path("a.txt"), "tag-1", sample_artifacts());
  EXPECT_FALSE(load_artifacts(path("a.txt"), "tag-other").has_value());
}

TEST_F(ArtifactCacheTest, MissingFileIsMiss) {
  EXPECT_FALSE(load_calibration(path("nope.txt"), "t").has_value());
  EXPECT_FALSE(load_artifacts(path("nope.txt"), "t").has_value());
}

TEST_F(ArtifactCacheTest, CorruptFileIsMissNotCrash) {
  {
    std::ofstream os(path("bad.txt"));
    os << "amoeba-profile-cache-v1\ntag\nmeters 3\ncurve 0 2\n0.1";
  }
  EXPECT_FALSE(load_calibration(path("bad.txt"), "tag").has_value());
  {
    std::ofstream os(path("bad2.txt"));
    os << "garbage\n";
  }
  EXPECT_FALSE(load_artifacts(path("bad2.txt"), "tag").has_value());
}

TEST_F(ArtifactCacheTest, SaveCreatesParentDirectories) {
  const auto nested = (dir_ / "x" / "y" / "z.txt").string();
  save_calibration(nested, "t", sample_calibration());
  EXPECT_TRUE(load_calibration(nested, "t").has_value());
}

TEST_F(ArtifactCacheTest, OverwriteReplacesContent) {
  auto art = sample_artifacts();
  save_artifacts(path("a.txt"), "t", art);
  art.solo_latency_s = 0.999;
  save_artifacts(path("a.txt"), "t", art);
  const auto loaded = load_artifacts(path("a.txt"), "t");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->solo_latency_s, 0.999);
}

}  // namespace
}  // namespace amoeba::exp
