// Contract-library tests: violation formatting, handler plumbing, and
// death-tests demonstrating the production abort path for the invariants
// catalogued in DESIGN.md §"Invariants & verification".
#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "core/hybrid_engine.hpp"
#include "core/prewarm_policy.hpp"
#include "core/queueing.hpp"
#include "sim/counting_resource.hpp"
#include "sim/engine.hpp"
#include "sim/fault_injector.hpp"

namespace amoeba {
namespace {

TEST(ContractViolation, DescribeIncludesAllParts) {
  const ContractViolation v{"precondition", "x > 0", "file.cpp", 42,
                            "x must be positive", "x = -1"};
  const std::string text = v.describe();
  EXPECT_NE(text.find("precondition violated"), std::string::npos);
  EXPECT_NE(text.find("`x > 0`"), std::string::npos);
  EXPECT_NE(text.find("file.cpp:42"), std::string::npos);
  EXPECT_NE(text.find("x must be positive"), std::string::npos);
  EXPECT_NE(text.find("[x = -1]"), std::string::npos);
}

TEST(ContractViolation, CaptureRendersNamesAndValues) {
  const double rho = 1.25;
  const int n = 4;
  EXPECT_EQ(AMOEBA_CAPTURE(rho, n), "rho, n = 1.25, 4");
}

TEST(ContractHandler, SetReturnsPreviousAndNullRestoresDefault) {
  // The test harness installs the throwing handler before main().
  ContractHandler prev = set_contract_handler(&abort_contract_handler);
  EXPECT_EQ(prev, &throwing_contract_handler);
  EXPECT_EQ(contract_handler(), &abort_contract_handler);
  set_contract_handler(nullptr);
  EXPECT_EQ(contract_handler(), &abort_contract_handler);
  set_contract_handler(&throwing_contract_handler);
}

TEST(ContractHandler, ThrowingHandlerCarriesKindInMessage) {
  try {
    AMOEBA_EXPECTS_MSG(false, "deliberate");
    FAIL() << "contract did not fire";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("precondition violated"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("deliberate"), std::string::npos);
  }
}

TEST(ContractHandler, EnsuresAndInvariantReportTheirKind) {
  EXPECT_THROW(AMOEBA_ENSURES(1 == 2), ContractError);
  EXPECT_THROW(AMOEBA_INVARIANT(1 == 2), ContractError);
  try {
    AMOEBA_ENSURES_VALS(false, 7);
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition violated"),
              std::string::npos);
  }
}

TEST(ContractHandler, CaptureIsLazilyEvaluated) {
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  AMOEBA_EXPECTS_VALS(true, count());
  EXPECT_EQ(evaluations, 0);  // passing contract never builds the capture
  EXPECT_THROW(AMOEBA_EXPECTS_VALS(false, count()), ContractError);
  EXPECT_EQ(evaluations, 1);
}

// --- Death-tests: the production (abort) handler --------------------------
//
// The death-test child inherits the suite's throwing handler, so each dying
// statement first reinstalls the production handler. The matched output is
// what abort_contract_handler prints to stderr before abort().

using ContractDeathTest = testing::Test;

TEST(ContractDeathTest, DefaultHandlerPrintsAndAborts) {
  EXPECT_DEATH(
      {
        set_contract_handler(&abort_contract_handler);
        AMOEBA_EXPECTS_MSG(false, "boom");
      },
      "precondition violated.*boom");
}

TEST(ContractDeathTest, QueueingRejectsUnstableSystem) {
  EXPECT_DEATH(
      {
        set_contract_handler(&abort_contract_handler);
        (void)core::queueing::pi0(20.0, 10, 1.0);  // rho = 2 >= 1
      },
      "system must be stable");
}

TEST(ContractDeathTest, EngineRejectsSchedulingInThePast) {
  EXPECT_DEATH(
      {
        set_contract_handler(&abort_contract_handler);
        sim::Engine engine;
        engine.schedule(1.0, [] {});
        engine.run();  // now() == 1.0
        engine.schedule(0.5, [] {});
      },
      "cannot schedule an event in the past");
}

TEST(ContractDeathTest, CountingResourceRejectsOverRelease) {
  EXPECT_DEATH(
      {
        set_contract_handler(&abort_contract_handler);
        sim::Engine engine;
        sim::CountingResource res(engine, "mem", 100.0);
        (void)res.try_acquire(10.0);
        res.release(20.0);
      },
      "releasing more than held");
}

TEST(ContractDeathTest, HybridEngineConfigRejectsBadMirrorFraction) {
  EXPECT_DEATH(
      {
        set_contract_handler(&abort_contract_handler);
        core::HybridEngineConfig cfg;
        cfg.mirror_fraction = 1.5;
        cfg.validate();
      },
      "mirror_fraction");
}

TEST(ContractDeathTest, HybridEngineConfigRejectsNonPositivePoll) {
  EXPECT_DEATH(
      {
        set_contract_handler(&abort_contract_handler);
        core::HybridEngineConfig cfg;
        cfg.prewarm_poll_s = 0.0;
        cfg.validate();
      },
      "prewarm_poll_s");
}

TEST(ContractDeathTest, FaultConfigRejectsOutOfRangeProbability) {
  EXPECT_DEATH(
      {
        set_contract_handler(&abort_contract_handler);
        sim::FaultConfig cfg;
        cfg.container_boot_failure_p = 2.0;
        cfg.validate();
      },
      "precondition violated.*p >= 0");
}

TEST(ContractDeathTest, PrewarmPolicyRejectsNonPositiveQosTarget) {
  EXPECT_DEATH(
      {
        set_contract_handler(&abort_contract_handler);
        core::PrewarmPolicy policy;
        (void)policy.containers_for(10.0, 0.0);
      },
      "qos_target_s > 0");
}

}  // namespace
}  // namespace amoeba
