// Simulation determinism checker.
//
// Runs the full Amoeba control loop (profiling artifacts -> run_managed
// with monitor, discriminant, switches, prewarm) twice under the same seed
// and asserts the executed event traces hash identically — then once more
// under a different seed asserting the traces diverge. Future parallelism
// work (sharding, async hot paths) cannot silently introduce
// nondeterminism without tripping this test.
//
// Two trace fingerprints are compared:
//   * Engine::trace_hash() — order-sensitive hash over every executed
//     simulator event's (timestamp, event id);
//   * a query-stream hash over (entity id, event kind, timestamps) of every
//     recorded foreground query, plus every switch event.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "exp/callgraph.hpp"
#include "exp/cluster.hpp"
#include "exp/profiling.hpp"
#include "exp/scenario.hpp"
#include "obs/observer.hpp"
#include "obs/profiler.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "workload/functionbench.hpp"

namespace amoeba::exp {
namespace {

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t w) {
  h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_double(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

/// Hash of the observable event stream: per-query (id, arrival,
/// completion, cold) plus per-switch (time, direction).
std::uint64_t stream_hash(const ManagedRunResult& r) {
  std::uint64_t h = 0xabcdef0123456789ULL;
  for (const auto& rec : r.records) {
    h = hash_mix(h, rec.id);
    h = hash_mix(h, hash_double(rec.arrival));
    h = hash_mix(h, hash_double(rec.completion));
    h = hash_mix(h, rec.cold ? 1 : 0);
  }
  for (const auto& sw : r.switches) {
    h = hash_mix(h, hash_double(sw.time));
    h = hash_mix(h, static_cast<std::uint64_t>(sw.to));
  }
  return h;
}

struct Artifacts {
  ClusterConfig cluster;
  core::MeterCalibration calibration;
  workload::FunctionProfile foreground;
  core::ServiceArtifacts artifacts;

  Artifacts() : cluster(default_cluster()) {
    ProfilingConfig cfg;
    cfg.pressure_grid = {0.05, 0.45, 0.85};
    cfg.load_fractions = {0.1, 0.5, 1.0};
    cfg.cell_duration_s = 10.0;
    cfg.warmup_s = 3.0;
    cfg.threads = 1;
    calibration = profile_meters(cluster, cfg);
    foreground = workload::make_float();
    artifacts = profile_service(foreground, cluster, calibration, cfg);
  }
};

const Artifacts& setup() {
  static Artifacts a;
  return a;
}

ManagedRunOptions options(std::uint64_t seed) {
  ManagedRunOptions opt;
  opt.period_s = 360.0;
  opt.duration_days = 1.0;
  opt.warmup_s = 40.0;
  opt.with_background = true;
  opt.background_peak_fraction = 0.25;
  opt.keep_records = true;
  opt.seed = seed;
  return opt;
}

TEST(Determinism, EngineTraceHashIsSeedStable) {
  // Minimal engine-level check: identical stochastic schedules produce
  // identical (timestamp, id) traces.
  auto run = [](std::uint64_t seed) {
    sim::Engine engine;
    sim::Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      engine.schedule_in(rng.exponential(3.0), [] {});
    }
    engine.run();
    return engine.trace_hash();
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(Determinism, ControlLoopTraceIsIdenticalUnderSameSeed) {
  const auto& s = setup();
  const auto a = run_managed(s.foreground, DeploySystem::kAmoeba, s.cluster,
                             s.calibration, s.artifacts, options(7));
  const auto b = run_managed(s.foreground, DeploySystem::kAmoeba, s.cluster,
                             s.calibration, s.artifacts, options(7));
  ASSERT_GT(a.queries, 1000u);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.trace_hash, b.trace_hash) << "simulator event traces diverged";
  EXPECT_EQ(stream_hash(a), stream_hash(b)) << "query streams diverged";
  EXPECT_EQ(a.switches.size(), b.switches.size());
  EXPECT_DOUBLE_EQ(a.p95(), b.p95());
  EXPECT_DOUBLE_EQ(a.usage.cpu_core_seconds, b.usage.cpu_core_seconds);
}

TEST(Determinism, ObservabilityDoesNotPerturbTheSimulation) {
  // The observability layer is pure bookkeeping (no scheduled events, no
  // randomness), so a fully instrumented run must execute the exact same
  // simulator event trace as an uninstrumented run of the same seed.
  const auto& s = setup();
  const auto plain = run_managed(s.foreground, DeploySystem::kAmoeba,
                                 s.cluster, s.calibration, s.artifacts,
                                 options(7));
  obs::Observer observer{obs::ObsConfig{}};
  auto opt = options(7);
  opt.observer = &observer;
  const auto observed = run_managed(s.foreground, DeploySystem::kAmoeba,
                                    s.cluster, s.calibration, s.artifacts,
                                    opt);
  EXPECT_EQ(plain.trace_hash, observed.trace_hash)
      << "enabling observability changed the executed event trace";
  EXPECT_EQ(stream_hash(plain), stream_hash(observed));
  EXPECT_EQ(plain.queries, observed.queries);
  // ...and the observer did record the run it watched.
  EXPECT_FALSE(observer.audit().empty());
  EXPECT_FALSE(observer.tracer().events().empty());
  EXPECT_FALSE(observer.metrics().snapshots().empty());
  EXPECT_EQ(observer.tracer().open_spans(), 0u);
}

TEST(Determinism, ProfilerDoesNotPerturbTheSimulation) {
  // The self-profiler reads the wall clock but never schedules events or
  // draws randomness, so attaching it must leave the executed event trace
  // and the observable query stream bit-identical — while still recording
  // a nonzero wall-time breakdown of the run it watched.
  const auto& s = setup();
  const auto plain = run_managed(s.foreground, DeploySystem::kAmoeba,
                                 s.cluster, s.calibration, s.artifacts,
                                 options(7));
  obs::Profiler profiler;
  auto opt = options(7);
  opt.profiler = &profiler;
  const auto profiled = run_managed(s.foreground, DeploySystem::kAmoeba,
                                    s.cluster, s.calibration, s.artifacts,
                                    opt);
  EXPECT_EQ(plain.trace_hash, profiled.trace_hash)
      << "attaching the profiler changed the executed event trace";
  EXPECT_EQ(stream_hash(plain), stream_hash(profiled));
  EXPECT_EQ(plain.queries, profiled.queries);
  const auto report = profiler.report();
  EXPECT_GT(report.attributed_s(), 0.0)
      << "profiler attached but recorded nothing";
  EXPECT_FALSE(report.buckets.empty());
  EXPECT_EQ(report.dropped_scopes, 0u);
}

TEST(Determinism, ProfilerDoesNotPerturbClusterRuns) {
  // Same invariant at cluster scale: the N=4 coupled control loops from
  // ClusterRunIsSeedStable must hash identically with a profiler attached.
  const auto& s = setup();
  std::vector<ClusterServiceSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(ClusterServiceSpec{
        workload::as_tenant(s.foreground, i, 0.4), s.artifacts,
        static_cast<double>(i) / 4.0});
  }
  ClusterRunOptions opt;
  opt.period_s = 240.0;
  opt.duration_days = 1.0;
  opt.warmup_s = 40.0;
  opt.seed = 42;
  const auto plain = run_cluster(specs, s.cluster, s.calibration, opt);
  obs::Profiler profiler;
  opt.profiler = &profiler;
  const auto profiled = run_cluster(specs, s.cluster, s.calibration, opt);
  EXPECT_EQ(plain.trace_hash, profiled.trace_hash)
      << "attaching the profiler changed the cluster event trace";
  ASSERT_EQ(plain.services.size(), profiled.services.size());
  for (std::size_t i = 0; i < plain.services.size(); ++i) {
    EXPECT_EQ(plain.services[i].queries, profiled.services[i].queries);
    EXPECT_EQ(hash_double(plain.services[i].p95()),
              hash_double(profiled.services[i].p95()));
  }
  EXPECT_GT(profiler.report().attributed_s(), 0.0);
}

TEST(Determinism, FaultInjectedRunsAreSeedStable) {
  // Fault injection draws from its own forked rng streams, so a faulty run
  // must be exactly as reproducible as a clean one: same seed + same fault
  // config => identical event trace, fault tallies and abort counts.
  const auto& s = setup();
  auto opt = options(7);
  opt.faults.container_boot_failure_p = 0.15;
  opt.faults.container_straggler_p = 0.10;
  opt.faults.vm_boot_failure_p = 0.10;
  opt.faults.meter_drop_p = 0.10;
  opt.faults.meter_outlier_p = 0.05;
  const auto a = run_managed(s.foreground, DeploySystem::kAmoeba, s.cluster,
                             s.calibration, s.artifacts, opt);
  const auto b = run_managed(s.foreground, DeploySystem::kAmoeba, s.cluster,
                             s.calibration, s.artifacts, opt);
  ASSERT_GT(a.queries, 1000u);
  ASSERT_GT(a.fault_counters.total(), 0u) << "no faults actually injected";
  EXPECT_EQ(a.trace_hash, b.trace_hash)
      << "fault-injected event traces diverged under the same seed";
  EXPECT_EQ(stream_hash(a), stream_hash(b));
  EXPECT_EQ(a.fault_counters.total(), b.fault_counters.total());
  EXPECT_EQ(a.switch_aborts, b.switch_aborts);
  EXPECT_EQ(a.switch_retries, b.switch_retries);
  // And the faults change behaviour relative to the clean run.
  const auto clean = run_managed(s.foreground, DeploySystem::kAmoeba,
                                 s.cluster, s.calibration, s.artifacts,
                                 options(7));
  EXPECT_NE(a.trace_hash, clean.trace_hash)
      << "nonzero fault rates left the event trace untouched";
}

TEST(Determinism, ClusterRunIsSeedStable) {
  // Golden-trace regression at cluster scale: an N=4 cluster of managed
  // tenants (phase-spread clones of the profiled service) must execute
  // the identical event trace and land the identical per-service latency
  // table under the same seed, and diverge under a different one. The N
  // coupled control loops share one engine and two platforms, so any
  // unordered container or rng-stream collision in the cluster path shows
  // up here first.
  const auto& s = setup();
  std::vector<ClusterServiceSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(ClusterServiceSpec{
        workload::as_tenant(s.foreground, i, 0.4), s.artifacts,
        static_cast<double>(i) / 4.0});
  }
  ClusterRunOptions opt;
  opt.period_s = 240.0;
  opt.duration_days = 1.0;
  opt.warmup_s = 40.0;
  opt.seed = 42;
  const auto a = run_cluster(specs, s.cluster, s.calibration, opt);
  const auto b = run_cluster(specs, s.cluster, s.calibration, opt);

  EXPECT_EQ(a.trace_hash, b.trace_hash)
      << "same-seed cluster event traces diverged";
  ASSERT_EQ(a.services.size(), 4u);
  ASSERT_EQ(b.services.size(), 4u);
  for (std::size_t i = 0; i < a.services.size(); ++i) {
    const auto& sa = a.services[i];
    const auto& sb = b.services[i];
    EXPECT_EQ(sa.name, sb.name);
    ASSERT_GT(sa.queries, 100u) << sa.name;
    EXPECT_EQ(sa.queries, sb.queries) << sa.name;
    EXPECT_EQ(hash_double(sa.p95()), hash_double(sb.p95())) << sa.name;
    EXPECT_EQ(hash_double(sa.violation_fraction()),
              hash_double(sb.violation_fraction()))
        << sa.name;
    EXPECT_EQ(sa.switches.size(), sb.switches.size()) << sa.name;
  }
  EXPECT_EQ(hash_double(a.total_core_hours()),
            hash_double(b.total_core_hours()));

  ClusterRunOptions reseeded = opt;
  reseeded.seed = 43;
  const auto c = run_cluster(specs, s.cluster, s.calibration, reseeded);
  EXPECT_NE(a.trace_hash, c.trace_hash)
      << "different seeds produced identical cluster traces";
}

/// Golden DAG for the call-graph determinism checks: a diamond of four
/// phase-identical tenants of the profiled service, one of them pinned.
workload::CallGraph golden_dag(const Artifacts& s) {
  workload::CallGraph::Builder b;
  const int front = b.add_stage("front", workload::as_tenant(s.foreground, 0, 0.4));
  const int left = b.add_stage("left", workload::as_tenant(s.foreground, 1, 0.4));
  const int right = b.add_stage("right", workload::as_tenant(s.foreground, 2, 0.4),
                                workload::StagePin::kIaasOnly);
  const int back = b.add_stage("back", workload::as_tenant(s.foreground, 3, 0.4));
  b.add_edge(front, left);
  b.add_edge(front, right);
  b.add_edge(left, back);
  b.add_edge(right, back);
  return b.build();
}

CallGraphRunOptions callgraph_options(const workload::CallGraph& g,
                                      std::uint64_t seed) {
  CallGraphRunOptions opt;
  opt.period_s = 240.0;
  opt.duration_days = 1.0;
  opt.warmup_s = 40.0;
  double sum = 0.0;
  for (int k = 0; k < g.size(); ++k) sum += g.stage(k).profile.qos_target_s;
  opt.e2e_qos_target_s = 1.2 * sum;
  opt.seed = seed;
  opt.node_container_budget = 48;
  opt.meter_reserve_containers = 6;
  return opt;
}

TEST(Determinism, CallGraphRunIsSeedStable) {
  // Golden-trace regression for DAG propagation + budget renormalization:
  // the four per-stage control loops, the AND-join query router and the
  // decomposer tick all share one engine, so a same-seed double run must
  // be bit-identical and a reseeded run must diverge.
  const auto& s = setup();
  const workload::CallGraph g = golden_dag(s);
  const std::vector<core::ServiceArtifacts> artifacts(
      static_cast<std::size_t>(g.size()), s.artifacts);
  const auto opt = callgraph_options(g, 42);
  const auto a = run_callgraph(g, artifacts, s.cluster, s.calibration, opt);
  const auto b = run_callgraph(g, artifacts, s.cluster, s.calibration, opt);

  EXPECT_EQ(a.trace_hash, b.trace_hash)
      << "same-seed call-graph event traces diverged";
  ASSERT_GT(a.queries_completed, 100u);
  EXPECT_EQ(a.root_injected, b.root_injected);
  EXPECT_EQ(a.queries_completed, b.queries_completed);
  EXPECT_EQ(hash_double(a.e2e_p95()), hash_double(b.e2e_p95()));
  EXPECT_EQ(hash_double(a.total_core_hours()),
            hash_double(b.total_core_hours()));
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t k = 0; k < a.stages.size(); ++k) {
    EXPECT_EQ(a.stages[k].finished, b.stages[k].finished)
        << a.stages[k].name;
    EXPECT_EQ(hash_double(a.stages[k].final_budget_s),
              hash_double(b.stages[k].final_budget_s))
        << a.stages[k].name;
  }

  auto reseeded = opt;
  reseeded.seed = 43;
  const auto c =
      run_callgraph(g, artifacts, s.cluster, s.calibration, reseeded);
  EXPECT_NE(a.trace_hash, c.trace_hash)
      << "different seeds produced identical call-graph traces";
}

TEST(Determinism, ObservabilityDoesNotPerturbCallGraphRuns) {
  // Observer (spans incl. the e2e async track, metrics, audit) and
  // profiler are pure bookkeeping for call-graph runs too; the audit log
  // must additionally carry the canonical stage index of every decision.
  const auto& s = setup();
  const workload::CallGraph g = golden_dag(s);
  const std::vector<core::ServiceArtifacts> artifacts(
      static_cast<std::size_t>(g.size()), s.artifacts);
  const auto opt = callgraph_options(g, 42);
  const auto plain =
      run_callgraph(g, artifacts, s.cluster, s.calibration, opt);

  obs::Observer observer{obs::ObsConfig{}};
  obs::Profiler profiler;
  auto instrumented = opt;
  instrumented.observer = &observer;
  instrumented.profiler = &profiler;
  const auto observed =
      run_callgraph(g, artifacts, s.cluster, s.calibration, instrumented);

  EXPECT_EQ(plain.trace_hash, observed.trace_hash)
      << "instrumenting a call-graph run changed the executed event trace";
  EXPECT_EQ(plain.root_injected, observed.root_injected);
  EXPECT_EQ(hash_double(plain.e2e_p95()), hash_double(observed.e2e_p95()));

  ASSERT_FALSE(observer.audit().empty());
  bool stage_seen = false;
  for (const auto& rec : observer.audit().records()) {
    EXPECT_GE(rec.stage, 0) << rec.service;
    EXPECT_LT(rec.stage, g.size()) << rec.service;
    EXPECT_EQ(rec.service, g.service_name(rec.stage));
    stage_seen = true;
  }
  EXPECT_TRUE(stage_seen);
  EXPECT_FALSE(observer.tracer().events().empty());
  EXPECT_EQ(observer.tracer().open_spans(), 0u);
  EXPECT_GT(profiler.report().attributed_s(), 0.0);
}

TEST(Determinism, ControlLoopTraceDivergesUnderDifferentSeed) {
  const auto& s = setup();
  const auto a = run_managed(s.foreground, DeploySystem::kAmoeba, s.cluster,
                             s.calibration, s.artifacts, options(7));
  const auto c = run_managed(s.foreground, DeploySystem::kAmoeba, s.cluster,
                             s.calibration, s.artifacts, options(8));
  ASSERT_GT(c.queries, 1000u);
  EXPECT_NE(a.trace_hash, c.trace_hash)
      << "different seeds produced identical event traces";
  EXPECT_NE(stream_hash(a), stream_hash(c));
}

}  // namespace
}  // namespace amoeba::exp
