// End-to-end smoke of the evaluation pipeline: profiling -> run_managed
// under every deployment system, checking the paper's qualitative claims
// on a compressed scenario.
#include <gtest/gtest.h>

#include "exp/profiling.hpp"
#include "exp/scenario.hpp"

namespace amoeba::exp {
namespace {

// Shared, lazily-built profiling artifacts (profiling is the expensive
// part; build once for the whole suite).
struct SharedSetup {
  ClusterConfig cluster;
  core::MeterCalibration calibration;
  workload::FunctionProfile foreground;
  core::ServiceArtifacts artifacts;

  SharedSetup() : cluster(default_cluster()) {
    ProfilingConfig cfg;
    cfg.pressure_grid = {0.05, 0.45, 0.85};
    cfg.load_fractions = {0.1, 0.5, 1.0};
    cfg.cell_duration_s = 12.0;
    cfg.warmup_s = 3.0;
    cfg.threads = 1;
    calibration = profile_meters(cluster, cfg);
    foreground = workload::make_float();
    artifacts = profile_service(foreground, cluster, calibration, cfg);
  }
};

const SharedSetup& setup() {
  static SharedSetup s;
  return s;
}

ManagedRunOptions quick_options() {
  ManagedRunOptions opt;
  opt.period_s = 420.0;
  opt.duration_days = 1.0;
  opt.warmup_s = 40.0;
  opt.with_background = true;
  opt.background_peak_fraction = 0.25;
  opt.seed = 7;
  return opt;
}

TEST(EndToEnd, NamekoMeetsQos) {
  const auto& s = setup();
  const auto r = run_managed(s.foreground, DeploySystem::kNameko, s.cluster,
                             s.calibration, s.artifacts, quick_options());
  ASSERT_GT(r.queries, 5000u);
  EXPECT_LT(r.p95(), r.qos_target_s);
}

TEST(EndToEnd, OpenWhiskServesEverythingServerless) {
  const auto& s = setup();
  const auto r = run_managed(s.foreground, DeploySystem::kOpenWhisk,
                             s.cluster, s.calibration, s.artifacts,
                             quick_options());
  ASSERT_GT(r.queries, 5000u);
  // Pure serverless never rents a VM.
  EXPECT_TRUE(r.switches.empty());
}

TEST(EndToEnd, AmoebaMeetsQosAndSavesResources) {
  const auto& s = setup();
  const auto opts = quick_options();
  const auto amoeba = run_managed(s.foreground, DeploySystem::kAmoeba,
                                  s.cluster, s.calibration, s.artifacts,
                                  opts);
  const auto nameko = run_managed(s.foreground, DeploySystem::kNameko,
                                  s.cluster, s.calibration, s.artifacts,
                                  opts);
  ASSERT_GT(amoeba.queries, 5000u);
  // The headline claims (Fig. 10/11): QoS held, resources reduced.
  EXPECT_LT(amoeba.p95(), amoeba.qos_target_s);
  EXPECT_LT(amoeba.usage.cpu_core_seconds, nameko.usage.cpu_core_seconds);
  EXPECT_LT(amoeba.usage.memory_mb_seconds, nameko.usage.memory_mb_seconds);
  // It actually used the serverless platform at the trough.
  ASSERT_FALSE(amoeba.switches.empty());
  EXPECT_EQ(amoeba.switches.front().to, core::DeployMode::kServerless);
}

TEST(EndToEnd, SwitchEventsAlternateDirections) {
  const auto& s = setup();
  const auto r = run_managed(s.foreground, DeploySystem::kAmoeba, s.cluster,
                             s.calibration, s.artifacts, quick_options());
  for (std::size_t i = 1; i < r.switches.size(); ++i) {
    EXPECT_NE(r.switches[i].to, r.switches[i - 1].to)
        << "switch " << i << " repeats direction";
  }
}

TEST(EndToEnd, TimelineSamplingWorksInManagedRun) {
  const auto& s = setup();
  auto opt = quick_options();
  opt.timeline_period_s = 5.0;
  const auto r = run_managed(s.foreground, DeploySystem::kAmoeba, s.cluster,
                             s.calibration, s.artifacts, opt);
  EXPECT_GT(r.timeline.mode.size(), 50u);
  EXPECT_GT(r.timeline.load_qps.max_value(), 50.0);  // saw the rush
}

}  // namespace
}  // namespace amoeba::exp
