#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace amoeba::sim {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(10);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto k = rng.uniform_index(7);
    ASSERT_LT(k, 7u);
    counts[static_cast<std::size_t>(k)]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double lambda = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(2.0), 0.0);
}

TEST(Rng, ExponentialRequiresPositiveRate) {
  Rng rng(13);
  EXPECT_THROW((void)rng.exponential(0.0), ContractError);
  EXPECT_THROW((void)rng.exponential(-1.0), ContractError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsScales) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalMeanCvHitsTargetMoments) {
  Rng rng(16);
  const double mean = 0.25, cv = 0.4;
  const int n = 300000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal_mean_cv(mean, cv);
    EXPECT_GT(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double m = sum / n;
  const double var = sum2 / n - m * m;
  EXPECT_NEAR(m, mean, 0.01 * mean * 5);
  EXPECT_NEAR(std::sqrt(var) / m, cv, 0.03);
}

TEST(Rng, LognormalZeroCvIsDegenerate) {
  Rng rng(17);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(0.5, 0.0), 0.5);
}

TEST(Rng, ForkStreamsAreIndependentAndDeterministic) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1(), f1_again());
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1() == f2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(WeightedChoice, RespectsWeights) {
  Rng rng(21);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    counts[weighted_choice(rng, w)]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], 10000, 500);
  EXPECT_NEAR(counts[2], 30000, 700);
}

TEST(WeightedChoice, RejectsInvalidInput) {
  Rng rng(22);
  EXPECT_THROW((void)weighted_choice(rng, {}), ContractError);
  EXPECT_THROW((void)weighted_choice(rng, {0.0, 0.0}), ContractError);
  EXPECT_THROW((void)weighted_choice(rng, {-1.0, 2.0}), ContractError);
}

TEST(SplitMix, KnownSequenceAdvances) {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

}  // namespace
}  // namespace amoeba::sim
