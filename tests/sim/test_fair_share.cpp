#include "sim/fair_share.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amoeba::sim {
namespace {

TEST(FairShare, SingleStreamRunsAtItsCap) {
  Engine e;
  FairShareResource cpu(e, "cpu", 4.0);
  double done_at = -1.0;
  cpu.open(2.0, 1.0, [&] { done_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);  // 2 units at rate 1
}

TEST(FairShare, UncappedStreamUsesFullCapacity) {
  Engine e;
  FairShareResource disk(e, "disk", 10.0);
  double done_at = -1.0;
  disk.open(20.0, 0.0, [&] { done_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 2.0);  // 20 units at rate 10
}

TEST(FairShare, EqualStreamsShareEqually) {
  Engine e;
  FairShareResource disk(e, "disk", 10.0);
  std::vector<double> done(2, -1.0);
  disk.open(10.0, 0.0, [&] { done[0] = e.now(); });
  disk.open(10.0, 0.0, [&] { done[1] = e.now(); });
  e.run();
  // Both get rate 5 -> both finish at t = 2.
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
}

TEST(FairShare, CapLimitsAllocationWhenCapacityIsAmple) {
  Engine e;
  FairShareResource cpu(e, "cpu", 40.0);
  double done_at = -1.0;
  cpu.open(0.1, 1.0, [&] { done_at = e.now(); });  // container: 1-core cap
  e.run();
  EXPECT_DOUBLE_EQ(done_at, 0.1);
}

TEST(FairShare, MaxMinRedistributioBeyondCappedStreams) {
  Engine e;
  FairShareResource r(e, "r", 10.0);
  // One stream capped at 2, one uncapped: capped gets 2, other gets 8.
  double done_small = -1.0, done_big = -1.0;
  r.open(2.0, 2.0, [&] { done_small = e.now(); });   // 2 units at rate 2
  r.open(8.0, 0.0, [&] { done_big = e.now(); });     // 8 units at rate 8
  e.run();
  EXPECT_DOUBLE_EQ(done_small, 1.0);
  EXPECT_DOUBLE_EQ(done_big, 1.0);
}

TEST(FairShare, LateArrivalSlowsExistingStream) {
  Engine e;
  FairShareResource r(e, "r", 1.0);
  double done_a = -1.0, done_b = -1.0;
  r.open(1.0, 0.0, [&] { done_a = e.now(); });  // alone: would finish at 1.0
  e.schedule(0.5, [&] {
    r.open(1.0, 0.0, [&] { done_b = e.now(); });
  });
  e.run();
  // A does 0.5 work by t=0.5, then shares: remaining 0.5 at rate 0.5 -> 1.5.
  EXPECT_DOUBLE_EQ(done_a, 1.5);
  // B: 0.5 at rate 0.5 until A leaves (t=1.5, 0.5 work done), then rate 1:
  // remaining 0.5 -> finishes at 2.0.
  EXPECT_DOUBLE_EQ(done_b, 2.0);
}

TEST(FairShare, DepartureSpeedsUpRemainder) {
  Engine e;
  FairShareResource r(e, "r", 2.0);
  double done_long = -1.0;
  r.open(1.0, 0.0, [&] {});                        // finishes at t=1 (rate 1)
  r.open(3.0, 0.0, [&] { done_long = e.now(); });  // rate 1, then rate 2
  e.run();
  // Long stream: 1 unit by t=1, remaining 2 at rate 2 -> done at t=2.
  EXPECT_DOUBLE_EQ(done_long, 2.0);
}

TEST(FairShare, CloseReturnsRemainingWork) {
  Engine e;
  FairShareResource r(e, "r", 1.0);
  const StreamId id = r.open(10.0, 0.0, [] { FAIL() << "must not complete"; });
  e.schedule(4.0, [&] {
    const double remaining = r.close(id);
    EXPECT_DOUBLE_EQ(remaining, 6.0);
  });
  e.run();
  EXPECT_EQ(r.active(), 0);
}

TEST(FairShare, CloseUnknownStreamReturnsZero) {
  Engine e;
  FairShareResource r(e, "r", 1.0);
  EXPECT_DOUBLE_EQ(r.close(12345), 0.0);
}

TEST(FairShare, ZeroWorkCompletesViaEventNotReentrantly) {
  Engine e;
  FairShareResource r(e, "r", 1.0);
  bool done = false;
  r.open(0.0, 0.0, [&] { done = true; });
  EXPECT_FALSE(done);  // not re-entrant
  e.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(e.now(), 0.0);  // but at the same instant
}

TEST(FairShare, PressureSumsCappedDemands) {
  Engine e;
  FairShareResource cpu(e, "cpu", 4.0);
  cpu.open(100.0, 1.0, [] {});
  cpu.open(100.0, 1.0, [] {});
  EXPECT_DOUBLE_EQ(cpu.pressure(), 0.5);  // 2 cores demanded of 4
  cpu.open(100.0, 0.0, [] {});            // uncapped demands everything
  EXPECT_DOUBLE_EQ(cpu.pressure(), 1.5);
}

TEST(FairShare, UtilizationReflectsAllocation) {
  Engine e;
  FairShareResource cpu(e, "cpu", 4.0);
  EXPECT_DOUBLE_EQ(cpu.utilization(), 0.0);
  cpu.open(100.0, 1.0, [] {});
  EXPECT_DOUBLE_EQ(cpu.utilization(), 0.25);
}

TEST(FairShare, BusyIntegralAccumulates) {
  Engine e;
  FairShareResource cpu(e, "cpu", 2.0);
  cpu.open(2.0, 1.0, [] {});  // rate 1 for 2 seconds
  e.run();
  EXPECT_NEAR(cpu.busy_capacity_seconds(e.now()), 2.0, 1e-9);
  // Idle afterwards: integral frozen.
  e.schedule(10.0, [] {});
  e.run();
  EXPECT_NEAR(cpu.busy_capacity_seconds(e.now()), 2.0, 1e-9);
}

TEST(FairShare, RateOfReportsCurrentAllocation) {
  Engine e;
  FairShareResource r(e, "r", 3.0);
  const StreamId a = r.open(100.0, 1.0, [] {});
  EXPECT_DOUBLE_EQ(r.rate_of(a), 1.0);
  r.open(100.0, 0.0, [] {});
  EXPECT_DOUBLE_EQ(r.rate_of(a), 1.0);  // capped stream keeps its cap
  EXPECT_DOUBLE_EQ(r.rate_of(9999), 0.0);
}

TEST(FairShare, ManyStreamsConserveWork) {
  Engine e;
  FairShareResource r(e, "r", 8.0);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    r.open(1.0, 1.0, [&] { ++completed; });
  }
  e.run();
  EXPECT_EQ(completed, 100);
  // 100 units of work through an 8-unit/s resource with 1-unit/s caps:
  // work-conserving finish no earlier than 100/8 s.
  EXPECT_GE(e.now(), 100.0 / 8.0 - 1e-9);
  EXPECT_NEAR(r.busy_capacity_seconds(e.now()), 100.0, 1e-6);
}

TEST(FairShare, CompletionCallbackCanOpenNewStream) {
  Engine e;
  FairShareResource r(e, "r", 1.0);
  double second_done = -1.0;
  r.open(1.0, 0.0, [&] {
    r.open(1.0, 0.0, [&] { second_done = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(second_done, 2.0);
}

TEST(FairShare, InvalidConstructionThrows) {
  Engine e;
  EXPECT_THROW(FairShareResource(e, "bad", 0.0), ContractError);
  EXPECT_THROW(FairShareResource(e, "bad", -1.0), ContractError);
}

TEST(FairShare, NegativeWorkThrows) {
  Engine e;
  FairShareResource r(e, "r", 1.0);
  EXPECT_THROW(r.open(-1.0, 0.0, [] {}), ContractError);
}

TEST(FairShare, InterferenceSlowsStreamsGradually) {
  // With interference γ, a lone capped stream on an 8-unit resource runs
  // at 1 / (1 + γ·(1/8)); two streams at 1 / (1 + γ·(2/8)); etc.
  Engine e;
  FairShareResource cpu(e, "cpu", 8.0, /*interference=*/0.4);
  const StreamId a = cpu.open(100.0, 1.0, [] {});
  EXPECT_NEAR(cpu.rate_of(a), 1.0 / (1.0 + 0.4 * 0.125), 1e-12);
  cpu.open(100.0, 1.0, [] {});
  EXPECT_NEAR(cpu.rate_of(a), 1.0 / (1.0 + 0.4 * 0.25), 1e-12);
}

TEST(FairShare, InterferenceCompletionTimesConsistent) {
  Engine e;
  FairShareResource cpu(e, "cpu", 4.0, 0.5);
  double done = -1.0;
  cpu.open(1.0, 1.0, [&] { done = e.now(); });
  e.run();
  // Rate = 1/(1 + 0.5*0.25) = 8/9 -> completion at 9/8.
  EXPECT_NEAR(done, 1.125, 1e-9);
}

TEST(FairShare, ZeroInterferenceIsPureMaxMin) {
  Engine e;
  FairShareResource cpu(e, "cpu", 8.0, 0.0);
  const StreamId a = cpu.open(100.0, 1.0, [] {});
  EXPECT_DOUBLE_EQ(cpu.rate_of(a), 1.0);
}

TEST(FairShare, NegativeInterferenceRejected) {
  Engine e;
  EXPECT_THROW(FairShareResource(e, "cpu", 8.0, -0.1), ContractError);
}

TEST(FairShare, SimultaneousCompletionsAllFire) {
  Engine e;
  FairShareResource r(e, "r", 2.0);
  int completed = 0;
  r.open(1.0, 1.0, [&] { ++completed; });
  r.open(1.0, 1.0, [&] { ++completed; });
  e.run();
  EXPECT_EQ(completed, 2);
  EXPECT_DOUBLE_EQ(e.now(), 1.0);
}

}  // namespace
}  // namespace amoeba::sim
