// FaultInjector: deterministic draws, per-class isolation, config contracts.
#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"

namespace amoeba::sim {
namespace {

TEST(FaultInjector, ZeroConfigInjectsNothing) {
  FaultInjector fi(FaultConfig{}, Rng(7));
  for (int i = 0; i < 100; ++i) {
    const auto c = fi.next_container_boot();
    EXPECT_FALSE(c.fail);
    EXPECT_DOUBLE_EQ(c.delay_multiplier, 1.0);
    const auto v = fi.next_vm_boot();
    EXPECT_FALSE(v.fail);
    EXPECT_DOUBLE_EQ(v.delay_multiplier, 1.0);
    EXPECT_FALSE(fi.next_meter_drop());
    EXPECT_DOUBLE_EQ(fi.next_meter_multiplier(), 1.0);
  }
  EXPECT_EQ(fi.counters().total(), 0u);
  EXPECT_FALSE(FaultConfig{}.any());
}

TEST(FaultInjector, SameSeedSameFaultSchedule) {
  FaultConfig cfg;
  cfg.container_boot_failure_p = 0.3;
  cfg.container_straggler_p = 0.2;
  cfg.vm_boot_failure_p = 0.25;
  cfg.meter_drop_p = 0.15;
  cfg.meter_outlier_p = 0.1;
  FaultInjector a(cfg, Rng(42));
  FaultInjector b(cfg, Rng(42));
  for (int i = 0; i < 500; ++i) {
    const auto ca = a.next_container_boot();
    const auto cb = b.next_container_boot();
    EXPECT_EQ(ca.fail, cb.fail);
    EXPECT_DOUBLE_EQ(ca.delay_multiplier, cb.delay_multiplier);
    EXPECT_EQ(a.next_vm_boot().fail, b.next_vm_boot().fail);
    EXPECT_EQ(a.next_meter_drop(), b.next_meter_drop());
    EXPECT_DOUBLE_EQ(a.next_meter_multiplier(), b.next_meter_multiplier());
  }
  EXPECT_EQ(a.counters().total(), b.counters().total());
  EXPECT_GT(a.counters().total(), 0u);
}

TEST(FaultInjector, ClassStreamsAreIndependent) {
  // Interleaving meter draws between container draws must not change the
  // container fault schedule (each class has its own forked stream).
  FaultConfig cfg;
  cfg.container_boot_failure_p = 0.3;
  cfg.meter_drop_p = 0.5;
  FaultInjector pure(cfg, Rng(9));
  FaultInjector mixed(cfg, Rng(9));
  std::vector<bool> pure_fails;
  std::vector<bool> mixed_fails;
  for (int i = 0; i < 200; ++i) {
    pure_fails.push_back(pure.next_container_boot().fail);
    (void)mixed.next_meter_drop();  // extra draws on the meter stream
    mixed_fails.push_back(mixed.next_container_boot().fail);
  }
  EXPECT_EQ(pure_fails, mixed_fails);
}

TEST(FaultInjector, FailureRateRoughlyMatchesProbability) {
  FaultConfig cfg;
  cfg.container_boot_failure_p = 0.25;
  FaultInjector fi(cfg, Rng(1234));
  const int n = 4000;
  int fails = 0;
  for (int i = 0; i < n; ++i) {
    if (fi.next_container_boot().fail) ++fails;
  }
  const double rate = static_cast<double>(fails) / n;
  EXPECT_NEAR(rate, 0.25, 0.03);
  EXPECT_EQ(fi.counters().container_boot_failures,
            static_cast<std::uint64_t>(fails));
}

TEST(FaultInjector, FailFirstNOverridesProbability) {
  FaultConfig cfg;
  cfg.vm_boot_fail_first_n = 3;
  EXPECT_TRUE(cfg.any());
  FaultInjector fi(cfg, Rng(5));
  EXPECT_TRUE(fi.next_vm_boot().fail);
  EXPECT_TRUE(fi.next_vm_boot().fail);
  EXPECT_TRUE(fi.next_vm_boot().fail);
  EXPECT_FALSE(fi.next_vm_boot().fail);  // p = 0 after the override runs out
  EXPECT_EQ(fi.counters().vm_boot_failures, 3u);
}

TEST(FaultInjector, StragglerInflatesDelay) {
  FaultConfig cfg;
  cfg.container_straggler_p = 1.0;
  cfg.container_straggler_factor = 4.0;
  FaultInjector fi(cfg, Rng(2));
  const auto fault = fi.next_container_boot();
  EXPECT_FALSE(fault.fail);
  EXPECT_DOUBLE_EQ(fault.delay_multiplier, 4.0);
  EXPECT_EQ(fi.counters().container_stragglers, 1u);
}

TEST(FaultInjector, MeterOutlierMultiplier) {
  FaultConfig cfg;
  cfg.meter_outlier_p = 1.0;
  cfg.meter_outlier_factor = 8.0;
  FaultInjector fi(cfg, Rng(3));
  EXPECT_DOUBLE_EQ(fi.next_meter_multiplier(), 8.0);
  EXPECT_EQ(fi.counters().meter_outliers, 1u);
}

TEST(FaultInjector, ValidateRejectsBadConfig) {
  FaultConfig bad_p;
  bad_p.container_boot_failure_p = 1.5;
  EXPECT_THROW(bad_p.validate(), ContractError);

  FaultConfig neg_p;
  neg_p.meter_drop_p = -0.1;
  EXPECT_THROW(neg_p.validate(), ContractError);

  FaultConfig bad_factor;
  bad_factor.vm_straggler_factor = 0.5;  // < 1 would shrink the boot
  EXPECT_THROW(bad_factor.validate(), ContractError);

  FaultConfig bad_n;
  bad_n.container_boot_fail_first_n = -1;
  EXPECT_THROW(bad_n.validate(), ContractError);

  EXPECT_THROW(FaultInjector(bad_p, Rng(1)), ContractError);
}

}  // namespace
}  // namespace amoeba::sim
