#include "sim/counting_resource.hpp"

#include <gtest/gtest.h>

namespace amoeba::sim {
namespace {

TEST(CountingResource, AcquireAndRelease) {
  Engine e;
  CountingResource mem(e, "mem", 1024.0);
  EXPECT_TRUE(mem.try_acquire(256.0));
  EXPECT_DOUBLE_EQ(mem.in_use(), 256.0);
  EXPECT_DOUBLE_EQ(mem.available(), 768.0);
  mem.release(256.0);
  EXPECT_DOUBLE_EQ(mem.in_use(), 0.0);
}

TEST(CountingResource, RejectsOverAcquire) {
  Engine e;
  CountingResource mem(e, "mem", 512.0);
  EXPECT_TRUE(mem.try_acquire(512.0));
  EXPECT_FALSE(mem.try_acquire(1.0));
  EXPECT_DOUBLE_EQ(mem.in_use(), 512.0);  // failed acquire has no effect
}

TEST(CountingResource, ExactFitSucceeds) {
  Engine e;
  CountingResource mem(e, "mem", 512.0);
  EXPECT_TRUE(mem.try_acquire(256.0));
  EXPECT_TRUE(mem.try_acquire(256.0));
  EXPECT_FALSE(mem.try_acquire(0.001));
}

TEST(CountingResource, OverReleaseThrows) {
  Engine e;
  CountingResource mem(e, "mem", 512.0);
  EXPECT_TRUE(mem.try_acquire(100.0));
  EXPECT_THROW(mem.release(200.0), ContractError);
}

TEST(CountingResource, UtilizationFraction) {
  Engine e;
  CountingResource mem(e, "mem", 1000.0);
  EXPECT_TRUE(mem.try_acquire(250.0));
  EXPECT_DOUBLE_EQ(mem.utilization(), 0.25);
}

TEST(CountingResource, HeldIntegralTracksTime) {
  Engine e;
  CountingResource mem(e, "mem", 1000.0);
  EXPECT_TRUE(mem.try_acquire(100.0));
  e.schedule(5.0, [&] { mem.release(100.0); });
  e.schedule(10.0, [] {});
  e.run();
  EXPECT_NEAR(mem.held_unit_seconds(e.now()), 500.0, 1e-9);
}

TEST(CountingResource, IntegralWithMultipleSteps) {
  Engine e;
  CountingResource mem(e, "mem", 1000.0);
  EXPECT_TRUE(mem.try_acquire(100.0));
  e.schedule(2.0, [&] { EXPECT_TRUE(mem.try_acquire(300.0)); });
  e.schedule(4.0, [&] { mem.release(400.0); });
  e.run();
  // 100*2 + 400*2 = 1000.
  EXPECT_NEAR(mem.held_unit_seconds(4.0), 1000.0, 1e-9);
}

}  // namespace
}  // namespace amoeba::sim
