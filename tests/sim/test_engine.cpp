#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace amoeba::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, FifoTieBreakAtEqualTimestamps) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule(5.0, [&] {
    e.schedule_in(2.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, CancelReturnsFalseForUnknownOrFired) {
  Engine e;
  const EventId id = e.schedule(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
  EXPECT_FALSE(e.cancel(999999));
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  const EventId id = e.schedule(1.0, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  std::vector<double> fired;
  e.schedule(1.0, [&] { fired.push_back(1.0); });
  e.schedule(2.0, [&] { fired.push_back(2.0); });
  e.schedule(5.0, [&] { fired.push_back(5.0); });
  e.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilExecutesEventExactlyAtBoundary) {
  Engine e;
  bool fired = false;
  e.schedule(3.0, [&] { fired = true; });
  e.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, EventsScheduledDuringExecutionRun) {
  Engine e;
  int depth = 0;
  e.schedule(1.0, [&] {
    ++depth;
    e.schedule_in(1.0, [&] {
      ++depth;
      e.schedule_in(1.0, [&] { ++depth; });
    });
  });
  e.run();
  EXPECT_EQ(depth, 3);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule(2.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule(1.0, [] {}), ContractError);
}

TEST(Engine, ZeroDelayEventFiresAtCurrentTime) {
  Engine e;
  double t = -1.0;
  e.schedule(1.0, [&] { e.schedule_in(0.0, [&] { t = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(Engine, ExecutedCountsFiredEventsOnly) {
  Engine e;
  const EventId id = e.schedule(1.0, [] {});
  e.schedule(2.0, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.executed(), 1u);
}

TEST(Engine, StepReturnsFalseOnEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  double last = -1.0;
  std::uint64_t count = 0;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    e.schedule(t, [&, t] {
      EXPECT_GE(t, last);
      last = t;
      ++count;
    });
  }
  e.run();
  EXPECT_EQ(count, 10000u);
}

}  // namespace
}  // namespace amoeba::sim
