#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"

namespace amoeba::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, FifoTieBreakAtEqualTimestamps) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule(5.0, [&] {
    e.schedule_in(2.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, CancelReturnsFalseForUnknownOrFired) {
  Engine e;
  const EventId id = e.schedule(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
  EXPECT_FALSE(e.cancel(999999));
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  const EventId id = e.schedule(1.0, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  std::vector<double> fired;
  e.schedule(1.0, [&] { fired.push_back(1.0); });
  e.schedule(2.0, [&] { fired.push_back(2.0); });
  e.schedule(5.0, [&] { fired.push_back(5.0); });
  e.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilExecutesEventExactlyAtBoundary) {
  Engine e;
  bool fired = false;
  e.schedule(3.0, [&] { fired = true; });
  e.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, EventsScheduledDuringExecutionRun) {
  Engine e;
  int depth = 0;
  e.schedule(1.0, [&] {
    ++depth;
    e.schedule_in(1.0, [&] {
      ++depth;
      e.schedule_in(1.0, [&] { ++depth; });
    });
  });
  e.run();
  EXPECT_EQ(depth, 3);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule(2.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule(1.0, [] {}), ContractError);
}

TEST(Engine, ZeroDelayEventFiresAtCurrentTime) {
  Engine e;
  double t = -1.0;
  e.schedule(1.0, [&] { e.schedule_in(0.0, [&] { t = e.now(); }); });
  e.run();
  EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(Engine, ExecutedCountsFiredEventsOnly) {
  Engine e;
  const EventId id = e.schedule(1.0, [] {});
  e.schedule(2.0, [] {});
  e.cancel(id);
  e.run();
  EXPECT_EQ(e.executed(), 1u);
}

TEST(Engine, StepReturnsFalseOnEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
}

// ---------------------------------------------------------------------------
// Determinism anchors: trace hashes recorded against the pre-rewrite
// priority_queue engine. The slot-heap rewrite must keep the (timestamp,
// FIFO-seq) firing order bit-identical, so these constants must never change.
// Workload shapes mirror the probe used to record them.
// ---------------------------------------------------------------------------

std::uint64_t seed_stable_hash(std::uint64_t seed) {
  Engine engine;
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) engine.schedule_in(rng.exponential(3.0), [] {});
  engine.run();
  return engine.trace_hash();
}

struct MixedResult {
  std::uint64_t hash;
  std::uint64_t fired;
  std::size_t pending;
};

// Mixed schedule/cancel/fire workload with id-reuse pressure: keeps a window
// of pending handles, cancels a deterministic subset, interleaves partial
// run_until() drains with fresh scheduling so slots are recycled mid-run.
MixedResult mixed_workload(std::uint64_t seed, int n) {
  Engine e;
  Rng rng(seed);
  std::vector<EventId> window;
  std::uint64_t fired = 0;
  for (int i = 0; i < n; ++i) {
    const EventId id = e.schedule_in(rng.exponential(1.0), [&fired] { ++fired; });
    window.push_back(id);
    if (window.size() >= 8) {
      e.cancel(window[2]);
      e.cancel(window[5]);
      window.clear();
      e.run_until(e.now() + 0.5);
    }
  }
  e.run();
  return {e.trace_hash(), fired, e.pending()};
}

TEST(Engine, TraceHashMatchesPreRewriteRecording) {
  EXPECT_EQ(seed_stable_hash(11), 0xa60f136d9d249ec9ULL);
  EXPECT_EQ(seed_stable_hash(12), 0x6a869f17c495d9deULL);
}

TEST(Engine, MixedWorkloadHashAndCountsMatchPreRewriteRecording) {
  const MixedResult a = mixed_workload(42, 5000);
  EXPECT_EQ(a.hash, 0x6267b2c2a71f281eULL);
  EXPECT_EQ(a.fired, 3750u);  // 2 of every 8 cancelled
  EXPECT_EQ(a.pending, 0u);
  const MixedResult b = mixed_workload(43, 5000);
  EXPECT_EQ(b.hash, 0x8213c3d3c02ffbd3ULL);
}

TEST(Engine, CancelledHandleStaysDeadAfterSlotReuse) {
  Engine e;
  const EventId a = e.schedule(1.0, [] {});
  ASSERT_TRUE(e.cancel(a));
  // The freed slot is recycled with a bumped generation; the stale handle
  // must not alias the new event.
  bool fired = false;
  const EventId b = e.schedule(2.0, [&] { fired = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(e.cancel(a));  // stale generation
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(e.cancel(b));  // already fired
}

TEST(Engine, CancelFromInsideHandler) {
  Engine e;
  bool victim_fired = false;
  const EventId victim = e.schedule(2.0, [&] { victim_fired = true; });
  bool cancelled = false;
  e.schedule(1.0, [&] { cancelled = e.cancel(victim); });
  e.run();
  EXPECT_TRUE(cancelled);
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(e.executed(), 1u);
}

TEST(Engine, CancellingTheFiringEventFromItsOwnHandlerFails) {
  Engine e;
  EventId self{};
  bool self_cancel = true;
  self = e.schedule(1.0, [&] { self_cancel = e.cancel(self); });
  e.run();
  // The event left the heap before its handler ran; cancel must report
  // "not pending" rather than corrupt the slot.
  EXPECT_FALSE(self_cancel);
  EXPECT_EQ(e.executed(), 1u);
}

TEST(Engine, RunUntilFiresBoundaryEventsAndAdvancesClock) {
  Engine e;
  int at_boundary = 0;
  int after = 0;
  e.schedule(1.0, [&] { ++at_boundary; });
  e.schedule(1.0, [&] { ++at_boundary; });  // FIFO twin at the boundary
  e.schedule(1.0 + 1e-9, [&] { ++after; });
  e.run_until(1.0);
  EXPECT_EQ(at_boundary, 2);  // t <= horizon fires, in schedule order
  EXPECT_EQ(after, 0);
  EXPECT_DOUBLE_EQ(e.now(), 1.0);  // clock lands exactly on the horizon
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_FALSE(e.empty());
  e.run();
  EXPECT_EQ(after, 1);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, PendingAndEmptyTrackScheduleCancelFire) {
  Engine e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.pending(), 0u);
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(e.schedule(static_cast<double>(i), [] {}));
  EXPECT_EQ(e.pending(), 100u);
  for (std::size_t i = 0; i < 100; i += 2) EXPECT_TRUE(e.cancel(ids[i]));
  EXPECT_EQ(e.pending(), 50u);
  while (e.pending() > 25u) EXPECT_TRUE(e.step());
  EXPECT_EQ(e.pending(), 25u);
  e.run();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.executed(), 50u);
}

TEST(Engine, InterleavedChurnStressWithIdReuse) {
  // Long-running churn: every slot is recycled many times over, cancels hit
  // both live and stale handles, and handlers reschedule. Checks the engine's
  // own accounting rather than a pinned hash (the hash anchors above already
  // pin ordering).
  Engine e;
  Rng rng(99);
  std::vector<EventId> live;
  std::uint64_t fired = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::vector<EventId> stale;
  for (int round = 0; round < 400; ++round) {
    for (int i = 0; i < 16; ++i) {
      live.push_back(e.schedule_in(rng.exponential(2.0), [&] {
        ++fired;
        if (fired % 7 == 0) {
          e.schedule_in(0.25, [&] { ++fired; });
          ++scheduled;
        }
      }));
      ++scheduled;
    }
    // Cancel a deterministic third of this round's batch.
    for (std::size_t i = 0; i + 3 <= live.size(); i += 3) {
      if (e.cancel(live[i])) {
        ++cancelled;
        stale.push_back(live[i]);
      }
    }
    live.clear();
    // Stale handles must never cancel a recycled slot's new occupant.
    for (const EventId id : stale) EXPECT_FALSE(e.cancel(id));
    e.run_until(e.now() + rng.exponential(4.0));
  }
  e.run();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.executed(), fired);
  EXPECT_EQ(fired + cancelled, scheduled);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  double last = -1.0;
  std::uint64_t count = 0;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    e.schedule(t, [&, t] {
      EXPECT_GE(t, last);
      last = t;
      ++count;
    });
  }
  e.run();
  EXPECT_EQ(count, 10000u);
}

}  // namespace
}  // namespace amoeba::sim
