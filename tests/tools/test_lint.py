"""Fixture self-tests for tools/lint.py (the `lint_selftest` ctest entry).

Regression coverage for the two scanner bugs fixed alongside tools/audit:
  * block-comment state: `/*` opened mid-line (after code) used to leave
    the scanner thinking the next lines were code, so commented-out
    rand()/new was flagged — and code after a same-line `*/` was missed;
  * CMake stem matching: a .cpp stem mentioned anywhere in the
    CMakeLists.txt text (even a comment) used to count as "listed"; only
    a first-argument position in a command invocation counts now.
"""
import sys
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

import lint  # noqa: E402

FIXTURES = REPO / "tests" / "tools" / "fixtures"


def expected_lines(fixture: Path) -> list[str]:
    text = (fixture / "expected_findings.txt").read_text(encoding="utf-8")
    return [ln for ln in text.splitlines() if ln.strip()]


def assert_errors_match(test: unittest.TestCase, fixture: Path,
                        errors: list[str]) -> None:
    expected = expected_lines(fixture)
    test.assertEqual(
        len(errors), len(expected),
        f"finding count mismatch in {fixture.name}:\n  got:\n    " +
        "\n    ".join(errors or ["<none>"]))
    unmatched = list(errors)
    for want in expected:
        hit = next((e for e in unmatched if e.startswith(want)), None)
        test.assertIsNotNone(
            hit, f"no lint error starting with:\n  {want}\nin:\n  " +
            "\n  ".join(unmatched or ["<none>"]))
        unmatched.remove(hit)


class BlockCommentTest(unittest.TestCase):
    def test_midline_block_comment_state(self):
        fixture = FIXTURES / "lint_block_comment"
        assert_errors_match(self, fixture, lint.run(fixture))

    def test_scrub_line_transitions(self):
        code, in_block = lint.scrub_line("int a; /* open", False)
        self.assertTrue(in_block)
        self.assertIn("int a;", code)
        code, in_block = lint.scrub_line("still comment */ rand(", True)
        self.assertFalse(in_block)
        self.assertIn("rand(", code)
        self.assertNotIn("still comment", code)
        code, in_block = lint.scrub_line('s = "/* not a comment";', False)
        self.assertFalse(in_block)
        code, in_block = lint.scrub_line("mid /* c */ tail", False)
        self.assertFalse(in_block)
        self.assertIn("mid", code)
        self.assertIn("tail", code)
        self.assertNotIn("c", code.replace("mid", "").replace("tail", ""))

    def test_escaped_quote_in_string(self):
        code, in_block = lint.scrub_line(r'x = "a\"b"; rand(', False)
        self.assertFalse(in_block)
        self.assertEqual(code, 'x = ""; rand(')


class CmakeStemTest(unittest.TestCase):
    def test_comment_mention_is_not_a_listing(self):
        fixture = FIXTURES / "lint_cmake_stem"
        assert_errors_match(self, fixture, lint.run(fixture))


class WallclockEscapeTest(unittest.TestCase):
    def test_escape_requires_a_reason(self):
        fixture = FIXTURES / "lint_wallclock"
        assert_errors_match(self, fixture, lint.run(fixture))


class RepoCleanTest(unittest.TestCase):
    def test_repo_tree_is_lint_clean(self):
        errors = lint.run(REPO)
        self.assertEqual(errors, [], "\n".join(errors))


if __name__ == "__main__":
    unittest.main()
