// Annotation-presence fixture: a raw std::mutex (banned outside
// common/mutex.hpp), a wrapped mutex that guards nothing, and a condvar
// whose class holds no mutex at all.
#pragma once

#include <mutex>
#include <vector>

namespace fixture::serverless {

class LegacyQueue {
 public:
  void push(int v);

 private:
  std::mutex raw_mu_;
  std::vector<int> items_;
};

class WrappedQueue {
 public:
  void push(int v);

 private:
  common::Mutex mu_;
  std::vector<int> items_;
};

class Signal {
 public:
  void notify();

 private:
  common::CondVar cv_;
};

}  // namespace fixture::serverless
