// Back-edge under test: the base layer reaching up into sim.
#pragma once

#include "sim/engine.hpp"

namespace fixture::common {
inline int util() { return 1; }
}  // namespace fixture::common
