#pragma once

namespace fixture::common {
inline int base() { return 0; }
}  // namespace fixture::common
