// Legal edge: sim -> common is in the fixture DAG.
#pragma once

#include "common/base.hpp"

namespace fixture::sim {
inline int engine() { return 2; }
}  // namespace fixture::sim
