// Seeded violations for the wall-clock escape hatch: one bare read (a
// finding), one escape without a reason (its own finding), one escape
// with a reason (clean).
#pragma once

#include <chrono>

inline double bare_read() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

inline double escape_without_reason() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // lint: wallclock-ok
}

inline double escape_with_reason() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // lint: wallclock-ok fixture probe timing never reaches sim state
}
