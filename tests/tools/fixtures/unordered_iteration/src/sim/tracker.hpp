// Ordering-checker fixture: unordered members in a trace-affecting
// module; one escaped with a justification, one bare; iteration in the
// sibling .cpp (cross-TU) plus a pointer-keyed map.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture::sim {

struct Widget {
  int id = 0;
};

class Tracker {
 public:
  void note(const std::string& key);
  double checksum() const;

 private:
  std::unordered_map<std::string, double> weights_;
  // audit: ordered-ok lookup cache, never iterated; checksum() uses keys_
  std::unordered_set<std::string> seen_;
  std::map<Widget*, int> by_widget_;
};

}  // namespace fixture::sim
