#include "sim/tracker.hpp"

namespace fixture::sim {

void Tracker::note(const std::string& key) { weights_[key] += 1.0; }

double Tracker::checksum() const {
  double sum = 0.0;
  for (const auto& [key, w] : weights_) {
    sum = sum * 31.0 + w;  // order-sensitive fold over hash order
  }
  for (auto it = weights_.begin(); it != weights_.end(); ++it) {
    sum += it->second;
  }
  return sum;
}

}  // namespace fixture::sim
