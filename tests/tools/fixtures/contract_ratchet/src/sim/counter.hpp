// Contract-ratchet fixture: two public mutating methods, one covered by
// an AMOEBA_EXPECTS in its out-of-line definition, one bare. With the
// baseline frozen at min_ratio = 1.0 the measured 1/2 must fail.
#pragma once

namespace fixture::sim {

class Counter {
 public:
  void add(int delta);
  void reset();
  int value() const { return value_; }

 private:
  int value_ = 0;
};

}  // namespace fixture::sim
