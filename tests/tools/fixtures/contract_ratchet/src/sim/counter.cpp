#include "sim/counter.hpp"

namespace fixture::sim {

void Counter::add(int delta) {
  AMOEBA_EXPECTS(delta >= 0, "negative delta");
  value_ += delta;
}

void Counter::reset() { value_ = 0; }

}  // namespace fixture::sim
