#pragma once

namespace fixture::common {

inline int disabled() { /* dead code kept for reference:
  return rand();  // hash-seed jitter -- inert inside the block
*/
  return 0;
}

/* leading comment */ inline int hot() { return rand(); }

}  // namespace fixture::common
