"""Fixture self-tests for tools/audit (the `audit_selftest` ctest entry).

Each fixture under tests/tools/fixtures/ is a miniature source tree that
seeds exactly the violations its checker must catch; expected_findings.txt
holds one line per finding (a prefix of the rendered finding, so the
long remediation text stays out of the goldens). The tests assert the
finding count AND every expected prefix — a checker that goes blind or
noisy fails either way.
"""
import sys
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

from audit import annotations, contracts, layering, ordering  # noqa: E402
from audit import cxx  # noqa: E402
from audit.__main__ import main as audit_main  # noqa: E402

FIXTURES = REPO / "tests" / "tools" / "fixtures"


def expected_lines(fixture: Path) -> list[str]:
    text = (fixture / "expected_findings.txt").read_text(encoding="utf-8")
    return [ln for ln in text.splitlines() if ln.strip()]


def assert_findings_match(test: unittest.TestCase, fixture: Path,
                          findings) -> None:
    rendered = [f.render() for f in findings]
    expected = expected_lines(fixture)
    test.assertEqual(
        len(rendered), len(expected),
        f"finding count mismatch in {fixture.name}:\n  got:\n    " +
        "\n    ".join(rendered or ["<none>"]))
    unmatched = list(rendered)
    for want in expected:
        hit = next((r for r in unmatched if r.startswith(want)), None)
        test.assertIsNotNone(
            hit, f"no finding starting with:\n  {want}\nin:\n  " +
            "\n  ".join(unmatched or ["<none>"]))
        unmatched.remove(hit)


class LayeringFixtureTest(unittest.TestCase):
    def test_backedge_is_flagged(self):
        root = FIXTURES / "layering_backedge"
        findings = layering.check(
            root, root / "tools" / "audit" / "layers.toml", None)
        assert_findings_match(self, root, findings)

    def test_declared_cycle_is_rejected(self):
        cycle = layering.declared_cycle(
            {"a": {"b"}, "b": {"c"}, "c": {"a"}})
        self.assertIsNotNone(cycle)

    def test_repo_dag_is_acyclic(self):
        allowed = layering.load_layers(
            REPO / "tools" / "audit" / "layers.toml")
        self.assertIsNone(layering.declared_cycle(allowed))


class OrderingFixtureTest(unittest.TestCase):
    def test_unordered_iteration_is_flagged(self):
        root = FIXTURES / "unordered_iteration"
        assert_findings_match(self, root, ordering.check(root))

    def test_escape_requires_justification(self):
        lines = ["// audit: ordered-ok", "std::unordered_map<int,int> m_;"]
        self.assertFalse(cxx.escape_on_line(lines, 2, "ordered-ok"))
        lines[0] = "// audit: ordered-ok never iterated"
        self.assertTrue(cxx.escape_on_line(lines, 2, "ordered-ok"))


class ContractsFixtureTest(unittest.TestCase):
    def test_ratchet_regression_is_flagged(self):
        root = FIXTURES / "contract_ratchet"
        findings = contracts.check(
            root, root / "tools" / "audit" / "contracts_baseline.toml")
        assert_findings_match(self, root, findings)

    def test_fixture_measurement(self):
        covered, total, uncovered = contracts.measure(
            FIXTURES / "contract_ratchet")
        self.assertEqual((covered, total), (1, 2))
        self.assertEqual(len(uncovered), 1)
        self.assertIn("Counter::reset", uncovered[0])


class AnnotationsFixtureTest(unittest.TestCase):
    def test_missing_annotations_are_flagged(self):
        root = FIXTURES / "missing_annotation"
        assert_findings_match(self, root, annotations.check(root))


class CliTest(unittest.TestCase):
    def test_cli_exits_nonzero_on_fixture(self):
        rc = audit_main([
            "--root", str(FIXTURES / "unordered_iteration"),
            "--checker", "ordering"])
        self.assertEqual(rc, 1)

    def test_cli_report_is_written(self):
        import json
        import tempfile
        with tempfile.TemporaryDirectory() as td:
            report = Path(td) / "audit.json"
            rc = audit_main([
                "--root", str(FIXTURES / "missing_annotation"),
                "--checker", "annotations",
                "--report", str(report)])
            self.assertEqual(rc, 1)
            data = json.loads(report.read_text(encoding="utf-8"))
            self.assertEqual(data["checkers"]["annotations"], 3)
            self.assertEqual(len(data["findings"]), 3)


class ScannerTest(unittest.TestCase):
    def test_scrub_preserves_layout(self):
        text = 'int a; /* x\n y */ int b = "s;{";\n// tail\n'
        scrubbed = cxx.scrub(text)
        self.assertEqual(scrubbed.count("\n"), text.count("\n"))
        self.assertNotIn("x", scrubbed)
        self.assertNotIn("s;{", scrubbed)
        self.assertIn("int b", scrubbed)

    def test_find_classes_skips_enum_class(self):
        scrubbed = cxx.scrub(
            "enum class Color { kRed };\nstruct P { int x; };\n")
        names = [b.name for b in cxx.find_classes(scrubbed)]
        self.assertEqual(names, ["P"])


if __name__ == "__main__":
    unittest.main()
