#include "linalg/jacobi_eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace amoeba::linalg {
namespace {

TEST(Jacobi, DiagonalMatrixTrivial) {
  Matrix d = {{3.0, 0.0}, {0.0, 1.0}};
  const auto e = jacobi_eigen(d);
  EXPECT_DOUBLE_EQ(e.values[0], 3.0);
  EXPECT_DOUBLE_EQ(e.values[1], 1.0);
}

TEST(Jacobi, Known2x2) {
  // Eigenvalues of {{2,1},{1,2}} are 3 and 1.
  Matrix a = {{2.0, 1.0}, {1.0, 2.0}};
  const auto e = jacobi_eigen(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2).
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::abs(e.vectors(1, 0)), std::sqrt(0.5), 1e-10);
}

TEST(Jacobi, RejectsNonSymmetric) {
  Matrix a = {{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW((void)jacobi_eigen(a), ContractError);
  EXPECT_THROW((void)jacobi_eigen(Matrix(2, 3)), ContractError);
}

class JacobiRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JacobiRandom, ReconstructsMatrix) {
  const std::size_t n = GetParam();
  sim::Rng rng(100 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const auto e = jacobi_eigen(a);
  // Rebuild A = V diag(λ) Vᵀ.
  Matrix lambda(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) lambda(i, i) = e.values[i];
  const Matrix rebuilt = e.vectors * lambda * e.vectors.transposed();
  EXPECT_LT(Matrix::max_abs_diff(rebuilt, a), 1e-10);
}

TEST_P(JacobiRandom, EigenvectorsOrthonormal) {
  const std::size_t n = GetParam();
  sim::Rng rng(200 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const auto e = jacobi_eigen(a);
  const Matrix vtv = e.vectors.transposed() * e.vectors;
  EXPECT_LT(Matrix::max_abs_diff(vtv, Matrix::identity(n)), 1e-10);
}

TEST_P(JacobiRandom, ValuesDescending) {
  const std::size_t n = GetParam();
  sim::Rng rng(300 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const auto e = jacobi_eigen(a);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(e.values[i - 1], e.values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiRandom,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

TEST(Jacobi, PositiveSemidefiniteCovarianceStaysNonNegative) {
  // Rank-1 covariance: one positive eigenvalue, rest ~0.
  Matrix a(3, 3);
  const std::vector<double> v = {1.0, 2.0, 3.0};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v[i] * v[j];
  }
  const auto e = jacobi_eigen(a);
  EXPECT_NEAR(e.values[0], 14.0, 1e-10);
  EXPECT_NEAR(e.values[1], 0.0, 1e-10);
  EXPECT_NEAR(e.values[2], 0.0, 1e-10);
}

}  // namespace
}  // namespace amoeba::linalg
