#include "linalg/least_squares.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace amoeba::linalg {
namespace {

TEST(SolveSpd, Known2x2) {
  Matrix m = {{4.0, 1.0}, {1.0, 3.0}};
  const auto x = solve_spd(m, {1.0, 2.0});
  // Verify m x = rhs.
  EXPECT_NEAR(4.0 * x[0] + 1.0 * x[1], 1.0, 1e-12);
  EXPECT_NEAR(1.0 * x[0] + 3.0 * x[1], 2.0, 1e-12);
}

TEST(SolveSpd, RejectsIndefinite) {
  Matrix m = {{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_THROW((void)solve_spd(m, {1.0, 1.0}), ContractError);
}

TEST(SolveSpd, RejectsBadDimensions) {
  Matrix m(2, 3);
  EXPECT_THROW((void)solve_spd(m, {1.0, 2.0}), ContractError);
  Matrix sq(2, 2);
  EXPECT_THROW((void)solve_spd(sq, {1.0}), ContractError);
}

TEST(LeastSquares, ExactSystemRecovered) {
  // y = 2 x1 - 3 x2, no noise, square system.
  Matrix a = {{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const auto beta = solve_least_squares(a, {2.0, -3.0, -1.0});
  EXPECT_NEAR(beta[0], 2.0, 1e-10);
  EXPECT_NEAR(beta[1], -3.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedNoisyRecovery) {
  sim::Rng rng(17);
  const std::size_t n = 500;
  Matrix a(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);
    const double x2 = rng.uniform(-1.0, 1.0);
    a(i, 0) = x0;
    a(i, 1) = x1;
    a(i, 2) = x2;
    y[i] = 1.5 * x0 - 0.5 * x1 + 2.0 * x2 + rng.normal(0.0, 0.01);
  }
  const auto beta = solve_least_squares(a, y);
  EXPECT_NEAR(beta[0], 1.5, 0.01);
  EXPECT_NEAR(beta[1], -0.5, 0.01);
  EXPECT_NEAR(beta[2], 2.0, 0.01);
}

TEST(LeastSquares, RidgeShrinksCoefficients) {
  Matrix a = {{1.0}, {1.0}, {1.0}};
  const auto free = solve_least_squares(a, {2.0, 2.0, 2.0}, 0.0);
  const auto ridged = solve_least_squares(a, {2.0, 2.0, 2.0}, 10.0);
  EXPECT_NEAR(free[0], 2.0, 1e-12);
  EXPECT_LT(ridged[0], free[0]);
  EXPECT_GT(ridged[0], 0.0);
}

TEST(LeastSquares, RidgeRescuesRankDeficiency) {
  // Duplicate columns: AᵀA singular without damping.
  Matrix a = {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_THROW((void)solve_least_squares(a, {1.0, 2.0, 3.0}, 0.0),
               ContractError);
  const auto beta = solve_least_squares(a, {1.0, 2.0, 3.0}, 1e-6);
  // Symmetric solution: both coefficients near 0.5.
  EXPECT_NEAR(beta[0], 0.5, 1e-3);
  EXPECT_NEAR(beta[1], 0.5, 1e-3);
}

TEST(LeastSquares, DimensionMismatchThrows) {
  Matrix a(3, 2);
  EXPECT_THROW((void)solve_least_squares(a, {1.0, 2.0}), ContractError);
}

}  // namespace
}  // namespace amoeba::linalg
