#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace amoeba::linalg {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = -2.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ContractError);
}

TEST(Matrix, OutOfRangeAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), ContractError);
  EXPECT_THROW((void)m(0, 2), ContractError);
}

TEST(Matrix, IdentityMultiplication) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix i = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a * i, a), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(i * a, a), 0.0);
}

TEST(Matrix, ProductKnownValues) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ProductDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), ContractError);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(t.transposed(), a), 0.0);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{3.0, 5.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 7.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a * 3.0)(0, 1), 6.0);
}

TEST(Matrix, ApplyVector) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const auto y = a.apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, RowAndColVectors) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.row_vector(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(a.col_vector(0), (std::vector<double>{1.0, 3.0}));
}

TEST(Matrix, SymmetryCheck) {
  Matrix s = {{1.0, 2.0}, {2.0, 5.0}};
  EXPECT_TRUE(s.is_symmetric());
  Matrix ns = {{1.0, 2.0}, {2.1, 5.0}};
  EXPECT_FALSE(ns.is_symmetric());
  EXPECT_TRUE(ns.is_symmetric(0.2));
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a = {{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_THROW((void)dot({1.0}, {1.0, 2.0}), ContractError);
}

}  // namespace
}  // namespace amoeba::linalg
