#include "linalg/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace amoeba::linalg {
namespace {

Matrix correlated_samples(std::size_t n, sim::Rng& rng) {
  // x2 = 2 x1 + noise, x3 independent: effectively 2 latent dimensions.
  Matrix x(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.normal(0.0, 1.0);
    x(i, 0) = a;
    x(i, 1) = 2.0 * a + rng.normal(0.0, 0.05);
    x(i, 2) = rng.normal(0.0, 1.0);
  }
  return x;
}

TEST(Pca, CorrelatedFeaturesCollapseToFewComponents) {
  sim::Rng rng(31);
  const Matrix x = correlated_samples(2000, rng);
  const PcaModel m = fit_pca(x, 0.95);
  // Two latent factors explain essentially everything.
  EXPECT_LE(m.retained, 2u);
  EXPECT_GE(m.explained_variance(), 0.95);
}

TEST(Pca, EigenvaluesSumToDimensionForStandardizedData) {
  sim::Rng rng(32);
  const Matrix x = correlated_samples(2000, rng);
  const PcaModel m = fit_pca(x, 1.0);
  double sum = 0.0;
  for (double v : m.eigenvalues) sum += v;
  // Correlation matrix has trace d.
  EXPECT_NEAR(sum, 3.0, 1e-6);
}

TEST(Pca, TransformScoresAreDecorrelated) {
  sim::Rng rng(33);
  const Matrix x = correlated_samples(3000, rng);
  const PcaModel m = fit_pca(x, 1.0);
  // Accumulate score covariance.
  double s00 = 0, s01 = 0, s11 = 0, m0 = 0, m1 = 0;
  const auto n = x.rows();
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = m.transform(x.row_vector(i));
    m0 += s[0];
    m1 += s[1];
  }
  m0 /= static_cast<double>(n);
  m1 /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = m.transform(x.row_vector(i));
    s00 += (s[0] - m0) * (s[0] - m0);
    s01 += (s[0] - m0) * (s[1] - m1);
    s11 += (s[1] - m1) * (s[1] - m1);
  }
  // Pairwise uncorrelated (paper §VI-A): correlation ~ 0.
  const double corr = s01 / std::sqrt(s00 * s11);
  EXPECT_NEAR(corr, 0.0, 0.02);
}

TEST(Pca, ZeroVarianceFeatureHandled) {
  Matrix x(50, 2);
  sim::Rng rng(34);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = 7.0;  // constant
  }
  const PcaModel m = fit_pca(x, 0.95);
  EXPECT_GE(m.retained, 1u);
  // Transform of any point is finite.
  const auto s = m.transform({0.5, 7.0});
  for (double v : s) EXPECT_TRUE(std::isfinite(v));
}

TEST(Pca, RequiresTwoSamples) {
  Matrix x(1, 2);
  EXPECT_THROW((void)fit_pca(x), ContractError);
}

TEST(Pcr, RecoversLinearModelOnCorrelatedFeatures) {
  sim::Rng rng(35);
  const std::size_t n = 2000;
  Matrix x = correlated_samples(n, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 4.0 + 1.0 * x(i, 0) + 0.5 * x(i, 1) + 2.0 * x(i, 2) +
           rng.normal(0.0, 0.01);
  }
  const PcrModel m = fit_pcr(x, y, 0.999);
  // Prediction accuracy is what matters (correlated coefficients are not
  // identifiable individually).
  double max_err = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    const auto xi = x.row_vector(i);
    max_err = std::max(max_err, std::abs(m.predict(xi) - y[i]));
  }
  EXPECT_LT(max_err, 0.2);
}

TEST(Pcr, RawCoefficientsMatchPrediction) {
  sim::Rng rng(36);
  const Matrix x = correlated_samples(500, rng);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    y[i] = 1.0 + x(i, 0) - x(i, 2);
  }
  const PcrModel m = fit_pcr(x, y, 0.999);
  const auto beta = m.raw_coefficients();
  const double b0 = m.raw_intercept();
  for (std::size_t i = 0; i < 50; ++i) {
    const auto xi = x.row_vector(i);
    const double via_raw = b0 + dot(beta, xi);
    EXPECT_NEAR(via_raw, m.predict(xi), 1e-9);
  }
}

TEST(Pcr, InterceptOnlyData) {
  Matrix x(100, 2);
  std::vector<double> y(100, 5.0);
  sim::Rng rng(37);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
  }
  const PcrModel m = fit_pcr(x, y, 0.95, 1e-6);
  EXPECT_NEAR(m.predict({0.5, 0.5}), 5.0, 1e-6);
}

}  // namespace
}  // namespace amoeba::linalg
