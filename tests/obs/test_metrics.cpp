// Metrics registry semantics and the JSONL export/import round trip.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/exporters.hpp"
#include "obs/json.hpp"

namespace amoeba::obs {
namespace {

TEST(MetricKey, SortsLabelsByKey) {
  EXPECT_EQ(metric_key("m", {}), "m");
  EXPECT_EQ(metric_key("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
  EXPECT_EQ(metric_key("decisions", {{"service", "svc"}, {"decision", "stay"}}),
            "decisions{decision=stay,service=svc}");
}

TEST(MetricsRegistry, ReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("queries", {{"service", "a"}});
  c.inc();
  // Creating many more metrics must not relocate the first.
  for (int i = 0; i < 100; ++i) {
    reg.counter("queries", {{"service", "s" + std::to_string(i)}});
  }
  Counter& again = reg.counter("queries", {{"service", "a"}});
  EXPECT_EQ(&c, &again);
  c.inc(2.0);
  EXPECT_DOUBLE_EQ(again.value(), 3.0);
}

TEST(MetricsRegistry, HistogramTracksMoments) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("latency_s");
  h.observe(0.1);
  h.observe(0.2);
  h.observe(0.4);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.7);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 0.4);
  EXPECT_GT(h.quantile(0.5), 0.05);
  EXPECT_LT(h.quantile(0.5), 0.45);
}

TEST(MetricsRegistry, SnapshotFreezesValues) {
  MetricsRegistry reg;
  reg.counter("ticks").inc();
  reg.gauge("load").set(12.5);
  const MetricsSnapshot& s1 = reg.take_snapshot(10.0);
  EXPECT_DOUBLE_EQ(s1.time_s, 10.0);
  ASSERT_EQ(s1.counters.size(), 1u);
  EXPECT_DOUBLE_EQ(s1.counters[0].second, 1.0);

  reg.counter("ticks").inc();
  const MetricsSnapshot& s2 = reg.take_snapshot(20.0);
  EXPECT_DOUBLE_EQ(s2.counters[0].second, 2.0);
  // The earlier snapshot is frozen, not a live view.
  EXPECT_DOUBLE_EQ(reg.snapshots()[0].counters[0].second, 1.0);
  EXPECT_EQ(reg.snapshots().size(), 2u);
}

TEST(MetricsRegistry, EmptyHistogramSnapshotOmitsQuantiles) {
  MetricsRegistry reg;
  reg.histogram("latency_s");
  const MetricsSnapshot& s = reg.take_snapshot(0.0);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].second.count, 0u);
  EXPECT_FALSE(s.histograms[0].second.p50.has_value());
  EXPECT_FALSE(s.histograms[0].second.min.has_value());
}

// The registry holds a mutex (non-movable), so fixtures populate in place.
void populate_registry(MetricsRegistry& reg) {
  reg.counter("queries", {{"service", "svc"}}).inc(11972.0);
  reg.gauge("load_qps", {{"service", "svc"}}).set(4.5666666666666673);
  reg.gauge("tiny").set(1.25e-9);
  HistogramMetric& h = reg.histogram("latency_s", {{"service", "svc"}});
  h.observe(0.0758414);
  h.observe(0.230762);
  h.observe(0.353142);
  reg.take_snapshot(5.0);
  reg.counter("queries", {{"service", "svc"}}).inc();
  reg.take_snapshot(10.0);
}

TEST(MetricsJsonl, RoundTripsBitIdentically) {
  MetricsRegistry reg;
  populate_registry(reg);
  std::stringstream ss;
  write_metrics_jsonl(reg, ss);

  std::vector<MetricsSnapshot> parsed;
  ASSERT_TRUE(parse_metrics_jsonl(ss, parsed));
  ASSERT_EQ(parsed.size(), reg.snapshots().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const MetricsSnapshot& want = reg.snapshots()[i];
    const MetricsSnapshot& got = parsed[i];
    EXPECT_EQ(got.time_s, want.time_s);
    ASSERT_EQ(got.counters.size(), want.counters.size());
    for (std::size_t j = 0; j < want.counters.size(); ++j) {
      EXPECT_EQ(got.counters[j].first, want.counters[j].first);
      // json_number promises strtod-exact round trips.
      EXPECT_EQ(got.counters[j].second, want.counters[j].second);
    }
    ASSERT_EQ(got.gauges.size(), want.gauges.size());
    for (std::size_t j = 0; j < want.gauges.size(); ++j) {
      EXPECT_EQ(got.gauges[j].first, want.gauges[j].first);
      EXPECT_EQ(got.gauges[j].second, want.gauges[j].second);
    }
    ASSERT_EQ(got.histograms.size(), want.histograms.size());
    for (std::size_t j = 0; j < want.histograms.size(); ++j) {
      const HistogramSnapshot& hw = want.histograms[j].second;
      const HistogramSnapshot& hg = got.histograms[j].second;
      EXPECT_EQ(hg.count, hw.count);
      EXPECT_EQ(hg.sum, hw.sum);
      EXPECT_EQ(hg.min, hw.min);
      EXPECT_EQ(hg.max, hw.max);
      EXPECT_EQ(hg.p50, hw.p50);
      EXPECT_EQ(hg.p95, hw.p95);
      EXPECT_EQ(hg.p99, hw.p99);
    }
  }
}

TEST(MetricsJsonl, EveryLineIsValidJson) {
  MetricsRegistry reg;
  populate_registry(reg);
  std::stringstream ss;
  write_metrics_jsonl(reg, ss);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(ss, line)) {
    ++lines;
    auto doc = parse_json(line);
    ASSERT_TRUE(doc.has_value()) << "line " << lines << ": " << line;
    EXPECT_TRUE(doc->is_object());
    EXPECT_NE(doc->find("t"), nullptr);
  }
  EXPECT_EQ(lines, reg.snapshots().size());
}

TEST(MetricsJsonl, RejectsMalformedLineButKeepsPrefix) {
  MetricsRegistry reg;
  populate_registry(reg);
  std::stringstream ss;
  write_metrics_jsonl(reg, ss);
  ss.clear();
  ss.seekp(0, std::ios::end);
  ss << "{not json\n";

  std::vector<MetricsSnapshot> parsed;
  EXPECT_FALSE(parse_metrics_jsonl(ss, parsed));
  EXPECT_EQ(parsed.size(), reg.snapshots().size());
}

}  // namespace
}  // namespace amoeba::obs
