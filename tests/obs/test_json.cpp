// Direct tests for obs/json — previously covered only transitively
// through the exporters. The writer helpers must produce exactly what the
// parser reads back (the cluster summary and the JSONL metrics both rely
// on that), and the parser must reject every malformed document rather
// than guess.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "exp/cluster.hpp"
#include "obs/json.hpp"

namespace amoeba::obs {
namespace {

TEST(JsonEscape, EscapesControlQuotesAndBackslash) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  // Non-ASCII bytes pass through untouched (UTF-8 is legal in JSON).
  EXPECT_EQ(json_escape("\xc3\xa9"), "\xc3\xa9");
}

TEST(JsonEscape, RoundTripsThroughParser) {
  const std::string nasty = "he said \"1\\2\"\n\tdone";
  const auto doc = parse_json("\"" + json_escape(nasty) + "\"");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_string());
  EXPECT_EQ(doc->string, nasty);
}

TEST(JsonNumber, IntegersPrintWithoutExponent) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(9007199254740992.0), "9007199254740992");  // 2^53
}

TEST(JsonNumber, RoundTripsBitExactly) {
  for (double x : {0.1, 1.0 / 3.0, 2.5e-12, 6.02214076e23, -123.456,
                   1.7976931348623157e308}) {
    const std::string s = json_number(x);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), x) << s;
    const auto doc = parse_json(s);
    ASSERT_TRUE(doc.has_value()) << s;
    ASSERT_TRUE(doc->is_number()) << s;
    EXPECT_EQ(doc->number, x) << s;
  }
}

TEST(ParseJson, HandlesTheFullGrammar) {
  const auto doc = parse_json(
      R"({"s": "x", "n": -1.5e2, "b": true, "z": null,)"
      R"( "a": [1, {"k": false}, []]})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->at("s").string, "x");
  EXPECT_EQ(doc->at("n").number, -150.0);
  EXPECT_TRUE(doc->at("b").boolean);
  EXPECT_TRUE(doc->at("z").is_null());
  const JsonValue& a = doc->at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.array.size(), 3u);
  EXPECT_EQ(a.array[0].number, 1.0);
  EXPECT_FALSE(a.array[1].at("k").boolean);
  EXPECT_TRUE(a.array[2].array.empty());
}

TEST(ParseJson, PreservesObjectMemberOrder) {
  const auto doc = parse_json(R"({"zz": 1, "aa": 2, "mm": 3})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->object.size(), 3u);
  EXPECT_EQ(doc->object[0].first, "zz");
  EXPECT_EQ(doc->object[1].first, "aa");
  EXPECT_EQ(doc->object[2].first, "mm");
}

TEST(ParseJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("[1,]").has_value());
  EXPECT_FALSE(parse_json("{\"a\" 1}").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
  EXPECT_FALSE(parse_json("tru").has_value());
  EXPECT_FALSE(parse_json("1 2").has_value());  // trailing input
  EXPECT_FALSE(parse_json("{\"a\": 1} x").has_value());
}

TEST(ParseJson, FindDistinguishesAbsentFromNull) {
  const auto doc = parse_json(R"({"present": null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("present"), nullptr);
  EXPECT_TRUE(doc->find("present")->is_null());
  EXPECT_EQ(doc->find("absent"), nullptr);
}

TEST(ParseJson, ReadsClusterSummaryRows) {
  // The cluster runner's summary is written with these same helpers; its
  // per-service rows must survive a full write -> parse cycle.
  exp::ClusterRunResult r;
  r.duration_s = 600.0;
  r.trace_hash = 0xfeedULL;
  exp::ClusterServiceResult s;
  s.name = "cloud_stor#2";
  s.qos_target_s = 0.12;
  s.latencies.add(0.05);
  s.latencies.add(0.30);
  s.queries = 2;
  s.n_max_asked = 3;
  s.n_max_granted = 2;
  r.services = {s};

  const auto doc = parse_json(exp::cluster_summary_json(r));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("trace_hash").string, "0xfeed");
  const JsonValue& row = doc->at("services").array.at(0);
  EXPECT_EQ(row.at("name").string, "cloud_stor#2");
  EXPECT_EQ(row.at("qos_target_s").number, 0.12);
  EXPECT_EQ(row.at("violation_fraction").number, 0.5);
  EXPECT_EQ(row.at("n_max_granted").number, 2.0);
}

}  // namespace
}  // namespace amoeba::obs
