// Observer facade, audit JSONL export, summary table, and the shared CLI
// flag parsing used by examples and benches.
#include "obs/observer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/json.hpp"

namespace amoeba::obs {
namespace {

TEST(Observer, DefaultConstructedIsNullSink) {
  Observer obs;
  EXPECT_FALSE(obs.enabled());
  EXPECT_FALSE(obs.trace_on());
  EXPECT_FALSE(obs.metrics_on());
  EXPECT_FALSE(obs.audit_on());
}

TEST(Observer, ConfigTogglesComponentsIndividually) {
  ObsConfig cfg;
  cfg.trace = false;
  cfg.metrics = true;
  cfg.audit = false;
  Observer obs(cfg);
  EXPECT_TRUE(obs.enabled());
  EXPECT_FALSE(obs.trace_on());
  EXPECT_TRUE(obs.metrics_on());
  EXPECT_FALSE(obs.audit_on());
}

DecisionRecord sample_record() {
  DecisionRecord r;
  r.time_s = 42.0;
  r.service = "svc";
  r.platform = "serverless";
  r.decision = "stay";
  r.load_qps = 10.0;
  r.forecast_load_qps = 11.0;
  r.total_pressures = {0.3, 0.1, 0.05};
  r.external_pressures = {0.2, 0.08, 0.04};
  r.features = {0.25, 0.09, 0.045};
  r.weights = {{0.7, 0.2, 0.1}};
  r.mu = 12.0;
  r.predicted_service_s = 1.0 / 12.0;
  r.lambda_iterates = {18.0, 21.5, 22.0};
  r.lambda_max = 22.0;
  r.predicted_p95_s = 0.21;
  r.observed_p95_s = 0.19;
  r.qos_target_s = 0.4;
  r.n_containers = 3;
  r.prewarm_target = 2;
  r.votes_to_serverless = 0;
  r.votes_to_iaas = 1;
  return r;
}

TEST(AuditJsonl, EmitsOneValidObjectPerRecord) {
  AuditLog log;
  log.append(sample_record());
  DecisionRecord minimal;
  minimal.time_s = 44.0;
  minimal.service = "svc";
  minimal.platform = "serverless";
  minimal.decision = "transitioning";
  log.append(minimal);

  std::stringstream ss;
  write_audit_jsonl(log, ss);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(ss, line)) {
    ++lines;
    auto doc = parse_json(line);
    ASSERT_TRUE(doc.has_value()) << line;
    ASSERT_TRUE(doc->is_object());
    EXPECT_NE(doc->find("t"), nullptr);
    EXPECT_NE(doc->find("service"), nullptr);
    EXPECT_NE(doc->find("decision"), nullptr);
  }
  EXPECT_EQ(lines, log.size());
}

TEST(AuditJsonl, FullRecordRoundTripsKeyFields) {
  AuditLog log;
  log.append(sample_record());
  std::stringstream ss;
  write_audit_jsonl(log, ss);
  auto doc = parse_json(ss.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("t").number, 42.0);
  EXPECT_EQ(doc->at("service").string, "svc");
  EXPECT_EQ(doc->at("decision").string, "stay");
  EXPECT_EQ(doc->at("lambda_max").number, 22.0);
  EXPECT_EQ(doc->at("lambda_iterates").array.size(), 3u);
  EXPECT_EQ(doc->at("weights").array.size(), 3u);
  EXPECT_EQ(doc->at("prewarm_target").number, 2.0);
}

TEST(AuditJsonl, OptionalsAreOmittedWhenAbsent) {
  AuditLog log;
  DecisionRecord minimal;
  minimal.service = "svc";
  minimal.decision = "transitioning";
  log.append(minimal);
  std::stringstream ss;
  write_audit_jsonl(log, ss);
  auto doc = parse_json(ss.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("lambda_max"), nullptr);
  EXPECT_EQ(doc->find("weights"), nullptr);
  EXPECT_EQ(doc->find("predicted_p95_s"), nullptr);
}

TEST(Summary, RollsUpDecisionsMetricsAndTraceVolume) {
  Observer obs{ObsConfig{}};
  obs.audit().append(sample_record());
  obs.metrics().counter("queries", {{"service", "svc"}}).inc(5.0);
  obs.metrics().gauge("load_qps", {{"service", "svc"}}).set(10.0);
  obs.metrics().histogram("latency_s").observe(0.1);
  obs.metrics().take_snapshot(42.0);
  const auto track = obs.tracer().track("svc:svc/control");
  obs.tracer().instant(track, "decision", 42.0, "control");

  std::ostringstream os;
  write_summary(obs, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("svc / stay"), std::string::npos);
  EXPECT_NE(s.find("queries{service=svc}"), std::string::npos);
  EXPECT_NE(s.find("latency_s"), std::string::npos);
  EXPECT_NE(s.find("1 events on 1 tracks"), std::string::npos);
}

TEST(ExportFlags, ParsesTheSharedCli) {
  const char* argv_c[] = {"prog",          "--trace-out",  "t.json",
                          "--ignored",     "--metrics-out", "m.jsonl",
                          "--audit-out",   "a.jsonl",       "--summary-out",
                          "s.txt"};
  std::vector<char*> argv;
  for (const char* a : argv_c) argv.push_back(const_cast<char*>(a));
  const ExportPaths p =
      parse_export_flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(p.trace, "t.json");
  EXPECT_EQ(p.metrics, "m.jsonl");
  EXPECT_EQ(p.audit, "a.jsonl");
  EXPECT_EQ(p.summary, "s.txt");
  EXPECT_TRUE(p.any());
}

TEST(ExportFlags, EmptyWhenNoFlagsGiven) {
  const char* argv_c[] = {"prog", "positional"};
  std::vector<char*> argv;
  for (const char* a : argv_c) argv.push_back(const_cast<char*>(a));
  const ExportPaths p =
      parse_export_flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(p.any());
}

TEST(ExportFlags, WithSuffixInsertsBeforeExtension) {
  EXPECT_EQ(with_suffix("trace.json", "_dd"), "trace_dd.json");
  EXPECT_EQ(with_suffix("out/trace.json", "_dd"), "out/trace_dd.json");
  EXPECT_EQ(with_suffix("noext", "_dd"), "noext_dd");
  EXPECT_EQ(with_suffix("a.b/noext", "_dd"), "a.b/noext_dd");
  EXPECT_EQ(with_suffix("trace.json", ""), "trace.json");
}

}  // namespace
}  // namespace amoeba::obs
