// Chrome trace_event exporter: golden-file stability plus structural
// validity (valid JSON, monotone timestamps, balanced B/E per track).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/json.hpp"

namespace amoeba::obs {
namespace {

std::string golden_path() {
  return std::string(AMOEBA_TEST_DATA_DIR) + "/obs/data/chrome_trace.golden.json";
}

/// A small fully deterministic trace exercising every event kind.
Tracer sample_tracer() {
  Tracer t;
  const auto control = t.track("svc:web/control");
  const auto pool = t.track("svc:web/pool");
  t.counter(control, "load_qps", 0.5, 3.25);
  t.begin(control, "switch:to_serverless", 1.0, "switch",
          {TraceArg::of("load_qps", 12.5)});
  t.begin(control, "prewarm", 1.0, "switch", {TraceArg::of("needed", 3.0)});
  t.async_begin(pool, "container_boot", 7, 1.0, "pool");
  t.instant(control, "decision", 1.5, "control",
            {TraceArg::of("decision", std::string("stay"))});
  t.async_end(pool, "container_boot", 7, 2.0, "pool");
  t.end(control, "prewarm", 2.25, {TraceArg::of("idle", 3.0)});
  t.end(control, "switch:to_serverless", 2.5,
        {TraceArg::of("completed", 1.0)});
  return t;
}

TEST(ChromeTraceExport, MatchesGoldenFile) {
  Tracer t = sample_tracer();
  std::ostringstream got;
  write_chrome_trace(t, got);

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.is_open()) << "missing golden file: " << golden_path();
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got.str(), want.str())
      << "exporter output drifted from the golden file; if the change is "
         "intentional, regenerate tests/obs/data/chrome_trace.golden.json";
}

TEST(ChromeTraceExport, GoldenIsValidJson) {
  Tracer t = sample_tracer();
  std::ostringstream os;
  write_chrome_trace(t, os);
  auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 8 recorded events + 2 metadata pairs per track.
  EXPECT_EQ(events->array.size(), 8u + 2u * 2u);
}

struct ParsedEvents {
  std::vector<JsonValue> events;  ///< non-metadata, in file order
};

ParsedEvents parse_trace(const Tracer& t) {
  std::ostringstream os;
  write_chrome_trace(t, os);
  auto doc = parse_json(os.str());
  EXPECT_TRUE(doc.has_value());
  ParsedEvents out;
  for (const auto& ev : doc->at("traceEvents").array) {
    if (ev.at("ph").string == "M") continue;
    out.events.push_back(ev);
  }
  return out;
}

TEST(ChromeTraceExport, TimestampsAreMonotoneNonDecreasing) {
  ParsedEvents p = parse_trace(sample_tracer());
  ASSERT_FALSE(p.events.empty());
  double prev = p.events.front().at("ts").number;
  for (const auto& ev : p.events) {
    const double ts = ev.at("ts").number;
    EXPECT_GE(ts, prev);
    prev = ts;
  }
  // Timestamps are microseconds of simulation time.
  EXPECT_DOUBLE_EQ(p.events.front().at("ts").number, 0.5e6);
}

TEST(ChromeTraceExport, SyncSpansBalancePerTrack) {
  ParsedEvents p = parse_trace(sample_tracer());
  std::map<double, int> depth;  // tid -> open B count
  for (const auto& ev : p.events) {
    const std::string& ph = ev.at("ph").string;
    const double tid = ev.at("tid").number;
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      EXPECT_GT(depth[tid], 0) << "E without matching B on tid " << tid;
      --depth[tid];
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced span stack on tid " << tid;
  }
}

TEST(ChromeTraceExport, AsyncEventsCarryMatchingIds) {
  ParsedEvents p = parse_trace(sample_tracer());
  std::string begin_id, end_id;
  for (const auto& ev : p.events) {
    const std::string& ph = ev.at("ph").string;
    if (ph == "b") begin_id = ev.at("id").string;
    if (ph == "e") end_id = ev.at("id").string;
  }
  EXPECT_FALSE(begin_id.empty());
  EXPECT_EQ(begin_id, end_id);
}

TEST(Tracer, CapDropsNewSpansButAdmitsMatchingEnds) {
  Tracer t(/*max_events=*/2);
  const auto tr = t.track("x");
  t.begin(tr, "a", 0.0);
  t.begin(tr, "b", 1.0);  // fills the buffer
  t.instant(tr, "dropped", 2.0);
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.dropped(), 1u);
  // Ends of already-open spans are forced in so every B keeps its E.
  t.end(tr, "b", 3.0);
  t.end(tr, "a", 4.0);
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.open_spans(), 0u);
  // An unmatched E (nothing open) is dropped, not stored.
  t.end(tr, "phantom", 5.0);
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
}

TEST(Tracer, TracksAreInternedIdempotently) {
  Tracer t;
  EXPECT_EQ(t.track("a"), t.track("a"));
  EXPECT_NE(t.track("a"), t.track("b"));
  ASSERT_EQ(t.track_names().size(), 2u);
  EXPECT_EQ(t.track_names()[0], "a");
}

}  // namespace
}  // namespace amoeba::obs
