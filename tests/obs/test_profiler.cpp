// Unit tests for the self-profiler (obs/profiler.hpp): domain-name round
// trips, segment-accounting invariants under nested scopes, JSONL and
// Chrome-trace export, and per-thread accumulator merging when scopes run
// on kernels::ThreadPool workers (the TSAN leg runs the ThreadPool tests
// under -fsanitize=thread, so the attach/merge locking is race-checked).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>

#include "kernels/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"

namespace amoeba::obs {
namespace {

/// Keep a core busy long enough for the raw clock to advance; returns a
/// value so the loop cannot be optimized away.
std::uint64_t spin(std::uint64_t iters) {
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iters; ++i) acc = acc + i;
  return acc;
}

TEST(Profiler, DomainNamesRoundTrip) {
  for (std::size_t i = 0; i < kProfDomainCount; ++i) {
    const auto d = static_cast<ProfDomain>(i);
    EXPECT_EQ(prof_domain_index(to_string(d)), i) << to_string(d);
  }
  EXPECT_EQ(prof_domain_index("no_such_domain"), kProfDomainCount);
  EXPECT_EQ(prof_domain_index(""), kProfDomainCount);
}

TEST(Profiler, ScopesAreNoOpsWhenDetached) {
  // No profiler attached to this thread: scopes must be inert.
  AMOEBA_PROF_SCOPE(kFairShare);
  { AMOEBA_PROF_SCOPE(kStats); }
  Profiler prof;
  const auto r = prof.report();
  EXPECT_EQ(r.threads, 0u);
  EXPECT_DOUBLE_EQ(r.attributed_s(), 0.0);
}

TEST(Profiler, NestedScopesSeparateSelfFromTotal) {
  Profiler prof;
  const auto fs = static_cast<std::size_t>(ProfDomain::kFairShare);
  const auto st = static_cast<std::size_t>(ProfDomain::kStats);
  {
    ProfilerAttach attach(&prof);
    AMOEBA_PROF_SCOPE(kFairShare);
    spin(200000);
    {
      AMOEBA_PROF_SCOPE(kStats);
      spin(200000);
    }
    spin(200000);
  }
  const auto r = prof.report();
  ASSERT_EQ(r.threads, 1u);
  EXPECT_EQ(r.dropped_scopes, 0u);
  EXPECT_EQ(r.count[fs], 1u);
  EXPECT_EQ(r.count[st], 1u);
  // Segment accounting: the inner kStats span is excluded from kFairShare's
  // self time but included in its total (kFairShare stayed on the stack).
  EXPECT_GT(r.self_s[fs], 0.0);
  EXPECT_GT(r.self_s[st], 0.0);
  EXPECT_GE(r.total_s[fs], (r.self_s[fs] + r.self_s[st]) * 0.999);
  EXPECT_GE(r.total_s[st], r.self_s[st] * 0.999);
  // Self times never double-count, so their sum is within the session wall.
  EXPECT_LE(r.attributed_s(), r.wall_s * 1.5);
  // Bucket rows carry the same self time as the totals (single bucket 0).
  ASSERT_EQ(r.buckets.size(), 1u);
  EXPECT_EQ(r.buckets[0].index, 0u);
  for (std::size_t d = 0; d < kProfDomainCount; ++d) {
    EXPECT_NEAR(r.buckets[0].self_s[d], r.self_s[d], 1e-12);
  }
}

TEST(Profiler, SameDomainNestIsElided) {
  Profiler prof;
  const auto fs = static_cast<std::size_t>(ProfDomain::kFairShare);
  {
    ProfilerAttach attach(&prof);
    AMOEBA_PROF_SCOPE(kFairShare);
    {
      AMOEBA_PROF_SCOPE(kFairShare);  // same domain: no new frame
      spin(100000);
    }
  }
  const auto r = prof.report();
  EXPECT_EQ(r.count[fs], 1u) << "inner same-domain scope opened a frame";
  EXPECT_GE(r.total_s[fs], r.self_s[fs]);
}

TEST(Profiler, EngineDispatchAdvancesSimTimeBuckets) {
  Profiler::Options opt;
  opt.bucket_width_s = 5.0;
  Profiler prof(opt);
  {
    ProfilerAttach attach(&prof);
    prof.engine_run_begin();
    prof.engine_dispatch(1.0);  // bucket 0
    spin(100000);
    prof.engine_dispatch(12.0);  // bucket 2: flushes segment into bucket 0
    spin(100000);
    prof.engine_run_end();  // closes kEngine, charging bucket 2
  }
  const auto r = prof.report();
  const auto eng = static_cast<std::size_t>(ProfDomain::kEngine);
  EXPECT_EQ(r.count[eng], 1u);
  ASSERT_EQ(r.buckets.size(), 2u);
  EXPECT_EQ(r.buckets[0].index, 0u);
  EXPECT_EQ(r.buckets[1].index, 2u);
  EXPECT_DOUBLE_EQ(r.buckets[1].sim_t0_s, 10.0);
  EXPECT_GT(r.buckets[0].self_s[eng], 0.0);
  EXPECT_GT(r.buckets[1].self_s[eng], 0.0);
}

TEST(Profiler, JsonlRoundTripsThroughParseJson) {
  // Hand-built report with exactly representable values: json_number
  // guarantees shortest-round-trip output, so equality is exact.
  ProfileReport in;
  in.bucket_width_s = 5.0;
  in.wall_s = 1.25;
  in.threads = 3;
  in.dropped_scopes = 7;
  for (std::size_t d = 0; d < kProfDomainCount; ++d) {
    in.domains.push_back(to_string(static_cast<ProfDomain>(d)));
    in.self_s.push_back(0.125 * static_cast<double>(d));
    in.total_s.push_back(0.25 * static_cast<double>(d));
    in.count.push_back(d * 11);
  }
  ProfileReport::Bucket b;
  b.index = 4;
  b.sim_t0_s = 20.0;
  b.self_s.assign(kProfDomainCount, 0.0625);
  in.buckets.push_back(b);

  std::stringstream stream;
  write_profile_jsonl(in, stream);

  // Every line is a standalone obs::parse_json document.
  std::stringstream lines(stream.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    const auto doc = parse_json(line);
    ASSERT_TRUE(doc && doc->is_object()) << line;
    ++n;
  }
  EXPECT_EQ(n, 3u);  // meta + total + one bucket

  stream.seekg(0);
  ProfileReport out;
  ASSERT_TRUE(parse_profile_jsonl(stream, out));
  EXPECT_DOUBLE_EQ(out.bucket_width_s, in.bucket_width_s);
  EXPECT_DOUBLE_EQ(out.wall_s, in.wall_s);
  EXPECT_EQ(out.threads, in.threads);
  EXPECT_EQ(out.dropped_scopes, in.dropped_scopes);
  ASSERT_EQ(out.domains, in.domains);
  ASSERT_EQ(out.self_s.size(), in.self_s.size());
  for (std::size_t d = 0; d < kProfDomainCount; ++d) {
    EXPECT_DOUBLE_EQ(out.self_s[d], in.self_s[d]);
    EXPECT_DOUBLE_EQ(out.total_s[d], in.total_s[d]);
    EXPECT_EQ(out.count[d], in.count[d]);
  }
  ASSERT_EQ(out.buckets.size(), 1u);
  EXPECT_EQ(out.buckets[0].index, 4u);
  EXPECT_DOUBLE_EQ(out.buckets[0].sim_t0_s, 20.0);
  for (double v : out.buckets[0].self_s) EXPECT_DOUBLE_EQ(v, 0.0625);
}

TEST(Profiler, JsonlParserRejectsMalformedStreams) {
  ProfileReport out;
  {
    std::stringstream empty;  // no meta/total lines
    EXPECT_FALSE(parse_profile_jsonl(empty, out));
  }
  {
    std::stringstream bad("{\"type\":\"profile_meta\"\n");  // truncated JSON
    EXPECT_FALSE(parse_profile_jsonl(bad, out));
  }
  {
    std::stringstream unknown(R"({"type":"profile_unknown"})"
                              "\n");
    EXPECT_FALSE(parse_profile_jsonl(unknown, out));
  }
}

TEST(Profiler, ChromeTraceIsValidJson) {
  Profiler prof;
  {
    ProfilerAttach attach(&prof);
    AMOEBA_PROF_SCOPE(kMonitor);
    spin(100000);
  }
  const auto r = prof.report();
  std::stringstream out;
  write_profile_chrome_trace(r, out);
  const auto doc = parse_json(out.str());
  ASSERT_TRUE(doc && doc->is_array());
  ASSERT_FALSE(doc->array.empty());
  EXPECT_TRUE(doc->array[0].is_object());  // process_name metadata record
}

TEST(Profiler, ThreadPoolWorkersMergeIntoOneReport) {
  // Scopes recorded on pool workers (one accumulator per attach) must all
  // land in the merged report. Under TSAN this exercises the states_ list
  // mutation from concurrent attach_current_thread calls against the
  // coordinator's report() merge.
  constexpr int kTasks = 16;
  constexpr std::uint64_t kSpin = 50000;
  Profiler prof;
  std::atomic<int> ran{0};
  {
    kernels::ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.submit([&prof, &ran] {
        ProfilerAttach attach(&prof);
        {
          AMOEBA_PROF_SCOPE(kFairShare);
          spin(kSpin);
          {
            AMOEBA_PROF_SCOPE(kStats);
            spin(kSpin);
          }
        }
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(ran.load(), kTasks);
  const auto r = prof.report();
  const auto fs = static_cast<std::size_t>(ProfDomain::kFairShare);
  const auto st = static_cast<std::size_t>(ProfDomain::kStats);
  // One accumulator per task attach; every scope pair accounted exactly.
  EXPECT_EQ(r.threads, static_cast<std::uint32_t>(kTasks));
  EXPECT_EQ(r.count[fs], static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(r.count[st], static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(r.dropped_scopes, 0u);
  EXPECT_GT(r.self_s[fs], 0.0);
  EXPECT_GT(r.self_s[st], 0.0);
  EXPECT_GE(r.total_s[fs], r.self_s[fs] + r.self_s[st] * 0.99);
}

}  // namespace
}  // namespace amoeba::obs
