#include "serverless/platform.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_injector.hpp"

namespace amoeba::serverless {
namespace {

PlatformConfig small_config() {
  PlatformConfig cfg;
  cfg.cores = 8.0;
  cfg.pool_memory_mb = 2048.0;  // 8 containers at 256 MB
  cfg.disk_bps = 1.0e9;
  cfg.net_bps = 1.0e9;
  cfg.cold_start_mean_s = 1.0;
  cfg.cold_start_cv = 0.0;  // deterministic boots for exact assertions
  cfg.keep_alive_s = 30.0;
  return cfg;
}

workload::FunctionProfile cpu_fn(double cpu_s = 0.1) {
  workload::FunctionProfile p;
  p.name = "fn";
  p.exec = {.cpu_seconds = cpu_s, .io_bytes = 0.0, .net_bytes = 0.0};
  p.code_bytes = 1e6;           // 1 ms at 1 GB/s
  p.result_bytes = 1e6;         // 1 ms at 1 GB/s
  p.platform_overhead_s = 0.01;
  p.rpc_overhead_s = 0.002;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.0;               // deterministic for exact assertions
  p.qos_target_s = 0.5;
  p.peak_load_qps = 20.0;
  return p;
}

TEST(Platform, FirstQueryPaysColdStart) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(1));
  sp.register_function(cpu_fn());
  QueryRecord record;
  sp.submit("fn", [&](const QueryRecord& r) { record = r; });
  e.run();
  EXPECT_TRUE(record.cold);
  EXPECT_NEAR(record.breakdown.cold_start_s, 1.0, 1e-9);
  // overhead 0.01 + code 0.001 + cpu 0.1 + post 0.001 after the boot.
  EXPECT_NEAR(record.latency(), 1.0 + 0.112, 1e-9);
}

TEST(Platform, WarmQueryHasNoColdStart) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(2));
  sp.register_function(cpu_fn());
  sp.submit("fn", [](const QueryRecord&) {});
  e.run_until(5.0);  // first query done; container still within keep-alive
  QueryRecord record;
  sp.submit("fn", [&](const QueryRecord& r) { record = r; });
  e.run_until(10.0);
  EXPECT_FALSE(record.cold);
  EXPECT_DOUBLE_EQ(record.breakdown.cold_start_s, 0.0);
  EXPECT_NEAR(record.latency(), 0.112, 1e-9);
}

TEST(Platform, BreakdownComponentsMatchPhases) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(3));
  auto p = cpu_fn();
  p.exec.io_bytes = 2e6;   // 2 ms
  p.exec.net_bytes = 3e6;  // 3 ms
  sp.register_function(p);
  sp.submit("fn", [](const QueryRecord&) {});
  e.run_until(5.0);
  QueryRecord record;
  sp.submit("fn", [&](const QueryRecord& r) { record = r; });
  e.run_until(10.0);
  EXPECT_NEAR(record.breakdown.overhead_s, 0.01, 1e-12);
  EXPECT_NEAR(record.breakdown.code_load_s, 0.001, 1e-9);
  EXPECT_NEAR(record.breakdown.exec_s, 0.1 + 0.002 + 0.003, 1e-9);
  EXPECT_NEAR(record.breakdown.post_s, 0.001, 1e-9);
  EXPECT_NEAR(record.breakdown.total(), record.latency(), 1e-9);
}

TEST(Platform, PrewarmEliminatesColdStart) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(4));
  sp.register_function(cpu_fn());
  EXPECT_EQ(sp.prewarm("fn", 2), 2);
  e.run_until(2.0);
  EXPECT_EQ(sp.counts("fn").idle, 2);
  QueryRecord record;
  sp.submit("fn", [&](const QueryRecord& r) { record = r; });
  e.run_until(5.0);
  EXPECT_FALSE(record.cold);
  EXPECT_DOUBLE_EQ(record.breakdown.cold_start_s, 0.0);
  EXPECT_DOUBLE_EQ(record.breakdown.queue_s, 0.0);
}

TEST(Platform, PrewarmIsIdempotentOnTotalCount) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(5));
  sp.register_function(cpu_fn());
  EXPECT_EQ(sp.prewarm("fn", 3), 3);
  EXPECT_EQ(sp.prewarm("fn", 3), 0);  // already starting
  e.run_until(2.0);
  EXPECT_EQ(sp.prewarm("fn", 5), 2);
}

TEST(Platform, PrewarmBoundedByMemory) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(6));
  sp.register_function(cpu_fn());
  EXPECT_EQ(sp.prewarm("fn", 100), 8);  // pool fits 8 containers
}

TEST(Platform, QueriesQueueWhenAllContainersBusy) {
  sim::Engine e;
  auto cfg = small_config();
  cfg.pool_memory_mb = 256.0;  // exactly one container
  ServerlessPlatform sp(e, cfg, sim::Rng(7));
  sp.register_function(cpu_fn(0.1));
  std::vector<QueryRecord> records;
  for (int i = 0; i < 3; ++i) {
    sp.submit("fn", [&](const QueryRecord& r) { records.push_back(r); });
  }
  e.run();
  ASSERT_EQ(records.size(), 3u);
  // FIFO completion; later queries waited longer.
  EXPECT_LT(records[0].breakdown.queue_s + records[0].breakdown.cold_start_s,
            records[1].breakdown.queue_s + records[1].breakdown.cold_start_s);
  EXPECT_LT(records[1].breakdown.queue_s, records[2].breakdown.queue_s);
}

TEST(Platform, MaxContainersCapRespected) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(8));
  sp.register_function(cpu_fn(), /*max_containers=*/2);
  for (int i = 0; i < 10; ++i) {
    sp.submit("fn", [](const QueryRecord&) {});
  }
  e.run_until(0.5);  // during cold starts
  EXPECT_LE(sp.counts("fn").total(), 2);
  e.run();
  EXPECT_EQ(sp.stats("fn").completed, 10u);
}

TEST(Platform, EvictsForeignIdleContainerUnderMemoryPressure) {
  sim::Engine e;
  auto cfg = small_config();
  cfg.pool_memory_mb = 512.0;  // two containers
  ServerlessPlatform sp(e, cfg, sim::Rng(9));
  auto a = cpu_fn();
  a.name = "a";
  auto b = cpu_fn();
  b.name = "b";
  sp.register_function(a);
  sp.register_function(b);
  sp.prewarm("a", 2);
  e.run_until(2.0);
  EXPECT_EQ(sp.counts("a").idle, 2);
  // b needs a container: one of a's idle containers must be evicted.
  QueryRecord record;
  sp.submit("b", [&](const QueryRecord& r) { record = r; });
  e.run_until(5.0);
  EXPECT_TRUE(record.cold);
  EXPECT_EQ(sp.counts("a").idle, 1);
  EXPECT_EQ(sp.stats("b").completed, 1u);
}

TEST(Platform, WarmReuseKeepsOneContainerForSequentialLoad) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(10));
  sp.register_function(cpu_fn());
  int completed = 0;
  // Sequential queries spaced wider than the cold start + service time, so
  // after the first boot every arrival finds the warm container idle.
  // (Closer spacing WOULD cold-start extra containers: arrivals during a
  // boot bind to fresh containers, OpenWhisk-style.)
  for (int i = 0; i < 10; ++i) {
    e.schedule(2.0 + 1.5 * i, [&] {
      sp.submit("fn", [&](const QueryRecord&) { ++completed; });
    });
  }
  e.run();
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(sp.stats("fn").cold_hits, 1u);  // only the very first
}

TEST(Platform, ArrivalDuringBootBindsToItsOwnColdContainer) {
  // OpenWhisk semantics: an arrival with no warm container cold-starts its
  // OWN container and waits out that boot, even if another container will
  // free up sooner. Two near-simultaneous queries => two cold starts.
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(21));
  sp.register_function(cpu_fn());
  std::vector<QueryRecord> records;
  sp.submit("fn", [&](const QueryRecord& r) { records.push_back(r); });
  e.schedule(0.2, [&] {
    sp.submit("fn", [&](const QueryRecord& r) { records.push_back(r); });
  });
  e.run_until(5.0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].cold);
  EXPECT_TRUE(records[1].cold);
  EXPECT_EQ(sp.stats("fn").cold_hits, 2u);
  // The second query paid its own full boot (arrived at 0.2, boot 1 s).
  EXPECT_NEAR(records[1].breakdown.cold_start_s, 1.0, 1e-9);
}

TEST(Platform, QueueedQueryTakesWhicheverContainerFreesFirst) {
  // With the pool at its memory cap, an UNBOUND queued query is served by
  // the first container that frees (it caused no cold start).
  sim::Engine e;
  auto cfg = small_config();
  cfg.pool_memory_mb = 256.0;  // one container
  ServerlessPlatform sp(e, cfg, sim::Rng(22));
  sp.register_function(cpu_fn());
  std::vector<QueryRecord> records;
  for (int i = 0; i < 2; ++i) {
    sp.submit("fn", [&](const QueryRecord& r) { records.push_back(r); });
  }
  e.run_until(5.0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].cold);
  EXPECT_FALSE(records[1].cold);        // reused the single warm container
  EXPECT_GT(records[1].breakdown.queue_s, 1.0);  // waited behind q1
}

TEST(Platform, RetireDestroysIdleAndReclaimsAfterCompletion) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(11));
  sp.register_function(cpu_fn());
  sp.prewarm("fn", 3);
  e.run_until(2.0);
  sp.submit("fn", [](const QueryRecord&) {});
  e.run_until(2.05);  // one busy, two idle
  EXPECT_EQ(sp.counts("fn").busy, 1);
  sp.retire("fn");
  EXPECT_EQ(sp.counts("fn").idle, 0);  // idle destroyed immediately
  EXPECT_EQ(sp.counts("fn").busy, 1);  // busy one finishes first
  e.run();
  EXPECT_EQ(sp.counts("fn").total(), 0);
  EXPECT_EQ(sp.stats("fn").completed, 1u);
}

TEST(Platform, UnretireRestoresWarmBehaviour) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(12));
  sp.register_function(cpu_fn());
  sp.retire("fn");
  sp.unretire("fn");
  sp.submit("fn", [](const QueryRecord&) {});
  e.run_until(5.0);
  EXPECT_EQ(sp.counts("fn").idle, 1);  // kept warm again
}

TEST(Platform, CrashInjectionForcesRepeatColdStarts) {
  sim::Engine e;
  auto cfg = small_config();
  cfg.crash_after_completion_p = 1.0;
  ServerlessPlatform sp(e, cfg, sim::Rng(13));
  sp.register_function(cpu_fn());
  for (int i = 0; i < 5; ++i) {
    e.schedule(3.0 * i, [&] { sp.submit("fn", [](const QueryRecord&) {}); });
  }
  e.run();
  EXPECT_EQ(sp.stats("fn").cold_hits, 5u);  // every query pays a cold start
}

TEST(Platform, CpuStatsAccumulateWork) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(14));
  sp.register_function(cpu_fn(0.1));
  for (int i = 0; i < 4; ++i) {
    sp.submit("fn", [](const QueryRecord&) {});
  }
  e.run();
  EXPECT_NEAR(sp.cpu_core_seconds("fn"), 0.4, 1e-9);
}

TEST(Platform, UnknownFunctionThrows) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(15));
  EXPECT_THROW(sp.submit("ghost", [](const QueryRecord&) {}), ContractError);
  EXPECT_THROW((void)sp.prewarm("ghost", 1), ContractError);
  EXPECT_THROW((void)sp.stats("ghost"), ContractError);
}

TEST(Platform, DuplicateRegistrationThrows) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(16));
  sp.register_function(cpu_fn());
  EXPECT_THROW(sp.register_function(cpu_fn()), ContractError);
}

TEST(Platform, ConfigValidation) {
  sim::Engine e;
  auto cfg = small_config();
  cfg.cores = 0.0;
  EXPECT_THROW(ServerlessPlatform(e, cfg, sim::Rng(17)), ContractError);
  cfg = small_config();
  cfg.crash_after_completion_p = 1.5;
  EXPECT_THROW(ServerlessPlatform(e, cfg, sim::Rng(18)), ContractError);
}

TEST(Platform, BootFailureRescuesBoundQuery) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(19));
  sp.register_function(cpu_fn());
  sim::FaultConfig fc;
  fc.container_boot_fail_first_n = 1;  // first cold start fails, retry works
  sim::FaultInjector faults(fc, sim::Rng(3));
  sp.set_fault_injector(&faults);

  QueryRecord record;
  int done = 0;
  sp.submit("fn", [&](const QueryRecord& r) {
    record = r;
    ++done;
  });
  e.run_until(10.0);
  // The query bound to the failed container was re-queued, pumped into a
  // fresh cold container, and still completed — with two boot windows paid.
  EXPECT_EQ(done, 1);
  EXPECT_TRUE(record.cold);
  EXPECT_EQ(sp.stats("fn").boot_failures, 1u);
  EXPECT_EQ(sp.stats("fn").completed, 1u);
  EXPECT_GT(record.latency(), 2.0);  // two 1 s boots plus execution
}

TEST(Platform, ReleasePrewarmedDestroysIdleAndUnboundStarting) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(20));
  sp.register_function(cpu_fn());
  sp.prewarm("fn", 3);
  e.run_until(2.0);  // all three idle
  sp.prewarm("fn", 5);  // two more, still starting
  EXPECT_EQ(sp.counts("fn").idle, 3);
  EXPECT_EQ(sp.counts("fn").starting, 2);
  const int released = sp.release_prewarmed("fn");
  EXPECT_EQ(released, 5);
  EXPECT_EQ(sp.counts("fn").total(), 0);
  EXPECT_DOUBLE_EQ(sp.pool().memory_in_use_mb(), 0.0);
  e.run();  // pending boot events must be inert
  EXPECT_EQ(sp.counts("fn").total(), 0);
}

TEST(Platform, ReleasePrewarmedSparesContainersBoundToQueries) {
  sim::Engine e;
  ServerlessPlatform sp(e, small_config(), sim::Rng(21));
  sp.register_function(cpu_fn());
  int done = 0;
  // This query arrives on a cold pool: it binds to the container that cold
  // starts for it (OpenWhisk semantics).
  sp.submit("fn", [&](const QueryRecord&) { ++done; });
  e.run_until(0.5);  // mid-boot
  EXPECT_EQ(sp.counts("fn").starting, 1);
  const int released = sp.release_prewarmed("fn");
  EXPECT_EQ(released, 0);  // bound container spared
  e.run_until(10.0);
  EXPECT_EQ(done, 1);  // the query still completes
}

}  // namespace
}  // namespace amoeba::serverless
