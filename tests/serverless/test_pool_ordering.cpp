// Regression coverage for the unordered_map -> std::map conversion of the
// pool's per-function tables: every aggregate the pool reports (cluster
// summaries, admission headroom, accounting integrals) must be invariant
// under the order functions first appear. With hash-ordered tables these
// sums fold in hash/insertion order, and float-sum non-associativity then
// leaks that order into trace hashes.
#include "serverless/container_pool.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace amoeba::serverless {
namespace {

constexpr double kMem = 2048.0;
constexpr double kContainer = 128.0;

// Readout order is fixed alphabetically, independent of start order.
const std::vector<std::string> kFunctions = {"alpha", "beta", "gamma"};

struct PoolReadout {
  PoolCounts totals;
  double mem_in_use = 0.0;
  int headroom = 0;
  std::vector<PoolCounts> per_fn_counts;
  std::vector<double> per_fn_mem;
  std::vector<double> per_fn_integral;
  std::uint64_t evictions = 0;
};

PoolReadout run_schedule(const std::vector<std::string>& start_order) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  // Two containers per function, staggered boots; start order varies.
  for (const auto& fn : start_order) {
    (void)pool.start(fn, kContainer, 1.0, [](ContainerId) {});
    (void)pool.start(fn, kContainer, 2.0, [](ContainerId) {});
  }
  e.run_until(3.0);
  for (const auto& fn : start_order) {
    (void)pool.acquire_idle(fn);  // one busy per function
  }
  // (No eviction here: evict_lru_idle breaks idle-time ties by container
  // id, and ids follow start order — a legitimate schedule difference,
  // not an iteration-order leak.)
  e.run_until(10.0);

  PoolReadout out;
  out.totals = pool.total_counts();
  out.mem_in_use = pool.memory_in_use_mb();
  out.headroom = pool.headroom(kContainer);
  out.evictions = pool.evictions();
  for (const auto& fn : kFunctions) {
    out.per_fn_counts.push_back(pool.counts(fn));
    out.per_fn_mem.push_back(pool.memory_in_use_mb(fn));
    out.per_fn_integral.push_back(pool.memory_mb_seconds(fn, e.now()));
  }
  return out;
}

void expect_same(const PoolReadout& a, const PoolReadout& b) {
  EXPECT_EQ(a.totals.starting, b.totals.starting);
  EXPECT_EQ(a.totals.idle, b.totals.idle);
  EXPECT_EQ(a.totals.busy, b.totals.busy);
  EXPECT_DOUBLE_EQ(a.mem_in_use, b.mem_in_use);
  EXPECT_EQ(a.headroom, b.headroom);
  EXPECT_EQ(a.evictions, b.evictions);
  ASSERT_EQ(a.per_fn_counts.size(), b.per_fn_counts.size());
  for (std::size_t i = 0; i < a.per_fn_counts.size(); ++i) {
    EXPECT_EQ(a.per_fn_counts[i].idle, b.per_fn_counts[i].idle)
        << kFunctions[i];
    EXPECT_EQ(a.per_fn_counts[i].busy, b.per_fn_counts[i].busy)
        << kFunctions[i];
    // Bit-identical, not approximately equal: these integrals feed the
    // cluster summaries that the same-seed determinism suite hashes.
    EXPECT_DOUBLE_EQ(a.per_fn_mem[i], b.per_fn_mem[i]) << kFunctions[i];
    EXPECT_DOUBLE_EQ(a.per_fn_integral[i], b.per_fn_integral[i])
        << kFunctions[i];
  }
}

TEST(PoolOrdering, AggregatesInvariantUnderFunctionStartOrder) {
  const auto base = run_schedule({"alpha", "beta", "gamma"});
  expect_same(base, run_schedule({"gamma", "beta", "alpha"}));
  expect_same(base, run_schedule({"beta", "gamma", "alpha"}));
}

TEST(PoolOrdering, RepeatedRunsAreBitIdentical) {
  // Same schedule twice in one process: any hidden dependence on hash
  // seeds or allocation addresses would show up here.
  const auto first = run_schedule({"alpha", "beta", "gamma"});
  const auto second = run_schedule({"alpha", "beta", "gamma"});
  expect_same(first, second);
}

}  // namespace
}  // namespace amoeba::serverless
