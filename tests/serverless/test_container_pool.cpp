#include "serverless/container_pool.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "sim/fault_injector.hpp"

namespace amoeba::serverless {
namespace {

constexpr double kMem = 1024.0;      // pool: 4 containers at 256 MB
constexpr double kContainer = 256.0;

TEST(ContainerPool, StartReservesMemoryImmediately) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  const auto id = pool.start("f", kContainer, 1.0, [](ContainerId) {});
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(pool.memory_in_use_mb(), kContainer);
  EXPECT_EQ(pool.counts("f").starting, 1);
  EXPECT_EQ(pool.counts("f").idle, 0);
}

TEST(ContainerPool, BootCompletesToIdleAfterDelay) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  double ready_at = -1.0;
  (void)pool.start("f", kContainer, 1.5,
                   [&](ContainerId) { ready_at = e.now(); });
  e.run_until(2.0);
  EXPECT_DOUBLE_EQ(ready_at, 1.5);
  EXPECT_EQ(pool.counts("f").idle, 1);
  EXPECT_EQ(pool.counts("f").starting, 0);
}

TEST(ContainerPool, StartFailsWhenMemoryExhausted) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(pool.start("f", kContainer, 0.1, [](ContainerId) {})
                    .has_value());
  }
  EXPECT_FALSE(pool.start("f", kContainer, 0.1, [](ContainerId) {})
                   .has_value());
  EXPECT_EQ(pool.cold_starts(), 4u);
}

TEST(ContainerPool, KeepAliveExpiryReleasesMemory) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 10.0);
  (void)pool.start("f", kContainer, 1.0, [](ContainerId) {});
  e.run_until(5.0);
  EXPECT_EQ(pool.counts("f").idle, 1);
  e.run_until(12.0);  // idle since t=1, TTL 10 -> expires at t=11
  EXPECT_EQ(pool.counts("f").idle, 0);
  EXPECT_DOUBLE_EQ(pool.memory_in_use_mb(), 0.0);
}

TEST(ContainerPool, AcquireIdleCancelsExpiry) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 10.0);
  (void)pool.start("f", kContainer, 1.0, [](ContainerId) {});
  e.run_until(2.0);
  const auto id = pool.acquire_idle("f");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(pool.counts("f").busy, 1);
  e.run_until(60.0);  // busy container never expires
  EXPECT_EQ(pool.counts("f").busy, 1);
}

TEST(ContainerPool, AcquireIdleIsLifo) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  (void)pool.start("f", kContainer, 1.0, [](ContainerId) {});
  (void)pool.start("f", kContainer, 2.0, [](ContainerId) {});
  e.run_until(3.0);
  const auto id = pool.acquire_idle("f");
  ASSERT_TRUE(id.has_value());
  // The most recently idled container (the one that booted at t=2) is
  // reused first.
  EXPECT_DOUBLE_EQ(pool.get(*id).ready_at, 2.0);
}

TEST(ContainerPool, ReleaseToIdleRearmsExpiry) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 10.0);
  (void)pool.start("f", kContainer, 1.0, [](ContainerId) {});
  e.run_until(2.0);
  const auto id = pool.acquire_idle("f");
  ASSERT_TRUE(id.has_value());
  e.run_until(8.0);
  pool.release_to_idle(*id);
  e.run_until(17.0);  // would have expired at 11 from original timer
  EXPECT_EQ(pool.counts("f").idle, 1);
  e.run_until(18.5);  // new TTL: idle at 8 + 10 = 18
  EXPECT_EQ(pool.counts("f").idle, 0);
}

TEST(ContainerPool, EvictLruIdlePicksOldest) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  (void)pool.start("a", kContainer, 1.0, [](ContainerId) {});
  (void)pool.start("b", kContainer, 2.0, [](ContainerId) {});
  e.run_until(3.0);
  EXPECT_TRUE(pool.evict_lru_idle());
  EXPECT_EQ(pool.counts("a").idle, 0);  // idle since 1.0: evicted
  EXPECT_EQ(pool.counts("b").idle, 1);
  EXPECT_EQ(pool.evictions(), 1u);
}

TEST(ContainerPool, EvictRespectsExclusion) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  (void)pool.start("a", kContainer, 1.0, [](ContainerId) {});
  e.run_until(2.0);
  EXPECT_FALSE(pool.evict_lru_idle("a"));
  EXPECT_TRUE(pool.evict_lru_idle("other"));
}

TEST(ContainerPool, EvictIgnoresBusyContainers) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  (void)pool.start("a", kContainer, 1.0, [](ContainerId) {});
  e.run_until(2.0);
  (void)pool.acquire_idle("a");
  EXPECT_FALSE(pool.evict_lru_idle());
}

TEST(ContainerPool, DestroyIdleRemovesAllIdleOfFunction) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  (void)pool.start("a", kContainer, 1.0, [](ContainerId) {});
  (void)pool.start("a", kContainer, 1.0, [](ContainerId) {});
  (void)pool.start("b", kContainer, 1.0, [](ContainerId) {});
  e.run_until(2.0);
  EXPECT_EQ(pool.destroy_idle("a"), 2);
  EXPECT_EQ(pool.counts("a").idle, 0);
  EXPECT_EQ(pool.counts("b").idle, 1);
}

TEST(ContainerPool, DestroyWhileStartingDropsReadyCallback) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  bool ready = false;
  const auto id = pool.start("f", kContainer, 5.0,
                             [&](ContainerId) { ready = true; });
  ASSERT_TRUE(id.has_value());
  e.run_until(1.0);
  pool.destroy(*id);
  e.run_until(10.0);
  EXPECT_FALSE(ready);
  EXPECT_DOUBLE_EQ(pool.memory_in_use_mb(), 0.0);
}

TEST(ContainerPool, HeadroomCountsWholeContainers) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  EXPECT_EQ(pool.headroom(kContainer), 4);
  (void)pool.start("f", kContainer, 1.0, [](ContainerId) {});
  EXPECT_EQ(pool.headroom(kContainer), 3);
  EXPECT_EQ(pool.headroom(300.0), 2);
}

TEST(ContainerPool, MemoryIntegralPerFunction) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  const auto id = pool.start("f", kContainer, 0.0, [](ContainerId) {});
  ASSERT_TRUE(id.has_value());
  e.run_until(10.0);
  pool.destroy(*id);
  e.run_until(20.0);
  EXPECT_NEAR(pool.memory_mb_seconds("f", e.now()), kContainer * 10.0, 1e-6);
  EXPECT_DOUBLE_EQ(pool.memory_mb_seconds("unknown", e.now()), 0.0);
}

TEST(ContainerPool, TotalCountsAggregate) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  (void)pool.start("a", kContainer, 1.0, [](ContainerId) {});
  (void)pool.start("b", kContainer, 5.0, [](ContainerId) {});
  e.run_until(2.0);
  const auto t = pool.total_counts();
  EXPECT_EQ(t.idle, 1);
  EXPECT_EQ(t.starting, 1);
  EXPECT_EQ(t.total(), 2);
}

TEST(ContainerPool, MarkBusyRequiresIdle) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  const auto id = pool.start("f", kContainer, 5.0, [](ContainerId) {});
  ASSERT_TRUE(id.has_value());
  EXPECT_THROW(pool.mark_busy(*id), ContractError);  // still starting
}

TEST(ContainerPool, InjectedBootFailureDestroysAndNotifies) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  sim::FaultConfig fc;
  fc.container_boot_fail_first_n = 1;
  sim::FaultInjector faults(fc, sim::Rng(1));
  pool.set_fault_injector(&faults);

  bool ready = false;
  std::optional<ContainerId> failed_id;
  const auto id = pool.start(
      "f", kContainer, 1.0, [&](ContainerId) { ready = true; },
      [&](ContainerId cid) { failed_id = cid; });
  ASSERT_TRUE(id.has_value());
  // The doomed boot holds its memory reservation for the full boot window.
  EXPECT_DOUBLE_EQ(pool.memory_in_use_mb(), kContainer);
  e.run_until(2.0);
  EXPECT_FALSE(ready);
  ASSERT_TRUE(failed_id.has_value());
  EXPECT_EQ(*failed_id, *id);
  EXPECT_EQ(pool.counts("f").total(), 0);
  EXPECT_DOUBLE_EQ(pool.memory_in_use_mb(), 0.0);  // fully released
  EXPECT_EQ(pool.boot_failures(), 1u);
}

TEST(ContainerPool, InjectedStragglerInflatesBootTime) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  sim::FaultConfig fc;
  fc.container_straggler_p = 1.0;
  fc.container_straggler_factor = 4.0;
  sim::FaultInjector faults(fc, sim::Rng(2));
  pool.set_fault_injector(&faults);

  double ready_at = -1.0;
  (void)pool.start("f", kContainer, 1.0,
                   [&](ContainerId) { ready_at = e.now(); });
  e.run_until(10.0);
  EXPECT_DOUBLE_EQ(ready_at, 4.0);  // 1 s boot stretched 4x
  EXPECT_EQ(pool.boot_failures(), 0u);
}

TEST(ContainerPool, StartingIdsListsBootingContainers) {
  sim::Engine e;
  ContainerPool pool(e, kMem, 60.0);
  const auto a = pool.start("f", kContainer, 1.0, [](ContainerId) {});
  const auto b = pool.start("f", kContainer, 2.0, [](ContainerId) {});
  (void)pool.start("g", kContainer, 2.0, [](ContainerId) {});
  const auto ids = pool.starting_ids("f");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], *a);  // ascending container ids
  EXPECT_EQ(ids[1], *b);
  e.run_until(1.5);  // a is now idle
  EXPECT_EQ(pool.starting_ids("f").size(), 1u);
}

}  // namespace
}  // namespace amoeba::serverless
