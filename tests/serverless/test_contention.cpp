// Contention-physics validation: the cross-function interference the whole
// paper rests on must emerge from the FairShare resources (paper §II-D).
#include <gtest/gtest.h>

#include "serverless/platform.hpp"
#include "workload/functionbench.hpp"
#include "workload/load_generator.hpp"

namespace amoeba::serverless {
namespace {

PlatformConfig node_config() {
  PlatformConfig cfg;
  cfg.cores = 8.0;
  cfg.pool_memory_mb = 16384.0;
  cfg.disk_bps = 1.0e9;
  cfg.net_bps = 1.0e9;
  cfg.cold_start_mean_s = 0.5;
  cfg.cold_start_cv = 0.0;
  cfg.keep_alive_s = 120.0;
  return cfg;
}

workload::FunctionProfile subject_cpu() {
  workload::FunctionProfile p;
  p.name = "subject";
  p.exec = {.cpu_seconds = 0.05, .io_bytes = 0.0, .net_bytes = 0.0};
  p.code_bytes = 0.0;
  p.result_bytes = 0.0;
  p.platform_overhead_s = 0.0;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.0;
  p.qos_target_s = 1.0;
  p.peak_load_qps = 20.0;
  return p;
}

/// Mean service latency of `subject` at 5 QPS while `antagonist` runs at
/// `antagonist_qps` (0 = solo).
double subject_latency_with(const workload::FunctionProfile& antagonist,
                            double antagonist_qps,
                            const workload::FunctionProfile& subject) {
  sim::Engine e;
  ServerlessPlatform sp(e, node_config(), sim::Rng(99));
  sp.register_function(subject);
  double sum = 0.0;
  std::uint64_t n = 0;
  workload::ConstantLoadGenerator subject_gen(
      e, sim::Rng(1), 5.0, [&] {
        sp.submit(subject.name, [&](const QueryRecord& r) {
          if (r.arrival < 5.0) return;  // warmup
          sum += r.breakdown.total() - r.breakdown.queue_s -
                 r.breakdown.cold_start_s;
          ++n;
        });
      });
  std::unique_ptr<workload::ConstantLoadGenerator> antagonist_gen;
  if (antagonist_qps > 0.0) {
    sp.register_function(antagonist);
    antagonist_gen = std::make_unique<workload::ConstantLoadGenerator>(
        e, sim::Rng(2), antagonist_qps, [&] {
          sp.submit(antagonist.name, [](const QueryRecord&) {});
        });
    antagonist_gen->start();
  }
  subject_gen.start();
  e.run_until(40.0);
  subject_gen.stop();
  if (antagonist_gen) antagonist_gen->stop();
  e.run();
  EXPECT_GT(n, 0u);
  return sum / static_cast<double>(n);
}

TEST(Contention, CpuAntagonistSlowsCpuBoundSubject) {
  const auto subject = subject_cpu();
  const auto antagonist = workload::make_stressor(workload::StressKind::kCpu);
  const double solo = subject_latency_with(antagonist, 0.0, subject);
  // 76 QPS × 0.1 core-s = 7.6 of 8 cores demanded.
  const double contended = subject_latency_with(antagonist, 76.0, subject);
  EXPECT_GT(contended, solo * 1.5)
      << "solo=" << solo << " contended=" << contended;
}

TEST(Contention, IoAntagonistDoesNotSlowCpuBoundSubject) {
  // The paper's core insight (§II-D): a CPU-bound service is insensitive
  // to IO contention, so the same "low load" can be safe or unsafe
  // depending on WHICH resource is contended.
  const auto subject = subject_cpu();
  const auto antagonist =
      workload::make_stressor(workload::StressKind::kDiskIo);
  const double solo = subject_latency_with(antagonist, 0.0, subject);
  // 16 QPS × 50 MB = 800 MB/s of the 1 GB/s disk.
  const double contended = subject_latency_with(antagonist, 16.0, subject);
  EXPECT_LT(contended, solo * 1.10)
      << "solo=" << solo << " contended=" << contended;
}

TEST(Contention, IoAntagonistSlowsIoBoundSubject) {
  auto subject = subject_cpu();
  subject.exec = {.cpu_seconds = 0.002, .io_bytes = 20e6, .net_bytes = 0.0};
  const auto antagonist =
      workload::make_stressor(workload::StressKind::kDiskIo);
  const double solo = subject_latency_with(antagonist, 0.0, subject);
  const double contended = subject_latency_with(antagonist, 16.0, subject);
  EXPECT_GT(contended, solo * 1.5)
      << "solo=" << solo << " contended=" << contended;
}

TEST(Contention, NetworkAntagonistSlowsNetworkBoundSubject) {
  auto subject = subject_cpu();
  subject.exec = {.cpu_seconds = 0.002, .io_bytes = 0.0, .net_bytes = 20e6};
  const auto antagonist =
      workload::make_stressor(workload::StressKind::kNetwork);
  const double solo = subject_latency_with(antagonist, 0.0, subject);
  // 20 QPS × 40 MB = 800 MB/s of the 1 GB/s NIC.
  const double contended = subject_latency_with(antagonist, 20.0, subject);
  EXPECT_GT(contended, solo * 1.5);
}

TEST(Contention, SlowdownGrowsMonotonicallyWithPressure) {
  const auto subject = subject_cpu();
  const auto antagonist = workload::make_stressor(workload::StressKind::kCpu);
  double prev = 0.0;
  for (double qps : {0.0, 30.0, 60.0, 76.0}) {
    const double lat = subject_latency_with(antagonist, qps, subject);
    EXPECT_GE(lat, prev * 0.98) << "at " << qps;  // small noise tolerance
    prev = lat;
  }
}

}  // namespace
}  // namespace amoeba::serverless
