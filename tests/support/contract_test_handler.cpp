// Linked into every test executable: installs the throwing contract
// handler before main() so unit tests can EXPECT_THROW(amoeba::ContractError)
// on failure paths. Death-tests that want the production abort behaviour
// reinstall amoeba::abort_contract_handler inside the dying statement (the
// death-test child inherits this throwing handler otherwise).
#include "common/assert.hpp"

namespace {

const bool g_throwing_handler_installed = [] {
  amoeba::set_contract_handler(&amoeba::throwing_contract_handler);
  return true;
}();

}  // namespace
