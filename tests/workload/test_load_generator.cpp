#include "workload/load_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/diurnal_trace.hpp"

namespace amoeba::workload {
namespace {

TEST(ConstantLoadGenerator, EmitsAtConfiguredRate) {
  sim::Engine engine;
  std::uint64_t arrivals = 0;
  ConstantLoadGenerator gen(engine, sim::Rng(1), 50.0,
                            [&arrivals] { ++arrivals; });
  gen.start();
  engine.run_until(100.0);
  gen.stop();
  EXPECT_NEAR(static_cast<double>(arrivals), 5000.0, 300.0);
}

TEST(ConstantLoadGenerator, StopHaltsEmission) {
  sim::Engine engine;
  std::uint64_t arrivals = 0;
  ConstantLoadGenerator gen(engine, sim::Rng(2), 100.0,
                            [&arrivals] { ++arrivals; });
  gen.start();
  engine.schedule(10.0, [&gen] { gen.stop(); });
  engine.run_until(50.0);
  EXPECT_NEAR(static_cast<double>(arrivals), 1000.0, 150.0);
  EXPECT_TRUE(engine.empty());
}

TEST(ConstantLoadGenerator, SetRateTakesEffect) {
  sim::Engine engine;
  std::uint64_t arrivals = 0;
  ConstantLoadGenerator gen(engine, sim::Rng(3), 10.0,
                            [&arrivals] { ++arrivals; });
  gen.start();
  engine.run_until(50.0);
  const auto first_phase = arrivals;
  gen.set_rate(100.0);
  engine.run_until(100.0);
  const auto second_phase = arrivals - first_phase;
  EXPECT_GT(second_phase, first_phase * 5);
}

TEST(ConstantLoadGenerator, DoubleStartIsIdempotent) {
  sim::Engine engine;
  std::uint64_t arrivals = 0;
  ConstantLoadGenerator gen(engine, sim::Rng(4), 100.0,
                            [&arrivals] { ++arrivals; });
  gen.start();
  gen.start();
  engine.run_until(10.0);
  gen.stop();
  // A doubled stream would show ~2000 arrivals.
  EXPECT_NEAR(static_cast<double>(arrivals), 1000.0, 150.0);
}

TEST(PoissonLoadGenerator, InterarrivalsAreExponential) {
  sim::Engine engine;
  std::vector<double> times;
  PoissonLoadGenerator gen(
      engine, sim::Rng(5), [](double) { return 20.0; }, 20.0,
      [&] { times.push_back(engine.now()); });
  gen.start();
  engine.run_until(500.0);
  gen.stop();
  ASSERT_GT(times.size(), 5000u);
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double gap = times[i] - times[i - 1];
    sum += gap;
    sum2 += gap * gap;
  }
  const double n = static_cast<double>(times.size() - 1);
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.05, 0.005);
  // Exponential: CV = 1.
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.08);
}

TEST(PoissonLoadGenerator, ThinningTracksRateFunction) {
  sim::Engine engine;
  std::uint64_t first_half = 0, second_half = 0;
  PoissonLoadGenerator gen(
      engine, sim::Rng(6),
      [](double t) { return t < 100.0 ? 10.0 : 40.0; }, 40.0,
      [&] {
        if (engine.now() < 100.0) {
          ++first_half;
        } else {
          ++second_half;
        }
      });
  gen.start();
  engine.run_until(200.0);
  gen.stop();
  EXPECT_NEAR(static_cast<double>(first_half), 1000.0, 150.0);
  EXPECT_NEAR(static_cast<double>(second_half), 4000.0, 350.0);
}

TEST(PoissonLoadGenerator, DiurnalTraceIntegration) {
  sim::Engine engine;
  DiurnalTraceConfig cfg;
  cfg.period_s = 200.0;
  cfg.peak_qps = 50.0;
  cfg.trough_fraction = 0.25;
  DiurnalTrace trace(cfg);
  std::uint64_t arrivals = 0;
  PoissonLoadGenerator gen(
      engine, sim::Rng(7), [&trace](double t) { return trace.rate(t); },
      trace.max_rate(), [&arrivals] { ++arrivals; });
  gen.start();
  engine.run_until(200.0);
  gen.stop();
  // Expected count = integral of the trace over a day.
  double expected = 0.0;
  for (double v : trace.sample_day(2000)) expected += v * 0.1;
  EXPECT_NEAR(static_cast<double>(arrivals), expected, expected * 0.1);
}

TEST(PoissonLoadGenerator, ZeroRateEmitsNothing) {
  sim::Engine engine;
  std::uint64_t arrivals = 0;
  PoissonLoadGenerator gen(
      engine, sim::Rng(8), [](double) { return 0.0; }, 10.0,
      [&arrivals] { ++arrivals; });
  gen.start();
  engine.run_until(100.0);
  gen.stop();
  EXPECT_EQ(arrivals, 0u);
}

TEST(PoissonLoadGenerator, SameSeedReproducesTheArrivalSequence) {
  auto arrivals_for = [](std::uint64_t seed) {
    sim::Engine engine;
    std::vector<double> times;
    PoissonLoadGenerator gen(
        engine, sim::Rng(seed),
        [](double t) { return t < 50.0 ? 30.0 : 8.0; }, 30.0,
        [&] { times.push_back(engine.now()); });
    gen.start();
    engine.run_until(100.0);
    gen.stop();
    return times;
  };
  const auto a = arrivals_for(17);
  const auto b = arrivals_for(17);
  const auto c = arrivals_for(18);
  ASSERT_GT(a.size(), 500u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i], b[i]) << "arrival " << i;
  }
  EXPECT_NE(a, c);
}

TEST(ConstantLoadGenerator, SameSeedReproducesTheArrivalSequence) {
  auto arrivals_for = [](std::uint64_t seed) {
    sim::Engine engine;
    std::vector<double> times;
    ConstantLoadGenerator gen(engine, sim::Rng(seed), 40.0,
                              [&] { times.push_back(engine.now()); });
    gen.start();
    engine.run_until(50.0);
    gen.stop();
    return times;
  };
  const auto a = arrivals_for(21);
  const auto b = arrivals_for(21);
  ASSERT_GT(a.size(), 500u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i], b[i]) << "arrival " << i;
  }
  EXPECT_NE(a, arrivals_for(22));
}

TEST(PoissonLoadGenerator, DestructorCancelsPendingEvent) {
  sim::Engine engine;
  {
    PoissonLoadGenerator gen(
        engine, sim::Rng(9), [](double) { return 5.0; }, 5.0, [] {});
    gen.start();
  }
  EXPECT_TRUE(engine.empty());
}

}  // namespace
}  // namespace amoeba::workload
