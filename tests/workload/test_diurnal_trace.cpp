#include "workload/diurnal_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace amoeba::workload {
namespace {

DiurnalTraceConfig base_config() {
  DiurnalTraceConfig cfg;
  cfg.period_s = 1000.0;
  cfg.peak_qps = 100.0;
  cfg.trough_fraction = 0.25;
  return cfg;
}

TEST(DiurnalTrace, PeakAndTroughRespected) {
  DiurnalTrace trace(base_config());
  const auto day = trace.sample_day(500);
  const double mx = *std::max_element(day.begin(), day.end());
  const double mn = *std::min_element(day.begin(), day.end());
  EXPECT_NEAR(mx, 100.0, 1.0);          // reaches the peak
  EXPECT_NEAR(mn, 25.0, 1.0);           // trough at 25% (paper: < 30%)
  EXPECT_LT(mn / mx, 0.30);
}

TEST(DiurnalTrace, TwoRushesPresent) {
  DiurnalTrace trace(base_config());
  const auto day = trace.sample_day(1000);
  // Count local maxima above 60% of peak with some hysteresis.
  int rushes = 0;
  bool in_rush = false;
  for (double v : day) {
    if (!in_rush && v > 60.0) {
      ++rushes;
      in_rush = true;
    } else if (in_rush && v < 40.0) {
      in_rush = false;
    }
  }
  EXPECT_EQ(rushes, 2);
}

TEST(DiurnalTrace, PeriodicAcrossDays) {
  DiurnalTrace trace(base_config());
  for (double t : {10.0, 250.0, 600.0, 999.0}) {
    EXPECT_NEAR(trace.base_rate(t), trace.base_rate(t + 1000.0), 1e-9);
    EXPECT_NEAR(trace.base_rate(t), trace.base_rate(t + 5000.0), 1e-9);
  }
}

TEST(DiurnalTrace, PhaseShiftsPattern) {
  auto cfg = base_config();
  DiurnalTrace a(cfg);
  cfg.phase = 0.5;
  DiurnalTrace b(cfg);
  EXPECT_NEAR(a.base_rate(0.0), b.base_rate(500.0), 1e-9);
}

TEST(DiurnalTrace, NoiseStaysUnderDeclaredBound) {
  auto cfg = base_config();
  cfg.noise_cv = 0.3;
  DiurnalTrace trace(cfg, 7);
  for (int i = 0; i < 2000; ++i) {
    const double t = i * 0.77;
    EXPECT_LE(trace.rate(t), trace.max_rate() * (1.0 + 1e-12));
    EXPECT_GE(trace.rate(t), 0.0);
  }
}

TEST(DiurnalTrace, NoiseFreeRateEqualsBaseRate) {
  DiurnalTrace trace(base_config());
  for (double t : {1.0, 123.0, 789.0}) {
    EXPECT_DOUBLE_EQ(trace.rate(t), trace.base_rate(t));
  }
}

TEST(DiurnalTrace, NoiseIsDeterministicPerSeed) {
  auto cfg = base_config();
  cfg.noise_cv = 0.2;
  DiurnalTrace a(cfg, 11), b(cfg, 11), c(cfg, 12);
  EXPECT_DOUBLE_EQ(a.rate(123.0), b.rate(123.0));
  EXPECT_NE(a.rate(123.0), c.rate(123.0));
}

TEST(DiurnalTrace, ConfigValidation) {
  auto cfg = base_config();
  cfg.trough_fraction = 0.0;
  EXPECT_THROW(DiurnalTrace{cfg}, ContractError);
  cfg = base_config();
  cfg.peak_width = 0.6;
  EXPECT_THROW(DiurnalTrace{cfg}, ContractError);
  cfg = base_config();
  cfg.period_s = -1.0;
  EXPECT_THROW(DiurnalTrace{cfg}, ContractError);
}

TEST(DiurnalTrace, SampleDayRequiresTwoPoints) {
  DiurnalTrace trace(base_config());
  EXPECT_THROW((void)trace.sample_day(1), ContractError);
}

TEST(DiurnalTrace, WrapsExactlyAtTheDayBoundary) {
  DiurnalTrace trace(base_config());
  EXPECT_DOUBLE_EQ(trace.base_rate(0.0), trace.base_rate(1000.0));
  EXPECT_DOUBLE_EQ(trace.base_rate(0.0), trace.base_rate(17.0 * 1000.0));
  // sample_day's first point is the day origin.
  EXPECT_DOUBLE_EQ(trace.sample_day(100).front(), trace.base_rate(0.0));
}

TEST(DiurnalTrace, DayEdgeIsContinuous) {
  // The two-rush pattern must not jump across the midnight seam: rates just
  // before and just after the day boundary agree to first order.
  DiurnalTrace trace(base_config());
  const double period = trace.config().period_s;
  const double eps = 1e-6 * period;
  EXPECT_NEAR(trace.base_rate(period - eps), trace.base_rate(period + eps),
              1e-2);
  // Same seam under a phase shift, which moves the pattern but not the wrap.
  auto cfg = base_config();
  cfg.phase = 0.37;
  DiurnalTrace shifted(cfg);
  EXPECT_NEAR(shifted.base_rate(period - eps), shifted.base_rate(period + eps),
              1e-2);
}

TEST(DiurnalTrace, FarFutureDaysKeepThePattern) {
  // Wraparound must stay exact after many simulated days, not drift with
  // floating-point accumulation over absolute time.
  DiurnalTrace trace(base_config());
  for (double t : {10.0, 350.0, 780.0, 999.5}) {
    EXPECT_NEAR(trace.base_rate(t), trace.base_rate(t + 365.0 * 1000.0),
                1e-6);
  }
}

}  // namespace
}  // namespace amoeba::workload
