#include "workload/meters.hpp"

#include <gtest/gtest.h>

namespace amoeba::workload {
namespace {

TEST(Meters, AllThreeKindsValid) {
  for (auto kind : kAllMeters) {
    EXPECT_NO_THROW(meter_profile(kind).validate());
  }
}

TEST(Meters, EachMeterStressesItsOwnResource) {
  const auto cpu = meter_profile(MeterKind::kCpuMemory);
  EXPECT_GT(cpu.exec.cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cpu.exec.io_bytes, 0.0);
  EXPECT_DOUBLE_EQ(cpu.exec.net_bytes, 0.0);

  const auto io = meter_profile(MeterKind::kDiskIo);
  EXPECT_GT(io.exec.io_bytes, 0.0);
  EXPECT_DOUBLE_EQ(io.exec.net_bytes, 0.0);

  const auto net = meter_profile(MeterKind::kNetwork);
  EXPECT_GT(net.exec.net_bytes, 0.0);
  EXPECT_DOUBLE_EQ(net.exec.io_bytes, 0.0);
}

TEST(Meters, SectionVIIEOverheadNumbers) {
  // §VII-E: at 1 QPS the meters cost 1.1%, 0.5% and 0.6% of a 40-core node.
  const double cores = 40.0;
  EXPECT_NEAR(kMeterProbeQps *
                  meter_profile(MeterKind::kCpuMemory).exec.cpu_seconds /
                  cores,
              0.011, 1e-12);
  EXPECT_NEAR(kMeterProbeQps *
                  meter_profile(MeterKind::kDiskIo).exec.cpu_seconds / cores,
              0.005, 1e-12);
  EXPECT_NEAR(kMeterProbeQps *
                  meter_profile(MeterKind::kNetwork).exec.cpu_seconds / cores,
              0.006, 1e-12);
}

TEST(Meters, DeterministicBodies) {
  for (auto kind : kAllMeters) {
    EXPECT_DOUBLE_EQ(meter_profile(kind).cpu_cv, 0.0);
  }
}

TEST(Meters, NamesDistinct) {
  EXPECT_STRNE(to_string(MeterKind::kCpuMemory), to_string(MeterKind::kDiskIo));
  EXPECT_STRNE(to_string(MeterKind::kDiskIo), to_string(MeterKind::kNetwork));
}

}  // namespace
}  // namespace amoeba::workload
