#include "workload/functionbench.hpp"

#include <gtest/gtest.h>

namespace amoeba::workload {
namespace {

// Table III of the paper: the sensitivity classes each benchmark must land
// in, given the simulated node's device rates.
struct ExpectedSensitivity {
  const char* name;
  Sensitivity cpu;
  Sensitivity disk;
  Sensitivity net;
};

class TableIII : public ::testing::TestWithParam<ExpectedSensitivity> {};

TEST_P(TableIII, SensitivityClassesMatchPaper) {
  const auto expected = GetParam();
  const NodeRates rates;
  for (const auto& p : functionbench_suite()) {
    if (p.name != expected.name) continue;
    const auto v = classify_sensitivity(p, rates.disk_bps, rates.net_bps);
    EXPECT_EQ(v.cpu, expected.cpu) << p.name << " cpu";
    EXPECT_EQ(v.disk_io, expected.disk) << p.name << " disk";
    EXPECT_EQ(v.network, expected.net) << p.name << " net";
    return;
  }
  FAIL() << "benchmark not found: " << expected.name;
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, TableIII,
    ::testing::Values(
        ExpectedSensitivity{"float", Sensitivity::kHigh, Sensitivity::kNone,
                            Sensitivity::kNone},
        ExpectedSensitivity{"matmul", Sensitivity::kHigh, Sensitivity::kNone,
                            Sensitivity::kNone},
        ExpectedSensitivity{"linpack", Sensitivity::kHigh, Sensitivity::kNone,
                            Sensitivity::kNone},
        ExpectedSensitivity{"dd", Sensitivity::kMedium, Sensitivity::kHigh,
                            Sensitivity::kNone},
        ExpectedSensitivity{"cloud_stor", Sensitivity::kLow,
                            Sensitivity::kMedium, Sensitivity::kHigh}));

TEST(FunctionBench, SuiteHasFiveValidatedBenchmarks) {
  const auto suite = functionbench_suite();
  ASSERT_EQ(suite.size(), 5u);
  for (const auto& p : suite) EXPECT_NO_THROW(p.validate());
}

TEST(FunctionBench, NamesAreUnique) {
  const auto suite = functionbench_suite();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i].name, suite[j].name);
    }
  }
}

TEST(FunctionBench, OverheadFractionInPaperRange) {
  // Fig. 4: processing + code load + result post = 10–45% of a solo query.
  const NodeRates rates;
  for (const auto& p : functionbench_suite()) {
    const double total = p.ideal_serverless_latency(rates.disk_bps,
                                                    rates.net_bps);
    const double overhead = p.platform_overhead_s +
                            p.code_bytes / rates.disk_bps +
                            p.result_bytes / rates.net_bps;
    const double fraction = overhead / total;
    // Paper reports 10–45%; our substitute stack lands slightly wider
    // (linpack ~6%, cloud_stor ~49%) — same shape: a substantial minority
    // share, largest for the shortest function (see EXPERIMENTS.md).
    EXPECT_GE(fraction, 0.05) << p.name;
    EXPECT_LE(fraction, 0.50) << p.name;
  }
}

TEST(FunctionBench, QosTargetsLooserThanSoloLatency) {
  const NodeRates rates;
  for (const auto& p : functionbench_suite()) {
    EXPECT_GT(p.qos_target_s,
              p.ideal_serverless_latency(rates.disk_bps, rates.net_bps))
        << p.name << ": QoS must be achievable solo";
  }
}

TEST(FunctionBench, PeakDemandsFitTheNode) {
  // No benchmark's peak alone may exceed the node's capacity, otherwise
  // even a dedicated platform could not serve it.
  const NodeRates rates;
  for (const auto& p : functionbench_suite()) {
    EXPECT_LT(p.peak_load_qps * p.exec.cpu_seconds, 40.0) << p.name;
    EXPECT_LT(p.peak_load_qps * p.exec.io_bytes, rates.disk_bps) << p.name;
    EXPECT_LT(p.peak_load_qps * p.exec.net_bytes, rates.net_bps) << p.name;
  }
}

TEST(Background, ScalesPeakOnly) {
  const auto base = make_dd();
  const auto bg = as_background(base, 0.3);
  EXPECT_EQ(bg.name, "dd_bg");
  EXPECT_NEAR(bg.peak_load_qps, base.peak_load_qps * 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(bg.exec.io_bytes, base.exec.io_bytes);
}

TEST(Background, RejectsBadFraction) {
  EXPECT_THROW((void)as_background(make_float(), 0.0), ContractError);
  EXPECT_THROW((void)as_background(make_float(), 1.5), ContractError);
}

TEST(Stressor, EachKindStressesItsResource) {
  const auto cpu = make_stressor(StressKind::kCpu);
  EXPECT_GT(cpu.exec.cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cpu.exec.io_bytes, 0.0);

  const auto io = make_stressor(StressKind::kDiskIo);
  EXPECT_GT(io.exec.io_bytes, 0.0);
  EXPECT_DOUBLE_EQ(io.exec.net_bytes, 0.0);

  const auto net = make_stressor(StressKind::kNetwork);
  EXPECT_GT(net.exec.net_bytes, 0.0);
  EXPECT_DOUBLE_EQ(net.exec.io_bytes, 0.0);
}

TEST(Stressor, DeterministicBodies) {
  // Profiling wants clean pressure steps: no service-time jitter.
  for (auto kind :
       {StressKind::kCpu, StressKind::kDiskIo, StressKind::kNetwork}) {
    EXPECT_DOUBLE_EQ(make_stressor(kind).cpu_cv, 0.0);
  }
}

}  // namespace
}  // namespace amoeba::workload
