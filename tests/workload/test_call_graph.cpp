// CallGraph canonicalization: the built object must depend only on content
// (profiles, pins, structure) — never on labels or declaration order — and
// its canonical order must be topological. These are the preconditions for
// the metamorphic determinism tests over whole call-graph simulations.
#include "workload/call_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::workload {
namespace {

FunctionProfile stage_profile(const std::string& name, double cpu_seconds) {
  FunctionProfile p;
  p.name = name;
  p.exec = {.cpu_seconds = cpu_seconds, .io_bytes = 1.0e6, .net_bytes = 1.0e5};
  p.code_bytes = 1.0e6;
  p.result_bytes = 1.0e4;
  p.platform_overhead_s = 0.01;
  p.rpc_overhead_s = 0.005;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.1;
  p.qos_target_s = 1.0;
  p.peak_load_qps = 10.0;
  return p;
}

/// front -> {mid_a, mid_b} -> back, with distinct per-stage content.
CallGraph diamond(const std::vector<std::string>& labels,
                  const std::vector<int>& declaration_order) {
  // Content of the four conceptual stages, indexed 0..3.
  const std::vector<FunctionProfile> profiles = {
      stage_profile("front", 0.02), stage_profile("mid_a", 0.05),
      stage_profile("mid_b", 0.08), stage_profile("back", 0.03)};
  const std::vector<StagePin> pins = {
      StagePin::kManaged, StagePin::kManaged, StagePin::kIaasOnly,
      StagePin::kServerlessOnly};

  CallGraph::Builder b;
  std::vector<int> handle(4, -1);
  for (const int conceptual : declaration_order) {
    handle[static_cast<std::size_t>(conceptual)] =
        b.add_stage(labels[static_cast<std::size_t>(conceptual)],
                    profiles[static_cast<std::size_t>(conceptual)],
                    pins[static_cast<std::size_t>(conceptual)]);
  }
  b.add_edge(handle[0], handle[1]);
  b.add_edge(handle[0], handle[2]);
  b.add_edge(handle[1], handle[3]);
  b.add_edge(handle[2], handle[3]);
  return b.build();
}

CallGraph reference_diamond() {
  return diamond({"front", "mid_a", "mid_b", "back"}, {0, 1, 2, 3});
}

TEST(CallGraphBuilder, RejectsInvalidDeclarations) {
  EXPECT_THROW((void)CallGraph::Builder{}.build(), ContractError);

  CallGraph::Builder dup;
  dup.add_stage("a", stage_profile("a", 0.01));
  EXPECT_THROW(dup.add_stage("a", stage_profile("b", 0.01)), ContractError);
  EXPECT_THROW(dup.add_stage("", stage_profile("b", 0.01)), ContractError);

  CallGraph::Builder edges;
  const int a = edges.add_stage("a", stage_profile("a", 0.01));
  const int b = edges.add_stage("b", stage_profile("b", 0.01));
  EXPECT_THROW(edges.add_edge(a, a), ContractError);
  EXPECT_THROW(edges.add_edge(a, 2), ContractError);
  EXPECT_THROW(edges.add_edge(-1, b), ContractError);
  edges.add_edge(a, b);
  EXPECT_THROW(edges.add_edge(a, b), ContractError);
}

TEST(CallGraphBuilder, RejectsCycles) {
  CallGraph::Builder b;
  const int x = b.add_stage("x", stage_profile("x", 0.01));
  const int y = b.add_stage("y", stage_profile("y", 0.01));
  const int z = b.add_stage("z", stage_profile("z", 0.01));
  b.add_edge(x, y);
  b.add_edge(y, z);
  b.add_edge(z, x);
  EXPECT_THROW((void)b.build(), ContractError);
}

TEST(CallGraph, CanonicalOrderIsTopological) {
  const CallGraph g = reference_diamond();
  ASSERT_EQ(g.size(), 4);
  for (int k = 0; k < g.size(); ++k) {
    for (const int p : g.parents(k)) {
      EXPECT_LT(p, k) << "parent after child in canonical order";
      EXPECT_LT(g.depth(p), g.depth(k));
    }
    for (const int c : g.children(k)) {
      EXPECT_TRUE(std::count(g.parents(c).begin(), g.parents(c).end(), k))
          << "asymmetric adjacency";
    }
  }
  EXPECT_EQ(g.roots(), std::vector<int>{0});
  EXPECT_EQ(g.leaves(), std::vector<int>{3});
  EXPECT_EQ(g.depth(0), 0);
  EXPECT_EQ(g.depth(3), 2);
  EXPECT_EQ(g.max_path_stages(), 3);
}

TEST(CallGraph, ServiceNamesDeriveFromCanonicalIndex) {
  const CallGraph g = reference_diamond();
  for (int k = 0; k < g.size(); ++k) {
    EXPECT_EQ(g.service_name(k),
              g.stage(k).profile.name + "@s" + std::to_string(k));
  }
  EXPECT_EQ(g.stage_by_label("mid_b"),
            g.stage_by_label("mid_b"));  // stable
  ASSERT_GE(g.stage_by_label("front"), 0);
  EXPECT_EQ(g.stage(g.stage_by_label("front")).label, "front");
  EXPECT_EQ(g.stage_by_label("absent"), -1);
}

TEST(CallGraphMetamorphic, RelabelingLeavesTheBuiltObjectUnchanged) {
  const CallGraph ref = reference_diamond();
  const CallGraph relabeled =
      diamond({"zz_root", "m1", "m2", "sink"}, {0, 1, 2, 3});

  EXPECT_EQ(relabeled.structure_hash(), ref.structure_hash());
  ASSERT_EQ(relabeled.size(), ref.size());
  for (int k = 0; k < ref.size(); ++k) {
    EXPECT_EQ(relabeled.service_name(k), ref.service_name(k));
    EXPECT_EQ(relabeled.parents(k), ref.parents(k));
    EXPECT_EQ(relabeled.children(k), ref.children(k));
    EXPECT_EQ(relabeled.depth(k), ref.depth(k));
    EXPECT_EQ(relabeled.stage(k).profile.name, ref.stage(k).profile.name);
    EXPECT_EQ(relabeled.stage(k).pin, ref.stage(k).pin);
  }
}

TEST(CallGraphMetamorphic, SiblingDeclarationOrderIsIrrelevant) {
  const CallGraph ref = reference_diamond();
  const std::vector<std::vector<int>> orders = {
      {0, 2, 1, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
  for (const auto& order : orders) {
    const CallGraph g = diamond({"front", "mid_a", "mid_b", "back"}, order);
    EXPECT_EQ(g.structure_hash(), ref.structure_hash());
    for (int k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(g.service_name(k), ref.service_name(k));
      EXPECT_EQ(g.children(k), ref.children(k));
    }
  }
}

TEST(CallGraph, DistinctContentDistinctHash) {
  const CallGraph ref = reference_diamond();
  // Same shape, one stage's cpu demand changed: different content hash.
  const std::vector<FunctionProfile> profiles = {
      stage_profile("front", 0.02), stage_profile("mid_a", 0.05),
      stage_profile("mid_b", 0.09), stage_profile("back", 0.03)};
  CallGraph::Builder b;
  std::vector<int> h;
  h.reserve(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    h.push_back(b.add_stage("s" + std::to_string(i), profiles[i]));
  }
  b.add_edge(h[0], h[1]);
  b.add_edge(h[0], h[2]);
  b.add_edge(h[1], h[3]);
  b.add_edge(h[2], h[3]);
  EXPECT_NE(b.build().structure_hash(), ref.structure_hash());

  // Same stages, one edge fewer: different structure hash.
  CallGraph::Builder b2;
  std::vector<int> h2;
  for (std::size_t i = 0; i < 4; ++i) {
    h2.push_back(b2.add_stage("s" + std::to_string(i),
                              stage_profile("p" + std::to_string(i), 0.02)));
  }
  CallGraph::Builder b3 = b2;
  b2.add_edge(h2[0], h2[1]);
  b2.add_edge(h2[1], h2[2]);
  b2.add_edge(h2[2], h2[3]);
  b3.add_edge(h2[0], h2[1]);
  b3.add_edge(h2[1], h2[2]);
  EXPECT_NE(b2.build().structure_hash(), b3.build().structure_hash());
}

TEST(CallGraph, PathsEnumerateEveryRootToLeafChain) {
  const CallGraph g = reference_diamond();
  const auto paths = g.paths();
  ASSERT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
  }
  EXPECT_NE(paths[0][1], paths[1][1]);  // the two middle stages
}

TEST(CallGraph, PathSumsMatchBruteForceEnumeration) {
  const CallGraph g = reference_diamond();
  const std::vector<double> w = {0.1, 0.25, 0.4, 0.15};
  const auto sums = g.path_sums_through(w);
  ASSERT_EQ(sums.size(), 4u);

  // Brute force: S_k = max over enumerated paths containing k.
  const auto paths = g.paths();
  for (int k = 0; k < g.size(); ++k) {
    double best = 0.0;
    for (const auto& p : paths) {
      if (!std::count(p.begin(), p.end(), k)) continue;
      double s = 0.0;
      for (const int v : p) s += w[static_cast<std::size_t>(v)];
      best = std::max(best, s);
    }
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(k)], best) << "stage " << k;
  }
  double heaviest = 0.0;
  for (const auto& p : paths) {
    double s = 0.0;
    for (const int v : p) s += w[static_cast<std::size_t>(v)];
    heaviest = std::max(heaviest, s);
  }
  EXPECT_DOUBLE_EQ(g.critical_path(w), heaviest);
  EXPECT_THROW((void)g.path_sums_through({0.1, 0.2}), ContractError);
  EXPECT_THROW((void)g.path_sums_through({0.1, 0.2, 0.0, 0.1}),
               ContractError);
}

TEST(CallGraph, SingleStageAndChainShapes) {
  CallGraph::Builder solo;
  solo.add_stage("only", stage_profile("only", 0.02));
  const CallGraph g1 = solo.build();
  EXPECT_EQ(g1.size(), 1);
  EXPECT_EQ(g1.max_path_stages(), 1);
  EXPECT_EQ(g1.paths(), std::vector<std::vector<int>>{{0}});
  EXPECT_DOUBLE_EQ(g1.critical_path({0.5}), 0.5);

  CallGraph::Builder chain;
  const int a = chain.add_stage("a", stage_profile("a", 0.02));
  const int b = chain.add_stage("b", stage_profile("b", 0.03));
  const int c = chain.add_stage("c", stage_profile("c", 0.04));
  chain.add_edge(a, b);
  chain.add_edge(b, c);
  const CallGraph g3 = chain.build();
  EXPECT_EQ(g3.max_path_stages(), 3);
  ASSERT_EQ(g3.paths().size(), 1u);
  EXPECT_DOUBLE_EQ(g3.critical_path({1.0, 2.0, 4.0}), 7.0);
}

TEST(CallGraph, StagePinToString) {
  EXPECT_STREQ(to_string(StagePin::kManaged), "managed");
  EXPECT_STREQ(to_string(StagePin::kIaasOnly), "iaas_only");
  EXPECT_STREQ(to_string(StagePin::kServerlessOnly), "serverless_only");
}

}  // namespace
}  // namespace amoeba::workload
