#include "workload/function_profile.hpp"

#include <gtest/gtest.h>

#include "workload/functionbench.hpp"

namespace amoeba::workload {
namespace {

FunctionProfile valid_profile() {
  FunctionProfile p;
  p.name = "svc";
  p.exec = {.cpu_seconds = 0.1, .io_bytes = 1e6, .net_bytes = 2e6};
  p.code_bytes = 1e6;
  p.result_bytes = 1e4;
  p.platform_overhead_s = 0.01;
  p.rpc_overhead_s = 0.002;
  p.memory_mb = 256.0;
  p.qos_target_s = 0.5;
  p.peak_load_qps = 50.0;
  return p;
}

TEST(FunctionProfile, ValidProfilePasses) {
  EXPECT_NO_THROW(valid_profile().validate());
}

TEST(FunctionProfile, RejectsInvalidFields) {
  auto p = valid_profile();
  p.name.clear();
  EXPECT_THROW(p.validate(), ContractError);

  p = valid_profile();
  p.exec.cpu_seconds = -1.0;
  EXPECT_THROW(p.validate(), ContractError);

  p = valid_profile();
  p.memory_mb = 0.0;
  EXPECT_THROW(p.validate(), ContractError);

  p = valid_profile();
  p.qos_target_s = 0.0;
  EXPECT_THROW(p.validate(), ContractError);

  p = valid_profile();
  p.peak_load_qps = -5.0;
  EXPECT_THROW(p.validate(), ContractError);
}

TEST(FunctionProfile, IdealServerlessLatencySumsPhases) {
  auto p = valid_profile();
  const double disk = 1e9, net = 1e9;
  const double expected = 0.01 + 1e6 / disk + 0.1 + 1e6 / disk + 2e6 / net +
                          1e4 / net;
  EXPECT_NEAR(p.ideal_serverless_latency(disk, net), expected, 1e-12);
}

TEST(FunctionProfile, IdealIaasLatencyExcludesServerlessOverheads) {
  auto p = valid_profile();
  const double disk = 1e9, net = 1e9;
  const double expected = 0.002 + 0.1 + 1e6 / disk + 2e6 / net;
  EXPECT_NEAR(p.ideal_iaas_latency(disk, net), expected, 1e-12);
  EXPECT_LT(p.ideal_iaas_latency(disk, net),
            p.ideal_serverless_latency(disk, net));
}

TEST(FunctionProfile, IdealLatencyRequiresPositiveRates) {
  auto p = valid_profile();
  EXPECT_THROW((void)p.ideal_serverless_latency(0.0, 1.0), ContractError);
  EXPECT_THROW((void)p.ideal_iaas_latency(1.0, -1.0), ContractError);
}

TEST(FunctionProfile, IdealLatenciesRoundTripThroughTheirPhases) {
  // Serverless minus its extra phases (platform auth, code fetch, result
  // upload, minus the IaaS rpc handling) must land exactly back on the
  // IaaS ideal: the two formulas share one execution core.
  auto p = valid_profile();
  const double disk = 2e9, net = 3e9;
  const double serverless_extras = p.platform_overhead_s +
                                   p.code_bytes / disk +
                                   p.result_bytes / net - p.rpc_overhead_s;
  EXPECT_NEAR(p.ideal_serverless_latency(disk, net) - serverless_extras,
              p.ideal_iaas_latency(disk, net), 1e-12);
}

TEST(FunctionProfile, AsTenantRoundTripsEverythingButNameAndPeak) {
  const auto base = valid_profile();
  const auto t = as_tenant(base, 7, 1.0);
  EXPECT_EQ(t.name, "svc#7");
  EXPECT_DOUBLE_EQ(t.peak_load_qps, base.peak_load_qps);
  EXPECT_DOUBLE_EQ(t.exec.cpu_seconds, base.exec.cpu_seconds);
  EXPECT_DOUBLE_EQ(t.exec.io_bytes, base.exec.io_bytes);
  EXPECT_DOUBLE_EQ(t.exec.net_bytes, base.exec.net_bytes);
  EXPECT_DOUBLE_EQ(t.code_bytes, base.code_bytes);
  EXPECT_DOUBLE_EQ(t.result_bytes, base.result_bytes);
  EXPECT_DOUBLE_EQ(t.platform_overhead_s, base.platform_overhead_s);
  EXPECT_DOUBLE_EQ(t.rpc_overhead_s, base.rpc_overhead_s);
  EXPECT_DOUBLE_EQ(t.memory_mb, base.memory_mb);
  EXPECT_DOUBLE_EQ(t.cpu_cv, base.cpu_cv);
  EXPECT_DOUBLE_EQ(t.qos_target_s, base.qos_target_s);
  EXPECT_NO_THROW(t.validate());
  EXPECT_DOUBLE_EQ(t.ideal_iaas_latency(1e9, 1e9),
                   base.ideal_iaas_latency(1e9, 1e9));

  const auto half = as_tenant(base, 0, 0.5);
  EXPECT_EQ(half.name, "svc#0");
  EXPECT_DOUBLE_EQ(half.peak_load_qps, 0.5 * base.peak_load_qps);
  EXPECT_DOUBLE_EQ(half.qos_target_s, base.qos_target_s);

  EXPECT_THROW((void)as_tenant(base, -1, 0.5), ContractError);
  EXPECT_THROW((void)as_tenant(base, 0, 0.0), ContractError);
  EXPECT_THROW((void)as_tenant(base, 0, 1.5), ContractError);
}

TEST(Sensitivity, CpuBoundClassifiesHighCpu) {
  FunctionProfile p = valid_profile();
  p.exec = {.cpu_seconds = 1.0, .io_bytes = 0.0, .net_bytes = 0.0};
  p.code_bytes = 0.0;
  p.result_bytes = 0.0;
  const auto v = classify_sensitivity(p, 1e9, 1e9);
  EXPECT_EQ(v.cpu, Sensitivity::kHigh);
  EXPECT_EQ(v.memory, Sensitivity::kHigh);
  EXPECT_EQ(v.disk_io, Sensitivity::kNone);
  EXPECT_EQ(v.network, Sensitivity::kNone);
}

TEST(Sensitivity, IoBoundClassifiesHighIo) {
  FunctionProfile p = valid_profile();
  p.exec = {.cpu_seconds = 0.01, .io_bytes = 1e9, .net_bytes = 0.0};
  p.code_bytes = 0.0;
  const auto v = classify_sensitivity(p, 1e9, 1e9);
  EXPECT_EQ(v.disk_io, Sensitivity::kHigh);
}

TEST(Sensitivity, ToStringNames) {
  EXPECT_STREQ(to_string(Sensitivity::kNone), "-");
  EXPECT_STREQ(to_string(Sensitivity::kLow), "low");
  EXPECT_STREQ(to_string(Sensitivity::kMedium), "medium");
  EXPECT_STREQ(to_string(Sensitivity::kHigh), "high");
}

}  // namespace
}  // namespace amoeba::workload
