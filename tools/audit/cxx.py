"""Tolerant token-level C++ scanning helpers shared by the audit checkers.

This is deliberately not a parser: the checkers need include edges, class
bodies, member declarations and macro mentions, all of which survive a
line-oriented scan once comments and string literals are stripped. The
scrubber keeps line structure intact (every stripped region is replaced by
spaces/newlines) so findings can point at real file:line locations.
"""
from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

# `[ \t]*` (not `\s*`): with MULTILINE, `\s*` would let the match start on
# a preceding blank line and shift the reported line number up by one.
INCLUDE_RE = re.compile(r'^[ \t]*#\s*include\s+"([^"]+)"', re.MULTILINE)


def scrub(text: str) -> str:
    """Strip comments and string/char literals, preserving layout.

    Replaced characters become spaces (newlines survive), so offsets and
    line numbers in the scrubbed text match the original. Handles `//`,
    `/* ... */` spanning lines or opened mid-line, escapes inside
    literals, and raw strings R"(...)" / R"tag(...)tag".
    """
    out = list(text)
    i = 0
    n = len(text)

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        ch = text[i]
        if text.startswith("//", i):
            end = text.find("\n", i)
            end = n if end < 0 else end
            blank(i, end)
            i = end
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n if end < 0 else end + 2
            blank(i, end)
            i = end
        elif text.startswith('R"', i):
            tag_end = text.find("(", i + 2)
            if tag_end < 0:
                i += 2
                continue
            tag = text[i + 2:tag_end]
            close = text.find(")" + tag + '"', tag_end)
            end = n if close < 0 else close + len(tag) + 2
            blank(i + 1, end)  # keep the R so tokens stay word-separated
            i = end
        elif ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            end = min(j + 1, n)
            # Keep `#include "path"` literals: the layering checker reads
            # include paths from the scrubbed text. (A commented-out
            # include never reaches here — its quotes are blanked with
            # the comment.) The prefix check runs on the scrubbed prefix
            # so a /*...*/ before the directive doesn't hide it.
            line_start = text.rfind("\n", 0, i) + 1
            prefix = "".join(out[line_start:i])
            if not re.match(r"\s*#\s*include\s*$", prefix):
                blank(i + 1, end - 1)
            i = end
        elif ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            end = min(j + 1, n)
            blank(i + 1, end - 1)
            i = end
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    """1-based line number of `offset` in `text`."""
    return text.count("\n", 0, offset) + 1


def includes(scrubbed: str) -> list[tuple[int, str]]:
    """All quoted-include paths with their line numbers."""
    return [(line_of(scrubbed, m.start()), m.group(1))
            for m in INCLUDE_RE.finditer(scrubbed)]


@dataclass
class ClassBody:
    """One class/struct body found in a scrubbed source."""
    name: str
    kind: str          # "class" | "struct"
    line: int          # 1-based line of the body-opening brace
    start: int         # offset just past '{'
    end: int           # offset of the matching '}'
    depth: int         # nesting depth (0 = top level inside namespaces)


CLASS_HEAD_RE = re.compile(
    r"\b(class|struct)\s+(?:AMOEBA_\w+\s*(?:\([^()]*\))?\s*)*"
    r"(?:alignas\s*\([^()]*\)\s*)*([A-Za-z_]\w*)\b")


def find_classes(scrubbed: str) -> list[ClassBody]:
    """Locate every class/struct body via brace matching.

    Tolerant: a `class X` head is associated with the next `{` that is not
    preceded by a `;` (forward declarations are skipped). Enum classes and
    base-clause colons are handled; function-local structs are reported
    too (the annotation checker wants those).
    """
    bodies: list[ClassBody] = []
    open_stack: list[tuple[str, str, int, int] | None] = []
    pending: tuple[str, str, int] | None = None  # (kind, name, head_offset)
    i = 0
    n = len(scrubbed)
    while i < n:
        ch = scrubbed[i]
        if ch in ";":
            pending = None
            i += 1
            continue
        if ch == "{":
            if pending is not None:
                open_stack.append(
                    (pending[0], pending[1], pending[2], i + 1))
                pending = None
            else:
                open_stack.append(None)
            i += 1
            continue
        if ch == "}":
            if open_stack:
                top = open_stack.pop()
                if top is not None:
                    kind, name, _head, start = top
                    bodies.append(ClassBody(
                        name=name, kind=kind, line=line_of(scrubbed, start - 1),
                        start=start, end=i,
                        depth=sum(1 for e in open_stack if e is not None)))
            i += 1
            continue
        m = CLASS_HEAD_RE.match(scrubbed, i)
        if m and not _is_enum_class(scrubbed, i):
            pending = (m.group(1), m.group(2), i)
            i = m.end()
            continue
        i += 1
    bodies.sort(key=lambda b: b.start)
    return bodies


def _is_enum_class(scrubbed: str, offset: int) -> bool:
    return scrubbed[max(0, offset - 6):offset].rstrip().endswith("enum")


@dataclass
class Member:
    """One declaration inside a class body (field or method)."""
    line: int
    text: str           # whitespace-normalized declaration text (no body)
    access: str         # "public" | "protected" | "private"
    has_body: bool      # inline definition present
    body: str = ""      # inline body text ("" when has_body is False)


ACCESS_RE = re.compile(r"^\s*(public|protected|private)\s*:\s*$")


def split_members(scrubbed: str, body: ClassBody) -> list[Member]:
    """Split a class body into member declarations.

    Scans at depth 0 of the body, treating `{...}` as an inline definition
    attached to the preceding declaration and `;` as a terminator.
    Access-specifier labels update the running access level (`class`
    defaults private, `struct` public). Nested class bodies are consumed
    as inline bodies of their own declaration; their members come from
    their own ClassBody entry.
    """
    text = scrubbed[body.start:body.end]
    members: list[Member] = []
    access = "public" if body.kind == "struct" else "private"
    decl_start = 0
    i = 0
    n = len(text)
    depth_round = 0  # (), [] and <> are all tolerated inside; only () tracked

    def flush(end: int, has_body: bool, body_text: str = "") -> int:
        """Record text[decl_start:end] as one declaration; returns the new
        decl_start."""
        nonlocal access
        raw_decl = text[decl_start:end]
        # Peel access labels off the raw text first, so the reported line
        # is the declaration's own line, not the `public:` label's.
        off = decl_start
        while True:
            label = re.match(r"\s*(public|protected|private)\s*:", raw_decl)
            if not label:
                break
            access = label.group(1)
            off += label.end()
            raw_decl = raw_decl[label.end():]
        lead_ws = len(raw_decl) - len(raw_decl.lstrip())
        line = body.line + text.count("\n", 0, off + lead_ws)
        decl = " ".join(raw_decl.split())
        if decl:
            members.append(Member(line=line, text=decl, access=access,
                                  has_body=has_body, body=body_text))
        return end + 1

    while i < n:
        ch = text[i]
        if ch == "(":
            depth_round += 1
        elif ch == ")":
            depth_round = max(0, depth_round - 1)
        elif ch == ";" and depth_round == 0:
            decl_start = flush(i, has_body=False)
        elif ch == "{" and depth_round == 0:
            close = find_matching(text, i)
            close = n if close < 0 else close
            decl_start = flush(i, has_body=True, body_text=text[i:close + 1])
            # Skip the body and an optional trailing ';'.
            k = close + 1
            while k < n and text[k] in " \t\n":
                k += 1
            if k < n and text[k] == ";":
                k += 1
            decl_start = k
            i = k
            continue
        i += 1
    return members


def find_matching(text: str, open_idx: int,
                  open_ch: str = "{", close_ch: str = "}") -> int:
    """Offset of the brace matching text[open_idx], or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def read_scrubbed(path: Path) -> tuple[str, str]:
    """(raw_text, scrubbed_text) for one source file."""
    raw = path.read_text(encoding="utf-8")
    return raw, scrub(raw)


ESCAPE_RE = re.compile(r"//\s*audit:\s*([\w-]+)\s*(.*)$")


def escape_on_line(raw_text_lines: list[str], line: int, tag: str) -> bool:
    """True if `line` (1-based) or the line above carries a justified
    `// audit: <tag> <why>` escape. An escape with no justification text
    does not count — the why is the point."""
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(raw_text_lines):
            m = ESCAPE_RE.search(raw_text_lines[candidate - 1])
            if m and m.group(1) == tag and m.group(2).strip():
                return True
    return False
