"""Layering checker: the src/ include graph must match layers.toml.

Extracts every `#include "mod/..."` edge from the sources (the TU set is
cross-checked against compile_commands.json when available), collapses
them to module→module edges, and fails on:

  * an edge absent from the frozen DAG (new dependency or back-edge);
  * a module missing from layers.toml (new directories must be placed in
    the layering deliberately);
  * a cycle in the *declared* DAG (a corrupted layers.toml must not be
    able to bless a cycle);
  * a src/*.cpp translation unit that compile_commands.json does not
    build (the file would silently drop out of the build and out of every
    compiled-path analysis).
"""
from __future__ import annotations

import json
from pathlib import Path

from . import Finding
from .cxx import includes, read_scrubbed

CHECKER = "layering"


def load_layers(config_path: Path) -> dict[str, set[str]]:
    import tomllib
    with config_path.open("rb") as fh:
        data = tomllib.load(fh)
    modules = data.get("modules", {})
    return {name: set(deps) for name, deps in modules.items()}


def declared_cycle(allowed: dict[str, set[str]]) -> list[str] | None:
    """Return one cycle in the declared graph, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in allowed}
    stack: list[str] = []

    def visit(node: str) -> list[str] | None:
        color[node] = GREY
        stack.append(node)
        for dep in sorted(allowed.get(node, ())):
            if dep not in color:
                continue
            if color[dep] == GREY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                cycle = visit(dep)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for module in sorted(allowed):
        if color[module] == WHITE:
            cycle = visit(module)
            if cycle:
                return cycle
    return None


def compiled_tus(compile_commands: Path | None, root: Path) -> set[Path]:
    """Absolute paths of TUs the build compiles, per compile_commands."""
    if compile_commands is None or not compile_commands.is_file():
        return set()
    entries = json.loads(compile_commands.read_text(encoding="utf-8"))
    tus: set[Path] = set()
    for entry in entries:
        f = Path(entry.get("file", ""))
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        try:
            tus.add(f.resolve())
        except OSError:
            continue
    return tus


def check(root: Path, config_path: Path,
          compile_commands: Path | None) -> list[Finding]:
    findings: list[Finding] = []
    allowed = load_layers(config_path)

    cycle = declared_cycle(allowed)
    if cycle:
        findings.append(Finding(
            CHECKER, config_path.name, 0,
            f"declared layering contains a cycle: {' -> '.join(cycle)}"))
        return findings

    src = root / "src"
    if not src.is_dir():
        findings.append(Finding(CHECKER, "src", 0, "no src/ directory"))
        return findings

    tus = compiled_tus(compile_commands, root)

    for path in sorted(src.rglob("*")):
        if path.suffix not in (".cpp", ".hpp", ".h"):
            continue
        rel = path.relative_to(root)
        module = rel.parts[1] if len(rel.parts) > 1 else ""
        if module not in allowed:
            findings.append(Finding(
                CHECKER, rel.as_posix(), 0,
                f"module '{module}' is not declared in {config_path.name}; "
                f"place new directories in the layering deliberately"))
            continue
        if path.suffix == ".cpp" and tus and path.resolve() not in tus:
            findings.append(Finding(
                CHECKER, rel.as_posix(), 0,
                "translation unit missing from compile_commands.json "
                "(not built: unlisted in CMake?)"))
        _, scrubbed = read_scrubbed(path)
        for line, inc in includes(scrubbed):
            target = inc.split("/", 1)[0]
            if "/" not in inc or target not in allowed:
                # Not a module-rooted project include (e.g. a same-dir
                # helper header in tests); the lint pass owns include
                # hygiene, layering only owns module edges.
                continue
            if target == module:
                continue
            if target not in allowed[module]:
                findings.append(Finding(
                    CHECKER, rel.as_posix(), line,
                    f"illegal include edge {module} -> {target} "
                    f"(allowed from {module}: "
                    f"{sorted(allowed[module]) or 'nothing'}); widening "
                    f"the DAG requires editing {config_path.name}"))
    return findings
