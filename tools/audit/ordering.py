"""Iteration-order determinism checker.

The determinism guarantee (same-seed runs are trace-hash identical) dies
the moment trace-affecting code iterates a container whose order depends
on a hash seed or on pointer values. This checker scans the
trace-affecting modules for:

  * declarations of `std::unordered_*` members/locals, and any range-for
    or `.begin()`/`.cbegin()` iteration over them (cross-TU: members
    declared in a module's headers are tracked into its .cpp files);
  * pointer-keyed associative containers (`std::map<T*, ...>`,
    `std::set<T*>`, and unordered flavours) — ordered or not, their
    iteration order is an address-space artifact;
  * range-for directly over a `std::unordered_*` temporary.

Declarations themselves are also flagged: an unordered container in a
trace-affecting module is a standing invitation for the next iteration
bug, so keeping one is an explicit decision. Escape hatch: a
`// audit: ordered-ok <justification>` comment on the flagged line (or
the line above) suppresses the finding; the justification text is
mandatory. Escaping a declaration covers storage only — iteration sites
need their own justification.
"""
from __future__ import annotations

import re
from pathlib import Path

from . import Finding
from .cxx import escape_on_line, line_of, read_scrubbed

CHECKER = "ordering"

# Modules whose behaviour feeds event traces, stats, or summaries.
TRACE_AFFECTING = ("sim", "core", "serverless", "iaas")

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\s*<")
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"[A-Za-z_][\w:<>, ]*?\*")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([A-Za-z_][\w.\->]*)\s*\)")
BEGIN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")
UNORDERED_TEMP_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*std::unordered_\w+\s*<")


def _match_template(scrubbed: str, open_idx: int) -> int:
    """Offset just past the `>` matching the `<` at open_idx, or -1."""
    depth = 0
    for i in range(open_idx, len(scrubbed)):
        c = scrubbed[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def unordered_names(scrubbed: str) -> list[tuple[int, str]]:
    """(line, declared-name) for every std::unordered_* declaration."""
    names: list[tuple[int, str]] = []
    for m in UNORDERED_DECL_RE.finditer(scrubbed):
        close = _match_template(scrubbed, m.end() - 1)
        if close < 0:
            continue
        after = scrubbed[close:close + 200]
        name = re.match(r"\s*&?\s*([A-Za-z_]\w*)", after)
        if name and name.group(1) not in ("const",):
            names.append((line_of(scrubbed, m.start()), name.group(1)))
    return names


def module_files(root: Path, module: str) -> list[Path]:
    mod_dir = root / "src" / module
    if not mod_dir.is_dir():
        return []
    return sorted(p for p in mod_dir.rglob("*")
                  if p.suffix in (".cpp", ".hpp", ".h"))


def check(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for module in TRACE_AFFECTING:
        files = module_files(root, module)
        # Pass 1: collect unordered-container names declared anywhere in
        # the module (headers feed .cpp files of the same module).
        scans: list[tuple[Path, str, list[str]]] = []
        module_unordered: set[str] = set()
        for path in files:
            raw, scrubbed = read_scrubbed(path)
            raw_lines = raw.splitlines()
            scans.append((path, scrubbed, raw_lines))
            for line, name in unordered_names(scrubbed):
                module_unordered.add(name)
                rel = path.relative_to(root).as_posix()
                if not escape_on_line(raw_lines, line, "ordered-ok"):
                    findings.append(Finding(
                        CHECKER, rel, line,
                        f"std::unordered_* declaration '{name}' in "
                        f"trace-affecting module '{module}': use std::map/"
                        f"std::set (or sort before iterating) so traces "
                        f"and summaries never see hash order; escape with "
                        f"`// audit: ordered-ok <why>` if iteration "
                        f"provably never leaves this TU"))
        # Pass 2: iteration sites (flagged even when the declaration
        # itself was escaped — the escape covers storage, not iteration).
        for path, scrubbed, raw_lines in scans:
            rel = path.relative_to(root).as_posix()
            for m in RANGE_FOR_RE.finditer(scrubbed):
                target = m.group(1).split("->")[-1].split(".")[-1]
                if target in module_unordered:
                    line = line_of(scrubbed, m.start())
                    if not escape_on_line(raw_lines, line, "ordered-ok"):
                        findings.append(Finding(
                            CHECKER, rel, line,
                            f"range-for over unordered container "
                            f"'{target}' in trace-affecting code: "
                            f"iteration order is hash-seed dependent"))
            for m in BEGIN_RE.finditer(scrubbed):
                if m.group(1) in module_unordered:
                    line = line_of(scrubbed, m.start())
                    if not escape_on_line(raw_lines, line, "ordered-ok"):
                        findings.append(Finding(
                            CHECKER, rel, line,
                            f"iterator over unordered container "
                            f"'{m.group(1)}' in trace-affecting code"))
            for m in UNORDERED_TEMP_FOR_RE.finditer(scrubbed):
                line = line_of(scrubbed, m.start())
                if not escape_on_line(raw_lines, line, "ordered-ok"):
                    findings.append(Finding(
                        CHECKER, rel, line,
                        "range-for over an unordered temporary"))
            for m in POINTER_KEY_RE.finditer(scrubbed):
                line = line_of(scrubbed, m.start())
                if not escape_on_line(raw_lines, line, "ordered-ok"):
                    findings.append(Finding(
                        CHECKER, rel, line,
                        "pointer-keyed associative container in "
                        "trace-affecting code: iteration order is an "
                        "address-space artifact (key by a stable id "
                        "instead)"))
    return findings
