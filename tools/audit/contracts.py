"""Contract-coverage ratchet.

Measures the fraction of public mutating methods in the trace-affecting
modules (src/sim, src/core, src/serverless, src/iaas) whose definition
carries at least one AMOEBA_EXPECTS / AMOEBA_ENSURES / AMOEBA_INVARIANT
check, and fails when the fraction regresses below the frozen baseline in
tools/audit/contracts_baseline.toml.

"Public mutating method" — a tolerant, stable approximation:
  * declared in a `public:` section of a class/struct in a module header;
  * non-const, non-static, not a constructor/destructor/operator, not
    `= default` / `= delete`, not a using/typedef/friend declaration;
  * returns something or nothing — signature shape does not matter.

Cross-TU matching: a declaration's definition is its inline body when it
has one, else the `ClassName::method(...)` definition found in any .cpp
of the same module (this is where compile_commands-style cross-TU
resolution matters: headers declare, TUs define).

The ratchet only tightens: when coverage rises, refreeze with
`python3 tools/audit --update-baselines` in the same commit.
"""
from __future__ import annotations

import re
from pathlib import Path

from . import Finding
from .cxx import find_classes, find_matching, read_scrubbed, split_members

CHECKER = "contracts"

MODULES = ("sim", "core", "serverless", "iaas")

CONTRACT_RE = re.compile(r"\bAMOEBA_(EXPECTS|ENSURES|INVARIANT|ASSERT)\w*\s*\(")

# Declaration shapes that are not checkable methods.
SKIP_DECL_RE = re.compile(
    r"^(using\b|typedef\b|friend\b|template\b|enum\b|class\b|struct\b|"
    r"static\b|AMOEBA_|#)")
METHOD_NAME_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def is_public_mutating_method(member_text: str,
                              class_name: str) -> str | None:
    """Return the method name if this declaration is a public mutating
    method, else None. (`member.access` gates public-ness; this gates
    shape.)"""
    t = member_text
    if SKIP_DECL_RE.match(t):
        return None
    if "operator" in t or "~" in t:
        return None
    if re.search(r"=\s*(default|delete)\s*$", t):
        return None
    m = METHOD_NAME_RE.search(t)
    if not m:
        return None  # data member or unparsable
    name = m.group(1)
    if name == class_name:
        return None  # constructor
    # const method ⇒ non-mutating. Look for `const` after the closing
    # paren of the parameter list (tolerates noexcept/attrs after it).
    close = t.find(")", m.end())
    tail = t[close + 1:] if close >= 0 else ""
    tail = tail.split("{")[0]
    if re.search(r"^\s*const\b", tail):
        return None
    # A parenthesized initializer (`int x (0);`) is not a method; demand
    # either a body, a trailing `;`-terminated signature with a type
    # before the name, or qualifiers after.
    before = t[:m.start()].strip()
    if not before:
        return None  # no return type ⇒ likely macro or initializer
    return name


def definition_has_contract(scrubbed_cpp: str, class_name: str,
                            method: str) -> bool | None:
    """True/False if a `Class::method` definition was found in this TU
    (and does/doesn't contain a contract); None if not found."""
    pattern = re.compile(
        r"\b" + re.escape(class_name) + r"\s*::\s*" + re.escape(method) +
        r"\s*\(")
    for m in pattern.finditer(scrubbed_cpp):
        open_brace = scrubbed_cpp.find("{", m.end())
        semi = scrubbed_cpp.find(";", m.end())
        if open_brace < 0 or (0 <= semi < open_brace):
            continue  # out-of-line declaration, not a definition
        close = find_matching(scrubbed_cpp, open_brace)
        if close < 0:
            close = len(scrubbed_cpp)
        body = scrubbed_cpp[open_brace:close]
        return CONTRACT_RE.search(body) is not None
    return None


def measure(root: Path) -> tuple[int, int, list[str]]:
    """(covered, total, uncovered-method-list) over the scoped modules."""
    covered = 0
    total = 0
    uncovered: list[str] = []
    for module in MODULES:
        mod_dir = root / "src" / module
        if not mod_dir.is_dir():
            continue
        headers = sorted(p for p in mod_dir.rglob("*")
                         if p.suffix in (".hpp", ".h"))
        cpps = sorted(mod_dir.rglob("*.cpp"))
        cpp_scrubbed = [read_scrubbed(p)[1] for p in cpps]
        for header in headers:
            _, scrubbed = read_scrubbed(header)
            rel = header.relative_to(root).as_posix()
            for body in find_classes(scrubbed):
                for member in split_members(scrubbed, body):
                    if member.access != "public":
                        continue
                    name = is_public_mutating_method(member.text, body.name)
                    if name is None:
                        continue
                    total += 1
                    if member.has_body:
                        ok = CONTRACT_RE.search(member.body) is not None
                    else:
                        ok = False
                        for cpp in cpp_scrubbed:
                            got = definition_has_contract(cpp, body.name, name)
                            if got is not None:
                                ok = got
                                break
                    if ok:
                        covered += 1
                    else:
                        uncovered.append(
                            f"{rel}:{member.line}: {body.name}::{name}")
    return covered, total, uncovered


def load_baseline(path: Path) -> float:
    import tomllib
    with path.open("rb") as fh:
        data = tomllib.load(fh)
    return float(data["coverage"]["min_ratio"])


def write_baseline(path: Path, covered: int, total: int) -> None:
    ratio = covered / total if total else 1.0
    # Floor to 3 decimals so counting noise from scanner tweaks doesn't
    # flap the gate; real regressions are way bigger than 0.001.
    floored = int(ratio * 1000) / 1000.0
    path.write_text(
        "# Contract-coverage ratchet baseline (tools/audit). Regenerate\n"
        "# with `python3 tools/audit --update-baselines` — only in commits\n"
        "# that raise coverage; the checker fails when the measured ratio\n"
        "# drops below min_ratio.\n"
        "[coverage]\n"
        f"# measured at freeze time: {covered}/{total} public mutating\n"
        f"# methods carried AMOEBA_EXPECTS/ENSURES/INVARIANT checks\n"
        f"min_ratio = {floored}\n",
        encoding="utf-8")


def check(root: Path, baseline_path: Path) -> list[Finding]:
    covered, total, uncovered = measure(root)
    ratio = covered / total if total else 1.0
    if not baseline_path.is_file():
        return [Finding(
            CHECKER, baseline_path.name, 0,
            f"missing baseline file (measured {covered}/{total} = "
            f"{ratio:.3f}); run `python3 tools/audit --update-baselines`")]
    min_ratio = load_baseline(baseline_path)
    if ratio + 1e-9 < min_ratio:
        listing = "; ".join(uncovered[:10])
        more = f" (+{len(uncovered) - 10} more)" if len(uncovered) > 10 else ""
        return [Finding(
            CHECKER, baseline_path.name, 0,
            f"contract coverage regressed: {covered}/{total} = {ratio:.3f} "
            f"< frozen min_ratio {min_ratio:.3f}. Add AMOEBA_EXPECTS/"
            f"ENSURES to new public mutating methods. Uncovered: "
            f"{listing}{more}")]
    return []
