"""CLI entry: `python3 tools/audit [options]`.

Runs the four checkers (layering, ordering, contracts, annotations) over
a tree and exits non-zero on findings. Wired as the `audit` ctest entry
and the CI `audit` job; fixture self-tests live in tests/tools/.
"""
# NOTE: no `from __future__ import annotations` here — it would shadow
# the `annotations` checker module binding below.
import argparse
import json
import sys
from pathlib import Path

if __package__ in (None, ""):  # `python3 tools/audit` (zip/dir execution)
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from audit import Finding  # noqa: F401  (re-export for checkers)
    from audit import annotations, contracts, layering, ordering
else:
    from . import annotations, contracts, layering, ordering

CHECKERS = ("layering", "ordering", "contracts", "annotations")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/audit", description=__doc__)
    parser.add_argument(
        "--root", type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="tree to analyze (default: this repository)")
    parser.add_argument(
        "--compile-commands", type=Path, default=None,
        help="compile_commands.json (default: <root>/build/"
             "compile_commands.json when present)")
    parser.add_argument(
        "--config", type=Path, default=None,
        help="layering DAG (default: <root>/tools/audit/layers.toml)")
    parser.add_argument(
        "--contracts-baseline", type=Path, default=None,
        help="ratchet baseline (default: <root>/tools/audit/"
             "contracts_baseline.toml)")
    parser.add_argument(
        "--checker", action="append", choices=CHECKERS, default=None,
        help="run only the named checker(s); default all")
    parser.add_argument(
        "--report", type=Path, default=None,
        help="write a JSON findings report here (for CI artifact upload)")
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="refreeze contracts_baseline.toml at the measured coverage")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    config = args.config or root / "tools" / "audit" / "layers.toml"
    baseline = (args.contracts_baseline
                or root / "tools" / "audit" / "contracts_baseline.toml")
    compile_commands = args.compile_commands
    if compile_commands is None:
        default_cc = root / "build" / "compile_commands.json"
        compile_commands = default_cc if default_cc.is_file() else None

    if args.update_baselines:
        covered, total, _ = contracts.measure(root)
        contracts.write_baseline(baseline, covered, total)
        print(f"audit: baseline refrozen at {covered}/{total} "
              f"({covered / total if total else 1.0:.3f}) -> {baseline}")
        return 0

    selected = args.checker or list(CHECKERS)
    findings = []
    per_checker: dict[str, int] = {}
    for name in selected:
        if name == "layering":
            got = layering.check(root, config, compile_commands)
        elif name == "ordering":
            got = ordering.check(root)
        elif name == "contracts":
            got = contracts.check(root, baseline)
        else:
            got = annotations.check(root)
        per_checker[name] = len(got)
        findings.extend(got)

    if args.report:
        covered, total, uncovered = contracts.measure(root)
        report = {
            "root": str(root),
            "checkers": per_checker,
            "contract_coverage": {
                "covered": covered, "total": total,
                "ratio": covered / total if total else 1.0,
                "uncovered": uncovered,
            },
            "findings": [
                {"checker": f.checker, "path": f.path, "line": f.line,
                 "message": f.message}
                for f in findings
            ],
        }
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(json.dumps(report, indent=2) + "\n",
                               encoding="utf-8")

    if findings:
        print(f"audit: {len(findings)} finding(s)", file=sys.stderr)
        for f in findings:
            print(f"  {f.render()}", file=sys.stderr)
        return 1
    summary = ", ".join(f"{k}: clean" for k in selected)
    print(f"audit: clean ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
