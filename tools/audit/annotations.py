"""Thread-safety annotation presence checker.

The Clang CI leg (-Werror=thread-safety) can only check lock discipline
that is *annotated*; this checker makes the annotations themselves
mandatory, on every compiler:

  * raw `std::mutex` / `std::condition_variable` (and std lock types)
    members are banned under src/ outside common/mutex.hpp — shared state
    uses the annotated wrappers (common::Mutex/CondVar) so the analysis
    sees every acquisition;
  * every class/struct holding a common::Mutex member must declare at
    least one member annotated AMOEBA_GUARDED_BY / AMOEBA_PT_GUARDED_BY
    naming that mutex — a mutex that guards nothing is either dead weight
    or (worse) informally guarding state the analysis cannot see;
  * every class holding a common::CondVar must also hold a (checked)
    common::Mutex — a condition variable without its mutex in the same
    class is being signalled across an invisible protocol.

Escape hatch: `// audit: unguarded-ok <justification>` on the mutex
member's line (or the line above).
"""
from __future__ import annotations

import re
from pathlib import Path

from . import Finding
from .cxx import escape_on_line, find_classes, line_of, read_scrubbed, \
    split_members

CHECKER = "annotations"

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|condition_variable(?:_any)?|recursive_mutex|"
    r"shared_mutex|timed_mutex)\b")
MUTEX_MEMBER_RE = re.compile(
    r"(?:^|\s)(?:mutable\s+)?(?:common::|amoeba::common::)?Mutex\s+"
    r"([A-Za-z_]\w*)\s*(?:;|=|$)")
CONDVAR_MEMBER_RE = re.compile(
    r"(?:^|\s)(?:common::|amoeba::common::)?CondVar\s+([A-Za-z_]\w*)")
GUARDED_BY_RE = re.compile(
    r"\bAMOEBA_(?:PT_)?GUARDED_BY\s*\(\s*([A-Za-z_][\w.\->]*)\s*\)")

ALLOWED_RAW = ("src/common/mutex.hpp",)


def check(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    src = root / "src"
    if not src.is_dir():
        return findings
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".cpp", ".hpp", ".h"):
            continue
        rel = path.relative_to(root).as_posix()
        raw, scrubbed = read_scrubbed(path)
        raw_lines = raw.splitlines()

        if rel not in ALLOWED_RAW:
            for m in RAW_SYNC_RE.finditer(scrubbed):
                line = line_of(scrubbed, m.start())
                if not escape_on_line(raw_lines, line, "unguarded-ok"):
                    findings.append(Finding(
                        CHECKER, rel, line,
                        f"raw std::{m.group(1)} in library code: use the "
                        f"annotated wrappers in common/mutex.hpp so "
                        f"-Wthread-safety can check lock discipline"))

        for body in find_classes(scrubbed):
            members = split_members(scrubbed, body)
            mutexes: list[tuple[int, str]] = []
            condvars: list[tuple[int, str]] = []
            guarded_targets: set[str] = set()
            for member in members:
                mm = MUTEX_MEMBER_RE.search(member.text)
                if mm:
                    mutexes.append((member.line, mm.group(1)))
                cm = CONDVAR_MEMBER_RE.search(member.text)
                if cm:
                    condvars.append((member.line, cm.group(1)))
                for gm in GUARDED_BY_RE.finditer(member.text):
                    guarded_targets.add(gm.group(1).split(".")[-1])
            for line, name in mutexes:
                if name in guarded_targets:
                    continue
                if escape_on_line(raw_lines, line, "unguarded-ok"):
                    continue
                findings.append(Finding(
                    CHECKER, rel, line,
                    f"{body.kind} {body.name}: mutex member '{name}' has "
                    f"no AMOEBA_GUARDED_BY({name}) member — annotate what "
                    f"it guards (or escape with `// audit: unguarded-ok "
                    f"<why>`)"))
            for line, name in condvars:
                if mutexes:
                    continue
                if escape_on_line(raw_lines, line, "unguarded-ok"):
                    continue
                findings.append(Finding(
                    CHECKER, rel, line,
                    f"{body.kind} {body.name}: condition variable "
                    f"'{name}' without a Mutex member in the same class — "
                    f"the wait protocol is invisible to the analysis"))
    return findings
