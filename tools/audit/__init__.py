"""amoeba-audit: cross-TU static analysis for the Amoeba tree.

Four checkers, driven by compile_commands.json plus a tolerant token-level
C++ scanner (no libclang dependency):

  layering     — the src/ module include graph must match the DAG frozen
                 in tools/audit/layers.toml (no new edges, no cycles);
  ordering     — no iteration over unordered/pointer-keyed containers in
                 trace-affecting code (iteration order would leak hash
                 seeds into traces and summaries);
  contracts    — coverage ratchet: the fraction of public mutating methods
                 carrying AMOEBA_EXPECTS/ENSURES must not regress below
                 tools/audit/contracts_baseline.toml;
  annotations  — every mutex-holding class declares AMOEBA_GUARDED_BY
                 members, and raw std::mutex/std::condition_variable stay
                 confined to common/mutex.hpp.

Run as `python3 tools/audit` (the `audit` ctest entry and CI job).
"""
# NOTE: no `from __future__ import annotations` — it would set an
# `annotations` attribute on the package, shadowing the checker module of
# the same name for `from audit import annotations`.
from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, pointing at file:line."""
    checker: str
    path: str  # repo-relative, posix
    line: int  # 1-based; 0 for whole-file/summary findings
    message: str

    def render(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"[{self.checker}] {where}: {self.message}"
