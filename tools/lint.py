#!/usr/bin/env python3
"""Repo-local lint pass for the Amoeba tree; runs as the `lint` ctest entry.

Checks (all are hard failures):
  * include hygiene: no `#include "src/..."` or `#include "../..."` paths
    (all project includes are rooted at src/), and every header under src/
    starts its code with `#pragma once`;
  * banned patterns: `rand()`/`srand()`, raw `new`/`delete` expressions, and
    std RNG engines (`std::mt19937`, `std::random_device`, ...) outside
    src/sim/random.* — all stochastic behaviour must flow through
    amoeba::sim::Rng so simulations stay seed-deterministic;
  * no stdout writes in library code: `std::cout` / bare `printf(` are
    banned under src/ — library diagnostics flow through caller-supplied
    std::ostream& (see src/obs/exporters.hpp); stderr remains legal for
    fatal contract messages;
  * raw `std::mutex` / `std::condition_variable` members are banned under
    src/ outside common/mutex.hpp — concurrency primitives go through the
    thread-safety-annotated wrappers (common::Mutex/CondVar) so the Clang
    -Werror=thread-safety leg can check lock discipline;
  * build listings: every .cpp under src/, tests/ and bench/ is listed in
    the corresponding CMakeLists.txt (an unlisted file silently drops its
    tests/symbols from the build).

A line may opt out of the banned-pattern checks with a trailing
`// lint: allow` comment, for the rare case that needs the raw construct.
The wall-clock ban has its own escape: `// lint: wallclock-ok <why>` —
the reason is mandatory, so every wall-clock read under src/ documents in
place why it cannot perturb the simulation (the only current user is
src/obs/profiler.hpp, whose readings never feed back into sim state).

Deeper cross-TU analysis (layering DAG, iteration-order determinism,
contract-coverage ratchet, annotation presence) lives in tools/audit/.
"""
from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SRC_DIRS = ("src", "tests", "bench", "examples")

# Golden fixture mini-trees seed deliberate violations for the lint/audit
# self-tests; they are inputs to the analyzers, not part of the build.
EXCLUDED_PREFIXES = ("tests/tools/fixtures/",)

ALLOW_MARKER = "lint: allow"

BANNED = [
    (re.compile(r"(?<![\w.])s?rand\s*\("), "rand()/srand(): use amoeba::sim::Rng"),
    (re.compile(r"\bnew\s+[A-Za-z_:<]"), "raw new: use std::make_unique/containers"),
    (re.compile(r"\bdelete\s+[A-Za-z_(]|\bdelete\[\]"), "raw delete: use RAII owners"),
]

# std RNG engines/sources are banned outside the one blessed wrapper.
STD_RNG = re.compile(
    r"std::(mt19937(_64)?|minstd_rand0?|default_random_engine|random_device|"
    r"ranlux\w+|knuth_b)\b")
STD_RNG_ALLOWED = {Path("src/sim/random.hpp"), Path("src/sim/random.cpp")}

# Simulation-layer code must not read wall clocks: all time flows from
# sim::Engine::now() so that same-seed runs (including N-tenant cluster
# runs, src/exp/cluster.*) execute identical traces regardless of host
# speed. src/kernels/ is exempt — it times real native workloads.
WALL_CLOCK = re.compile(
    r"std::chrono::(steady_clock|system_clock|high_resolution_clock)\b")
WALL_CLOCK_EXEMPT_TOPDIR = "kernels"
# Per-line escape: `// lint: wallclock-ok <why>`. Group 1 captures the
# reason; a marker without one is itself a finding, so escapes stay
# self-documenting.
WALLCLOCK_OK_RE = re.compile(r"//\s*lint:\s*wallclock-ok(?:[ \t]+(\S.*))?")

# Library code (src/) must not write to stdout: output belongs to the
# binaries (examples/, bench/), and library diagnostics go through a
# caller-supplied std::ostream&. `std::fprintf(stderr, ...)` stays legal
# for fatal contract diagnostics; the lookbehind keeps `fprintf` /
# `snprintf` out of the bare-printf match.
STDOUT_IN_SRC = re.compile(r"std::cout\b|std::printf\b|(?<![\w.:>])printf\s*\(")

# Concurrency primitives under src/ go through the annotated wrappers in
# common/mutex.hpp (the one file allowed to hold the raw std types), so
# Clang's -Wthread-safety lattice sees every lock site.
RAW_SYNC = re.compile(r"std::(mutex|condition_variable(_any)?|"
                      r"recursive_mutex|shared_mutex|lock_guard|unique_lock|"
                      r"scoped_lock)\b")
RAW_SYNC_ALLOWED = {Path("src/common/mutex.hpp")}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def scrub_line(raw: str, in_block: bool) -> tuple[str, bool]:
    """Strip comments and string/char literals from one line.

    Returns the remaining code text and the block-comment state after the
    line. Unlike a per-line regex, this tracks `/*` opened mid-line (after
    code) and `*/` closing with code after it, so continuation lines of a
    block comment are never scanned as code.
    """
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        if in_block:
            end = raw.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block = False
            continue
        ch = raw[i]
        if ch == '"':
            out.append('""')
            i += 1
            while i < n:
                if raw[i] == "\\":
                    i += 2
                    continue
                if raw[i] == '"':
                    i += 1
                    break
                i += 1
            continue
        if ch == "'":
            out.append("''")
            i += 1
            while i < n:
                if raw[i] == "\\":
                    i += 2
                    continue
                if raw[i] == "'":
                    i += 1
                    break
                i += 1
            continue
        if raw.startswith("//", i):
            break
        if raw.startswith("/*", i):
            in_block = True
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block


def excluded(repo: Path, path: Path) -> bool:
    rel = path.relative_to(repo).as_posix()
    return any(rel.startswith(prefix) for prefix in EXCLUDED_PREFIXES)


def iter_sources(repo: Path):
    for top in SRC_DIRS:
        root = repo / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h") \
                    and not excluded(repo, path):
                yield path


def check_file(repo: Path, path: Path, errors: list[str]):
    rel = path.relative_to(repo)
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    in_block_comment = False
    saw_pragma_once = False
    for lineno, raw in enumerate(lines, start=1):
        started_in_block = in_block_comment
        code, in_block_comment = scrub_line(raw, in_block_comment)
        if started_in_block and not code.strip():
            continue

        if not started_in_block:
            m = INCLUDE_RE.match(raw)
            if m:
                inc = m.group(1)
                if inc.startswith("src/"):
                    errors.append(
                        f"{rel}:{lineno}: include path must be rooted at src/ "
                        f'(drop the "src/" prefix): {inc}')
                if inc.startswith(".."):
                    errors.append(
                        f"{rel}:{lineno}: relative-parent include (use the "
                        f"src/-rooted path): {inc}")

        if path.suffix in (".hpp", ".h") and raw.strip() == "#pragma once":
            saw_pragma_once = True

        if ALLOW_MARKER in raw:
            continue
        for pattern, why in BANNED:
            if pattern.search(code):
                errors.append(f"{rel}:{lineno}: {why}")
        if STD_RNG.search(code) and rel not in STD_RNG_ALLOWED:
            errors.append(
                f"{rel}:{lineno}: std random engine outside src/sim/random.* "
                f"(use amoeba::sim::Rng for seed-determinism)")
        if (rel.parts[0] == "src" and WALL_CLOCK.search(code)
                and (len(rel.parts) < 2
                     or rel.parts[1] != WALL_CLOCK_EXEMPT_TOPDIR)):
            escape = WALLCLOCK_OK_RE.search(raw)
            if escape is None:
                errors.append(
                    f"{rel}:{lineno}: wall-clock read in simulation code "
                    f"(use sim::Engine::now(); only src/kernels/ may time "
                    f"the host, or escape with "
                    f"`// lint: wallclock-ok <why>`)")
            elif not escape.group(1):
                errors.append(
                    f"{rel}:{lineno}: wallclock-ok escape requires a reason "
                    f"(`// lint: wallclock-ok <why>`)")
        if rel.parts[0] == "src" and STDOUT_IN_SRC.search(code):
            errors.append(
                f"{rel}:{lineno}: stdout write in library code "
                f"(std::cout/printf): write to a caller-supplied "
                f"std::ostream& instead")
        if (rel.parts[0] == "src" and RAW_SYNC.search(code)
                and rel not in RAW_SYNC_ALLOWED):
            errors.append(
                f"{rel}:{lineno}: raw std synchronization primitive in "
                f"library code: use the annotated wrappers in "
                f"common/mutex.hpp (common::Mutex/MutexLock/UniqueLock/"
                f"CondVar) so -Wthread-safety can check lock discipline")

    if path.suffix in (".hpp", ".h"):
        if re.search(r"#\s*ifndef\s+\w+_H(PP)?_?\b", text):
            errors.append(f"{rel}: uses an include guard; this tree "
                          f"standardizes on #pragma once")
        if not saw_pragma_once:
            errors.append(f"{rel}: header missing #pragma once")


def check_cmake_listings(repo: Path, errors: list[str]):
    for top in ("src", "tests", "bench", "examples"):
        root = repo / top
        cmake = root / "CMakeLists.txt"
        if not root.is_dir() or not cmake.is_file():
            continue
        cmake_text = cmake.read_text()
        listed = set(re.findall(r"[\w/.-]+\.cpp", cmake_text))
        # Helper-function style (`amoeba_bench(fig03_peak_load)`) lists the
        # stem only. Accept a stem solely when it appears as the first
        # argument of a command invocation — a bare mention in a comment,
        # variable name, or unrelated argument list is not a listing.
        stems = set(re.findall(r"\b[\w-]+\s*\(\s*([\w-]+)", cmake_text))
        for path in sorted(root.rglob("*.cpp")):
            if excluded(repo, path):
                continue
            rel_in_dir = path.relative_to(root).as_posix()
            if rel_in_dir not in listed and path.stem not in stems:
                errors.append(
                    f"{path.relative_to(repo)}: not listed in "
                    f"{top}/CMakeLists.txt (file would silently drop out "
                    f"of the build)")


def run(repo: Path) -> list[str]:
    errors: list[str] = []
    for path in iter_sources(repo):
        check_file(repo, path, errors)
    check_cmake_listings(repo, errors)
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="tree to lint (default: the repository this script lives in)")
    args = parser.parse_args(argv)
    errors = run(args.root.resolve())
    if errors:
        print(f"lint: {len(errors)} finding(s)", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
