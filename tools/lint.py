#!/usr/bin/env python3
"""Repo-local lint pass for the Amoeba tree; runs as the `lint` ctest entry.

Checks (all are hard failures):
  * include hygiene: no `#include "src/..."` or `#include "../..."` paths
    (all project includes are rooted at src/), and every header under src/
    starts its code with `#pragma once`;
  * banned patterns: `rand()`/`srand()`, raw `new`/`delete` expressions, and
    std RNG engines (`std::mt19937`, `std::random_device`, ...) outside
    src/sim/random.* — all stochastic behaviour must flow through
    amoeba::sim::Rng so simulations stay seed-deterministic;
  * no stdout writes in library code: `std::cout` / bare `printf(` are
    banned under src/ — library diagnostics flow through caller-supplied
    std::ostream& (see src/obs/exporters.hpp); stderr remains legal for
    fatal contract messages;
  * build listings: every .cpp under src/, tests/ and bench/ is listed in
    the corresponding CMakeLists.txt (an unlisted file silently drops its
    tests/symbols from the build).

A line may opt out of the banned-pattern checks with a trailing
`// lint: allow` comment, for the rare case that needs the raw construct.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC_DIRS = ("src", "tests", "bench", "examples")

ALLOW_MARKER = "lint: allow"

BANNED = [
    (re.compile(r"(?<![\w.])s?rand\s*\("), "rand()/srand(): use amoeba::sim::Rng"),
    (re.compile(r"\bnew\s+[A-Za-z_:<]"), "raw new: use std::make_unique/containers"),
    (re.compile(r"\bdelete\s+[A-Za-z_(]|\bdelete\[\]"), "raw delete: use RAII owners"),
]

# std RNG engines/sources are banned outside the one blessed wrapper.
STD_RNG = re.compile(
    r"std::(mt19937(_64)?|minstd_rand0?|default_random_engine|random_device|"
    r"ranlux\w+|knuth_b)\b")
STD_RNG_ALLOWED = {Path("src/sim/random.hpp"), Path("src/sim/random.cpp")}

# Simulation-layer code must not read wall clocks: all time flows from
# sim::Engine::now() so that same-seed runs (including N-tenant cluster
# runs, src/exp/cluster.*) execute identical traces regardless of host
# speed. src/kernels/ is exempt — it times real native workloads.
WALL_CLOCK = re.compile(
    r"std::chrono::(steady_clock|system_clock|high_resolution_clock)\b")
WALL_CLOCK_EXEMPT_TOPDIR = "kernels"

# Library code (src/) must not write to stdout: output belongs to the
# binaries (examples/, bench/), and library diagnostics go through a
# caller-supplied std::ostream&. `std::fprintf(stderr, ...)` stays legal
# for fatal contract diagnostics; the lookbehind keeps `fprintf` /
# `snprintf` out of the bare-printf match.
STDOUT_IN_SRC = re.compile(r"std::cout\b|std::printf\b|(?<![\w.:>])printf\s*\(")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def strip_comments_and_strings(line: str) -> str:
    """Crude single-line scrub so banned-pattern checks skip prose."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"'(\\.|[^'\\])*'", "''", line)
    line = re.sub(r"//.*$", "", line)
    line = re.sub(r"/\*.*?\*/", "", line)
    return line


def iter_sources():
    for top in SRC_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h"):
                yield path


def check_file(path: Path, errors: list[str]):
    rel = path.relative_to(REPO)
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()

    in_block_comment = False
    saw_pragma_once = False
    for lineno, raw in enumerate(lines, start=1):
        if in_block_comment:
            if "*/" in raw:
                in_block_comment = False
            continue

        m = INCLUDE_RE.match(raw)
        if m:
            inc = m.group(1)
            if inc.startswith("src/"):
                errors.append(
                    f"{rel}:{lineno}: include path must be rooted at src/ "
                    f'(drop the "src/" prefix): {inc}')
            if inc.startswith(".."):
                errors.append(
                    f"{rel}:{lineno}: relative-parent include (use the "
                    f"src/-rooted path): {inc}")

        if path.suffix in (".hpp", ".h") and raw.strip() == "#pragma once":
            saw_pragma_once = True

        if ALLOW_MARKER in raw:
            continue
        code = strip_comments_and_strings(raw)
        if raw.lstrip().startswith("/*") and "*/" not in raw:
            in_block_comment = True
            continue
        for pattern, why in BANNED:
            if pattern.search(code):
                errors.append(f"{rel}:{lineno}: {why}")
        if STD_RNG.search(code) and rel not in STD_RNG_ALLOWED:
            errors.append(
                f"{rel}:{lineno}: std random engine outside src/sim/random.* "
                f"(use amoeba::sim::Rng for seed-determinism)")
        if (rel.parts[0] == "src" and WALL_CLOCK.search(code)
                and (len(rel.parts) < 2
                     or rel.parts[1] != WALL_CLOCK_EXEMPT_TOPDIR)):
            errors.append(
                f"{rel}:{lineno}: wall-clock read in simulation code "
                f"(use sim::Engine::now(); only src/kernels/ may time "
                f"the host)")
        if rel.parts[0] == "src" and STDOUT_IN_SRC.search(code):
            errors.append(
                f"{rel}:{lineno}: stdout write in library code "
                f"(std::cout/printf): write to a caller-supplied "
                f"std::ostream& instead")

    if path.suffix in (".hpp", ".h"):
        if re.search(r"#\s*ifndef\s+\w+_H(PP)?_?\b", text):
            errors.append(f"{rel}: uses an include guard; this tree "
                          f"standardizes on #pragma once")
        if not saw_pragma_once:
            errors.append(f"{rel}: header missing #pragma once")


def check_cmake_listings(errors: list[str]):
    for top in ("src", "tests", "bench", "examples"):
        root = REPO / top
        cmake = root / "CMakeLists.txt"
        if not root.is_dir() or not cmake.is_file():
            continue
        cmake_text = cmake.read_text()
        listed = set(re.findall(r"[\w/.-]+\.cpp", cmake_text))
        # Helper-function style (`amoeba_bench(fig03_peak_load)`) lists the
        # stem only; accept any bare-word mention of the stem.
        stems = set(re.findall(r"[\w-]+", cmake_text))
        for path in sorted(root.rglob("*.cpp")):
            rel_in_dir = path.relative_to(root).as_posix()
            if rel_in_dir not in listed and path.stem not in stems:
                errors.append(
                    f"{path.relative_to(REPO)}: not listed in "
                    f"{top}/CMakeLists.txt (file would silently drop out "
                    f"of the build)")


def main() -> int:
    errors: list[str] = []
    for path in iter_sources():
        check_file(path, errors)
    check_cmake_listings(errors)
    if errors:
        print(f"lint: {len(errors)} finding(s)", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
