// A full diurnal day of one FunctionBench microservice under Amoeba, with
// the paper's §VII-A background tenants — the headline scenario of
// Figs. 10–13, as a single runnable walk-through.
//
//   ./examples/diurnal_day [benchmark] [period_s]
//
// benchmark ∈ {float, matmul, linpack, dd, cloud_stor} (default: float).
// Profiling artifacts come from the same cache the benches use; the first
// run profiles (one-time, a few minutes of simulated time).
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"

using namespace amoeba;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "float";
  const double period = argc > 2 ? std::atof(argv[2]) : 600.0;

  workload::FunctionProfile fg;
  bool found = false;
  for (const auto& p : workload::functionbench_suite()) {
    if (p.name == which) {
      fg = p;
      found = true;
    }
  }
  if (!found || period <= 0.0) {
    std::cerr << "usage: diurnal_day [float|matmul|linpack|dd|cloud_stor] "
                 "[period_s]\n";
    return 1;
  }

  const auto cluster = bench::bench_cluster();
  const auto prof_cfg = bench::bench_profiling();
  const auto calibration = bench::cached_calibration(cluster, prof_cfg);
  const auto artifacts =
      bench::cached_artifacts(fg, cluster, calibration, prof_cfg);

  auto opt = bench::bench_run_options();
  opt.period_s = period;
  opt.timeline_period_s = period / 48.0;

  std::cout << "running one " << period << " s day of '" << fg.name
            << "' (peak " << fg.peak_load_qps << " qps, QoS "
            << fg.qos_target_s * 1e3 << " ms) under Amoeba...\n";
  const auto amoeba_run = exp::run_managed(
      fg, exp::DeploySystem::kAmoeba, cluster, calibration, artifacts, opt);
  const auto nameko_run = exp::run_managed(
      fg, exp::DeploySystem::kNameko, cluster, calibration, artifacts, opt);

  std::cout << "\nqueries: " << amoeba_run.queries
            << ", p95: " << amoeba_run.p95() * 1e3 << " ms (target "
            << fg.qos_target_s * 1e3 << " ms), violations: "
            << exp::fmt_percent(amoeba_run.violation_fraction()) << "\n";

  std::cout << "\nswitch timeline (paper Fig. 12):\n";
  for (const auto& ev : amoeba_run.switches) {
    std::cout << "  t=" << exp::fmt_fixed(ev.time - opt.warmup_s, 0)
              << "s -> " << core::to_string(ev.to) << " at "
              << exp::fmt_fixed(ev.load_qps, 1) << " qps\n";
  }
  if (amoeba_run.switches.empty()) {
    std::cout << "  (no switches — the load never entered serverless "
                 "territory)\n";
  }

  std::cout << "\nload/mode timeline (mode: 0 = IaaS, 1 = serverless):\n";
  const auto& mode = amoeba_run.timeline.mode;
  const auto& load = amoeba_run.timeline.load_qps;
  if (!mode.empty()) {
    const auto samples =
        mode.resample(mode.points().front().t, opt.warmup_s + period, 24);
    for (const auto& s : samples) {
      const double l = load.value_at(s.t);
      std::cout << "  t=" << exp::fmt_fixed(s.t - opt.warmup_s, 0)
                << "s load=" << exp::fmt_fixed(l, 1) << " qps  mode="
                << (s.value >= 0.5 ? "serverless" : "iaas      ") << "  |";
      const int bars = static_cast<int>(l / fg.peak_load_qps * 40.0);
      for (int i = 0; i < bars; ++i) std::cout << '#';
      std::cout << "\n";
    }
  }

  std::cout << "\nresource usage vs pure IaaS (paper Fig. 11):\n"
            << "  cpu:    " << exp::fmt_fixed(amoeba_run.usage.cpu_core_seconds, 0)
            << " core-s vs " << exp::fmt_fixed(nameko_run.usage.cpu_core_seconds, 0)
            << " core-s  (-"
            << exp::fmt_percent(1.0 - amoeba_run.usage.cpu_core_seconds /
                                          nameko_run.usage.cpu_core_seconds)
            << ")\n"
            << "  memory: "
            << exp::fmt_fixed(amoeba_run.usage.memory_mb_seconds / 1024.0, 0)
            << " GB-s vs "
            << exp::fmt_fixed(nameko_run.usage.memory_mb_seconds / 1024.0, 0)
            << " GB-s  (-"
            << exp::fmt_percent(1.0 - amoeba_run.usage.memory_mb_seconds /
                                          nameko_run.usage.memory_mb_seconds)
            << ")\n";
  return 0;
}
