// Capacity planner: the paper's M/M/N discriminant (Eq. 1–5) as a
// stand-alone sizing tool.
//
//   ./examples/capacity_planner [service_time_s] [qos_target_s] [r]
//
// Prints, for a sweep of container counts, the largest arrival rate λ(μ)
// the serverless pool can hold within the QoS target — the same numbers
// the deployment controller uses to decide a switch — plus the inverse
// question: containers needed for a given load.
#include <cstdlib>
#include <iostream>

#include "core/prewarm_policy.hpp"
#include "core/queueing.hpp"
#include "exp/table.hpp"

using namespace amoeba;

int main(int argc, char** argv) {
  const double service_s = argc > 1 ? std::atof(argv[1]) : 0.12;
  const double qos_s = argc > 2 ? std::atof(argv[2]) : 0.5;
  const double r = argc > 3 ? std::atof(argv[3]) : 0.95;
  if (service_s <= 0.0 || qos_s <= 0.0 || r <= 0.0 || r >= 1.0) {
    std::cerr << "usage: capacity_planner [service_time_s] [qos_target_s] "
                 "[r in (0,1)]\n";
    return 1;
  }
  const double mu = 1.0 / service_s;
  std::cout << "service time " << service_s << " s  (mu = " << mu
            << "/s), QoS target " << qos_s << " s at the " << r * 100
            << "%-ile\n\n";
  if (qos_s <= service_s) {
    std::cout << "target below the service time: no pool size can hold it; "
                 "stay on IaaS.\n";
    return 0;
  }

  exp::Table table({"containers n", "max load λ(μ) qps", "per-container",
                    "Eq.5 fixed point"});
  for (int n : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto lmax = core::queueing::max_arrival_rate(n, mu, qos_s, r);
    const auto eq5 = core::queueing::eq5_lambda(n, mu, qos_s, r);
    table.add_row({std::to_string(n),
                   lmax ? exp::fmt_fixed(*lmax, 2) : "-",
                   lmax ? exp::fmt_fixed(*lmax / n, 2) : "-",
                   eq5 ? exp::fmt_fixed(*eq5, 2) : "-"});
  }
  table.print(std::cout);

  std::cout << "\ninverse: containers needed for a target load\n";
  exp::Table inv({"load qps", "min containers (Eq.5)",
                  "prewarm count (Eq.7)"});
  core::PrewarmPolicy prewarm;
  for (double load : {1.0, 5.0, 20.0, 50.0, 100.0, 200.0}) {
    const auto n = core::queueing::min_servers(load, mu, qos_s, r);
    inv.add_row({exp::fmt_fixed(load, 0), n ? std::to_string(*n) : "-",
                 std::to_string(prewarm.containers_for(load, qos_s))});
  }
  inv.print(std::cout);
  return 0;
}
