// Run the real FunctionBench-style kernels on THIS machine and demonstrate
// the contention-meter principle natively: the same probe gets slower as
// background CPU load rises (the host analogue of paper Fig. 8).
//
//   ./examples/native_kernels
#include <iostream>

#include "exp/table.hpp"
#include "kernels/cloud_stor.hpp"
#include "kernels/dd_io.hpp"
#include "kernels/float_op.hpp"
#include "kernels/linpack.hpp"
#include "kernels/matmul.hpp"
#include "kernels/native_meters.hpp"

using namespace amoeba;

int main() {
  std::cout << "FunctionBench kernels, native run\n\n";
  exp::Table table({"kernel", "work", "time", "throughput", "check"});

  {
    const auto r = kernels::run_float_op(3'000'000, 2);
    table.add_row({"float", "3M transcendental ops",
                   exp::fmt_fixed(r.seconds * 1e3, 1) + " ms",
                   exp::fmt_si(3e6 / r.seconds, 2) + " op/s",
                   exp::fmt_fixed(r.checksum, 1)});
  }
  {
    const auto r = kernels::run_matmul(384, 2);
    table.add_row({"matmul", "384x384 GEMM",
                   exp::fmt_fixed(r.seconds * 1e3, 1) + " ms",
                   exp::fmt_fixed(r.gflops, 2) + " GF/s",
                   exp::fmt_fixed(r.checksum, 1)});
  }
  {
    const auto r = kernels::run_linpack(384, 2);
    table.add_row({"linpack", "384x384 LU solve",
                   exp::fmt_fixed(r.seconds * 1e3, 1) + " ms",
                   exp::fmt_fixed(r.gflops, 2) + " GF/s",
                   "resid " + exp::fmt_fixed(r.normalized_residual, 1)});
  }
  {
    const auto r = kernels::run_dd(32 << 20, 1 << 20);
    table.add_row({"dd", "32 MB write+read",
                   exp::fmt_fixed((r.write_seconds + r.read_seconds) * 1e3, 1) +
                       " ms",
                   exp::fmt_fixed(r.read_mbps, 0) + " MB/s read",
                   r.verified ? "verified" : "CORRUPT"});
  }
  {
    const auto r = kernels::run_cloud_stor(32 << 20, 256 << 10);
    table.add_row({"cloud_stor", "32 MB socket stream",
                   exp::fmt_fixed(r.seconds * 1e3, 1) + " ms",
                   exp::fmt_fixed(r.mbps, 0) + " MB/s",
                   r.verified ? "verified" : "CORRUPT"});
  }
  table.print(std::cout);

  std::cout << "\nnative contention meter (CPU probe) under background "
               "spinners — the host analogue of paper Fig. 8:\n";
  exp::Table meter({"background threads", "mean probe latency", "max"});
  for (const auto& p : kernels::run_meter_under_load(
           kernels::NativeMeterKind::kCpu, {0, 1, 2, 4}, 3)) {
    meter.add_row({std::to_string(p.background_threads),
                   exp::fmt_fixed(p.mean_latency_s * 1e3, 1) + " ms",
                   exp::fmt_fixed(p.max_latency_s * 1e3, 1) + " ms"});
  }
  meter.print(std::cout);
  std::cout << "\nprobe latency rises with co-located load: that inflation,\n"
               "inverted through a calibration curve, is how Amoeba's\n"
               "monitor quantifies contention without platform metrics.\n";
  return 0;
}
