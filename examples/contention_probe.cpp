// Contention probe: watch the multi-resource contention monitor quantify
// pressure on a shared serverless platform as tenants come and go.
//
//   ./examples/contention_probe
//
// Timeline: an idle platform, then a CPU-hungry tenant, then an IO-hungry
// tenant on top, then both leave. The monitor only sees meter latencies —
// the printed "true" columns come from the simulator's ground truth so you
// can judge the estimate.
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/contention_monitor.hpp"
#include "workload/functionbench.hpp"
#include "workload/load_generator.hpp"

using namespace amoeba;

int main() {
  sim::Engine engine;
  sim::Rng rng(7);
  serverless::PlatformConfig cfg;
  cfg.cores = 16.0;
  cfg.pool_memory_mb = 16384.0;
  cfg.disk_bps = 1.5e9;
  cfg.net_bps = 2.0e9;
  cfg.cpu_interference = 0.35;  // gradual CPU-memory degradation
  serverless::ServerlessPlatform platform(engine, cfg, rng.fork(1));

  // Calibration stand-in (see bench/fig08_meter_curves for the real one).
  core::MeterCalibration cal;
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto meter = workload::meter_profile(workload::kAllMeters[d]);
    const double base =
        meter.ideal_serverless_latency(cfg.disk_bps, cfg.net_bps);
    cal.curves[d] = core::MeterCurve({{0.02, base},
                                      {0.30, base * 1.12},
                                      {0.60, base * 1.7},
                                      {0.95, base * 3.5}});
  }

  core::ContentionMonitorConfig mon_cfg;
  mon_cfg.sample_period_s = 5.0;
  core::ContentionMonitor monitor(engine, platform, cal, mon_cfg,
                                  rng.fork(2));

  std::cout << std::fixed << std::setprecision(2);
  std::cout << "  t(s) | est cpu  est io  est net | busy cpu busy io busy net\n"
            << "-------+--------------------------+---------------------------\n";
  double prev_cpu = 0.0, prev_io = 0.0, prev_net = 0.0, prev_t = 0.0;
  monitor.set_on_sample([&] {
    const double now = engine.now();
    const double dt = now - prev_t;
    const double cpu_i = platform.true_cpu_busy_integral(now);
    const double io_i = platform.true_disk_busy_integral(now);
    const double net_i = platform.true_net_busy_integral(now);
    const auto p = monitor.pressures();
    std::cout << std::setw(6) << now << " |" << std::setw(8) << p[0]
              << std::setw(8) << p[1] << std::setw(9) << p[2] << " |"
              << std::setw(9) << (cpu_i - prev_cpu) / dt << std::setw(8)
              << (io_i - prev_io) / dt << std::setw(9)
              << (net_i - prev_net) / dt << "\n";
    prev_cpu = cpu_i;
    prev_io = io_i;
    prev_net = net_i;
    prev_t = now;
  });
  monitor.start();

  // CPU tenant from t=30: ~60% of the cores.
  const auto cpu_tenant = workload::make_stressor(workload::StressKind::kCpu);
  platform.register_function(cpu_tenant);
  auto cpu_gen = std::make_unique<workload::ConstantLoadGenerator>(
      engine, rng.fork(3), 0.6 * cfg.cores / cpu_tenant.exec.cpu_seconds,
      [&] { platform.submit("stress_cpu", [](const workload::QueryRecord&) {}); });
  engine.schedule(30.0, [&] {
    std::cout << "-- t=30: CPU tenant joins (~0.6 pressure)\n";
    cpu_gen->start();
  });

  // IO tenant from t=60: ~50% of the disk.
  const auto io_tenant = workload::make_stressor(workload::StressKind::kDiskIo);
  platform.register_function(io_tenant);
  auto io_gen = std::make_unique<workload::ConstantLoadGenerator>(
      engine, rng.fork(4), 0.5 * cfg.disk_bps / io_tenant.exec.io_bytes,
      [&] { platform.submit("stress_io", [](const workload::QueryRecord&) {}); });
  engine.schedule(60.0, [&] {
    std::cout << "-- t=60: IO tenant joins (~0.5 disk pressure)\n";
    io_gen->start();
  });

  engine.schedule(90.0, [&] {
    std::cout << "-- t=90: both tenants leave\n";
    cpu_gen->stop();
    io_gen->stop();
  });

  engine.run_until(120.0);
  monitor.stop();

  std::cout << "\nthe estimates lag one sample period and saturate at the\n"
               "calibrated range ends — exactly the behaviour the paper's\n"
               "deployment controller is designed around.\n";
  return 0;
}
