// Quickstart: deploy one microservice under Amoeba on a simulated cluster
// and watch it switch between IaaS and serverless as the load swings.
//
//   ./examples/quickstart
//   ./examples/quickstart --trace-out trace.json --metrics-out metrics.jsonl
//   ./examples/quickstart --profile-out profile.jsonl   # self-profile
//
// This is the smallest end-to-end use of the public API:
//   1. build the two platforms (serverless + IaaS) on a simulation engine;
//   2. hand Amoeba a meter calibration and the service's profiled
//      artifacts (here: quick synthetic stand-ins);
//   3. submit queries; Amoeba routes, monitors, predicts and switches.
//
// With --trace-out / --metrics-out / --audit-out / --summary-out the run is
// recorded through the observability layer (see README "Inspecting a run");
// the trace loads directly into ui.perfetto.dev.
#include <iostream>
#include <memory>

#include "core/amoeba.hpp"
#include "obs/exporters.hpp"
#include "obs/profiler.hpp"
#include "workload/load_generator.hpp"
#include "workload/meters.hpp"

using namespace amoeba;

namespace {

/// Synthetic calibration: good enough for a demo; real deployments run
/// exp::profile_meters once on a staging platform (see bench/).
core::MeterCalibration demo_calibration(
    const serverless::PlatformConfig& cfg) {
  core::MeterCalibration cal;
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto meter = workload::meter_profile(workload::kAllMeters[d]);
    const double base =
        meter.ideal_serverless_latency(cfg.disk_bps, cfg.net_bps);
    cal.curves[d] = core::MeterCurve(
        {{0.02, base}, {0.5, base * 1.5}, {0.95, base * 4.0}});
  }
  return cal;
}

core::ServiceArtifacts demo_artifacts(const workload::FunctionProfile& p,
                                      const serverless::PlatformConfig& cfg) {
  core::ServiceArtifacts art;
  art.solo_latency_s = p.ideal_serverless_latency(cfg.disk_bps, cfg.net_bps);
  std::vector<double> ps = {0.0, 1.0};
  std::vector<double> vs = {0.0, 10.0 * p.peak_load_qps};
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const double slope = d == core::kCpuDim ? 1.5 * art.solo_latency_s
                                            : 0.2 * art.solo_latency_s;
    art.surfaces[d] = core::LatencySurface(
        ps, vs,
        {art.solo_latency_s, art.solo_latency_s, art.solo_latency_s + slope,
         art.solo_latency_s + slope});
  }
  art.pressure_per_qps = {p.exec.cpu_seconds / cfg.cores,
                          p.exec.io_bytes / cfg.disk_bps,
                          p.exec.net_bytes / cfg.net_bps};
  return art;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::ExportPaths exports = obs::parse_export_flags(argc, argv);
  obs::Observer observer{obs::ObsConfig{}};

  // Optional self-profile of the simulator (--profile-out): wall time per
  // domain, bucketed by sim time. Attaching it leaves the run bit-identical.
  std::unique_ptr<obs::Profiler> profiler;
  if (!exports.profile.empty()) {
    profiler = std::make_unique<obs::Profiler>();
  }
  obs::ProfilerAttach prof_attach(profiler.get());
  {
    // Everything inside this block (setup, the run, collection) is
    // attributed to the kHarness domain unless a nested scope claims it;
    // the block closes before the profile is reported below.
    AMOEBA_PROF_SCOPE(kHarness);

    // 1. The simulated node (Table II of the paper, shrunk for the demo).
    sim::Engine engine;
    if (profiler) engine.set_profiler(profiler.get());
    sim::Rng rng(2020);
    serverless::PlatformConfig sp_cfg;
    sp_cfg.cores = 16.0;
    sp_cfg.pool_memory_mb = 8192.0;
    serverless::ServerlessPlatform serverless_node(engine, sp_cfg, rng.fork(1));
    iaas::IaasPlatform iaas_node(engine, iaas::IaasConfig{}, rng.fork(2));

    // 2. The managed microservice and the Amoeba runtime.
    workload::FunctionProfile svc;
    svc.name = "hello";
    svc.exec = {.cpu_seconds = 0.06, .io_bytes = 0.0, .net_bytes = 0.0};
    svc.code_bytes = 2e6;
    svc.result_bytes = 2e4;
    svc.platform_overhead_s = 0.015;
    svc.rpc_overhead_s = 0.002;
    svc.memory_mb = 256.0;
    svc.qos_target_s = 0.4;
    svc.peak_load_qps = 60.0;
    svc.validate();

    iaas::VmSpec vm;
    vm.cores = 6.0;
    vm.memory_mb = 4096.0;
    vm.boot_s = 20.0;

    core::AmoebaConfig cfg;
    cfg.monitor.sample_period_s = 5.0;
    if (exports.any()) cfg.observer = &observer;
    core::AmoebaRuntime amoeba_rt(engine, serverless_node, iaas_node,
                                  demo_calibration(sp_cfg), cfg, rng.fork(3));
    // Cap the service at its VM-equivalent share of the pool (paper §IV-A's
    // n_max): the discriminant then correctly sends the surge back to IaaS.
    amoeba_rt.add_service(svc, vm, demo_artifacts(svc, sp_cfg),
                          static_cast<int>(vm.cores));
    amoeba_rt.start();

    // 3. A load that starts low (serverless territory), surges (back to
    //    IaaS), and ebbs again.
    std::uint64_t completed = 0;
    stats::SampleSet latencies;
    auto gen = std::make_unique<workload::ConstantLoadGenerator>(
        engine, rng.fork(4), 4.0, [&] {
          amoeba_rt.submit("hello", [&](const workload::QueryRecord& r) {
            ++completed;
            latencies.add(r.latency());
          });
        });
    engine.schedule(25.0, [&] { gen->start(); });
    engine.schedule(200.0, [&] { gen->set_rate(70.0); });
    engine.schedule(350.0, [&] { gen->set_rate(4.0); });
    engine.run_until(500.0);
    gen->stop();
    amoeba_rt.stop();

    // 4. What happened.
    std::cout << "queries completed : " << completed << "\n";
    std::cout << "p95 latency       : " << latencies.quantile(0.95) * 1e3
              << " ms (target " << svc.qos_target_s * 1e3 << " ms)\n";
    std::cout << "switch events:\n";
    for (const auto& ev : amoeba_rt.switch_events()) {
      std::cout << "  t=" << ev.time << "s  -> " << core::to_string(ev.to)
                << "  (load " << ev.load_qps << " qps)\n";
    }
    const auto usage = amoeba_rt.accountant().usage("hello", engine.now());
    std::cout << "resource usage    : " << usage.cpu_core_seconds
              << " core-s, " << usage.memory_mb_seconds / 1024.0
              << " GB-s\n";
    std::cout << "(pure IaaS would have rented "
              << vm.cores * (engine.now() - 20.0) << " core-s)\n";

  }
  // 5. Export the run's observability artifacts, if asked for.
  obs::write_exports(observer, exports, std::cout);
  if (profiler) {
    obs::write_profile_exports(*profiler, exports.profile, std::cout);
  }
  return 0;
}
