// Fig. 15 — average error of the discriminant function λ(μ): the switch
// point predicted by Eq. 5/6 versus the real one found by enumeration on
// the simulator, with PCA calibration (Amoeba) and without (Amoeba-NoM).
// Paper: Amoeba 2.8–8.3% error, NoM 9.1–25.8%.
#include <iostream>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "core/deployment_controller.hpp"
#include "workload/load_generator.hpp"

namespace {

using namespace amoeba;

constexpr int kContainerCap = 32;  // same n for prediction and enumeration

/// Fixed contention scenario: the §VII-A background trio at constant load.
struct Background {
  std::vector<workload::FunctionProfile> profiles;
  std::vector<double> qps;
};

Background make_background(const exp::ClusterConfig& cluster) {
  // A steady, controlled contention mix: the three stressors at moderate
  // known pressures. The discriminant study regime in the paper's Fig. 15
  // is routine operation, not the saturation cliff.
  Background bg;
  const double targets[] = {0.25, 0.25, 0.20};
  const workload::StressKind kinds[] = {workload::StressKind::kCpu,
                                        workload::StressKind::kDiskIo,
                                        workload::StressKind::kNetwork};
  for (int i = 0; i < 3; ++i) {
    bg.profiles.push_back(workload::make_stressor(kinds[i]));
    bg.qps.push_back(
        exp::stressor_load_for_pressure(kinds[i], targets[i], cluster));
  }
  return bg;
}

/// p95 end-to-end latency of `subject` at `qps` with the background
/// resident; nullopt when the system is clearly unstable.
std::optional<double> p95_with_background(
    const workload::FunctionProfile& subject, double qps,
    const Background& bg, const exp::ClusterConfig& cluster,
    std::uint64_t seed) {
  sim::Engine engine;
  sim::Rng rng(seed);
  serverless::ServerlessPlatform sp(engine, cluster.serverless, rng.fork(1));
  sp.register_function(subject, kContainerCap);
  sp.prewarm(subject.name, kContainerCap / 2);
  std::vector<std::unique_ptr<workload::ConstantLoadGenerator>> gens;
  for (std::size_t i = 0; i < bg.profiles.size(); ++i) {
    sp.register_function(bg.profiles[i]);
    const std::string name = bg.profiles[i].name;
    gens.push_back(std::make_unique<workload::ConstantLoadGenerator>(
        engine, rng.fork(10 + i), bg.qps[i], [&sp, name] {
          sp.submit(name, [](const workload::QueryRecord&) {});
        }));
    gens.back()->start();
  }
  stats::SampleSet lat;
  workload::ConstantLoadGenerator gen(engine, rng.fork(2), qps, [&] {
    sp.submit(subject.name, [&lat](const workload::QueryRecord& r) {
      if (r.arrival >= 10.0) lat.add(r.latency());
    });
  });
  engine.schedule(4.0, [&gen] { gen.start(); });
  engine.run_until(50.0);
  gen.stop();
  for (auto& g : gens) g->stop();
  engine.run();
  if (lat.size() < 40) return std::nullopt;
  return lat.quantile(0.95);
}

/// Enumerated (ground-truth) switch point λ_real.
double lambda_real(const workload::FunctionProfile& subject,
                   const Background& bg, const exp::ClusterConfig& cluster) {
  double lo = 0.5, hi = subject.peak_load_qps * 1.5;
  // Grow the bound until infeasible so the bisection brackets the boundary.
  for (int i = 0; i < 6; ++i) {
    const auto p95 =
        p95_with_background(subject, hi, bg, cluster, cluster.seed + 400);
    if (!p95.has_value() || *p95 > subject.qos_target_s) break;
    lo = hi;
    hi *= 1.6;
  }
  for (int i = 0; i < 11; ++i) {
    const double mid = 0.5 * (lo + hi);
    const auto p95 = p95_with_background(subject, mid, bg, cluster,
                                         cluster.seed + 500 + static_cast<unsigned>(i));
    if (p95.has_value() && *p95 <= subject.qos_target_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Pressures the monitor would report for this background (probe meters on
/// the loaded platform, invert the calibration).
std::array<double, core::kNumResources> measured_pressures(
    const Background& bg, const exp::ClusterConfig& cluster,
    const core::MeterCalibration& cal) {
  sim::Engine engine;
  sim::Rng rng(cluster.seed ^ 0xfeedu);
  serverless::ServerlessPlatform sp(engine, cluster.serverless, rng.fork(1));
  std::vector<std::unique_ptr<workload::ConstantLoadGenerator>> gens;
  for (std::size_t i = 0; i < bg.profiles.size(); ++i) {
    sp.register_function(bg.profiles[i]);
    const std::string name = bg.profiles[i].name;
    gens.push_back(std::make_unique<workload::ConstantLoadGenerator>(
        engine, rng.fork(10 + i), bg.qps[i], [&sp, name] {
          sp.submit(name, [](const workload::QueryRecord&) {});
        }));
    gens.back()->start();
  }
  std::array<double, core::kNumResources> sums{};
  std::array<std::uint64_t, core::kNumResources> counts{};
  std::vector<std::unique_ptr<workload::ConstantLoadGenerator>> probes;
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto meter = workload::meter_profile(workload::kAllMeters[d]);
    sp.register_function(meter);
    const std::string name = meter.name;
    probes.push_back(std::make_unique<workload::ConstantLoadGenerator>(
        engine, rng.fork(20 + d), workload::kMeterProbeQps, [&, d, name] {
          sp.submit(name, [&, d](const workload::QueryRecord& r) {
            if (r.arrival < 10.0) return;
            sums[d] += r.breakdown.total() - r.breakdown.queue_s -
                       r.breakdown.cold_start_s;
            counts[d] += 1;
          });
        }));
    probes.back()->start();
  }
  engine.run_until(70.0);
  for (auto& g : gens) g->stop();
  for (auto& g : probes) g->stop();
  engine.run();
  std::array<double, core::kNumResources> out{};
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto meter = workload::meter_profile(workload::kAllMeters[d]);
    // Subtract the probe's own share, as the contention monitor does.
    double self = 0.0;
    switch (d) {
      case core::kCpuDim:
        self = meter.exec.cpu_seconds / cluster.serverless.cores;
        break;
      case core::kIoDim:
        self = (meter.exec.io_bytes + meter.code_bytes) /
               cluster.serverless.io_efficiency / cluster.serverless.disk_bps;
        break;
      default:
        self = (meter.exec.net_bytes + meter.result_bytes) /
               cluster.serverless.net_efficiency / cluster.serverless.net_bps;
        break;
    }
    const double floor = cal.curves[d]->points().front().pressure;
    out[d] = counts[d] > 0
                 ? std::max(floor, cal.curves[d]->pressure_for(
                                       sums[d] /
                                       static_cast<double>(counts[d])) -
                                       self)
                 : floor;
  }
  return out;
}

/// Heartbeat samples for calibrating the weight estimator: co-located runs
/// at a few loads, recording mean service latency.
void calibrate(core::DeploymentController& ctrl,
               const workload::FunctionProfile& subject, const Background& bg,
               const exp::ClusterConfig& cluster,
               const core::MeterCalibration& cal) {
  // Heartbeats across several loads AND background intensities, like the
  // runtime's continuous mirrored sampling through a changing day. Each
  // intensity is measured through the meters (full pipeline).
  int salt = 0;
  for (double bg_scale : {0.5, 1.0, 1.5}) {
    Background scaled = bg;
    for (auto& q : scaled.qps) q *= bg_scale;
    const auto pressures = measured_pressures(scaled, cluster, cal);
    for (double frac : {0.15, 0.35, 0.55, 0.75}) {
      const double qps = frac * subject.peak_load_qps;
      sim::Engine engine;
      sim::Rng rng(cluster.seed + 900 + static_cast<unsigned>(salt++));
      serverless::ServerlessPlatform sp(engine, cluster.serverless,
                                        rng.fork(1));
      sp.register_function(subject, kContainerCap);
      std::vector<std::unique_ptr<workload::ConstantLoadGenerator>> gens;
      for (std::size_t i = 0; i < scaled.profiles.size(); ++i) {
        sp.register_function(scaled.profiles[i]);
        const std::string name = scaled.profiles[i].name;
        gens.push_back(std::make_unique<workload::ConstantLoadGenerator>(
            engine, rng.fork(10 + i), scaled.qps[i], [&sp, name] {
              sp.submit(name, [](const workload::QueryRecord&) {});
            }));
        gens.back()->start();
      }
      stats::SampleSet cell;
      workload::ConstantLoadGenerator gen(engine, rng.fork(2), qps, [&] {
        sp.submit(subject.name, [&](const workload::QueryRecord& r) {
          if (r.arrival < 10.0) return;
          cell.add(r.breakdown.total() - r.breakdown.queue_s -
                   r.breakdown.cold_start_s);
        });
      });
      gen.start();
      engine.run_until(40.0);
      gen.stop();
      for (auto& g : gens) g->stop();
      engine.run();
      // Surfaces (and L0) are tail statistics; feed the estimator the
      // cell's p95 so features and targets share semantics.
      if (cell.size() >= 20) {
        const double p95 = cell.quantile(0.95);
        for (int rep = 0; rep < 4; ++rep) {
          ctrl.observe_latency(subject.name, qps, pressures, p95);
        }
      }
    }
  }
}

/// Predicted switch point: the largest λ the discriminant itself declares
/// safe, i.e. the crossing of λ <= λ_max(features(P, λ)). The surfaces
/// make λ_max load-dependent, so bisect on feasibility.
double lambda_predicted(core::DeploymentController& ctrl,
                        const workload::FunctionProfile& subject,
                        const std::array<double, core::kNumResources>& p) {
  auto feasible = [&](double lambda) {
    const auto ev = ctrl.evaluate(subject.name, lambda, p, kContainerCap,
                                  /*resident=*/false);
    return ev.lambda_max.has_value() && *ev.lambda_max >= lambda;
  };
  double lo = 0.0;
  double hi = 4.0 * subject.peak_load_qps;
  if (!feasible(0.1)) return 0.0;
  if (feasible(hi)) return hi;
  for (int i = 0; i < 24; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 15",
                    "discriminant error |λ(μ_n) − λ_real| / λ_real");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto bg = make_background(cluster);
  const auto pressures = measured_pressures(bg, cluster, cal);
  std::cout << "measured background pressures: cpu="
            << exp::fmt_fixed(pressures[0], 2)
            << " io=" << exp::fmt_fixed(pressures[1], 2)
            << " net=" << exp::fmt_fixed(pressures[2], 2) << "\n";

  exp::Table table({"benchmark", "λ_real (qps)", "λ Amoeba", "err Amoeba",
                    "λ NoM", "err NoM"});
  double worst_amoeba = 0.0, worst_nom = 0.0;
  for (const auto& p : workload::functionbench_suite()) {
    const auto art = bench::cached_artifacts(p, cluster, cal, prof);
    const double real = lambda_real(p, bg, cluster);

    core::ControllerConfig ctrl_cfg;
    core::DeploymentController amoeba_ctrl(ctrl_cfg);
    amoeba_ctrl.add_service(p.name, p.qos_target_s, art);
    calibrate(amoeba_ctrl, p, bg, cluster, cal);

    core::DeploymentController nom_ctrl(ctrl_cfg);
    core::WeightEstimatorConfig nom_est;
    nom_est.enable_pca = false;
    nom_ctrl.add_service(p.name, p.qos_target_s, art, nom_est);

    const double pred_amoeba = lambda_predicted(amoeba_ctrl, p, pressures);
    const double pred_nom = lambda_predicted(nom_ctrl, p, pressures);
    const double err_amoeba = std::abs(pred_amoeba - real) / real;
    const double err_nom = std::abs(pred_nom - real) / real;
    worst_amoeba = std::max(worst_amoeba, err_amoeba);
    worst_nom = std::max(worst_nom, err_nom);
    table.add_row({p.name, exp::fmt_fixed(real, 1),
                   exp::fmt_fixed(pred_amoeba, 1),
                   exp::fmt_percent(err_amoeba), exp::fmt_fixed(pred_nom, 1),
                   exp::fmt_percent(err_nom)});
  }
  table.print(std::cout);
  std::cout << "\nmax error: Amoeba " << exp::fmt_percent(worst_amoeba)
            << " vs NoM " << exp::fmt_percent(worst_nom)
            << "\npaper's shape: calibration shrinks the error on every\n"
               "benchmark (paper: max 25.8% -> 8.3%).\n";
  return 0;
}
