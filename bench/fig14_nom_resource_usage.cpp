// Fig. 14 — ablation of the PCA contention monitor: Amoeba-NoM assumes
// per-resource degradations accumulate, over-predicts serverless latency,
// switches to serverless later, and therefore burns more IaaS resources.
// Paper: NoM uses up to 1.77x the CPU and 2.38x the memory of Amoeba.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 14",
                    "Amoeba vs Amoeba-NoM resource usage (vs Nameko)");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto opt = bench::bench_run_options();

  exp::Table table({"benchmark", "cpu Amoeba", "cpu NoM", "NoM/Amoeba",
                    "mem Amoeba", "mem NoM", "NoM/Amoeba"});
  for (const auto& p : workload::functionbench_suite()) {
    const auto art = bench::cached_artifacts(p, cluster, cal, prof);
    const auto amoeba_run = exp::run_managed(p, exp::DeploySystem::kAmoeba,
                                             cluster, cal, art, opt);
    const auto nom_run = exp::run_managed(p, exp::DeploySystem::kAmoebaNoM,
                                          cluster, cal, art, opt);
    const auto nameko_run = exp::run_managed(p, exp::DeploySystem::kNameko,
                                             cluster, cal, art, opt);
    const double cpu_a = amoeba_run.usage.cpu_core_seconds /
                         nameko_run.usage.cpu_core_seconds;
    const double cpu_n =
        nom_run.usage.cpu_core_seconds / nameko_run.usage.cpu_core_seconds;
    const double mem_a = amoeba_run.usage.memory_mb_seconds /
                         nameko_run.usage.memory_mb_seconds;
    const double mem_n = nom_run.usage.memory_mb_seconds /
                         nameko_run.usage.memory_mb_seconds;
    table.add_row({p.name, exp::fmt_fixed(cpu_a, 3), exp::fmt_fixed(cpu_n, 3),
                   exp::fmt_fixed(cpu_n / cpu_a, 2) + "x",
                   exp::fmt_fixed(mem_a, 3), exp::fmt_fixed(mem_n, 3),
                   exp::fmt_fixed(mem_n / mem_a, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\npaper's shape: NoM >= Amoeba on every benchmark (up to\n"
               "1.77x CPU / 2.38x memory) — the pessimistic accumulation\n"
               "delays the profitable switch to serverless.\n";
  return 0;
}
