// Fig. 14 — ablation of the PCA contention monitor: Amoeba-NoM assumes
// per-resource degradations accumulate, over-predicts serverless latency,
// switches to serverless later, and therefore burns more IaaS resources.
// Paper: NoM uses up to 1.77x the CPU and 2.38x the memory of Amoeba.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 14",
                    "Amoeba vs Amoeba-NoM resource usage (vs Nameko)");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto opt = bench::bench_run_options();

  const auto suite = workload::functionbench_suite();
  std::vector<core::ServiceArtifacts> arts;
  arts.reserve(suite.size());
  for (const auto& p : suite) {
    arts.push_back(bench::cached_artifacts(p, cluster, cal, prof));
  }
  const exp::DeploySystem systems[] = {exp::DeploySystem::kAmoeba,
                                       exp::DeploySystem::kAmoebaNoM,
                                       exp::DeploySystem::kNameko};
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map_indexed<exp::ManagedRunResult>(
      suite.size() * 3, [&](std::size_t i) {
        return exp::run_managed(suite[i / 3], systems[i % 3], cluster, cal,
                                arts[i / 3], opt);
      });

  exp::Table table({"benchmark", "cpu Amoeba", "cpu NoM", "NoM/Amoeba",
                    "mem Amoeba", "mem NoM", "NoM/Amoeba"});
  for (std::size_t b = 0; b < suite.size(); ++b) {
    const auto& amoeba_run = runs[b * 3];
    const auto& nom_run = runs[b * 3 + 1];
    const auto& nameko_run = runs[b * 3 + 2];
    const double cpu_a = amoeba_run.usage.cpu_core_seconds /
                         nameko_run.usage.cpu_core_seconds;
    const double cpu_n =
        nom_run.usage.cpu_core_seconds / nameko_run.usage.cpu_core_seconds;
    const double mem_a = amoeba_run.usage.memory_mb_seconds /
                         nameko_run.usage.memory_mb_seconds;
    const double mem_n = nom_run.usage.memory_mb_seconds /
                         nameko_run.usage.memory_mb_seconds;
    table.add_row({suite[b].name, exp::fmt_fixed(cpu_a, 3),
                   exp::fmt_fixed(cpu_n, 3),
                   exp::fmt_fixed(cpu_n / cpu_a, 2) + "x",
                   exp::fmt_fixed(mem_a, 3), exp::fmt_fixed(mem_n, 3),
                   exp::fmt_fixed(mem_n / mem_a, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\npaper's shape: NoM >= Amoeba on every benchmark (up to\n"
               "1.77x CPU / 2.38x memory) — the pessimistic accumulation\n"
               "delays the profitable switch to serverless.\n";
  return 0;
}
