// Ablation: fault tolerance of the hardened switch protocol — sweeps the
// injected infrastructure failure rate and reports tail latency alongside
// the protocol's retry/abort behaviour. Doubles as the determinism gate
// for fault injection: every configuration runs twice under the same seed
// and the executed event traces must hash identically (nonzero exit
// otherwise), so CI catches any fault path that draws randomness outside
// the injector's forked streams.
//
// Flags: --jobs N (parallel sweep), --smoke (scaled-down run for CI).
#include <cstring>
#include <iostream>
#include <utility>
#include <vector>

#include "bench_common.hpp"

namespace {

bool parse_smoke_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const bool smoke = parse_smoke_flag(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Ablation", "fault tolerance (float)");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto p = workload::make_float();
  const auto art = bench::cached_artifacts(p, cluster, cal, prof);
  auto base_opt = bench::bench_run_options();
  if (smoke) base_opt.period_s = 720.0;  // shorter compressed day for CI

  const std::vector<double> rates = {0.0, 0.05, 0.15, 0.30};
  struct RateResult {
    exp::ManagedRunResult run;
    bool deterministic = false;
  };
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map<RateResult>(rates, [&](double rate) {
    auto opt = base_opt;
    opt.faults.container_boot_failure_p = rate;
    opt.faults.container_straggler_p = rate / 2.0;
    opt.faults.vm_boot_failure_p = rate;
    opt.faults.meter_drop_p = rate / 2.0;
    opt.faults.meter_outlier_p = rate / 4.0;
    auto a = exp::run_managed(p, exp::DeploySystem::kAmoeba, cluster, cal,
                              art, opt);
    const auto b = exp::run_managed(p, exp::DeploySystem::kAmoeba, cluster,
                                    cal, art, opt);
    const bool same = a.trace_hash == b.trace_hash &&
                      a.fault_counters.total() == b.fault_counters.total();
    return RateResult{std::move(a), same};
  });

  exp::Table table({"fail rate", "p95/QoS", "violations", "switches",
                    "aborts", "retries", "faults", "same-seed hash"});
  bool all_deterministic = true;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& r = runs[i];
    all_deterministic = all_deterministic && r.deterministic;
    table.add_row({exp::fmt_percent(rates[i]),
                   exp::fmt_fixed(r.run.p95() / p.qos_target_s, 2),
                   exp::fmt_percent(r.run.violation_fraction()),
                   std::to_string(r.run.switches.size()),
                   std::to_string(r.run.switch_aborts),
                   std::to_string(r.run.switch_retries),
                   std::to_string(r.run.fault_counters.total()),
                   r.deterministic ? "match" : "MISMATCH"});
  }
  table.print(std::cout);
  std::cout << "\nexpected: p95 degrades gracefully with the failure rate;\n"
               "aborted switches stay on the healthy platform (no outage)\n"
               "and every same-seed pair of runs hashes identically.\n";
  if (!all_deterministic) {
    std::cerr << "FAIL: fault-injected runs diverged under the same seed\n";
    return 1;
  }
  return 0;
}
