// Fig. 13 — resource-usage timeline under Amoeba for float and dd.
// float (tight QoS, big just-enough VM) shows abrupt usage steps at the
// switches; dd (loose QoS relative to its execution) changes smoothly
// with load.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace amoeba;

void usage_timeline(const workload::FunctionProfile& p,
                    const exp::ClusterConfig& cluster,
                    const core::MeterCalibration& cal,
                    const exp::ProfilingConfig& prof) {
  auto opt = bench::bench_run_options();
  opt.timeline_period_s = opt.period_s / 64.0;
  const auto art = bench::cached_artifacts(p, cluster, cal, prof);
  const auto r = exp::run_managed(p, exp::DeploySystem::kAmoeba, cluster,
                                  cal, art, opt);

  std::cout << "\n== " << p.name << " — instantaneous resource usage\n";
  exp::Table table({"t (s)", "mode", "load (qps)", "cpu rate (cores)",
                    "memory (MB)"});
  const auto& cpu = r.timeline.cpu_core_seconds;  // cumulative
  const auto& mem = r.timeline.memory_mb_seconds; // cumulative
  const auto& mode = r.timeline.mode;
  if (cpu.size() < 3) {
    std::cout << "(no timeline captured)\n";
    return;
  }
  const auto& pts = cpu.points();
  const auto& mpts = mem.points();
  // Differentiate the cumulative integrals over ~8-sample strides.
  const std::size_t stride = 2;
  for (std::size_t i = stride; i < pts.size(); i += stride) {
    const double dt = pts[i].t - pts[i - stride].t;
    if (dt <= 0.0) continue;
    const double cpu_rate = (pts[i].value - pts[i - stride].value) / dt;
    const double mem_mb = (mpts[i].value - mpts[i - stride].value) / dt;
    table.add_row(
        {exp::fmt_fixed(pts[i].t - 40.0, 0),
         mode.value_at(pts[i].t) >= 0.5 ? "serverless" : "iaas",
         exp::fmt_fixed(r.timeline.load_qps.value_at(pts[i].t), 1),
         exp::fmt_fixed(cpu_rate, 2), exp::fmt_fixed(mem_mb, 0)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 13",
                    "resource-usage timeline under Amoeba (float, dd)");
  const auto cal = bench::cached_calibration(cluster, prof);
  usage_timeline(workload::make_float(), cluster, cal, prof);
  usage_timeline(workload::make_dd(), cluster, cal, prof);
  std::cout << "\npaper's shape: float jumps between the VM's full rent and\n"
               "the containers' small footprint (abrupt); dd's usage follows\n"
               "its load smoothly while serverless.\n";
  return 0;
}
