// Microbenchmarks of the controller's queueing math — these run on every
// sample period for every service, so they must be cheap.
#include <benchmark/benchmark.h>

#include "core/queueing.hpp"

namespace {

using namespace amoeba::core::queueing;

void BM_ErlangC(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double lambda = 0.8 * n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(erlang_c(lambda, n, 1.0));
  }
}
BENCHMARK(BM_ErlangC)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_WaitQuantile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wait_quantile(0.85 * n, n, 1.0, 0.95));
  }
}
BENCHMARK(BM_WaitQuantile)->Arg(8)->Arg(128)->Arg(1024);

void BM_MaxArrivalRate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_arrival_rate(n, 2.0, 1.0, 0.95));
  }
}
BENCHMARK(BM_MaxArrivalRate)->Arg(8)->Arg(64)->Arg(512);

void BM_Eq5FixedPoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eq5_lambda(n, 2.0, 1.0, 0.95));
  }
}
BENCHMARK(BM_Eq5FixedPoint)->Arg(8)->Arg(64)->Arg(512);

void BM_MinServers(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_servers(100.0, 2.0, 1.0, 0.95));
  }
}
BENCHMARK(BM_MinServers);

}  // namespace
