// Fig. 10 — cumulative distribution of query latencies normalized to the
// QoS target, for each benchmark under Amoeba, Nameko (pure IaaS) and
// OpenWhisk (pure serverless), with the §VII-A background tenants.
//
// Paper's shape: Amoeba and Nameko keep the 95%-ile below 1.0 (the
// target); OpenWhisk violates for the contention-sensitive benchmarks;
// Amoeba's curve hugs OpenWhisk's at short latencies (serverless at low
// load) and Nameko's in the tail (IaaS at high load).
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 10",
                    "latency CDF normalized to the QoS target");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto opt = bench::bench_run_options();
  const exp::DeploySystem systems[] = {exp::DeploySystem::kAmoeba,
                                       exp::DeploySystem::kNameko,
                                       exp::DeploySystem::kOpenWhisk};
  const std::size_t nsys = std::size(systems);
  const double quantiles[] = {0.50, 0.75, 0.90, 0.95, 0.99};

  // Warm the profile cache serially (it writes shared files), then fan the
  // benchmark x system grid out over the sweep executor. Results come back
  // in cell order, so the tables are identical at any --jobs.
  const auto suite = workload::functionbench_suite();
  std::vector<core::ServiceArtifacts> arts;
  arts.reserve(suite.size());
  for (const auto& p : suite) {
    arts.push_back(bench::cached_artifacts(p, cluster, cal, prof));
  }
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map_indexed<exp::ManagedRunResult>(
      suite.size() * nsys, [&](std::size_t i) {
        return exp::run_managed(suite[i / nsys], systems[i % nsys], cluster,
                                cal, arts[i / nsys], opt);
      });

  for (std::size_t b = 0; b < suite.size(); ++b) {
    const auto& p = suite[b];
    std::cout << "\n== " << p.name << " (QoS " << p.qos_target_s * 1e3
              << " ms, peak " << p.peak_load_qps << " qps)\n";
    exp::Table table({"system", "p50/QoS", "p75/QoS", "p90/QoS", "p95/QoS",
                      "p99/QoS", "violations"});
    for (std::size_t s = 0; s < nsys; ++s) {
      const auto& r = runs[b * nsys + s];
      std::vector<std::string> row = {exp::to_string(systems[s])};
      for (const double q : quantiles) {
        row.push_back(
            exp::fmt_fixed(r.latencies.quantile(q) / p.qos_target_s, 2));
      }
      row.push_back(exp::fmt_percent(r.violation_fraction()));
      table.add_row(row);
    }
    table.print(std::cout);
  }
  std::cout << "\npaper's shape: p95/QoS < 1 for Amoeba and Nameko on every\n"
               "benchmark; OpenWhisk exceeds 1 for the contention-sensitive\n"
               "ones (matmul, dd, cloud_stor in the paper).\n";
  return 0;
}
