// Shared setup for the figure/table benches.
//
// Every bench binary must run standalone (`for b in build/bench/*; do $b;
// done`), so profiling artifacts are cached on disk after the first bench
// computes them. All benches share the Table II cluster and the same
// profiling grid, making their artifacts interchangeable.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/artifact_cache.hpp"
#include "exp/profiling.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"
#include "obs/exporters.hpp"
#include "obs/profiler.hpp"
#include "obs/json.hpp"

namespace amoeba::bench {

/// Ordered flat JSON object writer for the machine-readable BENCH_*.json
/// artifacts (events/sec, wall-clock, speedups). Insertion order is
/// preserved so the artifacts diff cleanly across runs.
class BenchJson {
 public:
  void add(const std::string& key, double value) {
    members_.emplace_back(key, obs::json_number(value));
  }
  void add(const std::string& key, bool value) {
    members_.emplace_back(key, value ? "true" : "false");
  }
  void add(const std::string& key, const std::string& value) {
    // Built piecewise: `"\"" + s + "\""` trips GCC 12's -Wrestrict false
    // positive through the rvalue operator+ overload.
    std::string quoted;
    quoted += '"';
    quoted += obs::json_escape(value);
    quoted += '"';
    members_.emplace_back(key, std::move(quoted));
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\n  \"";
      out += obs::json_escape(members_[i].first);
      out += "\": ";
      out += members_[i].second;
    }
    out += "\n}\n";
    return out;
  }

  /// Write to `path`; returns false (with a note on stderr) on I/O failure.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "BENCH json: cannot open " << path << "\n";
      return false;
    }
    out << str();
    return static_cast<bool>(out);
  }

 private:
  std::vector<std::pair<std::string, std::string>> members_;
};

inline exp::ClusterConfig bench_cluster() { return exp::default_cluster(); }

inline exp::ProfilingConfig bench_profiling() {
  exp::ProfilingConfig cfg;
  cfg.pressure_grid = {0.02, 0.2, 0.4, 0.6, 0.8, 0.92};
  cfg.load_fractions = {0.05, 0.25, 0.5, 0.75, 1.0};
  cfg.cell_duration_s = 60.0;
  cfg.warmup_s = 10.0;
  cfg.solo_probe_qps = 2.0;
  return cfg;
}

inline std::string cache_tag(const exp::ClusterConfig& cluster,
                             const exp::ProfilingConfig& cfg,
                             const std::string& extra = {}) {
  std::ostringstream os;
  os << "cluster:" << cluster.serverless.cores << '/'
     << cluster.serverless.pool_memory_mb << '/'
     << cluster.serverless.disk_bps << '/' << cluster.serverless.net_bps
     << '/' << cluster.serverless.cold_start_mean_s << '/'
     << cluster.serverless.cpu_interference << '/'
     << cluster.serverless.io_efficiency << '/'
     << cluster.serverless.keep_alive_s << '/' << cluster.seed
     << " grid:" << cfg.pressure_grid.size() << 'x'
     << cfg.load_fractions.size() << '/' << cfg.cell_duration_s;
  if (!extra.empty()) os << ' ' << extra;
  return os.str();
}

inline std::string profile_tag(const workload::FunctionProfile& p) {
  std::ostringstream os;
  os << p.name << ':' << p.exec.cpu_seconds << '/' << p.exec.io_bytes << '/'
     << p.exec.net_bytes << '/' << p.peak_load_qps << '/' << p.qos_target_s;
  return os.str();
}

/// Meter calibration, cached on disk.
inline core::MeterCalibration cached_calibration(
    const exp::ClusterConfig& cluster, const exp::ProfilingConfig& cfg) {
  const std::string path = exp::default_cache_dir() + "/meters.txt";
  std::string meters_id;
  for (auto kind : workload::kAllMeters) {
    meters_id += ' ';
    meters_id += profile_tag(workload::meter_profile(kind));
  }
  const std::string tag = cache_tag(cluster, cfg, meters_id);
  if (auto hit = exp::load_calibration(path, tag)) {
    std::cerr << "[profile-cache] meters: hit\n";
    return *hit;
  }
  std::cerr << "[profile-cache] meters: profiling (one-time)...\n";
  auto cal = exp::profile_meters(cluster, cfg);
  exp::save_calibration(path, tag, cal);
  return cal;
}

/// Per-service artifacts, cached on disk.
inline core::ServiceArtifacts cached_artifacts(
    const workload::FunctionProfile& p, const exp::ClusterConfig& cluster,
    const core::MeterCalibration& calibration,
    const exp::ProfilingConfig& cfg) {
  const std::string path =
      exp::default_cache_dir() + "/service_" + p.name + ".txt";
  const std::string tag = cache_tag(cluster, cfg, profile_tag(p));
  if (auto hit = exp::load_artifacts(path, tag)) {
    std::cerr << "[profile-cache] " << p.name << ": hit\n";
    return *hit;
  }
  std::cerr << "[profile-cache] " << p.name
            << ": profiling (one-time)...\n";
  auto art = exp::profile_service(p, cluster, calibration, cfg);
  exp::save_artifacts(path, tag, art);
  return art;
}

/// Per-run observability hookup for benches: parse the shared
/// --trace-out/--metrics-out/--audit-out/--summary-out/--profile-out flags
/// once, attach a fresh Observer (and, with --profile-out, a fresh
/// obs::Profiler) to each managed run, and export with a per-run suffix so
/// one flag set covers several runs (fig12 runs float and dd back to back).
class BenchObservability {
 public:
  BenchObservability(int argc, char** argv)
      : paths_(obs::parse_export_flags(argc, argv)) {}

  [[nodiscard]] bool active() const { return paths_.any(); }
  [[nodiscard]] bool profiling() const { return !paths_.profile.empty(); }

  /// A fresh observer for the next run; nullptr when no flags were given.
  [[nodiscard]] obs::Observer* begin_run() {
    if (profiling()) profiler_ = std::make_unique<obs::Profiler>();
    if (!paths_.any()) return nullptr;
    observer_ = std::make_unique<obs::Observer>(obs::ObsConfig{});
    return observer_.get();
  }

  /// The current run's self-profiler (nullptr without --profile-out).
  /// Valid from begin_run() to end_run(); hand it to
  /// ManagedRunOptions::profiler / ClusterRunOptions::profiler.
  [[nodiscard]] obs::Profiler* profiler() { return profiler_.get(); }

  /// Export the current run's artifacts, inserting "_<tag>" before each
  /// file extension. No-op when begin_run() returned nullptr.
  void end_run(const std::string& tag) {
    const std::string suffix = tag.empty() ? std::string{} : "_" + tag;
    if (observer_) {
      obs::write_exports(*observer_, paths_, std::cerr, suffix);
    }
    if (profiler_) {
      obs::write_profile_exports(*profiler_, paths_.profile, std::cerr,
                                 suffix);
    }
    observer_.reset();
    profiler_.reset();
  }

 private:
  obs::ExportPaths paths_;
  std::unique_ptr<obs::Observer> observer_;
  std::unique_ptr<obs::Profiler> profiler_;
};

/// The standard managed-run options for the main evaluation scenario.
inline exp::ManagedRunOptions bench_run_options() {
  exp::ManagedRunOptions opt;
  // One compressed diurnal day. 3600 s (24:1 compression) keeps the
  // uncompressed control timescales (30 s VM boot, 1 s cold start) from
  // dominating the day's resource economics the way they would in a
  // shorter run.
  opt.period_s = 3600.0;
  opt.duration_days = 1.0;
  opt.warmup_s = 60.0;
  opt.with_background = true;
  opt.background_peak_fraction = 0.30;
  opt.seed = 42;
  return opt;
}

}  // namespace amoeba::bench
