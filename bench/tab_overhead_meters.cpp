// §VII-E — overhead of Amoeba's contention meters: CPU consumed by the
// three probes at 1 QPS on the 40-core node, by design 1.1% / 0.5% / 0.6%
// (total <= 1.1% when scheduled round-trip), verified here by actually
// running the monitor and measuring consumed compute.
#include <iostream>

#include "bench_common.hpp"
#include "core/contention_monitor.hpp"

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "§VII-E",
                    "resource overhead of the contention meters");

  const auto cal = bench::cached_calibration(cluster, prof);

  sim::Engine engine;
  sim::Rng rng(cluster.seed);
  serverless::ServerlessPlatform sp(engine, cluster.serverless, rng.fork(1));
  core::ContentionMonitorConfig mcfg;
  mcfg.sample_period_s = 5.0;
  core::ContentionMonitor monitor(engine, sp, cal, mcfg, rng.fork(2));
  monitor.start();
  const double duration = 300.0;
  engine.run_until(duration);
  monitor.stop();
  engine.run();  // drain in-flight probes (advances past `duration`)
  const double now = std::max(duration, engine.now());

  const auto nominal = monitor.probe_cpu_overhead();
  exp::Table table({"meter", "nominal CPU overhead", "measured (simulated)",
                    "memory held"});
  static constexpr const char* kNames[] = {"CPU-Memory", "IO", "Network"};
  double total = 0.0;
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto meter = workload::meter_profile(workload::kAllMeters[d]);
    const double measured =
        sp.cpu_core_seconds(meter.name) / (duration * cluster.serverless.cores);
    total += measured;
    table.add_row(
        {kNames[d], exp::fmt_percent(nominal[d], 1),
         exp::fmt_percent(measured, 2),
         exp::fmt_fixed(sp.memory_mb_seconds(meter.name, now) / duration, 0) +
             " MB"});
  }
  table.print(std::cout);
  std::cout << "\ntotal measured CPU overhead: " << exp::fmt_percent(total, 2)
            << "\npaper: 1.1% / 0.5% / 0.6%; round-trip scheduling bounds the\n"
               "total at the largest single meter (~1.1%).\n";
  return 0;
}
