// Microbenchmarks of the native FunctionBench kernels.
#include <benchmark/benchmark.h>

#include "kernels/cloud_stor.hpp"
#include "kernels/dd_io.hpp"
#include "kernels/float_op.hpp"
#include "kernels/linpack.hpp"
#include "kernels/matmul.hpp"

namespace {

using namespace amoeba::kernels;

void BM_FloatOp(benchmark::State& state) {
  const auto iters = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_float_op(iters, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iters) *
                          state.iterations());
}
BENCHMARK(BM_FloatOp)->Arg(100000)->Arg(1000000);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_matmul(n, 1));
  }
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Linpack(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_linpack(n, 1));
  }
}
BENCHMARK(BM_Linpack)->Arg(64)->Arg(128)->Arg(256);

void BM_DdIo(benchmark::State& state) {
  const auto mb = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_dd(mb << 20, 1 << 20));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(mb << 20) *
                          state.iterations());
}
BENCHMARK(BM_DdIo)->Arg(4)->Arg(16);

void BM_CloudStor(benchmark::State& state) {
  const auto mb = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_cloud_stor(mb << 20, 256 << 10));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(mb << 20) *
                          state.iterations());
}
BENCHMARK(BM_CloudStor)->Arg(4)->Arg(16);

}  // namespace
