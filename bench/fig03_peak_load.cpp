// Fig. 3 — achievable peak load (QoS held) under serverless-based
// deployment, normalized to IaaS-based deployment with the SAME resources.
// Paper: 73.9%–89.2%; the gap comes from the per-query serverless
// overheads (processing, code load, result post).
#include <iostream>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "stats/percentile.hpp"
#include "workload/load_generator.hpp"

namespace {

using namespace amoeba;

/// p95 latency of `p` at constant `qps` on a fresh platform of the given
/// kind. `cores_cap` bounds the serverless container count to the IaaS
/// VM's cores (equal-resources comparison).
std::optional<double> p95_at(const workload::FunctionProfile& p, double qps,
                             bool serverless_mode, int cores_cap,
                             const exp::ClusterConfig& cluster,
                             std::uint64_t seed) {
  sim::Engine engine;
  sim::Rng rng(seed);
  stats::SampleSet lat;
  constexpr double kWarmup = 10.0;
  constexpr double kDuration = 120.0;

  std::unique_ptr<workload::ConstantLoadGenerator> gen;
  std::unique_ptr<serverless::ServerlessPlatform> sp;
  std::unique_ptr<iaas::IaasPlatform> ip;
  auto observe = [&lat](const workload::QueryRecord& r) {
    if (r.arrival >= kWarmup) lat.add(r.latency());
  };

  if (serverless_mode) {
    sp = std::make_unique<serverless::ServerlessPlatform>(
        engine, cluster.serverless, rng.fork(1));
    sp->register_function(p, cores_cap);
    sp->prewarm(p.name, cores_cap);  // fair: no cold-start tax in the sweep
    gen = std::make_unique<workload::ConstantLoadGenerator>(
        engine, rng.fork(2), qps,
        [&] { sp->submit(p.name, observe); });
    engine.schedule(3.0, [&] { gen->start(); });
  } else {
    ip = std::make_unique<iaas::IaasPlatform>(engine, cluster.iaas,
                                              rng.fork(1));
    auto spec = exp::just_enough_vm(p, cluster);
    spec.boot_s = 0.5;
    ip->register_service(p, spec);
    ip->boot(p.name, [] {});
    gen = std::make_unique<workload::ConstantLoadGenerator>(
        engine, rng.fork(2), qps,
        [&] { ip->submit(p.name, observe); });
    engine.schedule(3.0, [&] { gen->start(); });
  }
  engine.run_until(kDuration);
  gen->stop();
  engine.run();
  if (lat.size() < 50) return std::nullopt;
  return lat.quantile(0.95);
}

/// Largest constant load whose p95 stays under the QoS target (bisection).
double peak_load(const workload::FunctionProfile& p, bool serverless_mode,
                 int cores_cap, const exp::ClusterConfig& cluster) {
  double lo = 0.5;  // assumed feasible
  double hi = p.peak_load_qps * 2.0;
  // Grow hi until infeasible (or give up at 4x nominal peak). A single
  // fixed seed keeps the noisy boundary evaluations consistent across the
  // bisection, so it converges on one realization's crossing point.
  for (int i = 0; i < 8; ++i) {
    const auto p95 = p95_at(p, hi, serverless_mode, cores_cap, cluster,
                            cluster.seed);
    if (!p95.has_value() || *p95 > p.qos_target_s) break;
    lo = hi;
    hi *= 1.5;
  }
  for (int i = 0; i < 12; ++i) {
    const double mid = 0.5 * (lo + hi);
    const auto p95 = p95_at(p, mid, serverless_mode, cores_cap, cluster,
                            cluster.seed);
    if (p95.has_value() && *p95 <= p.qos_target_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  exp::print_banner(std::cout, "Fig. 3",
                    "serverless peak load normalized to IaaS (equal "
                    "resources)");

  exp::Table table({"benchmark", "resources (cores)", "IaaS peak (qps)",
                    "serverless peak (qps)", "normalized"});
  for (const auto& p : workload::functionbench_suite()) {
    const auto spec = exp::just_enough_vm(p, cluster);
    const int cores = static_cast<int>(spec.cores);
    const double iaas_peak = peak_load(p, false, cores, cluster);
    const double sls_peak = peak_load(p, true, cores, cluster);
    table.add_row({p.name, std::to_string(cores),
                   exp::fmt_fixed(iaas_peak, 1), exp::fmt_fixed(sls_peak, 1),
                   exp::fmt_percent(sls_peak / iaas_peak)});
  }
  table.print(std::cout);
  std::cout << "\npaper's shape: serverless sustains a LOWER peak than IaaS\n"
               "on equal resources (73.9%–89.2%) because every query pays\n"
               "processing + code-load + result-post overhead.\n";
  return 0;
}
