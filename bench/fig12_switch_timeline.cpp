// Fig. 12 — deploy-mode switch timeline for the paper's two representative
// benchmarks (float, dd): load curve, active mode, and the switch points.
// The loads at which Amoeba switches to serverless vs back to IaaS are NOT
// identical, because the discriminant folds in the live contention.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace amoeba;

void timeline_for(const workload::FunctionProfile& p,
                  const exp::ClusterConfig& cluster,
                  const core::MeterCalibration& cal,
                  const exp::ProfilingConfig& prof,
                  bench::BenchObservability& bobs) {
  auto opt = bench::bench_run_options();
  opt.timeline_period_s = opt.period_s / 64.0;
  opt.observer = bobs.begin_run();
  opt.profiler = bobs.profiler();
  const auto art = bench::cached_artifacts(p, cluster, cal, prof);
  const auto r = exp::run_managed(p, exp::DeploySystem::kAmoeba, cluster,
                                  cal, art, opt);
  bobs.end_run(p.name);

  std::cout << "\n== " << p.name << " — one diurnal day ("
            << opt.period_s << " s, peak " << p.peak_load_qps << " qps)\n";
  std::cout << "switch points (paper's stars):\n";
  for (const auto& ev : r.switches) {
    std::cout << "  t=" << exp::fmt_fixed(ev.time - opt.warmup_s, 0)
              << "s  -> " << core::to_string(ev.to) << " at load "
              << exp::fmt_fixed(ev.load_qps, 1) << " qps\n";
  }
  if (!r.timeline.mode.empty()) {
    std::cout << "timeline (#=load bar, mode in margin):\n";
    const auto samples = r.timeline.mode.resample(
        r.timeline.mode.points().front().t, opt.warmup_s + opt.period_s, 32);
    for (const auto& s : samples) {
      const double l = r.timeline.load_qps.value_at(s.t);
      std::cout << "  t=" << std::setw(4)
                << static_cast<int>(s.t - opt.warmup_s) << "s "
                << (s.value >= 0.5 ? "[serverless]" : "[iaas      ]") << " ";
      const int bars = static_cast<int>(l / p.peak_load_qps * 40.0);
      for (int i = 0; i < bars; ++i) std::cout << '#';
      std::cout << " " << exp::fmt_fixed(l, 1) << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amoeba;
  bench::BenchObservability bobs(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 12",
                    "deploy-mode switch timeline (float, dd)");
  const auto cal = bench::cached_calibration(cluster, prof);
  timeline_for(workload::make_float(), cluster, cal, prof, bobs);
  timeline_for(workload::make_dd(), cluster, cal, prof, bobs);
  std::cout << "\npaper's shape: serverless through the trough, IaaS through\n"
               "the rushes; the to-serverless and to-IaaS switch loads\n"
               "differ because contention varies across the day.\n";
  return 0;
}
