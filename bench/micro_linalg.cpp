// Microbenchmarks of the monitor's PCA/PCR path (runs on every refit).
#include <benchmark/benchmark.h>

#include "linalg/jacobi_eigen.hpp"
#include "linalg/pca.hpp"
#include "sim/random.hpp"

namespace {

using namespace amoeba;

linalg::Matrix random_samples(std::size_t n, std::size_t d,
                              std::uint64_t seed) {
  sim::Rng rng(seed);
  linalg::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const double latent = rng.normal(0.0, 1.0);
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = latent * (1.0 + 0.2 * static_cast<double>(j)) +
                rng.normal(0.0, 0.1);
    }
  }
  return x;
}

void BM_FitPca(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_samples(n, 3, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::fit_pca(x, 0.95));
  }
}
BENCHMARK(BM_FitPca)->Arg(64)->Arg(256)->Arg(512);

void BM_FitPcr(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto x = random_samples(n, 3, 43);
  std::vector<double> y(n);
  sim::Rng rng(44);
  for (std::size_t i = 0; i < n; ++i) y[i] = x(i, 0) + rng.normal(0.0, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::fit_pcr(x, y, 0.95, 1e-8));
  }
}
BENCHMARK(BM_FitPcr)->Arg(64)->Arg(256)->Arg(512);

void BM_JacobiEigen(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  sim::Rng rng(45);
  linalg::Matrix a(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::jacobi_eigen(a));
  }
}
BENCHMARK(BM_JacobiEigen)->Arg(3)->Arg(8)->Arg(16);

}  // namespace
