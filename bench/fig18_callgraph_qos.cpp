// Fig. 18 (extension): end-to-end QoS decomposition over a call graph.
//
// The paper manages each microservice against its own latency target; real
// products carry ONE end-to-end SLO across a DAG of stages. This bench
// runs a four-stage diamond — front -> {search (heavy), ads} -> render —
// under exp::run_callgraph twice: once with the naive fixed equal split
// (every stage gets T / max_path_stages) and once with the end-to-end
// aware decomposition (critical-path-weighted budgets, renormalized from
// observed per-stage p95s). The heavy search stage owns most of the
// latency, so the equal split over-tightens it — forcing a larger
// just-enough VM and pinning it to IaaS — while the aware split hands it
// the budget it needs and lets it ride serverless through the trough.
//
// Gates (nonzero exit on failure):
//   1. Determinism: each mode runs twice under one seed; traces must hash
//      identically.
//   2. QoS: the aware run's end-to-end p95 meets the SLO.
//   3. Economy: the aware run's core-hours are no worse than the naive
//      run's.
//   4. Dominance: the naive run violates the SLO, or the aware run is
//      strictly cheaper — otherwise decomposition bought nothing.
//   5. Instrumentation purity: an observer(+profiler)-attached rerun of
//      the aware mode executes the identical trace; with --profile-out the
//      profiler must attribute >= 90% of the rerun's wall time.
//
// Flags: --jobs N, --smoke (CI: short day), --json-out PATH, plus the
// shared observability export flags.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "exp/callgraph.hpp"

namespace {

bool parse_smoke_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

std::string parse_json_out(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0) return argv[i + 1];
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const bool smoke = parse_smoke_flag(argc, argv);
  const std::string json_out = parse_json_out(argc, argv);
  bench::BenchObservability observability(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 18",
                    "call-graph end-to-end QoS decomposition");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto float_base = workload::make_float();
  const auto matmul_base = workload::make_matmul();
  const auto float_artifacts =
      bench::cached_artifacts(float_base, cluster, cal, prof);
  const auto matmul_artifacts =
      bench::cached_artifacts(matmul_base, cluster, cal, prof);

  // The diamond: a light front fans out to the heavy search stage and a
  // light ads stage; both join at a light render stage. Every stage sees
  // the root arrival rate (one invocation per query per stage), so the
  // peak is pinned to what the heavy matmul stage can sustain.
  const double root_peak_qps = 12.0;
  const double peak_fraction = root_peak_qps / matmul_base.peak_load_qps;
  workload::CallGraph::Builder b;
  const int front =
      b.add_stage("front", workload::as_tenant(float_base, 0, peak_fraction));
  const int search =
      b.add_stage("search", workload::as_tenant(matmul_base, 1, peak_fraction));
  const int ads =
      b.add_stage("ads", workload::as_tenant(float_base, 2, peak_fraction));
  const int render =
      b.add_stage("render", workload::as_tenant(float_base, 3, peak_fraction));
  b.add_edge(front, search);
  b.add_edge(front, ads);
  b.add_edge(search, render);
  b.add_edge(ads, render);
  const workload::CallGraph graph = b.build();

  std::vector<core::ServiceArtifacts> artifacts;
  artifacts.reserve(static_cast<std::size_t>(graph.size()));
  for (int k = 0; k < graph.size(); ++k) {
    const bool heavy =
        graph.stage(k).profile.name.rfind(matmul_base.name, 0) == 0;
    artifacts.push_back(heavy ? matmul_artifacts : float_artifacts);
  }

  // End-to-end SLO: 85% of the summed per-stage targets along the heavy
  // path. Tight enough that an equal split over-tightens the heavy stage
  // (its third of T sits well below its own solo target), loose enough
  // that the critical-path-weighted split is comfortably feasible.
  const double e2e_target_s =
      0.85 * (float_base.qos_target_s + matmul_base.qos_target_s +
              float_base.qos_target_s);

  const double period_s = smoke ? 600.0 : 1800.0;
  auto options = [&](exp::BudgetMode mode) {
    exp::CallGraphRunOptions opt;
    opt.period_s = period_s;
    opt.duration_days = 1.0;
    opt.warmup_s = 60.0;
    opt.e2e_qos_target_s = e2e_target_s;
    opt.budget_mode = mode;
    opt.root_peak_qps = root_peak_qps;
    opt.seed = cluster.seed;
    return opt;
  };

  struct ModeResult {
    exp::CallGraphRunResult run;
    bool deterministic = false;
  };
  const std::vector<exp::BudgetMode> modes = {exp::BudgetMode::kNaiveEqual,
                                              exp::BudgetMode::kEndToEndAware};
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map<ModeResult>(modes, [&](exp::BudgetMode mode) {
    auto a = exp::run_callgraph(graph, artifacts, cluster, cal,
                                options(mode));
    const auto rerun = exp::run_callgraph(graph, artifacts, cluster, cal,
                                          options(mode));
    const bool same = a.trace_hash == rerun.trace_hash;
    return ModeResult{std::move(a), same};
  });
  const auto& naive = runs[0].run;
  const auto& aware = runs[1].run;

  bench::BenchJson json;
  json.add("period_s", period_s);
  json.add("e2e_qos_target_s", e2e_target_s);
  json.add("n_stages", static_cast<double>(graph.size()));
  bool ok = true;

  for (const auto& mr : runs) {
    const auto& r = mr.run;
    const std::string mode = exp::to_string(r.budget_mode);
    std::cout << "\n=== budget mode: " << mode << " ===\n";
    exp::callgraph_table(r).print(std::cout);
    std::cout << "e2e p95 " << exp::fmt_fixed(r.e2e_p95(), 3) << " s (SLO "
              << exp::fmt_fixed(e2e_target_s, 3) << " s), violations "
              << exp::fmt_percent(r.e2e_violation_fraction()) << ", "
              << exp::fmt_fixed(r.total_core_hours(), 2) << " core-h, "
              << r.queries_completed << "/" << r.root_injected
              << " queries completed\n";

    // Gate 1: same-seed double runs hash identically, per mode.
    if (!mr.deterministic) {
      std::cerr << "FAIL[" << mode << "]: same-seed runs diverged\n";
      ok = false;
    }
    json.add(mode + "_e2e_p95_s", r.e2e_p95());
    json.add(mode + "_violation_fraction", r.e2e_violation_fraction());
    json.add(mode + "_core_hours", r.total_core_hours());
    json.add(mode + "_memory_gb_hours", r.total_memory_gb_hours());
    json.add(mode + "_deterministic", mr.deterministic);
  }

  // Gate 2: the aware split meets the end-to-end SLO.
  if (aware.e2e_p95() > e2e_target_s) {
    std::cerr << "FAIL: e2e-aware p95 " << exp::fmt_fixed(aware.e2e_p95(), 3)
              << " s misses the SLO " << exp::fmt_fixed(e2e_target_s, 3)
              << " s\n";
    ok = false;
  }
  // Gate 3: decomposition never costs extra cores.
  if (aware.total_core_hours() > naive.total_core_hours()) {
    std::cerr << "FAIL: e2e-aware core-hours "
              << exp::fmt_fixed(aware.total_core_hours(), 2)
              << " exceed naive "
              << exp::fmt_fixed(naive.total_core_hours(), 2) << "\n";
    ok = false;
  }
  // Gate 4: dominance — the naive split must either violate the SLO or
  // cost strictly more; otherwise the decomposition bought nothing.
  const bool naive_violates = naive.e2e_p95() > e2e_target_s;
  const bool aware_cheaper =
      aware.total_core_hours() < naive.total_core_hours();
  if (!naive_violates && !aware_cheaper) {
    std::cerr << "FAIL: naive meets the SLO at no extra cost — the aware"
                 " decomposition shows no advantage\n";
    ok = false;
  }
  json.add("naive_violates_slo", naive_violates);
  json.add("aware_cheaper", aware_cheaper);

  // Gate 5: instrumented rerun of the aware mode — observability must not
  // move a single event.
  {
    auto opt = options(exp::BudgetMode::kEndToEndAware);
    opt.observer = observability.begin_run();
    opt.profiler = observability.profiler();
    const auto t0 = std::chrono::steady_clock::now();
    const auto repeat =
        exp::run_callgraph(graph, artifacts, cluster, cal, opt);
    const double run_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (opt.profiler != nullptr) {
      const auto profile = opt.profiler->report();
      const double coverage =
          run_wall_s > 0.0 ? profile.attributed_s() / run_wall_s : 0.0;
      std::cout << "\nself-profile: attributed "
                << exp::fmt_fixed(profile.attributed_s(), 3) << " s of "
                << exp::fmt_fixed(run_wall_s, 3) << " s run wall ("
                << exp::fmt_percent(coverage) << ")\n";
      json.add("profile_coverage", coverage);
      if (coverage < 0.90) {
        std::cerr << "FAIL: self-profile attributes "
                  << exp::fmt_percent(coverage)
                  << " of run wall time (gate: >= 90%)\n";
        ok = false;
      }
    }
    observability.end_run("fig18_aware");
    const bool same = repeat.trace_hash == aware.trace_hash;
    std::cout << "\ndeterminism: instrumented same-seed rerun "
              << (same ? "matches" : "MISMATCHES") << " (" << std::hex
              << aware.trace_hash << std::dec << ")\n";
    json.add("instrumented_deterministic", same);
    if (!same) {
      std::cerr << "FAIL: instrumented same-seed rerun diverged\n";
      ok = false;
    }
  }

  std::cout << "\nexpected: the equal split starves the heavy search stage"
               " (SLO violation or extra rented cores); the end-to-end"
               " aware split meets the SLO at no worse cost, and every"
               " same-seed rerun hashes identically.\n";
  if (!json_out.empty()) json.write(json_out);
  return ok ? 0 : 1;
}
