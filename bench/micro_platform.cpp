// Microbenchmarks of the simulated platforms: fair-share reallocation and
// the serverless query path that dominate full-day simulations. (Engine
// throughput proper lives in the standalone `micro_simulator` binary,
// which records BENCH_simulator.json.)
#include <benchmark/benchmark.h>

#include "serverless/platform.hpp"
#include "sim/engine.hpp"
#include "sim/fair_share.hpp"
#include "workload/load_generator.hpp"

namespace {

using namespace amoeba;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    for (std::size_t i = 0; i < n; ++i) {
      e.schedule(static_cast<double>(i % 97), [] {});
    }
    e.run();
    benchmark::DoNotOptimize(e.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_FairShareChurn(benchmark::State& state) {
  const int concurrency = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::FairShareResource cpu(e, "cpu", 40.0);
    int opened = 0;
    // Keep `concurrency` streams alive; each completion opens a successor.
    std::function<void()> open_one = [&] {
      if (opened >= 2000) return;
      ++opened;
      cpu.open(0.05, 1.0, [&] { open_one(); });
    };
    for (int i = 0; i < concurrency; ++i) open_one();
    e.run();
    benchmark::DoNotOptimize(cpu.busy_capacity_seconds(e.now()));
  }
  state.SetItemsProcessed(2000 * state.iterations());
}
BENCHMARK(BM_FairShareChurn)->Arg(4)->Arg(32)->Arg(128);

void BM_ServerlessQueryPath(benchmark::State& state) {
  // End-to-end cost of simulating one warm serverless query.
  serverless::PlatformConfig cfg;
  cfg.cores = 40.0;
  cfg.pool_memory_mb = 32768.0;
  cfg.cold_start_mean_s = 0.0;
  workload::FunctionProfile p;
  // std::string{} avoids GCC 12's bogus -Wrestrict on char* assignment
  // under -fsanitize (PR105651).
  p.name = std::string{"f"};
  p.exec = {.cpu_seconds = 0.05, .io_bytes = 1e6, .net_bytes = 1e6};
  p.code_bytes = 1e6;
  p.result_bytes = 1e4;
  p.platform_overhead_s = 0.01;
  p.memory_mb = 256.0;
  p.cpu_cv = 0.1;
  p.qos_target_s = 1.0;
  p.peak_load_qps = 10.0;

  for (auto _ : state) {
    sim::Engine e;
    serverless::ServerlessPlatform sp(e, cfg, sim::Rng(1));
    sp.register_function(p);
    std::uint64_t done = 0;
    for (int i = 0; i < 500; ++i) {
      e.schedule(0.1 * i, [&] {
        sp.submit("f", [&done](const workload::QueryRecord&) { ++done; });
      });
    }
    e.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(500 * state.iterations());
}
BENCHMARK(BM_ServerlessQueryPath);

}  // namespace
