// Fig. 2 — CPU utilization of the benchmarks under just-enough IaaS
// deployment over a diurnal day: lowest / average / highest window
// utilization. Paper: lowest 2.6–15.1%, average 13.6–70.9%, highest
// 24.1–95.1% — the waste Amoeba recovers.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "stats/utilization.hpp"
#include "workload/load_generator.hpp"

namespace {

using namespace amoeba;

struct UtilRow {
  std::string name;
  int cores;
  double lowest, average, highest;
};

UtilRow run_one(const workload::FunctionProfile& p,
                const exp::ClusterConfig& cluster, double period_s) {
  sim::Engine engine;
  sim::Rng rng(cluster.seed);
  iaas::IaasPlatform ip(engine, cluster.iaas, rng.fork(1));
  const auto spec = exp::just_enough_vm(p, cluster);
  ip.register_service(p, spec);
  ip.boot(p.name, [] {});

  auto trace = std::make_unique<workload::DiurnalTrace>(
      exp::diurnal_for(p, period_s), cluster.seed);
  workload::PoissonLoadGenerator gen(
      engine, rng.fork(2), [&](double t) { return trace->rate(t); },
      trace->max_rate(), [&] {
        ip.submit(p.name, [](const workload::QueryRecord&) {});
      });
  engine.schedule(cluster.iaas.vm_boot_s + 1.0, [&] { gen.start(); });

  // Sample the VM's busy cores once per second into windowed utilization.
  const double t0 = cluster.iaas.vm_boot_s + 5.0;
  const double t1 = t0 + period_s;
  stats::UtilizationTracker tracker(spec.cores, period_s / 24.0);
  double last_busy = 0.0;
  std::function<void()> sample = [&] {
    const double now = engine.now();
    if (now < t0) {
      last_busy = ip.vm(p.name).busy_core_seconds(now);
    } else {
      const double busy = ip.vm(p.name).busy_core_seconds(now);
      tracker.set(now, busy - last_busy);  // cores busy over the last 1 s
      last_busy = busy;
    }
    if (now < t1) engine.schedule_in(1.0, sample);
  };
  engine.schedule(t0 - 1.0, sample);
  engine.run_until(t1);
  gen.stop();
  tracker.finish(t1);

  return UtilRow{p.name, static_cast<int>(spec.cores), tracker.window_min(),
                 tracker.average(), tracker.window_max()};
}

}  // namespace

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  exp::print_banner(std::cout, "Fig. 2",
                    "CPU utilization with just-enough IaaS deployment");

  exp::Table table({"benchmark", "vm cores", "lowest", "average", "highest"});
  for (const auto& p : workload::functionbench_suite()) {
    const auto row = run_one(p, cluster, 600.0);
    table.add_row({row.name, std::to_string(row.cores),
                   exp::fmt_percent(row.lowest), exp::fmt_percent(row.average),
                   exp::fmt_percent(row.highest)});
  }
  table.print(std::cout);
  std::cout << "\npaper's shape: averages well below the rented allocation\n"
               "(13.6%–70.9%); tight-QoS benchmarks (float, cloud_stor)\n"
               "stay low even at peak.\n";
  return 0;
}
