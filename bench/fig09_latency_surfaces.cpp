// Fig. 9 — latency surfaces of an example microservice: its 95%-ile
// service latency as a function of (resource pressure, own load), one
// surface per contended resource. The paper plots one example service; we
// use `dd` (CPU-medium, IO-high per Table III), so the CPU and IO surfaces
// rise while the network surface stays flat.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  const auto cfg = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 9",
                    "latency surfaces L(P, V_u) of the `dd` microservice");

  const auto cal = bench::cached_calibration(cluster, cfg);
  const auto subject = workload::make_dd();
  const auto art = bench::cached_artifacts(subject, cluster, cal, cfg);

  static constexpr const char* kNames[] = {"CPU", "disk IO", "network"};
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto& s = *art.surfaces[d];
    std::cout << "\n(" << static_cast<char>('a' + d) << ") sensitivity to "
              << kNames[d] << " — p95 latency (ms), rows = pressure, "
              << "cols = load (qps)\n";
    std::vector<std::string> headers = {"P \\ V_u"};
    for (double l : s.loads()) headers.push_back(exp::fmt_fixed(l, 1));
    exp::Table table(headers);
    for (std::size_t pi = 0; pi < s.pressures().size(); ++pi) {
      std::vector<std::string> row = {exp::fmt_fixed(s.pressures()[pi], 2)};
      for (std::size_t li = 0; li < s.loads().size(); ++li) {
        row.push_back(exp::fmt_fixed(s.value(pi, li) * 1e3, 1));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }
  std::cout << "\nsolo latency L0 = " << exp::fmt_fixed(art.solo_latency_s * 1e3, 1)
            << " ms; measured pressure footprint per qps: cpu="
            << exp::fmt_fixed(art.pressure_per_qps[0], 4) << " io="
            << exp::fmt_fixed(art.pressure_per_qps[1], 4) << " net="
            << exp::fmt_fixed(art.pressure_per_qps[2], 4) << "\n"
            << "\npaper's shape: the surface climbs along the pressure axis\n"
               "only for resources the service is sensitive to.\n";
  return 0;
}
