// Standalone engine-throughput benchmark. Measures events/sec for the
// schedule-fire, schedule-cancel and mixed schedule/cancel/fire workloads,
// plus sweep wall-clock at --jobs 1 vs --jobs N, and records everything in
// machine-readable BENCH_simulator.json so each PR's perf trajectory is
// comparable to the last.
//
//   micro_simulator [--events N] [--repeats R] [--jobs N] [--json-out PATH]
//
// The mixed workload is timeout churn — the pattern that dominates the
// repository's simulations (fair-share completion reschedules, keep-alive
// expiry, load-generator rate changes): every operation schedules a
// completion that fires and a far-future timeout that the next operation
// cancels, so most scheduled events die by cancellation.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace {

using namespace amoeba;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Pre-rewrite engine throughput (events/sec) on these exact loops, from
/// the seed engine (priority_queue + unordered_map<EventId, std::function>,
/// commit 6349bc8) at the default --events 500000 --repeats 5. Measured on
/// the development container; kept here so BENCH_simulator.json always
/// reports the speedup this rewrite is accountable for.
struct Baseline {
  double fire;
  double cancel;
  double mixed;
};

/// Schedule n events (times cycle over 97 distinct values), then fire all.
double bench_schedule_fire(std::size_t n, int repeats) {
  std::uint64_t fired = 0;
  const auto t0 = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    sim::Engine e;
    for (std::size_t i = 0; i < n; ++i) {
      e.schedule(static_cast<double>(i % 97), [] {});
    }
    e.run();
    fired += e.executed();
  }
  return static_cast<double>(fired) / seconds_since(t0);
}

/// Schedule n events, cancel every one, then run (which fires nothing).
double bench_schedule_cancel(std::size_t n, int repeats) {
  std::uint64_t cancelled = 0;
  std::vector<sim::EventId> ids(n);
  const auto t0 = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    sim::Engine e;
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = e.schedule(static_cast<double>(i % 97), [] {});
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (e.cancel(ids[i])) ++cancelled;
    }
    e.run();
  }
  return static_cast<double>(cancelled) / seconds_since(t0);
}

/// Timeout churn: per operation, one completion event (fires) and one 30 s
/// timeout cancelled by the next operation. Arrival gaps and execution
/// times are precomputed so the timed region is pure engine work. Counts
/// both schedules per operation as events (each is fully processed: fired
/// or cancelled). Returns {events/sec, trace hash} — the hash doubles as
/// the sweep determinism witness.
struct MixedResult {
  double events_per_sec = 0.0;
  std::uint64_t trace_hash = 0;
};

MixedResult bench_mixed(std::size_t n, int repeats, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> gap(n);
  for (auto& g : gap) g = rng.exponential(0.01);
  std::vector<double> exec(n);
  for (auto& x : exec) x = rng.exponential(0.05);

  MixedResult result;
  std::uint64_t events = 0;
  const auto t0 = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    sim::Engine e;
    std::uint64_t acc = 0;
    std::uint64_t* sink = &acc;
    sim::EventId pending_timeout = sim::kNoEvent;
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto a = static_cast<std::uint64_t>(i);
      t += gap[i];
      e.schedule(t + exec[i], [sink, a] { *sink += a; });
      if (pending_timeout != sim::kNoEvent) e.cancel(pending_timeout);
      pending_timeout = e.schedule(t + 30.0, [sink, a] { *sink ^= a; });
      if ((i & 15) == 0) e.run_until(t);
    }
    e.run();
    events += 2 * static_cast<std::uint64_t>(n);
    result.trace_hash = e.trace_hash();
  }
  result.events_per_sec = static_cast<double>(events) / seconds_since(t0);
  return result;
}

/// One sweep cell: an independent mixed simulation with its own seed.
/// Returns the trace hash so jobs=1 and jobs=N runs can be compared
/// cell-by-cell.
std::uint64_t sweep_cell(std::size_t n, std::uint64_t seed) {
  return bench_mixed(n, 1, seed).trace_hash;
}

struct SweepTiming {
  double wall_s = 0.0;
  std::vector<std::uint64_t> hashes;
};

SweepTiming run_sweep(std::size_t cells, std::size_t n, unsigned jobs) {
  exp::SweepExecutor exec(jobs);
  SweepTiming timing;
  const auto t0 = Clock::now();
  timing.hashes = exec.map_indexed<std::uint64_t>(
      cells, [n](std::size_t i) {
        return sweep_cell(n, static_cast<std::uint64_t>(i) + 1);
      });
  timing.wall_s = seconds_since(t0);
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  // --jobs here is the N of the "jobs=1 vs jobs=N" comparison (default 8);
  // parse_jobs_flag returns 1 when the flag is absent.
  unsigned jobs = exp::parse_jobs_flag(argc, argv);
  if (jobs == 1) jobs = 8;
  std::size_t events = 500000;
  int repeats = 5;
  std::string json_out = "BENCH_simulator.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--events" && i + 1 < argc) {
      events = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--repeats" && i + 1 < argc) {
      repeats = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else {
      std::cerr << "usage: micro_simulator [--events N] [--repeats R]"
                   " [--jobs N] [--json-out PATH]\n";
      return 2;
    }
  }
  AMOEBA_EXPECTS(events > 0 && repeats > 0);

  // Pre-rewrite numbers for the default workload size (medians of five
  // runs of the seed engine through these exact loops, RelWithDebInfo,
  // contracts on). Scaled runs (CI smoke) still record them for context
  // but the speedup is only apples-to-apples at the default
  // --events/--repeats.
  const Baseline baseline{1.71e6, 2.75e6, 1.64e7};

  std::cout << "engine micro-benchmark: events=" << events
            << " repeats=" << repeats << " jobs=" << jobs << "\n";

  const double fire = bench_schedule_fire(events, repeats);
  std::cout << "  schedule-fire:   " << fire << " events/sec\n";
  const double cancel = bench_schedule_cancel(events, repeats);
  std::cout << "  schedule-cancel: " << cancel << " events/sec\n";
  const MixedResult mixed = bench_mixed(events, repeats, 7);
  std::cout << "  mixed:           " << mixed.events_per_sec
            << " events/sec (" << mixed.events_per_sec / baseline.mixed
            << "x of pre-rewrite baseline)\n";

  const std::size_t sweep_cells = 16;
  const std::size_t sweep_n = std::max<std::size_t>(events / 16, 1000);
  const SweepTiming serial = run_sweep(sweep_cells, sweep_n, 1);
  const SweepTiming parallel = run_sweep(sweep_cells, sweep_n, jobs);
  const bool deterministic = serial.hashes == parallel.hashes;
  std::cout << "  sweep (" << sweep_cells << " cells): jobs=1 "
            << serial.wall_s << " s, jobs=" << jobs << " "
            << parallel.wall_s << " s, identical results: "
            << (deterministic ? "yes" : "NO") << "\n";

  bench::BenchJson json;
  json.add("bench", std::string{"simulator"});
  json.add("events", static_cast<double>(events));
  json.add("repeats", static_cast<double>(repeats));
  json.add("schedule_fire_events_per_sec", fire);
  json.add("schedule_cancel_events_per_sec", cancel);
  json.add("mixed_events_per_sec", mixed.events_per_sec);
  json.add("baseline_schedule_fire_events_per_sec", baseline.fire);
  json.add("baseline_schedule_cancel_events_per_sec", baseline.cancel);
  json.add("baseline_mixed_events_per_sec", baseline.mixed);
  json.add("mixed_speedup_vs_baseline", mixed.events_per_sec / baseline.mixed);
  json.add("sweep_cells", static_cast<double>(sweep_cells));
  json.add("sweep_cell_events", static_cast<double>(sweep_n));
  json.add("sweep_jobs", static_cast<double>(jobs));
  // Interpret sweep_speedup against the cores actually available: on a
  // single-core runner jobs=N cannot beat jobs=1, so a sub-1.0 ratio is a
  // property of the box, not a perf regression — record why the speedup is
  // omitted instead of a misleading number.
  const unsigned cores = std::thread::hardware_concurrency();
  json.add("hardware_concurrency", static_cast<double>(cores));
  json.add("sweep_wall_s_jobs1", serial.wall_s);
  json.add("sweep_wall_s_jobsN", parallel.wall_s);
  bool sweep_ok = true;
  if (cores < 2) {
    json.add("sweep_skipped_reason",
             std::string{"hardware_concurrency < 2: jobs=N cannot beat "
                         "jobs=1 on this machine"});
  } else {
    const double speedup = serial.wall_s / parallel.wall_s;
    json.add("sweep_speedup", speedup);
    if (events >= 500000) {
      // Only gate at the default workload size: smoke-sized cells are too
      // small to amortize worker startup, so their ratio is noise.
      if (speedup < 1.0) {
        std::cerr << "FAIL: sweep speedup " << speedup << " < 1.0 with "
                  << cores << " hardware threads\n";
        sweep_ok = false;
      }
    } else {
      json.add("sweep_gate_skipped_reason",
               std::string{"smoke-size workload: sweep cells too small to "
                           "amortize worker startup"});
    }
  }
  json.add("sweep_deterministic", deterministic);
  if (!json.write(json_out)) return 1;
  std::cout << "wrote " << json_out << "\n";
  return (deterministic && sweep_ok) ? 0 : 1;
}
