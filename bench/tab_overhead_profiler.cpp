// Overhead of the self-profiler (obs/profiler.hpp): the same run_managed
// scenario is executed with the profiler detached and attached, and the
// slowdown of the attached run is gated at --max-overhead-pct (default 5%).
// The workload is the real single-service evaluation scenario — engine
// dispatch + fair-share recompute + control loop — not raw engine churn, so
// the measured percentage is what fig/tab benches actually pay for
// --profile-out.
//
//   tab_overhead_profiler [--repeats R] [--period-s S] [--json-out PATH]
//                         [--max-overhead-pct P]
//
// Results (profiler_overhead_pct, off/on events/sec) are merged into the
// existing BENCH_simulator.json — the file is parsed with obs::parse_json
// and rewritten with micro_simulator's fields preserved. The off/on trace
// hashes must match: the profiler is pure wall-time bookkeeping, and a
// divergence here is a determinism bug, not an overhead problem.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/profiler.hpp"

namespace {

using namespace amoeba;
using Clock = std::chrono::steady_clock;

struct TimedRun {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t trace_hash = 0;
};

TimedRun timed_run(const workload::FunctionProfile& p,
                   const exp::ClusterConfig& cluster,
                   const core::MeterCalibration& cal,
                   const core::ServiceArtifacts& art,
                   const exp::ManagedRunOptions& opt) {
  const auto t0 = Clock::now();
  const auto r = exp::run_managed(p, exp::DeploySystem::kAmoeba, cluster,
                                  cal, art, opt);
  TimedRun out;
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  out.events = r.events_executed;
  out.trace_hash = r.trace_hash;
  return out;
}

/// Copy every member of an existing flat BENCH json object into `json`,
/// except the keys this bench is about to (re)write. Unparseable or missing
/// files are skipped — the bench then writes a fresh object.
void merge_existing(bench::BenchJson& json, const std::string& path) {
  std::ifstream in(path);
  if (!in) return;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const auto root = obs::parse_json(text);
  if (!root || root->kind != obs::JsonValue::Kind::kObject) {
    std::cerr << "note: " << path << " unparseable; rewriting from scratch\n";
    return;
  }
  for (const auto& [key, val] : root->object) {
    if (key.rfind("profiler_", 0) == 0) continue;  // ours, re-measured below
    switch (val.kind) {
      case obs::JsonValue::Kind::kNumber:
        json.add(key, val.number);
        break;
      case obs::JsonValue::Kind::kBool:
        json.add(key, val.boolean);
        break;
      case obs::JsonValue::Kind::kString:
        json.add(key, val.string);
        break;
      default:
        break;  // flat BENCH files hold no nested values
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 5;
  double period_s = 2160.0;
  std::string json_out = "BENCH_simulator.json";
  double max_overhead_pct = 5.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repeats" && i + 1 < argc) {
      repeats = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--period-s" && i + 1 < argc) {
      period_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg == "--max-overhead-pct" && i + 1 < argc) {
      max_overhead_pct = std::strtod(argv[++i], nullptr);
    } else {
      std::cerr << "usage: tab_overhead_profiler [--repeats R]"
                   " [--period-s S] [--json-out PATH]"
                   " [--max-overhead-pct P]\n";
      return 2;
    }
  }
  AMOEBA_EXPECTS(repeats > 0 && period_s > 0.0 && max_overhead_pct > 0.0);

  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Overhead",
                    "self-profiler cost on the run_managed scenario");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto p = workload::make_float();
  const auto art = bench::cached_artifacts(p, cluster, cal, prof);

  auto opt = bench::bench_run_options();
  opt.period_s = period_s;  // a compressed day keeps one repeat ~seconds

  // Each repeat runs off-then-on back to back, so a noise burst on a
  // time-shared machine usually hits both sides of the pair; the overhead
  // estimate is the *median* of the per-pair slowdown ratios, which shrugs
  // off the pairs where a burst hit only one side (min-of-mins does not:
  // one lucky "off" sample inflates the whole estimate). The fastest runs
  // still provide the events/sec figures.
  TimedRun off, on;
  double off_min = 0.0, on_min = 0.0;
  std::vector<double> pair_ratio;
  bool hashes_match = true;
  for (int r = 0; r < repeats; ++r) {
    opt.profiler = nullptr;
    const TimedRun o = timed_run(p, cluster, cal, art, opt);
    if (r == 0 || o.wall_s < off_min) {
      off = o;
      off_min = o.wall_s;
    }
    obs::Profiler profiler;
    opt.profiler = &profiler;
    const TimedRun a = timed_run(p, cluster, cal, art, opt);
    if (r == 0 || a.wall_s < on_min) {
      on = a;
      on_min = a.wall_s;
    }
    pair_ratio.push_back(a.wall_s / o.wall_s);
    hashes_match = hashes_match && (o.trace_hash == a.trace_hash);
    std::cout << "  repeat " << (r + 1) << "/" << repeats << ": off "
              << exp::fmt_fixed(o.wall_s, 3) << " s, on "
              << exp::fmt_fixed(a.wall_s, 3) << " s\n";
  }

  std::sort(pair_ratio.begin(), pair_ratio.end());
  const std::size_t mid = pair_ratio.size() / 2;
  const double median_ratio =
      pair_ratio.size() % 2 == 1
          ? pair_ratio[mid]
          : 0.5 * (pair_ratio[mid - 1] + pair_ratio[mid]);
  const double overhead_pct = (median_ratio - 1.0) * 100.0;
  const double off_eps = static_cast<double>(off.events) / off.wall_s;
  const double on_eps = static_cast<double>(on.events) / on.wall_s;
  std::cout << "\n  events/sec: off " << exp::fmt_fixed(off_eps, 0)
            << ", on " << exp::fmt_fixed(on_eps, 0)
            << "\n  profiler overhead: " << exp::fmt_fixed(overhead_pct, 2)
            << "% (gate: <= " << max_overhead_pct << "%)"
            << "\n  trace hashes off vs on: "
            << (hashes_match ? "identical" : "DIVERGED") << "\n";

  bench::BenchJson json;
  merge_existing(json, json_out);
  json.add("profiler_overhead_pct", overhead_pct);
  json.add("profiler_off_events_per_sec", off_eps);
  json.add("profiler_on_events_per_sec", on_eps);
  json.add("profiler_overhead_repeats", static_cast<double>(repeats));
  json.add("profiler_overhead_period_s", period_s);
  json.add("profiler_deterministic", hashes_match);
  if (!json.write(json_out)) return 1;
  std::cout << "merged profiler overhead into " << json_out << "\n";

  bool ok = true;
  if (!hashes_match) {
    std::cerr << "FAIL: trace hash changed with the profiler attached\n";
    ok = false;
  }
  if (overhead_pct > max_overhead_pct) {
    std::cerr << "FAIL: profiler overhead " << exp::fmt_fixed(overhead_pct, 2)
              << "% exceeds " << max_overhead_pct << "%\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
