// Fig. 8 — contention-meter calibration curves: each meter runs alone on
// the serverless platform at a sweep of loads; its latency vs the pressure
// it generates is the curve the monitor later inverts.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  const auto cfg = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 8",
                    "meter latency vs meter pressure (calibration curves)");

  const auto cal = bench::cached_calibration(cluster, cfg);
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    std::cout << "\n(" << static_cast<char>('a' + d) << ") "
              << to_string(workload::kAllMeters[d]) << " meter\n";
    exp::Table table({"pressure", "latency (ms)", "slowdown"});
    const auto& curve = *cal.curves[d];
    for (const auto& pt : curve.points()) {
      table.add_row({exp::fmt_fixed(pt.pressure, 2),
                     exp::fmt_fixed(pt.latency * 1e3, 2),
                     exp::fmt_fixed(pt.latency / curve.base_latency(), 2) +
                         "x"});
    }
    table.print(std::cout);
  }
  std::cout << "\npaper's shape: monotone latency growth, steepening as the\n"
               "resource saturates; the inverse of these curves is the\n"
               "monitor's pressure estimator.\n";
  return 0;
}
