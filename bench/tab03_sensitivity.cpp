// Table III — the benchmark suite and its per-resource load sensitivity,
// derived from each profile's demand mix on the Table II node.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  exp::print_banner(std::cout, "Table III",
                    "benchmarks and their load sensitivities");

  exp::Table table({"name", "CPU", "Memory", "Disk I/O", "Network",
                    "QoS (ms)", "peak (qps)"});
  for (const auto& p : workload::functionbench_suite()) {
    const auto v = workload::classify_sensitivity(
        p, cluster.serverless.disk_bps, cluster.serverless.net_bps);
    table.add_row({p.name, to_string(v.cpu), to_string(v.memory),
                   to_string(v.disk_io), to_string(v.network),
                   exp::fmt_fixed(p.qos_target_s * 1e3, 0),
                   exp::fmt_fixed(p.peak_load_qps, 0)});
  }
  table.print(std::cout);
  std::cout << "\nmatches the paper's Table III classes: float/matmul/\n"
               "linpack CPU+memory high; dd disk-high; cloud_stor\n"
               "network-high.\n";
  return 0;
}
