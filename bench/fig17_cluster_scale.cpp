// Fig. 17 (extension): cluster-scale managed multi-tenancy.
//
// The paper's §VII-A testbed hosts many microservices on one serverless
// node; its published figures, however, only measure one managed
// foreground service at a time. This bench sweeps N ∈ {2, 4, 8, 12}
// concurrently *managed* tenants — each with its own Amoeba control loop —
// on one shared node (exp::run_cluster), and gates three properties:
//
//   1. Determinism: every N runs twice under one seed; the executed event
//      traces must hash identically.
//   2. QoS under coupling: each tenant's violation fraction stays within
//      2x its single-service run_managed baseline (floor 2% — a baseline
//      of exactly zero would make any violation an automatic failure).
//   3. Economy: total rented/consumed core-hours stay strictly below the
//      all-Nameko baseline (every tenant renting its just-enough VM for
//      the whole day).
//
// Nonzero exit when any gate fails.
//
// Flags: --jobs N (parallel sweep), --smoke (CI: N ∈ {2, 4}, short day),
//        --json-out PATH (machine-readable summary),
//        plus the shared observability export flags. With --profile-out the
//        final max-N rerun also self-profiles the simulator (per-domain,
//        sim-time-bucketed wall-time attribution) and gates that the
//        profiler attributes >= 90% of the measured run wall time.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "exp/cluster.hpp"

namespace {

bool parse_smoke_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

std::string parse_json_out(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0) return argv[i + 1];
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const bool smoke = parse_smoke_flag(argc, argv);
  const std::string json_out = parse_json_out(argc, argv);
  bench::BenchObservability observability(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 17",
                    "cluster-scale managed multi-tenancy");

  const auto cal = bench::cached_calibration(cluster, prof);

  // Artifacts are profiled once per *base* benchmark at its full peak; the
  // scaled tenant clones reuse them (latency surfaces are functions of
  // absolute pressure and load, so a clone at half peak simply stays on
  // the lower part of the same surface).
  const double peak_fraction = 0.5;
  const auto suite = workload::functionbench_suite();
  std::vector<core::ServiceArtifacts> base_artifacts;
  base_artifacts.reserve(suite.size());
  for (const auto& base : suite) {
    base_artifacts.push_back(
        bench::cached_artifacts(base, cluster, cal, prof));
  }

  const double period_s = smoke ? 600.0 : 1800.0;
  const std::vector<int> sweep_n = smoke ? std::vector<int>{2, 4}
                                         : std::vector<int>{2, 4, 8, 12};
  const int max_n = sweep_n.back();

  // Single-service baselines: each distinct tenant profile (base benchmark
  // at the scaled peak) managed alone by run_managed, default scenario.
  exp::SweepExecutor exec(jobs);
  const auto tenant_profiles = exp::cluster_tenants(max_n, peak_fraction);
  const std::size_t n_bases = std::min(suite.size(), tenant_profiles.size());
  std::vector<std::size_t> base_idx(n_bases);
  for (std::size_t i = 0; i < n_bases; ++i) base_idx[i] = i;
  const auto baselines = exec.map<exp::ManagedRunResult>(
      base_idx, [&](std::size_t i) {
        exp::ManagedRunOptions opt;
        opt.period_s = period_s;
        opt.duration_days = 1.0;
        opt.warmup_s = 60.0;
        opt.seed = cluster.seed;
        return exp::run_managed(tenant_profiles[i],
                                exp::DeploySystem::kAmoeba, cluster, cal,
                                base_artifacts[i], opt);
      });

  struct NResult {
    exp::ClusterRunResult run;
    bool deterministic = false;
  };
  const auto cluster_runs = exec.map<NResult>(sweep_n, [&](int n) {
    const auto profiles = exp::cluster_tenants(n, peak_fraction);
    std::vector<exp::ClusterServiceSpec> specs;
    specs.reserve(profiles.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      specs.push_back(exp::ClusterServiceSpec{
          profiles[i], base_artifacts[i % base_artifacts.size()],
          static_cast<double>(i) / static_cast<double>(n)});
    }
    exp::ClusterRunOptions opt;
    opt.period_s = period_s;
    opt.duration_days = 1.0;
    opt.warmup_s = 60.0;
    opt.seed = cluster.seed;
    auto a = exp::run_cluster(specs, cluster, cal, opt);
    const auto b = exp::run_cluster(specs, cluster, cal, opt);
    const bool same = a.trace_hash == b.trace_hash;
    return NResult{std::move(a), same};
  });

  bench::BenchJson json;
  json.add("peak_fraction", peak_fraction);
  json.add("period_s", period_s);
  bool ok = true;

  for (std::size_t ni = 0; ni < sweep_n.size(); ++ni) {
    const int n = sweep_n[ni];
    const auto& r = cluster_runs[ni].run;
    std::cout << "\n=== N = " << n << " managed services ===\n";
    exp::cluster_table(r).print(std::cout);

    // Gate 1: the same-seed double run hashed identically.
    if (!cluster_runs[ni].deterministic) {
      std::cerr << "FAIL[N=" << n
                << "]: same-seed cluster runs diverged\n";
      ok = false;
    }

    // Gate 2: per-tenant QoS within 2x its solo baseline (2% floor).
    for (std::size_t i = 0; i < r.services.size(); ++i) {
      const auto& svc = r.services[i];
      const auto& base = baselines[i % n_bases];
      const double limit =
          std::max(2.0 * base.violation_fraction(), 0.02);
      if (svc.violation_fraction() > limit) {
        std::cerr << "FAIL[N=" << n << "]: " << svc.name << " violations "
                  << exp::fmt_percent(svc.violation_fraction())
                  << " exceed limit " << exp::fmt_percent(limit)
                  << " (solo baseline "
                  << exp::fmt_percent(base.violation_fraction()) << ")\n";
        ok = false;
      }
    }

    // Gate 3: cheaper than all-Nameko (every tenant renting its VM all day).
    double nameko_core_hours = 0.0;
    const auto profiles = exp::cluster_tenants(n, peak_fraction);
    for (const auto& p : profiles) {
      nameko_core_hours +=
          exp::just_enough_vm(p, cluster).cores * r.duration_s / 3600.0;
    }
    const double core_hours = r.total_core_hours();
    std::cout << "total: " << exp::fmt_fixed(core_hours, 2)
              << " core-h (all-Nameko "
              << exp::fmt_fixed(nameko_core_hours, 2) << " core-h), "
              << exp::fmt_fixed(r.total_memory_gb_hours(), 2)
              << " GB-h, peak pool " << r.peak_pool_containers
              << " containers, " << r.prewarm_denied_total
              << " prewarms denied\n";
    if (core_hours >= nameko_core_hours) {
      std::cerr << "FAIL[N=" << n
                << "]: cluster core-hours not below the all-Nameko"
                   " baseline\n";
      ok = false;
    }

    const std::string prefix = "n" + std::to_string(n) + "_";
    json.add(prefix + "core_hours", core_hours);
    json.add(prefix + "nameko_core_hours", nameko_core_hours);
    json.add(prefix + "memory_gb_hours", r.total_memory_gb_hours());
    json.add(prefix + "peak_pool_containers",
             static_cast<double>(r.peak_pool_containers));
    json.add(prefix + "prewarm_denied",
             static_cast<double>(r.prewarm_denied_total));
  }

  // Gate 1 (bis): a third run of the largest N with observability (and,
  // under --profile-out, the self-profiler) attached must execute the same
  // trace as the plain ones — instrumentation is pure bookkeeping even at
  // cluster scale.
  {
    const auto profiles = exp::cluster_tenants(max_n, peak_fraction);
    std::vector<exp::ClusterServiceSpec> specs;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      specs.push_back(exp::ClusterServiceSpec{
          profiles[i], base_artifacts[i % base_artifacts.size()],
          static_cast<double>(i) / static_cast<double>(max_n)});
    }
    exp::ClusterRunOptions opt;
    opt.period_s = period_s;
    opt.duration_days = 1.0;
    opt.warmup_s = 60.0;
    opt.seed = cluster.seed;
    opt.observer = observability.begin_run();
    opt.profiler = observability.profiler();
    const auto t0 = std::chrono::steady_clock::now();
    const auto repeat = exp::run_cluster(specs, cluster, cal, opt);
    const double run_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (opt.profiler != nullptr) {
      // Self-profile gate: the per-domain breakdown must account for at
      // least 90% of the measured run_cluster wall time — otherwise the
      // instrumentation has blind spots and the breakdown misleads.
      const auto profile = opt.profiler->report();
      const double coverage =
          run_wall_s > 0.0 ? profile.attributed_s() / run_wall_s : 0.0;
      std::cout << "\nself-profile (N=" << max_n << "): attributed "
                << exp::fmt_fixed(profile.attributed_s(), 3) << " s of "
                << exp::fmt_fixed(run_wall_s, 3) << " s run wall ("
                << exp::fmt_percent(coverage) << ")\n";
      json.add("profile_coverage", coverage);
      json.add("profile_attributed_s", profile.attributed_s());
      json.add("profile_run_wall_s", run_wall_s);
      if (coverage < 0.90) {
        std::cerr << "FAIL: self-profile attributes "
                  << exp::fmt_percent(coverage)
                  << " of run wall time (gate: >= 90%)\n";
        ok = false;
      }
    }
    observability.end_run("fig17_n" + std::to_string(max_n));
    const auto& first = cluster_runs.back().run;
    const bool same = repeat.trace_hash == first.trace_hash;
    std::cout << "\ndeterminism (N=" << max_n << "): same-seed rerun "
              << (same ? "matches" : "MISMATCHES") << " ("
              << std::hex << first.trace_hash << std::dec << ")\n";
    json.add("deterministic", same);
    if (!same) {
      std::cerr << "FAIL: same-seed cluster runs diverged"
                << (opt.profiler != nullptr ? " with the profiler attached"
                                            : "")
                << "\n";
      ok = false;
    }
  }

  std::cout << "\nexpected: violations track the solo baselines, total\n"
               "core-hours undercut all-Nameko, and same-seed runs hash\n"
               "identically at every N.\n";
  if (!json_out.empty()) json.write(json_out);
  return ok ? 0 : 1;
}
