// Ablation: Eq. 7 prewarm headroom — the §V-A trade-off between "too many
// prewarmed containers result in expensive costs" and "fewer ones result
// in potential QoS violation", on the tight-QoS benchmark (float).
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Ablation", "prewarm headroom (float)");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto p = workload::make_float();
  const auto art = bench::cached_artifacts(p, cluster, cal, prof);
  const auto base_opt = bench::bench_run_options();
  const auto nameko = exp::run_managed(p, exp::DeploySystem::kNameko, cluster,
                                       cal, art, base_opt);

  const std::vector<double> headrooms = {1.0, 1.25, 1.5, 2.0};
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map<exp::ManagedRunResult>(
      headrooms, [&](double headroom) {
        auto opt = base_opt;
        core::AmoebaConfig ac;
        ac.controller.to_serverless_margin = 0.60;
        ac.controller.to_iaas_margin = 0.80;
        ac.engine.mirror_fraction = 0.08;
        ac.engine.prewarm.headroom = headroom;
        ac.monitor.sample_period_s = 5.0;
        ac.load_anticipation_s = 40.0;
        opt.amoeba = ac;
        return exp::run_managed(p, exp::DeploySystem::kAmoeba, cluster, cal,
                                art, opt);
      });

  exp::Table table({"headroom", "p95/QoS", "violations", "mem saved",
                    "cpu saved"});
  for (std::size_t i = 0; i < headrooms.size(); ++i) {
    const auto& r = runs[i];
    table.add_row(
        {exp::fmt_fixed(headrooms[i], 2),
         exp::fmt_fixed(r.p95() / p.qos_target_s, 2),
         exp::fmt_percent(r.violation_fraction()),
         exp::fmt_percent(1.0 - r.usage.memory_mb_seconds /
                                    nameko.usage.memory_mb_seconds),
         exp::fmt_percent(1.0 - r.usage.cpu_core_seconds /
                                    nameko.usage.cpu_core_seconds)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: larger headroom trims cold-start tails at the\n"
               "cost of container memory (§V-A's stated contradiction).\n";
  return 0;
}
