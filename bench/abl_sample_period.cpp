// Ablation: monitor sample period under accidental cold starts — the
// §VI-B misjudgment study behind Eq. 8.
//
// Containers are injected with a small crash probability, so "accidental"
// cold starts occur while the service legitimately belongs on serverless.
// A short sample period lets a single cold start own the period's p95 and
// flap the deployment back to IaaS; adequate periods keep the controller
// steady.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/sample_period.hpp"

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  auto cluster = bench::bench_cluster();
  cluster.serverless.crash_after_completion_p = 0.01;  // failure injection
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Ablation",
                    "sample period vs misjudgment (Eq. 8), float + crashes");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto p = workload::make_float();
  const auto art = bench::cached_artifacts(p, cluster, cal, prof);

  core::SamplePeriodParams eq8;
  eq8.cold_start_s = cluster.serverless.cold_start_mean_s;
  eq8.qos_target_s = p.qos_target_s;
  eq8.exec_time_s = art.solo_latency_s;
  eq8.allowed_error = 0.1;
  std::cout << "Eq. 8 lower bound for float: "
            << exp::fmt_fixed(core::min_sample_period(eq8), 2) << " s\n";

  const std::vector<double> periods = {1.0, 2.0, 5.0, 10.0};
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map<exp::ManagedRunResult>(
      periods, [&](double period) {
        auto opt = bench::bench_run_options();
        core::AmoebaConfig ac;
        ac.controller.to_serverless_margin = 0.60;
        ac.controller.to_iaas_margin = 0.80;
        ac.engine.mirror_fraction = 0.08;
        ac.engine.prewarm.headroom = 1.25;
        ac.monitor.sample_period_s = period;
        ac.load_anticipation_s = 40.0;
        opt.amoeba = ac;
        return exp::run_managed(p, exp::DeploySystem::kAmoeba, cluster, cal,
                                art, opt);
      });

  exp::Table table({"sample period (s)", "switches", "violations",
                    "p95/QoS"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const auto& r = runs[i];
    table.add_row({exp::fmt_fixed(periods[i], 1),
                   std::to_string(r.switches.size()),
                   exp::fmt_percent(r.violation_fraction()),
                   exp::fmt_fixed(r.p95() / p.qos_target_s, 2)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: short periods over-react to stray cold starts\n"
               "(more switches); periods past the Eq. 8 bound stay steady.\n";
  return 0;
}
