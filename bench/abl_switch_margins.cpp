// Ablation: controller switch margins — how much of the discriminant's
// λ_max to actually use, balancing resource savings against QoS risk
// around the switch windows. Run on dd, whose disk cliff punishes late
// switches hardest.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Ablation", "switch margins (dd)");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto p = workload::make_dd();
  const auto art = bench::cached_artifacts(p, cluster, cal, prof);
  const auto base_opt = bench::bench_run_options();
  const auto nameko = exp::run_managed(p, exp::DeploySystem::kNameko, cluster,
                                       cal, art, base_opt);

  struct MarginPair {
    double to_serverless;
    double to_iaas;
  };
  const std::vector<MarginPair> margins = {MarginPair{0.40, 0.60},
                                           MarginPair{0.60, 0.80},
                                           MarginPair{0.80, 0.95},
                                           MarginPair{0.95, 1.00}};
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map<exp::ManagedRunResult>(
      margins, [&](const MarginPair& m) {
        auto opt = base_opt;
        core::AmoebaConfig ac;
        ac.controller.to_serverless_margin = m.to_serverless;
        ac.controller.to_iaas_margin = m.to_iaas;
        ac.engine.mirror_fraction = 0.08;
        ac.engine.prewarm.headroom = 1.25;
        ac.monitor.sample_period_s = 5.0;
        ac.load_anticipation_s = 40.0;
        opt.amoeba = ac;
        return exp::run_managed(p, exp::DeploySystem::kAmoeba, cluster, cal,
                                art, opt);
      });

  exp::Table table({"entry margin", "exit margin", "violations", "p95/QoS",
                    "cpu saved", "switches"});
  for (std::size_t i = 0; i < margins.size(); ++i) {
    const auto& m = margins[i];
    const auto& r = runs[i];
    table.add_row(
        {exp::fmt_fixed(m.to_serverless, 2), exp::fmt_fixed(m.to_iaas, 2),
         exp::fmt_percent(r.violation_fraction()),
         exp::fmt_fixed(r.p95() / p.qos_target_s, 2),
         exp::fmt_percent(1.0 - r.usage.cpu_core_seconds /
                                    nameko.usage.cpu_core_seconds),
         std::to_string(r.switches.size())});
  }
  table.print(std::cout);
  std::cout << "\nexpected: aggressive margins (right column ~1.0) squeeze\n"
               "more serverless time but ride the QoS cliff; conservative\n"
               "margins trade savings for safety.\n";
  return 0;
}
