// Fig. 11 — resource usage of each benchmark under Amoeba, normalized to
// Nameko (pure IaaS). Paper: CPU reduced 29.1–72.9%, memory 30.2–84.9%.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 11",
                    "Amoeba resource usage normalized to Nameko");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto opt = bench::bench_run_options();

  exp::Table table({"benchmark", "cpu (norm)", "cpu saved", "mem (norm)",
                    "mem saved", "switches"});
  for (const auto& p : workload::functionbench_suite()) {
    const auto art = bench::cached_artifacts(p, cluster, cal, prof);
    const auto amoeba_run = exp::run_managed(p, exp::DeploySystem::kAmoeba,
                                             cluster, cal, art, opt);
    const auto nameko_run = exp::run_managed(p, exp::DeploySystem::kNameko,
                                             cluster, cal, art, opt);
    const double cpu_norm = amoeba_run.usage.cpu_core_seconds /
                            nameko_run.usage.cpu_core_seconds;
    const double mem_norm = amoeba_run.usage.memory_mb_seconds /
                            nameko_run.usage.memory_mb_seconds;
    table.add_row({p.name, exp::fmt_fixed(cpu_norm, 3),
                   exp::fmt_percent(1.0 - cpu_norm),
                   exp::fmt_fixed(mem_norm, 3),
                   exp::fmt_percent(1.0 - mem_norm),
                   std::to_string(amoeba_run.switches.size())});
  }
  table.print(std::cout);
  std::cout << "\npaper's shape: substantial reductions on every benchmark\n"
               "(CPU up to 72.9%, memory up to 84.9%), because the trough of\n"
               "the diurnal day runs serverless while the VM is released.\n";
  return 0;
}
