// Fig. 11 — resource usage of each benchmark under Amoeba, normalized to
// Nameko (pure IaaS). Paper: CPU reduced 29.1–72.9%, memory 30.2–84.9%.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 11",
                    "Amoeba resource usage normalized to Nameko");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto opt = bench::bench_run_options();

  const auto suite = workload::functionbench_suite();
  std::vector<core::ServiceArtifacts> arts;
  arts.reserve(suite.size());
  for (const auto& p : suite) {
    arts.push_back(bench::cached_artifacts(p, cluster, cal, prof));
  }
  const exp::DeploySystem systems[] = {exp::DeploySystem::kAmoeba,
                                       exp::DeploySystem::kNameko};
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map_indexed<exp::ManagedRunResult>(
      suite.size() * 2, [&](std::size_t i) {
        return exp::run_managed(suite[i / 2], systems[i % 2], cluster, cal,
                                arts[i / 2], opt);
      });

  exp::Table table({"benchmark", "cpu (norm)", "cpu saved", "mem (norm)",
                    "mem saved", "switches"});
  for (std::size_t b = 0; b < suite.size(); ++b) {
    const auto& amoeba_run = runs[b * 2];
    const auto& nameko_run = runs[b * 2 + 1];
    const double cpu_norm = amoeba_run.usage.cpu_core_seconds /
                            nameko_run.usage.cpu_core_seconds;
    const double mem_norm = amoeba_run.usage.memory_mb_seconds /
                            nameko_run.usage.memory_mb_seconds;
    table.add_row({suite[b].name, exp::fmt_fixed(cpu_norm, 3),
                   exp::fmt_percent(1.0 - cpu_norm),
                   exp::fmt_fixed(mem_norm, 3),
                   exp::fmt_percent(1.0 - mem_norm),
                   std::to_string(amoeba_run.switches.size())});
  }
  table.print(std::cout);
  std::cout << "\npaper's shape: substantial reductions on every benchmark\n"
               "(CPU up to 72.9%, memory up to 84.9%), because the trough of\n"
               "the diurnal day runs serverless while the VM is released.\n";
  return 0;
}
