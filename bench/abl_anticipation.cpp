// Ablation: load-trend anticipation for the switch-back decision.
//
// Amoeba must begin the 30 s VM boot before the serverless pool saturates.
// This study sweeps the anticipation horizon on `dd` — the benchmark whose
// disk cliff is steepest — and reports QoS violations vs resource savings.
// Horizon 0 reproduces a purely reactive controller.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Ablation",
                    "load-trend anticipation horizon (dd)");

  const auto cal = bench::cached_calibration(cluster, prof);
  const auto p = workload::make_dd();
  const auto art = bench::cached_artifacts(p, cluster, cal, prof);

  auto base_opt = bench::bench_run_options();
  const auto nameko = exp::run_managed(p, exp::DeploySystem::kNameko, cluster,
                                       cal, art, base_opt);

  const std::vector<double> horizons = {0.0, 20.0, 40.0, 80.0};
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map<exp::ManagedRunResult>(
      horizons, [&](double horizon) {
        auto opt = base_opt;
        // run_managed's defaults set a 40 s horizon; pass an explicit config
        // mirroring those defaults with only the horizon overridden.
        core::AmoebaConfig ac;
        ac.controller.to_serverless_margin = 0.60;
        ac.controller.to_iaas_margin = 0.80;
        ac.controller.hysteresis_ticks = 2;
        ac.engine.mirror_fraction = 0.08;
        ac.engine.prewarm.headroom = 1.25;
        ac.monitor.sample_period_s = 5.0;
        ac.estimator.min_samples = 24;
        ac.load_anticipation_s = horizon;
        opt.amoeba = ac;
        return exp::run_managed(p, exp::DeploySystem::kAmoeba, cluster, cal,
                                art, opt);
      });

  exp::Table table({"anticipation (s)", "p95/QoS", "violations", "cpu saved",
                    "mem saved", "switches"});
  for (std::size_t i = 0; i < horizons.size(); ++i) {
    const auto& r = runs[i];
    table.add_row(
        {exp::fmt_fixed(horizons[i], 0),
         exp::fmt_fixed(r.p95() / p.qos_target_s, 2),
         exp::fmt_percent(r.violation_fraction()),
         exp::fmt_percent(1.0 - r.usage.cpu_core_seconds /
                                    nameko.usage.cpu_core_seconds),
         exp::fmt_percent(1.0 - r.usage.memory_mb_seconds /
                                    nameko.usage.memory_mb_seconds),
         std::to_string(r.switches.size())});
  }
  table.print(std::cout);
  std::cout << "\nexpected: violations shrink as the horizon covers the\n"
               "hysteresis+boot window; beyond that, earlier switches only\n"
               "sacrifice savings.\n";
  return 0;
}
