// Fig. 16 — ablation of the container prewarm strategy: Amoeba-NoP flips
// the route without warming containers, so every switch slams the load
// into cold starts. Paper: 29.9–69.1% of queries violate QoS under NoP;
// full Amoeba eliminates the violations.
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace amoeba;
  const unsigned jobs = exp::parse_jobs_flag(argc, argv);
  const auto cluster = bench::bench_cluster();
  const auto prof = bench::bench_profiling();
  exp::print_banner(std::cout, "Fig. 16",
                    "QoS violations without container prewarm (Amoeba-NoP)");

  const auto cal = bench::cached_calibration(cluster, prof);
  auto opt = bench::bench_run_options();
  opt.keep_records = true;

  // Violation share among queries arriving within `window` seconds after a
  // switch to serverless — the population the missing prewarm hurts.
  const double window = 10.0;
  auto post_switch_violations = [&](const exp::ManagedRunResult& r) {
    std::uint64_t in_window = 0, violating = 0;
    for (const auto& rec : r.records) {
      bool near_switch = false;
      for (const auto& ev : r.switches) {
        if (ev.to == core::DeployMode::kServerless && rec.arrival >= ev.time &&
            rec.arrival < ev.time + window) {
          near_switch = true;
          break;
        }
      }
      if (!near_switch) continue;
      ++in_window;
      if (rec.latency() > r.qos_target_s) ++violating;
    }
    return in_window > 0
               ? static_cast<double>(violating) / static_cast<double>(in_window)
               : 0.0;
  };

  const auto suite = workload::functionbench_suite();
  std::vector<core::ServiceArtifacts> arts;
  arts.reserve(suite.size());
  for (const auto& p : suite) {
    arts.push_back(bench::cached_artifacts(p, cluster, cal, prof));
  }
  const exp::DeploySystem systems[] = {exp::DeploySystem::kAmoeba,
                                       exp::DeploySystem::kAmoebaNoP};
  exp::SweepExecutor exec(jobs);
  const auto runs = exec.map_indexed<exp::ManagedRunResult>(
      suite.size() * 2, [&](std::size_t i) {
        return exp::run_managed(suite[i / 2], systems[i % 2], cluster, cal,
                                arts[i / 2], opt);
      });

  exp::Table table({"benchmark", "overall Amoeba", "overall NoP",
                    "post-switch Amoeba", "post-switch NoP", "switches NoP"});
  for (std::size_t b = 0; b < suite.size(); ++b) {
    const auto& amoeba_run = runs[b * 2];
    const auto& nop_run = runs[b * 2 + 1];
    table.add_row({suite[b].name,
                   exp::fmt_percent(amoeba_run.violation_fraction()),
                   exp::fmt_percent(nop_run.violation_fraction()),
                   exp::fmt_percent(post_switch_violations(amoeba_run)),
                   exp::fmt_percent(post_switch_violations(nop_run)),
                   std::to_string(nop_run.switches.size())});
  }
  table.print(std::cout);
  std::cout << "\npaper's shape: without prewarm, the queries hitting the\n"
               "freshly-flipped serverless deployment suffer cold-start\n"
               "violations (paper: 29.9%–69.1%); with prewarm the same\n"
               "windows stay clean. Our full-day overall numbers are lower\n"
               "than the paper's because violations concentrate in those\n"
               "windows (see EXPERIMENTS.md).\n";
  return 0;
}
