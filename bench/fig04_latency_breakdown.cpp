// Fig. 4 — per-query latency breakdown on the serverless platform (solo,
// warm containers, no queueing / cold start counted, exactly like the
// paper's figure). Paper: processing + code loading + result posting take
// 10–45% of end-to-end latency.
#include <iostream>

#include "bench_common.hpp"
#include "workload/load_generator.hpp"

namespace {

using namespace amoeba;

struct Breakdown {
  double overhead = 0.0, code = 0.0, exec = 0.0, post = 0.0;
  std::uint64_t n = 0;
};

Breakdown measure(const workload::FunctionProfile& p,
                  const exp::ClusterConfig& cluster) {
  sim::Engine engine;
  sim::Rng rng(cluster.seed);
  serverless::ServerlessPlatform sp(engine, cluster.serverless, rng.fork(1));
  sp.register_function(p);
  Breakdown b;
  workload::ConstantLoadGenerator gen(engine, rng.fork(2), 2.0, [&] {
    sp.submit(p.name, [&b](const workload::QueryRecord& r) {
      if (r.arrival < 5.0) return;  // warmup (skip the cold start)
      b.overhead += r.breakdown.overhead_s;
      b.code += r.breakdown.code_load_s;
      b.exec += r.breakdown.exec_s;
      b.post += r.breakdown.post_s;
      b.n += 1;
    });
  });
  gen.start();
  engine.run_until(65.0);
  gen.stop();
  engine.run();
  return b;
}

}  // namespace

int main() {
  using namespace amoeba;
  const auto cluster = bench::bench_cluster();
  exp::print_banner(std::cout, "Fig. 4",
                    "latency breakdown of solo serverless queries");

  exp::Table table({"benchmark", "processing", "code load", "execution",
                    "result post", "overhead share"});
  for (const auto& p : workload::functionbench_suite()) {
    const auto b = measure(p, cluster);
    const double n = static_cast<double>(b.n);
    const double total = (b.overhead + b.code + b.exec + b.post) / n;
    const double overhead_share =
        (b.overhead + b.code + b.post) / n / total;
    auto ms = [&n](double sum) {
      return exp::fmt_fixed(sum / n * 1e3, 2) + " ms";
    };
    table.add_row({p.name, ms(b.overhead), ms(b.code), ms(b.exec),
                   ms(b.post), exp::fmt_percent(overhead_share)});
  }
  table.print(std::cout);
  std::cout << "\npaper's shape: overhead share 10%–45%, largest for the\n"
               "short-running benchmarks (cloud_stor), smallest for the\n"
               "compute-heavy ones (linpack).\n";
  return 0;
}
