
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_amoeba_runtime.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_amoeba_runtime.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_amoeba_runtime.cpp.o.d"
  "/root/repo/tests/core/test_contention_monitor.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_contention_monitor.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_contention_monitor.cpp.o.d"
  "/root/repo/tests/core/test_deployment_controller.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_deployment_controller.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_deployment_controller.cpp.o.d"
  "/root/repo/tests/core/test_hybrid_engine.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_hybrid_engine.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_hybrid_engine.cpp.o.d"
  "/root/repo/tests/core/test_latency_surface.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_latency_surface.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_latency_surface.cpp.o.d"
  "/root/repo/tests/core/test_meter_curve.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_meter_curve.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_meter_curve.cpp.o.d"
  "/root/repo/tests/core/test_prewarm_and_period.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_prewarm_and_period.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_prewarm_and_period.cpp.o.d"
  "/root/repo/tests/core/test_queueing.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_queueing.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_queueing.cpp.o.d"
  "/root/repo/tests/core/test_resource_accounting.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_resource_accounting.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_resource_accounting.cpp.o.d"
  "/root/repo/tests/core/test_weight_estimator.cpp" "tests/CMakeFiles/amoeba_tests.dir/core/test_weight_estimator.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/core/test_weight_estimator.cpp.o.d"
  "/root/repo/tests/exp/test_artifact_cache.cpp" "tests/CMakeFiles/amoeba_tests.dir/exp/test_artifact_cache.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/exp/test_artifact_cache.cpp.o.d"
  "/root/repo/tests/exp/test_profiling.cpp" "tests/CMakeFiles/amoeba_tests.dir/exp/test_profiling.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/exp/test_profiling.cpp.o.d"
  "/root/repo/tests/exp/test_scenario.cpp" "tests/CMakeFiles/amoeba_tests.dir/exp/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/exp/test_scenario.cpp.o.d"
  "/root/repo/tests/exp/test_sweep_table.cpp" "tests/CMakeFiles/amoeba_tests.dir/exp/test_sweep_table.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/exp/test_sweep_table.cpp.o.d"
  "/root/repo/tests/iaas/test_iaas_platform.cpp" "tests/CMakeFiles/amoeba_tests.dir/iaas/test_iaas_platform.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/iaas/test_iaas_platform.cpp.o.d"
  "/root/repo/tests/iaas/test_vm.cpp" "tests/CMakeFiles/amoeba_tests.dir/iaas/test_vm.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/iaas/test_vm.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/amoeba_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/kernels/test_kernels.cpp" "tests/CMakeFiles/amoeba_tests.dir/kernels/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/kernels/test_kernels.cpp.o.d"
  "/root/repo/tests/linalg/test_jacobi_eigen.cpp" "tests/CMakeFiles/amoeba_tests.dir/linalg/test_jacobi_eigen.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/linalg/test_jacobi_eigen.cpp.o.d"
  "/root/repo/tests/linalg/test_least_squares.cpp" "tests/CMakeFiles/amoeba_tests.dir/linalg/test_least_squares.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/linalg/test_least_squares.cpp.o.d"
  "/root/repo/tests/linalg/test_matrix.cpp" "tests/CMakeFiles/amoeba_tests.dir/linalg/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/linalg/test_matrix.cpp.o.d"
  "/root/repo/tests/linalg/test_pca.cpp" "tests/CMakeFiles/amoeba_tests.dir/linalg/test_pca.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/linalg/test_pca.cpp.o.d"
  "/root/repo/tests/serverless/test_container_pool.cpp" "tests/CMakeFiles/amoeba_tests.dir/serverless/test_container_pool.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/serverless/test_container_pool.cpp.o.d"
  "/root/repo/tests/serverless/test_contention.cpp" "tests/CMakeFiles/amoeba_tests.dir/serverless/test_contention.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/serverless/test_contention.cpp.o.d"
  "/root/repo/tests/serverless/test_platform.cpp" "tests/CMakeFiles/amoeba_tests.dir/serverless/test_platform.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/serverless/test_platform.cpp.o.d"
  "/root/repo/tests/sim/test_counting_resource.cpp" "tests/CMakeFiles/amoeba_tests.dir/sim/test_counting_resource.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/sim/test_counting_resource.cpp.o.d"
  "/root/repo/tests/sim/test_engine.cpp" "tests/CMakeFiles/amoeba_tests.dir/sim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/sim/test_engine.cpp.o.d"
  "/root/repo/tests/sim/test_fair_share.cpp" "tests/CMakeFiles/amoeba_tests.dir/sim/test_fair_share.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/sim/test_fair_share.cpp.o.d"
  "/root/repo/tests/sim/test_random.cpp" "tests/CMakeFiles/amoeba_tests.dir/sim/test_random.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/sim/test_random.cpp.o.d"
  "/root/repo/tests/stats/test_gauge.cpp" "tests/CMakeFiles/amoeba_tests.dir/stats/test_gauge.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/stats/test_gauge.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/amoeba_tests.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_online_moments.cpp" "tests/CMakeFiles/amoeba_tests.dir/stats/test_online_moments.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/stats/test_online_moments.cpp.o.d"
  "/root/repo/tests/stats/test_p2_quantile.cpp" "tests/CMakeFiles/amoeba_tests.dir/stats/test_p2_quantile.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/stats/test_p2_quantile.cpp.o.d"
  "/root/repo/tests/stats/test_percentile.cpp" "tests/CMakeFiles/amoeba_tests.dir/stats/test_percentile.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/stats/test_percentile.cpp.o.d"
  "/root/repo/tests/stats/test_rate_estimator.cpp" "tests/CMakeFiles/amoeba_tests.dir/stats/test_rate_estimator.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/stats/test_rate_estimator.cpp.o.d"
  "/root/repo/tests/stats/test_timeseries.cpp" "tests/CMakeFiles/amoeba_tests.dir/stats/test_timeseries.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/stats/test_timeseries.cpp.o.d"
  "/root/repo/tests/stats/test_utilization.cpp" "tests/CMakeFiles/amoeba_tests.dir/stats/test_utilization.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/stats/test_utilization.cpp.o.d"
  "/root/repo/tests/workload/test_diurnal_trace.cpp" "tests/CMakeFiles/amoeba_tests.dir/workload/test_diurnal_trace.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/workload/test_diurnal_trace.cpp.o.d"
  "/root/repo/tests/workload/test_function_profile.cpp" "tests/CMakeFiles/amoeba_tests.dir/workload/test_function_profile.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/workload/test_function_profile.cpp.o.d"
  "/root/repo/tests/workload/test_functionbench.cpp" "tests/CMakeFiles/amoeba_tests.dir/workload/test_functionbench.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/workload/test_functionbench.cpp.o.d"
  "/root/repo/tests/workload/test_load_generator.cpp" "tests/CMakeFiles/amoeba_tests.dir/workload/test_load_generator.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/workload/test_load_generator.cpp.o.d"
  "/root/repo/tests/workload/test_meters.cpp" "tests/CMakeFiles/amoeba_tests.dir/workload/test_meters.cpp.o" "gcc" "tests/CMakeFiles/amoeba_tests.dir/workload/test_meters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_iaas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
