# Empty dependencies file for amoeba_tests.
# This may be replaced when dependencies are built.
