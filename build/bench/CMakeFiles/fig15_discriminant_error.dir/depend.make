# Empty dependencies file for fig15_discriminant_error.
# This may be replaced when dependencies are built.
