file(REMOVE_RECURSE
  "CMakeFiles/fig15_discriminant_error.dir/fig15_discriminant_error.cpp.o"
  "CMakeFiles/fig15_discriminant_error.dir/fig15_discriminant_error.cpp.o.d"
  "fig15_discriminant_error"
  "fig15_discriminant_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_discriminant_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
