file(REMOVE_RECURSE
  "CMakeFiles/fig03_peak_load.dir/fig03_peak_load.cpp.o"
  "CMakeFiles/fig03_peak_load.dir/fig03_peak_load.cpp.o.d"
  "fig03_peak_load"
  "fig03_peak_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_peak_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
