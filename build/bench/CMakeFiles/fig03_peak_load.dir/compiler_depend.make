# Empty compiler generated dependencies file for fig03_peak_load.
# This may be replaced when dependencies are built.
