# Empty dependencies file for fig02_iaas_utilization.
# This may be replaced when dependencies are built.
