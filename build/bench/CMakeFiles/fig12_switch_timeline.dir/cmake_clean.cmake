file(REMOVE_RECURSE
  "CMakeFiles/fig12_switch_timeline.dir/fig12_switch_timeline.cpp.o"
  "CMakeFiles/fig12_switch_timeline.dir/fig12_switch_timeline.cpp.o.d"
  "fig12_switch_timeline"
  "fig12_switch_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_switch_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
