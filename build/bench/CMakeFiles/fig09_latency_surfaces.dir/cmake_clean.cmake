file(REMOVE_RECURSE
  "CMakeFiles/fig09_latency_surfaces.dir/fig09_latency_surfaces.cpp.o"
  "CMakeFiles/fig09_latency_surfaces.dir/fig09_latency_surfaces.cpp.o.d"
  "fig09_latency_surfaces"
  "fig09_latency_surfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_latency_surfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
