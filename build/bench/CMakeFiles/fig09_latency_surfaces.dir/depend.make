# Empty dependencies file for fig09_latency_surfaces.
# This may be replaced when dependencies are built.
