file(REMOVE_RECURSE
  "CMakeFiles/fig13_usage_timeline.dir/fig13_usage_timeline.cpp.o"
  "CMakeFiles/fig13_usage_timeline.dir/fig13_usage_timeline.cpp.o.d"
  "fig13_usage_timeline"
  "fig13_usage_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_usage_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
