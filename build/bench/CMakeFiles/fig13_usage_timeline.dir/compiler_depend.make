# Empty compiler generated dependencies file for fig13_usage_timeline.
# This may be replaced when dependencies are built.
