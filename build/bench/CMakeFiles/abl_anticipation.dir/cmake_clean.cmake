file(REMOVE_RECURSE
  "CMakeFiles/abl_anticipation.dir/abl_anticipation.cpp.o"
  "CMakeFiles/abl_anticipation.dir/abl_anticipation.cpp.o.d"
  "abl_anticipation"
  "abl_anticipation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_anticipation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
