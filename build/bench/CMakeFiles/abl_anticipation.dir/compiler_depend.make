# Empty compiler generated dependencies file for abl_anticipation.
# This may be replaced when dependencies are built.
