file(REMOVE_RECURSE
  "CMakeFiles/fig08_meter_curves.dir/fig08_meter_curves.cpp.o"
  "CMakeFiles/fig08_meter_curves.dir/fig08_meter_curves.cpp.o.d"
  "fig08_meter_curves"
  "fig08_meter_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_meter_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
