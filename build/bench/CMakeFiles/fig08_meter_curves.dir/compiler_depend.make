# Empty compiler generated dependencies file for fig08_meter_curves.
# This may be replaced when dependencies are built.
