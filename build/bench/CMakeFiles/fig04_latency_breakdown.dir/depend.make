# Empty dependencies file for fig04_latency_breakdown.
# This may be replaced when dependencies are built.
