
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_overhead_meters.cpp" "bench/CMakeFiles/tab_overhead_meters.dir/tab_overhead_meters.cpp.o" "gcc" "bench/CMakeFiles/tab_overhead_meters.dir/tab_overhead_meters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_iaas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
