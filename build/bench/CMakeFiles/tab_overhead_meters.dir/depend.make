# Empty dependencies file for tab_overhead_meters.
# This may be replaced when dependencies are built.
