file(REMOVE_RECURSE
  "CMakeFiles/tab_overhead_meters.dir/tab_overhead_meters.cpp.o"
  "CMakeFiles/tab_overhead_meters.dir/tab_overhead_meters.cpp.o.d"
  "tab_overhead_meters"
  "tab_overhead_meters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overhead_meters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
