file(REMOVE_RECURSE
  "CMakeFiles/fig11_resource_usage.dir/fig11_resource_usage.cpp.o"
  "CMakeFiles/fig11_resource_usage.dir/fig11_resource_usage.cpp.o.d"
  "fig11_resource_usage"
  "fig11_resource_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_resource_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
