# Empty dependencies file for abl_prewarm_headroom.
# This may be replaced when dependencies are built.
