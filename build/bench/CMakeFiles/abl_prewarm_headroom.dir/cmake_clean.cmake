file(REMOVE_RECURSE
  "CMakeFiles/abl_prewarm_headroom.dir/abl_prewarm_headroom.cpp.o"
  "CMakeFiles/abl_prewarm_headroom.dir/abl_prewarm_headroom.cpp.o.d"
  "abl_prewarm_headroom"
  "abl_prewarm_headroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_prewarm_headroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
