file(REMOVE_RECURSE
  "CMakeFiles/fig16_nop_qos_violation.dir/fig16_nop_qos_violation.cpp.o"
  "CMakeFiles/fig16_nop_qos_violation.dir/fig16_nop_qos_violation.cpp.o.d"
  "fig16_nop_qos_violation"
  "fig16_nop_qos_violation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_nop_qos_violation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
