# Empty compiler generated dependencies file for fig16_nop_qos_violation.
# This may be replaced when dependencies are built.
