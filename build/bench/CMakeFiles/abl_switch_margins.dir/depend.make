# Empty dependencies file for abl_switch_margins.
# This may be replaced when dependencies are built.
