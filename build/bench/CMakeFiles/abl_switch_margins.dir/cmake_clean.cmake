file(REMOVE_RECURSE
  "CMakeFiles/abl_switch_margins.dir/abl_switch_margins.cpp.o"
  "CMakeFiles/abl_switch_margins.dir/abl_switch_margins.cpp.o.d"
  "abl_switch_margins"
  "abl_switch_margins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_switch_margins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
