# Empty compiler generated dependencies file for tab03_sensitivity.
# This may be replaced when dependencies are built.
