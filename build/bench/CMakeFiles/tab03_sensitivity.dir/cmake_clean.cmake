file(REMOVE_RECURSE
  "CMakeFiles/tab03_sensitivity.dir/tab03_sensitivity.cpp.o"
  "CMakeFiles/tab03_sensitivity.dir/tab03_sensitivity.cpp.o.d"
  "tab03_sensitivity"
  "tab03_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
