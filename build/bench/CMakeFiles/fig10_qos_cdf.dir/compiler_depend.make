# Empty compiler generated dependencies file for fig10_qos_cdf.
# This may be replaced when dependencies are built.
