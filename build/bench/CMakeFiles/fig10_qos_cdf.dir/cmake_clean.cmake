file(REMOVE_RECURSE
  "CMakeFiles/fig10_qos_cdf.dir/fig10_qos_cdf.cpp.o"
  "CMakeFiles/fig10_qos_cdf.dir/fig10_qos_cdf.cpp.o.d"
  "fig10_qos_cdf"
  "fig10_qos_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_qos_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
