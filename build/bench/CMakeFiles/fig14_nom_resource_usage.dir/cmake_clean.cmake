file(REMOVE_RECURSE
  "CMakeFiles/fig14_nom_resource_usage.dir/fig14_nom_resource_usage.cpp.o"
  "CMakeFiles/fig14_nom_resource_usage.dir/fig14_nom_resource_usage.cpp.o.d"
  "fig14_nom_resource_usage"
  "fig14_nom_resource_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_nom_resource_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
