# Empty dependencies file for fig14_nom_resource_usage.
# This may be replaced when dependencies are built.
