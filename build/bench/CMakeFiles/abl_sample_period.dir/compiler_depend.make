# Empty compiler generated dependencies file for abl_sample_period.
# This may be replaced when dependencies are built.
