file(REMOVE_RECURSE
  "CMakeFiles/abl_sample_period.dir/abl_sample_period.cpp.o"
  "CMakeFiles/abl_sample_period.dir/abl_sample_period.cpp.o.d"
  "abl_sample_period"
  "abl_sample_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sample_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
