file(REMOVE_RECURSE
  "CMakeFiles/micro_benchmarks.dir/micro_kernels.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_kernels.cpp.o.d"
  "CMakeFiles/micro_benchmarks.dir/micro_linalg.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_linalg.cpp.o.d"
  "CMakeFiles/micro_benchmarks.dir/micro_queueing.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_queueing.cpp.o.d"
  "CMakeFiles/micro_benchmarks.dir/micro_simulator.cpp.o"
  "CMakeFiles/micro_benchmarks.dir/micro_simulator.cpp.o.d"
  "micro_benchmarks"
  "micro_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
