
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_kernels.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_kernels.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_kernels.cpp.o.d"
  "/root/repo/bench/micro_linalg.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_linalg.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_linalg.cpp.o.d"
  "/root/repo/bench/micro_queueing.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_queueing.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_queueing.cpp.o.d"
  "/root/repo/bench/micro_simulator.cpp" "bench/CMakeFiles/micro_benchmarks.dir/micro_simulator.cpp.o" "gcc" "bench/CMakeFiles/micro_benchmarks.dir/micro_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_iaas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
