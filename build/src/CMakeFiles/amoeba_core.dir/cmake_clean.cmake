file(REMOVE_RECURSE
  "CMakeFiles/amoeba_core.dir/core/amoeba.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/amoeba.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/contention_monitor.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/contention_monitor.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/deployment_controller.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/deployment_controller.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/hybrid_engine.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/hybrid_engine.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/latency_surface.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/latency_surface.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/meter_curve.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/meter_curve.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/prewarm_policy.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/prewarm_policy.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/queueing.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/queueing.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/resource_accounting.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/resource_accounting.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/sample_period.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/sample_period.cpp.o.d"
  "CMakeFiles/amoeba_core.dir/core/weight_estimator.cpp.o"
  "CMakeFiles/amoeba_core.dir/core/weight_estimator.cpp.o.d"
  "libamoeba_core.a"
  "libamoeba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
