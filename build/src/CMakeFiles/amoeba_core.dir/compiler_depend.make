# Empty compiler generated dependencies file for amoeba_core.
# This may be replaced when dependencies are built.
