file(REMOVE_RECURSE
  "libamoeba_core.a"
)
