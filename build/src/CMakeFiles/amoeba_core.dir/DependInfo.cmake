
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/amoeba.cpp" "src/CMakeFiles/amoeba_core.dir/core/amoeba.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/amoeba.cpp.o.d"
  "/root/repo/src/core/contention_monitor.cpp" "src/CMakeFiles/amoeba_core.dir/core/contention_monitor.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/contention_monitor.cpp.o.d"
  "/root/repo/src/core/deployment_controller.cpp" "src/CMakeFiles/amoeba_core.dir/core/deployment_controller.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/deployment_controller.cpp.o.d"
  "/root/repo/src/core/hybrid_engine.cpp" "src/CMakeFiles/amoeba_core.dir/core/hybrid_engine.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/hybrid_engine.cpp.o.d"
  "/root/repo/src/core/latency_surface.cpp" "src/CMakeFiles/amoeba_core.dir/core/latency_surface.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/latency_surface.cpp.o.d"
  "/root/repo/src/core/meter_curve.cpp" "src/CMakeFiles/amoeba_core.dir/core/meter_curve.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/meter_curve.cpp.o.d"
  "/root/repo/src/core/prewarm_policy.cpp" "src/CMakeFiles/amoeba_core.dir/core/prewarm_policy.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/prewarm_policy.cpp.o.d"
  "/root/repo/src/core/queueing.cpp" "src/CMakeFiles/amoeba_core.dir/core/queueing.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/queueing.cpp.o.d"
  "/root/repo/src/core/resource_accounting.cpp" "src/CMakeFiles/amoeba_core.dir/core/resource_accounting.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/resource_accounting.cpp.o.d"
  "/root/repo/src/core/sample_period.cpp" "src/CMakeFiles/amoeba_core.dir/core/sample_period.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/sample_period.cpp.o.d"
  "/root/repo/src/core/weight_estimator.cpp" "src/CMakeFiles/amoeba_core.dir/core/weight_estimator.cpp.o" "gcc" "src/CMakeFiles/amoeba_core.dir/core/weight_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_iaas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
