file(REMOVE_RECURSE
  "libamoeba_serverless.a"
)
