file(REMOVE_RECURSE
  "CMakeFiles/amoeba_serverless.dir/serverless/container.cpp.o"
  "CMakeFiles/amoeba_serverless.dir/serverless/container.cpp.o.d"
  "CMakeFiles/amoeba_serverless.dir/serverless/container_pool.cpp.o"
  "CMakeFiles/amoeba_serverless.dir/serverless/container_pool.cpp.o.d"
  "CMakeFiles/amoeba_serverless.dir/serverless/invocation.cpp.o"
  "CMakeFiles/amoeba_serverless.dir/serverless/invocation.cpp.o.d"
  "CMakeFiles/amoeba_serverless.dir/serverless/platform.cpp.o"
  "CMakeFiles/amoeba_serverless.dir/serverless/platform.cpp.o.d"
  "libamoeba_serverless.a"
  "libamoeba_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
