
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serverless/container.cpp" "src/CMakeFiles/amoeba_serverless.dir/serverless/container.cpp.o" "gcc" "src/CMakeFiles/amoeba_serverless.dir/serverless/container.cpp.o.d"
  "/root/repo/src/serverless/container_pool.cpp" "src/CMakeFiles/amoeba_serverless.dir/serverless/container_pool.cpp.o" "gcc" "src/CMakeFiles/amoeba_serverless.dir/serverless/container_pool.cpp.o.d"
  "/root/repo/src/serverless/invocation.cpp" "src/CMakeFiles/amoeba_serverless.dir/serverless/invocation.cpp.o" "gcc" "src/CMakeFiles/amoeba_serverless.dir/serverless/invocation.cpp.o.d"
  "/root/repo/src/serverless/platform.cpp" "src/CMakeFiles/amoeba_serverless.dir/serverless/platform.cpp.o" "gcc" "src/CMakeFiles/amoeba_serverless.dir/serverless/platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
