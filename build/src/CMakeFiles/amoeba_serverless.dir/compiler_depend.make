# Empty compiler generated dependencies file for amoeba_serverless.
# This may be replaced when dependencies are built.
