
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/jacobi_eigen.cpp" "src/CMakeFiles/amoeba_linalg.dir/linalg/jacobi_eigen.cpp.o" "gcc" "src/CMakeFiles/amoeba_linalg.dir/linalg/jacobi_eigen.cpp.o.d"
  "/root/repo/src/linalg/least_squares.cpp" "src/CMakeFiles/amoeba_linalg.dir/linalg/least_squares.cpp.o" "gcc" "src/CMakeFiles/amoeba_linalg.dir/linalg/least_squares.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/amoeba_linalg.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/amoeba_linalg.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/pca.cpp" "src/CMakeFiles/amoeba_linalg.dir/linalg/pca.cpp.o" "gcc" "src/CMakeFiles/amoeba_linalg.dir/linalg/pca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
