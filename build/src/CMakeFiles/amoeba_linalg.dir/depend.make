# Empty dependencies file for amoeba_linalg.
# This may be replaced when dependencies are built.
