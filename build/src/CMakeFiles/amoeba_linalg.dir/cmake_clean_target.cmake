file(REMOVE_RECURSE
  "libamoeba_linalg.a"
)
