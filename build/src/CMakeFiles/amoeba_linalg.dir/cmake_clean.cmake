file(REMOVE_RECURSE
  "CMakeFiles/amoeba_linalg.dir/linalg/jacobi_eigen.cpp.o"
  "CMakeFiles/amoeba_linalg.dir/linalg/jacobi_eigen.cpp.o.d"
  "CMakeFiles/amoeba_linalg.dir/linalg/least_squares.cpp.o"
  "CMakeFiles/amoeba_linalg.dir/linalg/least_squares.cpp.o.d"
  "CMakeFiles/amoeba_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/amoeba_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/amoeba_linalg.dir/linalg/pca.cpp.o"
  "CMakeFiles/amoeba_linalg.dir/linalg/pca.cpp.o.d"
  "libamoeba_linalg.a"
  "libamoeba_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
