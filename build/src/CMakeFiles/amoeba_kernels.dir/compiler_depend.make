# Empty compiler generated dependencies file for amoeba_kernels.
# This may be replaced when dependencies are built.
