
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cloud_stor.cpp" "src/CMakeFiles/amoeba_kernels.dir/kernels/cloud_stor.cpp.o" "gcc" "src/CMakeFiles/amoeba_kernels.dir/kernels/cloud_stor.cpp.o.d"
  "/root/repo/src/kernels/dd_io.cpp" "src/CMakeFiles/amoeba_kernels.dir/kernels/dd_io.cpp.o" "gcc" "src/CMakeFiles/amoeba_kernels.dir/kernels/dd_io.cpp.o.d"
  "/root/repo/src/kernels/float_op.cpp" "src/CMakeFiles/amoeba_kernels.dir/kernels/float_op.cpp.o" "gcc" "src/CMakeFiles/amoeba_kernels.dir/kernels/float_op.cpp.o.d"
  "/root/repo/src/kernels/linpack.cpp" "src/CMakeFiles/amoeba_kernels.dir/kernels/linpack.cpp.o" "gcc" "src/CMakeFiles/amoeba_kernels.dir/kernels/linpack.cpp.o.d"
  "/root/repo/src/kernels/matmul.cpp" "src/CMakeFiles/amoeba_kernels.dir/kernels/matmul.cpp.o" "gcc" "src/CMakeFiles/amoeba_kernels.dir/kernels/matmul.cpp.o.d"
  "/root/repo/src/kernels/native_meters.cpp" "src/CMakeFiles/amoeba_kernels.dir/kernels/native_meters.cpp.o" "gcc" "src/CMakeFiles/amoeba_kernels.dir/kernels/native_meters.cpp.o.d"
  "/root/repo/src/kernels/thread_pool.cpp" "src/CMakeFiles/amoeba_kernels.dir/kernels/thread_pool.cpp.o" "gcc" "src/CMakeFiles/amoeba_kernels.dir/kernels/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
