file(REMOVE_RECURSE
  "CMakeFiles/amoeba_kernels.dir/kernels/cloud_stor.cpp.o"
  "CMakeFiles/amoeba_kernels.dir/kernels/cloud_stor.cpp.o.d"
  "CMakeFiles/amoeba_kernels.dir/kernels/dd_io.cpp.o"
  "CMakeFiles/amoeba_kernels.dir/kernels/dd_io.cpp.o.d"
  "CMakeFiles/amoeba_kernels.dir/kernels/float_op.cpp.o"
  "CMakeFiles/amoeba_kernels.dir/kernels/float_op.cpp.o.d"
  "CMakeFiles/amoeba_kernels.dir/kernels/linpack.cpp.o"
  "CMakeFiles/amoeba_kernels.dir/kernels/linpack.cpp.o.d"
  "CMakeFiles/amoeba_kernels.dir/kernels/matmul.cpp.o"
  "CMakeFiles/amoeba_kernels.dir/kernels/matmul.cpp.o.d"
  "CMakeFiles/amoeba_kernels.dir/kernels/native_meters.cpp.o"
  "CMakeFiles/amoeba_kernels.dir/kernels/native_meters.cpp.o.d"
  "CMakeFiles/amoeba_kernels.dir/kernels/thread_pool.cpp.o"
  "CMakeFiles/amoeba_kernels.dir/kernels/thread_pool.cpp.o.d"
  "libamoeba_kernels.a"
  "libamoeba_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
