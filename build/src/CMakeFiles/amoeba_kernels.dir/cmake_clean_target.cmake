file(REMOVE_RECURSE
  "libamoeba_kernels.a"
)
