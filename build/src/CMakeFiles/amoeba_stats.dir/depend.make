# Empty dependencies file for amoeba_stats.
# This may be replaced when dependencies are built.
