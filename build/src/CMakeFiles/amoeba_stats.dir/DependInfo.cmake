
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/amoeba_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/amoeba_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/online_moments.cpp" "src/CMakeFiles/amoeba_stats.dir/stats/online_moments.cpp.o" "gcc" "src/CMakeFiles/amoeba_stats.dir/stats/online_moments.cpp.o.d"
  "/root/repo/src/stats/p2_quantile.cpp" "src/CMakeFiles/amoeba_stats.dir/stats/p2_quantile.cpp.o" "gcc" "src/CMakeFiles/amoeba_stats.dir/stats/p2_quantile.cpp.o.d"
  "/root/repo/src/stats/percentile.cpp" "src/CMakeFiles/amoeba_stats.dir/stats/percentile.cpp.o" "gcc" "src/CMakeFiles/amoeba_stats.dir/stats/percentile.cpp.o.d"
  "/root/repo/src/stats/rate_estimator.cpp" "src/CMakeFiles/amoeba_stats.dir/stats/rate_estimator.cpp.o" "gcc" "src/CMakeFiles/amoeba_stats.dir/stats/rate_estimator.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/CMakeFiles/amoeba_stats.dir/stats/timeseries.cpp.o" "gcc" "src/CMakeFiles/amoeba_stats.dir/stats/timeseries.cpp.o.d"
  "/root/repo/src/stats/utilization.cpp" "src/CMakeFiles/amoeba_stats.dir/stats/utilization.cpp.o" "gcc" "src/CMakeFiles/amoeba_stats.dir/stats/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
