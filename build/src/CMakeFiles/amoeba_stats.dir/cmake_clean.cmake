file(REMOVE_RECURSE
  "CMakeFiles/amoeba_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/amoeba_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/amoeba_stats.dir/stats/online_moments.cpp.o"
  "CMakeFiles/amoeba_stats.dir/stats/online_moments.cpp.o.d"
  "CMakeFiles/amoeba_stats.dir/stats/p2_quantile.cpp.o"
  "CMakeFiles/amoeba_stats.dir/stats/p2_quantile.cpp.o.d"
  "CMakeFiles/amoeba_stats.dir/stats/percentile.cpp.o"
  "CMakeFiles/amoeba_stats.dir/stats/percentile.cpp.o.d"
  "CMakeFiles/amoeba_stats.dir/stats/rate_estimator.cpp.o"
  "CMakeFiles/amoeba_stats.dir/stats/rate_estimator.cpp.o.d"
  "CMakeFiles/amoeba_stats.dir/stats/timeseries.cpp.o"
  "CMakeFiles/amoeba_stats.dir/stats/timeseries.cpp.o.d"
  "CMakeFiles/amoeba_stats.dir/stats/utilization.cpp.o"
  "CMakeFiles/amoeba_stats.dir/stats/utilization.cpp.o.d"
  "libamoeba_stats.a"
  "libamoeba_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
