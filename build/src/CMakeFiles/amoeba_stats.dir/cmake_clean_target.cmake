file(REMOVE_RECURSE
  "libamoeba_stats.a"
)
