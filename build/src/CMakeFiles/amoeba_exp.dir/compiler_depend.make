# Empty compiler generated dependencies file for amoeba_exp.
# This may be replaced when dependencies are built.
