file(REMOVE_RECURSE
  "libamoeba_exp.a"
)
