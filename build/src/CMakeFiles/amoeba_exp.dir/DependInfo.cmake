
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/artifact_cache.cpp" "src/CMakeFiles/amoeba_exp.dir/exp/artifact_cache.cpp.o" "gcc" "src/CMakeFiles/amoeba_exp.dir/exp/artifact_cache.cpp.o.d"
  "/root/repo/src/exp/profiling.cpp" "src/CMakeFiles/amoeba_exp.dir/exp/profiling.cpp.o" "gcc" "src/CMakeFiles/amoeba_exp.dir/exp/profiling.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/CMakeFiles/amoeba_exp.dir/exp/scenario.cpp.o" "gcc" "src/CMakeFiles/amoeba_exp.dir/exp/scenario.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "src/CMakeFiles/amoeba_exp.dir/exp/sweep.cpp.o" "gcc" "src/CMakeFiles/amoeba_exp.dir/exp/sweep.cpp.o.d"
  "/root/repo/src/exp/table.cpp" "src/CMakeFiles/amoeba_exp.dir/exp/table.cpp.o" "gcc" "src/CMakeFiles/amoeba_exp.dir/exp/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_iaas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
