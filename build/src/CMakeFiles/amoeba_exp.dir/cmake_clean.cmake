file(REMOVE_RECURSE
  "CMakeFiles/amoeba_exp.dir/exp/artifact_cache.cpp.o"
  "CMakeFiles/amoeba_exp.dir/exp/artifact_cache.cpp.o.d"
  "CMakeFiles/amoeba_exp.dir/exp/profiling.cpp.o"
  "CMakeFiles/amoeba_exp.dir/exp/profiling.cpp.o.d"
  "CMakeFiles/amoeba_exp.dir/exp/scenario.cpp.o"
  "CMakeFiles/amoeba_exp.dir/exp/scenario.cpp.o.d"
  "CMakeFiles/amoeba_exp.dir/exp/sweep.cpp.o"
  "CMakeFiles/amoeba_exp.dir/exp/sweep.cpp.o.d"
  "CMakeFiles/amoeba_exp.dir/exp/table.cpp.o"
  "CMakeFiles/amoeba_exp.dir/exp/table.cpp.o.d"
  "libamoeba_exp.a"
  "libamoeba_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
