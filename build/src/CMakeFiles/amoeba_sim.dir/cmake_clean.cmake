file(REMOVE_RECURSE
  "CMakeFiles/amoeba_sim.dir/sim/counting_resource.cpp.o"
  "CMakeFiles/amoeba_sim.dir/sim/counting_resource.cpp.o.d"
  "CMakeFiles/amoeba_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/amoeba_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/amoeba_sim.dir/sim/fair_share.cpp.o"
  "CMakeFiles/amoeba_sim.dir/sim/fair_share.cpp.o.d"
  "CMakeFiles/amoeba_sim.dir/sim/random.cpp.o"
  "CMakeFiles/amoeba_sim.dir/sim/random.cpp.o.d"
  "libamoeba_sim.a"
  "libamoeba_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
