file(REMOVE_RECURSE
  "CMakeFiles/amoeba_workload.dir/workload/diurnal_trace.cpp.o"
  "CMakeFiles/amoeba_workload.dir/workload/diurnal_trace.cpp.o.d"
  "CMakeFiles/amoeba_workload.dir/workload/function_profile.cpp.o"
  "CMakeFiles/amoeba_workload.dir/workload/function_profile.cpp.o.d"
  "CMakeFiles/amoeba_workload.dir/workload/functionbench.cpp.o"
  "CMakeFiles/amoeba_workload.dir/workload/functionbench.cpp.o.d"
  "CMakeFiles/amoeba_workload.dir/workload/load_generator.cpp.o"
  "CMakeFiles/amoeba_workload.dir/workload/load_generator.cpp.o.d"
  "CMakeFiles/amoeba_workload.dir/workload/meters.cpp.o"
  "CMakeFiles/amoeba_workload.dir/workload/meters.cpp.o.d"
  "libamoeba_workload.a"
  "libamoeba_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
