# Empty compiler generated dependencies file for amoeba_workload.
# This may be replaced when dependencies are built.
