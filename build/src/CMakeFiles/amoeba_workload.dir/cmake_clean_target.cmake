file(REMOVE_RECURSE
  "libamoeba_workload.a"
)
