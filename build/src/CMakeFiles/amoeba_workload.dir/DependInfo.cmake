
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/diurnal_trace.cpp" "src/CMakeFiles/amoeba_workload.dir/workload/diurnal_trace.cpp.o" "gcc" "src/CMakeFiles/amoeba_workload.dir/workload/diurnal_trace.cpp.o.d"
  "/root/repo/src/workload/function_profile.cpp" "src/CMakeFiles/amoeba_workload.dir/workload/function_profile.cpp.o" "gcc" "src/CMakeFiles/amoeba_workload.dir/workload/function_profile.cpp.o.d"
  "/root/repo/src/workload/functionbench.cpp" "src/CMakeFiles/amoeba_workload.dir/workload/functionbench.cpp.o" "gcc" "src/CMakeFiles/amoeba_workload.dir/workload/functionbench.cpp.o.d"
  "/root/repo/src/workload/load_generator.cpp" "src/CMakeFiles/amoeba_workload.dir/workload/load_generator.cpp.o" "gcc" "src/CMakeFiles/amoeba_workload.dir/workload/load_generator.cpp.o.d"
  "/root/repo/src/workload/meters.cpp" "src/CMakeFiles/amoeba_workload.dir/workload/meters.cpp.o" "gcc" "src/CMakeFiles/amoeba_workload.dir/workload/meters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/amoeba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/amoeba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
