file(REMOVE_RECURSE
  "CMakeFiles/amoeba_common.dir/common/assert.cpp.o"
  "CMakeFiles/amoeba_common.dir/common/assert.cpp.o.d"
  "libamoeba_common.a"
  "libamoeba_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
