# Empty compiler generated dependencies file for amoeba_iaas.
# This may be replaced when dependencies are built.
