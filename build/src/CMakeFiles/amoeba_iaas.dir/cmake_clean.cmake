file(REMOVE_RECURSE
  "CMakeFiles/amoeba_iaas.dir/iaas/platform.cpp.o"
  "CMakeFiles/amoeba_iaas.dir/iaas/platform.cpp.o.d"
  "CMakeFiles/amoeba_iaas.dir/iaas/vm.cpp.o"
  "CMakeFiles/amoeba_iaas.dir/iaas/vm.cpp.o.d"
  "libamoeba_iaas.a"
  "libamoeba_iaas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amoeba_iaas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
