file(REMOVE_RECURSE
  "libamoeba_iaas.a"
)
