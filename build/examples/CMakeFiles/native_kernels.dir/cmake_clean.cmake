file(REMOVE_RECURSE
  "CMakeFiles/native_kernels.dir/native_kernels.cpp.o"
  "CMakeFiles/native_kernels.dir/native_kernels.cpp.o.d"
  "native_kernels"
  "native_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
