#include "sim/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>
#include "obs/profiler.hpp"

namespace amoeba::sim {

namespace {
// Work below this many units is considered drained (guards float error for
// tiny work amounts).
constexpr double kWorkEpsilon = 1e-12;
// A stream whose projected remaining time is below this is complete. Work
// units span wildly different scales (core-seconds vs bytes), so the
// robust epsilon is in *time*: double rounding on a completion timestamp
// can leave remaining work worth up to ~ns of service, and rescheduling it
// would advance the clock by less than one ulp — an infinite event loop.
constexpr double kTimeEpsilon = 1e-9;

}  // namespace

FairShareResource::FairShareResource(Engine& engine, std::string name,
                                     double capacity, double interference)
    : engine_(engine),
      name_(std::move(name)),
      capacity_(capacity),
      interference_(interference) {
  AMOEBA_EXPECTS_MSG(capacity > 0.0, "resource capacity must be positive");
  AMOEBA_EXPECTS_MSG(interference >= 0.0, "interference must be >= 0");
  last_update_ = engine_.now();
  busy_mark_ = engine_.now();
}

FairShareResource::~FairShareResource() {
  if (completion_event_ != kNoEvent) engine_.cancel(completion_event_);
}

StreamId FairShareResource::open(double work, double cap,
                                 CompletionFn on_complete,
                                 std::string_view tag) {
  AMOEBA_EXPECTS(work >= 0.0);
  AMOEBA_EXPECTS(on_complete != nullptr);
  bank_progress();
  const StreamId id = next_id_++;
  Stream s;
  s.remaining = work;
  s.cap = (cap <= 0.0) ? capacity_ : std::min(cap, capacity_);
  s.tag = std::string(tag);
  s.on_complete = std::move(on_complete);
  if (!s.tag.empty()) demand_by_tag_[s.tag] += s.cap;
  streams_.emplace(id, std::move(s));
  reallocate();
  return id;
}

void FairShareResource::release_tag_demand(const Stream& s) {
  if (s.tag.empty()) return;
  auto it = demand_by_tag_.find(s.tag);
  if (it == demand_by_tag_.end()) return;
  it->second -= s.cap;
  // Drop entries that drained to (numerically) zero so a departed tenant
  // reads as exactly 0 demand, not as accumulated float dust.
  if (it->second <= s.cap * 1e-12) demand_by_tag_.erase(it);
}

double FairShareResource::close(StreamId id) {
  auto it = streams_.find(id);
  if (it == streams_.end()) return 0.0;
  bank_progress();
  const double remaining = it->second.remaining;
  release_tag_demand(it->second);
  streams_.erase(it);
  reallocate();
  return remaining;
}

double FairShareResource::pressure() const noexcept {
  double demand = 0.0;
  for (const auto& [id, s] : streams_) demand += s.cap;
  return demand / capacity_;
}

double FairShareResource::demand_of(std::string_view tag) const noexcept {
  auto it = demand_by_tag_.find(tag);
  return it == demand_by_tag_.end() ? 0.0 : it->second;
}

double FairShareResource::pressure_of(std::string_view tag) const noexcept {
  return demand_of(tag) / capacity_;
}

double FairShareResource::external_pressure(
    std::string_view tag) const noexcept {
  return std::max(0.0, pressure() - pressure_of(tag));
}

std::map<std::string, double, std::less<>> FairShareResource::demand_by_tag()
    const {
  return demand_by_tag_;
}

double FairShareResource::rate_of(StreamId id) const noexcept {
  auto it = streams_.find(id);
  return it == streams_.end() ? 0.0 : it->second.rate;
}

double FairShareResource::utilization() const noexcept {
  return allocated_rate_ / capacity_;
}

double FairShareResource::busy_capacity_seconds(Time now) const noexcept {
  // Lazily extend the integral to `now` at the current allocation rate.
  if (now > busy_mark_) {
    busy_integral_ += allocated_rate_ * (now - busy_mark_);
    busy_mark_ = now;
  }
  return busy_integral_;
}

void FairShareResource::bank_progress() {
  const Time now = engine_.now();
  const double dt = now - last_update_;
  if (dt > 0.0) {
    for (auto& [id, s] : streams_) {
      s.remaining = std::max(0.0, s.remaining - s.rate * dt);
    }
    busy_capacity_seconds(now);  // extend utilization integral
  }
  last_update_ = now;
}

void FairShareResource::reallocate() {
  AMOEBA_PROF_SCOPE(kFairShare);
  // Progressive filling: process streams in ascending cap order; each takes
  // min(cap, remaining_capacity / remaining_streams). This is the standard
  // max-min fair ("water-filling") allocation.
  busy_capacity_seconds(engine_.now());  // close integral at old rate
  std::vector<std::pair<double, StreamId>> by_cap;
  by_cap.reserve(streams_.size());
  for (const auto& [id, s] : streams_) by_cap.emplace_back(s.cap, id);
  std::sort(by_cap.begin(), by_cap.end());

  double remaining_capacity = capacity_;
  std::size_t remaining_streams = by_cap.size();
  allocated_rate_ = 0.0;
  for (const auto& [cap, id] : by_cap) {
    const double equal_share = remaining_capacity / static_cast<double>(remaining_streams);
    const double rate = std::min(cap, equal_share);
    streams_.at(id).rate = rate;
    allocated_rate_ += rate;
    remaining_capacity -= rate;
    --remaining_streams;
  }

  // Utilization-dependent interference penalty (shared caches / memory
  // bandwidth): everyone slows together as the resource fills up.
  if (interference_ > 0.0 && allocated_rate_ > 0.0) {
    const double utilization = allocated_rate_ / capacity_;
    const double penalty = 1.0 / (1.0 + interference_ * utilization);
    for (auto& [id, s] : streams_) s.rate *= penalty;
    allocated_rate_ *= penalty;
  }

  // Reschedule the single completion event at the earliest finish.
  if (completion_event_ != kNoEvent) {
    engine_.cancel(completion_event_);
    completion_event_ = kNoEvent;
  }
  Time earliest = std::numeric_limits<Time>::infinity();
  for (const auto& [id, s] : streams_) {
    if (s.remaining <= kWorkEpsilon ||
        (s.rate > 0.0 && s.remaining <= s.rate * kTimeEpsilon)) {
      earliest = engine_.now();
      break;
    }
    if (s.rate > 0.0) {
      earliest = std::min(earliest, engine_.now() + s.remaining / s.rate);
    }
  }
  if (std::isfinite(earliest)) {
    completion_event_ =
        engine_.schedule(earliest, [this] { on_completion_event(); });
  }
}

void FairShareResource::on_completion_event() {
  AMOEBA_PROF_SCOPE(kFairShare);
  completion_event_ = kNoEvent;
  bank_progress();
  // Collect every stream that drained (ties complete together, in id order).
  std::vector<std::pair<StreamId, CompletionFn>> done;
  for (auto it = streams_.begin(); it != streams_.end();) {
    const Stream& s = it->second;
    if (s.remaining <= kWorkEpsilon ||
        (s.rate > 0.0 && s.remaining <= s.rate * kTimeEpsilon)) {
      release_tag_demand(s);
      done.emplace_back(it->first, std::move(it->second.on_complete));
      it = streams_.erase(it);
    } else {
      ++it;
    }
  }
  reallocate();
  // Fire callbacks after internal state is consistent; callbacks may open
  // new streams re-entrantly.
  for (auto& [id, fn] : done) fn();
}

}  // namespace amoeba::sim
