// A countable, non-shared resource (memory megabytes, VM slots).
//
// Unlike `FairShareResource`, a counting resource is either held or not:
// a container that acquired 256 MB keeps all 256 MB until it releases it.
// The class tracks the time-integral of held units for the resource-usage
// accounting behind the paper's Fig. 11/13/14.
#pragma once

#include <string>

#include "sim/engine.hpp"

namespace amoeba::sim {

class CountingResource {
 public:
  CountingResource(Engine& engine, std::string name, double capacity);

  /// Try to take `amount` units. Returns false (without side effects) if
  /// fewer than `amount` units are free.
  [[nodiscard]] bool try_acquire(double amount);

  /// Release `amount` previously acquired units.
  void release(double amount);

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] double in_use() const noexcept { return in_use_; }
  [[nodiscard]] double available() const noexcept { return capacity_ - in_use_; }
  [[nodiscard]] double utilization() const noexcept { return in_use_ / capacity_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Time-integral of held units up to `now` (unit·seconds). Lazily
  /// advances the integral, so it is also called for that side effect.
  double held_unit_seconds(Time now) const noexcept;

 private:
  Engine& engine_;
  std::string name_;
  double capacity_;
  double in_use_ = 0.0;
  mutable double integral_ = 0.0;
  mutable Time mark_ = 0.0;
};

}  // namespace amoeba::sim
