#include "sim/engine.hpp"

#include <bit>
#include <utility>

namespace amoeba::sim {

namespace {

/// SplitMix64-style finalizer for the trace hash.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

EventId Engine::schedule(Time at, std::function<void()> fn) {
  AMOEBA_EXPECTS_MSG(at >= now_, "cannot schedule an event in the past");
  AMOEBA_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(HeapEntry{at, id});
  handlers_.emplace(id, std::move(fn));
  ++live_;
  return id;
}

bool Engine::cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  AMOEBA_INVARIANT(live_ > 0);
  --live_;
  return true;
}

bool Engine::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    auto it = handlers_.find(top.id);
    if (it == handlers_.end()) continue;  // lazily-deleted (cancelled) slot
    std::function<void()> fn = std::move(it->second);
    handlers_.erase(it);
    --live_;
    AMOEBA_INVARIANT_VALS(top.at >= now_, top.at, now_);
    now_ = top.at;
    ++executed_;
    trace_hash_ = mix64(trace_hash_ ^ std::bit_cast<std::uint64_t>(top.at) ^
                        (top.id * 0x2545f4914f6cdd1dULL));
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(Time t) {
  AMOEBA_EXPECTS(t >= now_);
  while (!heap_.empty()) {
    // Peek past cancelled slots without executing.
    const HeapEntry top = heap_.top();
    if (!handlers_.contains(top.id)) {
      heap_.pop();
      continue;
    }
    if (top.at > t) break;
    step();
  }
  now_ = t;
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace amoeba::sim
