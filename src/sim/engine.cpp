#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/profiler.hpp"

namespace amoeba::sim {

namespace {

/// SplitMix64-style finalizer for the trace hash.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr EventId pack_id(std::uint32_t generation,
                          std::uint32_t slot) noexcept {
  return (static_cast<EventId>(generation) << 32) | slot;
}

}  // namespace

Engine::SlotIndex Engine::acquire_slot() {
  if (!free_slots_.empty()) {
    const SlotIndex s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  AMOEBA_EXPECTS_MSG(slots_.size() < kMaxSlots,
                     "event slot slab exhausted (2^24 concurrent events)");
  slots_.emplace_back();
  heap_pos_.push_back(kNotInHeap);
  return static_cast<SlotIndex>(slots_.size() - 1);
}

void Engine::release_slot(SlotIndex s) noexcept {
  Slot& slot = slots_[s];
  slot.fn = nullptr;
  heap_pos_[s] = kNotInHeap;
  // Bump the generation so outstanding handles to this slot go stale.
  // Skip 0 on wrap so (generation, slot) never packs to kNoEvent.
  if (++slot.generation == 0) slot.generation = 1;
  free_slots_.push_back(s);
}

void Engine::sift_up(std::size_t pos, HeapEntry e) noexcept {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kHeapArity;
    if (!before(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void Engine::sift_down(std::size_t pos, HeapEntry e) noexcept {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = pos * kHeapArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kHeapArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

void Engine::heap_push(HeapEntry e) {
  heap_.resize(heap_.size() + 1);
  sift_up(heap_.size() - 1, e);
}

void Engine::heap_remove(std::size_t pos) noexcept {
  AMOEBA_INVARIANT(pos < heap_.size());
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry
  // The replacement may need to move either direction.
  if (pos > 0 && before(last, heap_[(pos - 1) / kHeapArity])) {
    sift_up(pos, last);
  } else {
    sift_down(pos, last);
  }
}

EventId Engine::schedule(Time at, InlineCallback fn) {
  AMOEBA_EXPECTS_MSG(at >= now_, "cannot schedule an event in the past");
  AMOEBA_EXPECTS(static_cast<bool>(fn));
  const SlotIndex s = acquire_slot();
  slots_[s].fn = std::move(fn);
  return finish_schedule(at, s);
}

EventId Engine::finish_schedule(Time at, SlotIndex s) {
  const std::uint64_t seq = next_seq_++;
  AMOEBA_INVARIANT(seq < (std::uint64_t{1} << 40));
  heap_push(HeapEntry{at, (seq << kSlotBits) | s});
  return pack_id(slots_[s].generation, s);
}

bool Engine::cancel(EventId id) {
  const auto s = static_cast<SlotIndex>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (s >= slots_.size()) return false;
  Slot& slot = slots_[s];
  if (slot.generation != generation) return false;
  // Generation matches but the event is mid-fire (cancel from inside its
  // own handler): it has already left the heap, so there is nothing to
  // cancel — match the pre-slab semantics of returning false.
  if (heap_pos_[s] == kNotInHeap) return false;
  heap_remove(heap_pos_[s]);
  release_slot(s);
  return true;
}

bool Engine::step() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  AMOEBA_INVARIANT_VALS(top.at >= now_, top.at, now_);
  now_ = top.at;
  // Sim-time bucket advance only — the profiler reads no clock here unless
  // the bucket index changes, so the per-event cost is one branch.
  if (profiler_ != nullptr) profiler_->engine_dispatch(top.at);
  ++executed_;
  trace_hash_ = mix64(trace_hash_ ^ std::bit_cast<std::uint64_t>(top.at) ^
                      (top.seq() * 0x2545f4914f6cdd1dULL));
  // Move the callback out before freeing the slot: the handler may schedule
  // new events, which can both reuse this slot and grow the slab (invoking
  // in place would dangle if `slots_` reallocates). A handler cancelling
  // its own id gets false — the generation is already bumped.
  const SlotIndex fired = top.slot();
  InlineCallback fn = std::move(slots_[fired].fn);
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0, last);
  release_slot(fired);
  fn();
  return true;
}

void Engine::run_until(Time t) {
  AMOEBA_EXPECTS(t >= now_);
  if (profiler_ != nullptr) profiler_->engine_run_begin();
  while (!heap_.empty() && heap_[0].at <= t) {
    step();
  }
  now_ = t;
  if (profiler_ != nullptr) profiler_->engine_run_end();
}

void Engine::run() {
  if (profiler_ != nullptr) profiler_->engine_run_begin();
  while (step()) {
  }
  if (profiler_ != nullptr) profiler_->engine_run_end();
}

}  // namespace amoeba::sim
