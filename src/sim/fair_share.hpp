// Work-conserving max-min fair-shared resource.
//
// This is the ground-truth contention physics of the simulated cluster.
// A `FairShareResource` models one shared resource on a node — the CPU
// cores, the disk-IO bandwidth, or the NIC bandwidth. Clients open
// *streams*, each carrying an amount of `work` (core-seconds for CPU,
// bytes for bandwidth) and a per-stream rate cap (a container can use at
// most one core; a single TCP flow can be capped below line rate).
//
// At any instant the resource divides its capacity among active streams by
// max-min fairness (progressive filling): streams capped below the equal
// share keep their cap, the slack is redistributed among the rest. Whenever
// the active set changes, every stream's accrued progress is banked and the
// earliest completion is (re)scheduled on the engine. Completion order under
// equal remaining work is deterministic (stream-id order).
//
// The Amoeba controller never looks inside this class — it only observes
// latencies, exactly as on real hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "sim/engine.hpp"

namespace amoeba::sim {

using StreamId = std::uint64_t;

class FairShareResource {
 public:
  using CompletionFn = std::function<void()>;

  /// `capacity` is in work-units per second (cores, or bytes/s).
  /// `interference` >= 0 models throughput loss that grows with overall
  /// utilization (shared-cache / memory-bandwidth contention on a CPU):
  /// every stream's allocated rate is scaled by 1 / (1 + interference · U)
  /// where U is the pre-penalty utilization. 0 disables the effect
  /// (pure max-min sharing, appropriate for IO/NIC bandwidth).
  FairShareResource(Engine& engine, std::string name, double capacity,
                    double interference = 0.0);
  ~FairShareResource();
  FairShareResource(const FairShareResource&) = delete;
  FairShareResource& operator=(const FairShareResource&) = delete;

  /// Open a stream with `work` units to process, a per-stream rate cap
  /// (`cap <= 0` means "uncapped": the full capacity), and a completion
  /// callback fired (via the engine, at the exact completion instant) when
  /// the work drains. `work` == 0 completes at the current time but still
  /// via an engine event (never re-entrantly).
  ///
  /// `tag` optionally attributes the stream's demand to a client (the
  /// serverless platform tags streams with the owning function's name).
  /// Tagged demand is queryable via demand_of()/pressure_of(): this is the
  /// ground-truth per-tenant demand breakdown a multi-service cluster run
  /// needs to attribute cross-service pressure. Untagged streams cost
  /// nothing extra.
  StreamId open(double work, double cap, CompletionFn on_complete,
                std::string_view tag = {});

  /// Abort a stream before completion. Returns the remaining work (0 if the
  /// stream was unknown or already complete).
  double close(StreamId id);

  /// Number of currently active streams.
  [[nodiscard]] int active() const noexcept {
    return static_cast<int>(streams_.size());
  }

  /// Demand pressure: total capped demand rate divided by capacity.
  /// 1.0 means the resource is exactly saturated; >1 oversubscribed.
  [[nodiscard]] double pressure() const noexcept;

  /// Capped demand rate currently attributed to `tag` (0 for unknown tags).
  [[nodiscard]] double demand_of(std::string_view tag) const noexcept;

  /// `demand_of(tag) / capacity`: the tag's own share of pressure().
  [[nodiscard]] double pressure_of(std::string_view tag) const noexcept;

  /// Pressure from every *other* tenant: pressure() - pressure_of(tag).
  /// Untagged streams count as external to every tag.
  [[nodiscard]] double external_pressure(std::string_view tag) const noexcept;

  /// Snapshot of the per-tag demand breakdown (tags with live streams).
  [[nodiscard]] std::map<std::string, double, std::less<>> demand_by_tag()
      const;

  /// Instantaneous allocated rate of a stream (0 if unknown).
  [[nodiscard]] double rate_of(StreamId id) const noexcept;

  /// Fraction of capacity currently allocated (work-conserving utilization).
  [[nodiscard]] double utilization() const noexcept;

  /// Time-integral of utilization since construction. Lazily advances the
  /// integral to `now`, so it is also called internally for that side
  /// effect (hence no [[nodiscard]]).
  double busy_capacity_seconds(Time now) const noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double capacity() const noexcept { return capacity_; }

 private:
  struct Stream {
    double remaining = 0.0;
    double cap = 0.0;   // effective cap (already clamped to capacity)
    double rate = 0.0;  // current allocated rate
    std::string tag;    // demand attribution key ("" = untagged)
    CompletionFn on_complete;
  };

  /// Subtract a closing/completing stream's cap from its tag's demand,
  /// dropping the entry when the tag's last stream leaves.
  void release_tag_demand(const Stream& s);

  void bank_progress();  // accrue work done since last reallocation
  void reallocate();     // recompute max-min rates + reschedule completion
  void on_completion_event();

  Engine& engine_;
  std::string name_;
  double capacity_;
  double interference_;
  std::map<StreamId, Stream> streams_;  // ordered: deterministic iteration
  // Sum of effective caps per tag (only non-empty tags). Kept incrementally
  // so demand_of() is O(log #tags) rather than O(#streams).
  std::map<std::string, double, std::less<>> demand_by_tag_;
  StreamId next_id_ = 1;
  Time last_update_ = 0.0;
  EventId completion_event_ = kNoEvent;
  double allocated_rate_ = 0.0;          // sum of stream rates
  mutable double busy_integral_ = 0.0;   // ∫ allocated_rate dt
  mutable Time busy_mark_ = 0.0;
};

}  // namespace amoeba::sim
