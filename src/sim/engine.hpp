// Discrete-event simulation engine.
//
// The engine owns a time-ordered queue of events. Events scheduled at the
// same timestamp fire in the order they were scheduled (FIFO tie-break via a
// monotonically increasing sequence number), which makes every simulation in
// this repository deterministic for a fixed seed.
//
// Hot-path layout (see DESIGN.md §8): events live in a slab of reusable
// slots; callbacks are stored inline in the slot via `InlineCallback` (no
// per-event heap allocation up to ~48 capture bytes); pending events are
// ordered by an indexed 4-ary min-heap of slot indices, so `cancel` is a
// true O(log n) heap removal instead of a lazy tombstone. The `(timestamp,
// sequence)` trace hash and FIFO tie-break are bit-identical to the
// pre-slab engine — the determinism contract the repo's seed hashes pin.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "sim/inline_callback.hpp"

namespace amoeba::obs {
class Profiler;
}  // namespace amoeba::obs

namespace amoeba::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled. Packs (generation << 32 | slot); a handle to a slot that has
/// since been reused fails the generation check and `cancel` returns false.
using EventId = std::uint64_t;

/// Sentinel returned by functions that have no event to reference.
/// (Generations start at 1, so no live handle is ever 0.)
inline constexpr EventId kNoEvent = 0;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()). Accepts any
  /// void() callable; captures up to ~48 bytes are stored inline. The
  /// template overload constructs the callable directly inside the event
  /// slot — no intermediate InlineCallback, no relocation.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule(Time at, F&& fn) {
    AMOEBA_EXPECTS_MSG(at >= now_, "cannot schedule an event in the past");
    const SlotIndex s = acquire_slot();
    slots_[s].fn.emplace(std::forward<F>(fn));
    return finish_schedule(at, s);
  }
  EventId schedule(Time at, InlineCallback fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  template <typename F>
  EventId schedule_in(Time delay, F&& fn) {
    return schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event. Returns true if the event existed and had not
  /// yet fired; false otherwise (already fired / already cancelled).
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Number of live (pending, not cancelled) events.
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Run the next event. Returns false if the queue is empty.
  bool step();

  /// Run events until simulated time would exceed `t`, then set now() = t.
  /// Events scheduled exactly at `t` are executed.
  void run_until(Time t);

  /// Run until the event queue is empty.
  void run();

  /// Total number of events executed so far (for micro-benchmarks).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Order-sensitive hash over every executed event's (timestamp, sequence
  /// number). Two runs of the same simulation produce identical hashes iff
  /// they executed identical event traces — the determinism checker's
  /// anchor. Sequence numbers count `schedule` calls from 1, exactly as the
  /// pre-slab engine's EventIds did, so recorded hashes remain valid.
  [[nodiscard]] std::uint64_t trace_hash() const noexcept {
    return trace_hash_;
  }

  /// Attach an obs::Profiler (nullptr to detach). The profiler is pure
  /// wall-time bookkeeping: the engine tells it when the run loop starts
  /// and stops and what simulated time each dispatched event carries, and
  /// nothing flows back, so the event trace (and trace_hash()) is
  /// bit-identical with or without one. The profiler must also be attached
  /// to the thread driving this engine (Profiler::attach_current_thread).
  void set_profiler(obs::Profiler* p) {
    AMOEBA_EXPECTS_MSG(p == nullptr || profiler_ == nullptr,
                       "detach the current profiler before attaching another");
    profiler_ = p;
  }
  [[nodiscard]] obs::Profiler* profiler() const noexcept { return profiler_; }

 private:
  using SlotIndex = std::uint32_t;
  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;
  static constexpr std::size_t kHeapArity = 4;

  struct Slot {
    std::uint32_t generation = 1;  // bumped when the slot is freed
    InlineCallback fn;
  };

  // The sort key lives in the heap entry itself so sifting compares
  // contiguous memory; the slot is only touched to maintain heap_pos.
  // `seq_slot` packs (sequence << 24 | slot) into one word, keeping the
  // entry at 16 bytes: among equal timestamps the packed value orders by
  // sequence (slot occupies the low bits and sequences are unique), so the
  // FIFO tie-break is exact. 24 slot bits cap concurrent pending events at
  // ~16.7M; 40 sequence bits cap one engine's schedule calls at ~1.1e12.
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr SlotIndex kMaxSlots = (1u << kSlotBits) - 1;
  struct HeapEntry {
    Time at;
    std::uint64_t seq_slot;
    [[nodiscard]] SlotIndex slot() const noexcept {
      return static_cast<SlotIndex>(seq_slot & kMaxSlots);
    }
    [[nodiscard]] std::uint64_t seq() const noexcept {
      return seq_slot >> kSlotBits;
    }
  };
  static_assert(sizeof(HeapEntry) == 16);

  [[nodiscard]] static bool before(const HeapEntry& x,
                                   const HeapEntry& y) noexcept {
    if (x.at != y.at) return x.at < y.at;
    return x.seq_slot < y.seq_slot;  // FIFO: packed order == sequence order
  }

  SlotIndex acquire_slot();
  // Assigns the sequence number, pushes the heap entry, returns the handle.
  // Out of line so the template `schedule` inlines only slot setup.
  EventId finish_schedule(Time at, SlotIndex s);
  void release_slot(SlotIndex s) noexcept;
  void heap_push(HeapEntry e);
  void heap_remove(std::size_t pos) noexcept;
  void sift_up(std::size_t pos, HeapEntry e) noexcept;
  void sift_down(std::size_t pos, HeapEntry e) noexcept;
  void place(std::size_t pos, HeapEntry e) noexcept {
    heap_[pos] = e;
    heap_pos_[e.slot()] = static_cast<std::uint32_t>(pos);
  }

  Time now_ = 0.0;
  obs::Profiler* profiler_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t trace_hash_ = 0x9e3779b97f4a7c15ULL;
  std::vector<Slot> slots_;            // slab; index = low 32 bits of EventId
  // Dense side array (slot -> heap position, kNotInHeap when not queued):
  // sifting writes it on every move, so it must not share cache lines with
  // the 64-byte slots.
  std::vector<std::uint32_t> heap_pos_;
  std::vector<SlotIndex> free_slots_;  // LIFO free list into slots_
  std::vector<HeapEntry> heap_;        // indexed 4-ary min-heap
};

}  // namespace amoeba::sim
