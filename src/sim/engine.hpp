// Discrete-event simulation engine.
//
// The engine owns a time-ordered queue of events. Events scheduled at the
// same timestamp fire in the order they were scheduled (FIFO tie-break via a
// monotonically increasing sequence number), which makes every simulation in
// this repository deterministic for a fixed seed.
//
// Cancellation uses lazy deletion: `cancel()` marks the slot; the heap pops
// skip dead slots. This keeps `schedule` / `cancel` at O(log n) amortized.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Opaque handle to a scheduled event; valid until the event fires or is
/// cancelled.
using EventId = std::uint64_t;

/// Sentinel returned by functions that have no event to reference.
inline constexpr EventId kNoEvent = 0;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time. Starts at 0.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()).
  EventId schedule(Time at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(Time delay, std::function<void()> fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns true if the event existed and had not
  /// yet fired; false otherwise (already fired / already cancelled).
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live (pending, not cancelled) events.
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }

  /// Run the next event. Returns false if the queue is empty.
  bool step();

  /// Run events until simulated time would exceed `t`, then set now() = t.
  /// Events scheduled exactly at `t` are executed.
  void run_until(Time t);

  /// Run until the event queue is empty.
  void run();

  /// Total number of events executed so far (for micro-benchmarks).
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Order-sensitive hash over every executed event's (timestamp, id).
  /// Two runs of the same simulation produce identical hashes iff they
  /// executed identical event traces — the determinism checker's anchor.
  [[nodiscard]] std::uint64_t trace_hash() const noexcept {
    return trace_hash_;
  }

 private:
  struct HeapEntry {
    Time at;
    EventId id;
    // Min-heap on (at, id); id order gives FIFO among equal timestamps.
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t trace_hash_ = 0x9e3779b97f4a7c15ULL;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace amoeba::sim
