// Small-buffer move-only callable for the event engine's hot path.
//
// `std::function` heap-allocates for captures beyond ~16 bytes, which makes
// every `Engine::schedule` an allocation. `InlineCallback` stores callables
// up to `kInlineCallbackBytes` directly inside the event slot (enough for a
// `this` pointer plus several captured scalars, or a whole `std::function`
// being forwarded), falling back to the heap only for oversized or
// throwing-move callables.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace amoeba::sim {

/// Inline storage size. Covers `this` + ~5 word-sized captures; measured to
/// hold every callback the simulators schedule except the switch-protocol
/// prewarm poll (which captures a std::string and takes the heap path).
inline constexpr std::size_t kInlineCallbackBytes = 48;

class InlineCallback {
 public:
  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(f)));  // lint: allow — SBO heap fallback
      ops_ = &heap_ops<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { take(std::move(other)); }

  /// Destroy the held callable (if any) and construct a new one in place.
  /// This is the zero-relocation path `Engine::schedule` uses to build the
  /// callback directly inside the event slot.
  template <typename F, typename D = std::decay_t<F>>
  void emplace(F&& f) {
    static_assert(!std::is_same_v<D, InlineCallback>);
    static_assert(std::is_invocable_r_v<void, D&>);
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(f)));  // lint: allow — SBO heap fallback
      ops_ = &heap_ops<D>;
    }
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      take(std::move(other));
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() {
    AMOEBA_EXPECTS_MSG(ops_ != nullptr, "invoking an empty InlineCallback");
    ops_->invoke(storage_);
  }

  /// True if the held callable lives in the inline buffer (test hook).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-construct the callable from `from` into `to`'s storage, then
    // destroy the source (relocation: event slots live in a growable slab).
    // nullptr means "memcpy the whole buffer" — the common case of a
    // trivially copyable lambda, kept indirect-call-free on the hot path.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* self) noexcept;  // nullptr = trivially destructible
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCallbackBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr bool trivially_relocatable() {
    return std::is_trivially_copyable_v<D> &&
           std::is_trivially_destructible_v<D>;
  }

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* self) { (*std::launder(reinterpret_cast<D*>(self)))(); },
      trivially_relocatable<D>()
          ? nullptr
          : +[](void* from, void* to) noexcept {
              D* src = std::launder(reinterpret_cast<D*>(from));
              ::new (to) D(std::move(*src));
              src->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* self) noexcept {
              std::launder(reinterpret_cast<D*>(self))->~D();
            },
      /*inline_storage=*/true,
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* self) { (**std::launder(reinterpret_cast<D**>(self)))(); },
      /*relocate=*/nullptr,  // moving the owning pointer is a memcpy
      [](void* self) noexcept { delete *std::launder(reinterpret_cast<D**>(self)); },
      /*inline_storage=*/false,
  };

  void take(InlineCallback&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate == nullptr) {
        std::memcpy(storage_, other.storage_, kInlineCallbackBytes);
      } else {
        ops_->relocate(other.storage_, storage_);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCallbackBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace amoeba::sim
