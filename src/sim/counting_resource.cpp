#include "sim/counting_resource.hpp"

#include <utility>

namespace amoeba::sim {

CountingResource::CountingResource(Engine& engine, std::string name,
                                   double capacity)
    : engine_(engine), name_(std::move(name)), capacity_(capacity) {
  AMOEBA_EXPECTS(capacity > 0.0);
  mark_ = engine_.now();
}

bool CountingResource::try_acquire(double amount) {
  AMOEBA_EXPECTS_VALS(amount >= 0.0, amount);
  if (in_use_ + amount > capacity_ + 1e-9) return false;
  held_unit_seconds(engine_.now());
  in_use_ += amount;
  AMOEBA_INVARIANT_VALS(in_use_ <= capacity_ + 1e-6, in_use_, capacity_);
  return true;
}

void CountingResource::release(double amount) {
  AMOEBA_EXPECTS_VALS(amount >= 0.0, amount);
  AMOEBA_EXPECTS_MSG(amount <= in_use_ + 1e-9, "releasing more than held");
  held_unit_seconds(engine_.now());
  in_use_ -= amount;
  if (in_use_ < 0.0) in_use_ = 0.0;
  AMOEBA_INVARIANT_VALS(in_use_ >= 0.0 && in_use_ <= capacity_ + 1e-6,
                        in_use_, capacity_);
}

double CountingResource::held_unit_seconds(Time now) const noexcept {
  if (now > mark_) {
    integral_ += in_use_ * (now - mark_);
    mark_ = now;
  }
  return integral_;
}

}  // namespace amoeba::sim
