#include "sim/random.hpp"

#include <cmath>

namespace amoeba::sim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

// GCC/Clang extension; __extension__ keeps -Wpedantic quiet about it.
__extension__ typedef unsigned __int128 amoeba_u128;

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method (unbiased).
  AMOEBA_ASSERT(n > 0);
  std::uint64_t x = (*this)();
  amoeba_u128 m = static_cast<amoeba_u128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<amoeba_u128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double lambda) {
  AMOEBA_EXPECTS(lambda > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -std::log1p(-u) / lambda;
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  AMOEBA_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  AMOEBA_EXPECTS(mean > 0.0);
  AMOEBA_EXPECTS(cv >= 0.0);
  if (cv == 0.0) return mean;
  // If X ~ LogNormal(m, s^2): E[X] = exp(m + s^2/2), CV^2 = exp(s^2) - 1.
  const double s2 = std::log1p(cv * cv);
  const double m = std::log(mean) - 0.5 * s2;
  return std::exp(m + std::sqrt(s2) * normal());
}

Rng Rng::fork(std::uint64_t stream_id) const noexcept {
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 29) ^ (stream_id * 0xda942042e4dd58b5ULL);
  return Rng(splitmix64(mix));
}

std::size_t weighted_choice(Rng& rng, const std::vector<double>& weights) {
  AMOEBA_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AMOEBA_EXPECTS(w >= 0.0);
    total += w;
  }
  AMOEBA_EXPECTS_MSG(total > 0.0, "at least one weight must be positive");
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: fall back to last
}

}  // namespace amoeba::sim
