// Deterministic fault injection for the simulated platforms.
//
// Real FaaS and IaaS control planes exhibit boot stragglers, allocation
// failures and lost telemetry (Aquatope, ASPLOS'23, models exactly this
// uncertainty). The injector centralises those draws so every failure in a
// run is (a) reproducible — each fault class consumes its own forked
// `sim::Rng` stream, so same-seed runs execute identical fault schedules —
// and (b) observable — per-class counters feed the ablation benches and
// the obs:: layer.
//
// Consumers (ContainerPool, VirtualMachine, ContentionMonitor) hold a
// non-owning pointer; a null pointer or an all-zero config costs nothing
// and draws nothing, so fault-free runs stay bit-identical to builds
// without the subsystem.
#pragma once

#include <cstdint>

#include "sim/random.hpp"

namespace amoeba::sim {

struct FaultConfig {
  // Serverless container cold starts.
  double container_boot_failure_p = 0.0;  ///< boot attempt dies at boot end
  double container_straggler_p = 0.0;     ///< boot time tail inflation
  double container_straggler_factor = 4.0;
  /// Deterministic override: fail the first n container boots outright
  /// (before any probabilistic draw). Test / targeted-scenario hook.
  int container_boot_fail_first_n = 0;

  // IaaS VM boots.
  double vm_boot_failure_p = 0.0;
  double vm_straggler_p = 0.0;
  double vm_straggler_factor = 3.0;
  int vm_boot_fail_first_n = 0;

  // Contention-meter samples.
  double meter_drop_p = 0.0;     ///< probe completion lost before recording
  double meter_outlier_p = 0.0;  ///< probe latency contaminated
  double meter_outlier_factor = 8.0;

  void validate() const;
  /// True if any fault class has a nonzero rate or deterministic override.
  [[nodiscard]] bool any() const noexcept;
};

struct FaultCounters {
  std::uint64_t container_boot_failures = 0;
  std::uint64_t container_stragglers = 0;
  std::uint64_t vm_boot_failures = 0;
  std::uint64_t vm_stragglers = 0;
  std::uint64_t meter_drops = 0;
  std::uint64_t meter_outliers = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return container_boot_failures + container_stragglers + vm_boot_failures +
           vm_stragglers + meter_drops + meter_outliers;
  }
};

class FaultInjector {
 public:
  struct BootFault {
    bool fail = false;
    double delay_multiplier = 1.0;  ///< applied to the nominal boot time
  };

  FaultInjector(FaultConfig cfg, Rng rng);

  /// Decide the fate of the next container cold start / VM boot. Draws are
  /// made only for fault classes with nonzero probability, so an all-zero
  /// config consumes no randomness.
  BootFault next_container_boot();
  BootFault next_vm_boot();

  /// True if the next meter probe sample should be lost.
  [[nodiscard]] bool next_meter_drop();
  /// Multiplier for the next recorded meter latency (1.0 = clean sample).
  [[nodiscard]] double next_meter_multiplier();

  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const FaultCounters& counters() const noexcept {
    return counters_;
  }

 private:
  FaultConfig cfg_;
  // Independent streams per fault class: the interleaving of container, VM
  // and meter decisions cannot couple their draw sequences.
  Rng container_rng_;
  Rng vm_rng_;
  Rng meter_rng_;
  FaultCounters counters_;
  std::uint64_t container_boots_seen_ = 0;
  std::uint64_t vm_boots_seen_ = 0;
};

}  // namespace amoeba::sim
