// Deterministic random-number utilities for the simulator.
//
// All stochastic behaviour in the repository flows through `Rng`, a
// xoshiro256++ generator seeded via SplitMix64. Standard-library
// distributions are avoided for the core draws because their algorithms are
// implementation-defined; the draws here are bit-reproducible across
// standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::sim {

/// SplitMix64 step; used for seeding and cheap hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Exponential variate with rate `lambda` (mean 1/lambda). Requires
  /// lambda > 0. Never returns exactly 0.
  [[nodiscard]] double exponential(double lambda);

  /// Standard normal variate (Marsaglia polar method).
  [[nodiscard]] double normal();

  /// Normal variate with the given mean and standard deviation (>= 0).
  [[nodiscard]] double normal(double mean, double stddev);

  /// Log-normal variate parameterized by the *target* mean and coefficient
  /// of variation of the resulting distribution (not of the underlying
  /// normal). Used for service-time jitter. Requires mean > 0, cv >= 0.
  [[nodiscard]] double lognormal_mean_cv(double mean, double cv);

  /// Derive an independent child generator (for share-nothing parallel
  /// sweeps). Deterministic in (this state, stream_id).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// One draw from a discrete distribution over `weights` (non-negative, at
/// least one positive). Returns the chosen index.
[[nodiscard]] std::size_t weighted_choice(Rng& rng,
                                          const std::vector<double>& weights);

}  // namespace amoeba::sim
