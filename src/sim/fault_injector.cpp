#include "sim/fault_injector.hpp"

namespace amoeba::sim {

namespace {

void check_probability(double p) { AMOEBA_EXPECTS(p >= 0.0 && p <= 1.0); }

}  // namespace

void FaultConfig::validate() const {
  check_probability(container_boot_failure_p);
  check_probability(container_straggler_p);
  check_probability(vm_boot_failure_p);
  check_probability(vm_straggler_p);
  check_probability(meter_drop_p);
  check_probability(meter_outlier_p);
  AMOEBA_EXPECTS(container_straggler_factor >= 1.0);
  AMOEBA_EXPECTS(vm_straggler_factor >= 1.0);
  AMOEBA_EXPECTS(meter_outlier_factor >= 1.0);
  AMOEBA_EXPECTS(container_boot_fail_first_n >= 0);
  AMOEBA_EXPECTS(vm_boot_fail_first_n >= 0);
}

bool FaultConfig::any() const noexcept {
  return container_boot_failure_p > 0.0 || container_straggler_p > 0.0 ||
         container_boot_fail_first_n > 0 || vm_boot_failure_p > 0.0 ||
         vm_straggler_p > 0.0 || vm_boot_fail_first_n > 0 ||
         meter_drop_p > 0.0 || meter_outlier_p > 0.0;
}

FaultInjector::FaultInjector(FaultConfig cfg, Rng rng)
    : cfg_(cfg),
      container_rng_(rng.fork(1)),
      vm_rng_(rng.fork(2)),
      meter_rng_(rng.fork(3)) {
  cfg_.validate();
}

FaultInjector::BootFault FaultInjector::next_container_boot() {
  BootFault out;
  ++container_boots_seen_;
  if (cfg_.container_straggler_p > 0.0 &&
      container_rng_.uniform() < cfg_.container_straggler_p) {
    out.delay_multiplier = cfg_.container_straggler_factor;
    ++counters_.container_stragglers;
  }
  if (container_boots_seen_ <=
      static_cast<std::uint64_t>(cfg_.container_boot_fail_first_n)) {
    out.fail = true;
  } else if (cfg_.container_boot_failure_p > 0.0 &&
             container_rng_.uniform() < cfg_.container_boot_failure_p) {
    out.fail = true;
  }
  if (out.fail) ++counters_.container_boot_failures;
  return out;
}

FaultInjector::BootFault FaultInjector::next_vm_boot() {
  BootFault out;
  ++vm_boots_seen_;
  if (cfg_.vm_straggler_p > 0.0 && vm_rng_.uniform() < cfg_.vm_straggler_p) {
    out.delay_multiplier = cfg_.vm_straggler_factor;
    ++counters_.vm_stragglers;
  }
  if (vm_boots_seen_ <= static_cast<std::uint64_t>(cfg_.vm_boot_fail_first_n)) {
    out.fail = true;
  } else if (cfg_.vm_boot_failure_p > 0.0 &&
             vm_rng_.uniform() < cfg_.vm_boot_failure_p) {
    out.fail = true;
  }
  if (out.fail) ++counters_.vm_boot_failures;
  return out;
}

bool FaultInjector::next_meter_drop() {
  if (cfg_.meter_drop_p <= 0.0) return false;
  if (meter_rng_.uniform() < cfg_.meter_drop_p) {
    ++counters_.meter_drops;
    return true;
  }
  return false;
}

double FaultInjector::next_meter_multiplier() {
  if (cfg_.meter_outlier_p <= 0.0) return 1.0;
  if (meter_rng_.uniform() < cfg_.meter_outlier_p) {
    ++counters_.meter_outliers;
    return cfg_.meter_outlier_factor;
  }
  return 1.0;
}

}  // namespace amoeba::sim
