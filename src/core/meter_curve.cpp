#include "core/meter_curve.hpp"

#include <algorithm>
#include <utility>

namespace amoeba::core {

MeterCurve::MeterCurve(std::vector<CurvePoint> points)
    : points_(std::move(points)) {
  AMOEBA_EXPECTS_MSG(points_.size() >= 2, "curve needs at least two points");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    AMOEBA_EXPECTS_MSG(points_[i].pressure > points_[i - 1].pressure,
                       "pressures must be strictly increasing");
  }
  for (const CurvePoint& p : points_) {
    AMOEBA_EXPECTS_VALS(p.latency >= 0.0, p.pressure, p.latency);
  }
  // Isotonic repair: contention cannot reduce latency; clamp simulation
  // noise so the inverse lookup stays well-defined.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    points_[i].latency = std::max(points_[i].latency, points_[i - 1].latency);
    AMOEBA_INVARIANT_MSG(points_[i].latency >= points_[i - 1].latency,
                         "isotonic repair must leave latency non-decreasing");
  }
}

double MeterCurve::latency_at(double pressure) const {
  if (pressure <= points_.front().pressure) return points_.front().latency;
  if (pressure >= points_.back().pressure) return points_.back().latency;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), pressure,
      [](const CurvePoint& p, double x) { return p.pressure < x; });
  const CurvePoint& hi = *it;
  const CurvePoint& lo = *std::prev(it);
  const double f = (pressure - lo.pressure) / (hi.pressure - lo.pressure);
  return lo.latency + f * (hi.latency - lo.latency);
}

double MeterCurve::pressure_for(double latency) const {
  if (latency <= points_.front().latency) return points_.front().pressure;
  if (latency >= points_.back().latency) return points_.back().pressure;
  // First segment whose upper latency reaches `latency`.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const CurvePoint& lo = points_[i - 1];
    const CurvePoint& hi = points_[i];
    if (latency <= hi.latency) {
      if (hi.latency <= lo.latency) return lo.pressure;  // flat segment
      const double f = (latency - lo.latency) / (hi.latency - lo.latency);
      const double p = lo.pressure + f * (hi.pressure - lo.pressure);
      // The inverted curve must land inside the calibrated pressure range;
      // anything outside means the isotonic repair or bracketing broke.
      AMOEBA_ENSURES_VALS(p >= points_.front().pressure &&
                              p <= points_.back().pressure,
                          p, latency);
      return p;
    }
  }
  return points_.back().pressure;
}

}  // namespace amoeba::core
