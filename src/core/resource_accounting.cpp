#include "core/resource_accounting.hpp"

namespace amoeba::core {

ServiceUsage ResourceAccountant::iaas_usage(const std::string& service,
                                            double now) {
  ServiceUsage u;
  if (iaas_.has_service(service)) {
    u.cpu_core_seconds = iaas_.rented_core_seconds(service, now);
    u.memory_mb_seconds = iaas_.rented_memory_mb_seconds(service, now);
  }
  return u;
}

ServiceUsage ResourceAccountant::serverless_usage(const std::string& service,
                                                  double now) {
  ServiceUsage u;
  if (serverless_.has_function(service)) {
    u.cpu_core_seconds = serverless_.cpu_core_seconds(service);
    u.memory_mb_seconds = serverless_.memory_mb_seconds(service, now);
  }
  return u;
}

ServiceUsage ResourceAccountant::usage(const std::string& service,
                                       double now) {
  ServiceUsage u = iaas_usage(service, now);
  u += serverless_usage(service, now);
  return u;
}

}  // namespace amoeba::core
