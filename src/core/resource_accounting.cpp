#include "core/resource_accounting.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace amoeba::core {

ServiceUsage ResourceAccountant::iaas_usage(const std::string& service,
                                            double now) {
  ServiceUsage u;
  if (iaas_.has_service(service)) {
    u.cpu_core_seconds = iaas_.rented_core_seconds(service, now);
    u.memory_mb_seconds = iaas_.rented_memory_mb_seconds(service, now);
  }
  return u;
}

ServiceUsage ResourceAccountant::serverless_usage(const std::string& service,
                                                  double now) {
  ServiceUsage u;
  if (serverless_.has_function(service)) {
    u.cpu_core_seconds = serverless_.cpu_core_seconds(service);
    u.memory_mb_seconds = serverless_.memory_mb_seconds(service, now);
  }
  return u;
}

ServiceUsage ResourceAccountant::usage(const std::string& service,
                                       double now) {
  ServiceUsage u = iaas_usage(service, now);
  u += serverless_usage(service, now);
  return u;
}

std::vector<int> split_container_budget(const std::vector<int>& asks,
                                        int budget) {
  if (asks.empty()) return {};
  for (const int a : asks) AMOEBA_EXPECTS_MSG(a >= 1, "asks must be >= 1");
  const std::int64_t total =
      std::accumulate(asks.begin(), asks.end(), std::int64_t{0});
  if (total <= budget) return asks;  // everyone fits: no arbitration needed
  const auto n = static_cast<std::int64_t>(asks.size());
  AMOEBA_EXPECTS_MSG(budget >= n,
                     "budget cannot guarantee one container per service");

  // Guarantee 1 container each, then split the spare proportionally to the
  // excess ask (ask-1) with the largest-remainder method. Integer-exact and
  // deterministic: remainder ties go to the lower index.
  const std::int64_t spare = budget - n;
  const std::int64_t excess_total = total - n;  // > spare since total > budget
  std::vector<int> grants(asks.size(), 1);
  std::vector<std::pair<std::int64_t, std::size_t>> remainders;
  remainders.reserve(asks.size());
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < asks.size(); ++i) {
    const std::int64_t num = spare * (asks[i] - 1);
    grants[i] += static_cast<int>(num / excess_total);
    assigned += num / excess_total;
    remainders.emplace_back(num % excess_total, i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (std::int64_t k = 0; k < spare - assigned; ++k) {
    grants[remainders[static_cast<std::size_t>(k)].second] += 1;
  }
  return grants;
}

}  // namespace amoeba::core
