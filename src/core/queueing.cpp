#include "core/queueing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace amoeba::core::queueing {

namespace {

void check_params(double lambda, int n, double mu) {
  AMOEBA_EXPECTS_VALS(lambda > 0.0, lambda);
  AMOEBA_EXPECTS_VALS(n >= 1, n);
  AMOEBA_EXPECTS_VALS(mu > 0.0, mu);
}

/// Postcondition shared by the state-probability functions: a probability.
bool is_probability(double p) { return p >= 0.0 && p <= 1.0; }

/// log of Σ exp(x_i) computed stably.
double log_sum_exp(const std::vector<double>& xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - m);
  return m + std::log(s);
}

/// log π₀ for a stable M/M/N system.
double log_pi0(double lambda, int n, double mu) {
  const double a = lambda / mu;  // offered load in Erlangs = nρ
  const double r = a / n;        // ρ
  std::vector<double> terms;
  terms.reserve(static_cast<std::size_t>(n) + 1);
  const double log_a = std::log(a);
  for (int k = 0; k < n; ++k) {
    terms.push_back(k * log_a - std::lgamma(k + 1.0));
  }
  // (nρ)^n / (n! (1-ρ))
  terms.push_back(n * log_a - std::lgamma(n + 1.0) - std::log1p(-r));
  return -log_sum_exp(terms);
}

/// log π_n.
double log_pin(double lambda, int n, double mu) {
  const double a = lambda / mu;
  return n * std::log(a) - std::lgamma(n + 1.0) + log_pi0(lambda, n, mu);
}

}  // namespace

double rho(double lambda, int n, double mu) {
  check_params(lambda, n, mu);
  return lambda / (n * mu);
}

double pi0(double lambda, int n, double mu) {
  check_params(lambda, n, mu);
  AMOEBA_EXPECTS_MSG(rho(lambda, n, mu) < 1.0, "system must be stable");
  const double p = std::exp(log_pi0(lambda, n, mu));
  AMOEBA_ENSURES_VALS(is_probability(p), p, lambda, n, mu);
  return p;
}

double pi_n(double lambda, int n, double mu) {
  check_params(lambda, n, mu);
  AMOEBA_EXPECTS_MSG(rho(lambda, n, mu) < 1.0, "system must be stable");
  const double p = std::exp(log_pin(lambda, n, mu));
  AMOEBA_ENSURES_VALS(is_probability(p), p, lambda, n, mu);
  return p;
}

double erlang_c(double lambda, int n, double mu) {
  check_params(lambda, n, mu);
  const double r = rho(lambda, n, mu);
  AMOEBA_EXPECTS_MSG(r < 1.0, "system must be stable");
  const double c = std::exp(log_pin(lambda, n, mu) - std::log1p(-r));
  AMOEBA_ENSURES_VALS(is_probability(c), c, lambda, n, mu);
  return c;
}

double wait_quantile(double lambda, int n, double mu, double q) {
  check_params(lambda, n, mu);
  AMOEBA_EXPECTS(q > 0.0 && q < 1.0);
  const double r = rho(lambda, n, mu);
  AMOEBA_EXPECTS_MSG(r < 1.0, "system must be stable");
  // F_W(t) = 1 - C e^{-nμ(1-ρ)t} with C = π_n/(1-ρ) (Eq. 4).
  const double log_c = log_pin(lambda, n, mu) - std::log1p(-r);
  // Solve 1 - C e^{-θt} = q  ->  t = (log C - log(1-q)) / θ.
  const double theta = n * mu * (1.0 - r);
  const double t = std::max((log_c - std::log1p(-q)) / theta, 0.0);
  AMOEBA_ENSURES_VALS(std::isfinite(t), t, lambda, n, mu, q);
  return t;
}

double latency_quantile(double lambda, int n, double mu, double r) {
  return wait_quantile(lambda, n, mu, r) + 1.0 / mu;
}

bool qos_satisfied(double lambda, int n, double mu, double t_d, double r) {
  check_params(lambda, n, mu);
  AMOEBA_EXPECTS(t_d > 0.0);
  if (rho(lambda, n, mu) >= 1.0) return false;
  return latency_quantile(lambda, n, mu, r) <= t_d;
}

std::optional<double> eq5_lambda_step(double lambda_hint, int n, double mu,
                                      double t_d, double r) {
  check_params(lambda_hint, n, mu);
  AMOEBA_EXPECTS(t_d > 0.0);
  AMOEBA_EXPECTS(r > 0.0 && r < 1.0);
  const double slack = t_d - 1.0 / mu;
  if (slack <= 0.0) return std::nullopt;
  const double rh = rho(lambda_hint, n, mu);
  if (rh >= 1.0) return std::nullopt;
  // ln[(1-r)(1-ρ)/π_n] evaluated at the hint.
  const double log_ratio =
      std::log1p(-r) + std::log1p(-rh) - log_pin(lambda_hint, n, mu);
  return n * mu + log_ratio / slack;
}

std::optional<double> eq5_lambda(int n, double mu, double t_d, double r,
                                 int max_iters,
                                 std::vector<double>* iterates) {
  AMOEBA_EXPECTS(max_iters > 0);
  if (iterates != nullptr) iterates->clear();
  if (t_d <= 1.0 / mu) return std::nullopt;
  double lambda = 0.5 * n * mu;
  if (iterates != nullptr) iterates->push_back(lambda);
  for (int i = 0; i < max_iters; ++i) {
    const auto next = eq5_lambda_step(lambda, n, mu, t_d, r);
    if (!next.has_value()) return std::nullopt;
    // Damp and clamp into the stable region; the bare fixed point can
    // overshoot ρ >= 1 when the target is loose.
    double nl = 0.5 * lambda + 0.5 * *next;
    nl = std::clamp(nl, 1e-9 * n * mu, (1.0 - 1e-9) * n * mu);
    if (iterates != nullptr) iterates->push_back(nl);
    if (std::abs(nl - lambda) <= 1e-9 * n * mu) {
      lambda = nl;
      break;
    }
    lambda = nl;
  }
  if (lambda <= 1e-6 * n * mu) return std::nullopt;
  // The clamp above keeps every returned operating point stable (ρ < 1).
  AMOEBA_ENSURES_VALS(lambda < n * mu, lambda, n, mu);
  return lambda;
}

std::optional<double> max_arrival_rate(int n, double mu, double t_d, double r,
                                       double tol) {
  AMOEBA_EXPECTS(n >= 1);
  AMOEBA_EXPECTS(mu > 0.0);
  AMOEBA_EXPECTS(t_d > 0.0);
  AMOEBA_EXPECTS(r > 0.0 && r < 1.0);
  AMOEBA_EXPECTS(tol > 0.0);
  const double hi_bound = n * mu * (1.0 - 1e-12);
  const double lo_probe = std::min(1e-9 * n * mu, hi_bound / 2.0);
  if (!qos_satisfied(lo_probe, n, mu, t_d, r)) return std::nullopt;
  // qos_satisfied is monotone decreasing in λ: bisect the boundary.
  double lo = lo_probe;        // satisfied
  double hi = hi_bound;        // not satisfied (ρ→1 diverges)
  if (qos_satisfied(hi, n, mu, t_d, r)) return hi;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (qos_satisfied(mid, n, mu, t_d, r)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<int> min_servers(double lambda, double mu, double t_d, double r,
                               int n_limit) {
  AMOEBA_EXPECTS(lambda > 0.0);
  AMOEBA_EXPECTS(mu > 0.0);
  AMOEBA_EXPECTS(n_limit >= 1);
  if (t_d <= 1.0 / mu) return std::nullopt;
  // Start just above the stability floor and scan up; the count is small in
  // practice so a doubling + linear refinement is unnecessary.
  int n = std::max(1, static_cast<int>(std::ceil(lambda / mu)));
  for (; n <= n_limit; ++n) {
    if (rho(lambda, n, mu) >= 1.0) continue;
    if (qos_satisfied(lambda, n, mu, t_d, r)) return n;
  }
  return std::nullopt;
}

double mean_wait(double lambda, int n, double mu) {
  const double c = erlang_c(lambda, n, mu);
  const double w = c / (n * mu - lambda);
  AMOEBA_ENSURES_VALS(w >= 0.0 && std::isfinite(w), w, lambda, n, mu);
  return w;
}

}  // namespace amoeba::core::queueing
