// Hybrid execution engine — paper §V.
//
// Routes each user query to whichever platform currently serves the
// microservice, and implements the switch protocol:
//
//   to serverless: prewarm n containers (Eq. 7) -> wait for the warm ack
//                  -> flip the route -> drain & stop the VM;
//   to IaaS:       boot the VM -> wait for the ready ack -> flip the route
//                  -> retire the service's containers (busy ones finish
//                  first: "releases the resources after all its allocated
//                  queries completed").
//
// While a service runs on IaaS, a configurable fraction of its queries is
// mirrored to the serverless platform; their latencies are the heartbeat
// samples that calibrate the controller's weights before any switch
// happens (paper §III step 1).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/deployment_controller.hpp"  // DeployMode
#include "core/prewarm_policy.hpp"
#include "iaas/platform.hpp"
#include "obs/observer.hpp"
#include "serverless/platform.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace amoeba::core {

struct HybridEngineConfig {
  PrewarmPolicy prewarm;
  bool enable_prewarm = true;     ///< false = Amoeba-NoP ablation
  double mirror_fraction = 0.08;  ///< IaaS-mode sampling share to serverless
  double prewarm_poll_s = 0.25;   ///< ack polling interval during switches
  double switch_timeout_s = 30.0; ///< abort a switch that cannot complete
  /// Max VM boot attempts per to-IaaS switch before the switch aborts
  /// (boots can fail under fault injection).
  int switch_max_retries = 3;
  /// Exponential backoff base for retry delays: the k-th retry waits
  /// prewarm_poll_s * backoff^k (capped by the switch timeout).
  double switch_retry_backoff = 2.0;
  /// After an aborted switch the service refuses new switch decisions for
  /// this long, so a persistently failing platform cannot make the
  /// controller flap (the runtime skips decisions while in_cooldown()).
  double abort_cooldown_s = 10.0;

  void validate() const;
};

struct SwitchEvent {
  double time = 0.0;
  std::string service;
  DeployMode to = DeployMode::kIaas;
  double load_qps = 0.0;  ///< load at the moment the switch completed
};

class HybridExecutionEngine {
 public:
  /// Observer for mirrored (shadow) query completions; these are
  /// measurement traffic, never returned to users.
  using MirrorObserver =
      std::function<void(const std::string& service,
                         const workload::QueryRecord&)>;

  HybridExecutionEngine(sim::Engine& engine,
                        serverless::ServerlessPlatform& serverless,
                        iaas::IaasPlatform& iaas, HybridEngineConfig cfg,
                        sim::Rng rng);

  /// Register a service on both platforms. `serverless_max_containers`
  /// is the per-function n_max (0 = memory-bounded only). The service
  /// starts in IaaS mode with its VM booting.
  void add_service(const workload::FunctionProfile& profile,
                   iaas::VmSpec vm_spec, int serverless_max_containers = 0);

  /// User-facing entry point.
  void submit(const std::string& service, workload::QueryCompletionFn on_done);

  /// Begin switching. `on_complete(true)` fires once the flip happened;
  /// `on_complete(false)` if the switch aborted (timeout / no capacity).
  /// Requires no switch in progress for this service.
  void switch_to_serverless(const std::string& service, double load_qps,
                            std::function<void(bool)> on_complete);
  void switch_to_iaas(const std::string& service, double load_qps,
                      std::function<void(bool)> on_complete);

  [[nodiscard]] DeployMode route(const std::string& service) const;
  [[nodiscard]] bool transitioning(const std::string& service) const;

  /// True while the post-abort cooldown is active for this service.
  [[nodiscard]] bool in_cooldown(const std::string& service) const;

  /// Containers the service could obtain right now: its current ones plus
  /// pool headroom, clamped to its n_max (the M/M/N "n").
  [[nodiscard]] int available_containers(const std::string& service) const;

  void set_mirror_observer(MirrorObserver obs) {
    mirror_observer_ = std::move(obs);
  }

  /// Attach the observability sink (non-owning; nullptr disables). Every
  /// switch-protocol phase then becomes a span on "svc:<name>/control" and
  /// the VM boot/drain lifecycle on "svc:<name>/vm".
  void set_observer(obs::Observer* observer) { obs_ = observer; }

  /// Keep the warm set sized to the current load while the service runs
  /// serverless (paper §V-A: the engine "continually monitors the control
  /// signal ... to keep enough warm containers for later queries").
  /// No-op when prewarm is disabled (Amoeba-NoP), off-route or switching.
  void maintain_warm(const std::string& service, double load_qps);

  /// Retarget the service's QoS budget: the Eq. 7 warm-set sizing in
  /// maintain_warm and the prewarm poll read the engine's profile copy, so
  /// a budget renormalization must update it here as well as in the
  /// controller (AmoebaRuntime::set_qos_target does both).
  void set_qos_target(const std::string& service, double qos_target_s);

  /// Enable/disable the sampling mirror for one service. The runtime turns
  /// it off once the controller's weight estimator is calibrated — the
  /// paper's pre-switch sampling exists to estimate w₀, not to run
  /// shadow traffic forever (its containers would cost real memory).
  void set_mirroring(const std::string& service, bool enabled);
  [[nodiscard]] bool mirroring(const std::string& service) const;

  [[nodiscard]] const std::vector<SwitchEvent>& switch_events() const noexcept {
    return switch_events_;
  }
  [[nodiscard]] const HybridEngineConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] std::uint64_t mirrored_queries() const noexcept {
    return mirrored_;
  }
  [[nodiscard]] std::uint64_t switch_aborts() const noexcept {
    return switch_aborts_;
  }
  [[nodiscard]] std::uint64_t switch_retries() const noexcept {
    return switch_retries_;
  }

 private:
  struct ServiceState {
    workload::FunctionProfile profile;
    int max_containers = 0;
    DeployMode route = DeployMode::kIaas;
    bool mirroring = true;
    bool switching = false;
    std::uint64_t switch_generation = 0;  ///< invalidates stale poll events
    std::deque<workload::QueryCompletionFn> boot_buffer;  ///< pre-VM-ready
    // In-flight switch bookkeeping (valid while `switching`):
    double switch_load_qps = 0.0;  ///< load recorded on the switch event
    bool retired_before_switch = false;  ///< re-retire on abort
    sim::EventId switch_timeout = sim::kNoEvent;
    std::function<void(bool)> switch_done;
    double cooldown_until = 0.0;  ///< no new switches before this time
  };

  ServiceState& state_of(const std::string& service);
  const ServiceState& state_of(const std::string& service) const;
  void flush_boot_buffer(const std::string& service);
  /// Boot (and on injected failure, re-boot with backoff, without bound —
  /// the initial deployment must eventually exist) the service's first VM.
  void boot_initial_vm(const std::string& service, int attempt);
  void poll_prewarm(const std::string& service, int needed,
                    std::uint64_t generation, int shortfalls);
  void complete_to_serverless(const std::string& service, int needed);
  /// Timeout abort of an in-flight to-serverless switch: release the
  /// prewarmed warm set, restore the pre-switch retire state, start the
  /// cooldown, and report failure. Stale generations are ignored.
  void on_serverless_switch_timeout(const std::string& service, int needed,
                                    std::uint64_t generation);
  void start_vm_boot(const std::string& service, std::uint64_t generation,
                     int attempt);
  void on_vm_ready(const std::string& service, std::uint64_t generation);
  void on_vm_boot_failed(const std::string& service,
                         std::uint64_t generation, int attempt);
  void abort_to_iaas(const std::string& service);
  /// Pop the stored completion callback and finish the switch bookkeeping
  /// shared by every terminal path (cooldown on failure).
  void finish_switch(ServiceState& st, bool ok);

  /// Drain the service's VM, bracketing it in a "vm:drain" span when the
  /// observer is tracing.
  void drain_vm(const std::string& service);
  [[nodiscard]] bool trace_on() const {
    return obs_ != nullptr && obs_->trace_on();
  }
  void count_switch(const std::string& service, const char* to,
                    const char* outcome);

  sim::Engine& engine_;
  serverless::ServerlessPlatform& serverless_;
  iaas::IaasPlatform& iaas_;
  HybridEngineConfig cfg_;
  sim::Rng rng_;
  std::map<std::string, ServiceState> services_;
  MirrorObserver mirror_observer_;
  obs::Observer* obs_ = nullptr;
  std::vector<SwitchEvent> switch_events_;
  std::uint64_t mirrored_ = 0;
  std::uint64_t switch_aborts_ = 0;
  std::uint64_t switch_retries_ = 0;
};

}  // namespace amoeba::core
