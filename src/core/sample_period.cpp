#include "core/sample_period.hpp"

#include <algorithm>

namespace amoeba::core {

double min_sample_period(const SamplePeriodParams& p, double floor_s) {
  AMOEBA_EXPECTS(p.cold_start_s >= 0.0);
  AMOEBA_EXPECTS(p.qos_target_s > 0.0);
  AMOEBA_EXPECTS(p.exec_time_s >= 0.0);
  AMOEBA_EXPECTS(p.allowed_error > 0.0 && p.allowed_error < 1.0);
  AMOEBA_EXPECTS(floor_s > 0.0);
  const double numerator = p.cold_start_s - p.qos_target_s + p.exec_time_s;
  const double bound = numerator / (p.allowed_error * p.qos_target_s);
  return std::max(bound, floor_s);
}

}  // namespace amoeba::core
