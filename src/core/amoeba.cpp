#include "core/amoeba.hpp"

#include <algorithm>
#include <utility>

#include "core/queueing.hpp"
#include "obs/profiler.hpp"

namespace amoeba::core {

AmoebaRuntime::AmoebaRuntime(sim::Engine& engine,
                             serverless::ServerlessPlatform& serverless,
                             iaas::IaasPlatform& iaas,
                             MeterCalibration calibration, AmoebaConfig cfg,
                             sim::Rng rng)
    : engine_(engine),
      serverless_(serverless),
      cfg_(cfg),
      controller_(cfg.controller),
      exec_engine_(engine, serverless, iaas, cfg.engine, rng.fork(11)),
      monitor_(engine, serverless, std::move(calibration), cfg.monitor,
               rng.fork(12)),
      accountant_(serverless, iaas),
      obs_(cfg.observer) {
  AMOEBA_EXPECTS(cfg.load_window_s > 0.0);
  exec_engine_.set_observer(obs_);
  monitor_.set_observer(obs_);
  monitor_.set_fault_injector(cfg.fault_injector);
  serverless_.set_observer(obs_);

  // Mirrored (and resident-sampled) completions feed the controller's
  // weight calibration with queue-free service times.
  exec_engine_.set_mirror_observer(
      [this](const std::string& service, const workload::QueryRecord& rec) {
        const double service_time = rec.breakdown.total() -
                                    rec.breakdown.queue_s -
                                    rec.breakdown.cold_start_s;
        if (service_time <= 0.0) return;
        controller_.observe_latency(service, measured_load(service),
                                    monitor_.pressures(), service_time);
      });
}

void AmoebaRuntime::add_service(const workload::FunctionProfile& profile,
                                iaas::VmSpec vm_spec,
                                ServiceArtifacts artifacts,
                                int serverless_max_containers) {
  AMOEBA_EXPECTS_MSG(!started_, "add services before start()");
  exec_engine_.add_service(profile, vm_spec, serverless_max_containers);
  controller_.add_service(profile.name, profile.qos_target_s,
                          std::move(artifacts), cfg_.estimator);
  ServiceRt rt{
      .profile = profile,
      .load = stats::RateEstimator(cfg_.load_window_s),
      .period_latencies = {},
      .timeline = {},
  };
  services_.emplace(profile.name, std::move(rt));
}

AmoebaRuntime::ServiceRt& AmoebaRuntime::rt_of(const std::string& service) {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

const AmoebaRuntime::ServiceRt& AmoebaRuntime::rt_of(
    const std::string& service) const {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

double AmoebaRuntime::timeline_period() const {
  if (cfg_.timeline_period_s == 0.0) return monitor_.sample_period();
  return cfg_.timeline_period_s;
}

void AmoebaRuntime::start() {
  AMOEBA_EXPECTS(!started_);
  started_ = true;
  monitor_.set_on_sample([this] { on_sample(); });
  monitor_.start();
  if (timeline_period() > 0.0) {
    sample_timelines();
  }
}

void AmoebaRuntime::stop() {
  if (!started_) return;
  started_ = false;
  monitor_.stop();
  if (timeline_event_ != sim::kNoEvent) {
    engine_.cancel(timeline_event_);
    timeline_event_ = sim::kNoEvent;
  }
  if (obs_ != nullptr && obs_->metrics_on()) {
    obs_->metrics().take_snapshot(engine_.now());
  }
}

void AmoebaRuntime::submit(const std::string& service,
                           workload::QueryCompletionFn on_done) {
  ServiceRt& rt = rt_of(service);
  rt.load.record(engine_.now());
  // Platform attribution is fixed at submission: a query in flight across a
  // route flip still belongs to the platform that accepted it.
  const DeployMode platform = exec_engine_.route(service);
  exec_engine_.submit(
      service, [this, service, platform, done = std::move(on_done)](
                   const workload::QueryRecord& rec) {
        // Deliberately no kStats scope here: this runs per query and the
        // latency add is cheaper than a profiler scope pair. The periodic
        // on_sample stats work carries the kStats scope.
        rt_of(service).period_latencies.add(rec.latency());
        if (obs_ != nullptr && obs_->enabled()) {
          record_query(service, rec, platform);
        }
        // In serverless mode every user query doubles as a heartbeat.
        if (exec_engine_.route(service) == DeployMode::kServerless) {
          const double service_time = rec.breakdown.total() -
                                      rec.breakdown.queue_s -
                                      rec.breakdown.cold_start_s;
          if (service_time > 0.0) {
            controller_.observe_latency(service, measured_load(service),
                                        monitor_.pressures(), service_time);
          }
        }
        done(rec);
      });
}

double AmoebaRuntime::measured_load(const std::string& service) const {
  return rt_of(service).load.rate(engine_.now());
}

void AmoebaRuntime::set_qos_target(const std::string& service,
                                   double qos_target_s) {
  AMOEBA_EXPECTS_VALS(qos_target_s > 0.0, qos_target_s);
  ServiceRt& rt = rt_of(service);
  rt.profile.qos_target_s = qos_target_s;
  controller_.set_qos_target(service, qos_target_s);
  // The engine keeps its own profile copy for Eq. 7 warm-set sizing.
  exec_engine_.set_qos_target(service, qos_target_s);
  AMOEBA_ENSURES(controller_.qos_target(service) == qos_target_s);
}

void AmoebaRuntime::on_sample() {
  AMOEBA_PROF_SCOPE(kController);
  const auto pressures = monitor_.pressures();
  for (auto& [name, rt] : services_) {
    // Pre-switch sampling has served its purpose once the weights are
    // calibrated; keeping shadow containers alive would waste the very
    // memory Amoeba is trying to save.
    if (exec_engine_.mirroring(name) &&
        controller_.estimator(name).calibrated()) {
      exec_engine_.set_mirroring(name, false);
    }
    if (exec_engine_.transitioning(name) || exec_engine_.in_cooldown(name)) {
      const bool transitioning = exec_engine_.transitioning(name);
      rt.period_latencies.clear();
      // Post-abort cooldown: no new decision, but the warm set still tracks
      // the load so a serverless-resident service keeps absorbing bursts.
      if (!transitioning &&
          exec_engine_.route(name) == DeployMode::kServerless) {
        exec_engine_.maintain_warm(name, rt.load.rate(engine_.now()));
      }
      // Even ticks spent mid-switch (or cooling down after an aborted one)
      // leave an audit record: every monitor sample accounts for every
      // service.
      if (obs_ != nullptr && obs_->audit_on()) {
        obs::DecisionRecord dr;
        dr.time_s = engine_.now();
        dr.service = name;
        dr.platform = to_string(controller_.mode(name));
        dr.decision = transitioning ? "transitioning" : "cooldown";
        dr.load_qps = rt.load.rate(engine_.now());
        dr.total_pressures = pressures;
        dr.qos_target_s = controller_.qos_target(name);
        dr.stage = cfg_.stage_id;
        obs_->audit().append(std::move(dr));
      }
      continue;
    }
    ServiceTickInput input;
    input.load_qps = rt.load.rate(engine_.now());
    input.total_pressures = pressures;
    input.available_containers = exec_engine_.available_containers(name);
    // Forecast rising load over the switch horizon (Amoeba must start the
    // VM boot before the serverless pool saturates).
    input.forecast_load_qps = input.load_qps;
    if (cfg_.load_anticipation_s > 0.0 && rt.has_prev_load) {
      const double slope = (input.load_qps - rt.prev_tick_load) /
                           monitor_.sample_period();
      if (slope > 0.0) {
        input.forecast_load_qps =
            input.load_qps + slope * cfg_.load_anticipation_s;
      }
    }
    rt.prev_tick_load = input.load_qps;
    rt.has_prev_load = true;
    // Eq. 8's intent in sample-count form: with fewer than 21 samples a
    // single accidental cold start owns the 95th percentile and would
    // misjudge a healthy deployment (the paper's §VI-B scenario), so the
    // observed-latency backstop stays quiet until the window is dense
    // enough that one outlier cannot cross it alone.
    if (rt.period_latencies.size() >= 21) {
      input.observed_p95 = rt.period_latencies.quantile(0.95);
    }
    rt.period_latencies.clear();

    const SwitchDecision decision = controller_.tick(name, input);
    if (obs_ != nullptr && obs_->enabled()) {
      record_decision(name, input, decision);
    }
    switch (decision) {
      case SwitchDecision::kStay:
        // §V-A: while serverless, keep the Eq. 7 warm set tracking the load
        // so bursts land on warm containers instead of cold starts.
        exec_engine_.maintain_warm(name, input.load_qps);
        break;
      case SwitchDecision::kSwitchToServerless:
        exec_engine_.switch_to_serverless(
            name, input.load_qps, [this, name](bool ok) {
              if (ok) controller_.set_mode(name, DeployMode::kServerless);
            });
        break;
      case SwitchDecision::kSwitchToIaas:
        exec_engine_.switch_to_iaas(
            name, input.load_qps, [this, name](bool ok) {
              if (ok) controller_.set_mode(name, DeployMode::kIaas);
            });
        break;
    }
  }
  if (obs_ != nullptr && obs_->metrics_on()) {
    AMOEBA_PROF_SCOPE(kStats);
    obs::MetricsRegistry& m = obs_->metrics();
    m.gauge("pool_memory_in_use_mb").set(serverless_.pool().memory_in_use_mb());
    m.gauge("pool_cold_starts_total")
        .set(static_cast<double>(serverless_.pool().cold_starts()));
    m.gauge("pool_evictions_total")
        .set(static_cast<double>(serverless_.pool().evictions()));
    m.gauge("mirrored_queries_total")
        .set(static_cast<double>(exec_engine_.mirrored_queries()));
    m.take_snapshot(engine_.now());
  }
}

void AmoebaRuntime::record_decision(const std::string& name,
                                    const ServiceTickInput& input,
                                    SwitchDecision decision) {
  const double now = engine_.now();
  const double qos = controller_.qos_target(name);
  if (obs_->audit_on()) {
    obs::DecisionRecord dr;
    dr.time_s = now;
    dr.service = name;
    dr.platform = to_string(controller_.mode(name));
    dr.decision = to_string(decision);
    dr.load_qps = input.load_qps;
    dr.forecast_load_qps = input.forecast_load_qps;
    dr.total_pressures = input.total_pressures;
    dr.qos_target_s = qos;
    dr.stage = cfg_.stage_id;
    dr.n_containers = std::max(1, input.available_containers);
    dr.prewarm_target =
        cfg_.engine.prewarm.containers_for(input.load_qps, qos);
    dr.votes_to_serverless = controller_.votes_to_serverless(name);
    dr.votes_to_iaas = controller_.votes_to_iaas(name);
    dr.observed_p95_s = input.observed_p95;
    if (const auto& ev = controller_.last_evaluation(name)) {
      dr.external_pressures = ev->external_pressures;
      dr.features = ev->features;
      dr.mu = ev->mu;
      dr.lambda_max = ev->lambda_max;
      dr.weights = controller_.estimator(name).weights();
      if (ev->mu > 0.0) {
        dr.predicted_service_s = 1.0 / ev->mu;
        const int n = dr.n_containers;
        const double r = controller_.config().qos_percentile;
        // Re-derive the Eq. 5 fixed-point trajectory at the tick's
        // operating point — the path the discriminant walked, not just
        // where it landed.
        (void)queueing::eq5_lambda(n, ev->mu, qos, r, 200,
                                   &dr.lambda_iterates);
        if (input.load_qps > 0.0 &&
            queueing::rho(input.load_qps, n, ev->mu) < 1.0) {
          dr.predicted_p95_s =
              queueing::latency_quantile(input.load_qps, n, ev->mu, r);
        }
      }
    }
    obs_->audit().append(std::move(dr));
  }
  if (obs_->metrics_on()) {
    obs::MetricsRegistry& m = obs_->metrics();
    m.counter("decisions",
              {{"service", name}, {"decision", to_string(decision)}})
        .inc();
    m.gauge("load_qps", {{"service", name}}).set(input.load_qps);
    m.gauge("mode", {{"service", name}})
        .set(controller_.mode(name) == DeployMode::kServerless ? 1.0 : 0.0);
    m.gauge("available_containers", {{"service", name}})
        .set(input.available_containers);
    if (input.observed_p95) {
      m.gauge("observed_p95_s", {{"service", name}}).set(*input.observed_p95);
    }
  }
  if (obs_->trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    const auto control = tr.track("svc:" + name + "/control");
    tr.instant(control, "decision", now, "control",
               {obs::TraceArg::of("decision", std::string(to_string(decision))),
                obs::TraceArg::of("load_qps", input.load_qps)});
    tr.counter(tr.track("svc:" + name + "/load"), "load_qps", now,
               input.load_qps);
  }
}

void AmoebaRuntime::record_query(const std::string& service,
                                 const workload::QueryRecord& rec,
                                 DeployMode platform) {
  if (obs_->metrics_on()) {
    obs::MetricsRegistry& m = obs_->metrics();
    m.counter("queries", {{"service", service}}).inc();
    if (rec.cold) m.counter("cold_starts", {{"service", service}}).inc();
    m.histogram("latency_s", {{"service", service}}).observe(rec.latency());
    m.histogram("queue_wait_s", {{"service", service}})
        .observe(rec.breakdown.queue_s);
  }
  if (obs_->trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    const auto track = tr.track("svc:" + service + "/queries");
    const std::uint64_t id = next_query_span_id_++;
    const double service_s = rec.breakdown.total() - rec.breakdown.queue_s -
                             rec.breakdown.cold_start_s;
    tr.async_begin(track, "query", id, rec.arrival, "query");
    tr.async_end(track, "query", id, rec.completion, "query",
                 {obs::TraceArg::of("platform", std::string(to_string(platform))),
                  obs::TraceArg::of("latency_s", rec.latency()),
                  obs::TraceArg::of("queue_s", rec.breakdown.queue_s),
                  obs::TraceArg::of("cold_start_s", rec.breakdown.cold_start_s),
                  obs::TraceArg::of("service_s", service_s),
                  obs::TraceArg::of("cold", rec.cold ? 1.0 : 0.0)});
  }
}

void AmoebaRuntime::sample_timelines() {
  const double now = engine_.now();
  for (auto& [name, rt] : services_) {
    const ServiceUsage u = accountant_.usage(name, now);
    rt.timeline.load_qps.add(now, rt.load.rate(now));
    rt.timeline.mode.add(
        now, exec_engine_.route(name) == DeployMode::kServerless ? 1.0 : 0.0);
    rt.timeline.cpu_core_seconds.add(now, u.cpu_core_seconds);
    rt.timeline.memory_mb_seconds.add(now, u.memory_mb_seconds);
  }
  timeline_event_ = engine_.schedule_in(timeline_period(),
                                        [this] { sample_timelines(); });
}

const ServiceTimeline& AmoebaRuntime::timeline(
    const std::string& service) const {
  return rt_of(service).timeline;
}

}  // namespace amoeba::core
