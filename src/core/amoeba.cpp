#include "core/amoeba.hpp"

#include <utility>

namespace amoeba::core {

AmoebaRuntime::AmoebaRuntime(sim::Engine& engine,
                             serverless::ServerlessPlatform& serverless,
                             iaas::IaasPlatform& iaas,
                             MeterCalibration calibration, AmoebaConfig cfg,
                             sim::Rng rng)
    : engine_(engine),
      serverless_(serverless),
      cfg_(cfg),
      controller_(cfg.controller),
      exec_engine_(engine, serverless, iaas, cfg.engine, rng.fork(11)),
      monitor_(engine, serverless, std::move(calibration), cfg.monitor,
               rng.fork(12)),
      accountant_(serverless, iaas) {
  AMOEBA_EXPECTS(cfg.load_window_s > 0.0);

  // Mirrored (and resident-sampled) completions feed the controller's
  // weight calibration with queue-free service times.
  exec_engine_.set_mirror_observer(
      [this](const std::string& service, const workload::QueryRecord& rec) {
        const double service_time = rec.breakdown.total() -
                                    rec.breakdown.queue_s -
                                    rec.breakdown.cold_start_s;
        if (service_time <= 0.0) return;
        controller_.observe_latency(service, measured_load(service),
                                    monitor_.pressures(), service_time);
      });
}

void AmoebaRuntime::add_service(const workload::FunctionProfile& profile,
                                iaas::VmSpec vm_spec,
                                ServiceArtifacts artifacts,
                                int serverless_max_containers) {
  AMOEBA_EXPECTS_MSG(!started_, "add services before start()");
  exec_engine_.add_service(profile, vm_spec, serverless_max_containers);
  controller_.add_service(profile.name, profile.qos_target_s,
                          std::move(artifacts), cfg_.estimator);
  ServiceRt rt{
      .profile = profile,
      .load = stats::RateEstimator(cfg_.load_window_s),
      .period_latencies = {},
      .timeline = {},
  };
  services_.emplace(profile.name, std::move(rt));
}

AmoebaRuntime::ServiceRt& AmoebaRuntime::rt_of(const std::string& service) {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

const AmoebaRuntime::ServiceRt& AmoebaRuntime::rt_of(
    const std::string& service) const {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

void AmoebaRuntime::start() {
  AMOEBA_EXPECTS(!started_);
  started_ = true;
  monitor_.set_on_sample([this] { on_sample(); });
  monitor_.start();
  if (cfg_.timeline_period_s > 0.0) {
    sample_timelines();
  }
}

void AmoebaRuntime::stop() {
  if (!started_) return;
  started_ = false;
  monitor_.stop();
  if (timeline_event_ != sim::kNoEvent) {
    engine_.cancel(timeline_event_);
    timeline_event_ = sim::kNoEvent;
  }
}

void AmoebaRuntime::submit(const std::string& service,
                           workload::QueryCompletionFn on_done) {
  ServiceRt& rt = rt_of(service);
  rt.load.record(engine_.now());
  exec_engine_.submit(
      service, [this, service, done = std::move(on_done)](
                   const workload::QueryRecord& rec) {
        rt_of(service).period_latencies.add(rec.latency());
        // In serverless mode every user query doubles as a heartbeat.
        if (exec_engine_.route(service) == DeployMode::kServerless) {
          const double service_time = rec.breakdown.total() -
                                      rec.breakdown.queue_s -
                                      rec.breakdown.cold_start_s;
          if (service_time > 0.0) {
            controller_.observe_latency(service, measured_load(service),
                                        monitor_.pressures(), service_time);
          }
        }
        done(rec);
      });
}

double AmoebaRuntime::measured_load(const std::string& service) const {
  return rt_of(service).load.rate(engine_.now());
}

void AmoebaRuntime::on_sample() {
  const auto pressures = monitor_.pressures();
  for (auto& [name, rt] : services_) {
    // Pre-switch sampling has served its purpose once the weights are
    // calibrated; keeping shadow containers alive would waste the very
    // memory Amoeba is trying to save.
    if (exec_engine_.mirroring(name) &&
        controller_.estimator(name).calibrated()) {
      exec_engine_.set_mirroring(name, false);
    }
    if (exec_engine_.transitioning(name)) {
      rt.period_latencies.clear();
      continue;
    }
    ServiceTickInput input;
    input.load_qps = rt.load.rate(engine_.now());
    input.total_pressures = pressures;
    input.available_containers = exec_engine_.available_containers(name);
    // Forecast rising load over the switch horizon (Amoeba must start the
    // VM boot before the serverless pool saturates).
    input.forecast_load_qps = input.load_qps;
    if (cfg_.load_anticipation_s > 0.0 && rt.has_prev_load) {
      const double slope = (input.load_qps - rt.prev_tick_load) /
                           monitor_.sample_period();
      if (slope > 0.0) {
        input.forecast_load_qps =
            input.load_qps + slope * cfg_.load_anticipation_s;
      }
    }
    rt.prev_tick_load = input.load_qps;
    rt.has_prev_load = true;
    // Eq. 8's intent in sample-count form: with fewer than 21 samples a
    // single accidental cold start owns the 95th percentile and would
    // misjudge a healthy deployment (the paper's §VI-B scenario), so the
    // observed-latency backstop stays quiet until the window is dense
    // enough that one outlier cannot cross it alone.
    if (rt.period_latencies.size() >= 21) {
      input.observed_p95 = rt.period_latencies.quantile(0.95);
    }
    rt.period_latencies.clear();

    const SwitchDecision decision = controller_.tick(name, input);
    switch (decision) {
      case SwitchDecision::kStay:
        // §V-A: while serverless, keep the Eq. 7 warm set tracking the load
        // so bursts land on warm containers instead of cold starts.
        exec_engine_.maintain_warm(name, input.load_qps);
        break;
      case SwitchDecision::kSwitchToServerless:
        exec_engine_.switch_to_serverless(
            name, input.load_qps, [this, name](bool ok) {
              if (ok) controller_.set_mode(name, DeployMode::kServerless);
            });
        break;
      case SwitchDecision::kSwitchToIaas:
        exec_engine_.switch_to_iaas(
            name, input.load_qps, [this, name](bool ok) {
              if (ok) controller_.set_mode(name, DeployMode::kIaas);
            });
        break;
    }
  }
}

void AmoebaRuntime::sample_timelines() {
  const double now = engine_.now();
  for (auto& [name, rt] : services_) {
    const ServiceUsage u = accountant_.usage(name, now);
    rt.timeline.load_qps.add(now, rt.load.rate(now));
    rt.timeline.mode.add(
        now, exec_engine_.route(name) == DeployMode::kServerless ? 1.0 : 0.0);
    rt.timeline.cpu_core_seconds.add(now, u.cpu_core_seconds);
    rt.timeline.memory_mb_seconds.add(now, u.memory_mb_seconds);
  }
  timeline_event_ = engine_.schedule_in(cfg_.timeline_period_s,
                                        [this] { sample_timelines(); });
}

const ServiceTimeline& AmoebaRuntime::timeline(
    const std::string& service) const {
  return rt_of(service).timeline;
}

}  // namespace amoeba::core
