// M/M/N queueing mathematics — the controller's discriminant function
// (paper §IV-A, Eq. 1–5).
//
// The serverless container pool is modelled as an M/M/N queue: Poisson
// arrivals at rate λ, N containers each with service rate μ, one FIFO
// queue. The stationary waiting-time distribution (Eq. 4)
//
//   F_W(t) = 1 − π_n/(1−ρ) · e^{−nμ(1−ρ)t}
//
// yields the paper's discriminant (Eq. 5): the largest arrival rate λ(μ)
// for which the r-ile latency stays below the QoS target T_D.
//
// All state-probability computations run in log space (lgamma), so they
// stay finite for thousands of servers.
#pragma once

#include <optional>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::core::queueing {

/// Offered load per server: ρ = λ / (nμ). Stable iff ρ < 1.
[[nodiscard]] double rho(double lambda, int n, double mu);

/// π₀: probability of an empty system (Eq. 1 normalization). Requires
/// ρ < 1.
[[nodiscard]] double pi0(double lambda, int n, double mu);

/// π_n: probability of exactly n queries in the system (Eq. 1, k = n).
[[nodiscard]] double pi_n(double lambda, int n, double mu);

/// Erlang-C: probability an arriving query must wait, P{W > 0} =
/// π_n / (1 − ρ) (complement of Eq. 2).
[[nodiscard]] double erlang_c(double lambda, int n, double mu);

/// The t with P{W <= t} = q under Eq. 4 (0 if the quantile is met with no
/// wait). Requires stability and q in (0, 1).
[[nodiscard]] double wait_quantile(double lambda, int n, double mu, double q);

/// The r-ile end-to-end latency estimate the paper uses: the Eq. 4 waiting
/// quantile plus one mean service time 1/μ.
[[nodiscard]] double latency_quantile(double lambda, int n, double mu,
                                      double r);

/// True if an M/M/N system with these parameters keeps the r-ile latency
/// within T_D. Unstable systems (ρ >= 1) never satisfy.
[[nodiscard]] bool qos_satisfied(double lambda, int n, double mu, double t_d,
                                 double r);

/// The paper's Eq. 5 evaluated at a given operating point: λ(μ) = nμ +
/// ln[(1−r)(1−ρ)/π_n] / (T_D − 1/μ). Because ρ and π_n themselves depend
/// on λ, the equation is implicit; this evaluates one fixed-point step from
/// `lambda_hint`. Returns nullopt when T_D <= 1/μ (service alone misses the
/// target) or the point is unstable.
[[nodiscard]] std::optional<double> eq5_lambda_step(double lambda_hint, int n,
                                                    double mu, double t_d,
                                                    double r);

/// Solve the implicit Eq. 5 by damped fixed-point iteration, starting from
/// ρ = 0.5. Returns nullopt if no stable λ > 0 satisfies the target. When
/// `iterates` is non-null, each fixed-point iterate (including the starting
/// point) is appended to it — the decision audit log records this
/// trajectory; it is cleared and left with the partial path on failure.
[[nodiscard]] std::optional<double> eq5_lambda(
    int n, double mu, double t_d, double r, int max_iters = 200,
    std::vector<double>* iterates = nullptr);

/// Numerically robust alternative: the largest λ with qos_satisfied(),
/// found by bisection over (0, nμ). Returns nullopt if even λ→0 misses the
/// target. Accurate to `tol` (absolute, queries/second).
[[nodiscard]] std::optional<double> max_arrival_rate(int n, double mu,
                                                     double t_d, double r,
                                                     double tol = 1e-6);

/// Smallest server count n with qos_satisfied(lambda, n, mu, t_d, r).
/// Returns nullopt if no n up to `n_limit` suffices (e.g. T_D < 1/μ).
[[nodiscard]] std::optional<int> min_servers(double lambda, double mu,
                                             double t_d, double r,
                                             int n_limit = 100000);

/// Mean waiting time E[W] = ErlangC / (nμ − λ); requires stability.
[[nodiscard]] double mean_wait(double lambda, int n, double mu);

}  // namespace amoeba::core::queueing
