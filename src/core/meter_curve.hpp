// Meter calibration curves (paper §IV-B step 1 "Profiling" + Fig. 8).
//
// During profiling each contention meter runs alone on the serverless
// platform at a sweep of loads; the resulting (pressure, latency) pairs
// form a monotone curve. At measurement time (step 2) the monitor runs the
// meter at a low probing rate, observes its latency, and inverts the curve
// to recover the pressure the resident microservices put on that resource.
#pragma once

#include <vector>

#include "common/assert.hpp"

namespace amoeba::core {

struct CurvePoint {
  double pressure;  ///< resource pressure (demand / capacity)
  double latency;   ///< observed meter latency at that pressure
};

class MeterCurve {
 public:
  /// Points must have strictly increasing pressure; latency must be
  /// non-decreasing (a meter cannot get faster under more contention —
  /// small violations from simulation noise are repaired by isotonic
  /// clamping). Requires >= 2 points.
  explicit MeterCurve(std::vector<CurvePoint> points);

  /// Expected meter latency at `pressure` (linear interpolation, clamped
  /// to the profiled range).
  [[nodiscard]] double latency_at(double pressure) const;

  /// Inverse lookup: the pressure whose profiled latency equals
  /// `latency` (clamped to the profiled range). On flat segments returns
  /// the segment's lowest pressure (the conservative choice: the monitor
  /// never over-reports contention it cannot distinguish).
  [[nodiscard]] double pressure_for(double latency) const;

  [[nodiscard]] const std::vector<CurvePoint>& points() const noexcept {
    return points_;
  }

  /// Baseline (lowest-pressure) latency — the meter's solo latency.
  [[nodiscard]] double base_latency() const noexcept {
    return points_.front().latency;
  }
  [[nodiscard]] double max_pressure() const noexcept {
    return points_.back().pressure;
  }

 private:
  std::vector<CurvePoint> points_;
};

}  // namespace amoeba::core
