// Monitor sample-period selection — paper §VI-B, Eq. 8.
//
// A stray ("accidental") cold start inside a sample period inflates the
// tail latency the monitor sees and could make the controller misjudge a
// healthy serverless deployment. Eq. 8 lower-bounds the period T so one
// cold start cannot push the period's aggregate error beyond the allowed
// scope e:
//
//     T > (cold_start − QoS_t + t_exec) / (e · QoS_t)
//
// Direction check: the cold start contributes a fixed excess latency
// (cold_start − QoS_t + t_exec); a longer period dilutes it across more
// queries. As e → 0 (no tolerated error) the bound must diverge — only an
// ever-longer period can shrink one cold start's share of the aggregate
// below any scope — so e belongs in the denominator as a factor, not as
// (1 − e). A negative numerator (QoS slack exceeds the cold-start excess)
// means any period is safe; the floor applies.
#pragma once

#include "common/assert.hpp"

namespace amoeba::core {

struct SamplePeriodParams {
  double cold_start_s = 1.0;  ///< typical container cold start
  double qos_target_s = 1.0;  ///< the service's QoS target
  double exec_time_s = 0.5;   ///< typical query execution time
  double allowed_error = 0.1; ///< e in (0, 1)
};

/// Eq. 8 lower bound on the sample period. Never below `floor_s` (a
/// practical minimum so the monitor has enough queries to aggregate).
[[nodiscard]] double min_sample_period(const SamplePeriodParams& p,
                                       double floor_s = 1.0);

}  // namespace amoeba::core
