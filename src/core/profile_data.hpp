// Artifacts produced by offline profiling (paper §IV-B step 1) and
// consumed by the monitor and the deployment controller at runtime.
#pragma once

#include <array>
#include <optional>

#include "core/latency_surface.hpp"
#include "core/meter_curve.hpp"
#include "core/weight_estimator.hpp"  // kNumResources

namespace amoeba::core {

/// Index convention for the three contended-resource dimensions, matching
/// workload::MeterKind's integer values.
inline constexpr std::size_t kCpuDim = 0;
inline constexpr std::size_t kIoDim = 1;
inline constexpr std::size_t kNetDim = 2;

/// Platform-level calibration: one curve per contention meter (Fig. 8).
struct MeterCalibration {
  std::array<std::optional<MeterCurve>, kNumResources> curves;

  [[nodiscard]] bool complete() const noexcept {
    for (const auto& c : curves) {
      if (!c.has_value()) return false;
    }
    return true;
  }
};

/// Per-microservice profiling results.
struct ServiceArtifacts {
  /// Solo (uncontended, warm-container) service latency L0.
  double solo_latency_s = 0.0;
  /// Fixed execution overhead α in Eq. 6 (0: the surfaces already include
  /// the platform overheads; the PCR intercept absorbs any residue).
  double alpha_s = 0.0;
  /// L_i(P_i, V_u): latency surfaces against each resource's pressure
  /// (Fig. 9), in kCpuDim/kIoDim/kNetDim order.
  std::array<std::optional<LatencySurface>, kNumResources> surfaces;
  /// Pressure the service itself adds per query/second of load on each
  /// resource (used to subtract self-pressure and for the co-tenant
  /// admission check).
  std::array<double, kNumResources> pressure_per_qps{};

  [[nodiscard]] bool complete() const noexcept {
    if (solo_latency_s <= 0.0) return false;
    for (const auto& s : surfaces) {
      if (!s.has_value()) return false;
    }
    return true;
  }
};

}  // namespace amoeba::core
