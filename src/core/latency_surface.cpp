#include "core/latency_surface.hpp"

#include <algorithm>
#include <utility>

namespace amoeba::core {

LatencySurface::LatencySurface(std::vector<double> pressures,
                               std::vector<double> loads,
                               std::vector<double> latencies)
    : pressures_(std::move(pressures)),
      loads_(std::move(loads)),
      lat_(std::move(latencies)) {
  AMOEBA_EXPECTS(pressures_.size() >= 2);
  AMOEBA_EXPECTS(loads_.size() >= 2);
  AMOEBA_EXPECTS(lat_.size() == pressures_.size() * loads_.size());
  for (std::size_t i = 1; i < pressures_.size(); ++i) {
    AMOEBA_EXPECTS(pressures_[i] > pressures_[i - 1]);
  }
  for (std::size_t i = 1; i < loads_.size(); ++i) {
    AMOEBA_EXPECTS(loads_[i] > loads_[i - 1]);
  }
  for (double v : lat_) AMOEBA_EXPECTS(v >= 0.0);
}

double LatencySurface::value(std::size_t pi, std::size_t li) const {
  AMOEBA_EXPECTS(pi < pressures_.size() && li < loads_.size());
  return lat_[pi * loads_.size() + li];
}

std::size_t LatencySurface::bracket(const std::vector<double>& axis, double x,
                                    double& frac) {
  if (x <= axis.front()) {
    frac = 0.0;
    return 0;
  }
  if (x >= axis.back()) {
    frac = 1.0;
    return axis.size() - 2;
  }
  const auto it = std::lower_bound(axis.begin(), axis.end(), x);
  const auto hi = static_cast<std::size_t>(it - axis.begin());
  const std::size_t lo = hi - 1;
  frac = (x - axis[lo]) / (axis[hi] - axis[lo]);
  return lo;
}

double LatencySurface::at(double pressure, double load) const {
  double fp = 0.0, fl = 0.0;
  const std::size_t pi = bracket(pressures_, pressure, fp);
  const std::size_t li = bracket(loads_, load, fl);
  AMOEBA_INVARIANT_VALS(fp >= 0.0 && fp <= 1.0 && fl >= 0.0 && fl <= 1.0,
                        fp, fl);
  const double v00 = value(pi, li);
  const double v01 = value(pi, li + 1);
  const double v10 = value(pi + 1, li);
  const double v11 = value(pi + 1, li + 1);
  const double v = (1.0 - fp) * ((1.0 - fl) * v00 + fl * v01) +
                   fp * ((1.0 - fl) * v10 + fl * v11);
  // Bilinear interpolation of non-negative samples stays non-negative.
  AMOEBA_ENSURES_VALS(v >= 0.0, v, pressure, load);
  return v;
}

}  // namespace amoeba::core
