// Contention-aware deployment controller — paper §IV.
//
// Per sample period and per microservice the controller:
//   1. looks up the three latency-surface predictions L_i at the platform's
//      current (externally attributed) pressures and the service's load;
//   2. folds them into a per-container capacity μ via Eq. 6 (PCA-calibrated
//      weights, or pessimistic accumulation in the NoM ablation);
//   3. evaluates the M/M/N discriminant (Eq. 5) for the service's QoS
//      target and the containers it could get;
//   4. decides whether to switch, with hysteresis and a co-tenant safety
//      check (paper §III: a switch-in must not break any resident
//      service's QoS).
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/profile_data.hpp"
#include "core/queueing.hpp"
#include "core/weight_estimator.hpp"

namespace amoeba::core {

enum class DeployMode : std::uint8_t { kIaas, kServerless };

[[nodiscard]] const char* to_string(DeployMode m) noexcept;

enum class SwitchDecision : std::uint8_t {
  kStay,
  kSwitchToServerless,
  kSwitchToIaas,
};

[[nodiscard]] const char* to_string(SwitchDecision d) noexcept;

struct ControllerConfig {
  double qos_percentile = 0.95;  ///< r in Eq. 5 (paper: 95%-ile)
  /// Switch to serverless only when V_u <= margin · λ_max (safety slack
  /// against estimation error and load drift).
  double to_serverless_margin = 0.80;
  /// Switch back to IaaS when V_u > margin · λ_max.
  double to_iaas_margin = 0.95;
  /// Consecutive agreeing ticks required before acting (hysteresis).
  int hysteresis_ticks = 2;
  bool co_tenant_check = true;
  /// An observed p95 above this fraction of the QoS target while on
  /// serverless also votes for switching back (model-independent backstop).
  double observed_violation_fraction = 0.98;

  void validate() const;
};

/// What the runtime must tell the controller about a service each tick.
struct ServiceTickInput {
  double load_qps = 0.0;
  /// Load anticipated by the time a switch could complete (measured load
  /// extrapolated over hysteresis + VM boot). Used only for the
  /// switch-back-to-IaaS direction; <= load_qps means "no forecast".
  double forecast_load_qps = 0.0;
  /// Platform-total pressures from the contention monitor.
  std::array<double, kNumResources> total_pressures{};
  /// Containers the service could use (min of pool headroom and n_max).
  int available_containers = 1;
  /// Recent observed 95%-ile latency on the platform currently serving it
  /// (nullopt when too few samples).
  std::optional<double> observed_p95;
};

/// Introspection of one discriminant evaluation (drives Fig. 15).
struct Evaluation {
  Features features{};            ///< L_i at (P_ext, V_u)
  double mu = 0.0;                ///< Eq. 6
  std::optional<double> lambda_max;  ///< Eq. 5 via robust solver
  std::array<double, kNumResources> external_pressures{};
};

class DeploymentController {
 public:
  explicit DeploymentController(ControllerConfig cfg);

  /// Register a service. `qos_target_s` is its latency target; artifacts
  /// come from profiling; `estimator_cfg.enable_pca=false` gives Amoeba-NoM.
  void add_service(const std::string& name, double qos_target_s,
                   ServiceArtifacts artifacts,
                   WeightEstimatorConfig estimator_cfg = {});

  [[nodiscard]] bool has_service(const std::string& name) const;

  /// Heartbeat: an observed service-time sample (queue/cold-start already
  /// excluded) for PCA calibration, taken at the given load and pressures.
  void observe_latency(const std::string& name, double load_qps,
                       const std::array<double, kNumResources>& total_pressures,
                       double observed_service_s);

  /// One control decision. Also caches the inputs for co-tenant checks.
  [[nodiscard]] SwitchDecision tick(const std::string& name,
                                    const ServiceTickInput& input);

  /// Pure evaluation of the discriminant at an arbitrary operating point
  /// (used by tick, by tests, and by the Fig. 15 error study).
  [[nodiscard]] Evaluation evaluate(const std::string& name, double load_qps,
                                    const std::array<double, kNumResources>&
                                        total_pressures,
                                    int n_containers,
                                    bool resident_on_serverless) const;

  [[nodiscard]] DeployMode mode(const std::string& name) const;
  /// The runtime confirms a switch completed (after prewarm/boot + ack).
  void set_mode(const std::string& name, DeployMode mode);

  [[nodiscard]] const WeightEstimator& estimator(
      const std::string& name) const;

  /// QoS latency target registered for the service.
  [[nodiscard]] double qos_target(const std::string& name) const;

  /// Retarget the service's QoS budget (end-to-end budget decomposition
  /// renormalizes per-stage targets each monitor tick). Takes effect from
  /// the next tick; the estimator's feature cap keeps its add-time value
  /// so calibration stays comparable across retargets.
  void set_qos_target(const std::string& name, double qos_target_s);

  /// The Evaluation computed by the most recent tick() for the service
  /// (nullopt before the first tick). Feeds the decision audit log.
  [[nodiscard]] const std::optional<Evaluation>& last_evaluation(
      const std::string& name) const;

  /// Current hysteresis vote counts (after the most recent tick).
  [[nodiscard]] int votes_to_serverless(const std::string& name) const;
  [[nodiscard]] int votes_to_iaas(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> services() const;
  [[nodiscard]] const ControllerConfig& config() const noexcept {
    return cfg_;
  }

 private:
  struct ServiceState {
    double qos_target_s = 0.0;
    ServiceArtifacts artifacts;
    WeightEstimator estimator;
    DeployMode mode = DeployMode::kIaas;
    int votes_to_serverless = 0;
    int votes_to_iaas = 0;
    ServiceTickInput last_input;  ///< cached for co-tenant evaluation
    bool has_input = false;
    std::optional<Evaluation> last_eval;  ///< introspection for the audit log
  };

  [[nodiscard]] std::array<double, kNumResources> external_pressures(
      const ServiceState& st, double load_qps,
      const std::array<double, kNumResources>& total, bool resident) const;

  [[nodiscard]] bool co_tenants_safe_with(const std::string& candidate,
                                          const ServiceTickInput& input) const;

  const ServiceState& state_of(const std::string& name) const;
  ServiceState& state_of(const std::string& name);

  ControllerConfig cfg_;
  std::map<std::string, ServiceState> services_;
};

}  // namespace amoeba::core
