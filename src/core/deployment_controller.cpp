#include "core/deployment_controller.hpp"

#include <algorithm>
#include <utility>
#include "obs/profiler.hpp"

namespace amoeba::core {

const char* to_string(DeployMode m) noexcept {
  switch (m) {
    case DeployMode::kIaas: return "iaas";
    case DeployMode::kServerless: return "serverless";
  }
  return "?";
}

const char* to_string(SwitchDecision d) noexcept {
  switch (d) {
    case SwitchDecision::kStay: return "stay";
    case SwitchDecision::kSwitchToServerless: return "to_serverless";
    case SwitchDecision::kSwitchToIaas: return "to_iaas";
  }
  return "?";
}

void ControllerConfig::validate() const {
  AMOEBA_EXPECTS(qos_percentile > 0.0 && qos_percentile < 1.0);
  AMOEBA_EXPECTS(to_serverless_margin > 0.0 && to_serverless_margin <= 1.0);
  AMOEBA_EXPECTS(to_iaas_margin > 0.0 && to_iaas_margin <= 1.5);
  AMOEBA_EXPECTS(hysteresis_ticks >= 1);
  AMOEBA_EXPECTS(observed_violation_fraction > 0.0);
}

DeploymentController::DeploymentController(ControllerConfig cfg) : cfg_(cfg) {
  cfg_.validate();
}

void DeploymentController::add_service(const std::string& name,
                                       double qos_target_s,
                                       ServiceArtifacts artifacts,
                                       WeightEstimatorConfig estimator_cfg) {
  AMOEBA_EXPECTS(qos_target_s > 0.0);
  AMOEBA_EXPECTS_MSG(artifacts.complete(),
                     "service artifacts incomplete: " + name);
  AMOEBA_EXPECTS_MSG(!services_.contains(name), "service already added");
  // Read L0/α before artifacts is moved into the state.
  const double l0 = artifacts.solo_latency_s;
  const double alpha = artifacts.alpha_s;
  // Keep saturated-cell sentinels out of the regression: anything past 4x
  // the target rejects the deployment regardless of its exact magnitude.
  if (estimator_cfg.feature_cap_s <= 0.0) {
    estimator_cfg.feature_cap_s = 4.0 * qos_target_s;
  }
  ServiceState st{
      .qos_target_s = qos_target_s,
      .artifacts = std::move(artifacts),
      .estimator = WeightEstimator(estimator_cfg, l0, alpha),
      .mode = DeployMode::kIaas,
      .votes_to_serverless = 0,
      .votes_to_iaas = 0,
      .last_input = {},
      .has_input = false,
      .last_eval = {},
  };
  services_.emplace(name, std::move(st));
}

bool DeploymentController::has_service(const std::string& name) const {
  return services_.contains(name);
}

const DeploymentController::ServiceState& DeploymentController::state_of(
    const std::string& name) const {
  auto it = services_.find(name);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + name);
  return it->second;
}

DeploymentController::ServiceState& DeploymentController::state_of(
    const std::string& name) {
  auto it = services_.find(name);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + name);
  return it->second;
}

std::array<double, kNumResources> DeploymentController::external_pressures(
    const ServiceState& st, double load_qps,
    const std::array<double, kNumResources>& total, bool resident) const {
  // The meters see every resident service, including the one under
  // evaluation; its self-pressure is already represented by the surface's
  // load axis, so subtract it to avoid double counting.
  std::array<double, kNumResources> ext = total;
  if (resident) {
    for (std::size_t i = 0; i < kNumResources; ++i) {
      ext[i] = std::max(0.0,
                        ext[i] - st.artifacts.pressure_per_qps[i] * load_qps);
    }
  }
  return ext;
}

Evaluation DeploymentController::evaluate(
    const std::string& name, double load_qps,
    const std::array<double, kNumResources>& total_pressures, int n_containers,
    bool resident_on_serverless) const {
  AMOEBA_EXPECTS(load_qps >= 0.0);
  AMOEBA_EXPECTS(n_containers >= 1);
  const ServiceState& st = state_of(name);

  Evaluation ev;
  ev.external_pressures = external_pressures(st, load_qps, total_pressures,
                                             resident_on_serverless);
  for (std::size_t i = 0; i < kNumResources; ++i) {
    ev.features[i] = st.artifacts.surfaces[i]->at(ev.external_pressures[i],
                                                  load_qps);
  }
  ev.mu = st.estimator.mu(ev.features);
  ev.lambda_max = queueing::max_arrival_rate(
      n_containers, ev.mu, st.qos_target_s, cfg_.qos_percentile);
  return ev;
}

void DeploymentController::observe_latency(
    const std::string& name, double load_qps,
    const std::array<double, kNumResources>& total_pressures,
    double observed_service_s) {
  AMOEBA_PROF_SCOPE(kController);
  ServiceState& st = state_of(name);
  const bool resident = st.mode == DeployMode::kServerless;
  const auto ext =
      external_pressures(st, load_qps, total_pressures, resident);
  Features f{};
  for (std::size_t i = 0; i < kNumResources; ++i) {
    f[i] = st.artifacts.surfaces[i]->at(ext[i], load_qps);
  }
  st.estimator.observe(f, observed_service_s);
}

bool DeploymentController::co_tenants_safe_with(
    const std::string& candidate, const ServiceTickInput& input) const {
  const ServiceState& cand = state_of(candidate);
  // Pressure after the candidate joins.
  std::array<double, kNumResources> joined = input.total_pressures;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    joined[i] += cand.artifacts.pressure_per_qps[i] * input.load_qps;
  }
  for (const auto& [name, st] : services_) {
    if (name == candidate) continue;
    if (st.mode != DeployMode::kServerless || !st.has_input) continue;
    const Evaluation ev =
        evaluate(name, st.last_input.load_qps, joined,
                 std::max(1, st.last_input.available_containers),
                 /*resident=*/true);
    if (!ev.lambda_max.has_value() ||
        st.last_input.load_qps > *ev.lambda_max) {
      return false;
    }
  }
  return true;
}

SwitchDecision DeploymentController::tick(const std::string& name,
                                          const ServiceTickInput& input) {
  AMOEBA_PROF_SCOPE(kController);
  AMOEBA_EXPECTS(input.load_qps >= 0.0);
  AMOEBA_EXPECTS(input.available_containers >= 0);
  ServiceState& st = state_of(name);
  st.last_input = input;
  st.has_input = true;

  const int n = std::max(1, input.available_containers);
  const bool resident = st.mode == DeployMode::kServerless;
  const Evaluation ev =
      evaluate(name, input.load_qps, input.total_pressures, n, resident);
  st.last_eval = ev;

  // Switching back to IaaS takes hysteresis + the VM boot; judge that
  // direction on the anticipated load so the switch completes before the
  // serverless pool saturates.
  const double rising_load = std::max(input.load_qps,
                                      input.forecast_load_qps);
  const bool serverless_can_hold =
      ev.lambda_max.has_value() &&
      rising_load <= cfg_.to_serverless_margin * *ev.lambda_max;
  const bool serverless_overloaded =
      !ev.lambda_max.has_value() ||
      rising_load > cfg_.to_iaas_margin * *ev.lambda_max;

  if (st.mode == DeployMode::kIaas) {
    st.votes_to_iaas = 0;
    if (serverless_can_hold) {
      st.votes_to_serverless += 1;
    } else {
      st.votes_to_serverless = 0;
    }
    if (st.votes_to_serverless >= cfg_.hysteresis_ticks) {
      if (!cfg_.co_tenant_check || co_tenants_safe_with(name, input)) {
        st.votes_to_serverless = 0;
        return SwitchDecision::kSwitchToServerless;
      }
      // Unsafe for residents: hold position, keep watching.
      st.votes_to_serverless = cfg_.hysteresis_ticks;  // stay primed
    }
    return SwitchDecision::kStay;
  }

  // Serverless mode: model vote plus the observed-latency backstop.
  st.votes_to_serverless = 0;
  const bool observed_violation =
      input.observed_p95.has_value() &&
      *input.observed_p95 >
          cfg_.observed_violation_fraction * st.qos_target_s;
  if (serverless_overloaded || observed_violation) {
    st.votes_to_iaas += 1;
  } else {
    st.votes_to_iaas = 0;
  }
  if (st.votes_to_iaas >= cfg_.hysteresis_ticks) {
    st.votes_to_iaas = 0;
    return SwitchDecision::kSwitchToIaas;
  }
  return SwitchDecision::kStay;
}

DeployMode DeploymentController::mode(const std::string& name) const {
  return state_of(name).mode;
}

void DeploymentController::set_mode(const std::string& name, DeployMode mode) {
  ServiceState& st = state_of(name);
  st.mode = mode;
  st.votes_to_serverless = 0;
  st.votes_to_iaas = 0;
}

const WeightEstimator& DeploymentController::estimator(
    const std::string& name) const {
  return state_of(name).estimator;
}

double DeploymentController::qos_target(const std::string& name) const {
  return state_of(name).qos_target_s;
}

void DeploymentController::set_qos_target(const std::string& name,
                                          double qos_target_s) {
  AMOEBA_EXPECTS_VALS(qos_target_s > 0.0, qos_target_s);
  state_of(name).qos_target_s = qos_target_s;
  AMOEBA_ENSURES(qos_target(name) == qos_target_s);
}

const std::optional<Evaluation>& DeploymentController::last_evaluation(
    const std::string& name) const {
  return state_of(name).last_eval;
}

int DeploymentController::votes_to_serverless(const std::string& name) const {
  return state_of(name).votes_to_serverless;
}

int DeploymentController::votes_to_iaas(const std::string& name) const {
  return state_of(name).votes_to_iaas;
}

std::vector<std::string> DeploymentController::services() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, st] : services_) out.push_back(name);
  return out;
}

}  // namespace amoeba::core
