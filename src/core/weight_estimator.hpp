// Per-service container-capacity estimation — paper Eq. 6 and §VI-A.
//
// Eq. 6 turns the three per-resource latency predictions {L_1, L_2, L_3}
// (from the latency surfaces at the current pressures and load) into a
// per-container processing capacity:
//
//     μ_n = 1 / ( Σ_i w_i · L_i + α )
//
// The weights w start pessimistic and are calibrated online by principal-
// component regression over heartbeat samples (features = surface
// predictions, target = observed service latency of queries mirrored to
// the serverless platform). Disabling the calibration gives the paper's
// Amoeba-NoM ablation: degradations on every resource are assumed to
// accumulate, which over-predicts latency and postpones profitable
// switches (paper Fig. 14/15).
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "linalg/pca.hpp"

namespace amoeba::core {

inline constexpr std::size_t kNumResources = 3;  // cpu/mem, disk IO, network

using Features = std::array<double, kNumResources>;

struct WeightEstimatorConfig {
  bool enable_pca = true;         ///< false = Amoeba-NoM accumulation mode
  std::size_t min_samples = 24;   ///< PCR needs this many heartbeats
  std::size_t max_samples = 512;  ///< sliding window of heartbeats
  double min_explained = 0.95;    ///< PCA variance retention (paper: "most")
  double ridge = 1e-8;
  /// Clamp surface-predicted latencies to this value (seconds) before they
  /// enter the regression. Saturated profiling cells carry sentinel values
  /// orders of magnitude above the operating regime; unclamped they swamp
  /// the linear fit, and any latency beyond the cap rejects the deployment
  /// regardless. 0 = no clamp. The controller defaults this to 4x the
  /// service's QoS target.
  double feature_cap_s = 0.0;
  /// Refit at most every `refit_interval` new samples (amortizes the PCR).
  std::size_t refit_interval = 8;
};

class WeightEstimator {
 public:
  /// `solo_latency` is L0, the uncontended service latency; `alpha` the
  /// fixed execution overhead in Eq. 6.
  WeightEstimator(WeightEstimatorConfig cfg, double solo_latency,
                  double alpha);

  /// Record one heartbeat observation: the surface-predicted latencies and
  /// the actually observed service latency (both seconds).
  void observe(const Features& predicted, double observed_latency);

  /// Predicted service time Σ w_i L_i + α (or the NoM accumulation when
  /// PCA is disabled or not yet primed).
  [[nodiscard]] double predict_service_time(const Features& predicted) const;

  /// μ_n = 1 / predict_service_time (Eq. 6).
  [[nodiscard]] double mu(const Features& predicted) const;

  /// Current weights; empty optional until a PCR fit has happened.
  [[nodiscard]] std::optional<std::array<double, kNumResources>> weights()
      const;

  [[nodiscard]] bool calibrated() const noexcept { return model_.has_value(); }
  [[nodiscard]] std::size_t samples() const noexcept { return window_.size(); }
  [[nodiscard]] std::size_t refits() const noexcept { return refits_; }
  [[nodiscard]] double solo_latency() const noexcept { return l0_; }

 private:
  void maybe_refit();
  [[nodiscard]] double accumulate_prediction(const Features& f) const;
  [[nodiscard]] Features clamped(const Features& f) const;

  WeightEstimatorConfig cfg_;
  double l0_;
  double alpha_;
  struct Sample {
    Features x;
    double y;
  };
  std::deque<Sample> window_;
  std::optional<linalg::PcrModel> model_;
  std::size_t since_refit_ = 0;
  std::size_t refits_ = 0;
};

}  // namespace amoeba::core
