// Amoeba runtime — the top-level system of paper Fig. 6.
//
// Wires together the contention-aware deployment controller (§IV), the
// hybrid execution engine (§V) and the multi-resource contention monitor
// (§VI) over one serverless platform and one IaaS platform. Per monitor
// sample period it measures each service's load, asks the controller for a
// decision, and drives the engine's switch protocol.
//
// Ablations from the paper's evaluation are configuration, not forks:
//   Amoeba-NoM: estimator.enable_pca = false   (§VII-C)
//   Amoeba-NoP: engine.enable_prewarm = false  (§VII-D)
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/contention_monitor.hpp"
#include "core/deployment_controller.hpp"
#include "core/hybrid_engine.hpp"
#include "core/resource_accounting.hpp"
#include "obs/observer.hpp"
#include "stats/percentile.hpp"
#include "stats/rate_estimator.hpp"
#include "stats/timeseries.hpp"

namespace amoeba::core {

struct AmoebaConfig {
  ControllerConfig controller;
  HybridEngineConfig engine;
  ContentionMonitorConfig monitor;
  WeightEstimatorConfig estimator;
  /// Load-measurement window for V_u (seconds).
  double load_window_s = 30.0;
  /// Horizon (seconds) over which rising load is extrapolated for the
  /// switch-back decision; should cover hysteresis + VM boot. 0 disables.
  double load_anticipation_s = 0.0;
  /// Period of the per-service timeline sampler (load, mode, usage — the
  /// Fig. 12/13 data). 0 (the default) follows the monitor sample period;
  /// negative disables timelines; positive is used as given.
  double timeline_period_s = 0.0;
  /// Observability sink (non-owning; nullptr = disabled, zero cost). When
  /// set, every monitor tick appends a DecisionRecord, switch-protocol
  /// phases and query lifecycles become spans, and labeled metrics update.
  /// Recording is pure bookkeeping: it never schedules simulation events or
  /// draws randomness, so enabling it does not change the event-trace hash.
  obs::Observer* observer = nullptr;
  /// Fault injector (non-owning; nullptr = fault-free). The runtime attaches
  /// it to the contention monitor; callers attach it to the platforms
  /// themselves (the scenario layer does all of this from one config).
  sim::FaultInjector* fault_injector = nullptr;
  /// Call-graph stage index when this runtime manages one stage of a DAG
  /// (exp::run_callgraph); -1 for standalone services. Carried into every
  /// DecisionRecord so one audit log disentangles N per-stage control loops.
  int stage_id = -1;
};

/// Per-service timelines for the paper's Fig. 12/13.
struct ServiceTimeline {
  stats::TimeSeries load_qps;
  stats::TimeSeries mode;  ///< 0 = IaaS, 1 = serverless
  stats::TimeSeries cpu_core_seconds;   ///< cumulative
  stats::TimeSeries memory_mb_seconds;  ///< cumulative
};

class AmoebaRuntime {
 public:
  AmoebaRuntime(sim::Engine& engine,
                serverless::ServerlessPlatform& serverless,
                iaas::IaasPlatform& iaas, MeterCalibration calibration,
                AmoebaConfig cfg, sim::Rng rng);

  /// Register a managed service: profile + just-enough VM spec + profiled
  /// artifacts. Must be called before start().
  void add_service(const workload::FunctionProfile& profile,
                   iaas::VmSpec vm_spec, ServiceArtifacts artifacts,
                   int serverless_max_containers = 0);

  /// Boot the monitor and begin control ticks.
  void start();
  void stop();

  /// User query entry point.
  void submit(const std::string& service, workload::QueryCompletionFn on_done);

  [[nodiscard]] DeploymentController& controller() noexcept {
    return controller_;
  }
  [[nodiscard]] ContentionMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] HybridExecutionEngine& execution_engine() noexcept {
    return exec_engine_;
  }
  [[nodiscard]] ResourceAccountant& accountant() noexcept {
    return accountant_;
  }

  [[nodiscard]] const std::vector<SwitchEvent>& switch_events() const {
    return exec_engine_.switch_events();
  }
  [[nodiscard]] const ServiceTimeline& timeline(
      const std::string& service) const;

  /// Current measured load of a service (V_u).
  [[nodiscard]] double measured_load(const std::string& service) const;

  /// Retarget the service's QoS budget everywhere it is consumed: the
  /// controller's discriminant, the execution engine's warm-set sizing and
  /// the runtime's own prewarm-target audit field. Driven by the
  /// end-to-end budget decomposer between monitor ticks.
  void set_qos_target(const std::string& service, double qos_target_s);

  /// Effective timeline sampling period: the configured value, or the
  /// monitor sample period when the config left it at 0. <= 0 = disabled.
  [[nodiscard]] double timeline_period() const;

  /// The attached observability sink (nullptr when disabled).
  [[nodiscard]] obs::Observer* observer() const noexcept { return obs_; }

 private:
  struct ServiceRt {
    workload::FunctionProfile profile;
    stats::RateEstimator load;
    stats::SampleSet period_latencies;  ///< user latencies since last tick
    ServiceTimeline timeline;
    double prev_tick_load = 0.0;  ///< for the load-trend forecast
    bool has_prev_load = false;
  };

  void on_sample();
  void sample_timelines();
  ServiceRt& rt_of(const std::string& service);
  const ServiceRt& rt_of(const std::string& service) const;

  /// Append the tick's DecisionRecord + metrics + trace instants for one
  /// service (observer must be attached).
  void record_decision(const std::string& name, const ServiceTickInput& input,
                       SwitchDecision decision);
  /// Record one completed user query (lifecycle span + latency metrics).
  void record_query(const std::string& service,
                    const workload::QueryRecord& rec, DeployMode platform);

  sim::Engine& engine_;
  serverless::ServerlessPlatform& serverless_;
  AmoebaConfig cfg_;
  DeploymentController controller_;
  HybridExecutionEngine exec_engine_;
  ContentionMonitor monitor_;
  ResourceAccountant accountant_;
  std::map<std::string, ServiceRt> services_;
  obs::Observer* obs_ = nullptr;
  std::uint64_t next_query_span_id_ = 1;
  bool started_ = false;
  sim::EventId timeline_event_ = sim::kNoEvent;
};

}  // namespace amoeba::core
