#include "core/budget_decomposer.hpp"

#include <algorithm>
#include <utility>

namespace amoeba::core {

void BudgetDecomposerConfig::validate() const {
  AMOEBA_EXPECTS(ewma_alpha > 0.0 && ewma_alpha <= 1.0);
  AMOEBA_EXPECTS(min_weight_s > 0.0);
}

BudgetDecomposer::BudgetDecomposer(workload::CallGraph graph,
                                   double e2e_target_s,
                                   const std::vector<double>& initial_weights,
                                   BudgetDecomposerConfig cfg)
    : graph_(std::move(graph)), target_s_(e2e_target_s), cfg_(cfg) {
  cfg_.validate();
  AMOEBA_EXPECTS_VALS(e2e_target_s > 0.0, e2e_target_s);
  AMOEBA_EXPECTS_VALS(
      static_cast<int>(initial_weights.size()) == graph_.size(),
      initial_weights.size(), graph_.size());
  weights_.reserve(initial_weights.size());
  for (const double w : initial_weights) {
    AMOEBA_EXPECTS_VALS(w > 0.0, w);
    weights_.push_back(std::max(w, cfg_.min_weight_s));
  }
}

void BudgetDecomposer::observe(int stage, double observed_p95_s) {
  AMOEBA_EXPECTS_VALS(stage >= 0 && stage < graph_.size(), stage,
                      graph_.size());
  AMOEBA_EXPECTS_VALS(observed_p95_s >= 0.0, observed_p95_s);
  const auto k = static_cast<std::size_t>(stage);
  const double sample = std::max(observed_p95_s, cfg_.min_weight_s);
  weights_[k] = (1.0 - cfg_.ewma_alpha) * weights_[k] +
                cfg_.ewma_alpha * sample;
}

std::vector<double> BudgetDecomposer::budgets() const {
  const std::vector<double> sums = graph_.path_sums_through(weights_);
  std::vector<double> out(weights_.size(), 0.0);
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    // S_k >= w_k > 0, so 0 < b_k <= T.
    out[k] = target_s_ * weights_[k] / sums[k];
    AMOEBA_ENSURES_VALS(out[k] > 0.0 && out[k] <= target_s_, out[k],
                        target_s_);
  }
  return out;
}

std::vector<double> BudgetDecomposer::equal_split(
    const workload::CallGraph& graph, double e2e_target_s) {
  AMOEBA_EXPECTS_VALS(e2e_target_s > 0.0, e2e_target_s);
  const double share =
      e2e_target_s / static_cast<double>(graph.max_path_stages());
  return std::vector<double>(static_cast<std::size_t>(graph.size()), share);
}

}  // namespace amoeba::core
