#include "core/weight_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace amoeba::core {

WeightEstimator::WeightEstimator(WeightEstimatorConfig cfg, double solo_latency,
                                 double alpha)
    : cfg_(cfg), l0_(solo_latency), alpha_(alpha) {
  AMOEBA_EXPECTS(solo_latency > 0.0);
  AMOEBA_EXPECTS(alpha >= 0.0);
  AMOEBA_EXPECTS(cfg.min_samples >= kNumResources + 1);
  AMOEBA_EXPECTS(cfg.max_samples >= cfg.min_samples);
  AMOEBA_EXPECTS(cfg.min_explained > 0.0 && cfg.min_explained <= 1.0);
  AMOEBA_EXPECTS(cfg.refit_interval >= 1);
}

Features WeightEstimator::clamped(const Features& f) const {
  if (cfg_.feature_cap_s <= 0.0) return f;
  Features out = f;
  for (double& v : out) v = std::min(v, cfg_.feature_cap_s);
  return out;
}

void WeightEstimator::observe(const Features& predicted,
                              double observed_latency) {
  AMOEBA_EXPECTS(observed_latency > 0.0);
  for (double v : predicted) AMOEBA_EXPECTS(v >= 0.0);
  window_.push_back(Sample{clamped(predicted), observed_latency});
  while (window_.size() > cfg_.max_samples) window_.pop_front();
  ++since_refit_;
  maybe_refit();
}

void WeightEstimator::maybe_refit() {
  if (!cfg_.enable_pca) return;
  if (window_.size() < cfg_.min_samples) return;
  if (model_.has_value() && since_refit_ < cfg_.refit_interval) return;
  since_refit_ = 0;

  linalg::Matrix x(window_.size(), kNumResources);
  std::vector<double> y(window_.size());
  for (std::size_t i = 0; i < window_.size(); ++i) {
    for (std::size_t j = 0; j < kNumResources; ++j) {
      x(i, j) = window_[i].x[j];
    }
    y[i] = window_[i].y;
  }
  model_ = linalg::fit_pcr(x, y, cfg_.min_explained, cfg_.ridge);
  ++refits_;
}

double WeightEstimator::accumulate_prediction(const Features& f) const {
  // Amoeba-NoM: assume each resource's degradation adds on top of L0
  // (paper §VII-C: "pessimistically assume that the QoS degradations ...
  // are accumulated").
  double service = l0_;
  for (double li : f) service += std::max(0.0, li - l0_);
  return service + alpha_;
}

double WeightEstimator::predict_service_time(const Features& raw) const {
  const Features f = clamped(raw);
  if (!model_.has_value()) return accumulate_prediction(f);
  double p = model_->predict(std::vector<double>(f.begin(), f.end()));
  // If any surface hit the cap, the operating point is outside the
  // calibrated regime: take the pessimistic max of the regression and the
  // accumulation prediction so saturation is never explained away.
  if (cfg_.feature_cap_s > 0.0) {
    for (std::size_t i = 0; i < kNumResources; ++i) {
      if (raw[i] >= cfg_.feature_cap_s) {
        p = std::max(p, accumulate_prediction(f));
        break;
      }
    }
  }
  // A regression extrapolating into thin data can under-shoot physics:
  // never predict below the uncontended floor.
  p = std::max(p, l0_ + alpha_);
  AMOEBA_ENSURES_VALS(p > 0.0 && std::isfinite(p), p);
  return p;
}

double WeightEstimator::mu(const Features& f) const {
  const double m = 1.0 / predict_service_time(f);
  // μ feeds the M/M/N discriminant directly; a non-positive or non-finite
  // rate would invalidate every downstream stability check.
  AMOEBA_ENSURES_VALS(m > 0.0 && std::isfinite(m), m);
  return m;
}

std::optional<std::array<double, kNumResources>> WeightEstimator::weights()
    const {
  if (!model_.has_value()) return std::nullopt;
  const auto beta = model_->raw_coefficients();
  AMOEBA_ASSERT(beta.size() == kNumResources);
  std::array<double, kNumResources> w{};
  std::copy(beta.begin(), beta.end(), w.begin());
  return w;
}

}  // namespace amoeba::core
