#include "core/hybrid_engine.hpp"

#include <algorithm>
#include <utility>

namespace amoeba::core {

namespace {
constexpr char kSwitchCat[] = "switch";
}

void HybridEngineConfig::validate() const {
  AMOEBA_EXPECTS(mirror_fraction >= 0.0 && mirror_fraction <= 1.0);
  AMOEBA_EXPECTS(prewarm_poll_s > 0.0);
  AMOEBA_EXPECTS(switch_timeout_s > 0.0);
}

HybridExecutionEngine::HybridExecutionEngine(
    sim::Engine& engine, serverless::ServerlessPlatform& serverless,
    iaas::IaasPlatform& iaas, HybridEngineConfig cfg, sim::Rng rng)
    : engine_(engine),
      serverless_(serverless),
      iaas_(iaas),
      cfg_(cfg),
      rng_(rng) {
  cfg_.validate();
}

void HybridExecutionEngine::add_service(
    const workload::FunctionProfile& profile, iaas::VmSpec vm_spec,
    int serverless_max_containers) {
  AMOEBA_EXPECTS_MSG(!services_.contains(profile.name),
                     "service already added");
  serverless_.register_function(profile, serverless_max_containers);
  iaas_.register_service(profile, vm_spec);

  ServiceState st;
  st.profile = profile;
  st.max_containers = serverless_max_containers;
  st.route = DeployMode::kIaas;
  services_.emplace(profile.name, std::move(st));

  // Default mode is IaaS (paper §III step 1): boot the VM now; queries that
  // arrive before it is ready wait in the boot buffer.
  const std::string name = profile.name;
  iaas_.boot(name, [this, name] { flush_boot_buffer(name); });
}

HybridExecutionEngine::ServiceState& HybridExecutionEngine::state_of(
    const std::string& service) {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

const HybridExecutionEngine::ServiceState& HybridExecutionEngine::state_of(
    const std::string& service) const {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

void HybridExecutionEngine::count_switch(const std::string& service,
                                         const char* to,
                                         const char* outcome) {
  if (obs_ == nullptr || !obs_->metrics_on()) return;
  obs_->metrics()
      .counter(std::string("switches_") + outcome,
               {{"service", service}, {"to", to}})
      .inc();
}

void HybridExecutionEngine::drain_vm(const std::string& service) {
  if (!trace_on()) {
    iaas_.drain_and_stop(service);
    return;
  }
  obs::Tracer& tr = obs_->tracer();
  const auto track = tr.track("svc:" + service + "/vm");
  tr.begin(track, "vm:drain", engine_.now(), kSwitchCat);
  iaas_.drain_and_stop(service, [this, service](bool completed) {
    obs::Tracer& t = obs_->tracer();
    t.end(t.track("svc:" + service + "/vm"), "vm:drain", engine_.now(),
          {obs::TraceArg::of("completed", completed ? 1.0 : 0.0)});
  });
}

void HybridExecutionEngine::flush_boot_buffer(const std::string& service) {
  ServiceState& st = state_of(service);
  while (!st.boot_buffer.empty() && iaas_.is_running(service)) {
    auto cb = std::move(st.boot_buffer.front());
    st.boot_buffer.pop_front();
    iaas_.submit(service, std::move(cb));
  }
}

void HybridExecutionEngine::submit(const std::string& service,
                                   workload::QueryCompletionFn on_done) {
  ServiceState& st = state_of(service);
  if (st.route == DeployMode::kServerless) {
    serverless_.submit(service, std::move(on_done));
    return;
  }
  // IaaS route. Mirror a sampling share to serverless for heartbeat data.
  if (st.mirroring && cfg_.mirror_fraction > 0.0 &&
      rng_.uniform() < cfg_.mirror_fraction) {
    ++mirrored_;
    serverless_.submit(service,
                       [this, service](const workload::QueryRecord& rec) {
                         if (mirror_observer_) mirror_observer_(service, rec);
                       });
  }
  if (iaas_.is_running(service)) {
    iaas_.submit(service, std::move(on_done));
  } else {
    st.boot_buffer.push_back(std::move(on_done));
  }
}

DeployMode HybridExecutionEngine::route(const std::string& service) const {
  return state_of(service).route;
}

void HybridExecutionEngine::maintain_warm(const std::string& service,
                                          double load_qps) {
  if (!cfg_.enable_prewarm) return;
  ServiceState& st = state_of(service);
  if (st.route != DeployMode::kServerless || st.switching) return;
  int n = cfg_.prewarm.containers_for(load_qps, st.profile.qos_target_s);
  if (st.max_containers > 0) n = std::min(n, st.max_containers);
  serverless_.prewarm(service, n);
}

void HybridExecutionEngine::set_mirroring(const std::string& service,
                                          bool enabled) {
  state_of(service).mirroring = enabled;
}

bool HybridExecutionEngine::mirroring(const std::string& service) const {
  return state_of(service).mirroring;
}

bool HybridExecutionEngine::transitioning(const std::string& service) const {
  return state_of(service).switching;
}

int HybridExecutionEngine::available_containers(
    const std::string& service) const {
  const ServiceState& st = state_of(service);
  const auto counts = serverless_.counts(service);
  const int mem_bound =
      counts.total() + serverless_.pool().headroom(st.profile.memory_mb);
  return st.max_containers > 0 ? std::min(st.max_containers, mem_bound)
                               : mem_bound;
}

void HybridExecutionEngine::poll_prewarm(
    const std::string& service, int needed, double deadline,
    std::uint64_t generation, std::function<void(bool)> on_complete) {
  ServiceState& st = state_of(service);
  if (st.switch_generation != generation) return;  // superseded
  const auto counts = serverless_.counts(service);
  const bool warm_enough = counts.idle + counts.busy >= needed;
  if (warm_enough) {
    st.switching = false;
    st.route = DeployMode::kServerless;
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      const auto track = tr.track("svc:" + service + "/control");
      tr.end(track, "prewarm", engine_.now(),
             {obs::TraceArg::of("idle", static_cast<double>(counts.idle)),
              obs::TraceArg::of("busy", static_cast<double>(counts.busy))});
      tr.instant(track, "ack", engine_.now(), kSwitchCat,
                 {obs::TraceArg::of("needed", static_cast<double>(needed))});
      tr.instant(track, "route_flip", engine_.now(), kSwitchCat);
    }
    serverless_.unretire(service);
    drain_vm(service);
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      tr.end(tr.track("svc:" + service + "/control"), "switch:to_serverless",
             engine_.now(), {obs::TraceArg::of("completed", 1.0)});
    }
    count_switch(service, "serverless", "completed");
    switch_events_.push_back(
        {engine_.now(), service, DeployMode::kServerless, 0.0});
    on_complete(true);
    return;
  }
  if (engine_.now() >= deadline) {
    st.switching = false;  // abort: stay on IaaS
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      const auto track = tr.track("svc:" + service + "/control");
      tr.end(track, "prewarm", engine_.now(),
             {obs::TraceArg::of("idle", static_cast<double>(counts.idle)),
              obs::TraceArg::of("busy", static_cast<double>(counts.busy))});
      tr.instant(track, "switch_abort", engine_.now(), kSwitchCat,
                 {obs::TraceArg::of("needed", static_cast<double>(needed))});
      tr.end(track, "switch:to_serverless", engine_.now(),
             {obs::TraceArg::of("completed", 0.0)});
    }
    count_switch(service, "serverless", "aborted");
    on_complete(false);
    return;
  }
  // Keep nudging the pool: evictions/expiry may have freed memory.
  serverless_.prewarm(service, needed);
  engine_.schedule_in(cfg_.prewarm_poll_s, [this, service, needed, deadline,
                                            generation,
                                            cb = std::move(on_complete)]() mutable {
    poll_prewarm(service, needed, deadline, generation, std::move(cb));
  });
}

void HybridExecutionEngine::switch_to_serverless(
    const std::string& service, double load_qps,
    std::function<void(bool)> on_complete) {
  AMOEBA_EXPECTS(on_complete != nullptr);
  ServiceState& st = state_of(service);
  AMOEBA_EXPECTS_MSG(!st.switching, "switch already in progress");
  AMOEBA_EXPECTS_MSG(st.route == DeployMode::kIaas,
                     "already on serverless");
  st.switching = true;
  const std::uint64_t generation = ++st.switch_generation;
  serverless_.unretire(service);
  count_switch(service, "serverless", "started");
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.begin(tr.track("svc:" + service + "/control"), "switch:to_serverless",
             engine_.now(), kSwitchCat,
             {obs::TraceArg::of("load_qps", load_qps)});
  }

  if (!cfg_.enable_prewarm) {
    // Amoeba-NoP: flip immediately; queries cold-start on arrival.
    st.switching = false;
    st.route = DeployMode::kServerless;
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      tr.instant(tr.track("svc:" + service + "/control"), "route_flip",
                 engine_.now(), kSwitchCat);
    }
    drain_vm(service);
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      tr.end(tr.track("svc:" + service + "/control"), "switch:to_serverless",
             engine_.now(), {obs::TraceArg::of("completed", 1.0)});
    }
    count_switch(service, "serverless", "completed");
    switch_events_.push_back(
        {engine_.now(), service, DeployMode::kServerless, load_qps});
    on_complete(true);
    return;
  }

  const int needed = cfg_.prewarm.containers_for(load_qps,
                                                 st.profile.qos_target_s);
  const double deadline = engine_.now() + cfg_.switch_timeout_s;
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.begin(tr.track("svc:" + service + "/control"), "prewarm",
             engine_.now(), kSwitchCat,
             {obs::TraceArg::of("needed", static_cast<double>(needed))});
  }
  serverless_.prewarm(service, needed);
  // Record the load on the event when it completes (poll_prewarm logs 0.0;
  // patch it afterwards via the completion wrapper).
  poll_prewarm(service, needed, deadline, generation,
               [this, load_qps, cb = std::move(on_complete)](bool ok) {
                 if (ok && !switch_events_.empty()) {
                   switch_events_.back().load_qps = load_qps;
                 }
                 cb(ok);
               });
}

void HybridExecutionEngine::switch_to_iaas(
    const std::string& service, double load_qps,
    std::function<void(bool)> on_complete) {
  AMOEBA_EXPECTS(on_complete != nullptr);
  ServiceState& st = state_of(service);
  AMOEBA_EXPECTS_MSG(!st.switching, "switch already in progress");
  AMOEBA_EXPECTS_MSG(st.route == DeployMode::kServerless, "already on IaaS");
  st.switching = true;
  ++st.switch_generation;
  count_switch(service, "iaas", "started");
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.begin(tr.track("svc:" + service + "/control"), "switch:to_iaas",
             engine_.now(), kSwitchCat,
             {obs::TraceArg::of("load_qps", load_qps)});
  }
  const std::string name = service;
  iaas_.boot(name, [this, name, load_qps,
                    cb = std::move(on_complete)]() mutable {
    ServiceState& s = state_of(name);
    s.switching = false;
    s.route = DeployMode::kIaas;
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      tr.end(tr.track("svc:" + name + "/vm"), "vm:boot", engine_.now());
      const auto track = tr.track("svc:" + name + "/control");
      tr.instant(track, "ack", engine_.now(), kSwitchCat);
      tr.instant(track, "route_flip", engine_.now(), kSwitchCat);
    }
    flush_boot_buffer(name);
    // Shutdown signal S_sd: reclaim the containers once their in-flight
    // queries complete.
    serverless_.retire(name);
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      const auto track = tr.track("svc:" + name + "/control");
      tr.instant(track, "release:containers", engine_.now(), kSwitchCat);
      tr.end(track, "switch:to_iaas", engine_.now(),
             {obs::TraceArg::of("completed", 1.0)});
    }
    count_switch(name, "iaas", "completed");
    switch_events_.push_back(
        {engine_.now(), name, DeployMode::kIaas, load_qps});
    cb(true);
  });
  // Emitted after iaas_.boot so a cancelled drain's "vm:drain" end (fired
  // inline by boot()) lands before this begin — sync spans per track are a
  // stack and must stay balanced.
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.begin(tr.track("svc:" + service + "/vm"), "vm:boot", engine_.now(),
             kSwitchCat);
  }
}

}  // namespace amoeba::core
