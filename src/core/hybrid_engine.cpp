#include "core/hybrid_engine.hpp"

#include <algorithm>
#include <utility>

namespace amoeba::core {

void HybridEngineConfig::validate() const {
  AMOEBA_EXPECTS(mirror_fraction >= 0.0 && mirror_fraction <= 1.0);
  AMOEBA_EXPECTS(prewarm_poll_s > 0.0);
  AMOEBA_EXPECTS(switch_timeout_s > 0.0);
}

HybridExecutionEngine::HybridExecutionEngine(
    sim::Engine& engine, serverless::ServerlessPlatform& serverless,
    iaas::IaasPlatform& iaas, HybridEngineConfig cfg, sim::Rng rng)
    : engine_(engine),
      serverless_(serverless),
      iaas_(iaas),
      cfg_(cfg),
      rng_(rng) {
  cfg_.validate();
}

void HybridExecutionEngine::add_service(
    const workload::FunctionProfile& profile, iaas::VmSpec vm_spec,
    int serverless_max_containers) {
  AMOEBA_EXPECTS_MSG(!services_.contains(profile.name),
                     "service already added");
  serverless_.register_function(profile, serverless_max_containers);
  iaas_.register_service(profile, vm_spec);

  ServiceState st;
  st.profile = profile;
  st.max_containers = serverless_max_containers;
  st.route = DeployMode::kIaas;
  services_.emplace(profile.name, std::move(st));

  // Default mode is IaaS (paper §III step 1): boot the VM now; queries that
  // arrive before it is ready wait in the boot buffer.
  const std::string name = profile.name;
  iaas_.boot(name, [this, name] { flush_boot_buffer(name); });
}

HybridExecutionEngine::ServiceState& HybridExecutionEngine::state_of(
    const std::string& service) {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

const HybridExecutionEngine::ServiceState& HybridExecutionEngine::state_of(
    const std::string& service) const {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

void HybridExecutionEngine::flush_boot_buffer(const std::string& service) {
  ServiceState& st = state_of(service);
  while (!st.boot_buffer.empty() && iaas_.is_running(service)) {
    auto cb = std::move(st.boot_buffer.front());
    st.boot_buffer.pop_front();
    iaas_.submit(service, std::move(cb));
  }
}

void HybridExecutionEngine::submit(const std::string& service,
                                   workload::QueryCompletionFn on_done) {
  ServiceState& st = state_of(service);
  if (st.route == DeployMode::kServerless) {
    serverless_.submit(service, std::move(on_done));
    return;
  }
  // IaaS route. Mirror a sampling share to serverless for heartbeat data.
  if (st.mirroring && cfg_.mirror_fraction > 0.0 &&
      rng_.uniform() < cfg_.mirror_fraction) {
    ++mirrored_;
    serverless_.submit(service,
                       [this, service](const workload::QueryRecord& rec) {
                         if (mirror_observer_) mirror_observer_(service, rec);
                       });
  }
  if (iaas_.is_running(service)) {
    iaas_.submit(service, std::move(on_done));
  } else {
    st.boot_buffer.push_back(std::move(on_done));
  }
}

DeployMode HybridExecutionEngine::route(const std::string& service) const {
  return state_of(service).route;
}

void HybridExecutionEngine::maintain_warm(const std::string& service,
                                          double load_qps) {
  if (!cfg_.enable_prewarm) return;
  ServiceState& st = state_of(service);
  if (st.route != DeployMode::kServerless || st.switching) return;
  int n = cfg_.prewarm.containers_for(load_qps, st.profile.qos_target_s);
  if (st.max_containers > 0) n = std::min(n, st.max_containers);
  serverless_.prewarm(service, n);
}

void HybridExecutionEngine::set_mirroring(const std::string& service,
                                          bool enabled) {
  state_of(service).mirroring = enabled;
}

bool HybridExecutionEngine::mirroring(const std::string& service) const {
  return state_of(service).mirroring;
}

bool HybridExecutionEngine::transitioning(const std::string& service) const {
  return state_of(service).switching;
}

int HybridExecutionEngine::available_containers(
    const std::string& service) const {
  const ServiceState& st = state_of(service);
  const auto counts = serverless_.counts(service);
  const int mem_bound =
      counts.total() + serverless_.pool().headroom(st.profile.memory_mb);
  return st.max_containers > 0 ? std::min(st.max_containers, mem_bound)
                               : mem_bound;
}

void HybridExecutionEngine::poll_prewarm(
    const std::string& service, int needed, double deadline,
    std::uint64_t generation, std::function<void(bool)> on_complete) {
  ServiceState& st = state_of(service);
  if (st.switch_generation != generation) return;  // superseded
  const auto counts = serverless_.counts(service);
  const bool warm_enough = counts.idle + counts.busy >= needed;
  if (warm_enough) {
    st.switching = false;
    st.route = DeployMode::kServerless;
    serverless_.unretire(service);
    iaas_.drain_and_stop(service);
    switch_events_.push_back(
        {engine_.now(), service, DeployMode::kServerless, 0.0});
    on_complete(true);
    return;
  }
  if (engine_.now() >= deadline) {
    st.switching = false;  // abort: stay on IaaS
    on_complete(false);
    return;
  }
  // Keep nudging the pool: evictions/expiry may have freed memory.
  serverless_.prewarm(service, needed);
  engine_.schedule_in(cfg_.prewarm_poll_s, [this, service, needed, deadline,
                                            generation,
                                            cb = std::move(on_complete)]() mutable {
    poll_prewarm(service, needed, deadline, generation, std::move(cb));
  });
}

void HybridExecutionEngine::switch_to_serverless(
    const std::string& service, double load_qps,
    std::function<void(bool)> on_complete) {
  AMOEBA_EXPECTS(on_complete != nullptr);
  ServiceState& st = state_of(service);
  AMOEBA_EXPECTS_MSG(!st.switching, "switch already in progress");
  AMOEBA_EXPECTS_MSG(st.route == DeployMode::kIaas,
                     "already on serverless");
  st.switching = true;
  const std::uint64_t generation = ++st.switch_generation;
  serverless_.unretire(service);

  if (!cfg_.enable_prewarm) {
    // Amoeba-NoP: flip immediately; queries cold-start on arrival.
    st.switching = false;
    st.route = DeployMode::kServerless;
    iaas_.drain_and_stop(service);
    switch_events_.push_back(
        {engine_.now(), service, DeployMode::kServerless, load_qps});
    on_complete(true);
    return;
  }

  const int needed = cfg_.prewarm.containers_for(load_qps,
                                                 st.profile.qos_target_s);
  const double deadline = engine_.now() + cfg_.switch_timeout_s;
  serverless_.prewarm(service, needed);
  // Record the load on the event when it completes (poll_prewarm logs 0.0;
  // patch it afterwards via the completion wrapper).
  poll_prewarm(service, needed, deadline, generation,
               [this, load_qps, cb = std::move(on_complete)](bool ok) {
                 if (ok && !switch_events_.empty()) {
                   switch_events_.back().load_qps = load_qps;
                 }
                 cb(ok);
               });
}

void HybridExecutionEngine::switch_to_iaas(
    const std::string& service, double load_qps,
    std::function<void(bool)> on_complete) {
  AMOEBA_EXPECTS(on_complete != nullptr);
  ServiceState& st = state_of(service);
  AMOEBA_EXPECTS_MSG(!st.switching, "switch already in progress");
  AMOEBA_EXPECTS_MSG(st.route == DeployMode::kServerless, "already on IaaS");
  st.switching = true;
  ++st.switch_generation;
  const std::string name = service;
  iaas_.boot(name, [this, name, load_qps,
                    cb = std::move(on_complete)]() mutable {
    ServiceState& s = state_of(name);
    s.switching = false;
    s.route = DeployMode::kIaas;
    flush_boot_buffer(name);
    // Shutdown signal S_sd: reclaim the containers once their in-flight
    // queries complete.
    serverless_.retire(name);
    switch_events_.push_back(
        {engine_.now(), name, DeployMode::kIaas, load_qps});
    cb(true);
  });
}

}  // namespace amoeba::core
