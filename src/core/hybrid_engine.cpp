#include "core/hybrid_engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace amoeba::core {

namespace {
constexpr char kSwitchCat[] = "switch";
}

void HybridEngineConfig::validate() const {
  AMOEBA_EXPECTS(mirror_fraction >= 0.0 && mirror_fraction <= 1.0);
  AMOEBA_EXPECTS(prewarm_poll_s > 0.0);
  AMOEBA_EXPECTS(switch_timeout_s > 0.0);
  AMOEBA_EXPECTS(switch_max_retries >= 1);
  AMOEBA_EXPECTS(switch_retry_backoff >= 1.0);
  AMOEBA_EXPECTS(abort_cooldown_s >= 0.0);
}

HybridExecutionEngine::HybridExecutionEngine(
    sim::Engine& engine, serverless::ServerlessPlatform& serverless,
    iaas::IaasPlatform& iaas, HybridEngineConfig cfg, sim::Rng rng)
    : engine_(engine),
      serverless_(serverless),
      iaas_(iaas),
      cfg_(cfg),
      rng_(rng) {
  cfg_.validate();
}

void HybridExecutionEngine::add_service(
    const workload::FunctionProfile& profile, iaas::VmSpec vm_spec,
    int serverless_max_containers) {
  AMOEBA_EXPECTS_MSG(!services_.contains(profile.name),
                     "service already added");
  serverless_.register_function(profile, serverless_max_containers);
  iaas_.register_service(profile, vm_spec);

  ServiceState st;
  st.profile = profile;
  st.max_containers = serverless_max_containers;
  st.route = DeployMode::kIaas;
  services_.emplace(profile.name, std::move(st));

  // Default mode is IaaS (paper §III step 1): boot the VM now; queries that
  // arrive before it is ready wait in the boot buffer.
  boot_initial_vm(profile.name, /*attempt=*/0);
}

void HybridExecutionEngine::boot_initial_vm(const std::string& service,
                                            int attempt) {
  ServiceState& st = state_of(service);
  if (st.route != DeployMode::kIaas || st.switching) return;
  if (iaas_.state(service) != iaas::VmState::kStopped) return;
  iaas_.boot(
      service, [this, service] { flush_boot_buffer(service); },
      [this, service, attempt] {
        const double delay =
            cfg_.prewarm_poll_s *
            std::pow(cfg_.switch_retry_backoff, std::min(attempt, 8));
        engine_.schedule_in(delay, [this, service, attempt] {
          boot_initial_vm(service, attempt + 1);
        });
      });
}

HybridExecutionEngine::ServiceState& HybridExecutionEngine::state_of(
    const std::string& service) {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

const HybridExecutionEngine::ServiceState& HybridExecutionEngine::state_of(
    const std::string& service) const {
  auto it = services_.find(service);
  AMOEBA_EXPECTS_MSG(it != services_.end(), "unknown service: " + service);
  return it->second;
}

void HybridExecutionEngine::count_switch(const std::string& service,
                                         const char* to,
                                         const char* outcome) {
  if (obs_ == nullptr || !obs_->metrics_on()) return;
  obs_->metrics()
      .counter(std::string("switches_") + outcome,
               {{"service", service}, {"to", to}})
      .inc();
}

void HybridExecutionEngine::drain_vm(const std::string& service) {
  if (!trace_on()) {
    iaas_.drain_and_stop(service);
    return;
  }
  obs::Tracer& tr = obs_->tracer();
  const auto track = tr.track("svc:" + service + "/vm");
  tr.begin(track, "vm:drain", engine_.now(), kSwitchCat);
  iaas_.drain_and_stop(service, [this, service](bool completed) {
    obs::Tracer& t = obs_->tracer();
    t.end(t.track("svc:" + service + "/vm"), "vm:drain", engine_.now(),
          {obs::TraceArg::of("completed", completed ? 1.0 : 0.0)});
  });
}

void HybridExecutionEngine::flush_boot_buffer(const std::string& service) {
  ServiceState& st = state_of(service);
  while (!st.boot_buffer.empty() && iaas_.is_running(service)) {
    auto cb = std::move(st.boot_buffer.front());
    st.boot_buffer.pop_front();
    iaas_.submit(service, std::move(cb));
  }
}

void HybridExecutionEngine::submit(const std::string& service,
                                   workload::QueryCompletionFn on_done) {
  ServiceState& st = state_of(service);
  if (st.route == DeployMode::kServerless) {
    serverless_.submit(service, std::move(on_done));
    return;
  }
  // IaaS route. Mirror a sampling share to serverless for heartbeat data.
  if (st.mirroring && cfg_.mirror_fraction > 0.0 &&
      rng_.uniform() < cfg_.mirror_fraction) {
    ++mirrored_;
    serverless_.submit(service,
                       [this, service](const workload::QueryRecord& rec) {
                         if (mirror_observer_) mirror_observer_(service, rec);
                       });
  }
  if (iaas_.is_running(service)) {
    iaas_.submit(service, std::move(on_done));
  } else {
    st.boot_buffer.push_back(std::move(on_done));
  }
}

DeployMode HybridExecutionEngine::route(const std::string& service) const {
  return state_of(service).route;
}

void HybridExecutionEngine::maintain_warm(const std::string& service,
                                          double load_qps) {
  if (!cfg_.enable_prewarm) return;
  ServiceState& st = state_of(service);
  if (st.route != DeployMode::kServerless || st.switching) return;
  int n = cfg_.prewarm.containers_for(load_qps, st.profile.qos_target_s);
  if (st.max_containers > 0) n = std::min(n, st.max_containers);
  serverless_.prewarm(service, n);
}

void HybridExecutionEngine::set_qos_target(const std::string& service,
                                           double qos_target_s) {
  AMOEBA_EXPECTS_VALS(qos_target_s > 0.0, qos_target_s);
  ServiceState& st = state_of(service);
  st.profile.qos_target_s = qos_target_s;
  AMOEBA_ENSURES(st.profile.qos_target_s == qos_target_s);
}

void HybridExecutionEngine::set_mirroring(const std::string& service,
                                          bool enabled) {
  state_of(service).mirroring = enabled;
}

bool HybridExecutionEngine::mirroring(const std::string& service) const {
  return state_of(service).mirroring;
}

bool HybridExecutionEngine::transitioning(const std::string& service) const {
  return state_of(service).switching;
}

bool HybridExecutionEngine::in_cooldown(const std::string& service) const {
  return engine_.now() < state_of(service).cooldown_until;
}

int HybridExecutionEngine::available_containers(
    const std::string& service) const {
  const ServiceState& st = state_of(service);
  const auto counts = serverless_.counts(service);
  const int mem_bound =
      counts.total() + serverless_.pool().headroom(st.profile.memory_mb);
  return st.max_containers > 0 ? std::min(st.max_containers, mem_bound)
                               : mem_bound;
}

void HybridExecutionEngine::finish_switch(ServiceState& st, bool ok) {
  if (st.switch_timeout != sim::kNoEvent) {
    engine_.cancel(st.switch_timeout);
    st.switch_timeout = sim::kNoEvent;
  }
  st.switching = false;
  if (!ok) {
    st.cooldown_until = engine_.now() + cfg_.abort_cooldown_s;
    ++switch_aborts_;
  }
  // Move out before calling: the callback may start the next switch.
  std::function<void(bool)> cb = std::move(st.switch_done);
  st.switch_done = nullptr;
  if (cb) cb(ok);
}

void HybridExecutionEngine::complete_to_serverless(const std::string& service,
                                                   int needed) {
  ServiceState& st = state_of(service);
  const auto counts = serverless_.counts(service);
  st.route = DeployMode::kServerless;
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    const auto track = tr.track("svc:" + service + "/control");
    tr.end(track, "prewarm", engine_.now(),
           {obs::TraceArg::of("idle", static_cast<double>(counts.idle)),
            obs::TraceArg::of("busy", static_cast<double>(counts.busy))});
    tr.instant(track, "ack", engine_.now(), kSwitchCat,
               {obs::TraceArg::of("needed", static_cast<double>(needed))});
    tr.instant(track, "route_flip", engine_.now(), kSwitchCat);
  }
  serverless_.unretire(service);
  drain_vm(service);
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.end(tr.track("svc:" + service + "/control"), "switch:to_serverless",
           engine_.now(), {obs::TraceArg::of("completed", 1.0)});
  }
  count_switch(service, "serverless", "completed");
  switch_events_.push_back(
      {engine_.now(), service, DeployMode::kServerless, st.switch_load_qps});
  finish_switch(st, true);
}

void HybridExecutionEngine::on_serverless_switch_timeout(
    const std::string& service, int needed, std::uint64_t generation) {
  ServiceState& st = state_of(service);
  if (st.switch_generation != generation || !st.switching) return;
  st.switch_timeout = sim::kNoEvent;  // we are the timeout event
  // Supersede any poll still in flight: its generation check drops it.
  ++st.switch_generation;
  const auto counts = serverless_.counts(service);
  // Deadline grace: if the warm set is already there (its ready events
  // sorted before this timeout at the same instant), the switch made the
  // budget — complete instead of aborting. Matches the poll path, where
  // the warm-enough check precedes the deadline check.
  if (counts.idle + counts.busy >= needed) {
    complete_to_serverless(service, needed);
    return;
  }
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    const auto track = tr.track("svc:" + service + "/control");
    tr.end(track, "prewarm", engine_.now(),
           {obs::TraceArg::of("idle", static_cast<double>(counts.idle)),
            obs::TraceArg::of("busy", static_cast<double>(counts.busy))});
    tr.instant(track, "switch_abort", engine_.now(), kSwitchCat,
               {obs::TraceArg::of("needed", static_cast<double>(needed))});
  }
  // Graceful degradation: stay on IaaS and hand back everything the switch
  // acquired — destroy the prewarmed warm set and restore the pre-switch
  // retire state so the service's memory integral stops accruing.
  const int released = serverless_.release_prewarmed(service);
  if (st.retired_before_switch) serverless_.retire(service);
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.end(tr.track("svc:" + service + "/control"), "switch:to_serverless",
           engine_.now(),
           {obs::TraceArg::of("completed", 0.0),
            obs::TraceArg::of("released", static_cast<double>(released))});
  }
  count_switch(service, "serverless", "aborted");
  finish_switch(st, false);
}

void HybridExecutionEngine::poll_prewarm(const std::string& service,
                                         int needed,
                                         std::uint64_t generation,
                                         int shortfalls) {
  ServiceState& st = state_of(service);
  if (st.switch_generation != generation) return;  // superseded
  const auto counts = serverless_.counts(service);
  if (counts.idle + counts.busy >= needed) {
    complete_to_serverless(service, needed);
    return;
  }
  // Keep nudging the pool: evictions/expiry may have freed memory.
  serverless_.prewarm(service, needed);
  double delay = cfg_.prewarm_poll_s;
  if (serverless_.counts(service).total() < needed) {
    // Allocation shortfall (no memory, or injected boot failures burned
    // attempts): retry with exponential backoff so a struggling pool is not
    // hammered every poll tick. The dedicated timeout event bounds the
    // whole affair; healthy switches keep the plain poll cadence.
    ++shortfalls;
    ++switch_retries_;
    delay = std::min(
        cfg_.prewarm_poll_s * std::pow(cfg_.switch_retry_backoff, shortfalls),
        cfg_.switch_timeout_s);
    if (trace_on()) {
      obs_->tracer().instant(
          obs_->tracer().track("svc:" + service + "/control"),
          "prewarm_retry", engine_.now(), kSwitchCat,
          {obs::TraceArg::of("shortfalls", static_cast<double>(shortfalls))});
    }
    if (obs_ != nullptr && obs_->metrics_on()) {
      obs_->metrics()
          .counter("switch_retries",
                   {{"service", service}, {"to", "serverless"}})
          .inc();
    }
  } else {
    shortfalls = 0;
  }
  engine_.schedule_in(delay, [this, service, needed, generation, shortfalls] {
    poll_prewarm(service, needed, generation, shortfalls);
  });
}

void HybridExecutionEngine::switch_to_serverless(
    const std::string& service, double load_qps,
    std::function<void(bool)> on_complete) {
  AMOEBA_EXPECTS(on_complete != nullptr);
  ServiceState& st = state_of(service);
  AMOEBA_EXPECTS_MSG(!st.switching, "switch already in progress");
  AMOEBA_EXPECTS_MSG(st.route == DeployMode::kIaas,
                     "already on serverless");
  st.switching = true;
  const std::uint64_t generation = ++st.switch_generation;
  st.switch_load_qps = load_qps;
  st.retired_before_switch = serverless_.retired(service);
  serverless_.unretire(service);
  count_switch(service, "serverless", "started");
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.begin(tr.track("svc:" + service + "/control"), "switch:to_serverless",
             engine_.now(), kSwitchCat,
             {obs::TraceArg::of("load_qps", load_qps)});
  }

  if (!cfg_.enable_prewarm) {
    // Amoeba-NoP: flip immediately; queries cold-start on arrival.
    st.switching = false;
    st.route = DeployMode::kServerless;
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      tr.instant(tr.track("svc:" + service + "/control"), "route_flip",
                 engine_.now(), kSwitchCat);
    }
    drain_vm(service);
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      tr.end(tr.track("svc:" + service + "/control"), "switch:to_serverless",
             engine_.now(), {obs::TraceArg::of("completed", 1.0)});
    }
    count_switch(service, "serverless", "completed");
    switch_events_.push_back(
        {engine_.now(), service, DeployMode::kServerless, load_qps});
    on_complete(true);
    return;
  }

  st.switch_done = std::move(on_complete);
  const int needed = cfg_.prewarm.containers_for(load_qps,
                                                 st.profile.qos_target_s);
  // A dedicated timeout event bounds the switch: polls no longer race the
  // deadline, and a straggling poll cannot postpone the abort.
  st.switch_timeout =
      engine_.schedule_in(cfg_.switch_timeout_s,
                          [this, service, needed, generation] {
                            on_serverless_switch_timeout(service, needed,
                                                         generation);
                          });
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.begin(tr.track("svc:" + service + "/control"), "prewarm",
             engine_.now(), kSwitchCat,
             {obs::TraceArg::of("needed", static_cast<double>(needed))});
  }
  serverless_.prewarm(service, needed);
  poll_prewarm(service, needed, generation, /*shortfalls=*/0);
}

void HybridExecutionEngine::on_vm_ready(const std::string& service,
                                        std::uint64_t generation) {
  ServiceState& st = state_of(service);
  if (st.switch_generation != generation || !st.switching) {
    // Stale ack: the switch aborted while this boot was still in flight.
    // Defensively put the VM back down (the abort path already stopped a
    // kBooting VM, so this is belt-and-braces for future boot semantics).
    iaas_.drain_and_stop(service);
    return;
  }
  st.route = DeployMode::kIaas;
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.end(tr.track("svc:" + service + "/vm"), "vm:boot", engine_.now());
    const auto track = tr.track("svc:" + service + "/control");
    tr.instant(track, "ack", engine_.now(), kSwitchCat);
    tr.instant(track, "route_flip", engine_.now(), kSwitchCat);
  }
  flush_boot_buffer(service);
  // Shutdown signal S_sd: reclaim the containers once their in-flight
  // queries complete.
  serverless_.retire(service);
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    const auto track = tr.track("svc:" + service + "/control");
    tr.instant(track, "release:containers", engine_.now(), kSwitchCat);
    tr.end(track, "switch:to_iaas", engine_.now(),
           {obs::TraceArg::of("completed", 1.0)});
  }
  count_switch(service, "iaas", "completed");
  switch_events_.push_back(
      {engine_.now(), service, DeployMode::kIaas, st.switch_load_qps});
  finish_switch(st, true);
}

void HybridExecutionEngine::on_vm_boot_failed(const std::string& service,
                                              std::uint64_t generation,
                                              int attempt) {
  ServiceState& st = state_of(service);
  if (st.switch_generation != generation || !st.switching) return;
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.end(tr.track("svc:" + service + "/vm"), "vm:boot", engine_.now(),
           {obs::TraceArg::of("completed", 0.0)});
  }
  if (obs_ != nullptr && obs_->metrics_on()) {
    obs_->metrics()
        .counter("vm_boot_failures", {{"service", service}})
        .inc();
  }
  if (attempt + 1 >= cfg_.switch_max_retries) {
    abort_to_iaas(service);
    return;
  }
  ++switch_retries_;
  if (trace_on()) {
    obs_->tracer().instant(
        obs_->tracer().track("svc:" + service + "/control"), "boot_retry",
        engine_.now(), kSwitchCat,
        {obs::TraceArg::of("attempt", static_cast<double>(attempt + 1))});
  }
  if (obs_ != nullptr && obs_->metrics_on()) {
    obs_->metrics()
        .counter("switch_retries", {{"service", service}, {"to", "iaas"}})
        .inc();
  }
  const double delay =
      cfg_.prewarm_poll_s * std::pow(cfg_.switch_retry_backoff, attempt);
  engine_.schedule_in(delay, [this, service, generation, attempt] {
    start_vm_boot(service, generation, attempt + 1);
  });
}

void HybridExecutionEngine::start_vm_boot(const std::string& service,
                                          std::uint64_t generation,
                                          int attempt) {
  ServiceState& st = state_of(service);
  if (st.switch_generation != generation || !st.switching) return;
  iaas_.boot(
      service, [this, service, generation] { on_vm_ready(service, generation); },
      [this, service, generation, attempt] {
        on_vm_boot_failed(service, generation, attempt);
      });
  // Emitted after iaas_.boot so a cancelled drain's "vm:drain" end (fired
  // inline by boot()) lands before this begin — sync spans per track are a
  // stack and must stay balanced.
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.begin(tr.track("svc:" + service + "/vm"), "vm:boot", engine_.now(),
             kSwitchCat,
             {obs::TraceArg::of("attempt", static_cast<double>(attempt))});
  }
}

void HybridExecutionEngine::abort_to_iaas(const std::string& service) {
  ServiceState& st = state_of(service);
  // Supersede pending boots/retries, then stand down: the service stays on
  // serverless (its containers keep serving) and the controller re-decides
  // after the cooldown.
  ++st.switch_generation;
  const bool booting = iaas_.state(service) == iaas::VmState::kBooting;
  if (booting) {
    iaas_.drain_and_stop(service);  // aborts the in-flight boot outright
    if (trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      tr.end(tr.track("svc:" + service + "/vm"), "vm:boot", engine_.now(),
             {obs::TraceArg::of("completed", 0.0)});
    }
  }
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    const auto track = tr.track("svc:" + service + "/control");
    tr.instant(track, "switch_abort", engine_.now(), kSwitchCat);
    tr.end(track, "switch:to_iaas", engine_.now(),
           {obs::TraceArg::of("completed", 0.0)});
  }
  count_switch(service, "iaas", "aborted");
  finish_switch(st, false);
}

void HybridExecutionEngine::switch_to_iaas(
    const std::string& service, double load_qps,
    std::function<void(bool)> on_complete) {
  AMOEBA_EXPECTS(on_complete != nullptr);
  ServiceState& st = state_of(service);
  AMOEBA_EXPECTS_MSG(!st.switching, "switch already in progress");
  AMOEBA_EXPECTS_MSG(st.route == DeployMode::kServerless, "already on IaaS");
  st.switching = true;
  const std::uint64_t generation = ++st.switch_generation;
  st.switch_load_qps = load_qps;
  st.switch_done = std::move(on_complete);
  count_switch(service, "iaas", "started");
  if (trace_on()) {
    obs::Tracer& tr = obs_->tracer();
    tr.begin(tr.track("svc:" + service + "/control"), "switch:to_iaas",
             engine_.now(), kSwitchCat,
             {obs::TraceArg::of("load_qps", load_qps)});
  }
  // Boot first, then arm the timeout: a boot completing exactly at the
  // deadline was scheduled earlier and so fires first (FIFO tie-break),
  // letting an on-budget switch win the tie and cancel the timeout.
  start_vm_boot(service, generation, /*attempt=*/0);
  st.switch_timeout = engine_.schedule_in(
      cfg_.switch_timeout_s, [this, service, generation] {
        ServiceState& s = state_of(service);
        if (s.switch_generation != generation || !s.switching) return;
        s.switch_timeout = sim::kNoEvent;  // we are the timeout event
        abort_to_iaas(service);
      });
}

}  // namespace amoeba::core
