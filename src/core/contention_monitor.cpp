#include "core/contention_monitor.hpp"

#include <utility>
#include "obs/profiler.hpp"

namespace amoeba::core {

void ContentionMonitorConfig::validate() const {
  AMOEBA_EXPECTS(probe_qps > 0.0);
  AMOEBA_EXPECTS(sample_period_s > 0.0);
  AMOEBA_EXPECTS(smoothing > 0.0 && smoothing <= 1.0);
  AMOEBA_EXPECTS(pressure_max_age_s >= 0.0);
}

ContentionMonitor::ContentionMonitor(sim::Engine& engine,
                                     serverless::ServerlessPlatform& platform,
                                     MeterCalibration calibration,
                                     ContentionMonitorConfig cfg, sim::Rng rng)
    : engine_(engine),
      platform_(platform),
      calibration_(std::move(calibration)),
      cfg_(cfg),
      rng_(rng) {
  cfg_.validate();
  AMOEBA_EXPECTS_MSG(calibration_.complete(),
                     "monitor needs all three meter calibration curves");
  for (std::size_t i = 0; i < kNumResources; ++i) {
    meters_[i].profile =
        workload::meter_profile(workload::kAllMeters[i]);
    meters_[i].pressure = calibration_.curves[i]->points().front().pressure;
  }
}

ContentionMonitor::~ContentionMonitor() { stop(); }

void ContentionMonitor::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    MeterState& m = meters_[i];
    m.last_update = engine_.now();
    if (!platform_.has_function(m.profile.name)) {
      platform_.register_function(m.profile);
    }
    const std::string fn = m.profile.name;
    m.generator = std::make_unique<workload::ConstantLoadGenerator>(
        engine_, rng_.fork(7000 + i), cfg_.probe_qps, [this, i, fn] {
          platform_.submit(fn, [this, i](const workload::QueryRecord& rec) {
            // Injected telemetry faults: the completion may be lost before
            // it reaches the aggregator, or its latency contaminated.
            if (faults_ != nullptr && faults_->next_meter_drop()) return;
            // Exclude queue wait and cold start: the meter measures
            // contention on the resource, not pool sizing effects.
            double lat = rec.breakdown.total() - rec.breakdown.queue_s -
                         rec.breakdown.cold_start_s;
            if (faults_ != nullptr) lat *= faults_->next_meter_multiplier();
            meters_[i].latency_sum += lat;
            meters_[i].latency_count += 1;
          });
        });
    m.generator->start();
  }
  period_event_ =
      engine_.schedule_in(cfg_.sample_period_s, [this] { on_period(); });
}

void ContentionMonitor::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& m : meters_) {
    if (m.generator) m.generator->stop();
  }
  if (period_event_ != sim::kNoEvent) {
    engine_.cancel(period_event_);
    period_event_ = sim::kNoEvent;
  }
}

void ContentionMonitor::on_period() {
  AMOEBA_PROF_SCOPE(kMonitor);
  period_event_ = sim::kNoEvent;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    MeterState& m = meters_[i];
    if (m.latency_count > 0) {
      const double mean =
          m.latency_sum / static_cast<double>(m.latency_count);
      m.last_mean_latency = mean;
      // The calibration curve's pressure axis includes the probing load
      // itself (the meter was the only tenant during profiling), so the
      // tenants' pressure is the inversion minus the probe's own share.
      const double self = probe_self_pressure(i);
      const double floor = calibration_.curves[i]->points().front().pressure;
      const double raw = std::max(
          floor, calibration_.curves[i]->pressure_for(mean) - self);
      m.pressure += cfg_.smoothing * (raw - m.pressure);
      m.latency_sum = 0.0;
      m.latency_count = 0;
      m.last_update = engine_.now();
      continue;
    }
    // No completions this period: hold the previous estimate (the meter
    // queries are still in flight under extreme contention, which itself
    // implies high pressure; the next period will catch up) — but only up
    // to the configured age cap. Past it, the reading is too stale to act
    // on (samples may be getting dropped) and decays to the calibration
    // floor so the controller stops trusting phantom pressure.
    if (cfg_.pressure_max_age_s > 0.0 &&
        engine_.now() - m.last_update > cfg_.pressure_max_age_s) {
      const double floor = calibration_.curves[i]->points().front().pressure;
      if (m.pressure > floor) {
        m.pressure = floor;
        ++stale_resets_;
        if (obs_ != nullptr && obs_->metrics_on()) {
          static constexpr std::array<const char*, kNumResources> kDimNames = {
              "cpu", "io", "net"};
          obs_->metrics()
              .counter("pressure_stale_resets", {{"resource", kDimNames[i]}})
              .inc();
        }
      }
    }
  }
  ++samples_taken_;
  if (obs_ != nullptr && obs_->enabled()) {
    static constexpr std::array<const char*, kNumResources> kDims = {
        "cpu", "io", "net"};
    const double now = engine_.now();
    if (obs_->metrics_on()) {
      for (std::size_t i = 0; i < kNumResources; ++i) {
        obs_->metrics()
            .gauge("pressure", {{"resource", kDims[i]}})
            .set(meters_[i].pressure);
        obs_->metrics()
            .gauge("pressure_age_s", {{"resource", kDims[i]}})
            .set(now - meters_[i].last_update);
      }
      obs_->metrics().counter("monitor_ticks").inc();
    }
    if (obs_->trace_on()) {
      obs::Tracer& tr = obs_->tracer();
      const auto track = tr.track("monitor");
      for (std::size_t i = 0; i < kNumResources; ++i) {
        tr.counter(track, std::string("pressure:") + kDims[i], now,
                   meters_[i].pressure);
      }
      tr.instant(track, "monitor_tick", now, "monitor");
    }
  }
  if (on_sample_) on_sample_();
  if (running_) {
    period_event_ =
        engine_.schedule_in(cfg_.sample_period_s, [this] { on_period(); });
  }
}

double ContentionMonitor::probe_self_pressure(std::size_t dim) const {
  const auto& p = meters_[dim].profile;
  const auto& cfg = platform_.config();
  switch (dim) {
    case kCpuDim:
      return cfg_.probe_qps * p.exec.cpu_seconds / cfg.cores;
    case kIoDim:
      return cfg_.probe_qps * (p.exec.io_bytes + p.code_bytes) /
             cfg.io_efficiency / cfg.disk_bps;
    default:
      return cfg_.probe_qps * (p.exec.net_bytes + p.result_bytes) /
             cfg.net_efficiency / cfg.net_bps;
  }
}

std::array<double, kNumResources> ContentionMonitor::pressures() const {
  std::array<double, kNumResources> out{};
  for (std::size_t i = 0; i < kNumResources; ++i) {
    out[i] = meters_[i].pressure;
  }
  return out;
}

std::array<double, kNumResources> ContentionMonitor::pressure_ages() const {
  std::array<double, kNumResources> out{};
  for (std::size_t i = 0; i < kNumResources; ++i) {
    out[i] = engine_.now() - meters_[i].last_update;
  }
  return out;
}

std::array<std::optional<double>, kNumResources>
ContentionMonitor::meter_latencies() const {
  std::array<std::optional<double>, kNumResources> out;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    out[i] = meters_[i].last_mean_latency;
  }
  return out;
}

std::array<double, kNumResources> ContentionMonitor::probe_cpu_overhead()
    const {
  std::array<double, kNumResources> out{};
  const double cores = platform_.config().cores;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    out[i] = cfg_.probe_qps * meters_[i].profile.exec.cpu_seconds / cores;
  }
  return out;
}

}  // namespace amoeba::core
