// Latency surfaces L(P, V_u) — paper §IV-B step 1 and Fig. 9.
//
// For each microservice and each contended resource, profiling co-locates
// the microservice (at load V_u) with a stressor (at pressure P) and
// records the tail latency over a 2-D grid. The surface answers "what
// latency would this microservice see at load V_u if the platform's
// pressure on this resource were P" via bilinear interpolation.
#pragma once

#include <vector>

#include "common/assert.hpp"

namespace amoeba::core {

class LatencySurface {
 public:
  /// `pressures` (size m) and `loads` (size k) are strictly increasing
  /// grid axes; `latencies` is row-major m×k (row = pressure index).
  LatencySurface(std::vector<double> pressures, std::vector<double> loads,
                 std::vector<double> latencies);

  /// Bilinear interpolation, clamped to the profiled ranges.
  [[nodiscard]] double at(double pressure, double load) const;

  [[nodiscard]] const std::vector<double>& pressures() const noexcept {
    return pressures_;
  }
  [[nodiscard]] const std::vector<double>& loads() const noexcept {
    return loads_;
  }
  [[nodiscard]] double value(std::size_t pi, std::size_t li) const;

  /// Solo latency: lowest pressure, lowest load corner (the L0 anchor).
  [[nodiscard]] double base_latency() const { return value(0, 0); }

 private:
  static std::size_t bracket(const std::vector<double>& axis, double x,
                             double& frac);

  std::vector<double> pressures_;
  std::vector<double> loads_;
  std::vector<double> lat_;  // row-major [pressure][load]
};

}  // namespace amoeba::core
