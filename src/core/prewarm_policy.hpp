// Container prewarm sizing — paper §V-A, Eq. 7.
//
// Before switching a microservice to the serverless platform, the engine
// warms n containers where (n−1)/QoS_t < V_u <= n/QoS_t: since a container
// runs one query at a time and each query may take up to the QoS target,
// n containers sustain at most n/QoS_t queries per second within target.
#pragma once

#include "common/assert.hpp"

namespace amoeba::core {

struct PrewarmPolicy {
  /// Multiplicative headroom on top of Eq. 7 for burst absorption
  /// ("leaves space for creating more containers for burst invocations").
  double headroom = 1.0;
  int min_containers = 1;
  int max_containers = 1 << 20;

  /// Eq. 7: smallest n with V_u <= n/QoS_t, scaled by headroom and clamped.
  [[nodiscard]] int containers_for(double load_qps, double qos_target_s) const;
};

}  // namespace amoeba::core
