#include "core/prewarm_policy.hpp"

#include <algorithm>
#include <cmath>

namespace amoeba::core {

int PrewarmPolicy::containers_for(double load_qps, double qos_target_s) const {
  AMOEBA_EXPECTS(load_qps >= 0.0);
  AMOEBA_EXPECTS(qos_target_s > 0.0);
  AMOEBA_EXPECTS(headroom >= 1.0);
  AMOEBA_EXPECTS(min_containers >= 0);
  AMOEBA_EXPECTS(max_containers >= min_containers);
  // Eq. 7: (n-1)/QoS_t < V_u <= n/QoS_t  =>  n = ceil(V_u * QoS_t).
  const double raw = std::ceil(load_qps * qos_target_s * headroom);
  const int n = raw <= 0.0 ? 0 : static_cast<int>(raw);
  const int clamped = std::clamp(n, min_containers, max_containers);
  AMOEBA_ENSURES_VALS(clamped >= min_containers && clamped <= max_containers,
                      clamped, min_containers, max_containers);
  return clamped;
}

}  // namespace amoeba::core
