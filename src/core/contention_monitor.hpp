// Multi-resource contention monitor — paper §VI and §IV-B step 2.
//
// The monitor keeps three contention meters running on the serverless
// platform at a low probing rate (1 QPS each, §VII-E). Every sample period
// it averages each meter's observed latencies and inverts the profiled
// calibration curve (Fig. 8) to obtain the platform's current pressure on
// that resource. Consumers (the deployment controller) subscribe to the
// per-period sample callback.
//
// The meters are real functions on the platform: their probing cost is the
// honest 1.1% / 0.5% / 0.6% CPU overhead the paper reports, and it is
// visible to every co-located microservice.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>

#include "core/profile_data.hpp"
#include "obs/observer.hpp"
#include "serverless/platform.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "workload/load_generator.hpp"
#include "workload/meters.hpp"

namespace amoeba::core {

struct ContentionMonitorConfig {
  double probe_qps = workload::kMeterProbeQps;
  double sample_period_s = 5.0;  ///< choose via min_sample_period (Eq. 8)
  /// EWMA factor applied to each new pressure estimate (1 = no smoothing).
  /// A few probes per period make raw estimates jittery; unsmoothed jitter
  /// near a switch margin makes the controller flap.
  double smoothing = 0.5;
  /// How long a pressure estimate may be held without a fresh meter sample
  /// before it is considered stale and reset to the calibration floor.
  /// 0 = hold the last-known estimate forever (the pre-fault behaviour).
  /// Only matters when meter samples can be lost (fault injection).
  double pressure_max_age_s = 0.0;

  void validate() const;
};

class ContentionMonitor {
 public:
  ContentionMonitor(sim::Engine& engine,
                    serverless::ServerlessPlatform& platform,
                    MeterCalibration calibration, ContentionMonitorConfig cfg,
                    sim::Rng rng);
  ~ContentionMonitor();
  ContentionMonitor(const ContentionMonitor&) = delete;
  ContentionMonitor& operator=(const ContentionMonitor&) = delete;

  /// Register meter functions (if absent) and begin probing + sampling.
  void start();
  void stop();

  /// Latest per-resource pressure estimates (kCpuDim/kIoDim/kNetDim).
  /// Before the first sample completes, returns the calibration floors.
  [[nodiscard]] std::array<double, kNumResources> pressures() const;

  /// Latest per-meter mean latencies (diagnostics; nullopt until sampled).
  [[nodiscard]] std::array<std::optional<double>, kNumResources>
  meter_latencies() const;

  /// Invoked at the end of every sample period, after pressures update.
  void set_on_sample(std::function<void()> fn) { on_sample_ = std::move(fn); }

  /// Attach the observability sink (non-owning; nullptr disables). Each
  /// period then updates per-resource pressure gauges and counter tracks.
  void set_observer(obs::Observer* observer) { obs_ = observer; }

  /// Attach the fault injector (non-owning; nullptr disables). Probe
  /// completions may then be dropped before recording or contaminated with
  /// an outlier latency multiplier.
  void set_fault_injector(sim::FaultInjector* faults) noexcept {
    faults_ = faults;
  }

  /// Seconds since each pressure estimate was last refreshed by a real
  /// meter sample (0 right after a fresh sample).
  [[nodiscard]] std::array<double, kNumResources> pressure_ages() const;
  /// Times a stale estimate aged past pressure_max_age_s and was reset.
  [[nodiscard]] std::uint64_t stale_resets() const noexcept {
    return stale_resets_;
  }

  [[nodiscard]] double sample_period() const noexcept {
    return cfg_.sample_period_s;
  }
  [[nodiscard]] std::uint64_t samples_taken() const noexcept {
    return samples_taken_;
  }

  /// CPU cost of the probing itself, as a fraction of the node's cores —
  /// the §VII-E overhead figure.
  [[nodiscard]] std::array<double, kNumResources> probe_cpu_overhead() const;

 private:
  void on_period();
  /// Pressure the probing itself puts on dimension `dim` (subtracted from
  /// the inversion: the calibration curve's axis includes the probe).
  [[nodiscard]] double probe_self_pressure(std::size_t dim) const;

  sim::Engine& engine_;
  serverless::ServerlessPlatform& platform_;
  MeterCalibration calibration_;
  ContentionMonitorConfig cfg_;
  sim::Rng rng_;

  struct MeterState {
    workload::FunctionProfile profile;
    std::unique_ptr<workload::ConstantLoadGenerator> generator;
    double latency_sum = 0.0;
    std::uint64_t latency_count = 0;
    std::optional<double> last_mean_latency;
    double pressure = 0.0;
    sim::Time last_update = 0.0;  ///< when `pressure` last saw real data
  };
  std::array<MeterState, kNumResources> meters_;
  bool running_ = false;
  sim::EventId period_event_ = sim::kNoEvent;
  std::uint64_t samples_taken_ = 0;
  std::uint64_t stale_resets_ = 0;
  std::function<void()> on_sample_;
  obs::Observer* obs_ = nullptr;
  sim::FaultInjector* faults_ = nullptr;
};

}  // namespace amoeba::core
