// Cross-platform resource accounting (paper Figs. 11, 13, 14).
//
// IaaS usage is what the maintainer *rents*: the VM's full core/memory
// allocation for every second it is up, busy or not. Serverless usage is
// what the queries *consume*: actual compute core-seconds plus the
// container-memory reservation integral (busy, idle-warm, and prewarmed
// containers all hold memory — the honest cost of the prewarm strategy).
#pragma once

#include <string>
#include <vector>

#include "iaas/platform.hpp"
#include "serverless/platform.hpp"

namespace amoeba::core {

struct ServiceUsage {
  double cpu_core_seconds = 0.0;
  double memory_mb_seconds = 0.0;

  ServiceUsage& operator+=(const ServiceUsage& o) {
    cpu_core_seconds += o.cpu_core_seconds;
    memory_mb_seconds += o.memory_mb_seconds;
    return *this;
  }
};

class ResourceAccountant {
 public:
  ResourceAccountant(serverless::ServerlessPlatform& serverless,
                     iaas::IaasPlatform& iaas)
      : serverless_(serverless), iaas_(iaas) {}

  /// Combined usage of a service across both platforms through `now`.
  [[nodiscard]] ServiceUsage usage(const std::string& service, double now);

  /// The IaaS-rented share only (what pure Nameko would cost).
  [[nodiscard]] ServiceUsage iaas_usage(const std::string& service,
                                        double now);

  /// The serverless share only.
  [[nodiscard]] ServiceUsage serverless_usage(const std::string& service,
                                              double now);

 private:
  serverless::ServerlessPlatform& serverless_;
  iaas::IaasPlatform& iaas_;
};

/// Shared-pool admission arbitration: split a node-wide container budget
/// across services asking for `asks[i]` containers each (their per-service
/// n_max if they ran alone). If the asks fit, everyone gets what they asked
/// for. Otherwise every service is guaranteed 1 container (no starvation)
/// and the remainder is divided proportionally to the excess ask
/// (ask_i - 1) by the largest-remainder method, ties broken by lower index
/// — fully deterministic. Grants never exceed asks; with budget >=
/// #services the grants sum to min(budget, sum(asks)).
std::vector<int> split_container_budget(const std::vector<int>& asks,
                                        int budget);

}  // namespace amoeba::core
