// End-to-end QoS budget decomposition over a call graph.
//
// The paper's Eq. 1-5 discriminant consumes a *per-stage* latency target,
// but a product's SLO is end-to-end: the user's query crosses every stage
// on its critical path. The decomposer splits the end-to-end target T
// into per-stage budgets
//
//   b_k = T * w_k / S_k,
//
// where w_k is the stage's latency weight (an EWMA of its observed p95,
// seeded from its profiled solo latency) and S_k is the heaviest root-to-
// leaf path sum passing through stage k. Guarantees, for any positive
// weights (proved in DESIGN.md §14 and pinned by the property suite):
//
//   * along every root-to-leaf path P:  sum_{k in P} b_k <= T,
//     with equality exactly on the critical path;
//   * b_k > 0;
//   * b_k is non-decreasing in w_k and non-increasing in every other w_j —
//     a slow downstream stage automatically tightens upstream budgets, so
//     their discriminants can trigger compensating platform switches.
//
// The naive baseline (`equal_split`) gives every stage T / max_path_stages
// regardless of how unevenly the latency actually distributes.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "workload/call_graph.hpp"

namespace amoeba::core {

struct BudgetDecomposerConfig {
  /// EWMA smoothing of observed per-stage p95 into the stage weight:
  /// w <- (1 - alpha) * w + alpha * p95. 1 = no smoothing.
  double ewma_alpha = 0.3;
  /// Floor for a stage weight (seconds): keeps budgets strictly positive
  /// even when a stage reports (near-)zero latency.
  double min_weight_s = 1e-4;

  void validate() const;
};

class BudgetDecomposer {
 public:
  /// `initial_weights[k]` seeds stage k's weight (canonical index order);
  /// typically the stage's ideal solo latency. All weights must be > 0
  /// (values below min_weight_s are floored).
  BudgetDecomposer(workload::CallGraph graph, double e2e_target_s,
                   const std::vector<double>& initial_weights,
                   BudgetDecomposerConfig cfg = {});

  /// Fold one observed per-stage p95 into the stage's weight (EWMA).
  void observe(int stage, double observed_p95_s);

  /// Current per-stage budgets b_k = T * w_k / S_k (canonical order).
  [[nodiscard]] std::vector<double> budgets() const;

  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] double target() const noexcept { return target_s_; }
  [[nodiscard]] const workload::CallGraph& graph() const noexcept {
    return graph_;
  }

  /// The fixed-equal-budget baseline: every stage gets
  /// T / max_path_stages, independent of where the latency actually is.
  [[nodiscard]] static std::vector<double> equal_split(
      const workload::CallGraph& graph, double e2e_target_s);

 private:
  workload::CallGraph graph_;
  double target_s_ = 0.0;
  BudgetDecomposerConfig cfg_;
  std::vector<double> weights_;
};

}  // namespace amoeba::core
