// Sliding-window arrival-rate estimation.
//
// The deployment controller needs the current load V_u (queries/second) of
// each microservice. `RateEstimator` counts arrivals in a sliding window;
// `EwmaRate` provides a smoother exponentially-weighted alternative used
// for burst detection.
#pragma once

#include <deque>

#include "common/assert.hpp"

namespace amoeba::stats {

class RateEstimator {
 public:
  explicit RateEstimator(double window_seconds);

  /// Record an arrival at time `t` (non-decreasing).
  void record(double t);

  /// Arrivals per second over the trailing window ending at `now`.
  [[nodiscard]] double rate(double now) const;

  /// Number of arrivals currently inside the window ending at `now`.
  [[nodiscard]] std::size_t count_in_window(double now) const;

  [[nodiscard]] double window() const noexcept { return window_; }

 private:
  void evict(double now) const;
  double window_;
  mutable std::deque<double> arrivals_;
};

/// Exponentially-weighted moving average of an irregularly-sampled rate.
class EwmaRate {
 public:
  /// `half_life` — seconds for an observation's weight to halve.
  explicit EwmaRate(double half_life);

  void observe(double t, double value);
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }

 private:
  double half_life_;
  double value_ = 0.0;
  double last_t_ = 0.0;
  bool primed_ = false;
};

}  // namespace amoeba::stats
