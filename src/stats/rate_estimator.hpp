// Sliding-window arrival-rate estimation.
//
// The deployment controller needs the current load V_u (queries/second) of
// each microservice. `RateEstimator` counts arrivals in a sliding window;
// `EwmaRate` provides a smoother exponentially-weighted alternative used
// for burst detection.
#pragma once

#include <deque>

#include "common/assert.hpp"

namespace amoeba::stats {

class RateEstimator {
 public:
  explicit RateEstimator(double window_seconds);

  /// Record an arrival at time `t` (non-decreasing).
  void record(double t);

  /// Arrivals per second over the trailing window ending at `now`.
  ///
  /// Warm-up: before one full window has elapsed since the first recorded
  /// arrival, the divisor is the elapsed time `now - first_observation`
  /// rather than the window length — otherwise a steady λ reads as
  /// λ·elapsed/window at scenario start, feeding the deployment controller
  /// a near-zero load for the whole first window (Eq. 1–5 discriminant
  /// skew). When `now == first_observation` the single sample spans zero
  /// elapsed time; the full window is used as the (conservative) divisor.
  [[nodiscard]] double rate(double now) const;

  /// Number of arrivals currently inside the window ending at `now`.
  [[nodiscard]] std::size_t count_in_window(double now) const;

  [[nodiscard]] double window() const noexcept { return window_; }

 private:
  void evict(double now) const;
  double window_;
  double first_observation_ = 0.0;
  bool has_observation_ = false;
  mutable std::deque<double> arrivals_;
};

/// Exponentially-weighted moving average of an irregularly-sampled rate.
class EwmaRate {
 public:
  /// `half_life` — seconds for an observation's weight to halve.
  explicit EwmaRate(double half_life);

  void observe(double t, double value);
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool primed() const noexcept { return primed_; }

 private:
  double half_life_;
  double value_ = 0.0;
  double last_t_ = 0.0;
  bool primed_ = false;
};

}  // namespace amoeba::stats
