// Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
// CACM 1985). O(1) memory per tracked quantile; used by the contention
// monitor, which must track tail latency over unbounded query streams.
#pragma once

#include <array>
#include <cstddef>

#include "common/assert.hpp"

namespace amoeba::stats {

class P2Quantile {
 public:
  /// `q` in (0, 1): the quantile to estimate (e.g. 0.95).
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate. Requires at least one sample; exact until the fifth
  /// sample, P²-approximate afterwards.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double quantile() const noexcept { return q_; }

  void reset();

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace amoeba::stats
