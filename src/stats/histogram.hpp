// Fixed-width and logarithmic histograms for latency distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::stats {

/// Linear-bin histogram over [lo, hi) with out-of-range under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

  /// Quantile estimate by linear interpolation within the containing bin.
  /// Requires total() > 0 and q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  void clear();

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Log-spaced histogram for values spanning several decades (latencies).
class LogHistogram {
 public:
  /// Bins span [lo, hi) with `bins_per_decade` log10-uniform bins.
  LogHistogram(double lo, double hi, std::size_t bins_per_decade);

  void add(double x, std::uint64_t weight = 1);
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }

 private:
  double log_lo_, log_hi_, inv_log_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
  double min_seen_ = 0.0, max_seen_ = 0.0;
};

}  // namespace amoeba::stats
