#include "stats/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace amoeba::stats {

double percentile_inplace(std::vector<double>& samples, double q) {
  AMOEBA_EXPECTS(!samples.empty());
  AMOEBA_EXPECTS(q >= 0.0 && q <= 1.0);
  const double h = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(lo),
                   samples.end());
  const double vlo = samples[lo];
  if (hi == lo) return vlo;
  const double vhi =
      *std::min_element(samples.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                        samples.end());
  return vlo + (h - static_cast<double>(lo)) * (vhi - vlo);
}

double percentile(std::vector<double> samples, double q) {
  return percentile_inplace(samples, q);
}

void SampleSet::ensure_sorted() const {
  if (!dirty_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  dirty_ = false;
}

double SampleSet::min() const {
  AMOEBA_EXPECTS(!empty());
  ensure_sorted();
  return sorted_.front();
}

double SampleSet::max() const {
  AMOEBA_EXPECTS(!empty());
  ensure_sorted();
  return sorted_.back();
}

double SampleSet::mean() const {
  AMOEBA_EXPECTS(!empty());
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  AMOEBA_EXPECTS(!empty());
  AMOEBA_EXPECTS(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const double h = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  if (hi == lo) return sorted_[lo];
  return sorted_[lo] + (h - static_cast<double>(lo)) * (sorted_[hi] - sorted_[lo]);
}

double SampleSet::cdf_at(double x) const {
  if (empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double SampleSet::fraction_above(double threshold) const {
  if (empty()) return 0.0;
  return 1.0 - cdf_at(threshold);
}

std::vector<std::pair<double, double>> SampleSet::cdf_curve(
    std::size_t points) const {
  AMOEBA_EXPECTS(points >= 2);
  AMOEBA_EXPECTS(!empty());
  std::vector<std::pair<double, double>> curve;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    curve.emplace_back(quantile(q), q);
  }
  return curve;
}

}  // namespace amoeba::stats
