// Welford online mean/variance, plus covariance accumulation for PCA input.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::stats {

/// Numerically-stable streaming mean and variance (Welford's algorithm).
class OnlineMoments {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; requires count() >= 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Streaming covariance matrix over d-dimensional observations.
class OnlineCovariance {
 public:
  explicit OnlineCovariance(std::size_t dims);

  void add(const std::vector<double>& x);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] std::size_t dims() const noexcept { return means_.size(); }
  [[nodiscard]] const std::vector<double>& means() const noexcept {
    return means_;
  }
  /// Unbiased covariance between dimensions i and j; requires count() >= 2.
  [[nodiscard]] double covariance(std::size_t i, std::size_t j) const;
  /// Full covariance matrix, row-major d*d.
  [[nodiscard]] std::vector<double> matrix() const;

  void reset();

 private:
  std::size_t n_ = 0;
  std::vector<double> means_;
  std::vector<double> comoments_;  // row-major d*d sums of co-deviations
};

}  // namespace amoeba::stats
