#include "stats/online_moments.hpp"

#include <cmath>

namespace amoeba::stats {

void OnlineMoments::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineMoments::mean() const {
  AMOEBA_EXPECTS(n_ > 0);
  return mean_;
}

double OnlineMoments::variance() const {
  AMOEBA_EXPECTS(n_ >= 2);
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineMoments::stddev() const { return std::sqrt(variance()); }

void OnlineMoments::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

OnlineCovariance::OnlineCovariance(std::size_t dims)
    : means_(dims, 0.0), comoments_(dims * dims, 0.0) {
  AMOEBA_EXPECTS(dims > 0);
}

void OnlineCovariance::add(const std::vector<double>& x) {
  AMOEBA_EXPECTS(x.size() == means_.size());
  ++n_;
  const auto d = means_.size();
  std::vector<double> delta_before(d);
  for (std::size_t i = 0; i < d; ++i) delta_before[i] = x[i] - means_[i];
  for (std::size_t i = 0; i < d; ++i) {
    means_[i] += delta_before[i] / static_cast<double>(n_);
  }
  for (std::size_t i = 0; i < d; ++i) {
    const double after_i = x[i] - means_[i];
    for (std::size_t j = 0; j < d; ++j) {
      comoments_[i * d + j] += delta_before[j] * after_i;
    }
  }
}

double OnlineCovariance::covariance(std::size_t i, std::size_t j) const {
  AMOEBA_EXPECTS(n_ >= 2);
  AMOEBA_EXPECTS(i < dims() && j < dims());
  return comoments_[i * dims() + j] / static_cast<double>(n_ - 1);
}

std::vector<double> OnlineCovariance::matrix() const {
  AMOEBA_EXPECTS(n_ >= 2);
  std::vector<double> out(comoments_.size());
  for (std::size_t k = 0; k < comoments_.size(); ++k) {
    out[k] = comoments_[k] / static_cast<double>(n_ - 1);
  }
  return out;
}

void OnlineCovariance::reset() {
  n_ = 0;
  std::fill(means_.begin(), means_.end(), 0.0);
  std::fill(comoments_.begin(), comoments_.end(), 0.0);
}

}  // namespace amoeba::stats
