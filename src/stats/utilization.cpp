#include "stats/utilization.hpp"

#include <algorithm>

namespace amoeba::stats {

UtilizationTracker::UtilizationTracker(double capacity, double window)
    : capacity_(capacity), window_(window) {
  AMOEBA_EXPECTS(capacity > 0.0);
  AMOEBA_EXPECTS(window > 0.0);
}

void UtilizationTracker::set(double t, double amount) {
  AMOEBA_EXPECTS(!finished_);
  AMOEBA_EXPECTS(amount >= 0.0);
  if (!started_) {
    started_ = true;
    t_start_ = cur_t_ = window_start_ = t;
    cur_amount_ = amount;
    return;
  }
  AMOEBA_EXPECTS_MSG(t >= cur_t_, "timestamps must be non-decreasing");
  advance_to(t);
  cur_amount_ = amount;
}

void UtilizationTracker::advance_to(double t) {
  // Split the elapsed interval across window boundaries.
  while (t - window_start_ >= window_) {
    const double boundary = window_start_ + window_;
    const double dt = boundary - cur_t_;
    window_integral_ += cur_amount_ * dt;
    total_integral_ += cur_amount_ * dt;
    window_avgs_.push_back(window_integral_ / (window_ * capacity_));
    window_integral_ = 0.0;
    window_start_ = boundary;
    cur_t_ = boundary;
  }
  const double dt = t - cur_t_;
  window_integral_ += cur_amount_ * dt;
  total_integral_ += cur_amount_ * dt;
  cur_t_ = t;
}

void UtilizationTracker::finish(double t_end) {
  AMOEBA_EXPECTS(started_);
  AMOEBA_EXPECTS(!finished_);
  AMOEBA_EXPECTS(t_end >= cur_t_);
  advance_to(t_end);
  // Flush a partial trailing window if it covers a meaningful fraction.
  const double partial = t_end - window_start_;
  if (partial > window_ * 0.5) {
    window_avgs_.push_back(window_integral_ / (partial * capacity_));
  }
  finished_ = true;
}

double UtilizationTracker::average() const {
  AMOEBA_EXPECTS(finished_);
  const double span = cur_t_ - t_start_;
  AMOEBA_EXPECTS(span > 0.0);
  return total_integral_ / (span * capacity_);
}

double UtilizationTracker::window_min() const {
  AMOEBA_EXPECTS(!window_avgs_.empty());
  return *std::min_element(window_avgs_.begin(), window_avgs_.end());
}

double UtilizationTracker::window_max() const {
  AMOEBA_EXPECTS(!window_avgs_.empty());
  return *std::max_element(window_avgs_.begin(), window_avgs_.end());
}

}  // namespace amoeba::stats
