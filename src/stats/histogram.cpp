#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace amoeba::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  AMOEBA_EXPECTS(hi > lo);
  AMOEBA_EXPECTS(bins > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // float edge at hi
  counts_[bin] += weight;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  AMOEBA_EXPECTS(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  AMOEBA_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  AMOEBA_EXPECTS(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::quantile(double q) const {
  AMOEBA_EXPECTS(total_ > 0);
  AMOEBA_EXPECTS(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_low(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade) {
  AMOEBA_EXPECTS(lo > 0.0 && hi > lo);
  AMOEBA_EXPECTS(bins_per_decade > 0);
  log_lo_ = std::log10(lo);
  log_hi_ = std::log10(hi);
  const double decades = log_hi_ - log_lo_;
  const auto nbins = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(bins_per_decade)));
  counts_.assign(std::max<std::size_t>(nbins, 1), 0);
  inv_log_width_ = static_cast<double>(counts_.size()) / (log_hi_ - log_lo_);
}

void LogHistogram::add(double x, std::uint64_t weight) {
  if (total_ == 0) {
    min_seen_ = max_seen_ = x;
  } else {
    min_seen_ = std::min(min_seen_, x);
    max_seen_ = std::max(max_seen_, x);
  }
  total_ += weight;
  if (x <= 0.0 || std::log10(x) < log_lo_) {
    underflow_ += weight;
    return;
  }
  const double lx = std::log10(x);
  if (lx >= log_hi_) {
    overflow_ += weight;
    return;
  }
  auto bin = static_cast<std::size_t>((lx - log_lo_) * inv_log_width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  counts_[bin] += weight;
}

double LogHistogram::quantile(double q) const {
  AMOEBA_EXPECTS(total_ > 0);
  AMOEBA_EXPECTS(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return min_seen_;
  const double log_width = (log_hi_ - log_lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      const double lx = log_lo_ + (static_cast<double>(i) + frac) * log_width;
      return std::pow(10.0, lx);
    }
    cum = next;
  }
  return max_seen_;
}

}  // namespace amoeba::stats
