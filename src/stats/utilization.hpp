// Time-weighted utilization tracking.
//
// `UtilizationTracker` integrates a piecewise-constant "amount in use"
// signal (busy cores, held memory) and reports windowed min/avg/max
// utilization — exactly the statistic behind the paper's Fig. 2.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::stats {

class UtilizationTracker {
 public:
  /// `capacity` normalizes utilization to [0, 1]; `window` is the bucket
  /// length (seconds) for windowed min/avg/max statistics.
  UtilizationTracker(double capacity, double window);

  /// Record that the in-use amount changed to `amount` at time `t`
  /// (timestamps non-decreasing).
  void set(double t, double amount);

  /// Close the signal at time `t_end` (extends the last value).
  void finish(double t_end);

  /// Overall time-weighted average utilization in [first set, finish].
  [[nodiscard]] double average() const;

  /// Per-window average utilizations (window length given at construction).
  [[nodiscard]] const std::vector<double>& windows() const noexcept {
    return window_avgs_;
  }

  /// Min / max over *window averages* (as the paper's Fig. 2 reports the
  /// lowest/highest utilization over the day, not instantaneous spikes).
  [[nodiscard]] double window_min() const;
  [[nodiscard]] double window_max() const;

  [[nodiscard]] double capacity() const noexcept { return capacity_; }

 private:
  void advance_to(double t);

  double capacity_;
  double window_;
  bool started_ = false;
  bool finished_ = false;
  double t_start_ = 0.0;
  double cur_t_ = 0.0;
  double cur_amount_ = 0.0;
  double total_integral_ = 0.0;
  double window_integral_ = 0.0;
  double window_start_ = 0.0;
  std::vector<double> window_avgs_;
};

}  // namespace amoeba::stats
