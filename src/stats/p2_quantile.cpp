#include "stats/p2_quantile.hpp"

#include <algorithm>
#include <cmath>

namespace amoeba::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  AMOEBA_EXPECTS(q > 0.0 && q < 1.0);
  reset();
}

void P2Quantile::reset() {
  count_ = 0;
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
  heights_.fill(0.0);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }

  // Locate the cell containing x, extending extremes if needed.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Adjust interior markers with piecewise-parabolic (P²) interpolation.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      // Parabolic prediction.
      const double np = positions_[i] + sign;
      const double hp =
          heights_[i] +
          sign / (positions_[i + 1] - positions_[i - 1]) *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < hp && hp < heights_[i + 1]) {
        heights_[i] = hp;
      } else {
        // Fall back to linear interpolation toward the chosen neighbour.
        const std::size_t j = sign > 0 ? i + 1 : i - 1;
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  AMOEBA_EXPECTS(count_ > 0);
  if (count_ < 5) {
    // Exact small-sample quantile: linear interpolation between the order
    // statistics of the sorted prefix at rank h = q(n-1) (the "R-7"
    // definition SampleSet::quantile also uses) — NOT nearest-rank, so the
    // estimator is continuous in q and agrees with the exact reference the
    // property tests compare against.
    std::array<double, 5> tmp = heights_;
    std::sort(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(count_));
    const double h = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = static_cast<std::size_t>(std::ceil(h));
    if (lo == hi) return tmp[lo];
    return tmp[lo] + (h - static_cast<double>(lo)) * (tmp[hi] - tmp[lo]);
  }
  return heights_[2];
}

}  // namespace amoeba::stats
