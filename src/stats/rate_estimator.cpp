#include "stats/rate_estimator.hpp"

#include <cmath>

namespace amoeba::stats {

RateEstimator::RateEstimator(double window_seconds) : window_(window_seconds) {
  AMOEBA_EXPECTS(window_seconds > 0.0);
}

void RateEstimator::record(double t) {
  AMOEBA_EXPECTS_MSG(arrivals_.empty() || t >= arrivals_.back(),
                     "arrival timestamps must be non-decreasing");
  arrivals_.push_back(t);
}

void RateEstimator::evict(double now) const {
  while (!arrivals_.empty() && arrivals_.front() <= now - window_) {
    arrivals_.pop_front();
  }
}

double RateEstimator::rate(double now) const {
  evict(now);
  return static_cast<double>(arrivals_.size()) / window_;
}

std::size_t RateEstimator::count_in_window(double now) const {
  evict(now);
  return arrivals_.size();
}

EwmaRate::EwmaRate(double half_life) : half_life_(half_life) {
  AMOEBA_EXPECTS(half_life > 0.0);
}

void EwmaRate::observe(double t, double value) {
  if (!primed_) {
    value_ = value;
    last_t_ = t;
    primed_ = true;
    return;
  }
  AMOEBA_EXPECTS(t >= last_t_);
  const double alpha = 1.0 - std::exp2(-(t - last_t_) / half_life_);
  value_ += alpha * (value - value_);
  last_t_ = t;
}

}  // namespace amoeba::stats
