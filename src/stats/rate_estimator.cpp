#include "stats/rate_estimator.hpp"

#include <cmath>

namespace amoeba::stats {

RateEstimator::RateEstimator(double window_seconds) : window_(window_seconds) {
  AMOEBA_EXPECTS(window_seconds > 0.0);
}

void RateEstimator::record(double t) {
  AMOEBA_EXPECTS_MSG(arrivals_.empty() || t >= arrivals_.back(),
                     "arrival timestamps must be non-decreasing");
  if (!has_observation_) {
    first_observation_ = t;
    has_observation_ = true;
  }
  arrivals_.push_back(t);
}

// Eviction boundary: the window is the half-open interval (now - W, now].
// An arrival exactly W seconds old (front() == now - W) has aged out; one
// exactly at `now` is in. `<=` implements that — keeping it documents the
// choice rather than drifting between `<` and `<=` by accident. The same
// convention makes rate() at t = first + W count arrivals over (first,
// first + W], exactly one full window after warm-up ends.
void RateEstimator::evict(double now) const {
  while (!arrivals_.empty() && arrivals_.front() <= now - window_) {
    arrivals_.pop_front();
  }
}

double RateEstimator::rate(double now) const {
  evict(now);
  double divisor = window_;
  if (has_observation_) {
    const double elapsed = now - first_observation_;
    if (elapsed > 0.0 && elapsed < window_) divisor = elapsed;
  }
  return static_cast<double>(arrivals_.size()) / divisor;
}

std::size_t RateEstimator::count_in_window(double now) const {
  evict(now);
  return arrivals_.size();
}

EwmaRate::EwmaRate(double half_life) : half_life_(half_life) {
  AMOEBA_EXPECTS(half_life > 0.0);
}

void EwmaRate::observe(double t, double value) {
  if (!primed_) {
    value_ = value;
    last_t_ = t;
    primed_ = true;
    return;
  }
  AMOEBA_EXPECTS(t >= last_t_);
  const double alpha = 1.0 - std::exp2(-(t - last_t_) / half_life_);
  value_ += alpha * (value - value_);
  last_t_ = t;
}

}  // namespace amoeba::stats
