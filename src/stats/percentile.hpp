// Exact percentile / CDF utilities over collected samples.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::stats {

/// Exact q-quantile (0 <= q <= 1) of `samples` using linear interpolation
/// between closest ranks (the "R-7" rule used by numpy's default).
/// The input is copied; use `percentile_inplace` to avoid the copy.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// As `percentile` but partially sorts `samples` in place.
[[nodiscard]] double percentile_inplace(std::vector<double>& samples, double q);

/// Accumulates raw samples and answers percentile / CDF queries.
/// Memory is O(n); use `stats::P2Quantile` where a stream is too large.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); dirty_ = true; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// q in [0,1]; requires non-empty set.
  [[nodiscard]] double quantile(double q) const;

  /// Empirical CDF evaluated at `x`: fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;

  /// Fraction of samples strictly greater than `threshold` (e.g. the
  /// QoS-violation ratio when `threshold` is the latency target).
  [[nodiscard]] double fraction_above(double threshold) const;

  /// Sampled CDF curve: `points` equally-spaced quantiles from 0 to 1,
  /// returned as (value, cumulative probability) pairs. Requires points>=2.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_curve(
      std::size_t points) const;

  [[nodiscard]] const std::vector<double>& raw() const noexcept {
    return samples_;
  }

  void clear() { samples_.clear(); dirty_ = true; }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
};

}  // namespace amoeba::stats
