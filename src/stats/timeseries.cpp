#include "stats/timeseries.hpp"

#include <algorithm>

namespace amoeba::stats {

void TimeSeries::add(double t, double value) {
  AMOEBA_EXPECTS_MSG(points_.empty() || t >= points_.back().t,
                     "timestamps must be non-decreasing");
  points_.push_back({t, value});
}

double TimeSeries::value_at(double t) const {
  AMOEBA_EXPECTS(!points_.empty());
  AMOEBA_EXPECTS_MSG(t >= points_.front().t, "query before first observation");
  // Last point with timestamp <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double x, const TimePoint& p) { return x < p.t; });
  return std::prev(it)->value;
}

std::vector<TimePoint> TimeSeries::resample(double t0, double t1,
                                            std::size_t n) const {
  AMOEBA_EXPECTS(!points_.empty());
  AMOEBA_EXPECTS(t1 > t0);
  AMOEBA_EXPECTS(n >= 1);
  AMOEBA_EXPECTS(points_.front().t <= t0);
  std::vector<TimePoint> out;
  out.reserve(n);
  const double dt = (t1 - t0) / static_cast<double>(n);
  std::size_t idx = 0;
  for (std::size_t b = 0; b < n; ++b) {
    const double lo = t0 + dt * static_cast<double>(b);
    const double hi = lo + dt;
    while (idx < points_.size() && points_[idx].t < lo) ++idx;
    double sum = 0.0;
    std::size_t cnt = 0;
    std::size_t j = idx;
    while (j < points_.size() && points_[j].t < hi) {
      sum += points_[j].value;
      ++cnt;
      ++j;
    }
    const double v = cnt > 0 ? sum / static_cast<double>(cnt) : value_at(lo);
    out.push_back({lo + dt / 2.0, v});
  }
  return out;
}

double TimeSeries::time_weighted_mean(double t0, double t1) const {
  AMOEBA_EXPECTS(!points_.empty());
  AMOEBA_EXPECTS(t1 > t0);
  AMOEBA_EXPECTS(points_.front().t <= t0);
  double integral = 0.0;
  double cur_t = t0;
  double cur_v = value_at(t0);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t0,
      [](double x, const TimePoint& p) { return x < p.t; });
  for (; it != points_.end() && it->t < t1; ++it) {
    integral += cur_v * (it->t - cur_t);
    cur_t = it->t;
    cur_v = it->value;
  }
  integral += cur_v * (t1 - cur_t);
  return integral / (t1 - t0);
}

double TimeSeries::min_value() const {
  AMOEBA_EXPECTS(!points_.empty());
  return std::min_element(points_.begin(), points_.end(),
                          [](const TimePoint& a, const TimePoint& b) {
                            return a.value < b.value;
                          })
      ->value;
}

double TimeSeries::max_value() const {
  AMOEBA_EXPECTS(!points_.empty());
  return std::max_element(points_.begin(), points_.end(),
                          [](const TimePoint& a, const TimePoint& b) {
                            return a.value < b.value;
                          })
      ->value;
}

}  // namespace amoeba::stats
