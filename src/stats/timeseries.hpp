// Time-stamped series with resampling, used for the paper's timeline
// figures (Fig. 12 switch timeline, Fig. 13 usage timeline).
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::stats {

struct TimePoint {
  double t;
  double value;
};

/// Append-only series of (time, value) observations with monotonically
/// non-decreasing timestamps.
class TimeSeries {
 public:
  void add(double t, double value);

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const std::vector<TimePoint>& points() const noexcept {
    return points_;
  }

  /// Step-function value at time `t` (value of the latest point with
  /// timestamp <= t). Requires a point at or before `t`.
  [[nodiscard]] double value_at(double t) const;

  /// Resample onto a uniform grid of `n` buckets over [t0, t1], averaging
  /// points within each bucket; empty buckets carry the step value at the
  /// bucket start. Requires non-empty series with first timestamp <= t0.
  [[nodiscard]] std::vector<TimePoint> resample(double t0, double t1,
                                                std::size_t n) const;

  /// Time-weighted mean of the step function over [t0, t1].
  [[nodiscard]] double time_weighted_mean(double t0, double t1) const;

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

 private:
  std::vector<TimePoint> points_;
};

}  // namespace amoeba::stats
