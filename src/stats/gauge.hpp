// A piecewise-constant gauge with a lazily-advanced time integral.
// Used for per-service resource accounting (core-seconds, MB-seconds).
#pragma once

#include "common/assert.hpp"

namespace amoeba::stats {

class IntegratedGauge {
 public:
  IntegratedGauge() = default;
  explicit IntegratedGauge(double t0, double initial = 0.0)
      : last_t_(t0), value_(initial) {}

  /// Set the gauge to `value` at time `t` (non-decreasing).
  void set(double t, double value) {
    advance(t);
    AMOEBA_EXPECTS(value >= 0.0);
    value_ = value;
  }

  void add(double t, double delta) { set(t, value_ + delta); }

  [[nodiscard]] double value() const noexcept { return value_; }

  /// Integral of the gauge from construction through `t`.
  double integral(double t) {
    advance(t);
    return integral_;
  }

 private:
  void advance(double t) {
    AMOEBA_EXPECTS_MSG(t >= last_t_, "gauge time must be non-decreasing");
    integral_ += value_ * (t - last_t_);
    last_t_ = t;
  }

  double last_t_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
};

}  // namespace amoeba::stats
