// IaaS platform: a fleet of per-service VMs plus rented-resource accounting.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "iaas/vm.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace amoeba::iaas {

struct IaasConfig {
  double disk_bps = 2.0e9;
  double net_bps = 3.125e9;
  double vm_boot_s = 30.0;  ///< default boot time when a spec omits it

  void validate() const;
};

class IaasPlatform {
 public:
  IaasPlatform(sim::Engine& engine, IaasConfig cfg, sim::Rng rng);

  /// Create (stopped) the VM for a service. If `spec.boot_s` is negative it
  /// inherits the platform default.
  void register_service(const workload::FunctionProfile& profile, VmSpec spec);

  [[nodiscard]] bool has_service(const std::string& name) const;

  void boot(const std::string& service, std::function<void()> on_ready,
            std::function<void()> on_failed = {});

  /// Attach the fault injector to every VM, present and future (non-owning;
  /// nullptr disables injection).
  void set_fault_injector(sim::FaultInjector* faults) noexcept;
  /// See VirtualMachine::drain_and_stop for the callback contract.
  void drain_and_stop(const std::string& service,
                      std::function<void(bool completed)> on_drained = {});

  [[nodiscard]] VmState state(const std::string& service) const;
  [[nodiscard]] bool is_running(const std::string& service) const {
    return state(service) == VmState::kRunning;
  }

  void submit(const std::string& service, workload::QueryCompletionFn on_done);

  [[nodiscard]] VirtualMachine& vm(const std::string& service);
  [[nodiscard]] const VmSpec& spec(const std::string& service) const;

  /// Accounting through `now` (monotonic across boot cycles).
  double rented_core_seconds(const std::string& service, sim::Time now);
  double rented_memory_mb_seconds(const std::string& service, sim::Time now);

 private:
  sim::Engine& engine_;
  IaasConfig cfg_;
  sim::Rng rng_;
  std::map<std::string, std::unique_ptr<VirtualMachine>> vms_;
  sim::FaultInjector* faults_ = nullptr;
};

}  // namespace amoeba::iaas
