// Virtual-machine model for IaaS-based deployment (the Nameko stand-in).
//
// One VM hosts one microservice. While the VM is up it occupies its full
// rented core/memory allocation regardless of load (paper §II-B) — that is
// exactly the waste Amoeba recovers. Queries are served processor-sharing
// across the VM's cores with resident code, so the only fixed per-query
// cost is the small RPC overhead (no auth / code-load / cold-start path).
//
// The VM gets dedicated disk/NIC shares at full node rates: the paper's
// IaaS node is provisioned for peak and never the contention bottleneck.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fair_share.hpp"
#include "sim/fault_injector.hpp"
#include "sim/random.hpp"
#include "workload/function_profile.hpp"
#include "workload/query.hpp"

namespace amoeba::iaas {

struct VmSpec {
  double cores = 4.0;
  double memory_mb = 4096.0;
  double boot_s = 30.0;  ///< VM start-up time

  void validate() const;
};

enum class VmState : std::uint8_t { kStopped, kBooting, kRunning, kDraining };

[[nodiscard]] const char* to_string(VmState s) noexcept;

class VirtualMachine {
 public:
  VirtualMachine(sim::Engine& engine, workload::FunctionProfile profile,
                 VmSpec spec, sim::Rng rng, double disk_bps, double net_bps);

  /// Begin booting (from kStopped); `on_ready` fires when kRunning.
  /// Calling while kDraining cancels the drain and returns to kRunning
  /// immediately (on_ready fires via the engine at the current time).
  ///
  /// With a fault injector attached the boot may straggle (inflated boot
  /// time) or fail: a failed boot accrues rent for the full (possibly
  /// inflated) boot window, then the VM returns to kStopped and
  /// `on_failed` fires instead of `on_ready` (no-op if not provided).
  void boot(std::function<void()> on_ready,
            std::function<void()> on_failed = {});

  /// Attach the fault injector (non-owning; nullptr disables injection).
  void set_fault_injector(sim::FaultInjector* faults) noexcept {
    faults_ = faults;
  }

  /// Stop accepting work; transition to kStopped (releasing the rented
  /// resources) once in-flight queries complete. `on_drained(true)` fires
  /// when the VM reaches kStopped (immediately if nothing is in flight);
  /// `on_drained(false)` if a boot() cancels the drain first. The callback
  /// is invoked inline from existing state transitions — no extra
  /// simulation events are scheduled on its behalf.
  void drain_and_stop(std::function<void(bool completed)> on_drained = {});

  /// Serve one query; requires kRunning.
  void submit(workload::QueryCompletionFn on_done);

  [[nodiscard]] VmState state() const noexcept { return state_; }
  [[nodiscard]] int in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] const VmSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const workload::FunctionProfile& profile() const noexcept {
    return profile_;
  }

  /// Monotonic integrals for accounting/utilization (extend to `now`).
  double rented_core_seconds(sim::Time now);
  double rented_memory_mb_seconds(sim::Time now);
  /// Core-seconds of actual compute done by queries (ground-truth busy).
  double busy_core_seconds(sim::Time now);

  /// Total wall-clock seconds the VM has been up (booting+running+draining).
  double uptime_seconds(sim::Time now);

  [[nodiscard]] std::uint64_t boot_failures() const noexcept {
    return boot_failures_;
  }

 private:
  void advance_accounting(sim::Time now);
  void maybe_finish_drain();
  void notify_drained(bool completed);

  sim::Engine& engine_;
  workload::FunctionProfile profile_;
  VmSpec spec_;
  sim::Rng rng_;
  sim::FairShareResource cpu_;
  sim::FairShareResource disk_;
  sim::FairShareResource net_;
  VmState state_ = VmState::kStopped;
  std::vector<std::function<void(bool)>> drain_callbacks_;
  int in_flight_ = 0;
  std::uint64_t boot_generation_ = 0;  ///< invalidates stale boot events
  std::uint64_t next_query_id_ = 1;
  std::uint64_t boot_failures_ = 0;
  sim::FaultInjector* faults_ = nullptr;

  // Accounting: rented integrals accumulate only while the VM is up.
  sim::Time mark_ = 0.0;
  double rented_core_s_ = 0.0;
  double rented_mb_s_ = 0.0;
  double uptime_s_ = 0.0;
};

}  // namespace amoeba::iaas
