#include "iaas/vm.hpp"

#include <utility>

namespace amoeba::iaas {

void VmSpec::validate() const {
  AMOEBA_EXPECTS(cores > 0.0);
  AMOEBA_EXPECTS(memory_mb > 0.0);
  AMOEBA_EXPECTS(boot_s >= 0.0);
}

const char* to_string(VmState s) noexcept {
  switch (s) {
    case VmState::kStopped: return "stopped";
    case VmState::kBooting: return "booting";
    case VmState::kRunning: return "running";
    case VmState::kDraining: return "draining";
  }
  return "?";
}

VirtualMachine::VirtualMachine(sim::Engine& engine,
                               workload::FunctionProfile profile, VmSpec spec,
                               sim::Rng rng, double disk_bps, double net_bps)
    : engine_(engine),
      profile_(std::move(profile)),
      spec_(spec),
      rng_(rng),
      cpu_(engine, profile_.name + "_vm_cpu", spec.cores),
      disk_(engine, profile_.name + "_vm_disk", disk_bps),
      net_(engine, profile_.name + "_vm_net", net_bps) {
  profile_.validate();
  spec_.validate();
  mark_ = engine_.now();
}

void VirtualMachine::advance_accounting(sim::Time now) {
  const double dt = now - mark_;
  AMOEBA_INVARIANT_VALS(dt >= 0.0, now, mark_);
  if (state_ != VmState::kStopped) {
    rented_core_s_ += spec_.cores * dt;
    rented_mb_s_ += spec_.memory_mb * dt;
    uptime_s_ += dt;
  }
  mark_ = now;
  // Rented-resource integrals only ever grow while the VM is up.
  AMOEBA_INVARIANT_VALS(rented_core_s_ >= 0.0 && rented_mb_s_ >= 0.0 &&
                            uptime_s_ >= 0.0,
                        rented_core_s_, rented_mb_s_, uptime_s_);
}

void VirtualMachine::boot(std::function<void()> on_ready,
                          std::function<void()> on_failed) {
  AMOEBA_EXPECTS(on_ready != nullptr);
  advance_accounting(engine_.now());
  switch (state_) {
    case VmState::kRunning:
    case VmState::kBooting:
      AMOEBA_EXPECTS_MSG(false, "boot() while already up");
      return;
    case VmState::kDraining:
      // Cancel the drain: the VM never went down.
      state_ = VmState::kRunning;
      notify_drained(false);
      engine_.schedule_in(0.0, std::move(on_ready));
      return;
    case VmState::kStopped:
      break;
  }
  state_ = VmState::kBooting;
  const std::uint64_t generation = ++boot_generation_;
  double boot_s = spec_.boot_s;
  bool boot_fails = false;
  if (faults_ != nullptr) {
    const sim::FaultInjector::BootFault fault = faults_->next_vm_boot();
    boot_fails = fault.fail;
    boot_s *= fault.delay_multiplier;
  }
  engine_.schedule_in(
      boot_s, [this, generation, boot_fails, cb = std::move(on_ready),
               fb = std::move(on_failed)] {
        if (boot_generation_ != generation) return;
        if (state_ != VmState::kBooting) return;
        advance_accounting(engine_.now());
        if (boot_fails) {
          // Rent accrued for the whole failed boot window; release now.
          state_ = VmState::kStopped;
          ++boot_failures_;
          if (fb) fb();
          return;
        }
        state_ = VmState::kRunning;
        cb();
      });
}

void VirtualMachine::drain_and_stop(
    std::function<void(bool completed)> on_drained) {
  advance_accounting(engine_.now());
  switch (state_) {
    case VmState::kStopped:
      if (on_drained) on_drained(true);
      return;
    case VmState::kDraining:
      // Join the drain already in progress.
      if (on_drained) drain_callbacks_.push_back(std::move(on_drained));
      return;
    case VmState::kBooting:
      // Abort the boot outright; nothing is in flight.
      ++boot_generation_;
      state_ = VmState::kStopped;
      if (on_drained) on_drained(true);
      return;
    case VmState::kRunning:
      state_ = VmState::kDraining;
      if (on_drained) drain_callbacks_.push_back(std::move(on_drained));
      maybe_finish_drain();
      return;
  }
}

void VirtualMachine::maybe_finish_drain() {
  if (state_ == VmState::kDraining && in_flight_ == 0) {
    advance_accounting(engine_.now());
    state_ = VmState::kStopped;
    notify_drained(true);
  }
}

void VirtualMachine::notify_drained(bool completed) {
  // Move out first: a callback may start a new drain on this VM.
  std::vector<std::function<void(bool)>> cbs = std::move(drain_callbacks_);
  drain_callbacks_.clear();
  for (auto& cb : cbs) cb(completed);
}

void VirtualMachine::submit(workload::QueryCompletionFn on_done) {
  AMOEBA_EXPECTS(on_done != nullptr);
  AMOEBA_EXPECTS_MSG(state_ == VmState::kRunning,
                     "submit() requires a running VM");
  ++in_flight_;

  auto rec = std::make_shared<workload::QueryRecord>();
  rec->id = next_query_id_++;
  rec->function = profile_.name;
  rec->arrival = engine_.now();
  rec->breakdown.overhead_s = profile_.rpc_overhead_s;

  const double cpu_work =
      profile_.exec.cpu_seconds > 0.0
          ? rng_.lognormal_mean_cv(profile_.exec.cpu_seconds, profile_.cpu_cv)
          : 0.0;
  rec->cpu_work_done = cpu_work;

  auto finish = [this, rec, done = std::move(on_done)]() mutable {
    rec->completion = engine_.now();
    AMOEBA_INVARIANT_MSG(in_flight_ > 0, "completion without an in-flight query");
    --in_flight_;
    done(*rec);
    maybe_finish_drain();
  };

  auto net_phase = [this, rec, bytes = profile_.exec.net_bytes,
                    next = std::move(finish)]() mutable {
    if (bytes <= 0.0) {
      next();
      return;
    }
    const double t0 = engine_.now();
    net_.open(bytes, 0.0, [this, rec, t0, next = std::move(next)]() mutable {
      rec->breakdown.exec_s += engine_.now() - t0;
      next();
    });
  };

  auto io_phase = [this, rec, bytes = profile_.exec.io_bytes,
                   next = std::move(net_phase)]() mutable {
    if (bytes <= 0.0) {
      next();
      return;
    }
    const double t0 = engine_.now();
    disk_.open(bytes, 0.0, [this, rec, t0, next = std::move(next)]() mutable {
      rec->breakdown.exec_s += engine_.now() - t0;
      next();
    });
  };

  auto cpu_phase = [this, rec, cpu_work, next = std::move(io_phase)]() mutable {
    if (cpu_work <= 0.0) {
      next();
      return;
    }
    const double t0 = engine_.now();
    // Each request uses at most one core (a service worker is a thread).
    cpu_.open(cpu_work, 1.0, [this, rec, t0, next = std::move(next)]() mutable {
      rec->breakdown.exec_s += engine_.now() - t0;
      next();
    });
  };

  if (profile_.rpc_overhead_s > 0.0) {
    engine_.schedule_in(profile_.rpc_overhead_s, std::move(cpu_phase));
  } else {
    cpu_phase();
  }
}

double VirtualMachine::rented_core_seconds(sim::Time now) {
  advance_accounting(now);
  return rented_core_s_;
}

double VirtualMachine::rented_memory_mb_seconds(sim::Time now) {
  advance_accounting(now);
  return rented_mb_s_;
}

double VirtualMachine::busy_core_seconds(sim::Time now) {
  return cpu_.busy_capacity_seconds(now);
}

double VirtualMachine::uptime_seconds(sim::Time now) {
  advance_accounting(now);
  return uptime_s_;
}

}  // namespace amoeba::iaas
