#include "iaas/platform.hpp"

#include <utility>

#include "obs/profiler.hpp"

namespace amoeba::iaas {

void IaasConfig::validate() const {
  AMOEBA_EXPECTS(disk_bps > 0.0);
  AMOEBA_EXPECTS(net_bps > 0.0);
  AMOEBA_EXPECTS(vm_boot_s >= 0.0);
}

IaasPlatform::IaasPlatform(sim::Engine& engine, IaasConfig cfg, sim::Rng rng)
    : engine_(engine), cfg_(cfg), rng_(rng) {
  cfg_.validate();
}

void IaasPlatform::register_service(const workload::FunctionProfile& profile,
                                    VmSpec spec) {
  AMOEBA_PROF_SCOPE(kIaasPool);
  AMOEBA_EXPECTS_MSG(!vms_.contains(profile.name),
                     "service already registered");
  if (spec.boot_s < 0.0) spec.boot_s = cfg_.vm_boot_s;
  auto [it, inserted] = vms_.emplace(
      profile.name, std::make_unique<VirtualMachine>(
                        engine_, profile, spec, rng_.fork(vms_.size() + 101),
                        cfg_.disk_bps, cfg_.net_bps));
  it->second->set_fault_injector(faults_);
}

void IaasPlatform::set_fault_injector(sim::FaultInjector* faults) noexcept {
  faults_ = faults;
  for (auto& [name, machine] : vms_) machine->set_fault_injector(faults);
}

bool IaasPlatform::has_service(const std::string& name) const {
  return vms_.contains(name);
}

VirtualMachine& IaasPlatform::vm(const std::string& service) {
  auto it = vms_.find(service);
  AMOEBA_EXPECTS_MSG(it != vms_.end(), "unknown service: " + service);
  return *it->second;
}

const VmSpec& IaasPlatform::spec(const std::string& service) const {
  auto it = vms_.find(service);
  AMOEBA_EXPECTS_MSG(it != vms_.end(), "unknown service: " + service);
  return it->second->spec();
}

void IaasPlatform::boot(const std::string& service,
                        std::function<void()> on_ready,
                        std::function<void()> on_failed) {
  AMOEBA_PROF_SCOPE(kIaasPool);
  vm(service).boot(std::move(on_ready), std::move(on_failed));
}

void IaasPlatform::drain_and_stop(
    const std::string& service,
    std::function<void(bool completed)> on_drained) {
  AMOEBA_PROF_SCOPE(kIaasPool);
  vm(service).drain_and_stop(std::move(on_drained));
}

VmState IaasPlatform::state(const std::string& service) const {
  auto it = vms_.find(service);
  AMOEBA_EXPECTS_MSG(it != vms_.end(), "unknown service: " + service);
  return it->second->state();
}

void IaasPlatform::submit(const std::string& service,
                          workload::QueryCompletionFn on_done) {
  AMOEBA_PROF_SCOPE(kIaasPool);
  vm(service).submit(std::move(on_done));
}

double IaasPlatform::rented_core_seconds(const std::string& service,
                                         sim::Time now) {
  return vm(service).rented_core_seconds(now);
}

double IaasPlatform::rented_memory_mb_seconds(const std::string& service,
                                              sim::Time now) {
  return vm(service).rented_memory_mb_seconds(now);
}

}  // namespace amoeba::iaas
