// Annotated synchronization primitives for the PDES-bound concurrency
// surface.
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// attributes, so code locking them correctly still trips Clang's
// -Wthread-safety analysis. These thin wrappers add the capability
// annotations (common/thread_annotations.hpp) with zero behavioural
// change; off Clang they compile to the std primitives exactly.
//
// Conventions enforced by tools/audit's annotation checker:
//   * library code under src/ holds common::Mutex, never a bare
//     std::mutex / std::condition_variable member (this file is the one
//     blessed home of the raw primitives);
//   * every class holding a Mutex declares at least one
//     AMOEBA_GUARDED_BY(that_mutex) member (or escapes with
//     `// audit: unguarded-ok <reason>`).
//
// CondVar deliberately has no predicate-taking wait: a predicate lambda
// cannot carry AMOEBA_REQUIRES, so its guarded reads would be invisible
// to the analysis. Callers write the wait loop explicitly —
//
//   UniqueLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);
//
// — which keeps every guarded access inside an analysed scope.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace amoeba::common {

/// std::mutex with Clang capability annotations.
class AMOEBA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AMOEBA_ACQUIRE() { m_.lock(); }
  void unlock() AMOEBA_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() AMOEBA_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  friend class UniqueLock;
  std::mutex m_;
};

/// Scoped lock (std::lock_guard equivalent); not unlockable mid-scope.
class AMOEBA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AMOEBA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AMOEBA_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped lock supporting manual unlock()/lock() (std::unique_lock
/// equivalent) and CondVar waits. The destructor releases only if the
/// lock is still held.
class AMOEBA_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) AMOEBA_ACQUIRE(mu) : lk_(mu.m_) {}
  ~UniqueLock() AMOEBA_RELEASE() = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// Re-acquire after an unlock() (worker-loop pattern).
  void lock() AMOEBA_ACQUIRE() { lk_.lock(); }
  void unlock() AMOEBA_RELEASE() { lk_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable over a UniqueLock. `wait` atomically releases
/// and re-acquires the lock; the caller must hold it (see the file
/// comment for the explicit-loop wait idiom).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lk) { cv_.wait(lk.lk_); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace amoeba::common
