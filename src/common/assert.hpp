// Contract-checking primitives used across the Amoeba library.
//
// Following the C++ Core Guidelines (I.6/E.12), preconditions are checked
// with AMOEBA_EXPECTS and internal invariants with AMOEBA_ASSERT. Both are
// always on (the library is a research artifact where silent corruption is
// worse than the branch cost); violations throw `amoeba::ContractError` so
// tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace amoeba {

/// Thrown when a precondition or invariant is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& msg);
}  // namespace detail

}  // namespace amoeba

#define AMOEBA_EXPECTS(cond)                                                \
  do {                                                                      \
    if (!(cond))                                                            \
      ::amoeba::detail::contract_failure("precondition", #cond, __FILE__,   \
                                         __LINE__, "");                     \
  } while (false)

#define AMOEBA_EXPECTS_MSG(cond, msg)                                       \
  do {                                                                      \
    if (!(cond))                                                            \
      ::amoeba::detail::contract_failure("precondition", #cond, __FILE__,   \
                                         __LINE__, (msg));                  \
  } while (false)

#define AMOEBA_ASSERT(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::amoeba::detail::contract_failure("invariant", #cond, __FILE__,      \
                                         __LINE__, "");                     \
  } while (false)

#define AMOEBA_ASSERT_MSG(cond, msg)                                        \
  do {                                                                      \
    if (!(cond))                                                            \
      ::amoeba::detail::contract_failure("invariant", #cond, __FILE__,      \
                                         __LINE__, (msg));                  \
  } while (false)
