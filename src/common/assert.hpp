// Contract-checking primitives used across the Amoeba library.
//
// Following the C++ Core Guidelines (I.6/E.12), preconditions are checked
// with AMOEBA_EXPECTS, postconditions with AMOEBA_ENSURES, and internal
// invariants with AMOEBA_INVARIANT (AMOEBA_ASSERT is a legacy alias).
//
// Checked/unchecked switch: contracts compile to real checks when
// AMOEBA_CONTRACT_CHECKS is nonzero (the default; the CMake option
// AMOEBA_CONTRACT_CHECKS drives it). When disabled they compile to an
// unevaluated-operand no-op, so the condition still has to parse and the
// variables it names stay "used".
//
// Failure handling: a violation builds a ContractViolation (kind,
// stringified expression, file:line, optional message, optional captured
// values) and hands it to the installed global handler. The default
// handler prints the violation to stderr, flushes, and calls abort() — a
// contract may fire on a noexcept path (destructors, simulator callbacks),
// where throwing would escalate to std::terminate with no diagnostics.
// Tests that want to assert on failures install throwing_contract_handler,
// which throws amoeba::ContractError; death-tests reinstall
// abort_contract_handler inside the dying statement.
//
// Value capture: AMOEBA_*_VALS(cond, a, b, ...) record the named values in
// the failure report, e.g.
//
//   AMOEBA_EXPECTS_VALS(rho < 1.0, rho, n, mu);
//   // -> precondition violated: `rho < 1.0` at queueing.cpp:57
//   //    [rho, n, mu = 1.25, 4, 0.5]
//
// The capture expressions are evaluated only on failure.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

#ifndef AMOEBA_CONTRACT_CHECKS
#define AMOEBA_CONTRACT_CHECKS 1
#endif

namespace amoeba {

/// Thrown by throwing_contract_handler when a contract is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

/// Everything known about one contract violation, as handed to the
/// failure handler.
struct ContractViolation {
  const char* kind;      ///< "precondition" | "postcondition" | "invariant"
  const char* expr;      ///< stringified condition
  const char* file;      ///< __FILE__ of the check
  int line;              ///< __LINE__ of the check
  std::string message;   ///< optional user message ("" if none)
  std::string captured;  ///< optional "names = values" capture ("" if none)

  /// One-line human-readable description (what the default handler prints
  /// and throwing_contract_handler uses as the exception message).
  [[nodiscard]] std::string describe() const;
};

/// Global failure handler. Handlers should not return; if one does, the
/// library falls back to abort_contract_handler.
using ContractHandler = void (*)(const ContractViolation&);

/// Install a new global failure handler; returns the previous one.
/// Passing nullptr restores the default (abort_contract_handler).
ContractHandler set_contract_handler(ContractHandler handler) noexcept;

/// The currently installed failure handler.
[[nodiscard]] ContractHandler contract_handler() noexcept;

/// Default handler: print describe() to stderr, flush, abort(). Safe on
/// noexcept paths; what death-tests match against.
[[noreturn]] void abort_contract_handler(const ContractViolation& v);

/// Test handler: throws ContractError(describe()).
[[noreturn]] void throwing_contract_handler(const ContractViolation& v);

namespace detail {

[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   std::string message, std::string captured);

inline void capture_values(std::ostream&) {}

template <class T, class... Rest>
void capture_values(std::ostream& os, const T& value, const Rest&... rest) {
  os << value;
  if constexpr (sizeof...(rest) > 0) {
    os << ", ";
    capture_values(os, rest...);
  }
}

/// Render "a, b = 1, 2" from the stringified name list and the values.
template <class... Ts>
std::string capture(const char* names, const Ts&... values) {
  std::ostringstream os;
  os << names << " = ";
  capture_values(os, values...);
  return os.str();
}

}  // namespace detail
}  // namespace amoeba

/// Build a "names = values" capture string; evaluate lazily in contracts.
#define AMOEBA_CAPTURE(...) ::amoeba::detail::capture(#__VA_ARGS__, __VA_ARGS__)

#if AMOEBA_CONTRACT_CHECKS
#define AMOEBA_CONTRACT_CHECK_(kind, cond, msgexpr, capexpr)              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::amoeba::detail::contract_failure(kind, #cond, __FILE__, __LINE__, \
                                         (msgexpr), (capexpr));           \
  } while (false)
#else
// Unevaluated operand: the condition must still compile, but no code runs.
#define AMOEBA_CONTRACT_CHECK_(kind, cond, msgexpr, capexpr) \
  static_cast<void>(sizeof((cond) ? 1 : 0))
#endif

#define AMOEBA_EXPECTS(cond) \
  AMOEBA_CONTRACT_CHECK_("precondition", cond, ::std::string(), ::std::string())
#define AMOEBA_EXPECTS_MSG(cond, msg) \
  AMOEBA_CONTRACT_CHECK_("precondition", cond, (msg), ::std::string())
#define AMOEBA_EXPECTS_VALS(cond, ...)             \
  AMOEBA_CONTRACT_CHECK_("precondition", cond, ::std::string(), \
                         AMOEBA_CAPTURE(__VA_ARGS__))

#define AMOEBA_ENSURES(cond) \
  AMOEBA_CONTRACT_CHECK_("postcondition", cond, ::std::string(), ::std::string())
#define AMOEBA_ENSURES_MSG(cond, msg) \
  AMOEBA_CONTRACT_CHECK_("postcondition", cond, (msg), ::std::string())
#define AMOEBA_ENSURES_VALS(cond, ...)              \
  AMOEBA_CONTRACT_CHECK_("postcondition", cond, ::std::string(), \
                         AMOEBA_CAPTURE(__VA_ARGS__))

#define AMOEBA_INVARIANT(cond) \
  AMOEBA_CONTRACT_CHECK_("invariant", cond, ::std::string(), ::std::string())
#define AMOEBA_INVARIANT_MSG(cond, msg) \
  AMOEBA_CONTRACT_CHECK_("invariant", cond, (msg), ::std::string())
#define AMOEBA_INVARIANT_VALS(cond, ...)         \
  AMOEBA_CONTRACT_CHECK_("invariant", cond, ::std::string(), \
                         AMOEBA_CAPTURE(__VA_ARGS__))

// Legacy aliases (pre-contract-library spellings).
#define AMOEBA_ASSERT(cond) AMOEBA_INVARIANT(cond)
#define AMOEBA_ASSERT_MSG(cond, msg) AMOEBA_INVARIANT_MSG(cond, msg)
