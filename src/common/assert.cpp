#include "common/assert.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace amoeba {

namespace {
std::atomic<ContractHandler> g_handler{&abort_contract_handler};
}  // namespace

std::string ContractViolation::describe() const {
  std::ostringstream os;
  os << kind << " violated: `" << expr << "` at " << file << ':' << line;
  if (!captured.empty()) os << " [" << captured << ']';
  if (!message.empty()) os << " — " << message;
  return os.str();
}

ContractHandler set_contract_handler(ContractHandler handler) noexcept {
  if (handler == nullptr) handler = &abort_contract_handler;
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

ContractHandler contract_handler() noexcept {
  return g_handler.load(std::memory_order_acquire);
}

void abort_contract_handler(const ContractViolation& v) {
  const std::string text = v.describe();
  std::fprintf(stderr, "amoeba: %s\n", text.c_str());
  // abort() does not run stream destructors; flush so the diagnostic is
  // never lost (death-tests match on it).
  std::fflush(stderr);
  std::abort();
}

void throwing_contract_handler(const ContractViolation& v) {
  throw ContractError(v.describe());
}

namespace detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line, std::string message, std::string captured) {
  const ContractViolation v{kind,           expr,
                            file,           line,
                            std::move(message), std::move(captured)};
  contract_handler()(v);
  // A handler that returns leaves the violated state live; never continue.
  abort_contract_handler(v);
}

}  // namespace detail
}  // namespace amoeba
