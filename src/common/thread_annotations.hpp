// Clang thread-safety-analysis attribute macros (no-ops off Clang).
//
// These wrap the `-Wthread-safety` capability lattice so lock discipline is
// machine-checked at compile time on the Clang CI leg (-Werror=thread-safety)
// while GCC builds see plain code. The annotated primitives that use them
// live in common/mutex.hpp; tools/audit's annotation checker requires every
// class holding a mutex to declare at least one AMOEBA_GUARDED_BY member.
//
// Naming follows the Clang documentation's capability vocabulary:
//   AMOEBA_CAPABILITY(name)    - type acts as a capability ("mutex")
//   AMOEBA_SCOPED_CAPABILITY   - RAII type that acquires in ctor/releases in dtor
//   AMOEBA_GUARDED_BY(mu)      - data member readable/writable only under mu
//   AMOEBA_PT_GUARDED_BY(mu)   - pointee guarded by mu (pointer itself is not)
//   AMOEBA_REQUIRES(mu)        - caller must hold mu across the call
//   AMOEBA_ACQUIRE(mu...)      - function acquires mu and does not release it
//   AMOEBA_RELEASE(mu...)      - function releases mu
//   AMOEBA_TRY_ACQUIRE(b, mu)  - acquires mu iff it returns b
//   AMOEBA_EXCLUDES(mu)        - caller must NOT hold mu (non-reentrancy)
//   AMOEBA_ASSERT_CAPABILITY   - runtime assertion that mu is held
//   AMOEBA_RETURN_CAPABILITY   - function returns a reference to mu
//   AMOEBA_NO_THREAD_SAFETY_ANALYSIS - opt a definition out (wrapper internals)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AMOEBA_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif

#ifndef AMOEBA_THREAD_ANNOTATION_
#define AMOEBA_THREAD_ANNOTATION_(x)  // no-op: not Clang, or no TSA support
#endif

#define AMOEBA_CAPABILITY(x) AMOEBA_THREAD_ANNOTATION_(capability(x))
#define AMOEBA_SCOPED_CAPABILITY AMOEBA_THREAD_ANNOTATION_(scoped_lockable)
#define AMOEBA_GUARDED_BY(x) AMOEBA_THREAD_ANNOTATION_(guarded_by(x))
#define AMOEBA_PT_GUARDED_BY(x) AMOEBA_THREAD_ANNOTATION_(pt_guarded_by(x))
#define AMOEBA_ACQUIRED_BEFORE(...) \
  AMOEBA_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define AMOEBA_ACQUIRED_AFTER(...) \
  AMOEBA_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define AMOEBA_REQUIRES(...) \
  AMOEBA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define AMOEBA_REQUIRES_SHARED(...) \
  AMOEBA_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define AMOEBA_ACQUIRE(...) \
  AMOEBA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define AMOEBA_ACQUIRE_SHARED(...) \
  AMOEBA_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define AMOEBA_RELEASE(...) \
  AMOEBA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define AMOEBA_RELEASE_SHARED(...) \
  AMOEBA_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define AMOEBA_TRY_ACQUIRE(...) \
  AMOEBA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define AMOEBA_EXCLUDES(...) \
  AMOEBA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define AMOEBA_ASSERT_CAPABILITY(x) \
  AMOEBA_THREAD_ANNOTATION_(assert_capability(x))
#define AMOEBA_RETURN_CAPABILITY(x) \
  AMOEBA_THREAD_ANNOTATION_(lock_returned(x))
#define AMOEBA_NO_THREAD_SAFETY_ANALYSIS \
  AMOEBA_THREAD_ANNOTATION_(no_thread_safety_analysis)
