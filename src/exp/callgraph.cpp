#include "exp/callgraph.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "workload/meters.hpp"

namespace amoeba::exp {

namespace {

/// Same auto-scaling rule as run_cluster: N monitors' combined probing
/// stays a small, N-independent fraction of the node.
double effective_probe_qps(double requested, std::size_t n_stages) {
  if (requested > 0.0) return requested;
  return std::min(workload::kMeterProbeQps,
                  4.0 / static_cast<double>(n_stages));
}

std::string hash_hex(std::uint64_t h) {
  std::ostringstream os;
  os << "0x" << std::hex << h;
  return os.str();
}

/// One user query in flight across the DAG.
struct InFlightQuery {
  double arrival = 0.0;             ///< root injection time
  int remaining_stages = 0;         ///< stages not yet finished
  std::vector<int> waiting_parents; ///< per stage, parents still running
};

}  // namespace

const char* to_string(BudgetMode m) noexcept {
  switch (m) {
    case BudgetMode::kNaiveEqual: return "naive_equal";
    case BudgetMode::kEndToEndAware: return "e2e_aware";
  }
  return "?";
}

const CallGraphStageResult* CallGraphRunResult::find(
    const std::string& name) const {
  for (const auto& s : stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

CallGraphRunResult run_callgraph(
    const workload::CallGraph& graph,
    const std::vector<core::ServiceArtifacts>& artifacts,
    const ClusterConfig& cluster, const core::MeterCalibration& calibration,
    const CallGraphRunOptions& opt) {
  const auto n = static_cast<std::size_t>(graph.size());
  AMOEBA_EXPECTS_MSG(artifacts.size() == n,
                     "need one ServiceArtifacts per stage, canonical order");
  AMOEBA_EXPECTS_VALS(opt.e2e_qos_target_s > 0.0, opt.e2e_qos_target_s);
  AMOEBA_EXPECTS(opt.period_s > 0.0 && opt.duration_days > 0.0);
  AMOEBA_EXPECTS_MSG(opt.warmup_s >= cluster.iaas.vm_boot_s + 3.0,
                     "warmup must cover the VM boot time");
  AMOEBA_EXPECTS(opt.node_container_budget > 0);
  AMOEBA_EXPECTS(opt.meter_reserve_containers >= 3);
  AMOEBA_EXPECTS(opt.renorm_period_s > 0.0 && opt.renorm_min_samples >= 1);
  AMOEBA_EXPECTS(opt.feasibility_floor_factor >= 1.0);

  obs::ProfilerAttach prof_attach(opt.profiler);
  AMOEBA_PROF_SCOPE(kHarness);
  sim::Engine engine;
  if (opt.profiler != nullptr) engine.set_profiler(opt.profiler);
  sim::Rng rng(opt.seed);
  serverless::ServerlessPlatform sp(engine, cluster.serverless, rng.fork(1));
  iaas::IaasPlatform ip(engine, cluster.iaas, rng.fork(2));

  std::unique_ptr<sim::FaultInjector> faults;
  if (opt.faults.any()) {
    faults = std::make_unique<sim::FaultInjector>(opt.faults, rng.fork(4));
    sp.set_fault_injector(faults.get());
    ip.set_fault_injector(faults.get());
  }

  // Meter reserve first (same rule as run_cluster): probing can never be
  // starved by stage prewarms, and stages split what remains.
  const int per_meter = std::max(1, opt.meter_reserve_containers / 3);
  for (const auto kind : workload::kAllMeters) {
    sp.register_function(workload::meter_profile(kind), per_meter);
  }
  const int stage_budget = opt.node_container_budget - 3 * per_meter;
  AMOEBA_EXPECTS_MSG(stage_budget >= static_cast<int>(n),
                     "container budget cannot cover every stage");

  // --- Budget decomposition -------------------------------------------
  // Every query crosses every stage, so each stage's provisioned peak is
  // the root peak.
  const double root_peak =
      opt.root_peak_qps > 0.0
          ? opt.root_peak_qps
          : graph.stage(graph.roots().front()).profile.peak_load_qps;
  AMOEBA_EXPECTS_VALS(root_peak > 0.0, root_peak);
  const double t_e2e = opt.e2e_qos_target_s;

  // Initial weights: the content-determined ideal solo IaaS latency (what
  // the decomposer would converge to on an uncontended node).
  std::vector<double> w0(n, 0.0);
  std::vector<double> floors(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const auto& p = graph.stage(static_cast<int>(k)).profile;
    const double ideal =
        p.ideal_iaas_latency(cluster.iaas.disk_bps, cluster.iaas.net_bps);
    w0[k] = std::max(ideal, opt.decomposer.min_weight_s);
    floors[k] = opt.feasibility_floor_factor * ideal;
    AMOEBA_EXPECTS_MSG(floors[k] < t_e2e,
                       "stage cannot meet the end-to-end target alone: " +
                           graph.service_name(static_cast<int>(k)));
  }
  core::BudgetDecomposer decomposer(graph, t_e2e, w0, opt.decomposer);
  const std::vector<double> raw0 =
      opt.budget_mode == BudgetMode::kEndToEndAware
          ? decomposer.budgets()
          : core::BudgetDecomposer::equal_split(graph, t_e2e);
  std::vector<double> applied(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    applied[k] = std::clamp(raw0[k], floors[k], t_e2e);
  }
  const std::vector<double> initial_budgets = applied;

  // --- Stage registration + admission arbitration ----------------------
  std::vector<workload::FunctionProfile> stage_profiles;
  std::vector<iaas::VmSpec> vm_specs;
  std::vector<int> asks;
  stage_profiles.reserve(n);
  vm_specs.reserve(n);
  asks.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    workload::FunctionProfile p = graph.stage(static_cast<int>(k)).profile;
    p.name = graph.service_name(static_cast<int>(k));
    p.peak_load_qps = root_peak;
    p.qos_target_s = applied[k];
    vm_specs.push_back(just_enough_vm(p, cluster));
    asks.push_back(std::max(
        1, static_cast<int>(std::ceil(vm_specs.back().cores *
                                      opt.n_max_core_factor))));
    stage_profiles.push_back(std::move(p));
  }
  const std::vector<int> grants =
      core::split_container_budget(asks, stage_budget);

  const double probe_qps = effective_probe_qps(opt.monitor_probe_qps, n);
  const double duration = opt.warmup_s + opt.period_s * opt.duration_days;

  // One AmoebaRuntime per stage, same rng fork discipline as run_cluster.
  std::vector<std::unique_ptr<core::AmoebaRuntime>> runtimes;
  runtimes.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    core::AmoebaConfig cfg =
        opt.amoeba.has_value()
            ? *opt.amoeba
            : default_amoeba_config(DeploySystem::kAmoeba, -1.0);
    if (!opt.amoeba.has_value()) {
      // Stages are live co-tenants of one node: same tighter margins as
      // the cluster default.
      cfg.controller.to_serverless_margin = 0.50;
      cfg.controller.to_iaas_margin = 0.70;
    }
    switch (graph.stage(static_cast<int>(k)).pin) {
      case workload::StagePin::kManaged:
        break;
      case workload::StagePin::kIaasOnly:
        // Votes can never reach an astronomically large hysteresis
        // threshold, so the stage stays on its just-enough VM for good.
        cfg.controller.hysteresis_ticks = 1 << 20;
        break;
      case workload::StagePin::kServerlessOnly:
        // Bias, not a hard pin: leave for FaaS at the first calibrated
        // opportunity and disable every pull back to IaaS.
        cfg.controller.to_serverless_margin = 1.0;
        cfg.controller.to_iaas_margin = 1.5;
        cfg.controller.observed_violation_fraction = 1e9;
        cfg.controller.co_tenant_check = false;
        break;
    }
    cfg.monitor.probe_qps = probe_qps;
    cfg.stage_id = static_cast<int>(k);
    if (opt.observer != nullptr) cfg.observer = opt.observer;
    cfg.fault_injector = faults.get();
    auto runtime = std::make_unique<core::AmoebaRuntime>(
        engine, sp, ip, calibration, cfg, rng.fork(1000 + k));
    runtime->add_service(stage_profiles[k], vm_specs[k], artifacts[k],
                         grants[k]);
    runtime->start();
    runtimes.push_back(std::move(runtime));
  }

  // --- Query propagation ----------------------------------------------
  // AND-join dataflow: a query enters every root at injection and enters
  // stage k once all parents(k) finished it. The ledger counts every
  // entry/exit so conservation is checkable after the run.
  struct Flow {
    Flow(const workload::CallGraph& g,
         std::vector<std::unique_ptr<core::AmoebaRuntime>>& rts,
         double warmup, obs::Observer* obs)
        : graph(g), runtimes(rts), warmup_s(warmup), observer(obs) {}

    const workload::CallGraph& graph;
    std::vector<std::unique_ptr<core::AmoebaRuntime>>& runtimes;
    double warmup_s;
    obs::Observer* observer;
    std::uint64_t next_id = 0;
    std::map<std::uint64_t, InFlightQuery> live;
    std::vector<std::uint64_t> submitted;
    std::vector<std::uint64_t> finished;
    std::vector<stats::SampleSet> stage_latencies;  ///< post-warmup
    std::vector<stats::SampleSet> renorm_window;    ///< since last renorm
    stats::SampleSet e2e_latencies;                 ///< post-warmup
    std::uint64_t completed = 0;

    [[nodiscard]] bool trace_on() const {
      return observer != nullptr && observer->trace_on();
    }

    void enter(std::uint64_t id, int s) {
      ++submitted[static_cast<std::size_t>(s)];
      runtimes[static_cast<std::size_t>(s)]->submit(
          graph.service_name(s),
          [this, id, s](const workload::QueryRecord& rec) {
            on_stage_done(id, s, rec);
          });
    }

    void inject(double now) {
      const std::uint64_t id = next_id++;
      InFlightQuery q;
      q.arrival = now;
      q.remaining_stages = graph.size();
      q.waiting_parents.resize(static_cast<std::size_t>(graph.size()));
      for (int k = 0; k < graph.size(); ++k) {
        q.waiting_parents[static_cast<std::size_t>(k)] =
            static_cast<int>(graph.parents(k).size());
      }
      live.emplace(id, std::move(q));
      if (trace_on()) {
        obs::Tracer& tr = observer->tracer();
        tr.async_begin(tr.track("callgraph/e2e"), "e2e", id, now, "query");
      }
      for (const int r : graph.roots()) enter(id, r);
    }

    void on_stage_done(std::uint64_t id, int s,
                       const workload::QueryRecord& rec) {
      const auto it = live.find(id);
      AMOEBA_INVARIANT_MSG(it != live.end(), "stage completion for a query "
                                             "that is not in flight");
      InFlightQuery& q = it->second;
      const auto si = static_cast<std::size_t>(s);
      ++finished[si];
      if (q.arrival >= warmup_s) stage_latencies[si].add(rec.latency());
      renorm_window[si].add(rec.latency());
      for (const int c : graph.children(s)) {
        const auto ci = static_cast<std::size_t>(c);
        AMOEBA_INVARIANT(q.waiting_parents[ci] > 0);
        if (--q.waiting_parents[ci] == 0) enter(id, c);
      }
      if (--q.remaining_stages == 0) {
        const double e2e = rec.completion - q.arrival;
        ++completed;
        if (q.arrival >= warmup_s) e2e_latencies.add(e2e);
        if (trace_on()) {
          obs::Tracer& tr = observer->tracer();
          tr.async_end(tr.track("callgraph/e2e"), "e2e", id, rec.completion,
                       "query", {obs::TraceArg::of("latency_s", e2e)});
        }
        live.erase(it);
      }
    }
  };
  Flow flow(graph, runtimes, opt.warmup_s, opt.observer);
  flow.submitted.assign(n, 0);
  flow.finished.assign(n, 0);
  flow.stage_latencies.resize(n);
  flow.renorm_window.resize(n);

  // --- Budget renormalization tick (aware mode only) -------------------
  std::vector<double> final_budgets = initial_budgets;
  sim::EventId renorm_event = sim::kNoEvent;
  std::function<void()> renorm = [&] {
    for (std::size_t k = 0; k < n; ++k) {
      if (flow.renorm_window[k].size() >=
          static_cast<std::size_t>(opt.renorm_min_samples)) {
        decomposer.observe(static_cast<int>(k),
                           flow.renorm_window[k].quantile(0.95));
        flow.renorm_window[k].clear();
      }
    }
    const std::vector<double> b = decomposer.budgets();
    for (std::size_t k = 0; k < n; ++k) {
      const double target = std::clamp(b[k], floors[k], t_e2e);
      if (target != final_budgets[k]) {
        runtimes[k]->set_qos_target(graph.service_name(static_cast<int>(k)),
                                    target);
        final_budgets[k] = target;
      }
    }
    renorm_event = engine.schedule_in(opt.renorm_period_s, renorm);
  };
  if (opt.budget_mode == BudgetMode::kEndToEndAware) {
    renorm_event = engine.schedule_in(opt.renorm_period_s, renorm);
  }

  // --- Load: one Poisson stream at the DAG roots -----------------------
  workload::DiurnalTraceConfig trace_cfg = diurnal_for(
      stage_profiles[static_cast<std::size_t>(graph.roots().front())],
      opt.period_s);
  trace_cfg.peak_qps = root_peak;
  workload::DiurnalTrace trace(trace_cfg, opt.seed ^ 0x51u);
  workload::PoissonLoadGenerator generator(
      engine, rng.fork(2000), [&trace](double now) { return trace.rate(now); },
      trace.max_rate(), [&flow, &engine] { flow.inject(engine.now()); });
  const double load_start = std::min(cluster.iaas.vm_boot_s + 2.0,
                                     std::max(opt.warmup_s - 1.0, 0.0));
  engine.schedule(load_start, [&generator] { generator.start(); });

  engine.run_until(duration);

  generator.stop();
  if (renorm_event != sim::kNoEvent) engine.cancel(renorm_event);
  for (auto& rt : runtimes) rt->stop();
  if (flow.trace_on()) {
    // Close the spans of queries cut off mid-flight — bookkeeping only,
    // after the last simulated event.
    obs::Tracer& tr = opt.observer->tracer();
    for (const auto& [id, q] : flow.live) {
      tr.async_end(tr.track("callgraph/e2e"), "e2e", id, engine.now(),
                   "query", {obs::TraceArg::of("outcome", "unfinished")});
    }
  }

  // --- Collection ------------------------------------------------------
  CallGraphRunResult result;
  result.budget_mode = opt.budget_mode;
  result.e2e_qos_target_s = t_e2e;
  result.duration_s = duration;
  result.e2e_latencies = flow.e2e_latencies;
  result.root_injected = flow.next_id;
  result.queries_completed = flow.completed;
  result.queries_unfinished = flow.live.size();
  result.stages.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::string& name = graph.service_name(static_cast<int>(k));
    CallGraphStageResult st;
    st.stage = static_cast<int>(k);
    st.name = name;
    st.label = graph.stage(static_cast<int>(k)).label;
    st.pin = graph.stage(static_cast<int>(k)).pin;
    st.initial_budget_s = initial_budgets[k];
    st.final_budget_s = final_budgets[k];
    st.latencies = flow.stage_latencies[k];
    st.submitted = flow.submitted[k];
    st.finished = flow.finished[k];
    st.usage = runtimes[k]->accountant().usage(name, duration);
    for (const auto& sw : runtimes[k]->switch_events()) {
      if (sw.service == name) ++st.switches;
    }
    st.switch_aborts = runtimes[k]->execution_engine().switch_aborts();
    st.switch_retries = runtimes[k]->execution_engine().switch_retries();
    st.prewarm_denied = sp.stats(name).prewarm_denied;
    st.n_max_asked = asks[k];
    st.n_max_granted = grants[k];
    result.stages_usage += st.usage;
    result.prewarm_denied_total += st.prewarm_denied;
    result.stages.push_back(std::move(st));
  }
  for (const auto kind : workload::kAllMeters) {
    const std::string meter = workload::meter_profile(kind).name;
    result.meter_usage.cpu_core_seconds += sp.cpu_core_seconds(meter);
    result.meter_usage.memory_mb_seconds +=
        sp.memory_mb_seconds(meter, duration);
  }
  for (const auto& fn : sp.function_names()) {
    result.pool_memory_mb_seconds += sp.memory_mb_seconds(fn, duration);
  }
  result.peak_pool_containers = sp.pool().peak_total_containers();
  result.peak_pool_memory_mb = sp.pool().peak_memory_in_use_mb();
  result.pool_evictions = sp.pool().evictions();
  if (faults) result.fault_counters = faults->counters();
  result.trace_hash = engine.trace_hash();
  result.events_executed = engine.executed();

  AMOEBA_ENSURES_VALS(result.root_injected ==
                          result.queries_completed + result.queries_unfinished,
                      result.root_injected, result.queries_completed,
                      result.queries_unfinished);
  return result;
}

std::string callgraph_summary_json(const CallGraphRunResult& r) {
  std::string out = "{";
  out += "\"n_stages\": " +
         obs::json_number(static_cast<double>(r.stages.size()));
  out += ", \"budget_mode\": \"" + std::string(to_string(r.budget_mode)) +
         "\"";
  out += ", \"e2e_qos_target_s\": " + obs::json_number(r.e2e_qos_target_s);
  out += ", \"e2e_p95_s\": " + obs::json_number(r.e2e_p95());
  out += ", \"e2e_violation_fraction\": " +
         obs::json_number(r.e2e_violation_fraction());
  out += ", \"duration_s\": " + obs::json_number(r.duration_s);
  out += ", \"trace_hash\": \"" + hash_hex(r.trace_hash) + "\"";
  out += ", \"root_injected\": " +
         obs::json_number(static_cast<double>(r.root_injected));
  out += ", \"queries_completed\": " +
         obs::json_number(static_cast<double>(r.queries_completed));
  out += ", \"queries_unfinished\": " +
         obs::json_number(static_cast<double>(r.queries_unfinished));
  out += ", \"total_core_hours\": " + obs::json_number(r.total_core_hours());
  out += ", \"total_memory_gb_hours\": " +
         obs::json_number(r.total_memory_gb_hours());
  out += ", \"peak_pool_containers\": " +
         obs::json_number(static_cast<double>(r.peak_pool_containers));
  out += ", \"prewarm_denied\": " +
         obs::json_number(static_cast<double>(r.prewarm_denied_total));
  out += ", \"stages\": [";
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    const CallGraphStageResult& s = r.stages[i];
    if (i > 0) out += ", ";
    out += "{\"stage\": " + obs::json_number(static_cast<double>(s.stage));
    out += ", \"name\": \"" + obs::json_escape(s.name) + "\"";
    out += ", \"label\": \"" + obs::json_escape(s.label) + "\"";
    out += ", \"pin\": \"" + std::string(workload::to_string(s.pin)) + "\"";
    out += ", \"initial_budget_s\": " + obs::json_number(s.initial_budget_s);
    out += ", \"final_budget_s\": " + obs::json_number(s.final_budget_s);
    out += ", \"submitted\": " +
           obs::json_number(static_cast<double>(s.submitted));
    out += ", \"finished\": " +
           obs::json_number(static_cast<double>(s.finished));
    out += ", \"p95_s\": " + obs::json_number(s.p95());
    out += ", \"switches\": " +
           obs::json_number(static_cast<double>(s.switches));
    out += ", \"switch_aborts\": " +
           obs::json_number(static_cast<double>(s.switch_aborts));
    out += ", \"switch_retries\": " +
           obs::json_number(static_cast<double>(s.switch_retries));
    out += ", \"prewarm_denied\": " +
           obs::json_number(static_cast<double>(s.prewarm_denied));
    out += ", \"n_max_asked\": " +
           obs::json_number(static_cast<double>(s.n_max_asked));
    out += ", \"n_max_granted\": " +
           obs::json_number(static_cast<double>(s.n_max_granted));
    out += ", \"core_seconds\": " + obs::json_number(s.usage.cpu_core_seconds);
    out += ", \"memory_mb_seconds\": " +
           obs::json_number(s.usage.memory_mb_seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

Table callgraph_table(const CallGraphRunResult& r) {
  Table t({"stage", "label", "pin", "budget0_s", "budget_s", "queries",
           "p95_s", "switches", "core_h"});
  for (const auto& s : r.stages) {
    t.add_row({std::to_string(s.stage) + ":" + s.name, s.label,
               workload::to_string(s.pin), fmt_fixed(s.initial_budget_s, 3),
               fmt_fixed(s.final_budget_s, 3), std::to_string(s.finished),
               fmt_fixed(s.p95(), 3), std::to_string(s.switches),
               fmt_fixed(s.usage.cpu_core_seconds / 3600.0, 2)});
  }
  t.add_row({"E2E", to_string(r.budget_mode), "-",
             fmt_fixed(r.e2e_qos_target_s, 3),
             fmt_fixed(r.e2e_qos_target_s, 3),
             std::to_string(r.queries_completed), fmt_fixed(r.e2e_p95(), 3),
             "-", fmt_fixed(r.total_core_hours(), 2)});
  return t;
}

}  // namespace amoeba::exp
