// Offline profiling harness — paper §IV-B step 1.
//
// Produces, by running short simulations against the same platform physics
// the experiments use:
//   * MeterCalibration — each meter's latency-vs-pressure curve (Fig. 8);
//   * ServiceArtifacts — per-microservice solo latency L0, the three
//     latency surfaces L_i(P, V_u) (Fig. 9), and the service's pressure
//     footprint per unit load (measured through the meters, not read from
//     ground truth).
//
// Everything here only observes latencies — the same information a real
// operator could collect on a staging cluster.
#pragma once

#include <vector>

#include "core/profile_data.hpp"
#include "exp/scenario.hpp"
#include "workload/meters.hpp"

namespace amoeba::exp {

struct ProfilingConfig {
  /// Pressure grid for meter curves and surface rows (fraction of the
  /// resource's capacity demanded).
  std::vector<double> pressure_grid = {0.02, 0.2, 0.4, 0.6, 0.75, 0.9};
  /// Load grid for surface columns, as fractions of the service's peak.
  std::vector<double> load_fractions = {0.05, 0.2, 0.4, 0.6, 0.8, 1.0};
  double cell_duration_s = 30.0;  ///< simulated seconds per grid cell
  double warmup_s = 5.0;
  double tail = 0.95;             ///< surface statistic (r-ile)
  double solo_probe_qps = 2.0;    ///< load used to measure L0
  unsigned threads = 0;           ///< 0 = hardware concurrency

  void validate() const;
};

/// Fig. 8: run each meter alone at loads chosen to hit the pressure grid,
/// recording its mean service latency.
[[nodiscard]] core::MeterCalibration profile_meters(
    const ClusterConfig& cluster, const ProfilingConfig& cfg);

/// Fig. 9 + L0 + footprint for one microservice.
[[nodiscard]] core::ServiceArtifacts profile_service(
    const workload::FunctionProfile& profile, const ClusterConfig& cluster,
    const core::MeterCalibration& calibration, const ProfilingConfig& cfg);

/// Convenience: the stressor load (QPS) that puts `pressure` (fraction of
/// capacity) on the resource `kind` stresses.
[[nodiscard]] double stressor_load_for_pressure(workload::StressKind kind,
                                                double pressure,
                                                const ClusterConfig& cluster);

/// Single profiling cell: co-locate `subject` at `subject_qps` with an
/// optional stressor, return the subject's r-ile *service* latency (queue
/// and cold start excluded). Exposed for tests and the Fig. 9 bench.
struct CellResult {
  double tail_latency_s = 0.0;
  double mean_latency_s = 0.0;
  std::uint64_t samples = 0;
};

[[nodiscard]] CellResult run_profile_cell(
    const workload::FunctionProfile& subject, double subject_qps,
    const workload::FunctionProfile* stressor, double stressor_qps,
    const ClusterConfig& cluster, const ProfilingConfig& cfg,
    std::uint64_t seed);

}  // namespace amoeba::exp
