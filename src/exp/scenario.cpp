#include "exp/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/queueing.hpp"
#include "obs/profiler.hpp"

namespace amoeba::exp {

ClusterConfig default_cluster() {
  ClusterConfig c;
  c.serverless.cores = 40.0;
  c.serverless.pool_memory_mb = 32768.0;  // 128 containers at 256 MB
  c.serverless.disk_bps = 2.0e9;
  c.serverless.net_bps = 3.125e9;
  c.serverless.container_core_cap = 1.0;
  c.serverless.cpu_interference = 0.35;  // shared-LLC/membw degradation
  c.serverless.io_efficiency = 0.85;     // overlay-fs / container IO tax
  c.serverless.cold_start_mean_s = 1.0;
  c.serverless.cold_start_cv = 0.25;
  // The experiment day is compressed (600 s ≈ 24 h), so the keep-alive is
  // compressed with it: 10 s here ≈ a 24-minute OpenWhisk-style TTL. Cold
  // starts deliberately stay at real-world magnitude (1 s) — they are the
  // adversary Eq. 7/8 defend against.
  c.serverless.keep_alive_s = 10.0;
  c.iaas.disk_bps = 2.0e9;
  c.iaas.net_bps = 3.125e9;
  c.iaas.vm_boot_s = 30.0;
  c.seed = 42;
  return c;
}

iaas::VmSpec just_enough_vm(const workload::FunctionProfile& profile,
                            const ClusterConfig& cluster, double r,
                            double headroom) {
  AMOEBA_EXPECTS(headroom >= 1.0);
  const double service_s =
      profile.ideal_iaas_latency(cluster.iaas.disk_bps, cluster.iaas.net_bps);
  const double mu = 1.0 / service_s;
  const auto servers = core::queueing::min_servers(
      profile.peak_load_qps, mu, profile.qos_target_s, r);
  AMOEBA_EXPECTS_MSG(servers.has_value(),
                     "no VM size can meet the QoS target: " + profile.name);
  const int cores =
      static_cast<int>(std::ceil(*servers * headroom));
  iaas::VmSpec spec;
  spec.cores = cores;
  spec.memory_mb = 1024.0 + profile.memory_mb * cores;
  spec.boot_s = cluster.iaas.vm_boot_s;
  return spec;
}

workload::DiurnalTraceConfig diurnal_for(
    const workload::FunctionProfile& profile, double period_s, double phase) {
  workload::DiurnalTraceConfig cfg;
  cfg.period_s = period_s;
  cfg.peak_qps = profile.peak_load_qps;
  cfg.trough_fraction = 0.25;
  cfg.peak_width = 0.055;
  cfg.phase = phase;
  cfg.noise_cv = 0.05;
  cfg.noise_interval_s = std::max(10.0, period_s / 200.0);
  return cfg;
}

workload::QueryCompletionFn RunRecorder::observer(const std::string& service) {
  return [this, service](const workload::QueryRecord& rec) {
    if (rec.arrival < warmup_s_) return;
    PerService& ps = per_service_[service];
    ps.latencies.add(rec.latency());
    ps.records.push_back(rec);
  };
}

const stats::SampleSet& RunRecorder::latencies(
    const std::string& service) const {
  auto it = per_service_.find(service);
  AMOEBA_EXPECTS_MSG(it != per_service_.end(),
                     "no records for service: " + service);
  return it->second.latencies;
}

const std::vector<workload::QueryRecord>& RunRecorder::records(
    const std::string& service) const {
  auto it = per_service_.find(service);
  AMOEBA_EXPECTS_MSG(it != per_service_.end(),
                     "no records for service: " + service);
  return it->second.records;
}

std::uint64_t RunRecorder::count(const std::string& service) const {
  auto it = per_service_.find(service);
  return it == per_service_.end() ? 0 : it->second.latencies.size();
}

const char* to_string(DeploySystem s) noexcept {
  switch (s) {
    case DeploySystem::kAmoeba: return "Amoeba";
    case DeploySystem::kAmoebaNoM: return "Amoeba-NoM";
    case DeploySystem::kAmoebaNoP: return "Amoeba-NoP";
    case DeploySystem::kNameko: return "Nameko";
    case DeploySystem::kOpenWhisk: return "OpenWhisk";
  }
  return "?";
}

std::vector<workload::FunctionProfile> background_suite(
    double peak_fraction) {
  return {workload::as_background(workload::make_float(), peak_fraction),
          workload::as_background(workload::make_dd(), peak_fraction),
          workload::as_background(workload::make_cloud_stor(), peak_fraction)};
}

core::AmoebaConfig default_amoeba_config(DeploySystem system,
                                         double timeline_period_s) {
  core::AmoebaConfig cfg;
  cfg.controller.qos_percentile = 0.95;
  // The margins absorb what the discriminant cannot see: the load keeps
  // rising through the hysteresis window and the 30 s VM boot, so the
  // switch back to IaaS must fire well before λ_max is reached.
  cfg.controller.to_serverless_margin = 0.60;
  cfg.controller.to_iaas_margin = 0.80;
  cfg.controller.hysteresis_ticks = 2;
  cfg.engine.mirror_fraction = 0.08;
  cfg.engine.prewarm.headroom = 1.25;
  cfg.monitor.sample_period_s = 5.0;
  cfg.estimator.min_samples = 24;
  // Cover 2 hysteresis ticks + the 30 s VM boot.
  cfg.load_anticipation_s = 40.0;
  cfg.timeline_period_s = timeline_period_s;
  if (system == DeploySystem::kAmoebaNoM) cfg.estimator.enable_pca = false;
  if (system == DeploySystem::kAmoebaNoP) cfg.engine.enable_prewarm = false;
  return cfg;
}

ManagedRunResult run_managed(const workload::FunctionProfile& foreground,
                             DeploySystem system, const ClusterConfig& cluster,
                             const core::MeterCalibration& calibration,
                             const core::ServiceArtifacts& artifacts,
                             const ManagedRunOptions& opt) {
  AMOEBA_EXPECTS(opt.period_s > 0.0 && opt.duration_days > 0.0);
  // The foreground load starts after the VM boot window, inside warmup, so
  // no query can arrive before its platform exists.
  AMOEBA_EXPECTS_MSG(opt.warmup_s >= cluster.iaas.vm_boot_s + 3.0,
                     "warmup must cover the VM boot time");
  // Self-profiling: attach the calling thread first so the kHarness scope
  // (setup + collection around the event loop) and the engine's kEngine
  // loop both land in this run's accumulator. Declared before the engine so
  // detach happens after the engine is gone.
  obs::ProfilerAttach prof_attach(opt.profiler);
  AMOEBA_PROF_SCOPE(kHarness);
  sim::Engine engine;
  if (opt.profiler != nullptr) engine.set_profiler(opt.profiler);
  sim::Rng rng(opt.seed);
  serverless::ServerlessPlatform sp(engine, cluster.serverless, rng.fork(1));
  iaas::IaasPlatform ip(engine, cluster.iaas, rng.fork(2));

  // Fault injection rides its own rng fork: a fault-free config creates no
  // injector and stays byte-identical to pre-fault-layer runs.
  std::unique_ptr<sim::FaultInjector> faults;
  if (opt.faults.any()) {
    faults = std::make_unique<sim::FaultInjector>(opt.faults, rng.fork(4));
    sp.set_fault_injector(faults.get());
    ip.set_fault_injector(faults.get());
  }

  const double duration = opt.warmup_s + opt.period_s * opt.duration_days;
  RunRecorder recorder(opt.warmup_s);

  // Background tenants live directly on the shared serverless platform.
  std::vector<std::unique_ptr<workload::DiurnalTrace>> traces;
  std::vector<std::unique_ptr<workload::PoissonLoadGenerator>> generators;
  if (opt.with_background) {
    int k = 0;
    for (const auto& bg : background_suite(opt.background_peak_fraction)) {
      sp.register_function(bg);
      auto trace = std::make_unique<workload::DiurnalTrace>(
          diurnal_for(bg, opt.period_s, 0.17 * (k + 1)),
          opt.seed ^ (0xb67u + static_cast<unsigned>(k)));
      const std::string name = bg.name;
      auto gen = std::make_unique<workload::PoissonLoadGenerator>(
          engine, rng.fork(100 + static_cast<std::uint64_t>(k)),
          [t = trace.get()](double now) { return t->rate(now); },
          trace->max_rate(), [&sp, name] {
            sp.submit(name, [](const workload::QueryRecord&) {});
          });
      gen->start();
      traces.push_back(std::move(trace));
      generators.push_back(std::move(gen));
      ++k;
    }
  }

  // Foreground service under the chosen deployment system.
  ManagedRunResult result;
  result.qos_target_s = foreground.qos_target_s;
  result.duration_s = duration;

  auto fg_trace = std::make_unique<workload::DiurnalTrace>(
      diurnal_for(foreground, opt.period_s), opt.seed ^ 0x51u);
  const auto fg_observer = recorder.observer(foreground.name);

  std::unique_ptr<core::AmoebaRuntime> runtime;
  workload::ArrivalFn fg_arrival;
  std::function<void()> nameko_boot;  // must outlive the event loop
  const std::string fg_name = foreground.name;

  switch (system) {
    case DeploySystem::kNameko: {
      ip.register_service(foreground, just_enough_vm(foreground, cluster));
      if (faults) {
        // Injected boot failures: keep rebooting until the VM sticks, and
        // shed arrivals while it is down (a pure-IaaS outage loses queries).
        nameko_boot = [&engine, &ip, &nameko_boot, fg_name] {
          ip.boot(fg_name, [] {}, [&engine, &nameko_boot] {
            engine.schedule_in(1.0, [&nameko_boot] { nameko_boot(); });
          });
        };
        nameko_boot();
        fg_arrival = [&ip, fg_name, fg_observer] {
          if (ip.is_running(fg_name)) ip.submit(fg_name, fg_observer);
        };
      } else {
        ip.boot(fg_name, [] {});
        fg_arrival = [&ip, fg_name, fg_observer] {
          ip.submit(fg_name, fg_observer);
        };
      }
      break;
    }
    case DeploySystem::kOpenWhisk: {
      sp.register_function(foreground);
      fg_arrival = [&sp, fg_name, fg_observer] {
        sp.submit(fg_name, fg_observer);
      };
      break;
    }
    default: {
      core::AmoebaConfig cfg =
          opt.amoeba.has_value()
              ? *opt.amoeba
              : default_amoeba_config(system, opt.timeline_period_s);
      if (!opt.amoeba.has_value()) {
        cfg.timeline_period_s = opt.timeline_period_s;
      }
      if (opt.observer != nullptr) cfg.observer = opt.observer;
      cfg.fault_injector = faults.get();
      runtime = std::make_unique<core::AmoebaRuntime>(
          engine, sp, ip, calibration, cfg, rng.fork(3));
      const auto vm_spec = just_enough_vm(foreground, cluster);
      const int n_max = std::max(
          1, static_cast<int>(std::ceil(vm_spec.cores *
                                        opt.n_max_core_factor)));
      runtime->add_service(foreground, vm_spec, artifacts, n_max);
      runtime->start();
      fg_arrival = [rt = runtime.get(), fg_name, fg_observer] {
        rt->submit(fg_name, fg_observer);
      };
      break;
    }
  }

  auto fg_gen = std::make_unique<workload::PoissonLoadGenerator>(
      engine, rng.fork(7), [t = fg_trace.get()](double now) { return t->rate(now); },
      fg_trace->max_rate(), std::move(fg_arrival));

  // Start the foreground load only after the IaaS VM could have booted (the
  // warmup window absorbs it; warmup records are dropped anyway).
  const double fg_start = std::min(cluster.iaas.vm_boot_s + 2.0,
                                   std::max(opt.warmup_s - 1.0, 0.0));
  engine.schedule(fg_start, [g = fg_gen.get()] { g->start(); });

  engine.run_until(duration);

  for (auto& g : generators) g->stop();
  fg_gen->stop();
  if (runtime) runtime->stop();

  if (recorder.count(fg_name) > 0) {
    result.latencies = recorder.latencies(fg_name);
    if (opt.keep_records) result.records = recorder.records(fg_name);
  }
  result.queries = recorder.count(fg_name);

  switch (system) {
    case DeploySystem::kNameko:
      result.usage.cpu_core_seconds = ip.rented_core_seconds(fg_name, duration);
      result.usage.memory_mb_seconds =
          ip.rented_memory_mb_seconds(fg_name, duration);
      break;
    case DeploySystem::kOpenWhisk:
      result.usage.cpu_core_seconds = sp.cpu_core_seconds(fg_name);
      result.usage.memory_mb_seconds = sp.memory_mb_seconds(fg_name, duration);
      break;
    default:
      result.usage = runtime->accountant().usage(fg_name, duration);
      result.switches = runtime->switch_events();
      result.switch_aborts = runtime->execution_engine().switch_aborts();
      result.switch_retries = runtime->execution_engine().switch_retries();
      if (runtime->timeline_period() > 0.0) {
        result.timeline = runtime->timeline(fg_name);
      }
      break;
  }
  if (faults) result.fault_counters = faults->counters();
  result.trace_hash = engine.trace_hash();
  result.events_executed = engine.executed();
  return result;
}

}  // namespace amoeba::exp
