// Cluster-scale multi-service runs — the paper's §VII-A regime at full
// breadth: N concurrently *managed* microservices on one shared node.
//
// `run_managed` (scenario.hpp) manages a single foreground service against
// scripted, unmanaged background noise. `run_cluster` closes the loop the
// paper actually describes: every tenant gets its own AmoebaRuntime (its
// own ContentionMonitor, DeploymentController and HybridExecutionEngine),
// all sharing ONE serverless platform, ONE IaaS platform and ONE event
// engine. Each service's discriminant input P is therefore *caused by the
// live co-tenants* — including the other monitors' probe traffic — through
// the shared FairShareResources, not by a scripted curve. My switch to
// serverless raises your measured pressure, which can flip your switch:
// exactly the coupling where naive per-service controllers oscillate.
//
// Shared-pool admission arbitration: the node-wide container budget (the
// paper's n_max of 128 at 256 MB per container in a 32 GB pool) is split
// across services with core::split_container_budget — every service keeps
// at least one container, the rest goes proportionally to each service's
// solo ask. A small reserve is carved out for the three contention meters
// so probing can't be starved by tenant prewarms. Prewarms past a
// service's grant (or past pool memory) are denied and counted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/table.hpp"

namespace amoeba::exp {

/// One managed tenant of the cluster.
struct ClusterServiceSpec {
  workload::FunctionProfile profile;
  core::ServiceArtifacts artifacts;
  /// Diurnal phase offset in [0, 1): 0.5 puts this tenant's rush half a
  /// period after an unshifted one. Aligned phases (all equal) are the
  /// worst case for the contention loop.
  double phase = 0.0;
};

struct ClusterRunOptions {
  double period_s = 1200.0;  ///< compressed "day"
  double duration_days = 1.0;
  double warmup_s = 60.0;
  /// Forwarded to AmoebaConfig::timeline_period_s. Cluster runs default to
  /// disabled (-1): N timelines of samples are rarely worth their memory.
  double timeline_period_s = -1.0;
  std::uint64_t seed = 42;
  /// Per-service solo ask, as a multiple of the just-enough VM's cores
  /// (same rule as ManagedRunOptions::n_max_core_factor); the arbiter
  /// shrinks asks that do not fit the node budget.
  double n_max_core_factor = 1.0;
  /// Node-wide container budget (Table II: 32 GB pool / 256 MB = 128).
  int node_container_budget = 128;
  /// Containers withheld from the service split for the three contention
  /// meters (divided equally; at least 1 per meter). Meters are registered
  /// with this as their per-function n_max before any runtime starts.
  int meter_reserve_containers = 15;
  /// Per-monitor probe rate (QPS per meter). 0 = auto: kMeterProbeQps
  /// scaled down to min(1, 4/N) so N monitors' combined probing stays a
  /// small, N-independent fraction of the node.
  double monitor_probe_qps = 0.0;
  /// Keep every per-service QueryRecord in the result.
  bool keep_records = false;
  /// Override the per-runtime Amoeba tuning (defaults follow
  /// default_amoeba_config(kAmoeba, timeline_period_s)).
  std::optional<core::AmoebaConfig> amoeba;
  /// Observability sink shared by every runtime (non-owning; nullptr =
  /// disabled). DecisionRecords and switch spans carry the service name,
  /// so one sink disentangles N control loops.
  obs::Observer* observer = nullptr;
  /// Self-profiler for the run (non-owning; nullptr = disabled): same
  /// semantics as ManagedRunOptions::profiler.
  obs::Profiler* profiler = nullptr;
  /// Fault injection (one injector seeded from the run seed, shared by the
  /// pool, the VM fleet and every monitor — as in run_managed).
  sim::FaultConfig faults;
};

/// Per-tenant outcome of a cluster run.
struct ClusterServiceResult {
  std::string name;
  double qos_target_s = 0.0;
  stats::SampleSet latencies;
  std::vector<workload::QueryRecord> records;  ///< if keep_records
  std::uint64_t queries = 0;
  core::ServiceUsage usage;  ///< rented IaaS + consumed serverless
  std::vector<core::SwitchEvent> switches;
  std::uint64_t switch_aborts = 0;
  std::uint64_t switch_retries = 0;
  /// Prewarm containers denied by the shared-pool arbitration.
  std::uint64_t prewarm_denied = 0;
  int n_max_asked = 0;    ///< solo ask (cores × n_max_core_factor)
  int n_max_granted = 0;  ///< after the budget split

  [[nodiscard]] double p95() const { return latencies.quantile(0.95); }
  [[nodiscard]] double violation_fraction() const {
    return latencies.fraction_above(qos_target_s);
  }
};

struct ClusterRunResult {
  std::vector<ClusterServiceResult> services;
  double duration_s = 0.0;
  std::uint64_t trace_hash = 0;
  /// Engine events dispatched during the run (throughput denominators).
  std::uint64_t events_executed = 0;
  /// Σ over services of their cross-platform usage.
  core::ServiceUsage services_usage;
  /// The contention meters' own usage (probing is honest overhead).
  core::ServiceUsage meter_usage;
  /// Σ over every function on the node (tenants + meters) of the pool's
  /// container-memory reservation integral (MB·s). Conservation: can never
  /// exceed pool capacity × duration.
  double pool_memory_mb_seconds = 0.0;
  /// Pool-wide high-water marks and counters.
  int peak_pool_containers = 0;
  double peak_pool_memory_mb = 0.0;
  std::uint64_t pool_evictions = 0;
  std::uint64_t prewarm_denied_total = 0;
  sim::FaultCounters fault_counters;

  /// Total rented/consumed core-hours, meters included.
  [[nodiscard]] double total_core_hours() const {
    return (services_usage.cpu_core_seconds + meter_usage.cpu_core_seconds) /
           3600.0;
  }
  [[nodiscard]] double total_memory_gb_hours() const {
    return (services_usage.memory_mb_seconds +
            meter_usage.memory_mb_seconds) /
           (1024.0 * 3600.0);
  }
  /// Lookup by tenant name (nullptr when absent).
  [[nodiscard]] const ClusterServiceResult* find(
      const std::string& name) const;
};

/// Run N managed services concurrently on one shared node.
[[nodiscard]] ClusterRunResult run_cluster(
    const std::vector<ClusterServiceSpec>& specs,
    const ClusterConfig& cluster, const core::MeterCalibration& calibration,
    const ClusterRunOptions& opt);

/// N tenant profiles cycling the FunctionBench suite (float, matmul,
/// linpack, dd, cloud_stor, float#5, ...), each renamed "<base>#<i>" and
/// scaled to `peak_fraction` of its solo peak so N tenants fit a node one
/// full-peak service saturates.
[[nodiscard]] std::vector<workload::FunctionProfile> cluster_tenants(
    int n, double peak_fraction);

/// Machine-readable summary (one JSON object; parses with obs::parse_json).
[[nodiscard]] std::string cluster_summary_json(const ClusterRunResult& r);

/// Human-readable per-service table with a trailing TOTAL row.
[[nodiscard]] Table cluster_table(const ClusterRunResult& r);

}  // namespace amoeba::exp
