#include "exp/artifact_cache.hpp"

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

namespace amoeba::exp {

namespace {
constexpr const char* kMagic = "amoeba-profile-cache-v1";

void write_header(std::ostream& os, const std::string& tag) {
  os << kMagic << '\n' << tag << '\n' << std::setprecision(17);
}

bool read_header(std::istream& is, const std::string& tag) {
  std::string magic, file_tag;
  if (!std::getline(is, magic) || magic != kMagic) return false;
  if (!std::getline(is, file_tag) || file_tag != tag) return false;
  return true;
}

void ensure_parent(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
}
}  // namespace

std::string default_cache_dir() { return "amoeba_profile_cache"; }

void save_calibration(const std::string& path, const std::string& tag,
                      const core::MeterCalibration& calibration) {
  AMOEBA_EXPECTS(calibration.complete());
  ensure_parent(path);
  std::ofstream os(path, std::ios::trunc);
  AMOEBA_EXPECTS_MSG(static_cast<bool>(os), "cannot write " + path);
  write_header(os, tag);
  os << "meters " << core::kNumResources << '\n';
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto& pts = calibration.curves[d]->points();
    os << "curve " << d << ' ' << pts.size() << '\n';
    for (const auto& p : pts) os << p.pressure << ' ' << p.latency << '\n';
  }
}

std::optional<core::MeterCalibration> load_calibration(
    const std::string& path, const std::string& tag) {
  std::ifstream is(path);
  if (!is || !read_header(is, tag)) return std::nullopt;
  std::string word;
  std::size_t n = 0;
  if (!(is >> word >> n) || word != "meters" || n != core::kNumResources) {
    return std::nullopt;
  }
  core::MeterCalibration cal;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t dim = 0, count = 0;
    if (!(is >> word >> dim >> count) || word != "curve" ||
        dim >= core::kNumResources || count < 2) {
      return std::nullopt;
    }
    std::vector<core::CurvePoint> pts(count);
    for (auto& p : pts) {
      if (!(is >> p.pressure >> p.latency)) return std::nullopt;
    }
    cal.curves[dim] = core::MeterCurve(std::move(pts));
  }
  return cal.complete() ? std::optional(cal) : std::nullopt;
}

void save_artifacts(const std::string& path, const std::string& tag,
                    const core::ServiceArtifacts& artifacts) {
  AMOEBA_EXPECTS(artifacts.complete());
  ensure_parent(path);
  std::ofstream os(path, std::ios::trunc);
  AMOEBA_EXPECTS_MSG(static_cast<bool>(os), "cannot write " + path);
  write_header(os, tag);
  os << "solo " << artifacts.solo_latency_s << '\n';
  os << "alpha " << artifacts.alpha_s << '\n';
  os << "footprint";
  for (double f : artifacts.pressure_per_qps) os << ' ' << f;
  os << '\n';
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto& s = *artifacts.surfaces[d];
    os << "surface " << d << ' ' << s.pressures().size() << ' '
       << s.loads().size() << '\n';
    for (double p : s.pressures()) os << p << ' ';
    os << '\n';
    for (double l : s.loads()) os << l << ' ';
    os << '\n';
    for (std::size_t pi = 0; pi < s.pressures().size(); ++pi) {
      for (std::size_t li = 0; li < s.loads().size(); ++li) {
        os << s.value(pi, li) << ' ';
      }
    }
    os << '\n';
  }
}

std::optional<core::ServiceArtifacts> load_artifacts(const std::string& path,
                                                     const std::string& tag) {
  std::ifstream is(path);
  if (!is || !read_header(is, tag)) return std::nullopt;
  core::ServiceArtifacts art;
  std::string word;
  if (!(is >> word >> art.solo_latency_s) || word != "solo") {
    return std::nullopt;
  }
  if (!(is >> word >> art.alpha_s) || word != "alpha") return std::nullopt;
  if (!(is >> word) || word != "footprint") return std::nullopt;
  for (auto& f : art.pressure_per_qps) {
    if (!(is >> f)) return std::nullopt;
  }
  for (std::size_t i = 0; i < core::kNumResources; ++i) {
    std::size_t dim = 0, np = 0, nl = 0;
    if (!(is >> word >> dim >> np >> nl) || word != "surface" ||
        dim >= core::kNumResources || np < 2 || nl < 2) {
      return std::nullopt;
    }
    std::vector<double> ps(np), ls(nl), lat(np * nl);
    for (auto& v : ps) {
      if (!(is >> v)) return std::nullopt;
    }
    for (auto& v : ls) {
      if (!(is >> v)) return std::nullopt;
    }
    for (auto& v : lat) {
      if (!(is >> v)) return std::nullopt;
    }
    art.surfaces[dim] = core::LatencySurface(std::move(ps), std::move(ls),
                                             std::move(lat));
  }
  return art.complete() ? std::optional(art) : std::nullopt;
}

}  // namespace amoeba::exp
