#include "exp/profiling.hpp"

#include <memory>
#include <utility>

#include "exp/sweep.hpp"
#include "workload/load_generator.hpp"

namespace amoeba::exp {

void ProfilingConfig::validate() const {
  AMOEBA_EXPECTS(pressure_grid.size() >= 2);
  AMOEBA_EXPECTS(load_fractions.size() >= 2);
  for (std::size_t i = 1; i < pressure_grid.size(); ++i) {
    AMOEBA_EXPECTS(pressure_grid[i] > pressure_grid[i - 1]);
  }
  for (std::size_t i = 1; i < load_fractions.size(); ++i) {
    AMOEBA_EXPECTS(load_fractions[i] > load_fractions[i - 1]);
  }
  AMOEBA_EXPECTS(pressure_grid.front() > 0.0);
  AMOEBA_EXPECTS(load_fractions.front() > 0.0);
  AMOEBA_EXPECTS(cell_duration_s > 0.0);
  AMOEBA_EXPECTS(warmup_s >= 0.0 && warmup_s < cell_duration_s);
  AMOEBA_EXPECTS(tail > 0.0 && tail < 1.0);
  AMOEBA_EXPECTS(solo_probe_qps > 0.0);
}

namespace {

/// Effective demand (work units per query) a stressor puts on its target
/// resource, including the platform's container IO/net efficiency tax —
/// pressure labels must be in the same units the device actually serves.
double stressor_unit_demand(workload::StressKind kind,
                            const workload::FunctionProfile& p,
                            const ClusterConfig& cluster) {
  switch (kind) {
    case workload::StressKind::kCpu:
      return p.exec.cpu_seconds;
    case workload::StressKind::kDiskIo:
      return p.exec.io_bytes / cluster.serverless.io_efficiency;
    case workload::StressKind::kNetwork:
      return p.exec.net_bytes / cluster.serverless.net_efficiency;
  }
  return 0.0;
}

double resource_capacity(workload::StressKind kind,
                         const ClusterConfig& cluster) {
  switch (kind) {
    case workload::StressKind::kCpu: return cluster.serverless.cores;
    case workload::StressKind::kDiskIo: return cluster.serverless.disk_bps;
    case workload::StressKind::kNetwork: return cluster.serverless.net_bps;
  }
  return 0.0;
}

workload::StressKind stress_kind_for_dim(std::size_t dim) {
  switch (dim) {
    case core::kCpuDim: return workload::StressKind::kCpu;
    case core::kIoDim: return workload::StressKind::kDiskIo;
    default: return workload::StressKind::kNetwork;
  }
}

/// Meter effective demand on its own primary resource (for the Fig. 8
/// pressure axis), including the container efficiency tax.
double meter_unit_demand(workload::MeterKind kind,
                         const ClusterConfig& cluster) {
  const auto p = workload::meter_profile(kind);
  switch (kind) {
    case workload::MeterKind::kCpuMemory:
      return p.exec.cpu_seconds;
    case workload::MeterKind::kDiskIo:
      return (p.exec.io_bytes + p.code_bytes) /
             cluster.serverless.io_efficiency;
    case workload::MeterKind::kNetwork:
      return (p.exec.net_bytes + p.result_bytes) /
             cluster.serverless.net_efficiency;
  }
  return 0.0;
}

double meter_capacity(workload::MeterKind kind, const ClusterConfig& cluster) {
  switch (kind) {
    case workload::MeterKind::kCpuMemory: return cluster.serverless.cores;
    case workload::MeterKind::kDiskIo: return cluster.serverless.disk_bps;
    case workload::MeterKind::kNetwork: return cluster.serverless.net_bps;
  }
  return 0.0;
}

}  // namespace

double stressor_load_for_pressure(workload::StressKind kind, double pressure,
                                  const ClusterConfig& cluster) {
  AMOEBA_EXPECTS(pressure > 0.0);
  const auto profile = workload::make_stressor(kind);
  const double demand = stressor_unit_demand(kind, profile, cluster);
  AMOEBA_ASSERT(demand > 0.0);
  return pressure * resource_capacity(kind, cluster) / demand;
}

CellResult run_profile_cell(const workload::FunctionProfile& subject,
                            double subject_qps,
                            const workload::FunctionProfile* stressor,
                            double stressor_qps, const ClusterConfig& cluster,
                            const ProfilingConfig& cfg, std::uint64_t seed) {
  AMOEBA_EXPECTS(subject_qps > 0.0);
  sim::Engine engine;
  sim::Rng rng(seed);
  serverless::ServerlessPlatform sp(engine, cluster.serverless, rng.fork(1));
  sp.register_function(subject);
  if (stressor != nullptr) {
    AMOEBA_EXPECTS(stressor_qps > 0.0);
    sp.register_function(*stressor);
  }

  stats::SampleSet service_latencies;
  double sum = 0.0;
  std::uint64_t count = 0;
  const double warmup = cfg.warmup_s;
  const std::string subject_name = subject.name;

  workload::ConstantLoadGenerator subject_gen(
      engine, rng.fork(2), subject_qps, [&] {
        sp.submit(subject_name, [&, arrival = engine.now()](
                                    const workload::QueryRecord& rec) {
          if (arrival < warmup) return;
          const double service = rec.breakdown.total() - rec.breakdown.queue_s -
                                 rec.breakdown.cold_start_s;
          service_latencies.add(service);
          sum += service;
          ++count;
        });
      });

  std::unique_ptr<workload::ConstantLoadGenerator> stress_gen;
  if (stressor != nullptr) {
    const std::string stressor_name = stressor->name;
    stress_gen = std::make_unique<workload::ConstantLoadGenerator>(
        engine, rng.fork(3), stressor_qps, [&sp, stressor_name] {
          sp.submit(stressor_name, [](const workload::QueryRecord&) {});
        });
    stress_gen->start();
  }
  subject_gen.start();
  engine.run_until(cfg.cell_duration_s);
  subject_gen.stop();
  if (stress_gen) stress_gen->stop();
  // Drain in-flight work so tail samples near the end are not lost.
  engine.run();

  CellResult out;
  out.samples = count;
  if (count > 0) {
    out.mean_latency_s = sum / static_cast<double>(count);
    out.tail_latency_s = service_latencies.quantile(cfg.tail);
  }
  return out;
}

core::MeterCalibration profile_meters(const ClusterConfig& cluster,
                                      const ProfilingConfig& cfg) {
  cfg.validate();
  core::MeterCalibration calibration;
  const std::size_t m = cfg.pressure_grid.size();

  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const workload::MeterKind kind = workload::kAllMeters[d];
    const auto meter = workload::meter_profile(kind);
    const double demand = meter_unit_demand(kind, cluster);
    const double capacity = meter_capacity(kind, cluster);
    std::vector<core::CurvePoint> points(m);

    parallel_for(m, cfg.threads, [&](std::size_t i) {
      const double pressure = cfg.pressure_grid[i];
      const double load = pressure * capacity / demand;
      const CellResult cell = run_profile_cell(
          meter, load, nullptr, 0.0, cluster, cfg,
          cluster.seed ^ (0x1000u + d * 97 + i));
      // Zero completions = the meter alone saturated the resource at this
      // pressure; clamp to the cell duration (isotonic repair keeps the
      // curve monotone).
      points[i] = core::CurvePoint{
          pressure, cell.samples > 0 ? cell.mean_latency_s
                                     : cfg.cell_duration_s};
    });
    calibration.curves[d] = core::MeterCurve(std::move(points));
  }
  return calibration;
}

namespace {

/// Mean probe-meter latencies with an optional resident subject (used to
/// measure a service's pressure footprint through the meters alone).
std::array<double, core::kNumResources> probe_latencies(
    const workload::FunctionProfile* subject, double subject_qps,
    const ClusterConfig& cluster, const ProfilingConfig& cfg,
    std::uint64_t seed) {
  sim::Engine engine;
  sim::Rng rng(seed);
  serverless::ServerlessPlatform sp(engine, cluster.serverless, rng.fork(1));

  std::array<double, core::kNumResources> sums{};
  std::array<std::uint64_t, core::kNumResources> counts{};

  std::vector<std::unique_ptr<workload::ConstantLoadGenerator>> gens;
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const auto meter = workload::meter_profile(workload::kAllMeters[d]);
    sp.register_function(meter);
    const std::string name = meter.name;
    gens.push_back(std::make_unique<workload::ConstantLoadGenerator>(
        engine, rng.fork(10 + d), workload::kMeterProbeQps,
        [&, d, name] {
          sp.submit(name, [&, d, arrival = engine.now()](
                              const workload::QueryRecord& rec) {
            if (arrival < cfg.warmup_s) return;
            sums[d] += rec.breakdown.total() - rec.breakdown.queue_s -
                       rec.breakdown.cold_start_s;
            counts[d] += 1;
          });
        }));
  }
  std::unique_ptr<workload::ConstantLoadGenerator> subject_gen;
  if (subject != nullptr) {
    sp.register_function(*subject);
    const std::string name = subject->name;
    subject_gen = std::make_unique<workload::ConstantLoadGenerator>(
        engine, rng.fork(20), subject_qps, [&sp, name] {
          sp.submit(name, [](const workload::QueryRecord&) {});
        });
    subject_gen->start();
  }
  for (auto& g : gens) g->start();
  engine.run_until(cfg.cell_duration_s * 2.0);  // probes are only 1 QPS
  for (auto& g : gens) g->stop();
  if (subject_gen) subject_gen->stop();
  engine.run();

  std::array<double, core::kNumResources> out{};
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    AMOEBA_ASSERT_MSG(counts[d] > 0, "probe produced no samples");
    out[d] = sums[d] / static_cast<double>(counts[d]);
  }
  return out;
}

}  // namespace

core::ServiceArtifacts profile_service(
    const workload::FunctionProfile& profile, const ClusterConfig& cluster,
    const core::MeterCalibration& calibration, const ProfilingConfig& cfg) {
  cfg.validate();
  AMOEBA_EXPECTS(calibration.complete());
  core::ServiceArtifacts art;

  // L0: solo run at a low probing load.
  const CellResult solo =
      run_profile_cell(profile, cfg.solo_probe_qps, nullptr, 0.0, cluster,
                       cfg, cluster.seed ^ 0x2000u);
  AMOEBA_ASSERT(solo.samples > 0);
  art.solo_latency_s = solo.tail_latency_s;
  art.alpha_s = 0.0;

  // The three latency surfaces (Fig. 9): pressure rows × load columns.
  const std::size_t np = cfg.pressure_grid.size();
  const std::size_t nl = cfg.load_fractions.size();
  std::vector<double> loads(nl);
  for (std::size_t j = 0; j < nl; ++j) {
    loads[j] = cfg.load_fractions[j] * profile.peak_load_qps;
  }

  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const workload::StressKind kind = stress_kind_for_dim(d);
    const auto stressor = workload::make_stressor(kind);
    std::vector<double> lat(np * nl, 0.0);

    parallel_for(np * nl, cfg.threads, [&](std::size_t idx) {
      const std::size_t pi = idx / nl;
      const std::size_t li = idx % nl;
      const double stress_qps =
          stressor_load_for_pressure(kind, cfg.pressure_grid[pi], cluster);
      const CellResult cell = run_profile_cell(
          profile, loads[li], &stressor, stress_qps, cluster, cfg,
          cluster.seed ^ (0x3000u + d * 1009 + idx));
      // A cell that completed nothing is saturated (the demanded pressure
      // exceeds the resource's effective capacity, e.g. beyond the CPU
      // interference knee). Record the cell duration as the latency: the
      // controller will correctly conclude no load is safe there.
      lat[idx] = cell.samples > 0 ? cell.tail_latency_s
                                  : cfg.cell_duration_s;
    });
    art.surfaces[d] = core::LatencySurface(cfg.pressure_grid, loads,
                                           std::move(lat));
  }

  // Pressure footprint, measured through the meters (not ground truth):
  // pressures with the service resident minus the idle-platform baseline,
  // normalized per query/second.
  const double probe_load = 0.5 * profile.peak_load_qps;
  const auto idle = probe_latencies(nullptr, 0.0, cluster, cfg,
                                    cluster.seed ^ 0x4000u);
  const auto loaded = probe_latencies(&profile, probe_load, cluster, cfg,
                                      cluster.seed ^ 0x4001u);
  for (std::size_t d = 0; d < core::kNumResources; ++d) {
    const core::MeterCurve& curve = *calibration.curves[d];
    const double p_idle = curve.pressure_for(idle[d]);
    const double p_loaded = curve.pressure_for(loaded[d]);
    art.pressure_per_qps[d] = std::max(0.0, p_loaded - p_idle) / probe_load;
  }
  return art;
}

}  // namespace amoeba::exp
