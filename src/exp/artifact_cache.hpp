// Text-file cache for profiling artifacts.
//
// Profiling (meter curves, latency surfaces) is deterministic but takes
// simulated-minutes of CPU; every figure bench needs the same artifacts.
// The cache persists them as a human-readable text file keyed by a caller
// tag, so `for b in build/bench/*; do $b; done` profiles once, not eight
// times. Loading validates the format version and tag; any mismatch just
// reports a miss and the caller re-profiles.
#pragma once

#include <optional>
#include <string>

#include "core/profile_data.hpp"

namespace amoeba::exp {

/// Persist / restore the platform meter calibration.
void save_calibration(const std::string& path, const std::string& tag,
                      const core::MeterCalibration& calibration);
[[nodiscard]] std::optional<core::MeterCalibration> load_calibration(
    const std::string& path, const std::string& tag);

/// Persist / restore one service's artifacts.
void save_artifacts(const std::string& path, const std::string& tag,
                    const core::ServiceArtifacts& artifacts);
[[nodiscard]] std::optional<core::ServiceArtifacts> load_artifacts(
    const std::string& path, const std::string& tag);

/// Default cache directory (created on demand): ./amoeba_profile_cache
[[nodiscard]] std::string default_cache_dir();

}  // namespace amoeba::exp
