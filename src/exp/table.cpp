#include "exp/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace amoeba::exp {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  AMOEBA_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  AMOEBA_EXPECTS_MSG(cells.size() == headers_.size(),
                     "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string fmt_fixed(double x, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << x;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_fixed(fraction * 100.0, precision) + "%";
}

std::string fmt_si(double x, int precision) {
  static constexpr struct {
    double scale;
    const char* suffix;
  } kUnits[] = {{1e9, "G"}, {1e6, "M"}, {1e3, "k"}};
  for (const auto& u : kUnits) {
    if (std::abs(x) >= u.scale) {
      return fmt_fixed(x / u.scale, precision) + u.suffix;
    }
  }
  return fmt_fixed(x, precision);
}

void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& what) {
  os << "==============================================================\n"
     << " " << experiment << " — " << what << "\n"
     << " cluster: 40-core node, 32 GB container pool, NVMe 2 GB/s,\n"
     << "          25 GbE; cold start ~1 s; containers 256 MB (Table II)\n"
     << "==============================================================\n";
}

}  // namespace amoeba::exp
