// Share-nothing parallel sweep runner.
//
// Profiling and the figure benches run many independent single-threaded
// simulations (grid cells, load sweeps, seeds). `parallel_map` fans them
// out over a small worker pool; each item gets its own simulation engine
// and RNG stream, so results are independent of the thread count and
// identical to a serial run. `SweepExecutor` is the persistent-pool
// variant for binaries that dispatch several sweeps back to back: results
// are always collected in configuration order, no matter which worker
// finishes first, so a table built from them is identical at --jobs 1 and
// --jobs 8.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "kernels/thread_pool.hpp"

namespace amoeba::exp {

/// Effective worker count: `requested`, or hardware concurrency when 0
/// (at least 1).
[[nodiscard]] inline unsigned effective_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Apply `fn(index)` for every index in [0, n) using up to `threads`
/// workers. `fn` must be thread-safe across distinct indices. Exceptions
/// propagate: the first one thrown is rethrown on the caller thread.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

/// Map `fn` over [0, n), collecting results in index order.
template <typename T>
[[nodiscard]] std::vector<T> parallel_map(
    std::size_t n, unsigned threads,
    const std::function<T(std::size_t)>& fn) {
  std::vector<T> out(n);
  parallel_for(n, threads, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Parse and consume a `--jobs N` / `--jobs=N` flag from argv (the shared
/// worker-count flag of the fig/abl bench binaries). Returns 1 when absent
/// — sweeps are serial unless asked otherwise. The flag and its value are
/// removed from argv so later flag parsers never see them.
[[nodiscard]] unsigned parse_jobs_flag(int& argc, char** argv);

/// Persistent worker pool running independent scenario configurations
/// concurrently. Each configuration must be share-nothing (own Engine, own
/// seeded RNG — which `run_managed` and friends construct internally), so
/// the result table is a pure function of the configuration list:
/// `map` returns results in configuration order regardless of jobs count
/// or completion order.
///
/// Concurrency surface: the only cross-thread state is the annotated
/// kernels::ThreadPool (Clang thread-safety checked) and the result
/// vector, which workers write at disjoint indices i — the pool's
/// wait_idle() join orders those writes before the caller reads them.
/// SweepExecutor itself is confined to the submitting thread: `map` /
/// `map_indexed` must not be called concurrently on one executor.
class SweepExecutor {
 public:
  /// `jobs` worker threads; 1 (also the parse_jobs_flag default) runs
  /// everything on the calling thread with no pool at all.
  explicit SweepExecutor(unsigned jobs)
      : jobs_(jobs == 0 ? effective_threads(0) : jobs) {
    if (jobs_ > 1) pool_ = std::make_unique<kernels::ThreadPool>(jobs_);
  }

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Run `fn(config)` for every configuration, collecting results in
  /// configuration order. `fn` must be safe to call concurrently on
  /// distinct configurations. The first exception thrown (if any) is
  /// rethrown after in-flight work drains.
  template <typename Result, typename Config, typename Fn>
  [[nodiscard]] std::vector<Result> map(const std::vector<Config>& configs,
                                        Fn&& fn) {
    std::vector<Result> out(configs.size());
    if (pool_ == nullptr) {
      for (std::size_t i = 0; i < configs.size(); ++i) {
        out[i] = fn(configs[i]);
      }
      return out;
    }
    for (std::size_t i = 0; i < configs.size(); ++i) {
      pool_->submit(
          [&out, &configs, &fn, i] { out[i] = fn(configs[i]); });
    }
    pool_->wait_idle();
    return out;
  }

  /// Index-based variant: `fn(i)` over [0, n), results in index order.
  template <typename Result, typename Fn>
  [[nodiscard]] std::vector<Result> map_indexed(std::size_t n, Fn&& fn) {
    std::vector<Result> out(n);
    if (pool_ == nullptr) {
      for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
      return out;
    }
    for (std::size_t i = 0; i < n; ++i) {
      pool_->submit([&out, &fn, i] { out[i] = fn(i); });
    }
    pool_->wait_idle();
    return out;
  }

 private:
  unsigned jobs_;
  std::unique_ptr<kernels::ThreadPool> pool_;  // null when jobs_ == 1
};

}  // namespace amoeba::exp
