// Share-nothing parallel sweep runner.
//
// Profiling and the figure benches run many independent single-threaded
// simulations (grid cells, load sweeps, seeds). `parallel_map` fans them
// out over a small worker pool; each item gets its own simulation engine
// and RNG stream, so results are independent of the thread count and
// identical to a serial run.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::exp {

/// Effective worker count: `requested`, or hardware concurrency when 0
/// (at least 1).
[[nodiscard]] inline unsigned effective_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Apply `fn(index)` for every index in [0, n) using up to `threads`
/// workers. `fn` must be thread-safe across distinct indices. Exceptions
/// propagate: the first one thrown is rethrown on the caller thread.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

/// Map `fn` over [0, n), collecting results in index order.
template <typename T>
[[nodiscard]] std::vector<T> parallel_map(
    std::size_t n, unsigned threads,
    const std::function<T(std::size_t)>& fn) {
  std::vector<T> out(n);
  parallel_for(n, threads, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace amoeba::exp
