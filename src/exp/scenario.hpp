// Experiment scenario builders — encodes the paper's §VII-A setup.
//
// The simulated cluster mirrors Table II: one 40-core / 25 GbE / NVMe node
// hosts the shared serverless platform, a second node hosts the IaaS VMs,
// and the load generator + controller + monitor run "off to the side"
// (they cost nothing in the simulation, matching the paper's third node).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/amoeba.hpp"
#include "core/profile_data.hpp"
#include "iaas/platform.hpp"
#include "serverless/platform.hpp"
#include "stats/percentile.hpp"
#include "workload/diurnal_trace.hpp"
#include "workload/functionbench.hpp"
#include "workload/load_generator.hpp"

namespace amoeba::obs {
class Profiler;
}  // namespace amoeba::obs

namespace amoeba::exp {

/// Hardware/software configuration of the simulated cluster (Table II).
struct ClusterConfig {
  serverless::PlatformConfig serverless;
  iaas::IaasConfig iaas;
  std::uint64_t seed = 42;
};

/// Table II defaults: 40 cores, 32 GB container pool (256 MB containers →
/// n_max 128 node-wide), NVMe at 2 GB/s, 25 GbE, 1 s cold starts.
[[nodiscard]] ClusterConfig default_cluster();

/// "Just-enough" IaaS sizing (paper §II-B): the smallest VM (integer cores)
/// whose M/M/c model keeps the r-ile latency within the QoS target at the
/// service's peak load, with a small multiplicative headroom. Memory is a
/// 1 GB base plus one worker's footprint per core.
[[nodiscard]] iaas::VmSpec just_enough_vm(
    const workload::FunctionProfile& profile, const ClusterConfig& cluster,
    double r = 0.95, double headroom = 1.15);

/// The diurnal trace used to drive a service: peak at its provisioned
/// peak_load_qps, trough at 25% (paper §I: low load < 30% of peak).
[[nodiscard]] workload::DiurnalTraceConfig diurnal_for(
    const workload::FunctionProfile& profile, double period_s,
    double phase = 0.0);

/// Collects per-service user-query records with a warmup filter.
class RunRecorder {
 public:
  explicit RunRecorder(double warmup_s) : warmup_s_(warmup_s) {}

  [[nodiscard]] workload::QueryCompletionFn observer(
      const std::string& service);

  [[nodiscard]] const stats::SampleSet& latencies(
      const std::string& service) const;
  [[nodiscard]] const std::vector<workload::QueryRecord>& records(
      const std::string& service) const;
  [[nodiscard]] std::uint64_t count(const std::string& service) const;

 private:
  struct PerService {
    stats::SampleSet latencies;
    std::vector<workload::QueryRecord> records;
  };
  double warmup_s_;
  std::map<std::string, PerService> per_service_;
};

/// Which deployment system manages the foreground benchmark.
enum class DeploySystem {
  kAmoeba,      ///< full system
  kAmoebaNoM,   ///< PCA calibration disabled (§VII-C)
  kAmoebaNoP,   ///< container prewarm disabled (§VII-D)
  kNameko,      ///< pure IaaS baseline
  kOpenWhisk,   ///< pure serverless baseline
};

[[nodiscard]] const char* to_string(DeploySystem s) noexcept;

/// The AmoebaConfig run_managed uses for the managed systems (margins,
/// hysteresis, prewarm headroom, anticipation window). Exposed so cluster
/// runs and ablations start from the same tuning as the single-service
/// experiments.
[[nodiscard]] core::AmoebaConfig default_amoeba_config(
    DeploySystem system, double timeline_period_s);

struct ManagedRunOptions {
  double period_s = 1200.0;      ///< compressed "day"
  double duration_days = 1.0;
  double warmup_s = 60.0;
  bool with_background = true;   ///< float/dd/cloud_stor at low peak (§VII-A)
  double background_peak_fraction = 0.30;
  /// Forwarded to AmoebaConfig::timeline_period_s: 0 follows the monitor
  /// sample period, negative disables timelines, positive as given.
  double timeline_period_s = 0.0;
  std::uint64_t seed = 42;
  /// Per-service container limit (paper §IV-A's n_max), as a multiple of
  /// the just-enough VM's cores: the service may not consume more of the
  /// shared pool than it would rent on IaaS. Keeps the discriminant honest
  /// about the serverless peak capacity (and bounds worst-case memory).
  double n_max_core_factor = 1.0;
  /// Keep every foreground QueryRecord in the result (windowed analyses).
  bool keep_records = false;
  /// Overrides for ablation studies; defaults follow AmoebaConfig.
  std::optional<core::AmoebaConfig> amoeba;
  /// Observability sink attached to the Amoeba runtime (non-owning;
  /// nullptr = disabled). Ignored by the pure baselines, which have no
  /// control loop to observe. Takes precedence over `amoeba->observer`.
  obs::Observer* observer = nullptr;
  /// Self-profiler for the run (non-owning; nullptr = disabled). run_managed
  /// attaches it to the calling thread and the engine for the duration of
  /// the run; wall time is attributed per obs::ProfDomain into sim-time
  /// buckets. Pure bookkeeping — the event trace is identical with or
  /// without it (Determinism.ProfilerDoesNotPerturbTheSimulation).
  obs::Profiler* profiler = nullptr;
  /// Fault injection rates. All-zero (the default) runs fault-free and is
  /// byte-identical to a build without the subsystem; any nonzero rate
  /// attaches a FaultInjector (seeded from the run seed, fork 4) to the
  /// container pool, the VM fleet and the contention monitor.
  sim::FaultConfig faults;
};

struct ManagedRunResult {
  stats::SampleSet latencies;              ///< foreground user queries
  std::vector<workload::QueryRecord> records;  ///< if keep_records
  std::uint64_t queries = 0;
  core::ServiceUsage usage;                ///< foreground, across platforms
  std::vector<core::SwitchEvent> switches; ///< empty for pure baselines
  core::ServiceTimeline timeline;          ///< populated if sampling enabled
  double qos_target_s = 0.0;
  double duration_s = 0.0;
  /// Hash of the executed event trace (timestamp, event id) — identical
  /// across runs iff the simulation was deterministic (see Engine::trace_hash).
  std::uint64_t trace_hash = 0;
  /// Engine events dispatched during the run (throughput denominators).
  std::uint64_t events_executed = 0;
  /// Switch-protocol resilience counters (managed systems only).
  std::uint64_t switch_aborts = 0;
  std::uint64_t switch_retries = 0;
  /// Injected-fault tallies (all zero when `faults` was all-zero).
  sim::FaultCounters fault_counters;

  [[nodiscard]] double p95() const { return latencies.quantile(0.95); }
  [[nodiscard]] double violation_fraction() const {
    return latencies.fraction_above(qos_target_s);
  }
};

/// Run one foreground benchmark under the given system, with the paper's
/// background tenants on the shared serverless platform. This is the
/// workhorse behind Figs. 10–14 and 16.
[[nodiscard]] ManagedRunResult run_managed(
    const workload::FunctionProfile& foreground, DeploySystem system,
    const ClusterConfig& cluster, const core::MeterCalibration& calibration,
    const core::ServiceArtifacts& artifacts, const ManagedRunOptions& opt);

/// Background tenants of §VII-A: float, dd and cloud_stor scaled to a low
/// peak, offset in phase so their rushes don't align.
[[nodiscard]] std::vector<workload::FunctionProfile> background_suite(
    double peak_fraction);

}  // namespace amoeba::exp
