// Plain-text table / CSV output for the figure and table benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace amoeba::exp {

/// Fixed-width ASCII table, printed like the rows of a paper table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers.
[[nodiscard]] std::string fmt_fixed(double x, int precision = 3);
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);
[[nodiscard]] std::string fmt_si(double x, int precision = 3);

/// Standard bench banner: experiment id + the Table II cluster description.
void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& what);

}  // namespace amoeba::exp
