#include "exp/sweep.hpp"

#include <cstdlib>
#include <exception>
#include <string>
#include <string_view>

#include "common/mutex.hpp"

namespace amoeba::exp {

unsigned parse_jobs_flag(int& argc, char** argv) {
  unsigned jobs = 1;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    std::string_view value;
    if (arg == "--jobs" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--jobs=", 0) == 0) {
      value = arg.substr(7);
    } else {
      argv[out++] = argv[i];
      continue;
    }
    const std::string text{value};
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(text.c_str(), &end, 10);
    AMOEBA_EXPECTS_MSG(!text.empty() && end == text.c_str() + text.size() &&
                           parsed > 0 && parsed <= 1024,
                       "--jobs expects an integer in [1, 1024]");
    jobs = static_cast<unsigned>(parsed);
  }
  argc = out;
  argv[argc] = nullptr;
  return jobs;
}

void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  AMOEBA_EXPECTS(fn != nullptr);
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(effective_threads(threads), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  struct ErrorSlot {
    common::Mutex mutex;
    std::exception_ptr first_error AMOEBA_GUARDED_BY(mutex);
  } errors;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        common::MutexLock lock(errors.mutex);
        if (!errors.first_error) errors.first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  std::exception_ptr err;
  {
    common::MutexLock lock(errors.mutex);
    err = errors.first_error;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace amoeba::exp
