#include "exp/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "workload/meters.hpp"
#include "obs/profiler.hpp"

namespace amoeba::exp {

namespace {

/// Auto-scaled per-monitor probe rate: N monitors each probing 3 meters
/// must not themselves crowd the node, so the combined rate across
/// monitors is capped at ~4 QPS per meter regardless of N.
double effective_probe_qps(double requested, std::size_t n_services) {
  if (requested > 0.0) return requested;
  return std::min(workload::kMeterProbeQps,
                  4.0 / static_cast<double>(n_services));
}

std::string hash_hex(std::uint64_t h) {
  std::ostringstream os;
  os << "0x" << std::hex << h;
  return os.str();
}

}  // namespace

const ClusterServiceResult* ClusterRunResult::find(
    const std::string& name) const {
  for (const auto& s : services) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<workload::FunctionProfile> cluster_tenants(int n,
                                                       double peak_fraction) {
  AMOEBA_EXPECTS(n > 0);
  const auto suite = workload::functionbench_suite();
  std::vector<workload::FunctionProfile> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(workload::as_tenant(
        suite[static_cast<std::size_t>(i) % suite.size()], i, peak_fraction));
  }
  return out;
}

ClusterRunResult run_cluster(const std::vector<ClusterServiceSpec>& specs,
                             const ClusterConfig& cluster,
                             const core::MeterCalibration& calibration,
                             const ClusterRunOptions& opt) {
  AMOEBA_EXPECTS_MSG(!specs.empty(), "cluster run needs at least one service");
  AMOEBA_EXPECTS(opt.period_s > 0.0 && opt.duration_days > 0.0);
  AMOEBA_EXPECTS_MSG(opt.warmup_s >= cluster.iaas.vm_boot_s + 3.0,
                     "warmup must cover the VM boot time");
  AMOEBA_EXPECTS(opt.node_container_budget > 0);
  AMOEBA_EXPECTS(opt.meter_reserve_containers >= 3);

  const std::size_t n = specs.size();
  // Self-profiling (same pattern as run_managed): thread attach before the
  // engine, harness scope covering setup + collection.
  obs::ProfilerAttach prof_attach(opt.profiler);
  AMOEBA_PROF_SCOPE(kHarness);
  sim::Engine engine;
  if (opt.profiler != nullptr) engine.set_profiler(opt.profiler);
  sim::Rng rng(opt.seed);
  serverless::ServerlessPlatform sp(engine, cluster.serverless, rng.fork(1));
  iaas::IaasPlatform ip(engine, cluster.iaas, rng.fork(2));

  std::unique_ptr<sim::FaultInjector> faults;
  if (opt.faults.any()) {
    faults = std::make_unique<sim::FaultInjector>(opt.faults, rng.fork(4));
    sp.set_fault_injector(faults.get());
    ip.set_fault_injector(faults.get());
  }

  // Meter reserve: register the three meter functions FIRST, each capped at
  // its share of the reserve, so (a) every monitor's start() finds them
  // already present, and (b) tenant prewarms can never evict probing down
  // to zero capacity. Count-wise the node budget stays intact: services
  // split what remains.
  const int per_meter = std::max(1, opt.meter_reserve_containers / 3);
  for (const auto kind : workload::kAllMeters) {
    sp.register_function(workload::meter_profile(kind), per_meter);
  }
  const int service_budget = opt.node_container_budget - 3 * per_meter;
  AMOEBA_EXPECTS_MSG(service_budget >= static_cast<int>(n),
                     "container budget cannot cover every service");

  // Shared-pool admission arbitration: solo asks, then the budget split.
  std::vector<int> asks;
  std::vector<iaas::VmSpec> vm_specs;
  asks.reserve(n);
  vm_specs.reserve(n);
  for (const auto& spec : specs) {
    vm_specs.push_back(just_enough_vm(spec.profile, cluster));
    asks.push_back(std::max(
        1, static_cast<int>(std::ceil(vm_specs.back().cores *
                                      opt.n_max_core_factor))));
  }
  const std::vector<int> grants =
      core::split_container_budget(asks, service_budget);

  const double probe_qps = effective_probe_qps(opt.monitor_probe_qps, n);
  const double duration = opt.warmup_s + opt.period_s * opt.duration_days;
  RunRecorder recorder(opt.warmup_s);

  // One AmoebaRuntime per tenant — its own monitor, controller and engine —
  // all over the same two platforms. Deterministic rng forks per index.
  std::vector<std::unique_ptr<core::AmoebaRuntime>> runtimes;
  std::vector<std::unique_ptr<workload::DiurnalTrace>> traces;
  std::vector<std::unique_ptr<workload::PoissonLoadGenerator>> generators;
  runtimes.reserve(n);
  traces.reserve(n);
  generators.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const ClusterServiceSpec& spec = specs[i];
    core::AmoebaConfig cfg =
        opt.amoeba.has_value()
            ? *opt.amoeba
            : default_amoeba_config(DeploySystem::kAmoeba,
                                    opt.timeline_period_s);
    if (!opt.amoeba.has_value()) {
      cfg.timeline_period_s = opt.timeline_period_s;
      // Cluster default: tighter switch margins than a solo service. The
      // discriminant's pressure inputs are caused by live co-tenants whose
      // own controllers react in the same tick, so predictions carry more
      // error than against scripted noise — leave earlier, return later.
      cfg.controller.to_serverless_margin = 0.50;
      cfg.controller.to_iaas_margin = 0.70;
    }
    cfg.monitor.probe_qps = probe_qps;
    if (opt.observer != nullptr) cfg.observer = opt.observer;
    cfg.fault_injector = faults.get();
    auto runtime = std::make_unique<core::AmoebaRuntime>(
        engine, sp, ip, calibration, cfg,
        rng.fork(1000 + static_cast<std::uint64_t>(i)));
    runtime->add_service(spec.profile, vm_specs[i], spec.artifacts,
                         grants[i]);
    runtime->start();

    auto trace = std::make_unique<workload::DiurnalTrace>(
        diurnal_for(spec.profile, opt.period_s, spec.phase),
        opt.seed ^ (0x51u + static_cast<unsigned>(i)));
    const std::string name = spec.profile.name;
    const auto observer = recorder.observer(name);
    auto gen = std::make_unique<workload::PoissonLoadGenerator>(
        engine, rng.fork(2000 + static_cast<std::uint64_t>(i)),
        [t = trace.get()](double now) { return t->rate(now); },
        trace->max_rate(), [rt = runtime.get(), name, observer] {
          rt->submit(name, observer);
        });

    runtimes.push_back(std::move(runtime));
    traces.push_back(std::move(trace));
    generators.push_back(std::move(gen));
  }

  // Tenant load starts after the IaaS VMs could have booted, inside warmup
  // (same rule as run_managed; warmup records are dropped anyway).
  const double load_start = std::min(cluster.iaas.vm_boot_s + 2.0,
                                     std::max(opt.warmup_s - 1.0, 0.0));
  for (auto& gen : generators) {
    engine.schedule(load_start, [g = gen.get()] { g->start(); });
  }

  engine.run_until(duration);

  for (auto& gen : generators) gen->stop();
  for (auto& rt : runtimes) rt->stop();

  ClusterRunResult result;
  result.duration_s = duration;
  result.services.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = specs[i].profile.name;
    ClusterServiceResult svc;
    svc.name = name;
    svc.qos_target_s = specs[i].profile.qos_target_s;
    if (recorder.count(name) > 0) {
      svc.latencies = recorder.latencies(name);
      if (opt.keep_records) svc.records = recorder.records(name);
    }
    svc.queries = recorder.count(name);
    svc.usage = runtimes[i]->accountant().usage(name, duration);
    // switch_events() spans the whole runtime, but each runtime manages
    // exactly one service here, so the filter is a formality.
    for (const auto& sw : runtimes[i]->switch_events()) {
      if (sw.service == name) svc.switches.push_back(sw);
    }
    svc.switch_aborts = runtimes[i]->execution_engine().switch_aborts();
    svc.switch_retries = runtimes[i]->execution_engine().switch_retries();
    svc.prewarm_denied = sp.stats(name).prewarm_denied;
    svc.n_max_asked = asks[i];
    svc.n_max_granted = grants[i];
    result.services_usage += svc.usage;
    result.prewarm_denied_total += svc.prewarm_denied;
    result.services.push_back(std::move(svc));
  }
  for (const auto kind : workload::kAllMeters) {
    const std::string meter = workload::meter_profile(kind).name;
    result.meter_usage.cpu_core_seconds += sp.cpu_core_seconds(meter);
    result.meter_usage.memory_mb_seconds +=
        sp.memory_mb_seconds(meter, duration);
  }
  for (const auto& fn : sp.function_names()) {
    result.pool_memory_mb_seconds += sp.memory_mb_seconds(fn, duration);
  }
  result.peak_pool_containers = sp.pool().peak_total_containers();
  result.peak_pool_memory_mb = sp.pool().peak_memory_in_use_mb();
  result.pool_evictions = sp.pool().evictions();
  if (faults) result.fault_counters = faults->counters();
  result.trace_hash = engine.trace_hash();
  result.events_executed = engine.executed();
  return result;
}

std::string cluster_summary_json(const ClusterRunResult& r) {
  std::string out = "{";
  out += "\"n_services\": " +
         obs::json_number(static_cast<double>(r.services.size()));
  out += ", \"duration_s\": " + obs::json_number(r.duration_s);
  out += ", \"trace_hash\": \"" + hash_hex(r.trace_hash) + "\"";
  out += ", \"total_core_hours\": " + obs::json_number(r.total_core_hours());
  out += ", \"total_memory_gb_hours\": " +
         obs::json_number(r.total_memory_gb_hours());
  out += ", \"peak_pool_containers\": " +
         obs::json_number(static_cast<double>(r.peak_pool_containers));
  out += ", \"peak_pool_memory_mb\": " +
         obs::json_number(r.peak_pool_memory_mb);
  out += ", \"pool_evictions\": " +
         obs::json_number(static_cast<double>(r.pool_evictions));
  out += ", \"prewarm_denied\": " +
         obs::json_number(static_cast<double>(r.prewarm_denied_total));
  out += ", \"services\": [";
  for (std::size_t i = 0; i < r.services.size(); ++i) {
    const ClusterServiceResult& s = r.services[i];
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + obs::json_escape(s.name) + "\"";
    out += ", \"qos_target_s\": " + obs::json_number(s.qos_target_s);
    out += ", \"queries\": " +
           obs::json_number(static_cast<double>(s.queries));
    out += ", \"p95_s\": " + obs::json_number(s.p95());
    out += ", \"violation_fraction\": " +
           obs::json_number(s.violation_fraction());
    out += ", \"switches\": " +
           obs::json_number(static_cast<double>(s.switches.size()));
    out += ", \"switch_aborts\": " +
           obs::json_number(static_cast<double>(s.switch_aborts));
    out += ", \"switch_retries\": " +
           obs::json_number(static_cast<double>(s.switch_retries));
    out += ", \"prewarm_denied\": " +
           obs::json_number(static_cast<double>(s.prewarm_denied));
    out += ", \"n_max_asked\": " +
           obs::json_number(static_cast<double>(s.n_max_asked));
    out += ", \"n_max_granted\": " +
           obs::json_number(static_cast<double>(s.n_max_granted));
    out += ", \"core_seconds\": " + obs::json_number(s.usage.cpu_core_seconds);
    out += ", \"memory_mb_seconds\": " +
           obs::json_number(s.usage.memory_mb_seconds);
    out += "}";
  }
  out += "]}";
  return out;
}

Table cluster_table(const ClusterRunResult& r) {
  Table t({"service", "qos_s", "queries", "p95_s", "viol", "switches",
           "n_max", "core_h", "mem_GBh"});
  for (const auto& s : r.services) {
    t.add_row({s.name, fmt_fixed(s.qos_target_s, 3),
               std::to_string(s.queries), fmt_fixed(s.p95(), 3),
               fmt_percent(s.violation_fraction()),
               std::to_string(s.switches.size()),
               std::to_string(s.n_max_granted) + "/" +
                   std::to_string(s.n_max_asked),
               fmt_fixed(s.usage.cpu_core_seconds / 3600.0, 2),
               fmt_fixed(s.usage.memory_mb_seconds / (1024.0 * 3600.0), 2)});
  }
  t.add_row({"TOTAL(+meters)", "-", "-", "-", "-", "-", "-",
             fmt_fixed(r.total_core_hours(), 2),
             fmt_fixed(r.total_memory_gb_hours(), 2)});
  return t;
}

}  // namespace amoeba::exp
