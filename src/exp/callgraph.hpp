// Call-graph runs — DAGs of managed stages under one end-to-end SLO.
//
// `run_cluster` manages N *independent* tenants; `run_callgraph` manages N
// *dependent* stages of one product: a user query enters every root of a
// workload::CallGraph and propagates along edges (AND-join: a stage fires
// once all parents finished for that query). End-to-end latency is the
// critical-path sum over stage completions, and the run is judged against
// one end-to-end p95 target.
//
// Each stage is a per-stage AmoebaRuntime (its own monitor, controller and
// engine) over the ONE shared serverless platform, IaaS platform and event
// engine — the cluster coupling, plus the query-flow coupling on top.
//
// Budget decomposition closes the end-to-end loop: in kEndToEndAware mode
// a core::BudgetDecomposer splits the SLO into per-stage budgets
// (critical-path-weighted) and renormalizes them every renorm tick from
// the observed per-stage p95s, pushing the result into each stage's
// controller via AmoebaRuntime::set_qos_target — a slow downstream stage
// tightens upstream budgets and can flip upstream platform choices. The
// kNaiveEqual baseline fixes every budget at T / max_path_stages.
//
// Applied budgets are clamped to a feasibility floor (a small factor over
// the stage's ideal solo IaaS latency): an M/M/c system cannot beat its
// own service time, and the just-enough VM sizing would reject an
// infeasible target outright.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/budget_decomposer.hpp"
#include "exp/scenario.hpp"
#include "exp/table.hpp"
#include "workload/call_graph.hpp"

namespace amoeba::exp {

/// How the end-to-end QoS target decomposes into per-stage budgets.
enum class BudgetMode : std::uint8_t {
  kNaiveEqual,     ///< fixed T / max_path_stages per stage
  kEndToEndAware,  ///< critical-path-weighted, renormalized from p95s
};

[[nodiscard]] const char* to_string(BudgetMode m) noexcept;

struct CallGraphRunOptions {
  double period_s = 1200.0;  ///< compressed "day"
  double duration_days = 1.0;
  double warmup_s = 60.0;
  /// End-to-end p95 latency target for the whole DAG (required, > 0).
  double e2e_qos_target_s = 0.0;
  BudgetMode budget_mode = BudgetMode::kEndToEndAware;
  /// Budget renormalization period (aware mode). Matches the default
  /// monitor sample period so budgets move at control-loop speed.
  double renorm_period_s = 5.0;
  /// Observed-p95 window must hold at least this many stage completions
  /// before it updates the stage weight (one accidental cold start must
  /// not own the window; same rationale as the runtime's 21-sample rule).
  int renorm_min_samples = 12;
  /// Applied per-stage budgets are clamped to at least this factor times
  /// the stage's ideal solo IaaS latency (M/M/c feasibility floor).
  double feasibility_floor_factor = 1.25;
  /// Peak arrival rate at the DAG roots; 0 = the first root stage's
  /// profile peak. Every stage sees this traffic (one invocation per
  /// query per stage), so per-stage provisioning uses it too.
  double root_peak_qps = 0.0;
  std::uint64_t seed = 42;
  /// Same shared-node knobs as ClusterRunOptions.
  double n_max_core_factor = 1.0;
  int node_container_budget = 128;
  int meter_reserve_containers = 15;
  double monitor_probe_qps = 0.0;  ///< 0 = auto min(1, 4/N) per meter
  /// Override the per-stage Amoeba tuning (defaults follow the cluster
  /// tuning: tighter margins because stages are live co-tenants).
  std::optional<core::AmoebaConfig> amoeba;
  core::BudgetDecomposerConfig decomposer;
  /// Observability sink shared by every stage runtime (non-owning;
  /// nullptr = disabled). DecisionRecords carry the canonical stage index
  /// and per-stage spans ride the stage service names; end-to-end query
  /// lifecycles become async spans on "callgraph/e2e".
  obs::Observer* observer = nullptr;
  obs::Profiler* profiler = nullptr;
  sim::FaultConfig faults;
};

/// Per-stage outcome (canonical stage order).
struct CallGraphStageResult {
  int stage = 0;
  std::string name;   ///< canonical service name ("<base>@s<k>")
  std::string label;  ///< declared label (reporting only)
  workload::StagePin pin = workload::StagePin::kManaged;
  double initial_budget_s = 0.0;  ///< applied at setup (after clamping)
  double final_budget_s = 0.0;    ///< applied after the last renorm tick
  stats::SampleSet latencies;     ///< per-stage latency, post-warmup queries
  std::uint64_t submitted = 0;    ///< queries entering the stage (all)
  std::uint64_t finished = 0;     ///< stage completions (all)
  core::ServiceUsage usage;
  std::uint64_t switches = 0;
  std::uint64_t switch_aborts = 0;
  std::uint64_t switch_retries = 0;
  std::uint64_t prewarm_denied = 0;
  int n_max_asked = 0;
  int n_max_granted = 0;

  [[nodiscard]] double p95() const { return latencies.quantile(0.95); }
};

struct CallGraphRunResult {
  std::vector<CallGraphStageResult> stages;
  BudgetMode budget_mode = BudgetMode::kEndToEndAware;
  double e2e_qos_target_s = 0.0;
  stats::SampleSet e2e_latencies;  ///< root-to-last-leaf, post-warmup
  /// Query conservation ledger: every injected query is either fully
  /// completed (every stage finished it exactly once) or still in flight
  /// at the cut-off — root_injected == queries_completed +
  /// queries_unfinished, exactly.
  std::uint64_t root_injected = 0;
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_unfinished = 0;
  double duration_s = 0.0;
  std::uint64_t trace_hash = 0;
  std::uint64_t events_executed = 0;
  core::ServiceUsage stages_usage;  ///< Σ per-stage usage
  core::ServiceUsage meter_usage;
  double pool_memory_mb_seconds = 0.0;
  int peak_pool_containers = 0;
  double peak_pool_memory_mb = 0.0;
  std::uint64_t pool_evictions = 0;
  std::uint64_t prewarm_denied_total = 0;
  sim::FaultCounters fault_counters;

  [[nodiscard]] double e2e_p95() const { return e2e_latencies.quantile(0.95); }
  [[nodiscard]] double e2e_violation_fraction() const {
    return e2e_latencies.fraction_above(e2e_qos_target_s);
  }
  [[nodiscard]] double total_core_hours() const {
    return (stages_usage.cpu_core_seconds + meter_usage.cpu_core_seconds) /
           3600.0;
  }
  [[nodiscard]] double total_memory_gb_hours() const {
    return (stages_usage.memory_mb_seconds + meter_usage.memory_mb_seconds) /
           (1024.0 * 3600.0);
  }
  [[nodiscard]] const CallGraphStageResult* find(
      const std::string& name) const;
};

/// Run one call graph on the shared node. `artifacts[k]` are the profiled
/// artifacts of stage k's base profile, in canonical stage order (the
/// canonical order is declaration-independent, so look bases up by
/// graph.stage(k).profile.name).
[[nodiscard]] CallGraphRunResult run_callgraph(
    const workload::CallGraph& graph,
    const std::vector<core::ServiceArtifacts>& artifacts,
    const ClusterConfig& cluster, const core::MeterCalibration& calibration,
    const CallGraphRunOptions& opt);

/// Machine-readable summary (one JSON object; parses with obs::parse_json).
[[nodiscard]] std::string callgraph_summary_json(const CallGraphRunResult& r);

/// Human-readable per-stage table with a trailing end-to-end row.
[[nodiscard]] Table callgraph_table(const CallGraphRunResult& r);

}  // namespace amoeba::exp
