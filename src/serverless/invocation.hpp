// Serverless-side aliases for the shared per-query record types.
// The canonical definitions live in workload/query.hpp so the IaaS platform
// can produce identical records without depending on this library.
#pragma once

#include "workload/query.hpp"

namespace amoeba::serverless {

using LatencyBreakdown = workload::LatencyBreakdown;
using QueryRecord = workload::QueryRecord;
using QueryCompletionFn = workload::QueryCompletionFn;

}  // namespace amoeba::serverless
