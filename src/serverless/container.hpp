// Container lifecycle model for the serverless platform.
//
// A container belongs to exactly one function (OpenWhisk semantics), holds
// its memory reservation from creation to destruction, and executes at most
// one invocation at a time (paper §V-A: "most serverless platforms allow
// only one execution at a time in a container").
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"

namespace amoeba::serverless {

using ContainerId = std::uint64_t;

enum class ContainerState : std::uint8_t {
  kStarting,  ///< cold start in progress (memory already reserved)
  kIdle,      ///< warm, waiting for work; keep-alive timer running
  kBusy,      ///< executing one invocation
};

[[nodiscard]] const char* to_string(ContainerState s) noexcept;

struct Container {
  ContainerId id = 0;
  std::string function;
  ContainerState state = ContainerState::kStarting;
  double memory_mb = 0.0;
  sim::Time created_at = 0.0;
  sim::Time ready_at = 0.0;            ///< when the cold start finished
  sim::Time idle_since = 0.0;          ///< valid while state == kIdle
  sim::EventId expiry_event = sim::kNoEvent;
  std::uint64_t invocations_served = 0;
};

}  // namespace amoeba::serverless
