#include "serverless/container.hpp"

namespace amoeba::serverless {

const char* to_string(ContainerState s) noexcept {
  switch (s) {
    case ContainerState::kStarting: return "starting";
    case ContainerState::kIdle: return "idle";
    case ContainerState::kBusy: return "busy";
  }
  return "?";
}

}  // namespace amoeba::serverless
